// The paper's §1 scenario end to end, through the Session facade: a
// single NULL makes SQL miss answers and invent answers, and the Fig. 2(b)
// rewriting repairs correctness for the *same SQL text*.
//
//   $ ./build/examples/orders_audit

#include <cstdio>
#include <string>

#include "api/session.h"
#include "certain/certain.h"

using namespace incdb;  // NOLINT — example brevity

namespace {

Database MakeDb(bool with_null) {
  Database db;
  Relation orders({"oid", "title", "price"});
  orders.Add({Value::String("o1"), Value::String("Big Data"), Value::Int(30)});
  orders.Add({Value::String("o2"), Value::String("SQL"), Value::Int(35)});
  orders.Add({Value::String("o3"), Value::String("Logic"), Value::Int(50)});
  Relation payments({"cid", "oid"});
  payments.Add({Value::String("c1"), Value::String("o1")});
  payments.Add({Value::String("c2"),
                with_null ? Value::Null(1) : Value::String("o2")});
  Relation customers({"cid", "name"});
  customers.Add({Value::String("c1"), Value::String("John")});
  customers.Add({Value::String("c2"), Value::String("Mary")});
  db.Put("Orders", std::move(orders));
  db.Put("Payments", std::move(payments));
  db.Put("Customers", std::move(customers));
  return db;
}

void RunQuery(const char* label, const std::string& sql, Session& sess) {
  // One Prepare serves the SQL answer *and* the certain-answer views: the
  // translated algebra feeds the Session's Certain* wrappers directly.
  auto pq = sess.Prepare(sql);
  if (!pq.ok()) {
    std::printf("%s: translation failed: %s\n", label,
                pq.status().ToString().c_str());
    return;
  }
  auto sql_ans = pq->Execute();
  auto plus = sess.CertainPlus(pq->algebra());
  auto maybe = sess.CertainMaybe(pq->algebra());
  auto cert = sess.CertainWithNulls(pq->algebra());
  std::printf("%s\n  SQL says      : %s\n", label,
              sql_ans.ok() ? sql_ans->ToString().c_str()
                           : sql_ans.status().ToString().c_str());
  std::printf("  certain (Q+)  : %s\n",
              plus.ok() ? plus->ToString().c_str()
                        : plus.status().ToString().c_str());
  std::printf("  possible (Q?) : %s\n",
              maybe.ok() ? maybe->ToString().c_str()
                         : maybe.status().ToString().c_str());
  std::printf("  exact cert⊥   : %s\n\n",
              cert.ok() ? cert->ToString().c_str()
                        : cert.status().ToString().c_str());
}

}  // namespace

int main() {
  const std::string unpaid =
      "SELECT oid FROM Orders WHERE oid NOT IN "
      "( SELECT oid FROM Payments )";
  const std::string no_paid_order =
      "SELECT C.cid FROM Customers C WHERE NOT EXISTS "
      "( SELECT * FROM Orders O, Payments P "
      "  WHERE C.cid = P.cid AND P.oid = O.oid )";
  const std::string tautology =
      "SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'";

  std::printf("=== Complete database (paper Figure 1) ===\n\n");
  Session complete(MakeDb(false));
  RunQuery("[unpaid orders]", unpaid, complete);
  RunQuery("[customers with no paid order]", no_paid_order, complete);

  std::printf("=== One payment's oid replaced by NULL ===\n\n");
  Session with_null(MakeDb(true));
  RunQuery("[unpaid orders]", unpaid, with_null);
  RunQuery("[customers with no paid order]", no_paid_order, with_null);
  RunQuery("[tautology: oid = 'o2' OR oid <> 'o2']", tautology, with_null);

  // Explainability: why is c2 not certain? Ask for a counterexample world.
  auto alg = with_null.Prepare(no_paid_order);
  if (alg.ok()) {
    auto why = WhyNotCertain(alg->algebra(), with_null.db(),
                             Tuple{Value::String("c2")});
    if (why.ok() && why->has_value()) {
      std::printf("Why is c2 not certain? Counterexample valuation %s\n",
                  (*why)->ToString().c_str());
      std::printf(
          "(under that reading Mary's payment covers a real order, so she\n"
          "does have a paid order and c2 drops out of the answer.)\n\n");
    }
  }

  std::printf(
      "Summary: on the NULL database SQL returns {} for unpaid orders\n"
      "(the certain answer is also {}, but compare with its own complete-\n"
      "data answer {o3}), invents c2 as a customer without a paid order\n"
      "(not certain — a false positive), and loses c2 on the tautology\n"
      "(certain answer {c1, c2} — a false negative). The Q+ rewriting of\n"
      "the same SQL text never returns a non-certain tuple.\n");
  return 0;
}
