// Probabilistic reading of query answers (§4.3): how likely is a tuple to
// be an answer under a randomly chosen interpretation of the nulls? The
// example walks the µ_k sequence of the paper's R − S query, the 0–1 law,
// and the shift caused by integrity constraints.
//
//   $ ./build/examples/probabilistic_quality

#include <cstdio>

#include "api/session.h"
#include "prob/prob.h"

using namespace incdb;  // NOLINT — example brevity

int main() {
  // R = {1}, S = {⊥}; Q = R − S (the running example of §4.3).
  Database db;
  Relation r({"x"}), s({"x"});
  r.Add({Value::Int(1)});
  s.Add({Value::Null(0)});
  db.Put("R", r);
  db.Put("S", s);
  AlgPtr q = Diff(Scan("R"), Scan("S"));
  Tuple one{Value::Int(1)};

  std::printf("Q = %s over R = {1}, S = {⊥}\n\n", q->ToString().c_str());
  std::printf("µ_k(Q, D, (1)) — probability over valuations into the "
              "first k constants:\n");
  std::printf("  %4s  %10s  %10s  %8s\n", "k", "|Supp_k|", "|V_k|", "µ_k");
  for (size_t k : {2, 3, 4, 6, 10, 20, 50}) {
    auto mu = MuK(q, db, one, k);
    if (!mu.ok()) continue;
    std::printf("  %4zu  %10llu  %10llu  %8.4f\n", k,
                static_cast<unsigned long long>(mu->support),
                static_cast<unsigned long long>(mu->total), mu->ratio());
  }
  auto limit = MuLimit(q, db, one);
  std::printf("  limit (Theorem 4.10, = naive membership): %.1f\n\n",
              limit.ok() ? *limit : -1.0);

  // Now with an inclusion constraint S ⊆ T over T = {1, 2}: the null can
  // only take two values and µ settles at the rational 1/2 (Thm. 4.11).
  Database db2;
  Relation t2({"x"}), s2({"x"});
  t2.Add({Value::Int(1)});
  t2.Add({Value::Int(2)});
  s2.Add({Value::Null(0)});
  db2.Put("T", t2);
  db2.Put("S", s2);
  ConstraintSet sigma;
  sigma.inds.push_back(IND{"S", {"x"}, "T", {"x"}});
  AlgPtr q2 = Diff(Scan("T"), Scan("S"));
  std::printf("Q' = %s over T = {1,2}, S = {⊥} with Σ: S ⊆ T\n",
              q2->ToString().c_str());
  std::printf("  %4s  %8s\n", "k", "µ_k(Q'|Σ)");
  for (size_t k : {2, 4, 8, 16}) {
    auto mu = MuKConditional(q2, sigma, db2, one, k);
    if (!mu.ok()) continue;
    std::printf("  %4zu  %8.4f\n", k, mu->ratio());
  }
  std::printf("  (constant at the rational 1/2 — Theorem 4.11)\n\n");

  // The SQL trap: R−(S−T) returns 1, yet µ = 0 (§5.1).
  Database db3;
  Relation r3({"x"}), s3({"x"}), t3({"x"});
  r3.Add({Value::Int(1)});
  s3.Add({Value::Int(1)});
  t3.Add({Value::Null(0)});
  db3.Put("R", r3);
  db3.Put("S", s3);
  db3.Put("T", t3);
  AlgPtr q3 = Diff(Scan("R"), Diff(Scan("S"), Scan("T")));
  // SQL's reading of the same double negation, through the facade.
  Session sess3(std::move(db3));
  auto pq3 = sess3.Prepare(NotInPredicate(
      Scan("R"),
      Rename(NotInPredicate(Scan("S"), Rename(Scan("T"), {"z"}), {"x"}, {"z"},
                            CTrue()),
             {"y"}),
      {"x"}, {"y"}, CTrue()));
  auto sql = pq3.ok() ? pq3->Execute() : StatusOr<Relation>(pq3.status());
  auto mu3 = MuK(q3, sess3.db(), one, 10);
  std::printf("SQL on R−(S−T), R=S={1}, T={⊥}: %s\n",
              sql.ok() ? sql->ToString().c_str() : "error");
  std::printf("but µ_10(Q, D, (1)) = %.4f — an almost-certainly-false "
              "answer.\n",
              mu3.ok() ? mu3->ratio() : -1.0);
  return 0;
}
