// Quickstart: build an incomplete database, run a query under the three
// evaluation disciplines, and compute certain-answer approximations.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "algebra/builder.h"
#include "approx/approx.h"
#include "certain/certain.h"
#include "eval/eval.h"

using namespace incdb;  // NOLINT — example brevity

int main() {
  // An incomplete database: employees and a project assignment where one
  // employee's project is unknown (the marked null ⊥1).
  Database db;
  Relation emp({"name"});
  emp.Add({Value::String("ann")});
  emp.Add({Value::String("bob")});
  emp.Add({Value::String("eve")});
  Relation assigned({"who"});
  assigned.Add({Value::String("ann")});
  assigned.Add({Value::Null(1)});  // somebody is assigned — we lost who
  db.Put("Emp", std::move(emp));
  db.Put("Assigned", std::move(assigned));

  std::printf("Database:\n%s\n", db.ToString().c_str());

  // Query: employees with no assignment (relational difference).
  AlgPtr q = Diff(Scan("Emp"), Rename(Scan("Assigned"), {"name"}));
  std::printf("Query Q = %s\n\n", q->ToString().c_str());

  auto naive = EvalSet(q, db);       // nulls as fresh constants
  auto sql = EvalSql(q, db);         // what a SQL engine would return
  auto plus = EvalPlus(q, db);       // certain answers (under-approx, [37])
  auto maybe = EvalMaybe(q, db);     // possible answers (over-approx)
  auto cert = CertWithNulls(q, db);  // exact cert⊥, brute force

  if (!naive.ok() || !sql.ok() || !plus.ok() || !maybe.ok() || !cert.ok()) {
    std::printf("evaluation failed\n");
    return 1;
  }
  std::printf("naive evaluation : %s\n", naive->ToString().c_str());
  std::printf("SQL evaluation   : %s\n", sql->ToString().c_str());
  std::printf("certain   (Q+)   : %s\n", plus->ToString().c_str());
  std::printf("possible  (Q?)   : %s\n", maybe->ToString().c_str());
  std::printf("exact cert⊥      : %s\n\n", cert->ToString().c_str());

  std::printf(
      "Reading: naive evaluation claims bob and eve are unassigned, but\n"
      "⊥1 could be either of them, so nobody is *certainly* unassigned.\n"
      "Q+ and the exact cert⊥ both report the empty set, while Q? lists\n"
      "bob and eve as still possibly unassigned (ann is definitely\n"
      "assigned).\n");
  return 0;
}
