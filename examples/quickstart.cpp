// Quickstart: the Session facade end to end — build an incomplete
// database, prepare one parameterized SQL query, execute it under
// different bindings and disciplines, stream it through a cursor, inspect
// the plan with EXPLAIN, and ask for certain-answer approximations.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "api/session.h"

using namespace incdb;  // NOLINT — example brevity

int main() {
  // An incomplete database: employees, and orders where one price is
  // unknown (the marked null ⊥1).
  Database db;
  Relation emp({"name"});
  emp.Add({Value::String("ann")});
  emp.Add({Value::String("bob")});
  emp.Add({Value::String("eve")});
  Relation orders({"who", "price"});
  orders.Add({Value::String("ann"), Value::Int(30)});
  orders.Add({Value::String("bob"), Value::Null(1)});  // price unknown
  db.Put("Emp", std::move(emp));
  db.Put("Orders", std::move(orders));

  // A session owns the database, the evaluation options and a private
  // plan cache. All queries go through it.
  Session sess(std::move(db));
  std::printf("Database:\n%s\n", sess.db().ToString().c_str());

  // Prepare once: `?` is a parameter placeholder. The query compiles to a
  // single cached plan template shared by every binding below.
  auto pq = sess.Prepare("SELECT who FROM Orders WHERE price > ?");
  if (!pq.ok()) {
    std::printf("prepare failed: %s\n", pq.status().ToString().c_str());
    return 1;
  }

  // Execute many: each call binds the placeholder and runs the same plan.
  for (int64_t threshold : {10, 30, 100}) {
    auto r = pq->Execute({Value::Int(threshold)});
    if (!r.ok()) continue;
    std::printf("price > %-3lld (SQL 3VL): %s\n",
                static_cast<long long>(threshold), r->ToString().c_str());
  }
  std::printf(
      "(bob's unknown price compares 'unknown' under SQL's 3VL, so bob\n"
      "never appears — exactly what a SQL engine would do.)\n\n");

  // EXPLAIN: the compiled operator DAG plus the session cache counters —
  // note misses=1: all three executions shared one compile.
  std::printf("%s\n", pq->Explain().c_str());

  // Streaming cursor: rows are pulled one at a time through the root
  // filter chain; stop whenever you have enough.
  auto cur = pq->OpenCursor({Value::Int(10)});
  if (cur.ok()) {
    std::printf("cursor (streaming=%s):", cur->streaming() ? "yes" : "no");
    while (cur->Next()) {
      std::printf(" %s", cur->row().ToString().c_str());
    }
    std::printf("\n\n");
  }

  // The other disciplines ride the same facade: naive set evaluation
  // treats ⊥1 as a fresh constant.
  auto naive = sess.Prepare("SELECT who FROM Orders WHERE price > ?",
                            EvalMode::kSetNaive);
  if (naive.ok()) {
    auto r = naive->Execute({Value::Int(10)});
    if (r.ok()) std::printf("naive evaluation: %s\n", r->ToString().c_str());
  }

  // Certain answers: employees with no order (relational difference).
  // Q+ under-approximates (sound), Q? over-approximates (complete), and
  // the exact cert⊥ is the brute-force ground truth.
  AlgPtr q = Diff(Scan("Emp"),
                  Project(Rename(Scan("Orders"), {"name", "price"}), {"name"}));
  auto plus = sess.CertainPlus(q);
  auto maybe = sess.CertainMaybe(q);
  auto cert = sess.CertainWithNulls(q);
  if (plus.ok() && maybe.ok() && cert.ok()) {
    std::printf("\nEmployees with no order, Q = %s\n", q->ToString().c_str());
    std::printf("certain   (Q+) : %s\n", plus->ToString().c_str());
    std::printf("possible  (Q?) : %s\n", maybe->ToString().c_str());
    std::printf("exact cert⊥    : %s\n", cert->ToString().c_str());
  }

  SessionStats stats = sess.stats();
  std::printf(
      "\nSession: %llu prepares, %llu executes, %llu cursors; plan cache "
      "%llu hit(s) / %llu miss(es)\n",
      static_cast<unsigned long long>(stats.prepares),
      static_cast<unsigned long long>(stats.executes),
      static_cast<unsigned long long>(stats.cursors_opened),
      static_cast<unsigned long long>(stats.plan_cache.hits),
      static_cast<unsigned long long>(stats.plan_cache.misses));
  return 0;
}
