// Data-integration scenario with *marked* nulls (§2, §6 "Marked nulls"):
// two sources disagree on a person's department; the shared unknown is
// one marked null, which is strictly more informative than SQL's NULL.
// Functional dependencies then pin the null down via the chase, and the
// possible-world structure is inspected through homomorphisms. Queries
// and certain answers go through the Session facade.
//
//   $ ./build/examples/data_integration

#include <cstdio>

#include "api/session.h"
#include "constraints/chase.h"
#include "hom/homomorphism.h"
#include "prob/prob.h"

using namespace incdb;  // NOLINT — example brevity

int main() {
  // Integrated view: WorksIn(person, dept) merged from two sources.
  // Source A knows carol works somewhere (⊥1); source B knows the same
  // unknown department ⊥1 hosts the 'db' seminar room. Marked nulls let
  // us say "the same unknown department" — SQL's NULL cannot.
  Database db;
  Relation works({"person", "dept"});
  works.Add({Value::String("ann"), Value::String("cs")});
  works.Add({Value::String("carol"), Value::Null(1)});
  Relation seminar({"dept", "room"});
  seminar.Add({Value::Null(1), Value::String("db-lab")});
  seminar.Add({Value::String("cs"), Value::String("cs-lab")});
  db.Put("WorksIn", std::move(works));
  db.Put("Seminar", std::move(seminar));

  Session sess(std::move(db));
  std::printf("Integrated database:\n%s\n", sess.db().ToString().c_str());

  // Query: rooms carol can host a seminar in — joins through the *same*
  // null, so the answer is certain even though the department is unknown.
  // The person is a parameter: the same prepared template serves every
  // employee with one compile.
  AlgPtr q = Project(
      Join(Select(Scan("WorksIn"), CEqc("person", Value::Param(0))),
           Rename(Scan("Seminar"), {"sdept", "room"}), CEq("dept", "sdept")),
      {"room"});
  auto cert = sess.CertainWithNulls(q, {Value::String("carol")});
  std::printf("Certain rooms for carol: %s\n",
              cert.ok() ? cert->ToString().c_str()
                        : cert.status().ToString().c_str());
  std::printf("(The join on ⊥1 = ⊥1 succeeds in every possible world.)\n\n");

  // A key constraint resolves the null: each room determines its dept,
  // and a third source asserts Seminar(math, db-lab).
  Relation* sem = sess.mutable_db().mutable_at("Seminar");
  sem->Add({Value::String("math"), Value::String("db-lab")});
  std::printf("After adding Seminar('math', 'db-lab'):\n%s\n",
              sess.db().ToString().c_str());
  auto chased = ChaseFDs(sess.db(), {FD{"Seminar", {"room"}, {"dept"}}});
  if (chased.ok() && chased->success) {
    std::printf("Chase with FD room → dept resolves ⊥1:\n%s\n",
                chased->db.ToString().c_str());
  }

  // Possible-world structure: v(D) is a CWA world (strong onto hom);
  // adding unrelated facts gives an OWA world only.
  Valuation v;
  v.Set(1, Value::String("math"));
  Database world = v.ApplySet(sess.db());
  std::printf("CWA world under ⊥1 ↦ 'math'? %s\n",
              IsPossibleWorld(sess.db(), world, HomClass::kStrongOnto)
                  ? "yes"
                  : "no");
  Relation extra = world.at("WorksIn");
  extra.Add({Value::String("zoe"), Value::String("bio")});
  world.Put("WorksIn", extra);
  std::printf(
      "...with an extra fact: CWA? %s, OWA? %s\n",
      IsPossibleWorld(sess.db(), world, HomClass::kStrongOnto) ? "yes" : "no",
      IsPossibleWorld(sess.db(), world, HomClass::kAny) ? "yes" : "no");
  return 0;
}
