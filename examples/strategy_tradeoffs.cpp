// The precision/cost trade-off between the four conditional-table
// strategies of [36] (paper §4.2, Theorem 4.9): eager grounding is the
// cheapest and equals the (Q+, Q?) rewriting; postponing grounding keeps
// symbolic conditions longer and can certify strictly more answers.
// The comparison baselines (Q+, exact cert⊥) ride the Session facade; the
// query constant is a parameter resolved inside the c-table evaluator.
//
//   $ ./build/examples/strategy_tradeoffs

#include <cstdio>

#include "api/session.h"
#include "ctables/ceval.h"

using namespace incdb;  // NOLINT — example brevity

int main() {
  // R = {⊥1}; Q = σ_{x=?} (R) ∪ σ_{x≠?}(R) bound at ? = 1. In every
  // possible world the tuple satisfies one of the two branches, so ⊥1 is
  // a certain answer — but each branch alone is only "unknown".
  Database db;
  Relation r({"x"});
  r.Add({Value::Null(1)});
  db.Put("R", r);
  AlgPtr q = Union(Select(Scan("R"), CEqc("x", Value::Param(0))),
                   Select(Scan("R"), CNeqc("x", Value::Param(0))));
  const std::vector<Value> binding = {Value::Int(1)};
  Session sess(std::move(db));
  std::printf("D: R = { ⊥1 }\nQ = %s bound at ?0 = 1\n\n",
              q->ToString().c_str());

  // Show the conditional table each strategy ends with; the placeholder
  // resolves when each selection condition is instantiated (ceval).
  for (CStrategy s : {CStrategy::kEager, CStrategy::kSemiEager,
                      CStrategy::kLazy, CStrategy::kAware}) {
    auto table = CEval(q, sess.db(), s, binding);
    auto certain = CEvalCertain(q, sess.db(), s, binding);
    if (!table.ok() || !certain.ok()) continue;
    std::printf("%-10s c-table: %s\n", ToString(s),
                table->ToString().c_str());
    std::printf("%-10s certain: %s\n\n", "", certain->ToString().c_str());
  }

  auto plus = sess.CertainPlus(q, binding);
  auto cert = sess.CertainWithNulls(q, binding);
  std::printf("Fig. 2(b) Q+ (= eager, Theorem 4.9): %s\n",
              plus.ok() ? plus->ToString().c_str() : "error");
  std::printf("exact cert⊥ (ground truth):          %s\n\n",
              cert.ok() ? cert->ToString().c_str() : "error");

  std::printf(
      "Reading: the eager strategy grounds each branch's condition to u\n"
      "immediately, and u ∨ u stays u — the certain answer is lost (this\n"
      "is exactly what Q+ reports, per Theorem 4.9). The aware strategy\n"
      "keeps the symbolic condition ⊥1=1 ∨ ⊥1≠1, which is valid, and\n"
      "certifies ⊥1 — matching the exact certain answers. Deferral buys\n"
      "precision for the cost of carrying symbolic conditions.\n");
  return 0;
}
