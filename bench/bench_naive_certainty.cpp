// Experiment E8 (paper §4.1, Theorems 4.1/4.4): naive evaluation computes
// certain answers with nulls for UCQs (OWA and CWA) and for the Pos∀G
// fragment (division) under CWA, but not for full relational algebra —
// {1} − {⊥} is the classic counterexample. Counted over random instances.

#include <random>

#include "algebra/builder.h"
#include "bench/bench_util.h"
#include "certain/certain.h"
#include "eval/eval.h"

using namespace incdb;  // NOLINT

namespace {

Database RandomDb(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> pick(0, 4);
  auto value = [&]() -> Value {
    int v = pick(rng);
    return v < 3 ? Value::Int(v) : Value::Null(static_cast<uint64_t>(v - 3));
  };
  Database db;
  Relation works({"emp", "proj"});
  for (int i = 0; i < 5; ++i) works.Add({value(), value()});
  Relation projects({"proj"});
  for (int i = 0; i < 2; ++i) projects.Add({value()});
  Relation r({"R_a", "R_b"}), s({"S_a", "S_b"});
  for (int i = 0; i < 4; ++i) {
    r.Add({value(), value()});
    s.Add({value(), value()});
  }
  db.Put("Works", works.ToSet());
  db.Put("Projects", projects.ToSet());
  db.Put("R", r.ToSet());
  db.Put("S", s.ToSet());
  return db;
}

struct FragmentStats {
  int cases = 0;
  int exact = 0;       // naive == cert⊥
  int overshoot = 0;   // naive ⊋ cert⊥ (false positives)
};

}  // namespace

INCDB_BENCH(naive_certainty) {
  bench::Header(
      "E8", "when naive evaluation IS certain-answer evaluation (Thm 4.4)",
      "naive evaluation = cert⊥ for UCQs (any semantics) and for Pos∀G — "
      "positive algebra + division — under CWA; for full RA it "
      "overshoots (e.g. {1} − {⊥}).");

  std::vector<std::pair<const char*, AlgPtr>> ucq = {
      {"π(R)", Project(Scan("R"), {"R_a"})},
      {"σ=0(R)", Select(Scan("R"), CEqc("R_a", Value::Int(0)))},
      {"π(R ⋈ S)",
       Project(Select(Product(Scan("R"), Scan("S")), CEq("R_b", "S_a")),
               {"R_a", "S_b"})},
      {"R ∪ S", Union(Scan("R"), Rename(Scan("S"), {"R_a", "R_b"}))},
  };
  std::vector<std::pair<const char*, AlgPtr>> posg = {
      {"Works ÷ Projects", Division(Scan("Works"), Scan("Projects"))},
      {"σ(Works ÷ Projects)",
       Select(Division(Scan("Works"), Scan("Projects")),
              CEqc("emp", Value::Int(1)))},
  };
  std::vector<std::pair<const char*, AlgPtr>> full_ra = {
      {"π(R) − π(S)",
       Diff(Project(Scan("R"), {"R_a"}),
            Rename(Project(Scan("S"), {"S_a"}), {"R_a"}))},
      {"R − S", Diff(Scan("R"), Rename(Scan("S"), {"R_a", "R_b"}))},
      {"σ≠(R)", Select(Scan("R"), CNeq("R_a", "R_b"))},
  };

  std::mt19937_64 rng(1234);
  FragmentStats stats[3];
  const char* fragment_names[] = {"UCQ", "Pos∀G (division)", "full RA (−, ≠)"};
  for (int round = 0; round < 40; ++round) {
    Database db = RandomDb(rng);
    auto run = [&](const std::vector<std::pair<const char*, AlgPtr>>& qs,
                   FragmentStats* st) {
      for (const auto& [name, q] : qs) {
        auto naive = EvalSet(q, db);
        auto cert = CertWithNulls(q, db);
        if (!naive.ok() || !cert.ok()) continue;
        ++st->cases;
        if (naive->SameRows(*cert)) {
          ++st->exact;
        } else if (cert->SubBagOf(*naive)) {
          ++st->overshoot;
        }
      }
    };
    run(ucq, &stats[0]);
    run(posg, &stats[1]);
    run(full_ra, &stats[2]);
  }

  std::printf("%-20s %8s %14s %14s\n", "fragment", "cases", "naive==cert⊥",
              "naive⊋cert⊥");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-20s %8d %14d %14d\n", fragment_names[i], stats[i].cases,
                stats[i].exact, stats[i].overshoot);
    ctx.ReportInfo("fragment")
        .Param("name", fragment_names[i])
        .Param("cases", stats[i].cases)
        .Param("exact", stats[i].exact)
        .Param("overshoot", stats[i].overshoot);
  }

  // The canonical counterexample, explicitly.
  Database tiny;
  Relation r1({"x"}), s1({"x"});
  r1.Add({Value::Int(1)});
  s1.Add({Value::Null(0)});
  tiny.Put("Rt", r1);
  tiny.Put("St", s1);
  AlgPtr counter = Diff(Scan("Rt"), Scan("St"));
  auto naive = EvalSet(counter, tiny);
  auto cert = CertWithNulls(counter, tiny);
  std::printf("\n{1} − {⊥}: naive = %s, cert⊥ = %s\n",
              naive.ok() ? naive->ToString().c_str() : "err",
              cert.ok() ? cert->ToString().c_str() : "err");

  bool shape = stats[0].cases > 0 && stats[0].exact == stats[0].cases &&
               stats[1].cases > 0 && stats[1].exact == stats[1].cases &&
               stats[2].overshoot > 0 && naive.ok() && cert.ok() &&
               naive->TotalSize() == 1 && cert->Empty();
  bench::Footer(shape,
                "naive = cert⊥ on every UCQ and Pos∀G instance; full RA "
                "overshoots on a substantial fraction, including the "
                "paper's {1} − {⊥}.");
  ctx.ReportInfo("naive_certainty_shape").Param("shape_holds", shape);
  if (!shape) ctx.SetFailed();
}
