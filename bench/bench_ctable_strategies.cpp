// Experiment E5 (paper §4.2, Theorem 4.9, [36]): the four c-table
// strategies all run in PTIME with correctness guarantees; eager coincides
// with the Fig. 2(b) scheme (Evalᵉt = Q+, Evalᵉp = Q?); deferring
// grounding is never less precise and is strictly more precise somewhere.

#include <random>

#include "algebra/builder.h"
#include "approx/approx.h"
#include "bench/bench_util.h"
#include "certain/certain.h"
#include "ctables/ceval.h"

using namespace incdb;  // NOLINT

namespace {

Database RandomDb(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> pick(0, 4);
  auto value = [&]() -> Value {
    int v = pick(rng);
    return v < 3 ? Value::Int(v) : Value::Null(static_cast<uint64_t>(v - 3));
  };
  Database db;
  for (const char* name : {"R", "S"}) {
    Relation rel({std::string(name) + "_a", std::string(name) + "_b"});
    for (int i = 0; i < 4; ++i) rel.Add({value(), value()});
    db.Put(name, rel.ToSet());
  }
  Relation t({"T_a"});
  for (int i = 0; i < 4; ++i) t.Add({value()});
  db.Put("T", t.ToSet());
  return db;
}

std::vector<AlgPtr> Queries() {
  AlgPtr r = Scan("R");
  AlgPtr s = Scan("S");
  AlgPtr t = Scan("T");
  return {
      Diff(Project(r, {"R_a"}), Rename(t, {"R_a"})),
      Diff(r, s),
      Diff(Rename(t, {"x"}),
           Diff(Project(r, {"R_a"}), Project(s, {"S_a"}))),
      Union(Select(r, CEqc("R_a", Value::Int(0))),
            Select(r, CNeqc("R_a", Value::Int(0)))),
      Project(Select(Product(r, Rename(s, {"c", "d"})), CEq("R_b", "c")),
              {"R_a", "d"}),
  };
}

}  // namespace

INCDB_BENCH(ctable_strategies) {
  bench::Header(
      "E5", "the four Eval⋆ strategies of [36] (Theorem 4.9)",
      "all four have correctness guarantees and PTIME evaluation; "
      "Evalᵉt = Q+ and Evalᵉp = Q?; strict containments hold between "
      "strategies on specific inputs.");

  const CStrategy strategies[] = {CStrategy::kEager, CStrategy::kSemiEager,
                                  CStrategy::kLazy, CStrategy::kAware};
  std::mt19937_64 rng(99);
  int instances = 0;
  int eager_eq_fig2b = 0;
  int chain_ok = 0;
  int sound = 0;
  int strict_gain = 0;  // aware ⊋ eager somewhere
  double total_certain[4] = {0, 0, 0, 0};
  double total_ms[4] = {0, 0, 0, 0};

  for (int round = 0; round < 30; ++round) {
    Database db = RandomDb(rng);
    for (const AlgPtr& q : Queries()) {
      ++instances;
      auto cert = CertWithNulls(q, db);
      auto plus = EvalPlus(q, db);
      auto maybe = EvalMaybe(q, db);
      if (!cert.ok() || !plus.ok() || !maybe.ok()) continue;
      Relation res[4];
      bool ok = true;
      for (int i = 0; i < 4; ++i) {
        total_ms[i] += bench::TimeMs(
            [&] {
              auto rr = CEvalCertain(q, db, strategies[i]);
              if (rr.ok()) res[i] = *rr;
              ok &= rr.ok();
            },
            1);
        total_certain[i] += res[i].DistinctSize();
      }
      if (!ok) continue;
      auto ep = CEvalPossible(q, db, CStrategy::kEager);
      if (ep.ok() && res[0].SameRows(*plus) && ep->SameRows(*maybe)) {
        ++eager_eq_fig2b;
      }
      bool chain = res[0].SubBagOf(res[1]) && res[1].SubBagOf(res[2]) &&
                   res[2].SubBagOf(res[3]);
      if (chain) ++chain_ok;
      bool all_sound = true;
      for (int i = 0; i < 4; ++i) all_sound &= res[i].SubBagOf(*cert);
      if (all_sound) ++sound;
      if (res[3].DistinctSize() > res[0].DistinctSize()) ++strict_gain;
    }
  }

  std::printf("instances: %d\n\n", instances);
  std::printf("%-12s %16s %14s\n", "strategy", "avg #certain", "total ms");
  const char* names[] = {"eager", "semi-eager", "lazy", "aware"};
  for (int i = 0; i < 4; ++i) {
    std::printf("%-12s %16.3f %14.2f\n", names[i],
                total_certain[i] / instances, total_ms[i]);
    ctx.Report("strategy", total_ms[i])
        .Timing(1)
        .Param("name", names[i])
        .Param("instances", instances)
        .Param("avg_certain", total_certain[i] / instances);
  }
  std::printf("\nEvalᵉ = Fig.2(b) on %d/%d instances\n", eager_eq_fig2b,
              instances);
  std::printf("containment chain e ⊆ s ⊆ l ⊆ a on %d/%d\n", chain_ok,
              instances);
  std::printf("all strategies ⊆ cert⊥ on %d/%d\n", sound, instances);
  std::printf("aware strictly beats eager on %d instances\n", strict_gain);

  bool shape = eager_eq_fig2b == instances && chain_ok == instances &&
               sound == instances && strict_gain > 0;
  bench::Footer(shape,
                "Theorem 4.9 equalities hold on every instance; deferral "
                "only gains certain answers and strictly gains on some.");
  ctx.ReportInfo("ctable_shape")
      .Param("shape_holds", shape)
      .Param("strict_gain", strict_gain);
  if (!shape) ctx.SetFailed();
}
