// Experiment E10 (paper §5, Fig. 3 and Theorems 5.3/5.4/5.5): regenerates
// Kleene's truth tables, derives the six-valued logic L6v from its
// epistemic semantics, verifies that L3v is its maximal distributive and
// idempotent sublogic, and demonstrates the Boolean-FO capture of
// FO(L3v↑) — including agreement and timing of the translated queries.

#include <random>

#include "bench/bench_util.h"
#include "logic/capture.h"
#include "logic/fo_eval.h"
#include "logic/kleene.h"
#include "logic/sixvalued.h"

using namespace incdb;  // NOLINT

namespace {

Database RandomDb(std::mt19937_64& rng, int tuples) {
  std::uniform_int_distribution<int> pick(0, 4);
  auto value = [&]() -> Value {
    int v = pick(rng);
    return v < 3 ? Value::Int(v) : Value::Null(static_cast<uint64_t>(v - 3));
  };
  Database db;
  Relation r({"a", "b"});
  Relation t({"x"});
  for (int i = 0; i < tuples; ++i) {
    r.Add({value(), value()});
    t.Add({value()});
  }
  db.Put("R", r.ToSet());
  db.Put("T", t.ToSet());
  return db;
}

void PrintTable3() {
  const TV3 vals[] = {TV3::kT, TV3::kF, TV3::kU};
  std::printf("  ∧ |");
  for (TV3 b : vals) std::printf(" %s", ToString(b));
  std::printf("      ∨ |");
  for (TV3 b : vals) std::printf(" %s", ToString(b));
  std::printf("      ¬\n");
  for (TV3 a : vals) {
    std::printf("  %s |", ToString(a));
    for (TV3 b : vals) std::printf(" %s", ToString(Kleene::And(a, b)));
    std::printf("      %s |", ToString(a));
    for (TV3 b : vals) std::printf(" %s", ToString(Kleene::Or(a, b)));
    std::printf("      %s ↦ %s\n", ToString(a), ToString(Kleene::Not(a)));
  }
}

}  // namespace

INCDB_BENCH(logic_capture) {
  bench::Header(
      "E10", "many-valued logics: Fig. 3, Theorem 5.3 and the capture",
      "Kleene's tables are the right 3VL (maximal distributive+idempotent "
      "sublogic of the derived L6v), yet Boolean FO captures FO(L3v↑): "
      "three-valued logic adds no expressive power to SQL.");

  std::printf("Figure 3 (regenerated from the implementation):\n");
  PrintTable3();

  // L6v derivation and Theorem 5.3.
  const TV6 all6[] = {TV6::kF, TV6::kSF, TV6::kS, TV6::kU, TV6::kST, TV6::kT};
  bool derivation_ok = true;
  for (TV6 a : all6) {
    derivation_ok &= MostGeneral(ConsistentNot(a)).has_value();
    for (TV6 b : all6) {
      derivation_ok &= Six::And(a, b) == *MostGeneral(ConsistentAnd(a, b));
      derivation_ok &= Six::Or(a, b) == *MostGeneral(ConsistentOr(a, b));
    }
  }
  std::printf("\nL6v tables re-derived from epistemic semantics: %s\n",
              derivation_ok ? "match" : "MISMATCH");

  Sublogic full{{TV6::kF, TV6::kSF, TV6::kS, TV6::kU, TV6::kST, TV6::kT}};
  Sublogic kleene{{TV6::kT, TV6::kF, TV6::kU}};
  bool thm53 = !full.Distributive() && !full.Idempotent() &&
               kleene.Closed() && kleene.Distributive() &&
               kleene.Idempotent();
  int failing_supersets = 0;
  const TV6 extras[] = {TV6::kS, TV6::kST, TV6::kSF};
  for (int mask = 1; mask < 8; ++mask) {
    Sublogic cand{{TV6::kT, TV6::kF, TV6::kU}};
    for (int i = 0; i < 3; ++i) {
      if (mask & (1 << i)) cand.values.push_back(extras[i]);
    }
    if (!(cand.Closed() && cand.Idempotent() && cand.Distributive())) {
      ++failing_supersets;
    }
  }
  std::printf("Theorem 5.3: L3v distributive+idempotent: %s; all %d proper "
              "supersets fail: %s\n",
              thm53 ? "yes" : "NO", failing_supersets,
              failing_supersets == 7 ? "yes" : "NO");

  // Capture: agreement + relative cost of the Boolean translation.
  Term x = Term::Var("x");
  Term y = Term::Var("y");
  std::vector<FormulaPtr> formulas = {
      FAnd(FAtom("T", {x}), FNot(FExists("y", FAtom("R", {x, y})))),
      FAssert(FOr(FEq(x, Term::Const(Value::Int(1))),
                  FNot(FEq(x, Term::Const(Value::Int(1)))))),
      FForall("y", FOr(FNot(FAtom("R", {x, y})), FAtom("T", {y}))),
  };
  std::mt19937_64 rng(5);
  int checked = 0, agree = 0;
  double t_3vl = 0, t_bool = 0;
  for (int tuples : {4, 8, 16}) {
    Database db = RandomDb(rng, tuples);
    for (const FormulaPtr& phi : formulas) {
      for (TV3 tau : {TV3::kT, TV3::kF, TV3::kU}) {
        auto psi = CaptureTranslate(phi, MixedSemantics::Sql(), tau);
        if (!psi.ok()) continue;
        for (const Value& a : db.ActiveDomain()) {
          Assignment asg = {{"x", a}};
          TV3 mv = TV3::kU;
          bool bl = false;
          t_3vl += bench::TimeMs(
              [&] {
                auto r = EvalFO(phi, db, asg, MixedSemantics::Sql());
                if (r.ok()) mv = *r;
              },
              1);
          t_bool += bench::TimeMs(
              [&] {
                auto r = EvalBoolFO(*psi, db, asg);
                if (r.ok()) bl = *r;
              },
              1);
          ++checked;
          if ((mv == tau) == bl) ++agree;
        }
      }
    }
  }
  std::printf("\ncapture agreement (⟦φ⟧sql = τ  ⟺  D ⊨ ψ^τ): %d/%d\n",
              agree, checked);
  std::printf("cost: FO(L3v) eval %.1f ms, translated Boolean FO %.1f ms\n",
              t_3vl, t_bool);
  ctx.Report("fo_3vl_eval", t_3vl).Timing(1).Param("checked", checked);
  ctx.Report("fo_bool_translated", t_bool)
      .Timing(1)
      .Param("checked", checked)
      .Param("agree", agree);

  bool shape = derivation_ok && thm53 && failing_supersets == 7 &&
               checked > 0 && agree == checked;
  bench::Footer(shape,
                "the 3VL is derivable, maximal, and eliminable — exactly "
                "the paper's three-step story.");
  ctx.ReportInfo("logic_capture_shape")
      .Param("shape_holds", shape)
      .Param("derivation_ok", derivation_ok)
      .Param("thm53", thm53);
  if (!shape) ctx.SetFailed();
}
