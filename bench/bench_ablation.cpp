// Ablation study (DESIGN.md §4): the evaluator fast paths that make the
// Fig. 2(b) rewriting competitive — hash join, OR-expansion of the
// σ?-rule's disjunctions, projection fusion, and the ⋉⇑ null-mask index.
// Each is disabled in turn on the TPC-H-lite negation workload; results
// must not change, only cost. This quantifies the paper's remark that the
// remaining practical obstacle is "the poor way in which query optimizers
// handle disjunctions".

#include <string>

#include "approx/approx.h"
#include "bench/bench_util.h"
#include "eval/eval.h"
#include "tpch/tpch.h"

using namespace incdb;  // NOLINT

INCDB_BENCH(ablation) {
  bench::Header(
      "E11 (ablation)", "evaluator fast paths behind the Q+ feasibility",
      "not a paper table — quantifies which engine features the [37] "
      "experiment's feasibility depends on (the paper blames optimizer "
      "disjunction handling for the residual slow cases).");

  tpch::GenOptions gopts;
  gopts.scale = 1.0;
  gopts.null_rate = 0.02;
  gopts.seed = 7;
  Database db = tpch::Generate(gopts);

  struct Config {
    const char* name;
    EvalOptions opts;
  };
  EvalOptions base;
  std::vector<Config> configs;
  configs.push_back({"all optimizations", base});
  {
    EvalOptions o = base;
    o.enable_hash_join = false;
    configs.push_back({"- hash join", o});
  }
  {
    EvalOptions o = base;
    o.enable_or_expansion = false;
    configs.push_back({"- OR-expansion", o});
  }
  {
    EvalOptions o = base;
    o.enable_projection_fusion = false;
    configs.push_back({"- projection fusion", o});
  }
  {
    EvalOptions o = base;
    o.enable_unify_index = false;
    configs.push_back({"- unify index", o});
  }
  {
    EvalOptions o = base;
    o.enable_selection_pushdown = false;
    configs.push_back({"- selection pushdown", o});
  }

  // The two queries whose Q+ exercises every fast path.
  auto workload = tpch::Workload();
  std::vector<tpch::BenchQuery> queries = {workload[0], workload[1]};

  bool results_stable = true;
  std::printf("%-22s", "config");
  for (const auto& q : queries) std::printf(" %16s", q.name.substr(0, 15).c_str());
  std::printf("\n");

  std::vector<Relation> reference;
  for (const Config& cfg : configs) {
    std::printf("%-22s", cfg.name);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto plus_q = TranslatePlus(queries[qi].algebra, db);
      if (!plus_q.ok()) {
        std::printf(" %16s", "XLATE-ERR");
        results_stable = false;
        continue;
      }
      Relation result;
      bool ok = true;
      // Single run per config: the point is the relative cost ordering of
      // the ablations, and disabled-fast-path configs are slow.
      double ms = ctx.TimeMs(
          [&] {
            auto r = EvalSet(*plus_q, db, cfg.opts);
            ok = r.ok();
            if (ok) result = *r;
          },
          1);
      if (!ok) {
        std::printf(" %16s", "EVAL-ERR");
        results_stable = false;
        continue;
      }
      if (reference.size() <= qi) {
        reference.push_back(result);
      } else if (!reference[qi].SameRows(result)) {
        results_stable = false;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f ms", ms);
      std::printf(" %16s", buf);
      ctx.Report("ablation", ms)
          .Timing(1)
          .Param("config", cfg.name)
          .Param("query", queries[qi].name);
    }
    std::printf("\n");
  }

  std::printf("\nresults identical across configs: %s\n",
              results_stable ? "yes" : "NO — ABLATION CHANGED ANSWERS");
  bench::Footer(results_stable,
                "every fast path is semantics-preserving; OR-expansion and "
                "projection fusion carry the negation queries (disable "
                "them and the σ?-disjunction cost returns).");
  ctx.ReportInfo("ablation_shape").Param("results_stable", results_stable);
  if (!results_stable) ctx.SetFailed();
}
