// Experiment E9 (paper §4.2 "Bag semantics", Theorem 4.8): under bag
// semantics the (Q+, Q?) translation brackets the minimal multiplicity,
// #(ā, Q+(D)) ≤ □Q(D, ā) ≤ #(ā, Q?(D)), and is the only tractable option
// (the exact bounds need exponential valuation enumeration, and the
// Fig. 2(a) scheme loses its complexity guarantees under bags).

#include <random>

#include "algebra/builder.h"
#include "approx/approx.h"
#include "bench/bench_util.h"
#include "certain/certain.h"
#include "eval/eval.h"

using namespace incdb;  // NOLINT

namespace {

Database RandomBagDb(std::mt19937_64& rng, int n_nulls) {
  std::uniform_int_distribution<int> pick(0, 2);
  std::uniform_int_distribution<uint64_t> mult(1, 3);
  Database db;
  int next_null = 0;
  auto value = [&]() -> Value {
    if (next_null < n_nulls && pick(rng) == 0) {
      return Value::Null(static_cast<uint64_t>(next_null++));
    }
    return Value::Int(pick(rng));
  };
  Relation r({"R_a"}), s({"S_a"});
  for (int i = 0; i < 4; ++i) {
    Status st = r.Insert(Tuple{value()}, mult(rng));
    st = s.Insert(Tuple{value()}, mult(rng));
    (void)st;
  }
  db.Put("R", r);
  db.Put("S", s);
  return db;
}

}  // namespace

INCDB_BENCH(bag_bounds) {
  bench::Header(
      "E9", "multiplicity bounds under bag semantics (Theorem 4.8)",
      "#(ā, Q+(D)) ≤ □Q(D, ā) ≤ #(ā, Q?(D)) for every tuple; the exact "
      "□/◇ need exponential enumeration while the translation is "
      "polynomial.");

  std::vector<std::pair<const char*, AlgPtr>> queries = {
      {"R ∪ S", Union(Scan("R"), Rename(Scan("S"), {"R_a"}))},
      {"R − S", Diff(Scan("R"), Rename(Scan("S"), {"R_a"}))},
      {"π(R × S)",
       Project(Product(Scan("R"), Scan("S")), {"R_a"})},
      {"σ≠0(R)", Select(Scan("R"), CNeqc("R_a", Value::Int(0)))},
  };

  std::mt19937_64 rng(7);
  int probes = 0, bracket_ok = 0, plus_tight = 0;
  double t_exact = 0, t_translated = 0;
  for (int round = 0; round < 25; ++round) {
    Database db = RandomBagDb(rng, 2);
    for (const auto& [name, q] : queries) {
      auto plus_q = TranslatePlus(q, db);
      auto maybe_q = TranslateMaybe(q, db);
      if (!plus_q.ok() || !maybe_q.ok()) continue;
      Relation plus, maybe;
      t_translated += bench::TimeMs(
          [&] {
            auto p = EvalBag(*plus_q, db);
            auto m = EvalBag(*maybe_q, db);
            if (p.ok()) plus = *p;
            if (m.ok()) maybe = *m;
          },
          1);
      for (const Tuple& t : maybe.SortedTuples()) {
        MultiplicityBounds bounds;
        bool ok = false;
        t_exact += bench::TimeMs(
            [&] {
              auto b = BagMultiplicityBounds(q, db, t);
              if (b.ok()) {
                bounds = *b;
                ok = true;
              }
            },
            1);
        if (!ok) continue;
        ++probes;
        if (plus.Count(t) <= bounds.min && bounds.min <= maybe.Count(t)) {
          ++bracket_ok;
        }
        if (plus.Count(t) == bounds.min) ++plus_tight;
      }
    }
  }

  std::printf("probes (tuple × query × instance): %d\n", probes);
  std::printf("bracket #Q+ ≤ □ ≤ #Q? holds:       %d/%d\n", bracket_ok,
              probes);
  std::printf("Q+ exactly tight (#Q+ = □):        %d/%d\n", plus_tight,
              probes);
  std::printf("time, exact □/◇ (exponential):     %.1f ms\n", t_exact);
  std::printf("time, translated bounds (poly):    %.1f ms\n", t_translated);
  ctx.Report("bag_bounds_translated", t_translated)
      .Timing(1)
      .Param("probes", probes)
      .Param("bracket_ok", bracket_ok)
      .Param("plus_tight", plus_tight);
  ctx.Report("bag_bounds_exact", t_exact).Timing(1).Param("probes", probes);

  // Scaling of the exact computation with null count (the tractability
  // cliff the theorem is about):
  std::printf("\nexact-□ cost vs number of nulls (single probe):\n");
  for (int n_nulls : {1, 2, 3, 4, 5, 6}) {
    std::mt19937_64 rng2(1000 + n_nulls);
    Database db = RandomBagDb(rng2, n_nulls);
    AlgPtr q = Diff(Scan("R"), Rename(Scan("S"), {"R_a"}));
    // Single run: the enumeration is deterministic and exponential in
    // the null count, so repetition only multiplies the wait.
    double ms = ctx.TimeMs(
        [&] { BagMultiplicityBounds(q, db, Tuple{Value::Int(0)}).ok(); }, 1);
    std::printf("  nulls=%d  %10.2f ms\n", n_nulls, ms);
    ctx.Report("bag_bounds_exact_scaling", ms).Timing(1).Param("nulls",
                                                               n_nulls);
  }

  bool shape = probes > 0 && bracket_ok == probes && t_translated < t_exact;
  bench::Footer(shape,
                "the bracket holds on every probe and the polynomial "
                "translation is orders of magnitude cheaper than exact "
                "valuation enumeration.");
  ctx.ReportInfo("bag_bounds_shape").Param("shape_holds", shape);
  if (!shape) ctx.SetFailed();
}
