#ifndef INCDB_BENCH_BENCH_UTIL_H_
#define INCDB_BENCH_BENCH_UTIL_H_

/// Shared helpers for the experiment binaries (E1..E10, see DESIGN.md §2):
/// wall-clock timing and uniform report formatting.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace incdb {
namespace bench {

/// Wall-clock milliseconds of the best of `reps` runs of `fn`.
inline double TimeMs(const std::function<void()>& fn, int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            end - start)
            .count();
    if (ms < best) best = ms;
  }
  return best;
}

inline void Header(const char* exp_id, const char* title,
                   const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", exp_id, title);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("================================================================\n\n");
}

inline void Footer(bool shape_holds, const char* verdict) {
  std::printf("\n>> shape %s: %s\n\n", shape_holds ? "HOLDS" : "DEVIATES",
              verdict);
}

}  // namespace bench
}  // namespace incdb

#endif  // INCDB_BENCH_BENCH_UTIL_H_
