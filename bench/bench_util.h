#ifndef INCDB_BENCH_BENCH_UTIL_H_
#define INCDB_BENCH_BENCH_UTIL_H_

/// Shared runner for the experiment binaries (E1..E10, see DESIGN.md §2).
///
/// Each bench_*.cpp registers one or more named benchmarks with
/// INCDB_BENCH(name) { ... } and links against bench_runner, whose
/// bench_main.cpp supplies the common main().  The runner provides
///   --list             print registered benchmark names and exit
///   --filter <substr>  run only benchmarks whose name contains <substr>
///   --reps <n>         timing repetitions (best-of-n, default 3)
///   --warmup <n>       untimed warmup runs before timing (default 0)
///   --json <path>      write one uniform JSON record per Report() call
///                      (the file is rewritten on every run)
///
/// A JSON record has a fixed schema so every experiment can populate the
/// BENCH_*.json perf trajectory:
///   {"bench": <binary>, "name": <record>, "ms": <double|null>,
///    "params": {...}, "reps": <int|null>, "warmup": <int|null>,
///    "git_rev": <sha>}
/// reps/warmup are per record (null for untimed records): benchmarks that
/// time with a deliberate repetition count declare it via Record::Timing.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace incdb {
namespace bench {

/// Wall-clock milliseconds of the best of `reps` runs of `fn`, after
/// `warmup` untimed runs.  Prefer Context::TimeMs inside benchmarks so
/// --reps/--warmup take effect.
inline double TimeMs(const std::function<void()>& fn, int reps = 3,
                     int warmup = 0) {
  for (int i = 0; i < warmup; ++i) fn();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            end - start)
            .count();
    if (ms < best) best = ms;
  }
  return best;
}

/// One result row: a named measurement plus free-form parameters.
/// Numeric parameters are emitted as JSON numbers, strings as JSON
/// strings; `ms` is null for correctness-only records (counts, verdicts).
class Record {
 public:
  Record(std::string name, double ms, bool timed, int reps, int warmup)
      : name_(std::move(name)),
        ms_(ms),
        timed_(timed),
        reps_(reps),
        warmup_(warmup) {}

  Record& Param(const std::string& key, const std::string& value);
  Record& Param(const std::string& key, const char* value);
  Record& Param(const std::string& key, double value);
  Record& Param(const std::string& key, int64_t value);
  Record& Param(const std::string& key, int value);
  Record& Param(const std::string& key, bool value);

  /// Declares the timing provenance of this record when it differs from
  /// the runner flags — e.g. totals accumulated over single runs.
  Record& Timing(int reps, int warmup = 0) {
    reps_ = reps;
    warmup_ = warmup;
    return *this;
  }

  const std::string& name() const { return name_; }
  double ms() const { return ms_; }
  bool timed() const { return timed_; }
  int reps() const { return reps_; }
  int warmup() const { return warmup_; }
  const std::vector<std::pair<std::string, std::string>>& params() const {
    return params_;
  }

 private:
  // Param values are stored pre-rendered as JSON fragments.
  std::string name_;
  double ms_;
  bool timed_;
  int reps_;
  int warmup_;
  std::vector<std::pair<std::string, std::string>> params_;
};

/// Handed to each benchmark body: timing honoring --reps/--warmup and
/// result reporting feeding --json.
class Context {
 public:
  Context(int reps, int warmup) : reps_(reps), warmup_(warmup) {}

  int reps() const { return reps_; }
  int warmup() const { return warmup_; }

  /// Best-of-reps() wall-clock ms after warmup() untimed runs. Pass
  /// `reps_override` > 0 for measurements that deliberately ignore
  /// --reps (e.g. runs that exhaust a resource budget deterministically);
  /// declare the override on the record via Record::Timing.
  double TimeMs(const std::function<void()>& fn, int reps_override = 0) const {
    return bench::TimeMs(fn, reps_override > 0 ? reps_override : reps_,
                         reps_override > 0 ? 0 : warmup_);
  }

  /// Record a timed measurement; chain .Param(...) for its parameters.
  /// The record inherits the runner's --reps/--warmup; use .Timing() when
  /// the measurement was taken differently.
  Record& Report(const std::string& name, double ms) {
    records_.emplace_back(name, ms, /*timed=*/true, reps_, warmup_);
    return records_.back();
  }

  /// Record an untimed (correctness / count) result; its JSON reps/warmup
  /// are null.
  Record& ReportInfo(const std::string& name) {
    records_.emplace_back(name, 0.0, /*timed=*/false, 0, 0);
    return records_.back();
  }

  const std::vector<Record>& records() const { return records_; }

  /// Mark the run failed (shape deviates); the runner exits nonzero.
  void SetFailed() { failed_ = true; }
  bool failed() const { return failed_; }

 private:
  int reps_;
  int warmup_;
  bool failed_ = false;
  std::vector<Record> records_;
};

using BenchFn = std::function<void(Context&)>;

/// Static-initializer registration hook; use via INCDB_BENCH.
int RegisterBench(const std::string& name, BenchFn fn);

/// Short git revision baked in at configure time ("unknown" outside git).
const char* GitRev();

/// Common main(): parses flags, runs matching benchmarks, writes JSON.
int Main(int argc, char** argv);

#define INCDB_BENCH(name)                                              \
  static void incdb_bench_##name(::incdb::bench::Context& ctx);        \
  static const int incdb_bench_reg_##name [[maybe_unused]] =           \
      ::incdb::bench::RegisterBench(#name, &incdb_bench_##name);       \
  static void incdb_bench_##name(::incdb::bench::Context& ctx)

inline void Header(const char* exp_id, const char* title,
                   const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", exp_id, title);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("================================================================\n\n");
}

inline void Footer(bool shape_holds, const char* verdict) {
  std::printf("\n>> shape %s: %s\n\n", shape_holds ? "HOLDS" : "DEVIATES",
              verdict);
}

}  // namespace bench
}  // namespace incdb

#endif  // INCDB_BENCH_BENCH_UTIL_H_
