// Experiment E7 (paper §4.3, Theorem 4.11): conditioning on integrity
// constraints breaks the 0–1 law but keeps convergence to a rational —
// every rational in [0,1] is attained by a CQ plus an inclusion
// constraint; with FDs only, the value collapses back to {0,1} via the
// chase.

#include "algebra/builder.h"
#include "bench/bench_util.h"
#include "prob/prob.h"

using namespace incdb;  // NOLINT

namespace {

/// T = {1..m}, S = {⊥}, Σ: S ⊆ T, Q = T − S: each answer tuple has
/// µ(Q|Σ) = (m−1)/m.
Database InclusionDb(int m) {
  Database db;
  Relation t({"x"}), s({"x"});
  for (int i = 1; i <= m; ++i) t.Add({Value::Int(i)});
  s.Add({Value::Null(0)});
  db.Put("T", t);
  db.Put("S", s);
  return db;
}

}  // namespace

INCDB_BENCH(conditional_prob) {
  bench::Header(
      "E7", "conditional probabilities µ(Q|Σ) (Theorem 4.11)",
      "µ(Q|Σ, D, ā) exists and is rational; every rational in [0,1] is "
      "attained (here the family (m−1)/m); with FDs only, the value is "
      "0/1 and equals µ on the chased database.");

  ConstraintSet sigma;
  sigma.inds.push_back(IND{"S", {"x"}, "T", {"x"}});
  AlgPtr q = Diff(Scan("T"), Scan("S"));

  std::printf("inclusion family: µ((1) ∈ T−S | S ⊆ T) with |T| = m\n");
  std::printf("%4s %10s %10s %10s %12s\n", "m", "µ_k k=8", "µ_k k=16",
              "µ_k k=24", "theory");
  bool shape = true;
  for (int m : {2, 3, 4, 5, 8}) {
    Database db = InclusionDb(m);
    double theory = double(m - 1) / m;
    std::printf("%4d", m);
    for (size_t k : {8, 16, 24}) {
      auto mu = MuKConditional(q, sigma, db, Tuple{Value::Int(1)}, k);
      if (!mu.ok()) {
        std::printf(" %10s", "err");
        shape = false;
        continue;
      }
      std::printf(" %10.4f", mu->ratio());
      shape &= std::abs(mu->ratio() - theory) < 1e-9;
      ctx.ReportInfo("inclusion_family")
          .Param("m", m)
          .Param("k", static_cast<int64_t>(k))
          .Param("mu", mu->ratio())
          .Param("theory", theory);
    }
    std::printf(" %12.4f\n", theory);
  }

  // FD case: R(k,v) = {(1,⊥1),(1,5)}, S = {⊥1}; σ_{x=5}(S) @ (5).
  Database db;
  Relation r({"k", "v"}), s({"x"});
  r.Add({Value::Int(1), Value::Null(1)});
  r.Add({Value::Int(1), Value::Int(5)});
  s.Add({Value::Null(1)});
  db.Put("R", r);
  db.Put("S", s);
  std::vector<FD> fds = {FD{"R", {"k"}, {"v"}}};
  AlgPtr q2 = Select(Scan("S"), CEqc("x", Value::Int(5)));
  auto uncond = MuLimit(q2, db, Tuple{Value::Int(5)});
  auto cond = MuLimitConditionalFDs(q2, fds, db, Tuple{Value::Int(5)});
  ConstraintSet fd_sigma;
  fd_sigma.fds = fds;
  auto exhaustive = MuKConditional(q2, fd_sigma, db, Tuple{Value::Int(5)}, 10);
  std::printf("\nFD case σ_{x=5}(S) @ (5), Σ = {R: k → v}:\n");
  std::printf("  µ unconditional        = %.1f\n",
              uncond.ok() ? *uncond : -1.0);
  std::printf("  µ(·|Σ) via chase       = %.1f\n", cond.ok() ? *cond : -1.0);
  std::printf("  µ_10(·|Σ) exhaustive   = %.4f\n",
              exhaustive.ok() ? exhaustive->ratio() : -1.0);
  shape &= uncond.ok() && *uncond == 0.0;
  shape &= cond.ok() && *cond == 1.0;
  shape &= exhaustive.ok() && exhaustive->ratio() == 1.0;

  bench::Footer(shape,
                "the (m−1)/m family matches theory exactly at every k (the "
                "constraint pins the null's range), and the FD case "
                "collapses to 0/1 via the chase as predicted.");
  ctx.ReportInfo("conditional_prob_shape").Param("shape_holds", shape);
  if (!shape) ctx.SetFailed();
}
