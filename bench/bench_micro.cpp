// Micro-benchmarks of the hot primitives (google-benchmark harness):
// tuple unifiability, the ⋉⇑ probe index, condition compilation and
// evaluation, hash join and the naive evaluation of a NOT-IN query at
// growing scale. These complement the experiment binaries: E2/E3 measure
// end-to-end shapes, this file tracks the primitives they rest on.

#include <benchmark/benchmark.h>

#include <random>

#include "algebra/builder.h"
#include "approx/approx.h"
#include "eval/eval.h"
#include "tpch/tpch.h"

namespace incdb {
namespace {

Tuple RandomTuple(std::mt19937_64& rng, size_t arity, double null_rate) {
  std::uniform_real_distribution<double> coin(0, 1);
  std::vector<Value> vals;
  for (size_t i = 0; i < arity; ++i) {
    if (coin(rng) < null_rate) {
      vals.push_back(Value::Null(rng() % 4));
    } else {
      vals.push_back(Value::Int(static_cast<int64_t>(rng() % 16)));
    }
  }
  return Tuple(std::move(vals));
}

void BM_Unifiable(benchmark::State& state) {
  std::mt19937_64 rng(1);
  std::vector<std::pair<Tuple, Tuple>> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.emplace_back(RandomTuple(rng, 4, 0.3), RandomTuple(rng, 4, 0.3));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 255];
    benchmark::DoNotOptimize(Unifiable(a, b));
  }
}
BENCHMARK(BM_Unifiable);

void BM_SqlTupleEq(benchmark::State& state) {
  std::mt19937_64 rng(2);
  std::vector<std::pair<Tuple, Tuple>> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.emplace_back(RandomTuple(rng, 4, 0.2), RandomTuple(rng, 4, 0.2));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 255];
    benchmark::DoNotOptimize(SqlTupleEq(a, b));
  }
}
BENCHMARK(BM_SqlTupleEq);

void BM_CompiledCondEval(benchmark::State& state) {
  std::vector<std::string> attrs{"a", "b", "c", "d"};
  CondPtr cond = CAnd(COr(CEq("a", "b"), CNeqc("c", Value::Int(3))),
                      CIsConst("d"));
  auto pred = CompileCond(cond, attrs, CondMode::kSql);
  std::mt19937_64 rng(3);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 256; ++i) tuples.push_back(RandomTuple(rng, 4, 0.2));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*pred)(tuples[i++ & 255]));
  }
}
BENCHMARK(BM_CompiledCondEval);

/// Naive evaluation of the W1 NOT-IN query at growing TPC-H-lite scale.
void BM_NotInNaive(benchmark::State& state) {
  tpch::GenOptions opts;
  opts.scale = static_cast<double>(state.range(0)) / 10.0;
  opts.null_rate = 0.02;
  Database db = tpch::Generate(opts);
  AlgPtr q = tpch::Workload()[0].algebra;
  for (auto _ : state) {
    auto r = EvalSet(q, db);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.TotalSize()));
}
BENCHMARK(BM_NotInNaive)->Arg(5)->Arg(10)->Arg(20);

/// The Q+ rewriting of the same query (⋉⇑ with the null-mask index).
void BM_NotInPlus(benchmark::State& state) {
  tpch::GenOptions opts;
  opts.scale = static_cast<double>(state.range(0)) / 10.0;
  opts.null_rate = 0.02;
  Database db = tpch::Generate(opts);
  auto plus = TranslatePlus(tpch::Workload()[0].algebra, db);
  for (auto _ : state) {
    auto r = EvalSet(*plus, db);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.TotalSize()));
}
BENCHMARK(BM_NotInPlus)->Arg(5)->Arg(10)->Arg(20);

/// Hash join throughput: customer ⨝ orders.
void BM_HashJoin(benchmark::State& state) {
  tpch::GenOptions opts;
  opts.scale = 2.0;
  opts.null_rate = 0.02;
  Database db = tpch::Generate(opts);
  AlgPtr q = Join(Scan("customer"), Scan("orders"),
                  CEq("c_custkey", "o_custkey"));
  for (auto _ : state) {
    auto r = EvalSet(q, db);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_HashJoin);

}  // namespace
}  // namespace incdb

BENCHMARK_MAIN();
