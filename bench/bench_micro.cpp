// Micro-benchmarks of the hot primitives on the shared runner: tuple
// unifiability, SQL tuple equality, condition compilation and
// evaluation, hash join and the naive vs Q+ evaluation of a NOT-IN
// query at growing scale. These complement the experiment binaries:
// E2/E3 measure end-to-end shapes, this file tracks the primitives
// they rest on.

#include <random>
#include <string>

#include "api/session.h"
#include "approx/approx.h"
#include "bench/bench_util.h"
#include "eval/batch.h"
#include "eval/delta.h"
#include "sql/translate.h"
#include "tpch/tpch.h"

using namespace incdb;  // NOLINT

namespace {

constexpr int kBatch = 1 << 16;  // inner iterations per timed run

Tuple RandomTuple(std::mt19937_64& rng, size_t arity, double null_rate) {
  std::uniform_real_distribution<double> coin(0, 1);
  std::vector<Value> vals;
  for (size_t i = 0; i < arity; ++i) {
    if (coin(rng) < null_rate) {
      vals.push_back(Value::Null(rng() % 4));
    } else {
      vals.push_back(Value::Int(static_cast<int64_t>(rng() % 16)));
    }
  }
  return Tuple(std::move(vals));
}

/// Report a batch-timed primitive: ms for kBatch calls plus derived ns/op.
void ReportBatch(bench::Context& ctx, const char* name, double ms) {
  std::printf("%-24s %10.3f ms / %d ops  (%.1f ns/op)\n", name, ms, kBatch,
              ms * 1e6 / kBatch);
  ctx.Report(name, ms).Param("batch", kBatch).Param("ns_per_op",
                                                    ms * 1e6 / kBatch);
}

}  // namespace

INCDB_BENCH(unifiable) {
  std::mt19937_64 rng(1);
  std::vector<std::pair<Tuple, Tuple>> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.emplace_back(RandomTuple(rng, 4, 0.3), RandomTuple(rng, 4, 0.3));
  }
  volatile bool sink = false;
  double ms = ctx.TimeMs([&] {
    for (int i = 0; i < kBatch; ++i) {
      const auto& [a, b] = pairs[i & 255];
      sink = Unifiable(a, b);
    }
  });
  (void)sink;
  ReportBatch(ctx, "unifiable", ms);
}

INCDB_BENCH(sql_tuple_eq) {
  std::mt19937_64 rng(2);
  std::vector<std::pair<Tuple, Tuple>> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.emplace_back(RandomTuple(rng, 4, 0.2), RandomTuple(rng, 4, 0.2));
  }
  volatile int sink = 0;
  double ms = ctx.TimeMs([&] {
    for (int i = 0; i < kBatch; ++i) {
      const auto& [a, b] = pairs[i & 255];
      sink = static_cast<int>(SqlTupleEq(a, b));
    }
  });
  (void)sink;
  ReportBatch(ctx, "sql_tuple_eq", ms);
}

/// Condition evaluation two ways over the same condition and tuples: the
/// row-at-a-time compiled closure (compiled_cond_eval_row, the legacy
/// interpreter's per-tuple cost) and the columnar BatchPredicate program
/// over 256-row windows including the per-window transposition, exactly
/// what the vectorized filter path pays (compiled_cond_eval — the record
/// the ≥1.5× acceptance bar tracks).
INCDB_BENCH(compiled_cond_eval) {
  std::vector<std::string> attrs{"a", "b", "c", "d"};
  CondPtr cond = CAnd(COr(CEq("a", "b"), CNeqc("c", Value::Int(3))),
                      CIsConst("d"));
  auto pred = CompileCond(cond, attrs, CondMode::kSql);
  std::mt19937_64 rng(3);
  std::vector<Relation::Row> rows;
  for (int i = 0; i < 256; ++i) {
    rows.emplace_back(RandomTuple(rng, 4, 0.2), 1);
  }
  volatile int sink = 0;
  double row_ms = ctx.TimeMs([&] {
    for (int i = 0; i < kBatch; ++i) {
      sink = static_cast<int>((*pred)(rows[i & 255].first));
    }
  });
  ReportBatch(ctx, "compiled_cond_eval_row", row_ms);

  auto bp = BatchPredicate::Make(cond, attrs, CondMode::kSql);
  if (!bp.ok()) {
    ctx.SetFailed();
    return;
  }
  BatchGather gather;
  Batch batch;
  BatchPredicate::Scratch scratch;
  std::vector<uint8_t> truth(rows.size());
  double ms = ctx.TimeMs([&] {
    for (int rep = 0; rep < kBatch / 256; ++rep) {
      gather.Gather(rows, 0, rows.size(), bp->referenced(), attrs.size(),
                    &batch);
      bp->EvalTruth(batch, &scratch, truth.data());
      sink = truth[rep & 255];
    }
  });
  (void)sink;
  ReportBatch(ctx, "compiled_cond_eval", ms);
}

/// Naive evaluation of the W1 NOT-IN query at growing TPC-H-lite scale,
/// the Q+ rewriting of the same query (⋉⇑ with the null-mask index), and
/// the SQL-mode evaluation of its difference formulation — the shape whose
/// NOT-IN semantics used to be a quadratic pairwise 3VL scan and is now a
/// hash lookup for all-constant tuples.
INCDB_BENCH(not_in_scaling) {
  std::printf("\n%-18s %10s %12s %12s %12s\n", "not-in @ scale", "tuples",
              "naive ms", "Q+ ms", "sql-diff ms");
  for (int tenths : {5, 10, 20}) {
    tpch::GenOptions opts;
    opts.scale = static_cast<double>(tenths) / 10.0;
    opts.null_rate = 0.02;
    Database db = tpch::Generate(opts);
    AlgPtr q = tpch::Workload()[0].algebra;
    AlgPtr qdiff =
        Diff(Project(Scan("orders"), {"o_orderkey"}),
             Rename(Project(Scan("lineitem"), {"l_orderkey"}), {"o_orderkey"}));
    auto plus = TranslatePlus(q, db);
    if (!plus.ok()) {
      ctx.SetFailed();
      continue;
    }
    double naive_ms = ctx.TimeMs([&] { EvalSet(q, db).ok(); });
    double plus_ms = ctx.TimeMs([&] { EvalSet(*plus, db).ok(); });
    double sql_ms = ctx.TimeMs([&] { EvalSql(qdiff, db).ok(); });
    std::printf("scale=%-12.1f %10llu %12.2f %12.2f %12.2f\n", opts.scale,
                static_cast<unsigned long long>(db.TotalSize()), naive_ms,
                plus_ms, sql_ms);
    ctx.Report("not_in_naive", naive_ms)
        .Param("scale", opts.scale)
        .Param("tuples", static_cast<int64_t>(db.TotalSize()));
    ctx.Report("not_in_plus", plus_ms)
        .Param("scale", opts.scale)
        .Param("tuples", static_cast<int64_t>(db.TotalSize()));
    ctx.Report("not_in_sql_diff", sql_ms)
        .Param("scale", opts.scale)
        .Param("tuples", static_cast<int64_t>(db.TotalSize()));
  }
}

/// Hash join throughput: customer ⨝ orders, single-threaded and with the
/// partitioned parallel build/probe (EvalOptions::num_threads = 4).
INCDB_BENCH(hash_join) {
  tpch::GenOptions opts;
  opts.scale = 2.0;
  opts.null_rate = 0.02;
  Database db = tpch::Generate(opts);
  AlgPtr q = Join(Scan("customer"), Scan("orders"),
                  CEq("c_custkey", "o_custkey"));
  double ms = ctx.TimeMs([&] { EvalSet(q, db).ok(); });
  std::printf("\n%-24s %10.2f ms (%llu tuples)\n", "hash_join", ms,
              static_cast<unsigned long long>(db.TotalSize()));
  ctx.Report("hash_join", ms)
      .Param("scale", opts.scale)
      .Param("tuples", static_cast<int64_t>(db.TotalSize()));

  EvalOptions par;
  par.num_threads = 4;
  double par_ms = ctx.TimeMs([&] { EvalSet(q, db, par).ok(); });
  std::printf("%-24s %10.2f ms (%llu tuples)\n", "hash_join_parallel", par_ms,
              static_cast<unsigned long long>(db.TotalSize()));
  ctx.Report("hash_join_parallel", par_ms)
      .Param("scale", opts.scale)
      .Param("threads", static_cast<int64_t>(par.num_threads))
      .Param("tuples", static_cast<int64_t>(db.TotalSize()));
}

/// Batch-size sweep of the vectorized filter path: a selective condition
/// over a mostly-unique 64k-row relation, evaluated at batch_size 0 (the
/// legacy tuple-at-a-time interpreter) and 256 / 1024 / 4096. Reports
/// ns/row of input; the knee of the curve is where transposition cost is
/// amortised and the column loops take over.
INCDB_BENCH(filter_batch) {
  constexpr size_t kRows = 1 << 16;
  std::mt19937_64 rng(11);
  Relation rel({"id", "b", "c", "d"});
  rel.Reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    Tuple t = RandomTuple(rng, 4, 0.1);
    Tuple row({Value::Int(static_cast<int64_t>(i)), t[1], t[2], t[3]});
    rel.InsertUnique(std::move(row)).ok();  // ids make every row distinct
  }
  Database db;
  db.Put("F", std::move(rel));
  AlgPtr q = Select(Scan("F"), CAnd(COr(CEq("b", "c"),
                                        CNeqc("d", Value::Int(3))),
                                    CIsConst("b")));
  std::printf("\n%-24s %10s %12s\n", "filter_batch", "batch", "ns/row");
  for (size_t batch : {size_t{0}, size_t{256}, size_t{1024}, size_t{4096}}) {
    EvalOptions o;
    o.batch_size = batch;
    double ms = ctx.TimeMs([&] { EvalSql(q, db, o).ok(); });
    const double ns_per_row = ms * 1e6 / kRows;
    std::printf("%-24s %10zu %12.2f\n", "", batch, ns_per_row);
    ctx.Report("filter_batch", ms)
        .Param("batch_size", static_cast<int64_t>(batch))
        .Param("rows", static_cast<int64_t>(kRows))
        .Param("ns_per_row", ns_per_row);
  }
}

/// Batch-size sweep of the vectorized hash-join probe: customer ⨝ orders
/// with a residual range conjunct (so the probe really evaluates a
/// predicate per candidate pair, not just the trivial kTrue skip).
/// Reports ns/row of probe input per batch size.
INCDB_BENCH(hash_join_batch) {
  tpch::GenOptions opts;
  opts.scale = 2.0;
  opts.null_rate = 0.02;
  Database db = tpch::Generate(opts);
  const size_t probe_rows = db.Find("orders")->rows().size();
  AlgPtr q = Join(Scan("customer"), Scan("orders"),
                  CAnd(CEq("c_custkey", "o_custkey"),
                       CGtc("o_totalprice", Value::Int(25000))));
  std::printf("%-24s %10s %12s\n", "hash_join_batch", "batch", "ns/row");
  for (size_t batch : {size_t{0}, size_t{256}, size_t{1024}, size_t{4096}}) {
    EvalOptions o;
    o.batch_size = batch;
    double ms = ctx.TimeMs([&] { EvalSet(q, db, o).ok(); });
    const double ns_per_row = ms * 1e6 / static_cast<double>(probe_rows);
    std::printf("%-24s %10zu %12.2f\n", "", batch, ns_per_row);
    ctx.Report("hash_join_batch", ms)
        .Param("batch_size", static_cast<int64_t>(batch))
        .Param("probe_rows", static_cast<int64_t>(probe_rows))
        .Param("ns_per_row", ns_per_row);
  }
}

/// Cost of the cooperative cancellation checkpoints: the hash_join
/// workload with an inert ExecContext (the default every query runs
/// with) versus one armed with a far-future deadline, which forces the
/// amortized clock reads on the 4096-row cadence. The reported overhead
/// percentage is the price of deadline support on a query that never
/// times out; the PR 7 budget for it is ≤2%.
INCDB_BENCH(cancel_checkpoint_overhead) {
  tpch::GenOptions opts;
  opts.scale = 2.0;
  opts.null_rate = 0.02;
  Database db = tpch::Generate(opts);
  AlgPtr q = Join(Scan("customer"), Scan("orders"),
                  CEq("c_custkey", "o_custkey"));
  double base_ms = ctx.TimeMs([&] { EvalSet(q, db).ok(); });
  ExecContext far = ExecContext::WithDeadlineMs(60 * 60 * 1000);
  double armed_ms =
      ctx.TimeMs([&] { EvalSet(q, db, EvalOptions{}, far).ok(); });
  const double overhead_pct =
      base_ms > 0 ? (armed_ms - base_ms) / base_ms * 100.0 : 0.0;
  std::printf("%-24s %10.2f ms inert / %.2f ms armed (%+.1f%%)\n",
              "cancel_checkpoint", base_ms, armed_ms, overhead_pct);
  ctx.Report("cancel_checkpoint_overhead", armed_ms)
      .Param("inert_ms", base_ms)
      .Param("overhead_pct", overhead_pct);
}

/// Plan-compilation cost: lowering + rewrite passes for the W1 NOT-IN
/// query's Q+ rewriting — the price EvalSet pays per call before
/// execution, and what a Compile-once caller amortises away.
INCDB_BENCH(plan_compile) {
  constexpr int kCompiles = 1 << 10;
  tpch::GenOptions opts;
  opts.scale = 0.5;
  opts.null_rate = 0.02;
  Database db = tpch::Generate(opts);
  auto plus = TranslatePlus(tpch::Workload()[0].algebra, db);
  if (!plus.ok()) {
    ctx.SetFailed();
    return;
  }
  EvalOptions eopts;
  volatile bool sink = false;
  double ms = ctx.TimeMs([&] {
    for (int i = 0; i < kCompiles; ++i) {
      sink = Compile(*plus, EvalMode::kSetNaive, eopts, db).ok();
    }
  });
  (void)sink;
  std::printf("%-24s %10.3f ms / %d plans  (%.2f µs/plan)\n", "plan_compile",
              ms, kCompiles, ms * 1e3 / kCompiles);
  ctx.Report("plan_compile", ms)
      .Param("batch", kCompiles)
      .Param("us_per_plan", ms * 1e3 / kCompiles);
}

/// The amortised repeat-query cost the plan cache buys: the same Q+ query
/// as plan_compile, but served from the query-identity cache — key
/// serialization + one locked map probe instead of a full lowering + pass
/// pipeline. The speedup parameter is cache-hit cost vs. plan_compile's
/// per-plan cost on the same query (the ≥5× acceptance bar of PR 4).
INCDB_BENCH(plan_cache_hit) {
  constexpr int kLookups = 1 << 10;
  tpch::GenOptions opts;
  opts.scale = 0.5;
  opts.null_rate = 0.02;
  Database db = tpch::Generate(opts);
  auto plus = TranslatePlus(tpch::Workload()[0].algebra, db);
  if (!plus.ok()) {
    ctx.SetFailed();
    return;
  }
  EvalOptions eopts;
  PlanCache cache;
  // Warm the single entry, then measure pure hits.
  if (!cache.CompileCached(*plus, EvalMode::kSetNaive, eopts, db).ok()) {
    ctx.SetFailed();
    return;
  }
  volatile bool sink = false;
  double hit_ms = ctx.TimeMs([&] {
    for (int i = 0; i < kLookups; ++i) {
      sink = cache.CompileCached(*plus, EvalMode::kSetNaive, eopts, db).ok();
    }
  });
  double compile_ms = ctx.TimeMs([&] {
    for (int i = 0; i < kLookups; ++i) {
      sink = Compile(*plus, EvalMode::kSetNaive, eopts, db).ok();
    }
  });
  (void)sink;
  const double us_per_hit = hit_ms * 1e3 / kLookups;
  const double us_per_compile = compile_ms * 1e3 / kLookups;
  std::printf(
      "%-24s %10.3f ms / %d lookups  (%.2f µs/hit vs %.2f µs/compile, "
      "%.1fx)\n",
      "plan_cache_hit", hit_ms, kLookups, us_per_hit, us_per_compile,
      us_per_compile / us_per_hit);
  ctx.Report("plan_cache_hit", hit_ms)
      .Param("batch", kLookups)
      .Param("us_per_hit", us_per_hit)
      .Param("compile_speedup", us_per_compile / us_per_hit);
}

/// The amortisation the prepared-query facade buys for "same template,
/// different constants" traffic: N executions of one query shape, as
/// (a) per-call parse + translate + evaluate of the literal SQL — each
/// distinct constant is its own plan-cache key, so the first cycle over
/// the constants compiles per call and later cycles still pay parse,
/// translation and key serialization (with more distinct constants than
/// cache capacity it would recompile every call, so this baseline is
/// *conservative*) — vs (b) Session::Prepare once, then bind-and-execute
/// against the cached parameterized template (BindPlanParams clones only
/// the nodes a binding touches — no parse, no translate, no rewrite
/// passes). The speedup parameter is (a)/(b) per call.
INCDB_BENCH(prepared_exec_hit) {
  constexpr int kCalls = 1 << 10;
  constexpr int kRows = 128;  // small: the frontend cost is what's measured
  Database db;
  Relation r({"id", "val"});
  for (int i = 0; i < kRows; ++i) {
    r.Add({Value::Int(i), Value::Int(i * 7 % kRows)});
  }
  db.Put("R", std::move(r));

  // (a) the free-function path a naive caller writes today.
  double literal_ms = ctx.TimeMs([&] {
    for (int i = 0; i < kCalls; ++i) {
      std::string sql =
          "SELECT val FROM R WHERE id = " + std::to_string(i % kRows);
      auto alg = ParseSqlToAlgebra(sql, db);
      if (alg.ok()) EvalSql(*alg, db).ok();
    }
  });

  // (b) prepare once, execute with bindings.
  Session sess(std::move(db));
  auto pq = sess.Prepare("SELECT val FROM R WHERE id = ?");
  if (!pq.ok()) {
    ctx.SetFailed();
    return;
  }
  double prepared_ms = ctx.TimeMs([&] {
    for (int i = 0; i < kCalls; ++i) {
      pq->Execute({Value::Int(i % kRows)}).ok();
    }
  });

  const double us_literal = literal_ms * 1e3 / kCalls;
  const double us_prepared = prepared_ms * 1e3 / kCalls;
  std::printf(
      "\n%-24s %10.3f ms / %d execs  (%.2f µs/exec vs %.2f µs literal, "
      "%.1fx)\n",
      "prepared_exec_hit", prepared_ms, kCalls, us_prepared, us_literal,
      us_literal / us_prepared);
  ctx.Report("prepared_exec_hit", prepared_ms)
      .Param("batch", kCalls)
      .Param("us_per_exec", us_prepared)
      .Param("us_per_literal_call", us_literal)
      .Param("speedup", us_literal / us_prepared);
}

/// Result-cache win for repeat queries on unchanged data: the same bound
/// execution (a) with the result cache off — every call scans and filters
/// kRows rows — vs (b) with it on, where after one priming miss every
/// call is a version-stamp lookup returning the shared cached relation.
/// The speedup parameter is (a)/(b) per call.
INCDB_BENCH(result_cache_hit) {
  constexpr int kCalls = 1 << 8;
  constexpr int kRows = 50'000;
  Database db;
  Relation r({"a", "b"});
  r.Reserve(kRows);
  std::mt19937_64 rng(17);
  for (int i = 0; i < kRows; ++i) {
    r.Add({Value::Int(i), Value::Int(static_cast<int64_t>(rng() % 100))});
  }
  db.Put("R", std::move(r));
  // ~1% of rows pass: a hit's cost is the lookup + copying out the small
  // result, not re-copying half the table.
  const std::vector<Value> binding = {Value::Int(99)};

  // (a) cache off: every Execute runs the plan.
  EvalOptions off;
  off.use_result_cache = false;
  Session plain(db, off);
  auto pq_off = plain.Prepare("SELECT a FROM R WHERE b >= ?");
  if (!pq_off.ok()) {
    ctx.SetFailed();
    return;
  }
  double miss_ms = ctx.TimeMs([&] {
    for (int i = 0; i < kCalls; ++i) {
      pq_off->Execute(binding).ok();
    }
  });

  // (b) cache on: one priming miss, then version-stamped hits.
  Session cached(std::move(db));
  auto pq_on = cached.Prepare("SELECT a FROM R WHERE b >= ?");
  if (!pq_on.ok() || !pq_on->Execute(binding).ok()) {
    ctx.SetFailed();
    return;
  }
  double hit_ms = ctx.TimeMs([&] {
    for (int i = 0; i < kCalls; ++i) {
      pq_on->Execute(binding).ok();
    }
  });
  if (cached.stats().result_cache.hits < static_cast<uint64_t>(kCalls)) {
    ctx.SetFailed();  // the timed loop was not actually hitting
    return;
  }

  const double us_hit = hit_ms * 1e3 / kCalls;
  const double us_miss = miss_ms * 1e3 / kCalls;
  std::printf(
      "\n%-24s %10.3f ms / %d execs  (%.2f µs/hit vs %.2f µs uncached, "
      "%.1fx)\n",
      "result_cache_hit", hit_ms, kCalls, us_hit, us_miss, us_miss / us_hit);
  ctx.Report("result_cache_hit", hit_ms)
      .Param("batch", kCalls)
      .Param("rows", kRows)
      .Param("us_per_hit", us_hit)
      .Param("us_per_uncached_exec", us_miss)
      .Param("speedup", us_miss / us_hit);
}

/// Incremental-maintenance win on a cached 100k-row join: each cycle
/// commits ONE inserted row into the 100k-row side of R ⋈ S, then brings
/// the cached result up to date either (a) by full recompute against the
/// post-commit snapshot — what invalidation forces — or (b) by
/// propagating the 1-row delta through the plan (eval/delta.h: filter the
/// delta window, probe it against the 1000-row unchanged side) and
/// applying it in place. The commits themselves run outside the timed
/// regions: the storage engine pays the same copy-on-write cost under
/// either serving strategy, and what this benchmark tracks is the cost of
/// *keeping the cached result fresh*. The speedup parameter is (a)/(b)
/// per cycle — the acceptance floor is 10x.
INCDB_BENCH(result_cache_maintain) {
  constexpr int kCycles = 32;
  constexpr int kRows = 100'000;
  constexpr int kSRows = 1'000;
  Database db;
  Relation r({"a", "k"});
  r.Reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    r.Add({Value::Int(i), Value::Int(i % kSRows)});
  }
  Relation s({"k2", "b"});
  s.Reserve(kSRows);
  for (int i = 0; i < kSRows; ++i) {
    s.Add({Value::Int(i), Value::Int(1'000'000 + i)});
  }
  db.Put("R", std::move(r));
  db.Put("S", std::move(s));
  // ~100 joined rows survive the filter: the cached relation stays small,
  // so the timed contrast is delta-propagation vs re-join, not copying.
  const std::string sql = "SELECT a, b FROM R, S WHERE k = k2 AND a >= " +
                          std::to_string(kRows - 100);
  auto alg = ParseSqlToAlgebra(sql, db);
  auto plan = alg.ok() ? Compile(*alg, EvalMode::kSetSql, EvalOptions{}, db)
                       : alg.status();
  auto cached = plan.ok() ? incdb::Execute(*plan, db) : plan.status();
  if (!cached.ok() || !(*plan)->maintainable) {
    ctx.SetFailed();
    return;
  }

  // One 1-row commit per cycle, outside the timed regions; each
  // CommitInfo pins its pre/post snapshots, so both strategies replay the
  // same history.
  std::vector<CommitInfo> commits(kCycles);
  for (int i = 0; i < kCycles; ++i) {
    Database::Txn txn = db.Begin();
    if (!txn.Insert("R", {Value::Int(kRows + i),
                          Value::Int((kRows + i) % kSRows)})
             .ok() ||
        !db.Commit(std::move(txn), &commits[static_cast<size_t>(i)]).ok()) {
      ctx.SetFailed();
      return;
    }
  }

  // (a) recompute: re-execute the full join per commit.
  volatile size_t sink = 0;
  double recompute_ms = ctx.TimeMs([&] {
    for (const CommitInfo& info : commits) {
      auto rel = incdb::Execute(*plan, info.post);
      if (rel.ok()) sink += rel->rows().size();
    }
  });

  // (b) maintain: propagate each 1-row delta and apply it in place.
  // Set-semantics application is idempotent, so best-of-reps replays of
  // the same history are harmless.
  Relation maintained = *cached;
  double maintain_ms = ctx.TimeMs([&] {
    for (const CommitInfo& info : commits) {
      auto delta = PropagateDelta(*plan, info);
      if (!delta.ok() ||
          !ApplyResultDelta(&maintained, *delta, /*set_semantics=*/true)
               .ok()) {
        ctx.SetFailed();
        return;
      }
    }
  });

  // The maintained relation must be bit-identical to a cold recompute of
  // the final state — otherwise the speedup is meaningless.
  auto final_rel = incdb::Execute(*plan, commits.back().post);
  if (!final_rel.ok() || !final_rel->SameRows(maintained) || ctx.failed()) {
    ctx.SetFailed();
    return;
  }

  const double us_maintain = maintain_ms * 1e3 / kCycles;
  const double us_recompute = recompute_ms * 1e3 / kCycles;
  std::printf(
      "\n%-24s %10.3f ms / %d deltas  (%.2f µs/delta vs %.2f µs recompute, "
      "%.1fx)\n",
      "result_cache_maintain", maintain_ms, kCycles, us_maintain,
      us_recompute, us_recompute / us_maintain);
  ctx.Report("result_cache_maintain", maintain_ms)
      .Param("batch", kCycles)
      .Param("rows", kRows)
      .Param("us_per_delta_cycle", us_maintain)
      .Param("us_per_recompute_cycle", us_recompute)
      .Param("speedup", us_recompute / us_maintain);
}

/// Streaming-cursor win for top-k/exists consumers: a filter-shaped query
/// over a large scan, consuming only the first 10 rows — the cursor pulls
/// them through the root chain lazily, the materialised Execute pays for
/// the whole result first.
INCDB_BENCH(cursor_stream) {
  constexpr int kRows = 100'000;
  constexpr int kTake = 10;
  Database db;
  Relation r({"a", "b"});
  r.Reserve(kRows);
  std::mt19937_64 rng(31);
  for (int i = 0; i < kRows; ++i) {
    r.Add({Value::Int(i), Value::Int(static_cast<int64_t>(rng() % 100))});
  }
  db.Put("R", std::move(r));
  Session sess(std::move(db));
  auto pq = sess.Prepare("SELECT a FROM R WHERE b >= ?");
  if (!pq.ok()) {
    ctx.SetFailed();
    return;
  }
  const std::vector<Value> binding = {Value::Int(0)};  // passes every row

  volatile uint64_t sink = 0;
  double cursor_ms = ctx.TimeMs([&] {
    auto cur = pq->OpenCursor(binding);
    if (!cur.ok()) return;
    for (int i = 0; i < kTake && cur->Next(); ++i) sink += cur->count();
  });
  double full_ms = ctx.TimeMs([&] {
    auto rel = pq->Execute(binding);
    if (rel.ok()) sink += rel->rows().size();
  });
  (void)sink;
  std::printf("%-24s %10.3f ms cursor(top-%d) vs %8.3f ms full  (%.0fx)\n",
              "cursor_stream", cursor_ms, kTake, full_ms,
              full_ms / cursor_ms);
  ctx.Report("cursor_stream", cursor_ms)
      .Param("rows", kRows)
      .Param("take", kTake)
      .Param("full_ms", full_ms)
      .Param("speedup", full_ms / cursor_ms);
}

/// Difference throughput at TPC-H-lite scale (orders minus the lineitem
/// order keys), sequential vs. the chunk-partitioned parallel operator —
/// one record per thread count, in both naive-set and SQL NOT-IN modes.
INCDB_BENCH(difference_parallel) {
  tpch::GenOptions gopts;
  gopts.scale = 2.0;
  gopts.null_rate = 0.02;
  Database db = tpch::Generate(gopts);
  AlgPtr q =
      Diff(Project(Scan("orders"), {"o_orderkey"}),
           Rename(Project(Scan("lineitem"), {"l_orderkey"}), {"o_orderkey"}));
  std::printf("\n");
  for (size_t threads : {1, 4}) {
    EvalOptions opts;
    opts.num_threads = threads;
    opts.use_plan_cache = false;
    double set_ms = ctx.TimeMs([&] { EvalSet(q, db, opts).ok(); });
    double sql_ms = ctx.TimeMs([&] { EvalSql(q, db, opts).ok(); });
    std::printf("%-24s %10.2f ms set / %8.2f ms sql  (threads=%zu)\n",
                "difference_parallel", set_ms, sql_ms, threads);
    ctx.Report("difference_parallel", set_ms)
        .Param("threads", static_cast<int64_t>(threads))
        .Param("mode", "set")
        .Param("tuples", static_cast<int64_t>(db.TotalSize()));
    ctx.Report("difference_parallel_sql", sql_ms)
        .Param("threads", static_cast<int64_t>(threads))
        .Param("mode", "sql")
        .Param("tuples", static_cast<int64_t>(db.TotalSize()));
  }
}

/// Nested-loop join throughput (non-equality θ, so no hash fast path),
/// sequential vs. the chunk-partitioned parallel operator.
INCDB_BENCH(nl_join_parallel) {
  std::mt19937_64 rng(21);
  Database db;
  Relation l({"a", "b"}), r({"c", "d"});
  for (int i = 0; i < 1200; ++i) {
    l.Add({Value::Int(static_cast<int64_t>(i)),
           Value::Int(static_cast<int64_t>(rng() % 4096))});
    r.Add({Value::Int(static_cast<int64_t>(i)),
           Value::Int(static_cast<int64_t>(rng() % 4096))});
  }
  db.Put("L", std::move(l));
  db.Put("Rr", std::move(r));
  // b < d keeps ~half of the 1.44M pairs out; the survivors stress the
  // emit path, the rest the predicate loop.
  AlgPtr q = Project(Select(Product(Scan("L"), Scan("Rr")), CLt("b", "d")),
                     {"a", "c"});
  for (size_t threads : {1, 4}) {
    EvalOptions opts;
    opts.num_threads = threads;
    opts.use_plan_cache = false;
    double ms = ctx.TimeMs([&] { EvalSet(q, db, opts).ok(); });
    std::printf("%-24s %10.2f ms (threads=%zu)\n", "nl_join_parallel", ms,
                threads);
    ctx.Report("nl_join_parallel", ms)
        .Param("threads", static_cast<int64_t>(threads))
        .Param("pairs", static_cast<int64_t>(1200) * 1200);
  }
}
