// Experiment E6 (paper §4.3, Theorem 4.10): the 0–1 law. µ_k(Q, D, ā)
// converges to 1 exactly for naive answers and to 0 for everything else;
// the table prints the convergent sequences.

#include "algebra/builder.h"
#include "bench/bench_util.h"
#include "eval/eval.h"
#include "prob/prob.h"

using namespace incdb;  // NOLINT

INCDB_BENCH(zero_one_law) {
  bench::Header(
      "E6", "the 0–1 law of µ(Q, D, ā) (Theorem 4.10)",
      "a tuple is almost certainly true (µ = 1) iff it is a naive answer; "
      "otherwise µ = 0 — finding them is AC0 instead of coNP.");

  // D: R = {1}, S = {⊥0}; plus a join-flavoured query.
  Database db;
  Relation r({"x"}), s({"x"}), e({"a", "b"});
  r.Add({Value::Int(1)});
  s.Add({Value::Null(0)});
  e.Add({Value::Int(1), Value::Null(1)});
  e.Add({Value::Null(1), Value::Int(2)});
  db.Put("R", r);
  db.Put("S", s);
  db.Put("E", e);

  struct Probe {
    const char* label;
    AlgPtr q;
    Tuple tuple;
  };
  std::vector<Probe> probes;
  probes.push_back({"R−S @ (1)   [naive answer]",
                    Diff(Scan("R"), Scan("S")), Tuple{Value::Int(1)}});
  probes.push_back({"S−R @ (⊥0)  [naive answer]",
                    Diff(Scan("S"), Scan("R")), Tuple{Value::Null(0)}});
  probes.push_back({"σx=2(S) @ (2) [not naive]",
                    Select(Scan("S"), CEqc("x", Value::Int(2))),
                    Tuple{Value::Int(2)}});
  probes.push_back(
      {"path 1→2 via E [naive answer]",
       Project(Select(Product(Rename(Scan("E"), {"a", "b"}),
                              Rename(Scan("E"), {"c", "d"})),
                      CAnd(CAnd(CEqc("a", Value::Int(1)), CEq("b", "c")),
                           CEqc("d", Value::Int(2)))),
               {"a"}),
       Tuple{Value::Int(1)}});

  const size_t ks[] = {2, 3, 5, 8, 13, 21, 34};
  std::printf("%-30s", "probe");
  for (size_t k : ks) std::printf("  k=%-5zu", k);
  std::printf("  limit naive?\n");

  bool shape = true;
  for (const Probe& p : probes) {
    std::printf("%-30s", p.label);
    double last = -1;
    for (size_t k : ks) {
      auto mu = MuK(p.q, db, p.tuple, k);
      if (!mu.ok()) {
        std::printf("  %-7s", "err");
        continue;
      }
      last = mu->ratio();
      std::printf("  %-7.3f", last);
    }
    auto limit = MuLimit(p.q, db, p.tuple);
    auto naive = AlmostCertainlyTrue(p.q, db, p.tuple);
    bool lim_ok = limit.ok() && naive.ok();
    std::printf("  %.0f    %s\n", lim_ok ? *limit : -1.0,
                lim_ok && *naive ? "yes" : "no");
    ctx.ReportInfo("zero_one_probe")
        .Param("probe", p.label)
        .Param("mu_k34", last)
        .Param("limit", lim_ok ? *limit : -1.0)
        .Param("naive_answer", lim_ok && *naive);
    if (lim_ok) {
      // Convergence direction: the k=34 value must be within 0.15 of the
      // predicted limit.
      shape &= std::abs(last - *limit) < 0.15;
      shape &= (*limit == 1.0) == *naive;
    } else {
      shape = false;
    }
  }

  bench::Footer(shape,
                "every probe's µ_k sequence approaches the 0/1 limit "
                "predicted by naive-evaluation membership.");
  ctx.ReportInfo("zero_one_shape").Param("shape_holds", shape);
  if (!shape) ctx.SetFailed();
}
