// Experiment E1 (paper §1, Figure 1): a single NULL makes SQL produce
// false negatives and false positives; certain-answer machinery repairs
// correctness. Regenerates the answers the paper walks through.

#include <string>

#include "algebra/builder.h"
#include "approx/approx.h"
#include "bench/bench_util.h"
#include "certain/certain.h"
#include "eval/eval.h"
#include "sql/translate.h"

using namespace incdb;  // NOLINT

namespace {

Database MakeDb(bool with_null) {
  Database db;
  Relation orders({"oid", "title", "price"});
  orders.Add({Value::String("o1"), Value::String("Big Data"), Value::Int(30)});
  orders.Add({Value::String("o2"), Value::String("SQL"), Value::Int(35)});
  orders.Add({Value::String("o3"), Value::String("Logic"), Value::Int(50)});
  Relation payments({"cid", "oid"});
  payments.Add({Value::String("c1"), Value::String("o1")});
  payments.Add({Value::String("c2"),
                with_null ? Value::Null(1) : Value::String("o2")});
  Relation customers({"cid", "name"});
  customers.Add({Value::String("c1"), Value::String("John")});
  customers.Add({Value::String("c2"), Value::String("Mary")});
  db.Put("Orders", std::move(orders));
  db.Put("Payments", std::move(payments));
  db.Put("Customers", std::move(customers));
  return db;
}

std::string Cell(const StatusOr<Relation>& r) {
  if (!r.ok()) return r.status().ToString();
  std::string out = "{";
  bool first = true;
  for (const Tuple& t : r->SortedTuples()) {
    out += (first ? "" : ",") + t.ToString();
    first = false;
  }
  return out + "}";
}

}  // namespace

INCDB_BENCH(fig1_motivating) {
  bench::Header(
      "E1", "SQL's false negatives and false positives (Fig. 1)",
      "unpaid-orders: {o3} on complete data, {} after one NULL; "
      "customers-without-paid-order invents c2; the tautology query "
      "returns {c1} though {c1,c2} is certain.");

  const std::string queries[][2] = {
      {"unpaid-orders",
       "SELECT oid FROM Orders WHERE oid NOT IN "
       "( SELECT oid FROM Payments )"},
      {"no-paid-order",
       "SELECT C.cid FROM Customers C WHERE NOT EXISTS "
       "( SELECT * FROM Orders O, Payments P "
       "  WHERE C.cid = P.cid AND P.oid = O.oid )"},
      {"tautology",
       "SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'"},
  };

  Database complete = MakeDb(false);
  Database nulled = MakeDb(true);

  std::printf("%-15s %-12s %-12s %-14s %-12s %-18s\n", "query",
              "SQL(complete)", "SQL(null)", "cert⊥(null)", "Q+(null)",
              "Q?(null)");
  bool shape = true;
  for (const auto& [name, sql] : queries) {
    auto alg_c = ParseSqlToAlgebra(sql, complete);
    auto alg_n = ParseSqlToAlgebra(sql, nulled);
    if (!alg_c.ok() || !alg_n.ok()) {
      std::printf("%-15s translation error\n", name.c_str());
      shape = false;
      continue;
    }
    auto sql_c = EvalSql(*alg_c, complete);
    auto sql_n = EvalSql(*alg_n, nulled);
    auto cert = CertWithNulls(*alg_n, nulled);
    auto plus = EvalPlus(*alg_n, nulled);
    auto maybe = EvalMaybe(*alg_n, nulled);
    std::printf("%-15s %-12s %-12s %-14s %-12s %-18s\n", name.c_str(),
                Cell(sql_c).c_str(), Cell(sql_n).c_str(), Cell(cert).c_str(),
                Cell(plus).c_str(), Cell(maybe).c_str());
    ctx.ReportInfo("fig1_query")
        .Param("query", name)
        .Param("sql_complete", Cell(sql_c))
        .Param("sql_null", Cell(sql_n))
        .Param("cert_null", Cell(cert))
        .Param("plus_null", Cell(plus))
        .Param("maybe_null", Cell(maybe));
    if (name == "unpaid-orders") {
      shape &= sql_c.ok() && sql_c->Contains(Tuple{Value::String("o3")});
      shape &= sql_n.ok() && sql_n->Empty();
    }
    if (name == "no-paid-order") {
      shape &= sql_c.ok() && sql_c->Empty();
      shape &= sql_n.ok() && sql_n->Contains(Tuple{Value::String("c2")});
      shape &= cert.ok() && cert->Empty();  // c2 is a false positive
      shape &= plus.ok() && plus->Empty();  // Q+ never reports it
    }
    if (name == "tautology") {
      shape &= sql_n.ok() && sql_n->TotalSize() == 1;
      shape &= cert.ok() && cert->TotalSize() == 2;
    }
  }

  bench::Footer(shape,
                "SQL loses o3 (false negative), invents c2 (false "
                "positive), drops the certain c2 on the tautology; Q+ stays "
                "within cert⊥ on all three.");
  ctx.ReportInfo("fig1_shape").Param("shape_holds", shape);
  if (!shape) ctx.SetFailed();
}
