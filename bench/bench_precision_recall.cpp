// Experiment E4 (paper §4.2, the SIGMOD'19 study [27]): with respect to
// the ground truth (exact certain answers), the Q+ translation has perfect
// precision but its recall degrades quickly as the amount of
// incompleteness grows; evaluation without guarantees (plain SQL)
// additionally loses precision (invents non-certain answers). Ground truth
// is exact cert⊥ by brute-force valuation enumeration, so the instances
// are kept small (see DESIGN.md §3).
//
// Query design note: a NOT-IN query against a nulled set has *empty*
// certain answers (a bare null can be anything), which makes recall
// trivially perfect. The workload therefore includes the query shapes
// where approximation genuinely loses recall:
//  * a tautological selection σ(b=0 ∨ b≠0)(S) — everything is certain,
//    but Q+'s θ*-guard drops every null row;
//  * a double negation R − (S − T) — the eager ⋉⇑ rule under-approximates;
//  * a NOT EXISTS (antijoin) — where SQL invents non-certain answers.

#include <random>

#include "algebra/builder.h"
#include "approx/approx.h"
#include "bench/bench_util.h"
#include "certain/certain.h"
#include "eval/eval.h"

using namespace incdb;  // NOLINT

namespace {

/// R, S, T unary; `n_nulls` cells of S and T become fresh nulls.
Database MakeDb(size_t n_tuples, size_t n_nulls, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> val(0, 9);
  uint64_t next_null = 100;
  auto fill = [&](Relation* rel, size_t nulls_here) {
    size_t injected = 0;
    for (size_t i = 0; i < n_tuples; ++i) {
      if (injected < nulls_here) {
        rel->Add({Value::Null(next_null++)});
        ++injected;
      } else {
        rel->Add({Value::Int(val(rng))});
      }
    }
  };
  Database db;
  Relation r({"a"}), s({"b"}), t({"c"});
  fill(&r, 0);  // the positive side stays complete
  fill(&s, n_nulls);
  fill(&t, (n_nulls + 1) / 2);
  db.Put("R", r.ToSet());
  db.Put("S", s.ToSet());
  db.Put("T", t.ToSet());
  return db;
}

std::vector<AlgPtr> Workload() {
  return {
      // Tautological selection: certain for every S row.
      Select(Scan("S"), COr(CEqc("b", Value::Int(0)),
                            CNeqc("b", Value::Int(0)))),
      // Double negation R − (S − T).
      Diff(Scan("R"),
           Rename(Diff(Scan("S"), Rename(Scan("T"), {"b"})), {"a"})),
      // NOT EXISTS: R rows with no equal S partner.
      Antijoin(Scan("R"), Scan("S"), CEq("a", "b")),
  };
}

struct PR {
  double precision = 1.0;
  double recall = 1.0;
};

PR Score(const Relation& reported, const Relation& truth) {
  size_t tp = 0;
  for (const Tuple& t : reported.SortedTuples()) {
    if (truth.Contains(t)) ++tp;
  }
  PR pr;
  pr.precision =
      reported.Empty() ? 1.0 : double(tp) / double(reported.DistinctSize());
  pr.recall = truth.Empty() ? 1.0 : double(tp) / double(truth.DistinctSize());
  return pr;
}

}  // namespace

INCDB_BENCH(precision_recall) {
  bench::Header(
      "E4", "precision/recall of Q+ and SQL vs exact certain answers ([27])",
      "\"the Q+ translation had obviously perfect precision (100%), but "
      "recall degraded quickly with the increase in the amount of "
      "incompleteness\"; approaches without guarantees lose precision.");

  std::printf("%8s %10s | %10s %10s | %10s %10s\n", "nulls", "|cert⊥|",
              "Q+ prec", "Q+ recall", "SQL prec", "SQL recall");
  double recall_at_zero = -1, recall_at_max = -1;
  bool plus_precision_perfect = true;
  bool sql_loses_precision = false;
  for (size_t nulls : {0, 1, 2, 3, 4, 5}) {
    double plus_p = 0, plus_r = 0, sql_p = 0, sql_r = 0, cert_sz = 0;
    int rounds = 0;
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      Database db = MakeDb(12, nulls, seed);
      for (const AlgPtr& q : Workload()) {
        auto cert = CertWithNulls(q, db);
        auto plus = EvalPlus(q, db);
        auto sql = EvalSql(q, db);
        if (!cert.ok() || !plus.ok() || !sql.ok()) continue;
        PR pp = Score(*plus, *cert);
        PR sp = Score(*sql, *cert);
        plus_p += pp.precision;
        plus_r += pp.recall;
        sql_p += sp.precision;
        sql_r += sp.recall;
        cert_sz += double(cert->DistinctSize());
        ++rounds;
      }
    }
    if (rounds == 0) continue;
    plus_p /= rounds;
    plus_r /= rounds;
    sql_p /= rounds;
    sql_r /= rounds;
    cert_sz /= rounds;
    std::printf("%8zu %10.1f | %10.3f %10.3f | %10.3f %10.3f\n", nulls,
                cert_sz, plus_p, plus_r, sql_p, sql_r);
    ctx.ReportInfo("precision_recall")
        .Param("nulls", static_cast<int64_t>(nulls))
        .Param("cert_size", cert_sz)
        .Param("plus_precision", plus_p)
        .Param("plus_recall", plus_r)
        .Param("sql_precision", sql_p)
        .Param("sql_recall", sql_r);
    plus_precision_perfect &= plus_p >= 1.0 - 1e-9;
    if (nulls == 0) recall_at_zero = plus_r;
    recall_at_max = plus_r;
    if (nulls >= 1 && sql_p < 1.0 - 1e-9) sql_loses_precision = true;
  }

  bool recall_degrades = recall_at_zero >= 1.0 - 1e-9 &&
                         recall_at_max < recall_at_zero - 0.05;
  bool shape = plus_precision_perfect && recall_degrades && sql_loses_precision;
  bench::Footer(shape,
                "Q+ precision pinned at 100% while its recall decays with "
                "null count; SQL additionally reports non-certain tuples "
                "(precision < 1).");
  ctx.ReportInfo("precision_recall_shape").Param("shape_holds", shape);
  if (!shape) ctx.SetFailed();
}
