// Experiment E2 (paper §4.2, Fig. 2a vs 2b): the (Qt, Qf) translation of
// [51] multiplies active-domain products Dom^k and becomes infeasible on
// databases with fewer than 10³ tuples, while the (Q+, Q?) translation of
// [37] scales. Sweep |D| and time both schemes on a difference query.

#include <random>

#include "algebra/builder.h"
#include "approx/approx.h"
#include "bench/bench_util.h"
#include "eval/eval.h"

using namespace incdb;  // NOLINT

namespace {

/// Binary relations R, S with `n` tuples each and ~3% nulls.
Database MakeDb(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> val(0, static_cast<int64_t>(n));
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  uint64_t next_null = 1;
  auto value = [&]() -> Value {
    if (coin(rng) < 0.03) return Value::Null(next_null++);
    return Value::Int(val(rng));
  };
  Database db;
  Relation r({"a", "b"}), s({"c", "d"});
  for (size_t i = 0; i < n; ++i) {
    r.Add({value(), value()});
    s.Add({value(), value()});
  }
  db.Put("R", r.ToSet());
  db.Put("S", s.ToSet());
  return db;
}

}  // namespace

INCDB_BENCH(scheme_blowup) {
  bench::Header(
      "E2", "Fig. 2(a) (Qt,Qf) blow-up vs Fig. 2(b) (Q+,Q?) scaling",
      "\"simple queries start running out of memory on instances with "
      "fewer than 10^3 tuples\" for scheme (a); scheme (b) avoids Dom^k "
      "products entirely.");

  // Q = R − S (same-arity difference): Qt = Rt ∩ Sf needs Sf = Dom² ⋉⇑ S.
  AlgPtr q = Diff(Scan("R"), Rename(Scan("S"), {"a", "b"}));

  EvalOptions budget;
  budget.max_tuples = 2'000'000;  // the "memory" budget

  std::printf("%8s  %14s  %16s  %16s\n", "|R|=|S|", "naive eval ms",
              "Fig2b Q+ ms", "Fig2a Qt ms");
  bool fig2a_died = false;
  size_t fig2a_death_size = 0;
  bool fig2b_survived_all = true;
  for (size_t n : {10, 30, 100, 300, 1000, 3000}) {
    Database db = MakeDb(n, 42 + n);
    double t_naive = ctx.TimeMs([&] { EvalSet(q, db).ok(); });
    bool plus_ok = true, qt_ok = true;
    double t_plus = ctx.TimeMs([&] {
      auto r = EvalPlus(q, db, budget);
      plus_ok = r.ok();
    });
    std::string qt_cell = "skipped (already exhausted)";
    if (!fig2a_died) {
      // Single run: exhausting the Dom^2 tuple budget is deterministic,
      // and best-of-N would just re-exhaust it N times.
      double t_qt = ctx.TimeMs(
          [&] {
            auto r = EvalCertTrue(q, db, budget);
            qt_ok = r.ok();
          },
          1);
      ctx.Report("fig2a_qt", t_qt)
          .Timing(1)
          .Param("n", static_cast<int64_t>(n))
          .Param("exhausted", !qt_ok);
      if (qt_ok) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", t_qt);
        qt_cell = buf;
      } else {
        qt_cell = "EXHAUSTED (Dom^2)";
        fig2a_died = true;
        fig2a_death_size = n;
      }
    }
    fig2b_survived_all &= plus_ok;
    std::printf("%8zu  %14.2f  %16.2f  %s\n", n, t_naive, t_plus,
                qt_cell.c_str());
    ctx.Report("naive", t_naive).Param("n", static_cast<int64_t>(n));
    ctx.Report("fig2b_plus", t_plus).Param("n", static_cast<int64_t>(n));
  }

  bool shape = fig2a_died && fig2a_death_size <= 3000 && fig2b_survived_all;
  bench::Footer(shape,
                "scheme (a) exhausts its tuple budget in the low thousands "
                "of tuples (Dom^2 grows with the square of the active "
                "domain) while scheme (b) tracks the naive evaluation cost.");
  ctx.ReportInfo("scheme_blowup_shape")
      .Param("shape_holds", shape)
      .Param("fig2a_death_size", static_cast<int64_t>(fig2a_death_size));
  if (!shape) ctx.SetFailed();
}
