// Common main() for the experiment binaries: registry storage, flag
// parsing and the uniform JSON writer declared in bench_util.h.

#include "bench/bench_util.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#ifndef INCDB_GIT_REV
#define INCDB_GIT_REV "unknown"
#endif

namespace incdb {
namespace bench {

namespace {

struct Registration {
  std::string name;
  BenchFn fn;
};

std::vector<Registration>& Registry() {
  static std::vector<Registration>* r = new std::vector<Registration>();
  return *r;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

std::string Basename(const char* argv0) {
  std::string s(argv0 ? argv0 : "bench");
  size_t slash = s.find_last_of('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

}  // namespace

Record& Record::Param(const std::string& key, const std::string& value) {
  params_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}
Record& Record::Param(const std::string& key, const char* value) {
  return Param(key, std::string(value));
}
Record& Record::Param(const std::string& key, double value) {
  params_.emplace_back(key, JsonNumber(value));
  return *this;
}
Record& Record::Param(const std::string& key, int64_t value) {
  params_.emplace_back(key, std::to_string(value));
  return *this;
}
Record& Record::Param(const std::string& key, int value) {
  return Param(key, static_cast<int64_t>(value));
}
Record& Record::Param(const std::string& key, bool value) {
  params_.emplace_back(key, value ? "true" : "false");
  return *this;
}

int RegisterBench(const std::string& name, BenchFn fn) {
  Registry().push_back({name, std::move(fn)});
  return static_cast<int>(Registry().size());
}

const char* GitRev() { return INCDB_GIT_REV; }

int Main(int argc, char** argv) {
  std::string filter;
  std::string json_path;
  int reps = 3;
  int warmup = 0;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--filter") {
      filter = need_value("--filter");
    } else if (arg == "--json") {
      json_path = need_value("--json");
    } else if (arg == "--reps") {
      reps = std::atoi(need_value("--reps"));
      if (reps < 1) reps = 1;
    } else if (arg == "--warmup") {
      warmup = std::atoi(need_value("--warmup"));
      if (warmup < 0) warmup = 0;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--list] [--filter SUBSTR] [--reps N] [--warmup N] "
          "[--json PATH]\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  if (list_only) {
    for (const auto& reg : Registry()) std::printf("%s\n", reg.name.c_str());
    return 0;
  }

  const std::string bin = Basename(argc > 0 ? argv[0] : nullptr);
  Context ctx(reps, warmup);
  int matched = 0;
  for (const auto& reg : Registry()) {
    if (!filter.empty() && reg.name.find(filter) == std::string::npos) {
      continue;
    }
    ++matched;
    reg.fn(ctx);
  }
  if (matched == 0) {
    std::fprintf(stderr, "no benchmark matches --filter '%s'\n",
                 filter.c_str());
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    out << "[\n";
    const auto& records = ctx.records();
    for (size_t i = 0; i < records.size(); ++i) {
      const Record& r = records[i];
      out << "  {\"bench\": \"" << JsonEscape(bin) << "\", \"name\": \""
          << JsonEscape(r.name()) << "\", \"ms\": "
          << (r.timed() ? JsonNumber(r.ms()) : "null") << ", \"params\": {";
      for (size_t j = 0; j < r.params().size(); ++j) {
        if (j) out << ", ";
        out << "\"" << JsonEscape(r.params()[j].first)
            << "\": " << r.params()[j].second;
      }
      out << "}, \"reps\": "
          << (r.timed() ? std::to_string(r.reps()) : "null")
          << ", \"warmup\": "
          << (r.timed() ? std::to_string(r.warmup()) : "null")
          << ", \"git_rev\": \"" << JsonEscape(GitRev()) << "\"}";
      if (i + 1 < records.size()) out << ",";
      out << "\n";
    }
    out << "]\n";
    std::printf("[bench] wrote %zu record(s) to %s\n", records.size(),
                json_path.c_str());
  }
  return ctx.failed() ? 1 : 0;
}

}  // namespace bench
}  // namespace incdb

int main(int argc, char** argv) { return incdb::bench::Main(argc, argv); }
