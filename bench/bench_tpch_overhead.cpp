// Experiment E3 (paper §4.2, the PODS'16 feasibility study [37] on TPC-H):
// the Q+ rewriting's performance overhead over the original queries was a
// 1–4% slowdown in the DBMS study. We regenerate the experiment's shape on
// the TPC-H-lite workload: per query, time the original (naive) evaluation
// vs the rewritten Q+ and report the relative overhead.

#include <string>

#include "approx/approx.h"
#include "bench/bench_util.h"
#include "eval/eval.h"
#include "tpch/tpch.h"

using namespace incdb;  // NOLINT

INCDB_BENCH(tpch_overhead) {
  bench::Header(
      "E3", "Q+ rewriting overhead on the TPC-H-like workload ([37])",
      "\"performance overhead of the rewritten queries is limited to a "
      "slowdown of 1-4% w.r.t. the original SQL queries\" (commercial "
      "DBMS, TPC-H; our substrate is incdb's own evaluator, so absolute "
      "numbers differ — the claim's shape is a small constant-factor "
      "overhead).");

  tpch::GenOptions opts;
  opts.scale = 2.0;
  opts.null_rate = 0.02;
  opts.seed = 7;
  Database db = tpch::Generate(opts);
  std::printf("instance: %llu tuples, %zu nulls\n\n",
              static_cast<unsigned long long>(db.TotalSize()),
              db.NullIds().size());

  std::printf("%-24s %12s %12s %12s %10s\n", "query", "orig ms", "Q+ ms",
              "Q? ms", "Q+ ovh %");
  double worst_ratio = 0.0;
  bool all_ok = true;
  for (const tpch::BenchQuery& bq : tpch::Workload()) {
    auto plus_q = TranslatePlus(bq.algebra, db);
    auto maybe_q = TranslateMaybe(bq.algebra, db);
    if (!plus_q.ok() || !maybe_q.ok()) {
      std::printf("%-24s translation failed\n", bq.name.c_str());
      all_ok = false;
      continue;
    }
    bool ok = true;
    double t_orig = ctx.TimeMs([&] { ok &= EvalSet(bq.algebra, db).ok(); });
    double t_plus = ctx.TimeMs([&] { ok &= EvalSet(*plus_q, db).ok(); });
    double t_maybe = ctx.TimeMs([&] { ok &= EvalSet(*maybe_q, db).ok(); });
    all_ok &= ok;
    double ovh = t_orig > 0 ? (t_plus / t_orig - 1.0) * 100.0 : 0.0;
    worst_ratio = std::max(worst_ratio, t_plus / std::max(t_orig, 1e-9));
    std::printf("%-24s %12.2f %12.2f %12.2f %9.1f%%\n", bq.name.c_str(),
                t_orig, t_plus, t_maybe, ovh);
    ctx.Report("tpch_query", t_plus)
        .Param("query", bq.name)
        .Param("orig_ms", t_orig)
        .Param("maybe_ms", t_maybe)
        .Param("overhead_pct", ovh)
        .Param("scale", opts.scale);
  }

  // Shape: the rewriting stays within a small constant factor (we allow
  // 3× here — far from the Dom-product explosion of scheme (a), and in
  // line with "feasible on a real workload"; the paper's 1–4% relies on a
  // cost-based optimizer we do not reproduce).
  bool shape = all_ok && worst_ratio < 3.0;
  bench::Footer(shape,
                ("worst Q+/original time ratio " +
                 std::to_string(worst_ratio).substr(0, 4) +
                 "x — constant-factor overhead, no blow-up on any of the "
                 "8 workload queries")
                    .c_str());
  ctx.ReportInfo("tpch_shape")
      .Param("shape_holds", shape)
      .Param("worst_ratio", worst_ratio);
  if (!shape) ctx.SetFailed();
}
