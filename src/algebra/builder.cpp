#include "algebra/builder.h"

namespace incdb {

namespace {
std::shared_ptr<Algebra> Node(OpKind kind) {
  auto n = std::make_shared<Algebra>();
  n->kind = kind;
  return n;
}
}  // namespace

AlgPtr Scan(std::string rel_name) {
  auto n = Node(OpKind::kScan);
  n->rel_name = std::move(rel_name);
  return n;
}

AlgPtr Select(AlgPtr in, CondPtr cond) {
  auto n = Node(OpKind::kSelect);
  n->left = std::move(in);
  n->cond = std::move(cond);
  return n;
}

AlgPtr Project(AlgPtr in, std::vector<std::string> attrs) {
  auto n = Node(OpKind::kProject);
  n->left = std::move(in);
  n->attrs = std::move(attrs);
  return n;
}

AlgPtr Rename(AlgPtr in, std::vector<std::string> new_attrs) {
  auto n = Node(OpKind::kRename);
  n->left = std::move(in);
  n->attrs = std::move(new_attrs);
  return n;
}

namespace {
std::shared_ptr<Algebra> Binary(OpKind kind, AlgPtr l, AlgPtr r) {
  auto n = Node(kind);
  n->left = std::move(l);
  n->right = std::move(r);
  return n;
}
}  // namespace

AlgPtr Product(AlgPtr l, AlgPtr r) {
  return Binary(OpKind::kProduct, std::move(l), std::move(r));
}
AlgPtr Union(AlgPtr l, AlgPtr r) {
  return Binary(OpKind::kUnion, std::move(l), std::move(r));
}
AlgPtr Diff(AlgPtr l, AlgPtr r) {
  return Binary(OpKind::kDifference, std::move(l), std::move(r));
}
AlgPtr Intersect(AlgPtr l, AlgPtr r) {
  return Binary(OpKind::kIntersect, std::move(l), std::move(r));
}
AlgPtr Division(AlgPtr l, AlgPtr r) {
  return Binary(OpKind::kDivision, std::move(l), std::move(r));
}
AlgPtr AntijoinUnify(AlgPtr l, AlgPtr r) {
  return Binary(OpKind::kAntijoinUnify, std::move(l), std::move(r));
}

AlgPtr DomK(size_t arity, std::vector<Value> extra) {
  return DomK(DefaultAttrs(arity, "d"), std::move(extra));
}

AlgPtr DomK(std::vector<std::string> attrs, std::vector<Value> extra) {
  auto n = Node(OpKind::kDom);
  n->dom_arity = attrs.size();
  n->attrs = std::move(attrs);
  n->dom_extra = std::move(extra);
  return n;
}

AlgPtr Join(AlgPtr l, AlgPtr r, CondPtr cond) {
  auto n = Binary(OpKind::kJoin, std::move(l), std::move(r));
  n->cond = std::move(cond);
  return n;
}

AlgPtr Semijoin(AlgPtr l, AlgPtr r, CondPtr cond) {
  auto n = Binary(OpKind::kSemijoin, std::move(l), std::move(r));
  n->cond = std::move(cond);
  return n;
}

AlgPtr Antijoin(AlgPtr l, AlgPtr r, CondPtr cond) {
  auto n = Binary(OpKind::kAntijoin, std::move(l), std::move(r));
  n->cond = std::move(cond);
  return n;
}

namespace {
AlgPtr InLike(OpKind kind, AlgPtr l, AlgPtr r, std::vector<std::string> lcols,
              std::vector<std::string> rcols, CondPtr cond) {
  auto n = Binary(kind, std::move(l), std::move(r));
  n->attrs = std::move(lcols);
  n->attrs2 = std::move(rcols);
  n->cond = cond ? std::move(cond) : CTrue();
  return n;
}
}  // namespace

AlgPtr InPredicate(AlgPtr l, AlgPtr r, std::vector<std::string> lcols,
                   std::vector<std::string> rcols, CondPtr cond) {
  return InLike(OpKind::kIn, std::move(l), std::move(r), std::move(lcols),
                std::move(rcols), std::move(cond));
}

AlgPtr NotInPredicate(AlgPtr l, AlgPtr r, std::vector<std::string> lcols,
                      std::vector<std::string> rcols, CondPtr cond) {
  return InLike(OpKind::kNotIn, std::move(l), std::move(r), std::move(lcols),
                std::move(rcols), std::move(cond));
}

AlgPtr Distinct(AlgPtr in) {
  auto n = Node(OpKind::kDistinct);
  n->left = std::move(in);
  return n;
}

}  // namespace incdb
