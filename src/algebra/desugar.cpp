#include <cassert>

#include "algebra/algebra.h"
#include "algebra/builder.h"

namespace incdb {

StatusOr<AlgPtr> Desugar(const AlgPtr& q, const Database& db) {
  switch (q->kind) {
    case OpKind::kScan:
    case OpKind::kDom:
      return q;
    case OpKind::kSelect: {
      auto in = Desugar(q->left, db);
      if (!in.ok()) return in;
      return Select(std::move(in).value(), q->cond);
    }
    case OpKind::kProject: {
      auto in = Desugar(q->left, db);
      if (!in.ok()) return in;
      return Project(std::move(in).value(), q->attrs);
    }
    case OpKind::kRename: {
      auto in = Desugar(q->left, db);
      if (!in.ok()) return in;
      return Rename(std::move(in).value(), q->attrs);
    }
    case OpKind::kDistinct:
      // Set-semantics no-op; under bags every downstream consumer of the
      // desugared (set-based) translations deduplicates anyway.
      return Desugar(q->left, db);
    default:
      break;
  }

  auto l = Desugar(q->left, db);
  if (!l.ok()) return l;
  auto r = Desugar(q->right, db);
  if (!r.ok()) return r;
  AlgPtr left = std::move(l).value();
  AlgPtr right = std::move(r).value();

  switch (q->kind) {
    case OpKind::kProduct:
      return Product(left, right);
    case OpKind::kUnion:
      return Union(left, right);
    case OpKind::kDifference:
      return Diff(left, right);
    case OpKind::kIntersect:
      return Intersect(left, right);
    case OpKind::kDivision:
      return Division(left, right);
    case OpKind::kAntijoinUnify:
      return AntijoinUnify(left, right);
    case OpKind::kJoin:
      return Select(Product(left, right), q->cond);
    case OpKind::kSemijoin: {
      auto lattrs = OutputAttrs(left, db);
      if (!lattrs.ok()) return lattrs.status();
      return Project(Select(Product(left, right), q->cond), *lattrs);
    }
    case OpKind::kAntijoin: {
      auto lattrs = OutputAttrs(left, db);
      if (!lattrs.ok()) return lattrs.status();
      AlgPtr semi = Project(Select(Product(left, right), q->cond), *lattrs);
      return Diff(left, semi);
    }
    case OpKind::kIn:
    case OpKind::kNotIn: {
      // Under set/naive semantics, [NOT] IN is the semijoin/antijoin on
      // θ ∧ (lcols = rcols).
      CondPtr cond = q->cond;
      for (size_t i = 0; i < q->attrs.size(); ++i) {
        cond = CAnd(cond, CEq(q->attrs[i], q->attrs2[i]));
      }
      auto lattrs = OutputAttrs(left, db);
      if (!lattrs.ok()) return lattrs.status();
      AlgPtr semi = Project(Select(Product(left, right), cond), *lattrs);
      if (q->kind == OpKind::kIn) return semi;
      return Diff(left, semi);
    }
    default:
      return Status::Internal("Desugar: unexpected operator");
  }
}

}  // namespace incdb
