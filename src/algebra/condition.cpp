#include "algebra/condition.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "core/relation.h"
#include "logic/kleene.h"

namespace incdb {

namespace {
CondPtr Make(CondKind kind, std::string lhs = {}, std::string rhs = {},
             Value constant = Value::Int(0), CondPtr left = nullptr,
             CondPtr right = nullptr) {
  auto c = std::make_shared<Condition>();
  c->kind = kind;
  c->lhs = std::move(lhs);
  c->rhs = std::move(rhs);
  c->constant = std::move(constant);
  c->left = std::move(left);
  c->right = std::move(right);
  return c;
}
}  // namespace

CondPtr CTrue() { return Make(CondKind::kTrue); }
CondPtr CFalse() { return Make(CondKind::kFalse); }
CondPtr CAnd(CondPtr a, CondPtr b) {
  return Make(CondKind::kAnd, {}, {}, Value::Int(0), std::move(a),
              std::move(b));
}
CondPtr COr(CondPtr a, CondPtr b) {
  return Make(CondKind::kOr, {}, {}, Value::Int(0), std::move(a),
              std::move(b));
}
CondPtr CEq(std::string a, std::string b) {
  return Make(CondKind::kEqAttrAttr, std::move(a), std::move(b));
}
CondPtr CEqc(std::string a, Value c) {
  return Make(CondKind::kEqAttrConst, std::move(a), {}, std::move(c));
}
CondPtr CNeq(std::string a, std::string b) {
  return Make(CondKind::kNeqAttrAttr, std::move(a), std::move(b));
}
CondPtr CNeqc(std::string a, Value c) {
  return Make(CondKind::kNeqAttrConst, std::move(a), {}, std::move(c));
}
CondPtr CIsConst(std::string a) {
  return Make(CondKind::kIsConst, std::move(a));
}
CondPtr CIsNull(std::string a) { return Make(CondKind::kIsNull, std::move(a)); }

CondPtr CLt(std::string a, std::string b) {
  return Make(CondKind::kLtAttrAttr, std::move(a), std::move(b));
}
CondPtr CLe(std::string a, std::string b) {
  return Make(CondKind::kLeAttrAttr, std::move(a), std::move(b));
}
CondPtr CLtc(std::string a, Value c) {
  return Make(CondKind::kLtAttrConst, std::move(a), {}, std::move(c));
}
CondPtr CLec(std::string a, Value c) {
  return Make(CondKind::kLeAttrConst, std::move(a), {}, std::move(c));
}
CondPtr CGtc(std::string a, Value c) {
  return Make(CondKind::kGtAttrConst, std::move(a), {}, std::move(c));
}
CondPtr CGec(std::string a, Value c) {
  return Make(CondKind::kGeAttrConst, std::move(a), {}, std::move(c));
}

CondPtr CAndAll(const std::vector<CondPtr>& cs) {
  if (cs.empty()) return CTrue();
  CondPtr out = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) out = CAnd(out, cs[i]);
  return out;
}

CondPtr COrAll(const std::vector<CondPtr>& cs) {
  if (cs.empty()) return CFalse();
  CondPtr out = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) out = COr(out, cs[i]);
  return out;
}

CondPtr Negate(const CondPtr& c) {
  switch (c->kind) {
    case CondKind::kTrue:
      return CFalse();
    case CondKind::kFalse:
      return CTrue();
    case CondKind::kAnd:
      return COr(Negate(c->left), Negate(c->right));
    case CondKind::kOr:
      return CAnd(Negate(c->left), Negate(c->right));
    case CondKind::kEqAttrAttr:
      return CNeq(c->lhs, c->rhs);
    case CondKind::kNeqAttrAttr:
      return CEq(c->lhs, c->rhs);
    case CondKind::kEqAttrConst:
      return CNeqc(c->lhs, c->constant);
    case CondKind::kNeqAttrConst:
      return CEqc(c->lhs, c->constant);
    case CondKind::kIsConst:
      return CIsNull(c->lhs);
    case CondKind::kIsNull:
      return CIsConst(c->lhs);
    // ¬(A < B) = B ≤ A, etc.
    case CondKind::kLtAttrAttr:
      return CLe(c->rhs, c->lhs);
    case CondKind::kLeAttrAttr:
      return CLt(c->rhs, c->lhs);
    case CondKind::kLtAttrConst:
      return CGec(c->lhs, c->constant);
    case CondKind::kLeAttrConst:
      return CGtc(c->lhs, c->constant);
    case CondKind::kGtAttrConst:
      return CLec(c->lhs, c->constant);
    case CondKind::kGeAttrConst:
      return CLtc(c->lhs, c->constant);
  }
  assert(false);
  return CFalse();
}

CondPtr StarTranslate(const CondPtr& c) {
  switch (c->kind) {
    case CondKind::kAnd:
      return CAnd(StarTranslate(c->left), StarTranslate(c->right));
    case CondKind::kOr:
      return COr(StarTranslate(c->left), StarTranslate(c->right));
    case CondKind::kNeqAttrConst:
      return CAnd(CNeqc(c->lhs, c->constant), CIsConst(c->lhs));
    case CondKind::kNeqAttrAttr:
      return CAnd(CNeq(c->lhs, c->rhs),
                  CAnd(CIsConst(c->lhs), CIsConst(c->rhs)));
    // §6 "Types of attributes": order comparisons are guarded like
    // disequalities — certain only on constants.
    case CondKind::kLtAttrAttr:
    case CondKind::kLeAttrAttr:
      return CAnd(c, CAnd(CIsConst(c->lhs), CIsConst(c->rhs)));
    case CondKind::kLtAttrConst:
    case CondKind::kLeAttrConst:
    case CondKind::kGtAttrConst:
    case CondKind::kGeAttrConst:
      return CAnd(c, CIsConst(c->lhs));
    default:
      return c;
  }
}

namespace {
void CollectAttrs(const CondPtr& c, std::set<std::string>* out) {
  switch (c->kind) {
    case CondKind::kAnd:
    case CondKind::kOr:
      CollectAttrs(c->left, out);
      CollectAttrs(c->right, out);
      return;
    case CondKind::kEqAttrAttr:
    case CondKind::kNeqAttrAttr:
    case CondKind::kLtAttrAttr:
    case CondKind::kLeAttrAttr:
      out->insert(c->lhs);
      out->insert(c->rhs);
      return;
    case CondKind::kEqAttrConst:
    case CondKind::kNeqAttrConst:
    case CondKind::kIsConst:
    case CondKind::kIsNull:
    case CondKind::kLtAttrConst:
    case CondKind::kLeAttrConst:
    case CondKind::kGtAttrConst:
    case CondKind::kGeAttrConst:
      out->insert(c->lhs);
      return;
    default:
      return;
  }
}
}  // namespace

std::vector<std::string> CondAttrs(const CondPtr& c) {
  std::set<std::string> s;
  CollectAttrs(c, &s);
  return std::vector<std::string>(s.begin(), s.end());
}

namespace {
/// True for condition kinds whose `constant` field is live.
bool KindHasConstant(CondKind k) {
  switch (k) {
    case CondKind::kEqAttrConst:
    case CondKind::kNeqAttrConst:
    case CondKind::kLtAttrConst:
    case CondKind::kLeAttrConst:
    case CondKind::kGtAttrConst:
    case CondKind::kGeAttrConst:
      return true;
    default:
      return false;
  }
}
}  // namespace

bool CondHasParam(const CondPtr& c) {
  if (c->kind == CondKind::kAnd || c->kind == CondKind::kOr) {
    return CondHasParam(c->left) || CondHasParam(c->right);
  }
  return KindHasConstant(c->kind) && c->constant.is_param();
}

size_t CondParamCount(const CondPtr& c) {
  if (c->kind == CondKind::kAnd || c->kind == CondKind::kOr) {
    return std::max(CondParamCount(c->left), CondParamCount(c->right));
  }
  if (KindHasConstant(c->kind) && c->constant.is_param()) {
    return static_cast<size_t>(c->constant.param_index()) + 1;
  }
  return 0;
}

StatusOr<Value> ResolveParamBinding(const Value& v,
                                    const std::vector<Value>& params) {
  if (!v.is_param()) return v;
  const uint32_t idx = v.param_index();
  if (idx >= params.size()) {
    return Status::InvalidArgument(
        "unbound parameter ?" + std::to_string(idx) + " (got " +
        std::to_string(params.size()) + " binding(s))");
  }
  if (!params[idx].is_const()) {
    return Status::InvalidArgument(
        "parameter ?" + std::to_string(idx) +
        " must be bound to a constant, got " + params[idx].ToString());
  }
  return params[idx];
}

StatusOr<CondPtr> BindCondParams(const CondPtr& c,
                                 const std::vector<Value>& params) {
  if (c->kind == CondKind::kAnd || c->kind == CondKind::kOr) {
    if (!CondHasParam(c)) return c;
    auto l = BindCondParams(c->left, params);
    if (!l.ok()) return l;
    auto r = BindCondParams(c->right, params);
    if (!r.ok()) return r;
    return c->kind == CondKind::kAnd ? CAnd(*l, *r) : COr(*l, *r);
  }
  if (!KindHasConstant(c->kind) || !c->constant.is_param()) return c;
  auto bound = ResolveParamBinding(c->constant, params);
  if (!bound.ok()) return bound.status();
  auto out = std::make_shared<Condition>(*c);
  out->constant = *bound;
  return CondPtr(out);
}

bool HasNullConstTest(const CondPtr& c) {
  switch (c->kind) {
    case CondKind::kAnd:
    case CondKind::kOr:
      return HasNullConstTest(c->left) || HasNullConstTest(c->right);
    case CondKind::kIsConst:
    case CondKind::kIsNull:
      return true;
    default:
      return false;
  }
}

bool HasOrderComparison(const CondPtr& c) {
  switch (c->kind) {
    case CondKind::kAnd:
    case CondKind::kOr:
      return HasOrderComparison(c->left) || HasOrderComparison(c->right);
    case CondKind::kLtAttrAttr:
    case CondKind::kLeAttrAttr:
    case CondKind::kLtAttrConst:
    case CondKind::kLeAttrConst:
    case CondKind::kGtAttrConst:
    case CondKind::kGeAttrConst:
      return true;
    default:
      return false;
  }
}

int CompareConst(const Value& a, const Value& b) {
  assert(a.is_const() && b.is_const());
  auto numeric = [](const Value& v) {
    return v.kind() == ValueKind::kInt || v.kind() == ValueKind::kDouble;
  };
  if (numeric(a) && numeric(b)) {
    double x = a.kind() == ValueKind::kInt ? double(a.as_int()) : a.as_double();
    double y = b.kind() == ValueKind::kInt ? double(b.as_int()) : b.as_double();
    return x < y ? -1 : (y < x ? 1 : 0);
  }
  if (a == b) return 0;
  return a < b ? -1 : 1;
}

std::string Condition::ToString() const {
  switch (kind) {
    case CondKind::kTrue:
      return "true";
    case CondKind::kFalse:
      return "false";
    case CondKind::kAnd:
      return "(" + left->ToString() + " ∧ " + right->ToString() + ")";
    case CondKind::kOr:
      return "(" + left->ToString() + " ∨ " + right->ToString() + ")";
    case CondKind::kEqAttrAttr:
      return lhs + " = " + rhs;
    case CondKind::kNeqAttrAttr:
      return lhs + " ≠ " + rhs;
    case CondKind::kEqAttrConst:
      return lhs + " = " + constant.ToString();
    case CondKind::kNeqAttrConst:
      return lhs + " ≠ " + constant.ToString();
    case CondKind::kIsConst:
      return "const(" + lhs + ")";
    case CondKind::kIsNull:
      return "null(" + lhs + ")";
    case CondKind::kLtAttrAttr:
      return lhs + " < " + rhs;
    case CondKind::kLeAttrAttr:
      return lhs + " ≤ " + rhs;
    case CondKind::kLtAttrConst:
      return lhs + " < " + constant.ToString();
    case CondKind::kLeAttrConst:
      return lhs + " ≤ " + constant.ToString();
    case CondKind::kGtAttrConst:
      return lhs + " > " + constant.ToString();
    case CondKind::kGeAttrConst:
      return lhs + " ≥ " + constant.ToString();
  }
  return "?";
}

namespace {

// Atom truth values (equality and order under each mode) live in
// condition.h as CondEqTV / CondOrderTV: the columnar evaluator
// (eval/batch.h) shares them so both evaluators agree bit-for-bit.
TV3 EqTV(const Value& a, const Value& b, CondMode mode) {
  return CondEqTV(a, b, mode);
}
TV3 OrderTV(const Value& a, const Value& b, bool strict, CondMode mode) {
  return CondOrderTV(a, b, strict, mode);
}

struct CompiledCond {
  CondKind kind;
  size_t lhs = 0, rhs = 0;
  Value constant;
  std::unique_ptr<CompiledCond> left, right;
};

StatusOr<std::unique_ptr<CompiledCond>> Compile(
    const CondPtr& c, const std::vector<std::string>& attrs) {
  auto out = std::make_unique<CompiledCond>();
  out->kind = c->kind;
  out->constant = c->constant;
  auto resolve = [&attrs](const std::string& name) -> StatusOr<size_t> {
    size_t i = IndexOf(attrs, name);
    if (i == attrs.size()) {
      return Status::NotFound("condition references unknown attribute " + name);
    }
    return i;
  };
  switch (c->kind) {
    case CondKind::kTrue:
    case CondKind::kFalse:
      break;
    case CondKind::kAnd:
    case CondKind::kOr: {
      auto l = Compile(c->left, attrs);
      if (!l.ok()) return l.status();
      auto r = Compile(c->right, attrs);
      if (!r.ok()) return r.status();
      out->left = std::move(l).value();
      out->right = std::move(r).value();
      break;
    }
    case CondKind::kEqAttrAttr:
    case CondKind::kNeqAttrAttr:
    case CondKind::kLtAttrAttr:
    case CondKind::kLeAttrAttr: {
      auto l = resolve(c->lhs);
      if (!l.ok()) return l.status();
      auto r = resolve(c->rhs);
      if (!r.ok()) return r.status();
      out->lhs = *l;
      out->rhs = *r;
      break;
    }
    case CondKind::kEqAttrConst:
    case CondKind::kNeqAttrConst:
    case CondKind::kIsConst:
    case CondKind::kIsNull:
    case CondKind::kLtAttrConst:
    case CondKind::kLeAttrConst:
    case CondKind::kGtAttrConst:
    case CondKind::kGeAttrConst: {
      auto l = resolve(c->lhs);
      if (!l.ok()) return l.status();
      out->lhs = *l;
      break;
    }
  }
  return out;
}

TV3 EvalCompiled(const CompiledCond& c, const Tuple& t, CondMode mode) {
  switch (c.kind) {
    case CondKind::kTrue:
      return TV3::kT;
    case CondKind::kFalse:
      return TV3::kF;
    case CondKind::kAnd:
      return Kleene::And(EvalCompiled(*c.left, t, mode),
                         EvalCompiled(*c.right, t, mode));
    case CondKind::kOr:
      return Kleene::Or(EvalCompiled(*c.left, t, mode),
                        EvalCompiled(*c.right, t, mode));
    case CondKind::kEqAttrAttr:
      return EqTV(t[c.lhs], t[c.rhs], mode);
    case CondKind::kNeqAttrAttr:
      return Kleene::Not(EqTV(t[c.lhs], t[c.rhs], mode));
    case CondKind::kEqAttrConst:
      return EqTV(t[c.lhs], c.constant, mode);
    case CondKind::kNeqAttrConst:
      return Kleene::Not(EqTV(t[c.lhs], c.constant, mode));
    case CondKind::kIsConst:
      return FromBool(t[c.lhs].is_const());
    case CondKind::kIsNull:
      return FromBool(t[c.lhs].is_null());
    case CondKind::kLtAttrAttr:
      return OrderTV(t[c.lhs], t[c.rhs], /*strict=*/true, mode);
    case CondKind::kLeAttrAttr:
      return OrderTV(t[c.lhs], t[c.rhs], /*strict=*/false, mode);
    case CondKind::kLtAttrConst:
      return OrderTV(t[c.lhs], c.constant, /*strict=*/true, mode);
    case CondKind::kLeAttrConst:
      return OrderTV(t[c.lhs], c.constant, /*strict=*/false, mode);
    case CondKind::kGtAttrConst:
      return OrderTV(c.constant, t[c.lhs], /*strict=*/true, mode);
    case CondKind::kGeAttrConst:
      return OrderTV(c.constant, t[c.lhs], /*strict=*/false, mode);
  }
  return TV3::kU;
}

}  // namespace

StatusOr<std::function<TV3(const Tuple&)>> CompileCond(
    const CondPtr& c, const std::vector<std::string>& attrs, CondMode mode) {
  auto compiled = Compile(c, attrs);
  if (!compiled.ok()) return compiled.status();
  std::shared_ptr<CompiledCond> cc = std::move(compiled).value();
  return std::function<TV3(const Tuple&)>(
      [cc, mode](const Tuple& t) { return EvalCompiled(*cc, t, mode); });
}

}  // namespace incdb
