#include "algebra/algebra.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace incdb {

namespace {

Status CheckSameArity(const std::vector<std::string>& l,
                      const std::vector<std::string>& r, const char* op) {
  if (l.size() != r.size()) {
    return Status::InvalidArgument(std::string(op) + ": arity mismatch (" +
                                   std::to_string(l.size()) + " vs " +
                                   std::to_string(r.size()) + ")");
  }
  return Status::OK();
}

bool HasNeqOrNullTest(const CondPtr& c) {
  switch (c->kind) {
    case CondKind::kAnd:
    case CondKind::kOr:
      return HasNeqOrNullTest(c->left) || HasNeqOrNullTest(c->right);
    case CondKind::kNeqAttrAttr:
    case CondKind::kNeqAttrConst:
    case CondKind::kIsNull:
      return true;
    default:
      // Order comparisons behave like disequalities for fragment
      // classification: not preserved under homomorphisms.
      return HasOrderComparison(c) && c->kind != CondKind::kAnd;
  }
}

void CollectConstants(const CondPtr& c, std::vector<Value>* out) {
  switch (c->kind) {
    case CondKind::kAnd:
    case CondKind::kOr:
      CollectConstants(c->left, out);
      CollectConstants(c->right, out);
      return;
    case CondKind::kEqAttrConst:
    case CondKind::kNeqAttrConst:
      // Parameter placeholders are not constants (and must not leak into
      // Dom extras of the approximation translations).
      if (c->constant.is_const()) out->push_back(c->constant);
      return;
    default:
      return;
  }
}

}  // namespace

StatusOr<std::vector<std::string>> OutputAttrs(const AlgPtr& q,
                                               const Database& db) {
  switch (q->kind) {
    case OpKind::kScan: {
      const Relation* rel = db.Find(q->rel_name);
      if (rel == nullptr) {
        return Status::NotFound("no relation named " + q->rel_name);
      }
      return rel->attrs();
    }
    case OpKind::kSelect: {
      auto in = OutputAttrs(q->left, db);
      if (!in.ok()) return in;
      // Validate that the condition only references existing attributes.
      auto compiled = CompileCond(q->cond, *in, CondMode::kNaive);
      if (!compiled.ok()) return compiled.status();
      return in;
    }
    case OpKind::kProject: {
      auto in = OutputAttrs(q->left, db);
      if (!in.ok()) return in;
      for (const std::string& a : q->attrs) {
        if (std::find(in->begin(), in->end(), a) == in->end()) {
          return Status::NotFound("projection attribute " + a +
                                  " not in input");
        }
      }
      return q->attrs;
    }
    case OpKind::kRename: {
      auto in = OutputAttrs(q->left, db);
      if (!in.ok()) return in;
      if (q->attrs.size() != in->size()) {
        return Status::InvalidArgument("rename: arity mismatch");
      }
      return q->attrs;
    }
    case OpKind::kProduct:
    case OpKind::kJoin: {
      auto l = OutputAttrs(q->left, db);
      if (!l.ok()) return l;
      auto r = OutputAttrs(q->right, db);
      if (!r.ok()) return r;
      std::set<std::string> seen(l->begin(), l->end());
      for (const std::string& a : *r) {
        if (seen.count(a)) {
          return Status::InvalidArgument(
              "product: attribute " + a + " appears on both sides (rename)");
        }
      }
      std::vector<std::string> out = *l;
      out.insert(out.end(), r->begin(), r->end());
      if (q->kind == OpKind::kJoin) {
        auto compiled = CompileCond(q->cond, out, CondMode::kNaive);
        if (!compiled.ok()) return compiled.status();
      }
      return out;
    }
    case OpKind::kUnion:
    case OpKind::kDifference:
    case OpKind::kIntersect:
    case OpKind::kAntijoinUnify: {
      auto l = OutputAttrs(q->left, db);
      if (!l.ok()) return l;
      auto r = OutputAttrs(q->right, db);
      if (!r.ok()) return r;
      INCDB_RETURN_IF_ERROR(CheckSameArity(*l, *r, "set operation"));
      return l;
    }
    case OpKind::kDivision: {
      auto l = OutputAttrs(q->left, db);
      if (!l.ok()) return l;
      auto r = OutputAttrs(q->right, db);
      if (!r.ok()) return r;
      // attrs(Q2) must be a subset of attrs(Q1); result = attrs(Q1) \ attrs(Q2).
      std::vector<std::string> out;
      for (const std::string& a : *l) {
        if (std::find(r->begin(), r->end(), a) == r->end()) out.push_back(a);
      }
      for (const std::string& a : *r) {
        if (std::find(l->begin(), l->end(), a) == l->end()) {
          return Status::InvalidArgument("division: divisor attribute " + a +
                                         " not in dividend");
        }
      }
      if (out.empty()) {
        return Status::InvalidArgument(
            "division: dividend must have attributes beyond the divisor");
      }
      return out;
    }
    case OpKind::kDom: {
      if (q->attrs.size() != q->dom_arity) {
        return Status::Internal("Dom: attribute list does not match arity");
      }
      return q->attrs;
    }
    case OpKind::kSemijoin:
    case OpKind::kAntijoin: {
      auto l = OutputAttrs(q->left, db);
      if (!l.ok()) return l;
      auto r = OutputAttrs(q->right, db);
      if (!r.ok()) return r;
      std::vector<std::string> joint = *l;
      joint.insert(joint.end(), r->begin(), r->end());
      auto compiled = CompileCond(q->cond, joint, CondMode::kNaive);
      if (!compiled.ok()) return compiled.status();
      return l;
    }
    case OpKind::kIn:
    case OpKind::kNotIn: {
      auto l = OutputAttrs(q->left, db);
      if (!l.ok()) return l;
      auto r = OutputAttrs(q->right, db);
      if (!r.ok()) return r;
      if (q->attrs.size() != q->attrs2.size() || q->attrs.empty()) {
        return Status::InvalidArgument(
            "IN predicate: compare column lists must be non-empty and of "
            "equal length");
      }
      for (const std::string& a : q->attrs) {
        if (std::find(l->begin(), l->end(), a) == l->end()) {
          return Status::NotFound("IN: left column " + a + " not in input");
        }
      }
      for (const std::string& a : q->attrs2) {
        if (std::find(r->begin(), r->end(), a) == r->end()) {
          return Status::NotFound("IN: right column " + a + " not in input");
        }
      }
      std::vector<std::string> joint = *l;
      for (const std::string& a : *r) {
        if (std::find(l->begin(), l->end(), a) != l->end()) {
          return Status::InvalidArgument(
              "IN: attribute " + a + " appears on both sides (rename)");
        }
        joint.push_back(a);
      }
      auto compiled = CompileCond(q->cond, joint, CondMode::kNaive);
      if (!compiled.ok()) return compiled.status();
      return l;
    }
    case OpKind::kDistinct:
      return OutputAttrs(q->left, db);
  }
  return Status::Internal("unknown operator");
}

std::string Algebra::ToString() const {
  auto list = [](const std::vector<std::string>& v) {
    std::string s;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i) s += ",";
      s += v[i];
    }
    return s;
  };
  switch (kind) {
    case OpKind::kScan:
      return rel_name;
    case OpKind::kSelect:
      return "σ[" + cond->ToString() + "](" + left->ToString() + ")";
    case OpKind::kProject:
      return "π{" + list(attrs) + "}(" + left->ToString() + ")";
    case OpKind::kRename:
      return "ρ{" + list(attrs) + "}(" + left->ToString() + ")";
    case OpKind::kProduct:
      return "(" + left->ToString() + " × " + right->ToString() + ")";
    case OpKind::kUnion:
      return "(" + left->ToString() + " ∪ " + right->ToString() + ")";
    case OpKind::kDifference:
      return "(" + left->ToString() + " − " + right->ToString() + ")";
    case OpKind::kIntersect:
      return "(" + left->ToString() + " ∩ " + right->ToString() + ")";
    case OpKind::kDivision:
      return "(" + left->ToString() + " ÷ " + right->ToString() + ")";
    case OpKind::kAntijoinUnify:
      return "(" + left->ToString() + " ⋉⇑ " + right->ToString() + ")";
    case OpKind::kDom:
      return "Dom^" + std::to_string(dom_arity);
    case OpKind::kJoin:
      return "(" + left->ToString() + " ⋈[" + cond->ToString() + "] " +
             right->ToString() + ")";
    case OpKind::kSemijoin:
      return "(" + left->ToString() + " ⋉[" + cond->ToString() + "] " +
             right->ToString() + ")";
    case OpKind::kAntijoin:
      return "(" + left->ToString() + " ▷[" + cond->ToString() + "] " +
             right->ToString() + ")";
    case OpKind::kIn:
      return "(" + left->ToString() + " IN{" + list(attrs) + "≡" +
             list(attrs2) + "} " + right->ToString() + ")";
    case OpKind::kNotIn:
      return "(" + left->ToString() + " NOT-IN{" + list(attrs) + "≡" +
             list(attrs2) + "} " + right->ToString() + ")";
    case OpKind::kDistinct:
      return "δ(" + left->ToString() + ")";
  }
  return "?";
}

bool IsCoreGrammar(const AlgPtr& q) {
  switch (q->kind) {
    case OpKind::kScan:
      return true;
    case OpKind::kSelect:
    case OpKind::kProject:
    case OpKind::kRename:
      return IsCoreGrammar(q->left);
    case OpKind::kProduct:
    case OpKind::kUnion:
    case OpKind::kDifference:
    case OpKind::kIntersect:
      return IsCoreGrammar(q->left) && IsCoreGrammar(q->right);
    default:
      return false;
  }
}

bool IsPositive(const AlgPtr& q) {
  switch (q->kind) {
    case OpKind::kScan:
      return true;
    case OpKind::kSelect:
      return !HasNeqOrNullTest(q->cond) && IsPositive(q->left);
    case OpKind::kProject:
    case OpKind::kRename:
      return IsPositive(q->left);
    case OpKind::kProduct:
    case OpKind::kUnion:
      return IsPositive(q->left) && IsPositive(q->right);
    case OpKind::kJoin:
    case OpKind::kSemijoin:
    case OpKind::kIn:
      return !HasNeqOrNullTest(q->cond) && IsPositive(q->left) &&
             IsPositive(q->right);
    case OpKind::kDistinct:
      return IsPositive(q->left);
    default:
      return false;
  }
}

bool IsPosForallG(const AlgPtr& q) {
  switch (q->kind) {
    case OpKind::kScan:
      return true;
    case OpKind::kSelect:
      return !HasNeqOrNullTest(q->cond) && IsPosForallG(q->left);
    case OpKind::kProject:
    case OpKind::kRename:
      return IsPosForallG(q->left);
    case OpKind::kProduct:
    case OpKind::kUnion:
      return IsPosForallG(q->left) && IsPosForallG(q->right);
    case OpKind::kDivision:
      // Division by a *base relation* (or equality) is the algebraic form of
      // the universal guard; we allow division by any Pos∀G subquery whose
      // root is a scan, matching the paper's "division by a relation in the
      // schema".
      return IsPosForallG(q->left) && q->right->kind == OpKind::kScan;
    default:
      return false;
  }
}

std::vector<Value> QueryConstants(const AlgPtr& q) {
  std::vector<Value> out;
  std::vector<const Algebra*> stack = {q.get()};
  while (!stack.empty()) {
    const Algebra* node = stack.back();
    stack.pop_back();
    if (node->cond) CollectConstants(node->cond, &out);
    for (const Value& v : node->dom_extra) out.push_back(v);
    if (node->left) stack.push_back(node->left.get());
    if (node->right) stack.push_back(node->right.get());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t ParamCount(const AlgPtr& q) {
  size_t count = 0;
  std::vector<const Algebra*> stack = {q.get()};
  while (!stack.empty()) {
    const Algebra* node = stack.back();
    stack.pop_back();
    if (node->cond) count = std::max(count, CondParamCount(node->cond));
    for (const Value& v : node->dom_extra) {
      if (v.is_param()) {
        count = std::max(count, static_cast<size_t>(v.param_index()) + 1);
      }
    }
    if (node->left) stack.push_back(node->left.get());
    if (node->right) stack.push_back(node->right.get());
  }
  return count;
}

StatusOr<AlgPtr> BindParams(const AlgPtr& q, const std::vector<Value>& params) {
  bool dom_param = false;
  for (const Value& v : q->dom_extra) dom_param |= v.is_param();
  const bool cond_param = q->cond && CondHasParam(q->cond);

  AlgPtr left = q->left, right = q->right;
  if (q->left) {
    auto l = BindParams(q->left, params);
    if (!l.ok()) return l;
    left = *l;
  }
  if (q->right) {
    auto r = BindParams(q->right, params);
    if (!r.ok()) return r;
    right = *r;
  }
  if (!cond_param && !dom_param && left == q->left && right == q->right) {
    return q;  // parameter-free subtree: share
  }
  auto out = std::make_shared<Algebra>(*q);
  out->left = std::move(left);
  out->right = std::move(right);
  if (cond_param) {
    auto bound = BindCondParams(q->cond, params);
    if (!bound.ok()) return bound.status();
    out->cond = *bound;
  }
  if (dom_param) {
    for (Value& v : out->dom_extra) {
      auto bound = ResolveParamBinding(v, params);
      if (!bound.ok()) return bound.status();
      v = *bound;
    }
  }
  return AlgPtr(out);
}

bool QueryHasOrderComparison(const AlgPtr& q) {
  if (q->cond && HasOrderComparison(q->cond)) return true;
  if (q->left && QueryHasOrderComparison(q->left)) return true;
  if (q->right && QueryHasOrderComparison(q->right)) return true;
  return false;
}

std::vector<std::string> ScannedRelations(const AlgPtr& q) {
  std::set<std::string> s;
  std::vector<const Algebra*> stack = {q.get()};
  while (!stack.empty()) {
    const Algebra* node = stack.back();
    stack.pop_back();
    if (node->kind == OpKind::kScan) s.insert(node->rel_name);
    if (node->left) stack.push_back(node->left.get());
    if (node->right) stack.push_back(node->right.get());
  }
  return std::vector<std::string>(s.begin(), s.end());
}

}  // namespace incdb
