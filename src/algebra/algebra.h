#ifndef INCDB_ALGEBRA_ALGEBRA_H_
#define INCDB_ALGEBRA_ALGEBRA_H_

/// \file algebra.h
/// \brief Relational algebra AST (paper §2), extended with the operators
/// the surveyed results need:
///
///  * the core grammar σ, π, ×, ∪, − over named relations;
///  * intersection ∩ (emitted by the Fig. 2(a) translation rules);
///  * division ÷ (the Pos∀G fragment of Thm. 4.4);
///  * the unification anti-semijoin ⋉⇑ of Fig. 2 (r̄ survives iff no s̄ on
///    the right unifies with it);
///  * Dom^k, the k-fold product of the active domain (Fig. 2(a));
///  * sugar operators (join/semijoin/antijoin with conditions) that
///    Desugar() rewrites into the core grammar.
///
/// Nodes are immutable and shared; building twice the same subtree is fine.

#include <memory>
#include <string>
#include <vector>

#include "algebra/condition.h"
#include "core/database.h"
#include "core/status.h"

namespace incdb {

struct Algebra;
using AlgPtr = std::shared_ptr<const Algebra>;

enum class OpKind : uint8_t {
  kScan,          ///< Base relation R.
  kSelect,        ///< σ_θ(Q).
  kProject,       ///< π_α(Q), α a list of attribute names of Q.
  kRename,        ///< ρ: renames all attributes positionally.
  kProduct,       ///< Q1 × Q2 (attribute names must be disjoint).
  kUnion,         ///< Q1 ∪ Q2 (same arity; left names win).
  kDifference,    ///< Q1 − Q2 (same arity).
  kIntersect,     ///< Q1 ∩ Q2 (same arity).
  kDivision,      ///< Q1 ÷ Q2 (attrs(Q2) ⊆ attrs(Q1)).
  kAntijoinUnify, ///< Q1 ⋉⇑ Q2 (same arity; keep r̄ with no unifiable s̄).
  kDom,           ///< Dom^k over adom(D) ∪ extra constants.
  // ---- sugar (removed by Desugar) ----
  kJoin,          ///< σ_θ(Q1 × Q2).
  kSemijoin,      ///< π_{attrs(Q1)}(σ_θ(Q1 × Q2)), deduplicated.
  kAntijoin,      ///< Q1 − Semijoin(Q1, Q2, θ).
  kIn,            ///< SQL  x̄ IN (Q2 WHERE θ)  — see builder.h InPredicate.
  kNotIn,         ///< SQL  x̄ NOT IN (Q2 WHERE θ): under EvalSql this keeps
                  ///< a row only when the comparison with *every* right row
                  ///< is certainly false (SQL's NOT IN null semantics).
  kDistinct,      ///< SELECT DISTINCT: no-op under set semantics, collapses
                  ///< multiplicities under bags.
};

/// \brief One relational algebra operator.
struct Algebra {
  OpKind kind;
  std::string rel_name;              ///< kScan.
  CondPtr cond;                      ///< kSelect / kJoin / kSemijoin / kAntijoin / kIn / kNotIn.
  std::vector<std::string> attrs;    ///< kProject (names) / kRename (new names) / kDom (names) / kIn,kNotIn (left compare columns).
  std::vector<std::string> attrs2;   ///< kIn / kNotIn: right compare columns.
  size_t dom_arity = 0;              ///< kDom.
  std::vector<Value> dom_extra;      ///< kDom: query constants to include.
  AlgPtr left, right;

  /// Single-line rendering, e.g. "π_{oid}(Orders − Payments)".
  std::string ToString() const;
};

/// Output attribute names of `q` against the schemas in `db`.
/// Validates the whole subtree (arity agreement, disjointness for ×, ...).
StatusOr<std::vector<std::string>> OutputAttrs(const AlgPtr& q,
                                               const Database& db);

/// Rewrites the sugar operators (kJoin, kSemijoin, kAntijoin) into the core
/// grammar, leaving everything else untouched. Needs the database to
/// resolve schemas (the semijoin expansion projects back onto the left
/// attributes). Note: the expansion is faithful under *set* semantics; the
/// evaluators also execute the sugar operators natively with EXISTS-style
/// multiplicity handling for bags.
StatusOr<AlgPtr> Desugar(const AlgPtr& q, const Database& db);

/// True iff the subtree uses only the paper's core grammar
/// {scan, σ, π, ρ, ×, ∪, −, ∩} — what the Fig. 2 translations accept.
bool IsCoreGrammar(const AlgPtr& q);

/// True iff the subtree is *positive* relational algebra extended with
/// division: {scan, σ (no ≠/null), π, ρ, ×, ∪, ÷} — the algebraic form of
/// the Pos∀G fragment (Thm. 4.4).
bool IsPosForallG(const AlgPtr& q);

/// True iff the subtree is positive relational algebra (no −, ÷, and no
/// ≠ / null(·) in selections) — the algebraic UCQ fragment.
bool IsPositive(const AlgPtr& q);

/// All constants mentioned in selection conditions of the subtree.
/// Parameter placeholders (Value::Param) are *not* constants and are
/// skipped — queries must be bound (see BindParams) before feeding the
/// Fig. 2 translations, which embed these constants into Dom extras.
std::vector<Value> QueryConstants(const AlgPtr& q);

/// Number of parameter slots the query needs: 1 + the largest placeholder
/// index mentioned in any selection condition or Dom extra of the subtree;
/// 0 for a parameter-free query.
size_t ParamCount(const AlgPtr& q);

/// Substitutes every parameter placeholder ?i by `params[i]` throughout
/// the subtree (conditions and Dom extras). Parameter-free subtrees are
/// shared, not copied. Errors when an index is out of range or a binding
/// is not a constant.
StatusOr<AlgPtr> BindParams(const AlgPtr& q, const std::vector<Value>& params);

/// All base relations scanned by the subtree.
std::vector<std::string> ScannedRelations(const AlgPtr& q);

/// True iff any selection condition in the subtree uses an order
/// comparison — such queries are not generic, so the exact
/// (valuation-family based) certainty machinery rejects them; the
/// approximation schemes handle them (§6 "Types of attributes").
bool QueryHasOrderComparison(const AlgPtr& q);

}  // namespace incdb

#endif  // INCDB_ALGEBRA_ALGEBRA_H_
