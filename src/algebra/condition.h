#ifndef INCDB_ALGEBRA_CONDITION_H_
#define INCDB_ALGEBRA_CONDITION_H_

/// \file condition.h
/// \brief Selection conditions θ of the paper's relational algebra (§2):
///
///   θ ::= const(A) | null(A) | A = B | A = c | A ≠ B | A ≠ c | θ∨θ | θ∧θ
///
/// There is no explicit negation; Negate() propagates ¬ through the
/// grammar, interchanging = with ≠ and const with null. The θ* translation
/// of §4.2 (Fig. 2) and three evaluation modes (naive two-valued, SQL 3VL,
/// unification 3VL) are provided.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/tuple.h"
#include "logic/truth.h"

namespace incdb {

struct Condition;
using CondPtr = std::shared_ptr<const Condition>;

enum class CondKind : uint8_t {
  kTrue,
  kFalse,
  kAnd,
  kOr,
  kEqAttrAttr,   ///< A = B
  kEqAttrConst,  ///< A = c
  kNeqAttrAttr,  ///< A ≠ B
  kNeqAttrConst, ///< A ≠ c
  kIsConst,      ///< const(A)
  kIsNull,       ///< null(A)
  // Order comparisons — the "Types of attributes" extension of §6: the
  // approximation schemes treat them like disequalities (θ* adds const
  // guards), SQL 3VL treats any null operand as u.
  kLtAttrAttr,   ///< A < B
  kLeAttrAttr,   ///< A ≤ B
  kLtAttrConst,  ///< A < c
  kLeAttrConst,  ///< A ≤ c
  kGtAttrConst,  ///< A > c
  kGeAttrConst,  ///< A ≥ c
};

/// \brief Immutable selection-condition AST node.
struct Condition {
  CondKind kind;
  std::string lhs;  ///< Left attribute name (comparisons and tests).
  std::string rhs;  ///< Right attribute name (attr-attr comparisons).
  Value constant;   ///< Right constant (attr-const comparisons).
  CondPtr left, right;  ///< Children (kAnd / kOr).

  std::string ToString() const;
};

/// Constructors.
CondPtr CTrue();
CondPtr CFalse();
CondPtr CAnd(CondPtr a, CondPtr b);
CondPtr COr(CondPtr a, CondPtr b);
CondPtr CEq(std::string a, std::string b);
CondPtr CEqc(std::string a, Value c);
CondPtr CNeq(std::string a, std::string b);
CondPtr CNeqc(std::string a, Value c);
CondPtr CIsConst(std::string a);
CondPtr CIsNull(std::string a);
/// Order comparisons. Constants compare numerically across Int/Double and
/// lexicographically within String; comparing a string to a number falls
/// back to the (deterministic) kind order — schemas should not mix types
/// in one column.
CondPtr CLt(std::string a, std::string b);
CondPtr CLe(std::string a, std::string b);
CondPtr CLtc(std::string a, Value c);
CondPtr CLec(std::string a, Value c);
CondPtr CGtc(std::string a, Value c);
CondPtr CGec(std::string a, Value c);

/// Conjunction / disjunction of a list (empty ∧ = true, empty ∨ = false).
CondPtr CAndAll(const std::vector<CondPtr>& cs);
CondPtr COrAll(const std::vector<CondPtr>& cs);

/// ¬θ with negation propagated through the grammar (paper §2):
/// = ↔ ≠, const ↔ null, De Morgan over ∧/∨.
CondPtr Negate(const CondPtr& c);

/// The θ* translation of §4.2: each A ≠ c becomes (A ≠ c) ∧ const(A) and
/// each A ≠ B becomes (A ≠ B) ∧ const(A) ∧ const(B). Equalities and
/// const/null tests are unchanged.
CondPtr StarTranslate(const CondPtr& c);

/// All attribute names mentioned by the condition.
std::vector<std::string> CondAttrs(const CondPtr& c);

/// True iff any attr-const comparison of the condition carries a parameter
/// placeholder (Value::Param) instead of a constant.
bool CondHasParam(const CondPtr& c);

/// Number of parameter slots the condition needs: 1 + the largest
/// placeholder index mentioned, 0 when the condition is parameter-free.
size_t CondParamCount(const CondPtr& c);

/// Resolves one value against parameter bindings: constants pass through,
/// a placeholder ?i yields `params[i]`. The single authority for binding
/// errors (index out of range, binding not a constant — nulls and nested
/// parameters cannot be bound), shared by every substitution site
/// (condition/algebra/plan binding, the c-table evaluator).
StatusOr<Value> ResolveParamBinding(const Value& v,
                                    const std::vector<Value>& params);

/// Substitutes every parameter placeholder ?i by `params[i]` (via
/// ResolveParamBinding). Parameter-free subtrees are shared, not copied.
StatusOr<CondPtr> BindCondParams(const CondPtr& c,
                                 const std::vector<Value>& params);

/// True iff the condition contains a const(·) or null(·) test. Source
/// queries fed to the Fig. 2 approximation translations must not use
/// these: over the complete possible worlds that define cert⊥ they are
/// trivially true/false, while the naive evaluation of the translated
/// query would read them syntactically — the two readings diverge.
bool HasNullConstTest(const CondPtr& c);

/// True iff the condition contains an order comparison (<, ≤, >, ≥).
/// The *exact* certain-answer machinery rejects such queries: its finite
/// valuation-family argument needs genericity (invariance under constant
/// permutations), which order predicates break. The approximation schemes
/// remain sound for them (§6 "Types of attributes").
bool HasOrderComparison(const CondPtr& c);

/// Total order on constants used by the order comparisons: numeric across
/// Int/Double, lexicographic within String, kind order across kinds.
/// Returns <0, 0, >0. Both values must be constants.
int CompareConst(const Value& a, const Value& b);

/// How atomic comparisons involving nulls are assigned truth values.
enum class CondMode {
  /// Two-valued, syntactic: ⊥_1 = ⊥_1 is t, ⊥_1 = ⊥_2 is f, ⊥ = c is f.
  /// This is the naive-evaluation reading (nulls as fresh constants, §4.1).
  kNaive,
  /// SQL's 3VL: any comparison with a null operand is u (even ⊥_1 = ⊥_1);
  /// const/null tests are always two-valued.
  kSql,
  /// The ⟦·⟧unif reading (§5.1, eq. 13b): ⊥_1 = ⊥_1 is t; a ≠ b is f only
  /// when both sides are constants; otherwise u.
  kUnif,
};

/// Truth value of the comparison a = b under each mode. The single
/// authority for equality-atom semantics, shared by the per-tuple
/// compiled predicate below and the columnar evaluator (eval/batch.h) —
/// the two must agree bit-for-bit.
inline TV3 CondEqTV(const Value& a, const Value& b, CondMode mode) {
  switch (mode) {
    case CondMode::kNaive:
      return FromBool(a == b);
    case CondMode::kSql:
      if (a.is_null() || b.is_null()) return TV3::kU;
      return FromBool(a == b);
    case CondMode::kUnif:
      if (a == b) return TV3::kT;  // includes ⊥_i = ⊥_i
      if (a.is_const() && b.is_const()) return TV3::kF;
      return TV3::kU;
  }
  return TV3::kU;
}

/// Truth value of an order comparison under each mode. `strict` selects
/// < vs ≤. Naive evaluation has no meaningful order on "fresh constants",
/// so a null operand yields f there (the conservative reading of §6);
/// SQL/unif yield u. Shared by both condition evaluators, like CondEqTV.
inline TV3 CondOrderTV(const Value& a, const Value& b, bool strict,
                       CondMode mode) {
  if (a.is_null() || b.is_null()) {
    return mode == CondMode::kNaive ? TV3::kF : TV3::kU;
  }
  int cmp = CompareConst(a, b);
  return FromBool(strict ? cmp < 0 : cmp <= 0);
}

/// Resolves attribute names against a schema once; returns an error for
/// unknown attributes. The returned evaluator computes the condition's
/// Kleene truth value on a tuple of that schema (kNaive never yields u).
StatusOr<std::function<TV3(const Tuple&)>> CompileCond(
    const CondPtr& c, const std::vector<std::string>& attrs, CondMode mode);

}  // namespace incdb

#endif  // INCDB_ALGEBRA_CONDITION_H_
