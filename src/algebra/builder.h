#ifndef INCDB_ALGEBRA_BUILDER_H_
#define INCDB_ALGEBRA_BUILDER_H_

/// \file builder.h
/// \brief Free-function construction DSL for relational algebra trees.
///
/// Example (the "unpaid orders" query of §1, Fig. 1):
/// \code
///   AlgPtr q = Diff(Project(Scan("Orders"), {"oid"}),
///                   Project(Scan("Payments"), {"oid"}));
/// \endcode

#include <string>
#include <vector>

#include "algebra/algebra.h"

namespace incdb {

AlgPtr Scan(std::string rel_name);
AlgPtr Select(AlgPtr in, CondPtr cond);
AlgPtr Project(AlgPtr in, std::vector<std::string> attrs);
AlgPtr Rename(AlgPtr in, std::vector<std::string> new_attrs);
AlgPtr Product(AlgPtr l, AlgPtr r);
AlgPtr Union(AlgPtr l, AlgPtr r);
AlgPtr Diff(AlgPtr l, AlgPtr r);
AlgPtr Intersect(AlgPtr l, AlgPtr r);
AlgPtr Division(AlgPtr l, AlgPtr r);
AlgPtr AntijoinUnify(AlgPtr l, AlgPtr r);

/// Dom^k with default attribute names d0..d{k-1} and optional extra
/// constants (the constants mentioned in the translated query).
AlgPtr DomK(size_t arity, std::vector<Value> extra = {});
/// Dom^k with explicit attribute names.
AlgPtr DomK(std::vector<std::string> attrs, std::vector<Value> extra = {});

/// Sugar: σ_θ(l × r); desugared by Desugar().
AlgPtr Join(AlgPtr l, AlgPtr r, CondPtr cond);
/// Sugar: tuples of l with at least one θ-partner in r.
AlgPtr Semijoin(AlgPtr l, AlgPtr r, CondPtr cond);
/// Sugar: tuples of l with no θ-partner in r.
AlgPtr Antijoin(AlgPtr l, AlgPtr r, CondPtr cond);

/// SQL's  l.lcols [NOT] IN (SELECT rcols FROM r WHERE θ)  predicate, where
/// θ may correlate left and right attributes. Under naive evaluation these
/// coincide with Semijoin/Antijoin on (θ ∧ lcols = rcols); under EvalSql
/// they implement SQL's three-valued IN / NOT IN, e.g. `x NOT IN S` fails
/// as soon as S contains a null unless x literally matches.
AlgPtr InPredicate(AlgPtr l, AlgPtr r, std::vector<std::string> lcols,
                   std::vector<std::string> rcols, CondPtr cond);
AlgPtr NotInPredicate(AlgPtr l, AlgPtr r, std::vector<std::string> lcols,
                      std::vector<std::string> rcols, CondPtr cond);

/// SELECT DISTINCT wrapper (no-op under set semantics).
AlgPtr Distinct(AlgPtr in);

}  // namespace incdb

#endif  // INCDB_ALGEBRA_BUILDER_H_
