#ifndef INCDB_SQL_LEXER_H_
#define INCDB_SQL_LEXER_H_

/// \file lexer.h
/// \brief Tokenizer for the mini-SQL frontend (the SELECT/FROM/WHERE
/// fragment used by the paper's examples and the TPC-H-like workload).

#include <string>
#include <vector>

#include "core/status.h"

namespace incdb {

enum class TokKind : uint8_t {
  kKeyword,  ///< SELECT, FROM, WHERE, AND, OR, NOT, IN, EXISTS, IS, NULL,
             ///< DISTINCT, AS (uppercased in `text`).
  kIdent,    ///< identifiers (case preserved)
  kNumber,   ///< integer or decimal literal
  kString,   ///< 'single quoted'
  kSymbol,   ///< ( ) , . = * ? and <> — ? is the positional parameter
             ///< placeholder of prepared queries (api/session.h)
  kEof,
};

struct Token {
  TokKind kind;
  std::string text;  ///< keyword (uppercase), identifier, literal or symbol
  size_t pos = 0;    ///< byte offset, for error messages
};

/// Splits `sql` into tokens; the final token is always kEof.
StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace incdb

#endif  // INCDB_SQL_LEXER_H_
