#include "sql/parser.h"

#include <cassert>

namespace incdb {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  StatusOr<SqlQueryPtr> ParseQuery() {
    auto q = ParseSelect();
    if (!q.ok()) return q.status();
    if (!AtEof()) {
      return Status::InvalidArgument("trailing input after query at offset " +
                                     std::to_string(Peek().pos));
    }
    (*q)->param_count = next_param_;
    return SqlQueryPtr(*q);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  const Token& Next() { return toks_[std::min(pos_++, toks_.size() - 1)]; }
  bool AtEof() const { return Peek().kind == TokKind::kEof; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind == TokKind::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const std::string& s) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + " at offset " +
                                     std::to_string(Peek().pos));
    }
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!AcceptSymbol(s)) {
      return Status::InvalidArgument("expected '" + s + "' at offset " +
                                     std::to_string(Peek().pos));
    }
    return Status::OK();
  }

  StatusOr<std::shared_ptr<SqlQuery>> ParseSelect() {
    INCDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto q = std::make_shared<SqlQuery>();
    q->distinct = AcceptKeyword("DISTINCT");
    if (AcceptSymbol("*")) {
      q->select_star = true;
    } else {
      while (true) {
        auto col = ParseColumn();
        if (!col.ok()) return col.status();
        q->select.push_back(*col);
        if (!AcceptSymbol(",")) break;
      }
    }
    INCDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      if (Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected table name at offset " +
                                       std::to_string(Peek().pos));
      }
      SqlTableRef ref;
      ref.pos = Peek().pos;
      ref.table = Next().text;
      AcceptKeyword("AS");
      if (Peek().kind == TokKind::kIdent) {
        ref.alias = Next().text;
      } else {
        ref.alias = ref.table;
      }
      q->from.push_back(std::move(ref));
      if (!AcceptSymbol(",")) break;
    }
    if (AcceptKeyword("WHERE")) {
      auto w = ParseOr();
      if (!w.ok()) return w.status();
      q->where = *w;
    }
    if (AcceptKeyword("UNION")) {
      auto next = ParseSelect();
      if (!next.ok()) return next;
      q->union_next = *next;
    }
    return q;
  }

  StatusOr<SqlColumn> ParseColumn() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected column at offset " +
                                     std::to_string(Peek().pos));
    }
    SqlColumn col;
    col.pos = Peek().pos;
    col.name = Next().text;
    if (AcceptSymbol(".")) {
      if (Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected column name after '.'");
      }
      col.qualifier = col.name;
      col.name = Next().text;
    }
    return col;
  }

  StatusOr<SqlExprPtr> ParseOr() {
    auto l = ParseAnd();
    if (!l.ok()) return l;
    SqlExprPtr out = *l;
    while (AcceptKeyword("OR")) {
      auto r = ParseAnd();
      if (!r.ok()) return r;
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kOr;
      node->l = out;
      node->r = *r;
      out = node;
    }
    return out;
  }

  StatusOr<SqlExprPtr> ParseAnd() {
    auto l = ParseNot();
    if (!l.ok()) return l;
    SqlExprPtr out = *l;
    while (AcceptKeyword("AND")) {
      auto r = ParseNot();
      if (!r.ok()) return r;
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kAnd;
      node->l = out;
      node->r = *r;
      out = node;
    }
    return out;
  }

  StatusOr<SqlExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      // NOT EXISTS is folded into the kExists node.
      if (Peek().kind == TokKind::kKeyword && Peek().text == "EXISTS") {
        auto e = ParsePrimary();
        if (!e.ok()) return e;
        auto node = std::make_shared<SqlExpr>(**e);
        node->negated = !node->negated;
        return SqlExprPtr(node);
      }
      auto e = ParseNot();
      if (!e.ok()) return e;
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kNot;
      node->l = *e;
      return SqlExprPtr(node);
    }
    return ParsePrimary();
  }

  StatusOr<SqlExprPtr> ParsePrimary() {
    if (AcceptSymbol("(")) {
      auto e = ParseOr();
      if (!e.ok()) return e;
      INCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (AcceptKeyword("EXISTS")) {
      INCDB_RETURN_IF_ERROR(ExpectSymbol("("));
      auto sub = ParseSelect();
      if (!sub.ok()) return sub.status();
      INCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kExists;
      node->subquery = *sub;
      return SqlExprPtr(node);
    }
    // Column-headed predicates.
    auto col = ParseColumn();
    if (!col.ok()) return col.status();
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      INCDB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kIsNull;
      node->negated = negated;
      node->lhs = *col;
      return SqlExprPtr(node);
    }
    bool not_in = false;
    if (AcceptKeyword("NOT")) {
      not_in = true;
      INCDB_RETURN_IF_ERROR(ExpectKeyword("IN"));
    } else if (AcceptKeyword("IN")) {
      not_in = false;
    } else {
      // Comparison.
      SqlCmpOp op;
      if (AcceptSymbol("=")) {
        op = SqlCmpOp::kEq;
      } else if (AcceptSymbol("<>")) {
        op = SqlCmpOp::kNeq;
      } else if (AcceptSymbol("<=")) {
        op = SqlCmpOp::kLe;
      } else if (AcceptSymbol(">=")) {
        op = SqlCmpOp::kGe;
      } else if (AcceptSymbol("<")) {
        op = SqlCmpOp::kLt;
      } else if (AcceptSymbol(">")) {
        op = SqlCmpOp::kGt;
      } else {
        return Status::InvalidArgument("expected comparison at offset " +
                                       std::to_string(Peek().pos));
      }
      auto node = std::make_shared<SqlExpr>();
      node->op = op;
      node->lhs = *col;
      if (Peek().kind == TokKind::kNumber) {
        const std::string& text = Next().text;
        node->kind = SqlExprKind::kCmpColLit;
        node->literal = text.find('.') == std::string::npos
                            ? Value::Int(std::stoll(text))
                            : Value::Double(std::stod(text));
      } else if (Peek().kind == TokKind::kString) {
        node->kind = SqlExprKind::kCmpColLit;
        node->literal = Value::String(Next().text);
      } else if (AcceptSymbol("?")) {
        // Positional parameter placeholder, numbered in textual order.
        node->kind = SqlExprKind::kCmpColLit;
        node->literal = Value::Param(static_cast<uint32_t>(next_param_++));
      } else {
        auto rhs = ParseColumn();
        if (!rhs.ok()) return rhs.status();
        node->kind = SqlExprKind::kCmpColCol;
        node->rhs = *rhs;
      }
      return SqlExprPtr(node);
    }
    INCDB_RETURN_IF_ERROR(ExpectSymbol("("));
    auto sub = ParseSelect();
    if (!sub.ok()) return sub.status();
    INCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    auto node = std::make_shared<SqlExpr>();
    node->kind = SqlExprKind::kInSubquery;
    node->negated = not_in;
    node->lhs = *col;
    node->subquery = *sub;
    return SqlExprPtr(node);
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  size_t next_param_ = 0;  ///< `?` placeholders seen so far, in text order.
};

}  // namespace

StatusOr<SqlQueryPtr> ParseSql(const std::string& sql) {
  auto toks = Tokenize(sql);
  if (!toks.ok()) return toks.status();
  Parser parser(std::move(toks).value());
  return parser.ParseQuery();
}

}  // namespace incdb
