#ifndef INCDB_SQL_TRANSLATE_H_
#define INCDB_SQL_TRANSLATE_H_

/// \file translate.h
/// \brief Translation of mini-SQL to relational algebra.
///
/// The translated tree uses the sugar operators (kIn/kNotIn for IN
/// predicates, kSemijoin/kAntijoin for EXISTS), so that
///  * EvalSql reproduces exactly what a SQL engine would return (3VL WHERE,
///    NOT IN null traps, NOT EXISTS two-valuedness), and
///  * after Desugar() the very same tree feeds the Fig. 2 approximation
///    translations, giving certain-answer guarantees for the same SQL text.
///
/// Restrictions: IN/EXISTS predicates must appear as top-level conjuncts of
/// WHERE (not under OR/NOT, except NOT EXISTS / NOT IN); correlation depth
/// is one level (a subquery may reference its immediate outer query).

#include "algebra/algebra.h"
#include "sql/parser.h"

namespace incdb {

/// Result of translating one (sub)query.
struct TranslatedQuery {
  AlgPtr alg;                           ///< algebra over prefixed attributes
  std::vector<std::string> out_attrs;   ///< output attribute names of `alg`
};

/// Translates a parsed query against the database's schemas. The output
/// relation's attributes are the bare selected column names (qualified
/// with their alias when bare names would collide).
StatusOr<AlgPtr> SqlToAlgebra(const SqlQueryPtr& q, const Database& db);

/// Parse + translate.
StatusOr<AlgPtr> ParseSqlToAlgebra(const std::string& sql, const Database& db);

}  // namespace incdb

#endif  // INCDB_SQL_TRANSLATE_H_
