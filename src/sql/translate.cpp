#include "sql/translate.h"

#include <algorithm>
#include <set>

#include "algebra/builder.h"

namespace incdb {

namespace {

/// One lexical scope: the qualified attribute names of a query's FROM
/// product. Attributes are stored as "q<id>.<alias>.<column>"; resolution
/// walks the scope chain outwards.
struct Scope {
  std::vector<std::string> attrs;
  const Scope* outer = nullptr;
};

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// "at offset N" suffix for error messages; the Session facade expands it
/// into a caret-annotated snippet of the SQL text.
std::string AtOffset(size_t pos) {
  return " at offset " + std::to_string(pos);
}

/// Resolves a column within one scope. Qualified: exact ".alias.col"
/// suffix; unqualified: unique ".col" suffix.
StatusOr<std::string> ResolveInScope(const SqlColumn& col,
                                     const std::vector<std::string>& attrs) {
  std::string suffix = col.qualifier.empty()
                           ? "." + col.name
                           : "." + col.qualifier + "." + col.name;
  std::string found;
  for (const std::string& a : attrs) {
    if (HasSuffix(a, suffix)) {
      if (!found.empty()) {
        return Status::InvalidArgument("ambiguous column " + col.ToString() +
                                       AtOffset(col.pos));
      }
      found = a;
    }
  }
  if (found.empty()) {
    return Status::NotFound("no column " + col.ToString() + AtOffset(col.pos));
  }
  return found;
}

/// Resolves along the scope chain, innermost first.
StatusOr<std::string> Resolve(const SqlColumn& col, const Scope& scope) {
  for (const Scope* s = &scope; s != nullptr; s = s->outer) {
    auto r = ResolveInScope(col, s->attrs);
    if (r.ok()) return r;
    if (r.status().code() == StatusCode::kInvalidArgument) return r;
  }
  return Status::NotFound("unknown column " + col.ToString() +
                          AtOffset(col.pos));
}

bool IsPlainExpr(const SqlExprPtr& e) {
  switch (e->kind) {
    case SqlExprKind::kCmpColCol:
    case SqlExprKind::kCmpColLit:
    case SqlExprKind::kIsNull:
      return true;
    case SqlExprKind::kAnd:
    case SqlExprKind::kOr:
      return IsPlainExpr(e->l) && IsPlainExpr(e->r);
    case SqlExprKind::kNot:
      return IsPlainExpr(e->l);
    default:
      return false;
  }
}

/// Translates a plain boolean expression to a selection condition, with
/// columns resolved through the scope chain.
StatusOr<CondPtr> PlainCond(const SqlExprPtr& e, const Scope& scope) {
  switch (e->kind) {
    case SqlExprKind::kCmpColCol: {
      auto l = Resolve(e->lhs, scope);
      if (!l.ok()) return l.status();
      auto r = Resolve(e->rhs, scope);
      if (!r.ok()) return r.status();
      switch (e->op) {
        case SqlCmpOp::kEq:
          return CEq(*l, *r);
        case SqlCmpOp::kNeq:
          return CNeq(*l, *r);
        case SqlCmpOp::kLt:
          return CLt(*l, *r);
        case SqlCmpOp::kLe:
          return CLe(*l, *r);
        case SqlCmpOp::kGt:
          return CLt(*r, *l);
        case SqlCmpOp::kGe:
          return CLe(*r, *l);
      }
      return Status::Internal("unknown comparison");
    }
    case SqlExprKind::kCmpColLit: {
      auto l = Resolve(e->lhs, scope);
      if (!l.ok()) return l.status();
      switch (e->op) {
        case SqlCmpOp::kEq:
          return CEqc(*l, e->literal);
        case SqlCmpOp::kNeq:
          return CNeqc(*l, e->literal);
        case SqlCmpOp::kLt:
          return CLtc(*l, e->literal);
        case SqlCmpOp::kLe:
          return CLec(*l, e->literal);
        case SqlCmpOp::kGt:
          return CGtc(*l, e->literal);
        case SqlCmpOp::kGe:
          return CGec(*l, e->literal);
      }
      return Status::Internal("unknown comparison");
    }
    case SqlExprKind::kIsNull: {
      auto l = Resolve(e->lhs, scope);
      if (!l.ok()) return l.status();
      return e->negated ? CIsConst(*l) : CIsNull(*l);
    }
    case SqlExprKind::kAnd: {
      auto l = PlainCond(e->l, scope);
      if (!l.ok()) return l;
      auto r = PlainCond(e->r, scope);
      if (!r.ok()) return r;
      return CAnd(*l, *r);
    }
    case SqlExprKind::kOr: {
      auto l = PlainCond(e->l, scope);
      if (!l.ok()) return l;
      auto r = PlainCond(e->r, scope);
      if (!r.ok()) return r;
      return COr(*l, *r);
    }
    case SqlExprKind::kNot: {
      auto l = PlainCond(e->l, scope);
      if (!l.ok()) return l;
      // The condition grammar has no ¬; propagate it. Note ¬ propagation
      // is faithful to SQL 3VL: Kleene negation commutes this way.
      return Negate(*l);
    }
    default:
      return Status::Unsupported(
          "IN/EXISTS predicates must be top-level WHERE conjuncts");
  }
}

void SplitConjuncts(const SqlExprPtr& e, std::vector<SqlExprPtr>* out) {
  if (e->kind == SqlExprKind::kAnd) {
    SplitConjuncts(e->l, out);
    SplitConjuncts(e->r, out);
  } else {
    out->push_back(e);
  }
}

/// Attributes referenced by a condition must lie within `allowed`.
Status CheckCondScope(const CondPtr& cond,
                      const std::vector<std::string>& allowed,
                      const char* what) {
  for (const std::string& a : CondAttrs(cond)) {
    if (std::find(allowed.begin(), allowed.end(), a) == allowed.end()) {
      return Status::Unsupported(
          std::string(what) +
          ": condition references an attribute beyond one level of "
          "correlation: " +
          a);
    }
  }
  return Status::OK();
}

class Translator {
 public:
  explicit Translator(const Database& db) : db_(db) {}

  /// Translates a query. `outer` is the enclosing scope chain (nullptr at
  /// top level). Produces algebra over prefixed attributes plus the
  /// conjuncts that reference outer attributes (to be folded into the
  /// enclosing predicate's condition).
  struct Result {
    AlgPtr alg;
    std::vector<std::string> out_attrs;
    CondPtr lifted = CTrue();
  };

  StatusOr<Result> Translate(const SqlQueryPtr& q, const Scope* outer) {
    size_t scope_id = next_scope_++;
    std::string prefix = "q" + std::to_string(scope_id);

    // ---- FROM ----
    if (q->from.empty()) {
      return Status::InvalidArgument("FROM clause is empty");
    }
    AlgPtr from;
    Scope scope;
    scope.outer = outer;
    std::set<std::string> aliases;
    for (const SqlTableRef& ref : q->from) {
      if (!aliases.insert(ref.alias).second) {
        return Status::InvalidArgument("duplicate alias " + ref.alias +
                                       AtOffset(ref.pos));
      }
      const Relation* rel = db_.Find(ref.table);
      if (rel == nullptr) {
        return Status::NotFound("no relation named " + ref.table +
                                AtOffset(ref.pos));
      }
      std::vector<std::string> qualified;
      for (const std::string& a : rel->attrs()) {
        qualified.push_back(prefix + "." + ref.alias + "." + a);
      }
      AlgPtr scan = Rename(Scan(ref.table), qualified);
      from = from ? Product(from, scan) : scan;
      scope.attrs.insert(scope.attrs.end(), qualified.begin(),
                         qualified.end());
    }

    // ---- WHERE ----
    AlgPtr cur = from;
    CondPtr local = CTrue();
    CondPtr lifted = CTrue();
    std::vector<SqlExprPtr> conjuncts;
    if (q->where) SplitConjuncts(q->where, &conjuncts);
    // Plain conjuncts first (cheap selections before semijoins).
    for (const SqlExprPtr& e : conjuncts) {
      if (!IsPlainExpr(e)) continue;
      auto cond = PlainCond(e, scope);
      if (!cond.ok()) return cond.status();
      // Local if all attributes resolve within this scope.
      bool is_local = true;
      for (const std::string& a : CondAttrs(*cond)) {
        if (std::find(scope.attrs.begin(), scope.attrs.end(), a) ==
            scope.attrs.end()) {
          is_local = false;
          break;
        }
      }
      if (is_local) {
        local = CAnd(local, *cond);
      } else {
        lifted = CAnd(lifted, *cond);
      }
    }
    if (local->kind != CondKind::kTrue) cur = Select(cur, local);

    // Subquery predicates.
    for (const SqlExprPtr& e : conjuncts) {
      if (IsPlainExpr(e)) continue;
      switch (e->kind) {
        case SqlExprKind::kInSubquery: {
          auto lhs = Resolve(e->lhs, scope);
          if (!lhs.ok()) return lhs.status();
          auto sub = Translate(e->subquery, &scope);
          if (!sub.ok()) return sub;
          if (sub->out_attrs.size() != 1) {
            return Status::InvalidArgument(
                "IN subquery must select exactly one column");
          }
          std::vector<std::string> allowed = scope.attrs;
          auto sub_attrs = OutputAttrs(sub->alg, db_);
          if (!sub_attrs.ok()) return sub_attrs.status();
          allowed.insert(allowed.end(), sub_attrs->begin(), sub_attrs->end());
          INCDB_RETURN_IF_ERROR(
              CheckCondScope(sub->lifted, allowed, "IN subquery"));
          cur = e->negated ? NotInPredicate(cur, sub->alg, {*lhs},
                                            {sub->out_attrs[0]}, sub->lifted)
                           : InPredicate(cur, sub->alg, {*lhs},
                                         {sub->out_attrs[0]}, sub->lifted);
          break;
        }
        case SqlExprKind::kExists: {
          auto sub = Translate(e->subquery, &scope);
          if (!sub.ok()) return sub;
          std::vector<std::string> allowed = scope.attrs;
          auto sub_attrs = OutputAttrs(sub->alg, db_);
          if (!sub_attrs.ok()) return sub_attrs.status();
          allowed.insert(allowed.end(), sub_attrs->begin(), sub_attrs->end());
          INCDB_RETURN_IF_ERROR(
              CheckCondScope(sub->lifted, allowed, "EXISTS subquery"));
          cur = e->negated ? Antijoin(cur, sub->alg, sub->lifted)
                           : Semijoin(cur, sub->alg, sub->lifted);
          break;
        }
        default:
          return Status::Unsupported(
              "IN/EXISTS must appear as top-level WHERE conjuncts");
      }
    }

    // ---- SELECT ----
    Result result;
    std::vector<std::string> selected;
    if (q->select_star) {
      selected = scope.attrs;
    } else {
      for (const SqlColumn& col : q->select) {
        auto r = ResolveInScope(col, scope.attrs);
        if (!r.ok()) return r.status();
        selected.push_back(*r);
      }
    }
    cur = Project(cur, selected);
    if (q->distinct) cur = Distinct(cur);
    result.alg = cur;
    result.out_attrs = selected;
    result.lifted = lifted;

    // UNION chaining: translate the next SELECT in the same outer scope
    // and fold it in (arity is validated by the evaluators; names come
    // from the first branch).
    if (q->union_next) {
      auto next = Translate(q->union_next, outer);
      if (!next.ok()) return next;
      if (next->out_attrs.size() != result.out_attrs.size()) {
        return Status::InvalidArgument(
            "UNION branches must select the same number of columns");
      }
      if (next->lifted->kind != CondKind::kTrue) {
        return Status::Unsupported(
            "correlated UNION branches are not supported");
      }
      result.alg = Union(result.alg, next->alg);
    }
    return result;
  }

 private:
  const Database& db_;
  size_t next_scope_ = 0;
};

/// Bare output name of a qualified attribute "q0.alias.col" → "col".
std::string BareName(const std::string& qualified) {
  size_t pos = qualified.rfind('.');
  return pos == std::string::npos ? qualified : qualified.substr(pos + 1);
}

/// "q0.alias.col" → "alias.col".
std::string AliasName(const std::string& qualified) {
  size_t first = qualified.find('.');
  return first == std::string::npos ? qualified : qualified.substr(first + 1);
}

}  // namespace

StatusOr<AlgPtr> SqlToAlgebra(const SqlQueryPtr& q, const Database& db) {
  Translator tr(db);
  auto res = tr.Translate(q, nullptr);
  if (!res.ok()) return res.status();
  if (res->lifted->kind != CondKind::kTrue) {
    return Status::InvalidArgument(
        "top-level query references unknown (outer) columns");
  }
  // Rename outputs to readable names: bare column names when unique,
  // alias-qualified otherwise.
  std::vector<std::string> bare;
  std::set<std::string> seen;
  bool unique = true;
  for (const std::string& a : res->out_attrs) {
    std::string b = BareName(a);
    if (!seen.insert(b).second) unique = false;
    bare.push_back(b);
  }
  if (!unique) {
    bare.clear();
    for (const std::string& a : res->out_attrs) bare.push_back(AliasName(a));
  }
  return Rename(res->alg, bare);
}

StatusOr<AlgPtr> ParseSqlToAlgebra(const std::string& sql,
                                   const Database& db) {
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return parsed.status();
  return SqlToAlgebra(*parsed, db);
}

}  // namespace incdb
