#include "sql/lexer.h"

#include <cctype>
#include <set>

namespace incdb {

namespace {
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "SELECT", "FROM", "WHERE",    "AND", "OR", "NOT",
      "IN",     "EXISTS", "IS",     "NULL", "DISTINCT", "AS",
      "UNION",
  };
  return kw;
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}
}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string up = Upper(word);
      if (Keywords().count(up)) {
        out.push_back(Token{TokKind::kKeyword, up, start});
      } else {
        out.push_back(Token{TokKind::kIdent, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (!dot && sql[i] == '.'))) {
        if (sql[i] == '.') {
          // A dot not followed by a digit is a qualifier, not a decimal.
          if (i + 1 >= n || !std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
            break;
          }
          dot = true;
        }
        ++i;
      }
      out.push_back(Token{TokKind::kNumber, sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      while (i < n && sql[i] != '\'') text += sql[i++];
      if (i >= n) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      ++i;  // closing quote
      out.push_back(Token{TokKind::kString, text, start});
      continue;
    }
    if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
      out.push_back(Token{TokKind::kSymbol, "<>", start});
      i += 2;
      continue;
    }
    if ((c == '<' || c == '>') && i + 1 < n && sql[i + 1] == '=') {
      out.push_back(Token{TokKind::kSymbol, std::string(1, c) + "=", start});
      i += 2;
      continue;
    }
    if (c == '<' || c == '>') {
      out.push_back(Token{TokKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == '.' || c == '=' ||
        c == '*' || c == '?') {
      out.push_back(Token{TokKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(start));
  }
  out.push_back(Token{TokKind::kEof, "", n});
  return out;
}

}  // namespace incdb
