#ifndef INCDB_SQL_PARSER_H_
#define INCDB_SQL_PARSER_H_

/// \file parser.h
/// \brief AST and recursive-descent parser for the mini-SQL fragment:
///
///   query  := select (UNION select)*
///   select := SELECT [DISTINCT] (∗ | col (, col)*)
///             FROM table [alias] (, table [alias])*
///             [WHERE cond]
///   cond   := disjunctions/conjunctions/negations of:
///             col (= | <> | < | <= | > | >=) (col | literal)
///           | col IS [NOT] NULL
///           | col [NOT] IN ( query )
///           | [NOT] EXISTS ( query )
///
/// This covers the paper's §1 examples and the negation-heavy TPC-H-style
/// workload of [37]. Subqueries may be correlated (reference outer
/// aliases).

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/value.h"
#include "sql/lexer.h"

namespace incdb {

/// A (possibly qualified) column reference `qualifier.name` or `name`.
struct SqlColumn {
  std::string qualifier;  ///< empty when unqualified
  std::string name;
  size_t pos = 0;         ///< byte offset of the reference, for errors

  std::string ToString() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

struct SqlQuery;
using SqlQueryPtr = std::shared_ptr<const SqlQuery>;

struct SqlExpr;
using SqlExprPtr = std::shared_ptr<const SqlExpr>;

/// Comparison operators of the mini-SQL fragment.
enum class SqlCmpOp : uint8_t { kEq, kNeq, kLt, kLe, kGt, kGe };

enum class SqlExprKind : uint8_t {
  kCmpColCol,    ///< col (=|<>) col
  kCmpColLit,    ///< col (=|<>) literal
  kIsNull,       ///< col IS [NOT] NULL
  kInSubquery,   ///< col [NOT] IN (query)
  kExists,       ///< [NOT] EXISTS (query)
  kAnd,
  kOr,
  kNot,
};

struct SqlExpr {
  SqlExprKind kind;
  bool negated = false;  ///< kIsNull / kInSubquery / kExists variants
  SqlCmpOp op = SqlCmpOp::kEq;  ///< comparisons
  SqlColumn lhs, rhs;
  Value literal;
  SqlQueryPtr subquery;
  SqlExprPtr l, r;
};

struct SqlTableRef {
  std::string table;
  std::string alias;  ///< defaults to the table name
  size_t pos = 0;     ///< byte offset of the table name, for errors
};

struct SqlQuery {
  bool distinct = false;
  bool select_star = false;
  std::vector<SqlColumn> select;
  std::vector<SqlTableRef> from;
  SqlExprPtr where;        ///< null when absent
  SqlQueryPtr union_next;  ///< SELECT ... UNION SELECT ... chaining
  /// Number of `?` parameter placeholders in this statement including all
  /// subqueries and UNION branches (placeholders are numbered 0..n-1 in
  /// textual order). Only meaningful on the top-level query.
  size_t param_count = 0;
};

/// Parses one SELECT statement (the entire input must be consumed).
/// Comparison literals may be `?` parameter placeholders
/// (`price > ?`, `cid = ?`), numbered left to right; they are bound to
/// constants at execute time (api/session.h).
StatusOr<SqlQueryPtr> ParseSql(const std::string& sql);

}  // namespace incdb

#endif  // INCDB_SQL_PARSER_H_
