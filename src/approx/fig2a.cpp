#include "algebra/builder.h"
#include "approx/approx.h"

namespace incdb {

namespace {

/// Mutually recursive Fig. 2(a) rules. Dom^k nodes are named after the
/// subquery whose complement they approximate, so set operations compose;
/// they carry the constants mentioned anywhere in the original query (the
/// active domain of the naive-evaluation setting).
class Fig2aTranslator {
 public:
  Fig2aTranslator(const Database& db, std::vector<Value> query_consts)
      : db_(db), query_consts_(std::move(query_consts)) {}

  StatusOr<AlgPtr> True(const AlgPtr& q) {
    switch (q->kind) {
      case OpKind::kScan:
        return q;  // Rt = R
      case OpKind::kUnion: {
        auto l = True(q->left);
        if (!l.ok()) return l;
        auto r = True(q->right);
        if (!r.ok()) return r;
        return Union(*l, *r);
      }
      case OpKind::kDifference: {
        // (Q1 − Q2)t = Q1t ∩ Q2f
        auto l = True(q->left);
        if (!l.ok()) return l;
        auto r = False(q->right);
        if (!r.ok()) return r;
        return Intersect(*l, *r);
      }
      case OpKind::kSelect: {
        auto in = True(q->left);
        if (!in.ok()) return in;
        return Select(*in, StarTranslate(q->cond));
      }
      case OpKind::kProduct: {
        auto l = True(q->left);
        if (!l.ok()) return l;
        auto r = True(q->right);
        if (!r.ok()) return r;
        return Product(*l, *r);
      }
      case OpKind::kProject: {
        auto in = True(q->left);
        if (!in.ok()) return in;
        return Project(*in, q->attrs);
      }
      case OpKind::kRename: {
        auto in = True(q->left);
        if (!in.ok()) return in;
        return Rename(*in, q->attrs);
      }
      default:
        return Status::Unsupported(
            "Qt translation: run PrepareForTranslation first");
    }
  }

  StatusOr<AlgPtr> False(const AlgPtr& q) {
    auto attrs = OutputAttrs(q, db_);
    if (!attrs.ok()) return attrs.status();
    switch (q->kind) {
      case OpKind::kScan:
        // Rf = Dom^ar(R) ⋉⇑ R
        return AntijoinUnify(Dom(*attrs), q);
      case OpKind::kUnion: {
        // (Q1 ∪ Q2)f = Q1f ∩ Q2f
        auto l = False(q->left);
        if (!l.ok()) return l;
        auto r = False(q->right);
        if (!r.ok()) return r;
        return Intersect(*l, *r);
      }
      case OpKind::kDifference: {
        // (Q1 − Q2)f = Q1f ∪ Q2t
        auto l = False(q->left);
        if (!l.ok()) return l;
        auto r = True(q->right);
        if (!r.ok()) return r;
        return Union(*l, *r);
      }
      case OpKind::kSelect: {
        // (σθ Q)f = Qf ∪ σ(¬θ)*(Dom^ar(Q))
        auto in = False(q->left);
        if (!in.ok()) return in;
        return Union(*in, Select(Dom(*attrs), StarTranslate(Negate(q->cond))));
      }
      case OpKind::kProduct: {
        // (Q1 × Q2)f = Q1f × Dom^ar(Q2) ∪ Dom^ar(Q1) × Q2f
        auto lf = False(q->left);
        if (!lf.ok()) return lf;
        auto rf = False(q->right);
        if (!rf.ok()) return rf;
        auto lattrs = OutputAttrs(q->left, db_);
        if (!lattrs.ok()) return lattrs.status();
        auto rattrs = OutputAttrs(q->right, db_);
        if (!rattrs.ok()) return rattrs.status();
        return Union(Product(*lf, Dom(*rattrs)), Product(Dom(*lattrs), *rf));
      }
      case OpKind::kProject: {
        // (πα Q)f = πα(Qf) − πα(Dom^ar(Q) − Qf)
        auto in = False(q->left);
        if (!in.ok()) return in;
        auto in_attrs = OutputAttrs(q->left, db_);
        if (!in_attrs.ok()) return in_attrs.status();
        return Diff(Project(*in, q->attrs),
                    Project(Diff(Dom(*in_attrs), *in), q->attrs));
      }
      case OpKind::kRename: {
        auto in = False(q->left);
        if (!in.ok()) return in;
        return Rename(*in, q->attrs);
      }
      default:
        return Status::Unsupported(
            "Qf translation: run PrepareForTranslation first");
    }
  }

 private:
  AlgPtr Dom(const std::vector<std::string>& attrs) {
    return DomK(attrs, query_consts_);
  }

  const Database& db_;
  std::vector<Value> query_consts_;
};

}  // namespace

StatusOr<AlgPtr> TranslateCertTrue(const AlgPtr& q, const Database& db) {
  auto core = PrepareForTranslation(q, db);
  if (!core.ok()) return core;
  Fig2aTranslator tr(db, QueryConstants(q));
  return tr.True(*core);
}

StatusOr<AlgPtr> TranslateCertFalse(const AlgPtr& q, const Database& db) {
  auto core = PrepareForTranslation(q, db);
  if (!core.ok()) return core;
  Fig2aTranslator tr(db, QueryConstants(q));
  return tr.False(*core);
}

StatusOr<Relation> EvalCertTrue(const AlgPtr& q, const Database& db,
                                const EvalOptions& opts) {
  auto t = TranslateCertTrue(q, db);
  if (!t.ok()) return t.status();
  return EvalSet(*t, db, opts);
}

StatusOr<Relation> EvalCertFalse(const AlgPtr& q, const Database& db,
                                 const EvalOptions& opts) {
  auto t = TranslateCertFalse(q, db);
  if (!t.ok()) return t.status();
  return EvalSet(*t, db, opts);
}

}  // namespace incdb
