#ifndef INCDB_APPROX_APPROX_H_
#define INCDB_APPROX_APPROX_H_

/// \file approx.h
/// \brief The two approximation schemes with correctness guarantees of
/// paper §4.2 (Figure 2).
///
/// Scheme (a), from [51] (Libkin, TODS'16): Q ↦ (Qt, Qf), where Qt(D) ⊆
/// cert⊥(Q, D) and Qf(D) ⊆ cert⊥(¬Q, D). Sound but impractical: the Qf
/// rules multiply active-domain products Dom^k, which blow up on databases
/// with only hundreds of tuples (experiment E2).
///
/// Scheme (b), from [37] (Guagliardo & Libkin, PODS'16): Q ↦ (Q+, Q?),
/// where Q+ has correctness guarantees for Q and Q? over-approximates the
/// possible answers:  v(Q+(D)) ⊆ Q(v(D)) ⊆ v(Q?(D)) for every valuation v
/// (Theorem 4.7). Under bag semantics the same translation brackets the
/// minimal multiplicity: #(ā,Q+(D)) ≤ □Q(D,ā) ≤ #(ā,Q?(D)) (Theorem 4.8).
///
/// Both translations consume the paper's core grammar
/// {scan, σ, π, ρ, ×, ∪, −}; PrepareForTranslation() desugars the
/// convenience operators and rewrites ∩ as Q1 − (Q1 − Q2) first.
/// The translated queries are ordinary relational algebra and are meant to
/// be run with the *naive* evaluators (EvalSet / EvalBag).

#include "algebra/algebra.h"
#include "core/database.h"
#include "core/status.h"
#include "eval/eval.h"

namespace incdb {

/// Desugars sugar operators and ∩ so the result uses only the grammar the
/// Fig. 2 translations accept. Fails for ÷ / ⋉⇑ / Dom inputs.
StatusOr<AlgPtr> PrepareForTranslation(const AlgPtr& q, const Database& db);

/// Fig. 2(b): the certain-answer under-approximation Q+.
StatusOr<AlgPtr> TranslatePlus(const AlgPtr& q, const Database& db);
/// Fig. 2(b): the possible-answer over-approximation Q?.
StatusOr<AlgPtr> TranslateMaybe(const AlgPtr& q, const Database& db);

/// Fig. 2(a): the certainly-true translation Qt.
StatusOr<AlgPtr> TranslateCertTrue(const AlgPtr& q, const Database& db);
/// Fig. 2(a): the certainly-false translation Qf.
StatusOr<AlgPtr> TranslateCertFalse(const AlgPtr& q, const Database& db);

/// Convenience: translate + naive set evaluation.
StatusOr<Relation> EvalPlus(const AlgPtr& q, const Database& db,
                            const EvalOptions& opts = {});
StatusOr<Relation> EvalMaybe(const AlgPtr& q, const Database& db,
                             const EvalOptions& opts = {});
StatusOr<Relation> EvalCertTrue(const AlgPtr& q, const Database& db,
                                const EvalOptions& opts = {});
StatusOr<Relation> EvalCertFalse(const AlgPtr& q, const Database& db,
                                 const EvalOptions& opts = {});

}  // namespace incdb

#endif  // INCDB_APPROX_APPROX_H_
