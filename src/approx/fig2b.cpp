#include "algebra/builder.h"
#include "approx/approx.h"

namespace incdb {

namespace {

/// Rewrites ∩ as Q1 − (Q1 − Q2) after full desugaring.
StatusOr<AlgPtr> StripIntersect(const AlgPtr& q) {
  auto rec = [](const AlgPtr& c) { return StripIntersect(c); };
  switch (q->kind) {
    case OpKind::kScan:
    case OpKind::kDom:
      return q;
    case OpKind::kSelect: {
      auto in = rec(q->left);
      if (!in.ok()) return in;
      return Select(std::move(in).value(), q->cond);
    }
    case OpKind::kProject: {
      auto in = rec(q->left);
      if (!in.ok()) return in;
      return Project(std::move(in).value(), q->attrs);
    }
    case OpKind::kRename: {
      auto in = rec(q->left);
      if (!in.ok()) return in;
      return Rename(std::move(in).value(), q->attrs);
    }
    case OpKind::kProduct:
    case OpKind::kUnion:
    case OpKind::kDifference:
    case OpKind::kIntersect:
    case OpKind::kAntijoinUnify:
    case OpKind::kDivision: {
      auto l = rec(q->left);
      if (!l.ok()) return l;
      auto r = rec(q->right);
      if (!r.ok()) return r;
      AlgPtr left = std::move(l).value();
      AlgPtr right = std::move(r).value();
      switch (q->kind) {
        case OpKind::kProduct:
          return Product(left, right);
        case OpKind::kUnion:
          return Union(left, right);
        case OpKind::kDifference:
          return Diff(left, right);
        case OpKind::kIntersect:
          return Diff(left, Diff(left, right));
        case OpKind::kAntijoinUnify:
          return AntijoinUnify(left, right);
        default:
          return Division(left, right);
      }
    }
    default:
      return Status::Internal("StripIntersect: sugar operator not desugared");
  }
}

}  // namespace

namespace {
bool SelectionsAreTranslatable(const AlgPtr& q) {
  if (q->cond && HasNullConstTest(q->cond)) return false;
  if (q->left && !SelectionsAreTranslatable(q->left)) return false;
  if (q->right && !SelectionsAreTranslatable(q->right)) return false;
  return true;
}
}  // namespace

StatusOr<AlgPtr> PrepareForTranslation(const AlgPtr& q, const Database& db) {
  auto desugared = Desugar(q, db);
  if (!desugared.ok()) return desugared;
  auto core = StripIntersect(*desugared);
  if (!core.ok()) return core;
  if (!IsCoreGrammar(*core)) {
    return Status::Unsupported(
        "the Fig. 2 translations are defined for the core grammar "
        "{scan, σ, π, ρ, ×, ∪, −}; the query uses ÷, ⋉⇑ or Dom");
  }
  if (!SelectionsAreTranslatable(*core)) {
    return Status::Unsupported(
        "the Fig. 2 translations accept the paper's source condition "
        "grammar over = and ≠ only; const(·)/null(·) tests in the *source* "
        "query are not certain-answer meaningful (see HasNullConstTest)");
  }
  return core;
}

namespace {

/// Mutually recursive Fig. 2(b) rules over the core grammar.
/// Preconditions: q is core grammar (PrepareForTranslation output).
StatusOr<AlgPtr> Plus(const AlgPtr& q, const Database& db);
StatusOr<AlgPtr> Maybe(const AlgPtr& q, const Database& db);

StatusOr<AlgPtr> Plus(const AlgPtr& q, const Database& db) {
  switch (q->kind) {
    case OpKind::kScan:
      return q;  // R+ = R
    case OpKind::kUnion: {
      auto l = Plus(q->left, db);
      if (!l.ok()) return l;
      auto r = Plus(q->right, db);
      if (!r.ok()) return r;
      return Union(*l, *r);
    }
    case OpKind::kDifference: {
      // (Q1 − Q2)+ = Q1+ ⋉⇑ Q2?
      auto l = Plus(q->left, db);
      if (!l.ok()) return l;
      auto r = Maybe(q->right, db);
      if (!r.ok()) return r;
      return AntijoinUnify(*l, *r);
    }
    case OpKind::kSelect: {
      // (σθ Q)+ = σθ*(Q+)
      auto in = Plus(q->left, db);
      if (!in.ok()) return in;
      return Select(*in, StarTranslate(q->cond));
    }
    case OpKind::kProduct: {
      auto l = Plus(q->left, db);
      if (!l.ok()) return l;
      auto r = Plus(q->right, db);
      if (!r.ok()) return r;
      return Product(*l, *r);
    }
    case OpKind::kProject: {
      auto in = Plus(q->left, db);
      if (!in.ok()) return in;
      return Project(*in, q->attrs);
    }
    case OpKind::kRename: {
      auto in = Plus(q->left, db);
      if (!in.ok()) return in;
      return Rename(*in, q->attrs);
    }
    default:
      return Status::Unsupported("Q+ translation: run PrepareForTranslation");
  }
}

StatusOr<AlgPtr> Maybe(const AlgPtr& q, const Database& db) {
  switch (q->kind) {
    case OpKind::kScan:
      return q;  // R? = R
    case OpKind::kUnion: {
      auto l = Maybe(q->left, db);
      if (!l.ok()) return l;
      auto r = Maybe(q->right, db);
      if (!r.ok()) return r;
      return Union(*l, *r);
    }
    case OpKind::kDifference: {
      // (Q1 − Q2)? = Q1? − Q2+
      auto l = Maybe(q->left, db);
      if (!l.ok()) return l;
      auto r = Plus(q->right, db);
      if (!r.ok()) return r;
      return Diff(*l, *r);
    }
    case OpKind::kSelect: {
      // (σθ Q)? = σ¬(¬θ)*(Q?)
      auto in = Maybe(q->left, db);
      if (!in.ok()) return in;
      return Select(*in, Negate(StarTranslate(Negate(q->cond))));
    }
    case OpKind::kProduct: {
      auto l = Maybe(q->left, db);
      if (!l.ok()) return l;
      auto r = Maybe(q->right, db);
      if (!r.ok()) return r;
      return Product(*l, *r);
    }
    case OpKind::kProject: {
      auto in = Maybe(q->left, db);
      if (!in.ok()) return in;
      return Project(*in, q->attrs);
    }
    case OpKind::kRename: {
      auto in = Maybe(q->left, db);
      if (!in.ok()) return in;
      return Rename(*in, q->attrs);
    }
    default:
      return Status::Unsupported("Q? translation: run PrepareForTranslation");
  }
}

}  // namespace

StatusOr<AlgPtr> TranslatePlus(const AlgPtr& q, const Database& db) {
  auto core = PrepareForTranslation(q, db);
  if (!core.ok()) return core;
  return Plus(*core, db);
}

StatusOr<AlgPtr> TranslateMaybe(const AlgPtr& q, const Database& db) {
  auto core = PrepareForTranslation(q, db);
  if (!core.ok()) return core;
  return Maybe(*core, db);
}

StatusOr<Relation> EvalPlus(const AlgPtr& q, const Database& db,
                            const EvalOptions& opts) {
  auto t = TranslatePlus(q, db);
  if (!t.ok()) return t.status();
  return EvalSet(*t, db, opts);
}

StatusOr<Relation> EvalMaybe(const AlgPtr& q, const Database& db,
                             const EvalOptions& opts) {
  auto t = TranslateMaybe(q, db);
  if (!t.ok()) return t.status();
  return EvalSet(*t, db, opts);
}

}  // namespace incdb
