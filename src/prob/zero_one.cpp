#include "eval/eval.h"
#include "prob/prob.h"

namespace incdb {

StatusOr<bool> AlmostCertainlyTrue(const AlgPtr& q, const Database& db,
                                   const Tuple& tuple,
                                   const ProbOptions& opts) {
  // Theorem 4.10: µ(Q, D, ā) = 1 iff ā ∈ Qnaive(D), and 0 otherwise.
  auto naive = EvalSet(q, db, opts.eval);
  if (!naive.ok()) return naive.status();
  return naive->Contains(tuple);
}

StatusOr<double> MuLimit(const AlgPtr& q, const Database& db,
                         const Tuple& tuple, const ProbOptions& opts) {
  auto act = AlmostCertainlyTrue(q, db, tuple, opts);
  if (!act.ok()) return act.status();
  return *act ? 1.0 : 0.0;
}

}  // namespace incdb
