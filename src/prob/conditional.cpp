#include "constraints/chase.h"
#include "eval/eval.h"
#include "prob/prob.h"

namespace incdb {

StatusOr<double> MuLimitConditionalFDs(const AlgPtr& q,
                                       const std::vector<FD>& fds,
                                       const Database& db, const Tuple& tuple,
                                       const ProbOptions& opts) {
  // §4.3: with Σ a set of FDs, µ(Q|Σ, D, ā) = µ(Q, DΣ, ā) where DΣ is the
  // chase of D with Σ; combined with the 0–1 law the value is naive
  // membership on the chased database.
  auto chased = ChaseFDs(db, fds);
  if (!chased.ok()) return chased.status();
  if (!chased->success) return 0.0;  // Supp(Σ, D) empty: convention µ = 0
  // The chase may have merged nulls appearing in the tuple as well.
  // Re-evaluate naive membership with the tuple rewritten through the same
  // substitutions: since the chase substitutes globally, rewriting is
  // achieved by chasing a copy with the tuple planted in a scratch
  // relation.
  Database scratch = db;
  Relation holder(DefaultAttrs(tuple.arity(), "$t"));
  if (tuple.arity() > 0) {
    INCDB_RETURN_IF_ERROR(holder.Insert(tuple, 1));
  }
  scratch.Put("$tuple_holder", std::move(holder));
  auto chased2 = ChaseFDs(scratch, fds);
  if (!chased2.ok()) return chased2.status();
  if (!chased2->success) return 0.0;
  Tuple rewritten = tuple;
  if (tuple.arity() > 0) {
    auto rows = chased2->db.at("$tuple_holder").SortedTuples();
    if (rows.size() != 1) {
      return Status::Internal("chase holder relation corrupted");
    }
    rewritten = rows[0];
  }
  Database chased_db = chased2->db;
  // Drop the scratch relation before evaluating the query.
  Database clean;
  for (const auto& [name, rel] : chased_db.relations()) {
    if (name != "$tuple_holder") clean.Put(name, rel);
  }
  auto act = AlmostCertainlyTrue(q, clean, rewritten, opts);
  if (!act.ok()) return act.status();
  return *act ? 1.0 : 0.0;
}

}  // namespace incdb
