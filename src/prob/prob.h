#ifndef INCDB_PROB_PROB_H_
#define INCDB_PROB_PROB_H_

/// \file prob.h
/// \brief Probabilistic approximation of certain answers (paper §4.3):
/// supports Supp(Q, D, ā), the finite-range probabilities µ_k, the
/// asymptotic µ with its 0–1 law (Theorem 4.10), and conditional
/// probabilities µ(Q|Σ) under integrity constraints (Theorem 4.11).
///
/// µ_k(Q, D, ā) is the fraction of valuations with range in the first k
/// constants of an enumeration of Const that witness v(ā) ∈ Q(v(D)). The
/// enumeration starts with the constants of D and Q (for generic queries
/// the limit is independent of the remainder), continued by fresh integer
/// constants.

#include "algebra/algebra.h"
#include "constraints/dependencies.h"
#include "core/database.h"
#include "core/status.h"
#include "eval/eval.h"

namespace incdb {

struct ProbOptions {
  uint64_t max_valuations = 8'000'000;
  EvalOptions eval;
};

/// Exact counts behind µ_k.
struct SupportCount {
  uint64_t support = 0;  ///< |Supp_k(Q, D, ā)| (∩ the constraint support)
  uint64_t total = 0;    ///< |V_k(D)| (or |Supp_k(Σ, D)| when conditioned)

  double ratio() const { return total == 0 ? 0.0 : double(support) / total; }
};

/// The first k constants of the canonical enumeration of Const for (D, Q):
/// sorted Const(D) ∪ Const(Q) first, then fresh integers. k must be ≥ 1.
std::vector<Value> EnumerationPrefix(const Database& db, const AlgPtr& q,
                                     size_t k);

/// µ_k(Q, D, ā): exact counting over all |prefix|^|Null(D)| valuations.
StatusOr<SupportCount> MuK(const AlgPtr& q, const Database& db,
                           const Tuple& tuple, size_t k,
                           const ProbOptions& opts = {});

/// µ_k(Q | Σ, D, ā): numerator counts valuations satisfying Σ ∧ witness,
/// denominator counts valuations satisfying Σ (eq. in §4.3; 0 if the
/// denominator is empty).
StatusOr<SupportCount> MuKConditional(const AlgPtr& q,
                                      const ConstraintSet& sigma,
                                      const Database& db, const Tuple& tuple,
                                      size_t k, const ProbOptions& opts = {});

/// Theorem 4.10: ā is an almost-certainly-true answer (µ = 1) iff
/// ā ∈ Qnaive(D); otherwise µ = 0.
StatusOr<bool> AlmostCertainlyTrue(const AlgPtr& q, const Database& db,
                                   const Tuple& tuple,
                                   const ProbOptions& opts = {});

/// The limit µ(Q, D, ā) ∈ {0, 1} given by the 0–1 law.
StatusOr<double> MuLimit(const AlgPtr& q, const Database& db,
                         const Tuple& tuple, const ProbOptions& opts = {});

/// µ_k for a range of ks — the convergence series displayed by E6/E7.
StatusOr<std::vector<SupportCount>> MuKSeries(const AlgPtr& q,
                                              const Database& db,
                                              const Tuple& tuple,
                                              const std::vector<size_t>& ks,
                                              const ProbOptions& opts = {});

/// The FD special case of Theorem 4.11: µ(Q|Σ, D, ā) = µ(Q, DΣ, ā) with DΣ
/// the FD-chase of D; value in {0, 1} (0 when the chase fails).
StatusOr<double> MuLimitConditionalFDs(const AlgPtr& q,
                                       const std::vector<FD>& fds,
                                       const Database& db, const Tuple& tuple,
                                       const ProbOptions& opts = {});

}  // namespace incdb

#endif  // INCDB_PROB_PROB_H_
