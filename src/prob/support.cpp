#include <algorithm>

#include "certain/valuation_family.h"
#include "eval/eval.h"
#include "prob/prob.h"

namespace incdb {

std::vector<Value> EnumerationPrefix(const Database& db, const AlgPtr& q,
                                     size_t k) {
  std::set<Value> relevant = db.Constants();
  for (const Value& v : QueryConstants(q)) {
    if (v.is_const()) relevant.insert(v);
  }
  std::vector<Value> out(relevant.begin(), relevant.end());
  int64_t base = 0;
  for (const Value& v : out) {
    if (v.kind() == ValueKind::kInt) base = std::max(base, v.as_int());
  }
  int64_t next = base + 1;
  while (out.size() < k) out.push_back(Value::Int(next++));
  out.resize(std::min(out.size(), k));
  return out;
}

namespace {

StatusOr<SupportCount> CountSupport(
    const AlgPtr& q, const Database& db, const Tuple& tuple, size_t k,
    const ConstraintSet* sigma, const ProbOptions& opts) {
  if (QueryHasOrderComparison(q)) {
    return Status::Unsupported(
        "µ_k requires generic queries (order comparisons are not invariant "
        "under constant permutations)");
  }
  std::set<uint64_t> null_set = db.NullIds();
  std::vector<uint64_t> nulls(null_set.begin(), null_set.end());
  std::vector<Value> constants = EnumerationPrefix(db, q, k);
  if (constants.empty()) {
    return Status::InvalidArgument("µ_k needs k ≥ 1 constants");
  }

  SupportCount count;
  Status inner = Status::OK();
  Status st = ForEachValuation(
      nulls, constants, opts.max_valuations, [&](const Valuation& v) {
        Database world = v.ApplySet(db);
        if (sigma != nullptr && !sigma->Empty()) {
          auto sat = Satisfies(world, *sigma);
          if (!sat.ok()) {
            inner = sat.status();
            return false;
          }
          if (!*sat) return true;  // outside Supp_k(Σ, D)
        }
        ++count.total;
        auto ans = EvalSet(q, world, opts.eval);
        if (!ans.ok()) {
          inner = ans.status();
          return false;
        }
        if (ans->Contains(v.Apply(tuple))) ++count.support;
        return true;
      });
  INCDB_RETURN_IF_ERROR(st);
  INCDB_RETURN_IF_ERROR(inner);
  return count;
}

}  // namespace

StatusOr<SupportCount> MuK(const AlgPtr& q, const Database& db,
                           const Tuple& tuple, size_t k,
                           const ProbOptions& opts) {
  return CountSupport(q, db, tuple, k, nullptr, opts);
}

StatusOr<std::vector<SupportCount>> MuKSeries(const AlgPtr& q,
                                              const Database& db,
                                              const Tuple& tuple,
                                              const std::vector<size_t>& ks,
                                              const ProbOptions& opts) {
  std::vector<SupportCount> out;
  for (size_t k : ks) {
    auto mu = MuK(q, db, tuple, k, opts);
    if (!mu.ok()) return mu.status();
    out.push_back(*mu);
  }
  return out;
}

StatusOr<SupportCount> MuKConditional(const AlgPtr& q,
                                      const ConstraintSet& sigma,
                                      const Database& db, const Tuple& tuple,
                                      size_t k, const ProbOptions& opts) {
  return CountSupport(q, db, tuple, k, &sigma, opts);
}

}  // namespace incdb
