#ifndef INCDB_LOGIC_LIFTING_H_
#define INCDB_LOGIC_LIFTING_H_

/// \file lifting.h
/// \brief The lifting criterion of Theorem 5.1 (paper §5.1, [19]): if
///
///  (1) the notion of correct answers respects the propositional logic L
///      on non-bottom truth values, and
///  (2) L's connectives respect the knowledge order ⪯_L,
///
/// then correctness guarantees for *atomic* formulae lift to correctness
/// guarantees for *all* FO(L) formulae.
///
/// This module makes the criterion executable: a propositional many-valued
/// logic is a finite table structure, condition (2) is checked exhaustively
/// (KnowledgeMonotone), and condition "atomic correctness" is checked
/// empirically against brute-force certain answers (the tests drive this).
/// Kleene's logic passes; adding Bochvar's assertion operator ↑ breaks (2)
/// — which is precisely §5.2's diagnosis of SQL.

#include <functional>
#include <string>
#include <vector>

#include "logic/truth.h"

namespace incdb {

/// A finite propositional many-valued logic (T, Ω) over TV3-coded values
/// plus its knowledge order. Connectives beyond ∧/∨/¬ (e.g. ↑) are listed
/// as extra unary connectives.
struct PropositionalLogic {
  std::string name;
  std::vector<TV3> values;
  std::function<TV3(TV3, TV3)> conj;
  std::function<TV3(TV3, TV3)> disj;
  std::function<TV3(TV3)> neg;
  /// Additional unary connectives (name, table).
  std::vector<std::pair<std::string, std::function<TV3(TV3)>>> extra_unary;
  /// Knowledge order ⪯_L.
  std::function<bool(TV3, TV3)> knowledge_leq;
  /// The no-information value τ0 (least element of ⪯_L).
  TV3 bottom = TV3::kU;

  static PropositionalLogic Kleene3();
  /// Kleene's logic extended with the assertion operator ↑ (FO(L3v↑)).
  static PropositionalLogic Kleene3WithAssert();
};

/// Condition (2) of Theorem 5.1, checked exhaustively over the (finite)
/// value set for every connective including the extra unary ones. Returns
/// the name of the first violating connective, or empty when monotone.
std::string FirstKnowledgeOrderViolation(const PropositionalLogic& logic);

/// Convenience: condition (2) holds.
bool KnowledgeMonotone(const PropositionalLogic& logic);

}  // namespace incdb

#endif  // INCDB_LOGIC_LIFTING_H_
