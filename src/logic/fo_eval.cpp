#include "logic/fo_eval.h"

#include <cassert>
#include <map>
#include <memory>

#include "eval/plan.h"
#include "eval/unify_index.h"
#include "logic/kleene.h"

namespace incdb {

namespace {

StatusOr<Value> ResolveTerm(const Term& t, const Assignment& a) {
  if (!t.is_var) return t.constant;
  auto it = a.find(t.var);
  if (it == a.end()) {
    return Status::InvalidArgument("unbound variable " + t.var);
  }
  return it->second;
}

TV3 EqSem(const Value& a, const Value& b, AtomSem sem) {
  switch (sem) {
    case AtomSem::kBool:
      return FromBool(a == b);
    case AtomSem::kUnif:
      // (13b): t if syntactically equal; f only for two distinct constants.
      if (a == b) return TV3::kT;
      if (a.is_const() && b.is_const()) return TV3::kF;
      return TV3::kU;
    case AtomSem::kNullfree:
      // (14) applied to Eq as an extra relation: u on any null.
      if (a.is_null() || b.is_null()) return TV3::kU;
      return FromBool(a == b);
  }
  return TV3::kU;
}

TV3 AtomSemEval(const Relation& rel, const Tuple& args, AtomSem sem) {
  switch (sem) {
    case AtomSem::kBool:
      return FromBool(rel.Contains(args));
    case AtomSem::kUnif: {
      // (13a): t if ā ∈ R; f if no tuple of R unifies with ā; else u.
      if (rel.Contains(args)) return TV3::kT;
      for (const auto& [t, c] : rel.rows()) {
        if (Unifiable(args, t)) return TV3::kU;
      }
      return TV3::kF;
    }
    case AtomSem::kNullfree: {
      // (14): two-valued on constant tuples, u otherwise.
      if (!args.AllConst()) return TV3::kU;
      return FromBool(rel.Contains(args));
    }
  }
  return TV3::kU;
}

class FOEvaluator {
 public:
  FOEvaluator(const Database& db, const MixedSemantics& sem,
              const ExecContext& ctx)
      : sem_(sem), scans_(db), ctx_(&ctx), limited_(ctx.limited()) {
    for (const Value& v : db.ActiveDomain()) domain_.push_back(v);
  }

  StatusOr<TV3> Eval(const FormulaPtr& f, Assignment& a) {
    switch (f->kind) {
      case FKind::kAtom: {
        // Atoms re-evaluate inside quantifier loops: resolve the scan via
        // the executor's shared ScanResolver, which borrows set base
        // relations in place and materialises a collapsed copy at most
        // once otherwise.
        auto view = scans_.Resolve(f->rel, /*collapse_to_set=*/true);
        if (!view.ok()) return view.status();
        const Relation& rel = view->rel();
        if (rel.arity() != f->terms.size()) {
          return Status::InvalidArgument("atom arity mismatch for " + f->rel);
        }
        Tuple args;
        for (const Term& t : f->terms) {
          auto v = ResolveTerm(t, a);
          if (!v.ok()) return v.status();
          args.Append(*v);
        }
        if (sem_.relations == AtomSem::kUnif) {
          // (13a): t if ā ∈ R; f if no tuple of R unifies with ā; else u.
          // Quantifier sweeps probe the same relation once per
          // assignment, so the "any unifiable" test runs over a lazily
          // built per-relation null-mask index instead of a linear scan.
          // The ScanResolver's cached view outlives the index.
          if (rel.Contains(args)) return TV3::kT;
          std::unique_ptr<UnifyIndex>& idx = unify_[f->rel];
          if (!idx) {
            idx = std::make_unique<UnifyIndex>(rel.rows(), rel.arity(),
                                               /*use_index=*/true);
          }
          return idx->AnyUnifiable(args, &unify_scratch_) ? TV3::kU : TV3::kF;
        }
        return AtomSemEval(rel, args, sem_.relations);
      }
      case FKind::kEq: {
        auto x = ResolveTerm(f->terms[0], a);
        if (!x.ok()) return x.status();
        auto y = ResolveTerm(f->terms[1], a);
        if (!y.ok()) return y.status();
        return EqSem(*x, *y, sem_.equality);
      }
      case FKind::kIsConst: {
        auto x = ResolveTerm(f->terms[0], a);
        if (!x.ok()) return x.status();
        return FromBool(x->is_const());
      }
      case FKind::kIsNull: {
        auto x = ResolveTerm(f->terms[0], a);
        if (!x.ok()) return x.status();
        return FromBool(x->is_null());
      }
      case FKind::kAnd: {
        auto l = Eval(f->l, a);
        if (!l.ok()) return l;
        if (*l == TV3::kF) return TV3::kF;  // short-circuit is sound in L3v
        auto r = Eval(f->r, a);
        if (!r.ok()) return r;
        return Kleene::And(*l, *r);
      }
      case FKind::kOr: {
        auto l = Eval(f->l, a);
        if (!l.ok()) return l;
        if (*l == TV3::kT) return TV3::kT;
        auto r = Eval(f->r, a);
        if (!r.ok()) return r;
        return Kleene::Or(*l, *r);
      }
      case FKind::kNot: {
        auto l = Eval(f->l, a);
        if (!l.ok()) return l;
        return Kleene::Not(*l);
      }
      case FKind::kAssert: {
        auto l = Eval(f->l, a);
        if (!l.ok()) return l;
        return Kleene::Assert(*l);
      }
      case FKind::kExists:
      case FKind::kForall: {
        // (11): big ∨ / ∧ over the active domain.
        bool exists = f->kind == FKind::kExists;
        TV3 acc = exists ? TV3::kF : TV3::kT;
        auto saved = a.find(f->var) != a.end()
                         ? std::optional<Value>(a[f->var])
                         : std::nullopt;
        for (const Value& v : domain_) {
          if (limited_ && ++check_acc_ >= 4096) {
            check_acc_ = 0;
            Status cst = ctx_->Check();
            if (!cst.ok()) {
              RestoreVar(a, f->var, saved);
              return cst;
            }
          }
          a[f->var] = v;
          auto res = Eval(f->l, a);
          if (!res.ok()) {
            RestoreVar(a, f->var, saved);
            return res;
          }
          acc = exists ? Kleene::Or(acc, *res) : Kleene::And(acc, *res);
          if ((exists && acc == TV3::kT) || (!exists && acc == TV3::kF)) {
            break;
          }
        }
        RestoreVar(a, f->var, saved);
        return acc;
      }
    }
    return Status::Internal("unknown formula kind");
  }

  const std::vector<Value>& domain() const { return domain_; }

 private:
  static void RestoreVar(Assignment& a, const std::string& var,
                         const std::optional<Value>& saved) {
    if (saved.has_value()) {
      a[var] = *saved;
    } else {
      a.erase(var);
    }
  }

  MixedSemantics sem_;
  ScanResolver scans_;  // shared with the plan executor: copy-free scans
  const ExecContext* ctx_;
  const bool limited_;
  uint64_t check_acc_ = 0;  // quantifier iterations since the last check
  std::vector<Value> domain_;
  /// Lazily built per-relation unifiability indices for kUnif atoms; they
  /// reference rows of the ScanResolver-cached views in place.
  std::map<std::string, std::unique_ptr<UnifyIndex>> unify_;
  Tuple unify_scratch_;
};

}  // namespace

StatusOr<TV3> EvalFO(const FormulaPtr& f, const Database& db,
                     const Assignment& assignment,
                     const MixedSemantics& sem, const ExecContext& ctx) {
  FOEvaluator ev(db, sem, ctx);
  Assignment a = assignment;
  return ev.Eval(f, a);
}

StatusOr<bool> EvalBoolFO(const FormulaPtr& f, const Database& db,
                          const Assignment& assignment) {
  auto tv = EvalFO(f, db, assignment, MixedSemantics::Bool());
  if (!tv.ok()) return tv.status();
  // With kBool atoms every connective input is two-valued, except below ↑
  // which never produces u either; u is impossible.
  assert(*tv != TV3::kU);
  return *tv == TV3::kT;
}

StatusOr<Relation> AnswersWithTruthValue(const FormulaPtr& f,
                                         const Database& db,
                                         const MixedSemantics& sem,
                                         TV3 tau,
                                         const ExecContext& ctx) {
  std::vector<std::string> vars = FreeVariables(f);
  // One evaluator for the whole assignment sweep: the scan views and the
  // domain are resolved once, not once per assignment.
  FOEvaluator ev(db, sem, ctx);
  const std::vector<Value>& domain = ev.domain();

  Relation out(vars.empty() ? std::vector<std::string>{}
                            : std::vector<std::string>(vars.begin(),
                                                       vars.end()));
  Assignment a;
  // Iterate over all |domain|^|vars| assignments.
  if (vars.empty()) {
    auto tv = ev.Eval(f, a);
    if (!tv.ok()) return tv.status();
    if (*tv == tau) INCDB_RETURN_IF_ERROR(out.Insert(Tuple{}, 1));
    return out;
  }
  if (domain.empty()) return out;
  const bool limited = ctx.limited();
  std::vector<size_t> idx(vars.size(), 0);
  uint64_t since_check = 0;
  while (true) {
    // Each assignment evaluates the whole formula (itself quantifier-loop
    // checked); a modest cadence here bounds the latency between checks.
    if (limited && ++since_check >= 64) {
      since_check = 0;
      INCDB_RETURN_IF_ERROR(ctx.Check());
    }
    Tuple t;
    for (size_t i = 0; i < vars.size(); ++i) {
      a[vars[i]] = domain[idx[i]];
      t.Append(domain[idx[i]]);
    }
    auto tv = ev.Eval(f, a);
    if (!tv.ok()) return tv.status();
    if (*tv == tau) INCDB_RETURN_IF_ERROR(out.Insert(t, 1));
    size_t pos = vars.size();
    bool done = true;
    while (pos > 0) {
      --pos;
      if (++idx[pos] < domain.size()) {
        done = false;
        break;
      }
      idx[pos] = 0;
    }
    if (done) return out;
  }
}

}  // namespace incdb
