#include "logic/fo_eval.h"

#include <cassert>
#include <map>

#include "logic/kleene.h"

namespace incdb {

namespace {

StatusOr<Value> ResolveTerm(const Term& t, const Assignment& a) {
  if (!t.is_var) return t.constant;
  auto it = a.find(t.var);
  if (it == a.end()) {
    return Status::InvalidArgument("unbound variable " + t.var);
  }
  return it->second;
}

TV3 EqSem(const Value& a, const Value& b, AtomSem sem) {
  switch (sem) {
    case AtomSem::kBool:
      return FromBool(a == b);
    case AtomSem::kUnif:
      // (13b): t if syntactically equal; f only for two distinct constants.
      if (a == b) return TV3::kT;
      if (a.is_const() && b.is_const()) return TV3::kF;
      return TV3::kU;
    case AtomSem::kNullfree:
      // (14) applied to Eq as an extra relation: u on any null.
      if (a.is_null() || b.is_null()) return TV3::kU;
      return FromBool(a == b);
  }
  return TV3::kU;
}

TV3 AtomSemEval(const Relation& rel, const Tuple& args, AtomSem sem) {
  switch (sem) {
    case AtomSem::kBool:
      return FromBool(rel.Contains(args));
    case AtomSem::kUnif: {
      // (13a): t if ā ∈ R; f if no tuple of R unifies with ā; else u.
      if (rel.Contains(args)) return TV3::kT;
      for (const auto& [t, c] : rel.rows()) {
        if (Unifiable(args, t)) return TV3::kU;
      }
      return TV3::kF;
    }
    case AtomSem::kNullfree: {
      // (14): two-valued on constant tuples, u otherwise.
      if (!args.AllConst()) return TV3::kU;
      return FromBool(rel.Contains(args));
    }
  }
  return TV3::kU;
}

class FOEvaluator {
 public:
  FOEvaluator(const Database& db, const MixedSemantics& sem)
      : db_(db), sem_(sem) {
    for (const Value& v : db.ActiveDomain()) domain_.push_back(v);
  }

  StatusOr<TV3> Eval(const FormulaPtr& f, Assignment& a) {
    switch (f->kind) {
      case FKind::kAtom: {
        // Atoms re-evaluate inside quantifier loops: cache the
        // set-collapsed relation per name instead of copying it each time.
        if (!db_.Has(f->rel)) {
          return Status::NotFound("no relation named " + f->rel);
        }
        auto [cached, inserted] = set_cache_.try_emplace(f->rel);
        if (inserted) cached->second = db_.at(f->rel).ToSet();
        const Relation& rel = cached->second;
        if (rel.arity() != f->terms.size()) {
          return Status::InvalidArgument("atom arity mismatch for " + f->rel);
        }
        Tuple args;
        for (const Term& t : f->terms) {
          auto v = ResolveTerm(t, a);
          if (!v.ok()) return v.status();
          args.Append(*v);
        }
        return AtomSemEval(rel, args, sem_.relations);
      }
      case FKind::kEq: {
        auto x = ResolveTerm(f->terms[0], a);
        if (!x.ok()) return x.status();
        auto y = ResolveTerm(f->terms[1], a);
        if (!y.ok()) return y.status();
        return EqSem(*x, *y, sem_.equality);
      }
      case FKind::kIsConst: {
        auto x = ResolveTerm(f->terms[0], a);
        if (!x.ok()) return x.status();
        return FromBool(x->is_const());
      }
      case FKind::kIsNull: {
        auto x = ResolveTerm(f->terms[0], a);
        if (!x.ok()) return x.status();
        return FromBool(x->is_null());
      }
      case FKind::kAnd: {
        auto l = Eval(f->l, a);
        if (!l.ok()) return l;
        if (*l == TV3::kF) return TV3::kF;  // short-circuit is sound in L3v
        auto r = Eval(f->r, a);
        if (!r.ok()) return r;
        return Kleene::And(*l, *r);
      }
      case FKind::kOr: {
        auto l = Eval(f->l, a);
        if (!l.ok()) return l;
        if (*l == TV3::kT) return TV3::kT;
        auto r = Eval(f->r, a);
        if (!r.ok()) return r;
        return Kleene::Or(*l, *r);
      }
      case FKind::kNot: {
        auto l = Eval(f->l, a);
        if (!l.ok()) return l;
        return Kleene::Not(*l);
      }
      case FKind::kAssert: {
        auto l = Eval(f->l, a);
        if (!l.ok()) return l;
        return Kleene::Assert(*l);
      }
      case FKind::kExists:
      case FKind::kForall: {
        // (11): big ∨ / ∧ over the active domain.
        bool exists = f->kind == FKind::kExists;
        TV3 acc = exists ? TV3::kF : TV3::kT;
        auto saved = a.find(f->var) != a.end()
                         ? std::optional<Value>(a[f->var])
                         : std::nullopt;
        for (const Value& v : domain_) {
          a[f->var] = v;
          auto res = Eval(f->l, a);
          if (!res.ok()) {
            RestoreVar(a, f->var, saved);
            return res;
          }
          acc = exists ? Kleene::Or(acc, *res) : Kleene::And(acc, *res);
          if ((exists && acc == TV3::kT) || (!exists && acc == TV3::kF)) {
            break;
          }
        }
        RestoreVar(a, f->var, saved);
        return acc;
      }
    }
    return Status::Internal("unknown formula kind");
  }

  const std::vector<Value>& domain() const { return domain_; }

 private:
  static void RestoreVar(Assignment& a, const std::string& var,
                         const std::optional<Value>& saved) {
    if (saved.has_value()) {
      a[var] = *saved;
    } else {
      a.erase(var);
    }
  }

  const Database& db_;
  MixedSemantics sem_;
  std::vector<Value> domain_;
  std::map<std::string, Relation> set_cache_;  // set-collapsed scans
};

}  // namespace

StatusOr<TV3> EvalFO(const FormulaPtr& f, const Database& db,
                     const Assignment& assignment,
                     const MixedSemantics& sem) {
  FOEvaluator ev(db, sem);
  Assignment a = assignment;
  return ev.Eval(f, a);
}

StatusOr<bool> EvalBoolFO(const FormulaPtr& f, const Database& db,
                          const Assignment& assignment) {
  auto tv = EvalFO(f, db, assignment, MixedSemantics::Bool());
  if (!tv.ok()) return tv.status();
  // With kBool atoms every connective input is two-valued, except below ↑
  // which never produces u either; u is impossible.
  assert(*tv != TV3::kU);
  return *tv == TV3::kT;
}

StatusOr<Relation> AnswersWithTruthValue(const FormulaPtr& f,
                                         const Database& db,
                                         const MixedSemantics& sem,
                                         TV3 tau) {
  std::vector<std::string> vars = FreeVariables(f);
  std::vector<Value> domain;
  for (const Value& v : db.ActiveDomain()) domain.push_back(v);

  Relation out(vars.empty() ? std::vector<std::string>{}
                            : std::vector<std::string>(vars.begin(),
                                                       vars.end()));
  Assignment a;
  // Iterate over all |domain|^|vars| assignments.
  if (vars.empty()) {
    auto tv = EvalFO(f, db, a, sem);
    if (!tv.ok()) return tv.status();
    if (*tv == tau) INCDB_RETURN_IF_ERROR(out.Insert(Tuple{}, 1));
    return out;
  }
  if (domain.empty()) return out;
  std::vector<size_t> idx(vars.size(), 0);
  while (true) {
    Tuple t;
    for (size_t i = 0; i < vars.size(); ++i) {
      a[vars[i]] = domain[idx[i]];
      t.Append(domain[idx[i]]);
    }
    auto tv = EvalFO(f, db, a, sem);
    if (!tv.ok()) return tv.status();
    if (*tv == tau) INCDB_RETURN_IF_ERROR(out.Insert(t, 1));
    size_t pos = vars.size();
    bool done = true;
    while (pos > 0) {
      --pos;
      if (++idx[pos] < domain.size()) {
        done = false;
        break;
      }
      idx[pos] = 0;
    }
    if (done) return out;
  }
}

}  // namespace incdb
