#ifndef INCDB_LOGIC_SIXVALUED_H_
#define INCDB_LOGIC_SIXVALUED_H_

/// \file sixvalued.h
/// \brief The six-valued epistemic logic L6v of paper §5.2 and the
/// machinery behind Theorem 5.3 (Kleene's L3v is the maximal distributive
/// and idempotent sublogic of L6v).
///
/// Truth values are maximally consistent theories of the epistemic
/// modalities K(α), P(α), K(¬α), P(¬α) over possible-world interpretations
/// (W, t, f) with t(α) ∩ f(α) = ∅. The connective tables are *derived*,
/// not postulated: ω(τ1, τ2) is the most general truth value consistent
/// with the operands (see DeriveAnd/DeriveOr/DeriveNot, which enumerate
/// interpretations over a three-element world set — enough to realise
/// every consistency pattern).

#include <optional>
#include <vector>

#include "logic/truth.h"

namespace incdb {

/// Connectives of L6v. Tables are computed once via the epistemic
/// derivation and cached.
struct Six {
  static TV6 And(TV6 a, TV6 b);
  static TV6 Or(TV6 a, TV6 b);
  static TV6 Not(TV6 a);
};

/// The set of truth values consistent with ω(τ1, τ2) over possible-world
/// interpretations, and the most-general (knowledge-minimal) choice.
/// Exposed so tests can re-derive the cached tables from first principles.
std::vector<TV6> ConsistentAnd(TV6 a, TV6 b);
std::vector<TV6> ConsistentOr(TV6 a, TV6 b);
std::vector<TV6> ConsistentNot(TV6 a);

/// Knowledge-minimal element of a non-empty consistent set; nullopt if the
/// set has no least element (never happens for L6v — asserted by tests).
std::optional<TV6> MostGeneral(const std::vector<TV6>& vals);

/// A sublogic of L6v: a subset of truth values closed under the
/// connectives (checked by Closed()).
struct Sublogic {
  std::vector<TV6> values;

  bool Closed() const;
  /// ∧/∨ idempotent: a∧a = a and a∨a = a for all values in the sublogic.
  bool Idempotent() const;
  /// Distributivity: a∧(b∨c) = (a∧b)∨(a∧c) and dually, over the sublogic.
  bool Distributive() const;
};

/// The embedding of Kleene's values into L6v used by Theorem 5.3:
/// t ↦ t, f ↦ f, u ↦ u.
TV6 Embed(TV3 v);
/// Partial inverse: t/f/u ↦ t/f/u; other values have no preimage.
std::optional<TV3> Restrict(TV6 v);

}  // namespace incdb

#endif  // INCDB_LOGIC_SIXVALUED_H_
