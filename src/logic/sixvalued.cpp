#include "logic/sixvalued.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace incdb {

namespace {

// A possible-world interpretation of one formula over W = {0, 1, 2}:
// per world, the formula is known-true (T), known-false (F), or nothing is
// known (N). t(α) = worlds marked T, f(α) = worlds marked F; the
// disjointness requirement t ∩ f = ∅ holds by construction.
constexpr int kWorlds = 3;
enum class W : uint8_t { kN = 0, kT = 1, kF = 2 };
using Interp = std::array<W, kWorlds>;

/// Classification of an interpretation into one of the six maximally
/// consistent theories (paper §5.2).
TV6 Classify(const Interp& i) {
  int nt = 0, nf = 0;
  for (W w : i) {
    if (w == W::kT) ++nt;
    if (w == W::kF) ++nf;
  }
  if (nt == kWorlds) return TV6::kT;   // K(α)
  if (nf == kWorlds) return TV6::kF;   // K(¬α)
  if (nt > 0 && nf > 0) return TV6::kS;
  if (nt > 0) return TV6::kST;
  if (nf > 0) return TV6::kSF;
  return TV6::kU;
}

/// Knowledge combination of connectives on interpretations:
/// w ∈ t(α∧β) iff w ∈ t(α) ∩ t(β); w ∈ f(α∧β) iff w ∈ f(α) ∪ f(β).
Interp AndI(const Interp& a, const Interp& b) {
  Interp out;
  for (int w = 0; w < kWorlds; ++w) {
    if (a[w] == W::kT && b[w] == W::kT) {
      out[w] = W::kT;
    } else if (a[w] == W::kF || b[w] == W::kF) {
      out[w] = W::kF;
    } else {
      out[w] = W::kN;
    }
  }
  return out;
}

Interp OrI(const Interp& a, const Interp& b) {
  Interp out;
  for (int w = 0; w < kWorlds; ++w) {
    if (a[w] == W::kT || b[w] == W::kT) {
      out[w] = W::kT;
    } else if (a[w] == W::kF && b[w] == W::kF) {
      out[w] = W::kF;
    } else {
      out[w] = W::kN;
    }
  }
  return out;
}

Interp NotI(const Interp& a) {
  Interp out;
  for (int w = 0; w < kWorlds; ++w) {
    out[w] = a[w] == W::kT ? W::kF : (a[w] == W::kF ? W::kT : W::kN);
  }
  return out;
}

std::vector<Interp> AllInterps() {
  std::vector<Interp> out;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        out.push_back(Interp{static_cast<W>(a), static_cast<W>(b),
                             static_cast<W>(c)});
      }
    }
  }
  return out;
}

std::vector<TV6> Dedup(std::vector<TV6> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

std::vector<TV6> ConsistentAnd(TV6 a, TV6 b) {
  std::vector<TV6> out;
  for (const Interp& ia : AllInterps()) {
    if (Classify(ia) != a) continue;
    for (const Interp& ib : AllInterps()) {
      if (Classify(ib) != b) continue;
      out.push_back(Classify(AndI(ia, ib)));
    }
  }
  return Dedup(std::move(out));
}

std::vector<TV6> ConsistentOr(TV6 a, TV6 b) {
  std::vector<TV6> out;
  for (const Interp& ia : AllInterps()) {
    if (Classify(ia) != a) continue;
    for (const Interp& ib : AllInterps()) {
      if (Classify(ib) != b) continue;
      out.push_back(Classify(OrI(ia, ib)));
    }
  }
  return Dedup(std::move(out));
}

std::vector<TV6> ConsistentNot(TV6 a) {
  std::vector<TV6> out;
  for (const Interp& ia : AllInterps()) {
    if (Classify(ia) == a) out.push_back(Classify(NotI(ia)));
  }
  return Dedup(std::move(out));
}

std::optional<TV6> MostGeneral(const std::vector<TV6>& vals) {
  for (TV6 cand : vals) {
    bool least = true;
    for (TV6 other : vals) {
      if (!KnowledgeLeq(cand, other)) {
        least = false;
        break;
      }
    }
    if (least) return cand;
  }
  return std::nullopt;
}

namespace {

constexpr int kSix = 6;

struct Tables {
  TV6 and_table[kSix][kSix];
  TV6 or_table[kSix][kSix];
  TV6 not_table[kSix];
};

const Tables& DerivedTables() {
  static const Tables tables = [] {
    Tables t;
    for (int a = 0; a < kSix; ++a) {
      auto nn = MostGeneral(ConsistentNot(static_cast<TV6>(a)));
      assert(nn.has_value());
      t.not_table[a] = *nn;
      for (int b = 0; b < kSix; ++b) {
        auto aa = MostGeneral(ConsistentAnd(static_cast<TV6>(a),
                                            static_cast<TV6>(b)));
        auto oo = MostGeneral(ConsistentOr(static_cast<TV6>(a),
                                           static_cast<TV6>(b)));
        assert(aa.has_value() && oo.has_value());
        t.and_table[a][b] = *aa;
        t.or_table[a][b] = *oo;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

TV6 Six::And(TV6 a, TV6 b) {
  return DerivedTables().and_table[static_cast<int>(a)][static_cast<int>(b)];
}

TV6 Six::Or(TV6 a, TV6 b) {
  return DerivedTables().or_table[static_cast<int>(a)][static_cast<int>(b)];
}

TV6 Six::Not(TV6 a) { return DerivedTables().not_table[static_cast<int>(a)]; }

bool Sublogic::Closed() const {
  auto in = [this](TV6 v) {
    return std::find(values.begin(), values.end(), v) != values.end();
  };
  for (TV6 a : values) {
    if (!in(Six::Not(a))) return false;
    for (TV6 b : values) {
      if (!in(Six::And(a, b)) || !in(Six::Or(a, b))) return false;
    }
  }
  return true;
}

bool Sublogic::Idempotent() const {
  for (TV6 a : values) {
    if (Six::And(a, a) != a || Six::Or(a, a) != a) return false;
  }
  return true;
}

bool Sublogic::Distributive() const {
  for (TV6 a : values) {
    for (TV6 b : values) {
      for (TV6 c : values) {
        if (Six::And(a, Six::Or(b, c)) !=
            Six::Or(Six::And(a, b), Six::And(a, c))) {
          return false;
        }
        if (Six::Or(a, Six::And(b, c)) !=
            Six::And(Six::Or(a, b), Six::Or(a, c))) {
          return false;
        }
      }
    }
  }
  return true;
}

TV6 Embed(TV3 v) {
  switch (v) {
    case TV3::kT:
      return TV6::kT;
    case TV3::kF:
      return TV6::kF;
    case TV3::kU:
      return TV6::kU;
  }
  return TV6::kU;
}

std::optional<TV3> Restrict(TV6 v) {
  switch (v) {
    case TV6::kT:
      return TV3::kT;
    case TV6::kF:
      return TV3::kF;
    case TV6::kU:
      return TV3::kU;
    default:
      return std::nullopt;
  }
}

}  // namespace incdb
