#include "logic/capture.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace incdb {

FormulaPtr FTrueConst() {
  return FEq(Term::Const(Value::Int(0)), Term::Const(Value::Int(0)));
}

FormulaPtr FFalseConst() { return FNot(FTrueConst()); }

namespace {

/// All partitions of {0..n-1} as lists of classes, via restricted-growth
/// strings.
void Partitions(size_t n, std::vector<std::vector<std::vector<size_t>>>* out) {
  std::vector<size_t> rgs(n, 0);
  auto emit = [&]() {
    size_t classes = 0;
    for (size_t v : rgs) classes = std::max(classes, v + 1);
    std::vector<std::vector<size_t>> part(classes);
    for (size_t i = 0; i < n; ++i) part[rgs[i]].push_back(i);
    out->push_back(std::move(part));
  };
  // Iterative enumeration of restricted growth strings.
  std::vector<size_t> maxv(n, 0);
  size_t pos = n;  // build from scratch
  (void)pos;
  // Recursive lambda is clearer here.
  std::function<void(size_t, size_t)> rec = [&](size_t i, size_t m) {
    if (i == n) {
      emit();
      return;
    }
    for (size_t v = 0; v <= m; ++v) {
      rgs[i] = v;
      rec(i + 1, std::max(m, v + 1));
    }
  };
  if (n == 0) {
    out->push_back({});
    return;
  }
  rgs[0] = 0;
  rec(1, 1);
}

FormulaPtr AndAll(std::vector<FormulaPtr> fs) {
  if (fs.empty()) return FTrueConst();
  FormulaPtr out = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) out = FAnd(out, fs[i]);
  return out;
}

FormulaPtr OrAll(std::vector<FormulaPtr> fs) {
  if (fs.empty()) return FFalseConst();
  FormulaPtr out = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) out = FOr(out, fs[i]);
  return out;
}

}  // namespace

StatusOr<FormulaPtr> UnifiabilityFormula(const std::vector<Term>& xs,
                                         const std::vector<Term>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("unifiability: arity mismatch");
  }
  size_t k = xs.size();
  if (k > 10) {
    return Status::ResourceExhausted(
        "unifiability formula: arity too large for partition enumeration");
  }
  // Positions 0..k-1 are "pair blocks": block i carries terms xs[i], ys[i]
  // (which any unifying valuation must send to the same constant). A
  // partition P of the blocks witnesses unifiability if
  //  (consistency) within a class, every two terms are equal or at least
  //                one is a null, and
  //  (guard)       across classes, no two terms are the same null (a
  //                shared null would force the classes to merge).
  std::vector<std::vector<std::vector<size_t>>> parts;
  Partitions(k, &parts);

  auto terms_of_class = [&](const std::vector<size_t>& cls) {
    std::vector<Term> ts;
    for (size_t i : cls) {
      ts.push_back(xs[i]);
      ts.push_back(ys[i]);
    }
    return ts;
  };

  std::vector<FormulaPtr> disjuncts;
  for (const auto& part : parts) {
    std::vector<FormulaPtr> conj;
    // Consistency within classes.
    for (const auto& cls : part) {
      std::vector<Term> ts = terms_of_class(cls);
      for (size_t i = 0; i < ts.size(); ++i) {
        for (size_t j = i + 1; j < ts.size(); ++j) {
          conj.push_back(FOr(FOr(FIsNull(ts[i]), FIsNull(ts[j])),
                             FEq(ts[i], ts[j])));
        }
      }
    }
    // Guard across classes.
    for (size_t c1 = 0; c1 < part.size(); ++c1) {
      for (size_t c2 = c1 + 1; c2 < part.size(); ++c2) {
        for (const Term& a : terms_of_class(part[c1])) {
          for (const Term& b : terms_of_class(part[c2])) {
            conj.push_back(FOr(FIsConst(a), FNot(FEq(a, b))));
          }
        }
      }
    }
    disjuncts.push_back(AndAll(std::move(conj)));
  }
  return OrAll(std::move(disjuncts));
}

namespace {

class Capturer {
 public:
  explicit Capturer(const MixedSemantics& sem) : sem_(sem) {}

  StatusOr<FormulaPtr> Tr(const FormulaPtr& f, TV3 tau) {
    switch (f->kind) {
      case FKind::kAtom:
        return TrAtom(f, tau);
      case FKind::kEq:
        return TrEq(f, tau);
      case FKind::kIsConst:
        // Always two-valued.
        if (tau == TV3::kT) return FIsConst(f->terms[0]);
        if (tau == TV3::kF) return FIsNull(f->terms[0]);
        return FFalseConst();
      case FKind::kIsNull:
        if (tau == TV3::kT) return FIsNull(f->terms[0]);
        if (tau == TV3::kF) return FIsConst(f->terms[0]);
        return FFalseConst();
      case FKind::kAnd: {
        if (tau == TV3::kT) {
          auto l = Tr(f->l, TV3::kT);
          if (!l.ok()) return l;
          auto r = Tr(f->r, TV3::kT);
          if (!r.ok()) return r;
          return FAnd(*l, *r);
        }
        if (tau == TV3::kF) {
          auto l = Tr(f->l, TV3::kF);
          if (!l.ok()) return l;
          auto r = Tr(f->r, TV3::kF);
          if (!r.ok()) return r;
          return FOr(*l, *r);
        }
        return TrUnknownByComplement(f);
      }
      case FKind::kOr: {
        if (tau == TV3::kT) {
          auto l = Tr(f->l, TV3::kT);
          if (!l.ok()) return l;
          auto r = Tr(f->r, TV3::kT);
          if (!r.ok()) return r;
          return FOr(*l, *r);
        }
        if (tau == TV3::kF) {
          auto l = Tr(f->l, TV3::kF);
          if (!l.ok()) return l;
          auto r = Tr(f->r, TV3::kF);
          if (!r.ok()) return r;
          return FAnd(*l, *r);
        }
        return TrUnknownByComplement(f);
      }
      case FKind::kNot:
        // ⟦¬φ⟧ = τ iff ⟦φ⟧ = ¬τ; u is a fixpoint of Kleene negation.
        return Tr(f->l, tau == TV3::kU
                            ? TV3::kU
                            : (tau == TV3::kT ? TV3::kF : TV3::kT));
      case FKind::kAssert: {
        if (tau == TV3::kT) return Tr(f->l, TV3::kT);
        if (tau == TV3::kF) {
          auto t = Tr(f->l, TV3::kT);
          if (!t.ok()) return t;
          return FNot(*t);
        }
        return FFalseConst();  // ↑ never yields u
      }
      case FKind::kExists: {
        if (tau == TV3::kT) {
          auto l = Tr(f->l, TV3::kT);
          if (!l.ok()) return l;
          return FExists(f->var, *l);
        }
        if (tau == TV3::kF) {
          auto l = Tr(f->l, TV3::kF);
          if (!l.ok()) return l;
          return FForall(f->var, *l);
        }
        return TrUnknownByComplement(f);
      }
      case FKind::kForall: {
        if (tau == TV3::kT) {
          auto l = Tr(f->l, TV3::kT);
          if (!l.ok()) return l;
          return FForall(f->var, *l);
        }
        if (tau == TV3::kF) {
          auto l = Tr(f->l, TV3::kF);
          if (!l.ok()) return l;
          return FExists(f->var, *l);
        }
        return TrUnknownByComplement(f);
      }
    }
    return Status::Internal("unknown formula kind");
  }

 private:
  /// ψ^u = ¬(ψ^t ∨ ψ^f) — the three translations partition all cases.
  StatusOr<FormulaPtr> TrUnknownByComplement(const FormulaPtr& f) {
    auto t = Tr(f, TV3::kT);
    if (!t.ok()) return t;
    auto ff = Tr(f, TV3::kF);
    if (!ff.ok()) return ff;
    return FNot(FOr(*t, *ff));
  }

  StatusOr<FormulaPtr> TrAtom(const FormulaPtr& f, TV3 tau) {
    switch (sem_.relations) {
      case AtomSem::kBool:
        if (tau == TV3::kT) return FAtom(f->rel, f->terms);
        if (tau == TV3::kF) return FNot(FAtom(f->rel, f->terms));
        return FFalseConst();
      case AtomSem::kNullfree: {
        std::vector<FormulaPtr> consts, nulls;
        for (const Term& t : f->terms) {
          consts.push_back(FIsConst(t));
          nulls.push_back(FIsNull(t));
        }
        if (tau == TV3::kT) {
          return FAnd(FAtom(f->rel, f->terms), AndAll(consts));
        }
        if (tau == TV3::kF) {
          return FAnd(FNot(FAtom(f->rel, f->terms)), AndAll(consts));
        }
        return OrAll(nulls);
      }
      case AtomSem::kUnif: {
        if (tau == TV3::kT) return FAtom(f->rel, f->terms);
        // f: no tuple of R unifies with the arguments. Quantify fresh
        // variables over the atom and require non-unifiability.
        std::vector<Term> ys;
        std::vector<std::string> yvars;
        for (size_t i = 0; i < f->terms.size(); ++i) {
          std::string y = "$u" + std::to_string(fresh_++);
          yvars.push_back(y);
          ys.push_back(Term::Var(y));
        }
        auto unif = UnifiabilityFormula(f->terms, ys);
        if (!unif.ok()) return unif;
        FormulaPtr exists_unifiable = FAnd(FAtom(f->rel, ys), *unif);
        for (auto it = yvars.rbegin(); it != yvars.rend(); ++it) {
          exists_unifiable = FExists(*it, exists_unifiable);
        }
        FormulaPtr not_unifiable = FNot(exists_unifiable);
        if (tau == TV3::kF) return not_unifiable;
        // u: not in R but some tuple unifies.
        return FAnd(FNot(FAtom(f->rel, f->terms)), exists_unifiable);
      }
    }
    return Status::Internal("unknown atom semantics");
  }

  StatusOr<FormulaPtr> TrEq(const FormulaPtr& f, TV3 tau) {
    const Term& x = f->terms[0];
    const Term& y = f->terms[1];
    switch (sem_.equality) {
      case AtomSem::kBool:
        if (tau == TV3::kT) return FEq(x, y);
        if (tau == TV3::kF) return FNot(FEq(x, y));
        return FFalseConst();
      case AtomSem::kNullfree:
        if (tau == TV3::kT) {
          return AndAll({FIsConst(x), FIsConst(y), FEq(x, y)});
        }
        if (tau == TV3::kF) {
          return AndAll({FIsConst(x), FIsConst(y), FNot(FEq(x, y))});
        }
        return FOr(FIsNull(x), FIsNull(y));
      case AtomSem::kUnif:
        // (13b): t iff syntactically equal; f iff distinct constants.
        if (tau == TV3::kT) return FEq(x, y);
        if (tau == TV3::kF) {
          return AndAll({FIsConst(x), FIsConst(y), FNot(FEq(x, y))});
        }
        return AndAll(
            {FNot(FEq(x, y)), FOr(FIsNull(x), FIsNull(y))});
    }
    return Status::Internal("unknown atom semantics");
  }

  MixedSemantics sem_;
  uint64_t fresh_ = 0;
};

}  // namespace

StatusOr<FormulaPtr> CaptureTranslate(const FormulaPtr& f,
                                      const MixedSemantics& sem, TV3 tau) {
  Capturer cap(sem);
  return cap.Tr(f, tau);
}

}  // namespace incdb
