#include "logic/formula.h"

#include <algorithm>
#include <set>

namespace incdb {

namespace {
FormulaPtr Make(FKind kind) {
  auto f = std::make_shared<Formula>();
  f->kind = kind;
  return f;
}
}  // namespace

FormulaPtr FAtom(std::string rel, std::vector<Term> terms) {
  auto f = Make(FKind::kAtom);
  auto m = std::const_pointer_cast<Formula>(f);
  m->rel = std::move(rel);
  m->terms = std::move(terms);
  return f;
}

FormulaPtr FEq(Term a, Term b) {
  auto f = Make(FKind::kEq);
  auto m = std::const_pointer_cast<Formula>(f);
  m->terms = {std::move(a), std::move(b)};
  return f;
}

FormulaPtr FIsConst(Term t) {
  auto f = Make(FKind::kIsConst);
  std::const_pointer_cast<Formula>(f)->terms = {std::move(t)};
  return f;
}

FormulaPtr FIsNull(Term t) {
  auto f = Make(FKind::kIsNull);
  std::const_pointer_cast<Formula>(f)->terms = {std::move(t)};
  return f;
}

FormulaPtr FAnd(FormulaPtr a, FormulaPtr b) {
  auto f = Make(FKind::kAnd);
  auto m = std::const_pointer_cast<Formula>(f);
  m->l = std::move(a);
  m->r = std::move(b);
  return f;
}

FormulaPtr FOr(FormulaPtr a, FormulaPtr b) {
  auto f = Make(FKind::kOr);
  auto m = std::const_pointer_cast<Formula>(f);
  m->l = std::move(a);
  m->r = std::move(b);
  return f;
}

FormulaPtr FNot(FormulaPtr a) {
  auto f = Make(FKind::kNot);
  std::const_pointer_cast<Formula>(f)->l = std::move(a);
  return f;
}

FormulaPtr FExists(std::string var, FormulaPtr a) {
  auto f = Make(FKind::kExists);
  auto m = std::const_pointer_cast<Formula>(f);
  m->var = std::move(var);
  m->l = std::move(a);
  return f;
}

FormulaPtr FForall(std::string var, FormulaPtr a) {
  auto f = Make(FKind::kForall);
  auto m = std::const_pointer_cast<Formula>(f);
  m->var = std::move(var);
  m->l = std::move(a);
  return f;
}

FormulaPtr FAssert(FormulaPtr a) {
  auto f = Make(FKind::kAssert);
  std::const_pointer_cast<Formula>(f)->l = std::move(a);
  return f;
}

FormulaPtr FGuardedForall(const std::vector<std::string>& vars,
                          FormulaPtr guard_atom, FormulaPtr body) {
  FormulaPtr f = FOr(FNot(std::move(guard_atom)), std::move(body));
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    f = FForall(*it, std::move(f));
  }
  return f;
}

std::string Formula::ToString() const {
  auto term_list = [this]() {
    std::string s;
    for (size_t i = 0; i < terms.size(); ++i) {
      if (i) s += ", ";
      s += terms[i].ToString();
    }
    return s;
  };
  switch (kind) {
    case FKind::kAtom:
      return rel + "(" + term_list() + ")";
    case FKind::kEq:
      return terms[0].ToString() + " = " + terms[1].ToString();
    case FKind::kIsConst:
      return "const(" + terms[0].ToString() + ")";
    case FKind::kIsNull:
      return "null(" + terms[0].ToString() + ")";
    case FKind::kAnd:
      return "(" + l->ToString() + " ∧ " + r->ToString() + ")";
    case FKind::kOr:
      return "(" + l->ToString() + " ∨ " + r->ToString() + ")";
    case FKind::kNot:
      return "¬" + l->ToString();
    case FKind::kExists:
      return "∃" + var + " " + l->ToString();
    case FKind::kForall:
      return "∀" + var + " " + l->ToString();
    case FKind::kAssert:
      return "↑" + l->ToString();
  }
  return "?";
}

namespace {
void CollectFree(const FormulaPtr& f, std::set<std::string>* bound,
                 std::set<std::string>* free) {
  switch (f->kind) {
    case FKind::kAtom:
    case FKind::kEq:
    case FKind::kIsConst:
    case FKind::kIsNull:
      for (const Term& t : f->terms) {
        if (t.is_var && !bound->count(t.var)) free->insert(t.var);
      }
      return;
    case FKind::kAnd:
    case FKind::kOr:
      CollectFree(f->l, bound, free);
      CollectFree(f->r, bound, free);
      return;
    case FKind::kNot:
    case FKind::kAssert:
      CollectFree(f->l, bound, free);
      return;
    case FKind::kExists:
    case FKind::kForall: {
      bool was_bound = bound->count(f->var) > 0;
      bound->insert(f->var);
      CollectFree(f->l, bound, free);
      if (!was_bound) bound->erase(f->var);
      return;
    }
  }
}
}  // namespace

std::vector<std::string> FreeVariables(const FormulaPtr& f) {
  std::set<std::string> bound, free;
  CollectFree(f, &bound, &free);
  return std::vector<std::string>(free.begin(), free.end());
}

bool IsExistentialPositive(const FormulaPtr& f) {
  switch (f->kind) {
    case FKind::kAtom:
    case FKind::kEq:
      return true;
    case FKind::kAnd:
    case FKind::kOr:
      return IsExistentialPositive(f->l) && IsExistentialPositive(f->r);
    case FKind::kExists:
      return IsExistentialPositive(f->l);
    default:
      return false;
  }
}

namespace {
/// Positive fragment: atoms, =, ∧, ∨, ∃, ∀ plus the guarded-∀ shape
/// ∀x̄ (¬α ∨ φ). A ¬ is only allowed immediately on a guard atom inside
/// the ∀-prefix disjunction.
bool IsPosG(const FormulaPtr& f) {
  switch (f->kind) {
    case FKind::kAtom:
    case FKind::kEq:
      return true;
    case FKind::kAnd:
    case FKind::kOr:
      // Allow the guard disjunct ¬α ∨ φ: negation must wrap a plain atom
      // (with pairwise-distinct variables, checked leniently here).
      if (f->kind == FKind::kOr && f->l->kind == FKind::kNot &&
          f->l->l->kind == FKind::kAtom) {
        return IsPosG(f->r);
      }
      return IsPosG(f->l) && IsPosG(f->r);
    case FKind::kExists:
    case FKind::kForall:
      return IsPosG(f->l);
    default:
      return false;
  }
}
}  // namespace

bool IsPosForallGFormula(const FormulaPtr& f) { return IsPosG(f); }

}  // namespace incdb
