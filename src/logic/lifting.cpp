#include "logic/lifting.h"

#include "logic/kleene.h"

namespace incdb {

PropositionalLogic PropositionalLogic::Kleene3() {
  PropositionalLogic l;
  l.name = "L3v";
  l.values = {TV3::kF, TV3::kU, TV3::kT};
  l.conj = &Kleene::And;
  l.disj = &Kleene::Or;
  l.neg = &Kleene::Not;
  l.knowledge_leq = [](TV3 a, TV3 b) { return KnowledgeLeq(a, b); };
  l.bottom = TV3::kU;
  return l;
}

PropositionalLogic PropositionalLogic::Kleene3WithAssert() {
  PropositionalLogic l = Kleene3();
  l.name = "L3v↑";
  l.extra_unary.emplace_back("↑", &Kleene::Assert);
  return l;
}

std::string FirstKnowledgeOrderViolation(const PropositionalLogic& logic) {
  auto leq = logic.knowledge_leq;
  for (TV3 a : logic.values) {
    for (TV3 a2 : logic.values) {
      if (!leq(a, a2)) continue;
      if (!leq(logic.neg(a), logic.neg(a2))) return "¬";
      for (const auto& [name, op] : logic.extra_unary) {
        if (!leq(op(a), op(a2))) return name;
      }
      for (TV3 b : logic.values) {
        for (TV3 b2 : logic.values) {
          if (!leq(b, b2)) continue;
          if (!leq(logic.conj(a, b), logic.conj(a2, b2))) return "∧";
          if (!leq(logic.disj(a, b), logic.disj(a2, b2))) return "∨";
        }
      }
    }
  }
  return "";
}

bool KnowledgeMonotone(const PropositionalLogic& logic) {
  return FirstKnowledgeOrderViolation(logic).empty();
}

}  // namespace incdb
