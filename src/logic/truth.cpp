#include "logic/truth.h"

namespace incdb {

const char* ToString(TV3 v) {
  switch (v) {
    case TV3::kF:
      return "f";
    case TV3::kU:
      return "u";
    case TV3::kT:
      return "t";
  }
  return "?";
}

const char* ToString(TV6 v) {
  switch (v) {
    case TV6::kF:
      return "f";
    case TV6::kSF:
      return "sf";
    case TV6::kS:
      return "s";
    case TV6::kU:
      return "u";
    case TV6::kST:
      return "st";
    case TV6::kT:
      return "t";
  }
  return "?";
}

bool KnowledgeLeq(TV3 a, TV3 b) {
  if (a == b) return true;
  return a == TV3::kU;
}

bool KnowledgeLeq(TV6 a, TV6 b) {
  if (a == b) return true;
  if (a == TV6::kU) return true;
  if (a == TV6::kST) return b == TV6::kT || b == TV6::kS;
  if (a == TV6::kSF) return b == TV6::kF || b == TV6::kS;
  return false;
}

}  // namespace incdb
