#ifndef INCDB_LOGIC_CAPTURE_H_
#define INCDB_LOGIC_CAPTURE_H_

/// \file capture.h
/// \brief The Boolean-FO capture of many-valued logics (paper §5.2,
/// Theorems 5.4 and 5.5): for every formula φ of (FO(L3v↑), ⟦·⟧) under any
/// mixed semantics and every truth value τ ∈ {t, f, u}, a plain Boolean FO
/// formula ψ^τ with  ⟦φ⟧_{D,ā} = τ  iff  D ⊨ ψ^τ(ā).
///
/// Consequences implemented and tested here:
///  * SQL's three-valued logic adds no expressive power: the query
///    Q_φ = { ā | ⟦φ⟧sql = t } of FO↑SQL is expressible in Boolean FO.
///  * The ⟦·⟧unif f-case for relational atoms requires expressing
///    unifiability of two k-tuples in FO; UnifiabilityFormula() builds it
///    by enumerating the (Bell(k)-many) partitions of positions and
///    checking class consistency — a finitary encoding of the union-find
///    argument.

#include "core/status.h"
#include "logic/fo_eval.h"
#include "logic/formula.h"

namespace incdb {

/// Boolean FO formula equivalent to "the tuples (a1..ak) and (b1..bk)
/// denoted by `xs` and `ys` are unifiable". `xs` and `ys` must have equal
/// length k ≤ 10 (partition enumeration).
StatusOr<FormulaPtr> UnifiabilityFormula(const std::vector<Term>& xs,
                                         const std::vector<Term>& ys);

/// The translation φ, τ ↦ ψ^τ of Theorem 5.4/5.5 for the given mixed
/// semantics (covers ⟦·⟧bool, ⟦·⟧unif, ⟦·⟧nullfree atoms and the assertion
/// operator ↑). The output is to be evaluated with EvalBoolFO.
StatusOr<FormulaPtr> CaptureTranslate(const FormulaPtr& f,
                                      const MixedSemantics& sem, TV3 tau);

/// Convenience Boolean constants as formulae (c = c and its negation).
FormulaPtr FTrueConst();
FormulaPtr FFalseConst();

}  // namespace incdb

#endif  // INCDB_LOGIC_CAPTURE_H_
