#include "logic/kleene.h"

#include <algorithm>
#include <cassert>

namespace incdb {

// The Kleene tables coincide with min/max under the truth order f < u < t,
// which is exactly how the enum values are laid out.
TV3 Kleene::And(TV3 a, TV3 b) { return std::min(a, b); }
TV3 Kleene::Or(TV3 a, TV3 b) { return std::max(a, b); }

TV3 Kleene::Not(TV3 a) {
  switch (a) {
    case TV3::kT:
      return TV3::kF;
    case TV3::kF:
      return TV3::kT;
    case TV3::kU:
      return TV3::kU;
  }
  return TV3::kU;
}

TV3 Kleene::Assert(TV3 a) { return a == TV3::kT ? TV3::kT : TV3::kF; }

TV3 Boolean2::And(TV3 a, TV3 b) {
  assert(a != TV3::kU && b != TV3::kU);
  return Kleene::And(a, b);
}

TV3 Boolean2::Or(TV3 a, TV3 b) {
  assert(a != TV3::kU && b != TV3::kU);
  return Kleene::Or(a, b);
}

TV3 Boolean2::Not(TV3 a) {
  assert(a != TV3::kU);
  return Kleene::Not(a);
}

}  // namespace incdb
