#ifndef INCDB_LOGIC_FO_EVAL_H_
#define INCDB_LOGIC_FO_EVAL_H_

/// \file fo_eval.h
/// \brief Many-valued first-order semantics ⟦·⟧ (paper §5): evaluation of
/// FO(L) formulae over incomplete databases under the atom semantics of
/// §5.1–5.2 and either Kleene's L3v or Boolean L2v for the connectives.
///
/// Atom semantics (the paper's names):
///  * kBool (eq. 12)       — two-valued, syntactic: R(ā) is t iff ā ∈ R;
///                           a = b is t iff syntactically equal.
///  * kUnif (eq. 13a/13b)  — R(ā) is f only when no tuple of R unifies with
///                           ā; a = b is f only for two distinct constants.
///                           This semantics has correctness guarantees
///                           w.r.t. cert⊥ (Corollary 5.2).
///  * kNullfree (eq. 14)   — u as soon as a null is involved; SQL's
///                           comparison behaviour.
///
/// A MixedSemantics assigns one atom semantics to schema relations and one
/// to equality; ⟦·⟧sql (eq. 15) = (kBool relations, kNullfree equality).
/// Quantifiers range over the active domain of the database.

#include "core/database.h"
#include "core/exec_context.h"
#include "core/status.h"
#include "logic/formula.h"
#include "logic/truth.h"

namespace incdb {

enum class AtomSem { kBool, kUnif, kNullfree };

/// A mixed semantics in the sense of §5.2.
struct MixedSemantics {
  AtomSem relations = AtomSem::kBool;
  AtomSem equality = AtomSem::kBool;

  /// ⟦·⟧bool — plain Boolean FO reading (nulls are just elements).
  static MixedSemantics Bool() { return {AtomSem::kBool, AtomSem::kBool}; }
  /// ⟦·⟧unif — the correctness-guaranteed semantics of §5.1.
  static MixedSemantics Unif() { return {AtomSem::kUnif, AtomSem::kUnif}; }
  /// ⟦·⟧sql (eq. 15) — SQL's semantics: Boolean relations, null-free
  /// comparisons.
  static MixedSemantics Sql() { return {AtomSem::kBool, AtomSem::kNullfree}; }
};

/// Evaluates ⟦φ⟧_{D, ā} in FO(L3v) under the given mixed semantics.
/// The assignment must bind every free variable. The assertion operator ↑
/// is interpreted per §5.2 (FO(L3v↑)).
StatusOr<TV3> EvalFO(const FormulaPtr& f, const Database& db,
                     const Assignment& assignment, const MixedSemantics& sem,
                     const ExecContext& ctx = {});

/// Two-valued evaluation: Boolean FO over the domain Const ∪ Null with the
/// kBool atom semantics (never yields u). Used as the target of the
/// capture translations of Theorems 5.4/5.5.
StatusOr<bool> EvalBoolFO(const FormulaPtr& f, const Database& db,
                          const Assignment& assignment);

/// The query Q_φ(D) = { ā | ⟦φ⟧_{D,ā} = t } of §5.2: evaluates the formula
/// for every assignment of active-domain elements to its free variables
/// (in the sorted order of FreeVariables(f)).
StatusOr<Relation> AnswersWithTruthValue(const FormulaPtr& f,
                                         const Database& db,
                                         const MixedSemantics& sem,
                                         TV3 tau,
                                         const ExecContext& ctx = {});

}  // namespace incdb

#endif  // INCDB_LOGIC_FO_EVAL_H_
