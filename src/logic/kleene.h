#ifndef INCDB_LOGIC_KLEENE_H_
#define INCDB_LOGIC_KLEENE_H_

/// \file kleene.h
/// \brief Kleene's three-valued logic L3v (paper Fig. 3) and its extension
/// L3v↑ with Bochvar's assertion operator (§5.2).
///
/// SQL propagates the truth value u ("unknown") through ∧, ∨, ¬ using
/// exactly these tables, then the WHERE clause keeps only rows whose
/// condition is t — the collapse modelled by the assertion operator ↑.

#include "logic/truth.h"

namespace incdb {

/// Connectives of L3v (truth tables of Fig. 3) as pure functions.
struct Kleene {
  static TV3 And(TV3 a, TV3 b);
  static TV3 Or(TV3 a, TV3 b);
  static TV3 Not(TV3 a);
  /// Bochvar's assertion operator: ↑t = t, ↑u = ↑f = f. Collapses 3VL back
  /// to Boolean; this is the step SQL performs after WHERE (§5.2), and the
  /// operator that breaks knowledge-order monotonicity.
  static TV3 Assert(TV3 a);
};

/// Connectives of the Boolean logic L2v on {f, t} ⊂ TV3 (never yield u).
struct Boolean2 {
  static TV3 And(TV3 a, TV3 b);
  static TV3 Or(TV3 a, TV3 b);
  static TV3 Not(TV3 a);
};

}  // namespace incdb

#endif  // INCDB_LOGIC_KLEENE_H_
