#ifndef INCDB_LOGIC_FORMULA_H_
#define INCDB_LOGIC_FORMULA_H_

/// \file formula.h
/// \brief First-order formulae over a relational vocabulary (paper §2 and
/// §5): relational atoms R(x̄), equality, const(x)/null(x) tests, the
/// connectives ∧ ∨ ¬, quantifiers ∃ ∀, and Bochvar's assertion operator ↑
/// (the FO(L3v↑) extension of §5.2 capturing SQL's WHERE).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/value.h"

namespace incdb {

/// A term: a variable or a constant.
struct Term {
  bool is_var = true;
  std::string var;
  Value constant;

  static Term Var(std::string name) {
    Term t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.is_var = false;
    t.constant = std::move(v);
    return t;
  }

  std::string ToString() const {
    return is_var ? var : constant.ToString();
  }
};

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

enum class FKind : uint8_t {
  kAtom,     ///< R(t̄)
  kEq,       ///< t1 = t2
  kIsConst,  ///< const(t)
  kIsNull,   ///< null(t)
  kAnd,
  kOr,
  kNot,
  kExists,
  kForall,
  kAssert,   ///< ↑φ (collapses u to f)
};

/// \brief Immutable FO formula node.
struct Formula {
  FKind kind;
  std::string rel;          ///< kAtom.
  std::vector<Term> terms;  ///< kAtom arguments; kEq/kIsConst/kIsNull terms.
  std::string var;          ///< kExists / kForall bound variable.
  FormulaPtr l, r;

  std::string ToString() const;
};

/// Constructors.
FormulaPtr FAtom(std::string rel, std::vector<Term> terms);
FormulaPtr FEq(Term a, Term b);
FormulaPtr FIsConst(Term t);
FormulaPtr FIsNull(Term t);
FormulaPtr FAnd(FormulaPtr a, FormulaPtr b);
FormulaPtr FOr(FormulaPtr a, FormulaPtr b);
FormulaPtr FNot(FormulaPtr a);
FormulaPtr FExists(std::string var, FormulaPtr a);
FormulaPtr FForall(std::string var, FormulaPtr a);
FormulaPtr FAssert(FormulaPtr a);

/// Free variables of the formula (sorted).
std::vector<std::string> FreeVariables(const FormulaPtr& f);

/// True iff the formula is in the ∃,∧(,=)-fragment (conjunctive query)
/// after ignoring const tests; used to classify UCQs.
bool IsExistentialPositive(const FormulaPtr& f);

/// True iff the formula lies in the Pos∀G fragment of [18] (§4.1):
/// positive formulae closed under ∀x̄(α(x̄) → φ) with α a relational atom
/// over distinct variables. Recognises the syntactic shape
/// ∀x1..xk ¬α ∨ φ produced by FGuardedForall below.
bool IsPosForallGFormula(const FormulaPtr& f);

/// Convenience constructor for the Pos∀G guard rule:
/// ∀x̄ (α(x̄) → φ) encoded as ∀x1 ... ∀xk (¬α(x̄) ∨ φ).
FormulaPtr FGuardedForall(const std::vector<std::string>& vars,
                          FormulaPtr guard_atom, FormulaPtr body);

/// A variable assignment.
using Assignment = std::map<std::string, Value>;

}  // namespace incdb

#endif  // INCDB_LOGIC_FORMULA_H_
