#ifndef INCDB_LOGIC_TRUTH_H_
#define INCDB_LOGIC_TRUTH_H_

/// \file truth.h
/// \brief Truth values of the propositional logics used in the paper:
/// Boolean L2v, Kleene's L3v (Fig. 3), and the six-valued epistemic logic
/// L6v of §5.2, plus the knowledge order ⪯_L.

#include <cstdint>
#include <string>

namespace incdb {

/// Kleene's three truth values. SQL's "unknown" is kU.
enum class TV3 : uint8_t { kF = 0, kU = 1, kT = 2 };

/// The six truth values of L6v (§5.2): derived from maximally consistent
/// theories of the epistemic modalities K(α), P(α), K(¬α), P(¬α).
///  kT  — α true in all worlds;
///  kF  — α false in all worlds;
///  kS  — true in some worlds, false in others ("sometimes");
///  kST — true somewhere, possibly everywhere ("sometimes true");
///  kSF — false somewhere, possibly everywhere ("sometimes false");
///  kU  — no information whatsoever.
enum class TV6 : uint8_t { kF = 0, kSF = 1, kS = 2, kU = 3, kST = 4, kT = 5 };

const char* ToString(TV3 v);
const char* ToString(TV6 v);

/// Lifts a Boolean to TV3.
inline TV3 FromBool(bool b) { return b ? TV3::kT : TV3::kF; }

/// Knowledge order of L3v: u ⪯ t, u ⪯ f, and reflexivity; t, f incomparable.
bool KnowledgeLeq(TV3 a, TV3 b);

/// Knowledge order of L6v: u is the least element; s below st and sf is NOT
/// part of the order used here — we use the order induced by set inclusion
/// of the epistemic theories (more formulas known = more knowledge):
/// u ⪯ st ⪯ {t, s}, u ⪯ sf ⪯ {f, s}, and reflexivity.
bool KnowledgeLeq(TV6 a, TV6 b);

}  // namespace incdb

#endif  // INCDB_LOGIC_TRUTH_H_
