#include "hom/homomorphism.h"

#include <unordered_map>

namespace incdb {

const char* ToString(HomClass c) {
  switch (c) {
    case HomClass::kAny:
      return "any";
    case HomClass::kOnto:
      return "onto";
    case HomClass::kStrongOnto:
      return "strong-onto";
  }
  return "?";
}

namespace {

struct Fact {
  std::string rel;
  Tuple tuple;
};

class HomSearch {
 public:
  HomSearch(const Database& from, const Database& to, HomClass cls)
      : from_(from), to_(to), cls_(cls) {
    for (const auto& [name, rel] : from.relations()) {
      for (const Tuple& t : rel.SortedTuples()) {
        facts_.push_back(Fact{name, t});
      }
    }
  }

  bool Run() { return Search(0); }

 private:
  bool Search(size_t fact_idx) {
    if (fact_idx == facts_.size()) return FinalChecks();
    const Fact& fact = facts_[fact_idx];
    auto rel = to_.Get(fact.rel);
    if (!rel.ok()) return false;  // no relation to map this fact into
    for (const Tuple& target : rel->SortedTuples()) {
      std::vector<uint64_t> newly_bound;
      if (TryMatch(fact.tuple, target, &newly_bound)) {
        if (Search(fact_idx + 1)) return true;
      }
      for (uint64_t id : newly_bound) assignment_.erase(id);
    }
    return false;
  }

  /// Attempts to extend the assignment so h(src) = target.
  bool TryMatch(const Tuple& src, const Tuple& target,
                std::vector<uint64_t>* newly_bound) {
    if (src.arity() != target.arity()) return false;
    for (size_t i = 0; i < src.arity(); ++i) {
      const Value& s = src[i];
      const Value& t = target[i];
      if (s.is_const()) {
        if (!(s == t)) {
          Rollback(newly_bound);
          return false;
        }
        continue;
      }
      auto it = assignment_.find(s.null_id());
      if (it != assignment_.end()) {
        if (!(it->second == t)) {
          Rollback(newly_bound);
          return false;
        }
      } else {
        assignment_[s.null_id()] = t;
        newly_bound->push_back(s.null_id());
      }
    }
    return true;
  }

  void Rollback(std::vector<uint64_t>* newly_bound) {
    for (uint64_t id : *newly_bound) assignment_.erase(id);
    newly_bound->clear();
  }

  bool FinalChecks() {
    // Any unconstrained null (occurring in no fact — impossible by
    // construction) would be free; all nulls of `from_` are assigned here.
    if (cls_ == HomClass::kAny) return true;
    if (cls_ == HomClass::kOnto) {
      // h(dom(from)) = dom(to).
      std::set<Value> image;
      for (const Value& c : from_.Constants()) image.insert(c);
      for (const auto& [id, v] : assignment_) image.insert(v);
      return image == to_.ActiveDomain();
    }
    // Strong onto: h(D) = D' relation by relation.
    for (const auto& [name, rel] : to_.relations()) {
      std::set<Tuple> image;
      auto from_rel = from_.Get(name);
      if (from_rel.ok()) {
        for (const Tuple& t : from_rel->SortedTuples()) {
          Tuple mapped = t;
          for (size_t i = 0; i < mapped.arity(); ++i) {
            if (mapped[i].is_null()) {
              mapped[i] = assignment_.at(mapped[i].null_id());
            }
          }
          image.insert(mapped);
        }
      }
      std::set<Tuple> target;
      for (const Tuple& t : rel.SortedTuples()) target.insert(t);
      if (image != target) return false;
    }
    return true;
  }

  const Database& from_;
  const Database& to_;
  HomClass cls_;
  std::vector<Fact> facts_;
  std::unordered_map<uint64_t, Value> assignment_;
};

}  // namespace

bool ExistsHomomorphism(const Database& from, const Database& to,
                        HomClass cls) {
  // Every relation of `from` with at least one fact must exist in `to`.
  for (const auto& [name, rel] : from.relations()) {
    if (!rel.Empty() && !to.Has(name)) return false;
  }
  return HomSearch(from, to, cls).Run();
}

bool IsPossibleWorld(const Database& d, const Database& world, HomClass cls) {
  if (!world.IsComplete()) return false;
  return ExistsHomomorphism(d, world, cls);
}

}  // namespace incdb
