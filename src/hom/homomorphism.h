#ifndef INCDB_HOM_HOMOMORPHISM_H_
#define INCDB_HOM_HOMOMORPHISM_H_

/// \file homomorphism.h
/// \brief Homomorphisms between database instances and the semantics of
/// incompleteness they induce (paper §4.1, Theorem 4.3).
///
/// A homomorphism h : D → D' maps dom(D) to dom(D') such that h(ā) ∈ R^D'
/// for every ā ∈ R^D; here h is always the identity on constants (the
/// class relevant for incompleteness semantics). Three classes:
///  * kAny        — arbitrary: ⟦D⟧_H = ⟦D⟧_OWA;
///  * kOnto       — h(dom(D)) = dom(D');
///  * kStrongOnto — h(D) = D' (every fact of D' is the image of a fact of
///                  D): ⟦D⟧_H = ⟦D⟧ (CWA).

#include <optional>

#include "core/database.h"
#include "core/valuation.h"

namespace incdb {

enum class HomClass { kAny, kOnto, kStrongOnto };

const char* ToString(HomClass c);

/// Searches for a homomorphism from `from` to `to` that is the identity on
/// constants. Nulls of `from` may map to constants *or nulls* of `to`
/// (general instance-to-instance homomorphisms). Backtracking search —
/// intended for the small instances used in tests and benches.
bool ExistsHomomorphism(const Database& from, const Database& to,
                        HomClass cls);

/// Membership of D' in the H-semantics of D (⟦D⟧_H of Thm. 4.3): D' must
/// be complete and admit a homomorphism of the class from D.
/// kAny ↦ OWA semantics; kStrongOnto ↦ CWA semantics.
bool IsPossibleWorld(const Database& d, const Database& world, HomClass cls);

}  // namespace incdb

#endif  // INCDB_HOM_HOMOMORPHISM_H_
