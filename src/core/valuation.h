#ifndef INCDB_CORE_VALUATION_H_
#define INCDB_CORE_VALUATION_H_

/// \file valuation.h
/// \brief Valuations v : Null(D) → Const and the semantics of
/// incompleteness ⟦D⟧ = { v(D) | v valuation } (paper §2).

#include <map>
#include <string>

#include "core/database.h"
#include "core/status.h"

namespace incdb {

/// \brief A (partial) map from null ids to constants.
///
/// Applying a valuation to a value/tuple/relation/database replaces each
/// null ⊥_i in its domain by v(⊥_i); nulls outside the domain are left
/// untouched (useful for partial instantiation in the chase).
class Valuation {
 public:
  Valuation() = default;

  /// Binds ⊥_id to a constant. Returns InvalidArgument if `c` is a null.
  Status Bind(uint64_t id, const Value& c);
  /// Unchecked bind for internal enumeration loops.
  void Set(uint64_t id, const Value& c) { map_[id] = c; }

  bool Has(uint64_t id) const { return map_.count(id) > 0; }
  /// v(⊥_id), or ⊥_id itself if unbound.
  Value Lookup(uint64_t id) const;

  Value Apply(const Value& v) const;
  Tuple Apply(const Tuple& t) const;
  /// Applies under set semantics: tuples that collapse are deduplicated.
  Relation ApplySet(const Relation& r) const;
  /// Applies under bag semantics: multiplicities of collapsing tuples add up
  /// (the "add up" option of [42], §6 "Bag semantics").
  Relation ApplyBag(const Relation& r) const;
  Database ApplySet(const Database& d) const;
  Database ApplyBag(const Database& d) const;

  const std::map<uint64_t, Value>& map() const { return map_; }
  size_t size() const { return map_.size(); }

  std::string ToString() const;

 private:
  std::map<uint64_t, Value> map_;
};

}  // namespace incdb

#endif  // INCDB_CORE_VALUATION_H_
