#ifndef INCDB_CORE_VALUE_H_
#define INCDB_CORE_VALUE_H_

/// \file value.h
/// \brief Domain elements of incomplete databases: constants and marked
/// nulls (paper §2, "Incomplete databases").
///
/// Databases are populated by two kinds of elements: *constants* from a
/// countably infinite set Const, and *nulls* ⊥_i from a countably infinite
/// set Null. Nulls are *marked* (labelled): the same null id may repeat
/// within and across relations, which is strictly more general than SQL's
/// Codd nulls. Constants are typed (int64, double, string) to support the
/// TPC-H-like workloads; equality across constant types is syntactic
/// (an Int(1) is a different constant from String("1")).

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>

#include "core/intern.h"

namespace incdb {

/// Discriminator for the Value tagged union. Order matters: it defines the
/// (arbitrary but deterministic) total order used to sort output relations.
enum class ValueKind : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  /// A query parameter placeholder ?i (prepared queries, api/session.h).
  /// Parameters only ever appear inside query trees — selection-condition
  /// constants and Dom extras — never in relation data; they are
  /// substituted by a bound constant before any evaluation runs.
  kParam = 4,
};

/// \brief One element of Const ∪ Null.
///
/// Immutable value type. Nulls carry an id, making them marked nulls ⊥_id;
/// Codd nulls are recovered by never reusing an id (see
/// Database::CoddifyNulls). Equality is syntactic: ⊥_1 == ⊥_1, ⊥_1 != ⊥_2,
/// and a null never equals a constant. This syntactic equality is exactly
/// what naive evaluation (paper §4.1) needs.
///
/// Layout: a 16-byte trivially-copyable tagged struct. Int64, double
/// bit-pattern and null-id payloads live inline in `bits_`; string payloads
/// are interned through StringPool and `bits_` holds the intern id, so
/// string equality and hashing are id comparisons (content lives in the
/// pool, shared by every occurrence).
class Value {
 public:
  /// Constants.
  static Value Int(int64_t v) {
    return Value(ValueKind::kInt, static_cast<uint64_t>(v));
  }
  static Value Double(double v);
  static Value String(std::string v) {
    return Value(ValueKind::kString, StringPool::Intern(std::move(v)));
  }
  /// A string constant from an already-interned pool id.
  static Value InternedString(uint32_t id) {
    return Value(ValueKind::kString, id);
  }
  /// The marked null ⊥_id.
  static Value Null(uint64_t id) { return Value(ValueKind::kNull, id); }
  /// The parameter placeholder ?index (0-based, assigned in query order).
  static Value Param(uint32_t index) {
    return Value(ValueKind::kParam, index);
  }

  constexpr Value() : kind_(ValueKind::kInt), bits_(0) {}

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_param() const { return kind_ == ValueKind::kParam; }
  /// True for genuine constants: neither a null nor a parameter
  /// placeholder.
  bool is_const() const { return !is_null() && !is_param(); }

  /// The 0-based index of a parameter placeholder.
  uint32_t param_index() const;

  uint64_t null_id() const;
  int64_t as_int() const;
  double as_double() const;
  /// The interned contents; stable reference into the StringPool.
  const std::string& as_string() const;
  /// The StringPool id of a string constant.
  uint32_t string_id() const;

  /// Syntactic equality (marked-null identity; strings by intern id, which
  /// coincides with content equality).
  bool operator==(const Value& other) const {
    return kind_ == other.kind_ && bits_ == other.bits_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Deterministic total order: by kind, then payload (strings by content).
  bool operator<(const Value& other) const;

  /// Renders e.g. "42", "3.5", "'abc'", "⊥3".
  std::string ToString() const;

  /// Hash compatible with operator==.
  size_t Hash() const {
    uint64_t x = bits_ + static_cast<uint64_t>(kind_) * 0x9e3779b97f4a7c15ULL;
    // splitmix64-style finalizer: cheap, good dispersion of dense ids.
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }

 private:
  constexpr Value(ValueKind kind, uint64_t bits) : kind_(kind), bits_(bits) {}

  ValueKind kind_;
  uint64_t bits_;  // int64 payload, double bit-pattern, null id or intern id.
};

static_assert(std::is_trivially_copyable_v<Value>,
              "Value must stay trivially copyable: relations memcpy rows");
static_assert(sizeof(Value) <= 16, "Value must stay within 16 bytes");

}  // namespace incdb

namespace std {
template <>
struct hash<incdb::Value> {
  size_t operator()(const incdb::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // INCDB_CORE_VALUE_H_
