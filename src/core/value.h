#ifndef INCDB_CORE_VALUE_H_
#define INCDB_CORE_VALUE_H_

/// \file value.h
/// \brief Domain elements of incomplete databases: constants and marked
/// nulls (paper §2, "Incomplete databases").
///
/// Databases are populated by two kinds of elements: *constants* from a
/// countably infinite set Const, and *nulls* ⊥_i from a countably infinite
/// set Null. Nulls are *marked* (labelled): the same null id may repeat
/// within and across relations, which is strictly more general than SQL's
/// Codd nulls. Constants are typed (int64, double, string) to support the
/// TPC-H-like workloads; equality across constant types is syntactic
/// (an Int(1) is a different constant from String("1")).

#include <cstdint>
#include <functional>
#include <string>

namespace incdb {

/// Discriminator for the Value tagged union. Order matters: it defines the
/// (arbitrary but deterministic) total order used to sort output relations.
enum class ValueKind : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

/// \brief One element of Const ∪ Null.
///
/// Immutable value type. Nulls carry an id, making them marked nulls ⊥_id;
/// Codd nulls are recovered by never reusing an id (see
/// Database::CoddifyNulls). Equality is syntactic: ⊥_1 == ⊥_1, ⊥_1 != ⊥_2,
/// and a null never equals a constant. This syntactic equality is exactly
/// what naive evaluation (paper §4.1) needs.
class Value {
 public:
  /// Constants.
  static Value Int(int64_t v);
  static Value Double(double v);
  static Value String(std::string v);
  /// The marked null ⊥_id.
  static Value Null(uint64_t id);

  Value() : Value(Int(0)) {}

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }
  bool is_const() const { return !is_null(); }

  uint64_t null_id() const;
  int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Syntactic equality (marked-null identity).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Deterministic total order: by kind, then payload.
  bool operator<(const Value& other) const;

  /// Renders e.g. "42", "3.5", "'abc'", "⊥3".
  std::string ToString() const;

  /// Hash compatible with operator==.
  size_t Hash() const;

 private:
  Value(ValueKind kind, uint64_t bits, std::string str)
      : kind_(kind), bits_(bits), str_(std::move(str)) {}

  ValueKind kind_;
  uint64_t bits_;    // int64 payload, double bit-pattern, or null id.
  std::string str_;  // string payload (empty otherwise).
};

}  // namespace incdb

namespace std {
template <>
struct hash<incdb::Value> {
  size_t operator()(const incdb::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // INCDB_CORE_VALUE_H_
