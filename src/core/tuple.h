#ifndef INCDB_CORE_TUPLE_H_
#define INCDB_CORE_TUPLE_H_

/// \file tuple.h
/// \brief Tuples over Const ∪ Null, plus the unifiability test r̄ ⇑ s̄
/// used throughout the paper (anti-semijoin ⋉⇑ in Fig. 2, the ⟦·⟧unif
/// semantics in §5.1).

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/value.h"

namespace incdb {

/// \brief A fixed-arity tuple of values.
///
/// Comparison and hashing are syntactic (component-wise Value semantics),
/// which makes containers of tuples behave like the paper's sets of tuples
/// over Const ∪ Null.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Concatenation r̄s̄ (juxtaposition in the paper).
  Tuple Concat(const Tuple& other) const;
  /// Projection onto the given positions (may repeat / reorder).
  Tuple Project(const std::vector<size_t>& positions) const;

  /// True iff every component is a constant (Const(ā) in §5.2).
  bool AllConst() const;
  /// True iff some component is a null.
  bool HasNull() const { return !AllConst(); }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const;

  size_t Hash() const;

  /// Renders e.g. "(1, 'a', ⊥2)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

/// \brief Unifiability r̄ ⇑ s̄: is there a valuation v with v(r̄) = v(s̄)?
///
/// Decided by union-find over the nulls occurring in the two tuples; the
/// tuples unify unless some equivalence class is forced to contain two
/// distinct constants. Linear-time in the spirit of Paterson–Wegman [57].
bool Unifiable(const Tuple& a, const Tuple& b);

}  // namespace incdb

namespace std {
template <>
struct hash<incdb::Tuple> {
  size_t operator()(const incdb::Tuple& t) const { return t.Hash(); }
};
}  // namespace std

#endif  // INCDB_CORE_TUPLE_H_
