#ifndef INCDB_CORE_TUPLE_H_
#define INCDB_CORE_TUPLE_H_

/// \file tuple.h
/// \brief Tuples over Const ∪ Null, plus the unifiability test r̄ ⇑ s̄
/// used throughout the paper (anti-semijoin ⋉⇑ in Fig. 2, the ⟦·⟧unif
/// semantics in §5.1).

#include <cstddef>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "core/value.h"

namespace incdb {

/// \brief A fixed-arity tuple of values.
///
/// Comparison and hashing are syntactic (component-wise Value semantics),
/// which makes containers of tuples behave like the paper's sets of tuples
/// over Const ∪ Null.
///
/// The hash is computed once and cached; any mutating access invalidates
/// it. Since Value is trivially copyable, copying a tuple is a single
/// allocation plus a memcpy, and the evaluators reuse scratch tuples via
/// AssignConcat/AssignProject to keep their per-pair hot paths free of
/// allocations entirely.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  Tuple(const Tuple&) = default;
  Tuple& operator=(const Tuple&) = default;
  Tuple(Tuple&& other) noexcept
      : values_(std::move(other.values_)), hash_(other.hash_) {
    other.hash_ = kDirtyHash;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    values_ = std::move(other.values_);
    hash_ = other.hash_;
    other.hash_ = kDirtyHash;
    return *this;
  }

  size_t arity() const { return values_.size(); }
  const Value& operator[](size_t i) const { return values_[i]; }
  /// Mutable access invalidates the cached hash.
  Value& operator[](size_t i) {
    hash_ = kDirtyHash;
    return values_[i];
  }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) {
    hash_ = kDirtyHash;
    values_.push_back(v);
  }
  /// Overwrites component `i` (equivalent to `(*this)[i] = v`).
  void Set(size_t i, Value v) {
    hash_ = kDirtyHash;
    values_[i] = v;
  }
  void Reserve(size_t n) { values_.reserve(n); }
  void Clear() {
    hash_ = kDirtyHash;
    values_.clear();
  }

  /// Concatenation r̄s̄ (juxtaposition in the paper).
  Tuple Concat(const Tuple& other) const;
  /// Projection onto the given positions (may repeat / reorder).
  Tuple Project(const std::vector<size_t>& positions) const;

  /// Makes `this` the concatenation a·b, reusing existing capacity. The
  /// allocation-free counterpart of Concat for evaluator scratch tuples.
  void AssignConcat(const Tuple& a, const Tuple& b);
  /// Makes `this` the projection of `src` onto `positions`, reusing
  /// existing capacity.
  void AssignProject(const Tuple& src, const std::vector<size_t>& positions);

  /// True iff every component is a constant (Const(ā) in §5.2).
  bool AllConst() const;
  /// True iff some component is a null.
  bool HasNull() const { return !AllConst(); }

  bool operator==(const Tuple& other) const {
    if (values_.size() != other.values_.size()) return false;
    if (hash_ != kDirtyHash && other.hash_ != kDirtyHash &&
        hash_ != other.hash_) {
      return false;  // cached hashes disagree: cannot be equal
    }
    return values_ == other.values_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const;

  /// Component-wise hash, computed lazily and cached until mutation.
  size_t Hash() const {
    if (hash_ == kDirtyHash) hash_ = ComputeHash();
    return hash_;
  }

  /// Renders e.g. "(1, 'a', ⊥2)".
  std::string ToString() const;

 private:
  static constexpr size_t kDirtyHash = ~static_cast<size_t>(0);

  size_t ComputeHash() const;

  std::vector<Value> values_;
  mutable size_t hash_ = kDirtyHash;
};

/// \brief Unifiability r̄ ⇑ s̄: is there a valuation v with v(r̄) = v(s̄)?
///
/// Decided by union-find over the nulls occurring in the two tuples; the
/// tuples unify unless some equivalence class is forced to contain two
/// distinct constants. Linear-time in the spirit of Paterson–Wegman [57].
bool Unifiable(const Tuple& a, const Tuple& b);

}  // namespace incdb

namespace std {
template <>
struct hash<incdb::Tuple> {
  size_t operator()(const incdb::Tuple& t) const { return t.Hash(); }
};
}  // namespace std

#endif  // INCDB_CORE_TUPLE_H_
