#ifndef INCDB_CORE_FAULT_H_
#define INCDB_CORE_FAULT_H_

/// \file fault.h
/// \brief Deterministic fault injection for robustness testing.
///
/// FaultInjector is a seeded, process-wide source of synthetic failures.
/// Named injection sites sit at allocation-heavy / status-returning
/// boundaries (relation materialization, pool dispatch, cache insert,
/// snapshot pin, node evaluation). When armed, each site roll either
/// passes or returns a *structured* error — kCancelled or
/// kResourceExhausted with StatusDetail::site naming the boundary —
/// never kInternal, never a crash. The differential-fuzzer fault sweep
/// (tests/fault_injection_test.cpp) asserts exactly that contract.
///
/// The sites compile to nothing unless INCDB_FAULT_INJECTION is defined
/// (CMake defines it for Debug configs and when -DINCDB_FORCE_FAULT_INJECTION=ON),
/// so Release/RelWithDebInfo builds pay zero cost. The class itself is
/// always compiled so tests can link and query CompiledIn().
///
/// Reproduce a failure: the sweep prints the (seed, rate) pair for each
/// case; re-arm with Configure(seed, rate) — or set INCDB_FAULT_SEED /
/// INCDB_FAULT_RATE in the environment — and the roll sequence replays
/// bit-for-bit (single-threaded execution; the mutex serializes rolls).

#include <cstdint>
#include <mutex>
#include <random>
#include <string>

#include "core/status.h"

namespace incdb {

class FaultInjector {
 public:
  /// The process-wide injector. On first use it arms itself from the
  /// INCDB_FAULT_SEED / INCDB_FAULT_RATE environment variables (rate
  /// defaults to 0 == disabled when unset).
  static FaultInjector& Global();

  /// True when the INCDB_FAULT_POINT sites were compiled into the
  /// library (Debug / forced builds). Tests skip the sweep otherwise.
  static bool CompiledIn();

  /// (Re)arm: same (seed, rate) ⇒ same injection sequence. Resets stats.
  void Configure(uint64_t seed, double rate);

  /// Disarm: every subsequent roll passes.
  void Disable();

  /// Roll the dice for `site`. OK when disarmed or the roll passes;
  /// otherwise a structured error whose detail()->site == site. The
  /// error kind rotates deterministically through kCancelled,
  /// kResourceExhausted ("injected resource exhaustion") and
  /// kResourceExhausted ("injected allocation failure").
  Status MaybeFault(const char* site);

  uint64_t checks() const;    ///< Rolls since the last Configure().
  uint64_t injected() const;  ///< Faults fired since the last Configure().

 private:
  FaultInjector();

  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  double rate_ = 0.0;
  uint64_t seed_ = 0;
  uint64_t checks_ = 0;
  uint64_t injected_ = 0;
};

// INCDB_FAULT_POINT(site): inside a Status/StatusOr-returning function,
// return an injected error for `site` (no-op unless compiled in).
//
// INCDB_FAULT_DROPPED(site): expression, true when a fault fired at
// `site` — for best-effort paths (e.g. a cache insert) that degrade
// gracefully by skipping the work instead of propagating an error.
#if defined(INCDB_FAULT_INJECTION)
#define INCDB_FAULT_POINT(site)                                       \
  do {                                                                \
    ::incdb::Status _fst = ::incdb::FaultInjector::Global().MaybeFault(site); \
    if (!_fst.ok()) return _fst;                                      \
  } while (0)
#define INCDB_FAULT_DROPPED(site) \
  (!::incdb::FaultInjector::Global().MaybeFault(site).ok())
#else
#define INCDB_FAULT_POINT(site) \
  do {                          \
  } while (0)
#define INCDB_FAULT_DROPPED(site) false
#endif

}  // namespace incdb

#endif  // INCDB_CORE_FAULT_H_
