#include "core/relation.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace incdb {

StatusOr<size_t> Relation::AttrIndex(const std::string& name) const {
  size_t found = attrs_.size();
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == name) {
      if (found != attrs_.size()) {
        return Status::InvalidArgument("ambiguous attribute: " + name);
      }
      found = i;
    }
  }
  if (found == attrs_.size()) {
    return Status::NotFound("no attribute named " + name);
  }
  return found;
}

uint32_t Relation::FindRow(const Tuple& t) const {
  auto [lo, hi] = index_.equal_range(t.Hash());
  for (auto it = lo; it != hi; ++it) {
    if (rows_[it->second].first == t) return it->second;
  }
  return kNoRow;
}

Status Relation::Insert(const Tuple& t, uint64_t count) {
  if (t.arity() != attrs_.size()) {
    return Status::InvalidArgument(
        "arity mismatch: tuple " + t.ToString() + " into relation of arity " +
        std::to_string(attrs_.size()));
  }
  if (count == 0) return Status::OK();
  uint32_t row = FindRow(t);
  if (row != kNoRow) {
    rows_[row].second += count;
    return Status::OK();
  }
  if (rows_.size() >= kNoRow) {
    return Status::ResourceExhausted("relation exceeds 2^32-1 distinct rows");
  }
  rows_.emplace_back(t, count);  // copies t's cached hash along with it
  index_.emplace(t.Hash(), static_cast<uint32_t>(rows_.size() - 1));
  return Status::OK();
}

Status Relation::Insert(Tuple&& t, uint64_t count) {
  if (t.arity() != attrs_.size()) {
    return Status::InvalidArgument(
        "arity mismatch: tuple " + t.ToString() + " into relation of arity " +
        std::to_string(attrs_.size()));
  }
  if (count == 0) return Status::OK();
  const size_t h = t.Hash();  // cached into t, travels with the move below
  uint32_t row = FindRow(t);
  if (row != kNoRow) {
    rows_[row].second += count;
    return Status::OK();
  }
  if (rows_.size() >= kNoRow) {
    return Status::ResourceExhausted("relation exceeds 2^32-1 distinct rows");
  }
  rows_.emplace_back(std::move(t), count);
  index_.emplace(h, static_cast<uint32_t>(rows_.size() - 1));
  return Status::OK();
}

Status Relation::InsertUnique(const Tuple& t, uint64_t count) {
  if (t.arity() != attrs_.size()) {
    return Status::InvalidArgument(
        "arity mismatch: tuple " + t.ToString() + " into relation of arity " +
        std::to_string(attrs_.size()));
  }
  if (count == 0) return Status::OK();
  assert(FindRow(t) == kNoRow);
  if (rows_.size() >= kNoRow) {
    return Status::ResourceExhausted("relation exceeds 2^32-1 distinct rows");
  }
  rows_.emplace_back(t, count);
  index_.emplace(t.Hash(), static_cast<uint32_t>(rows_.size() - 1));
  return Status::OK();
}

Status Relation::InsertUnique(Tuple&& t, uint64_t count) {
  if (t.arity() != attrs_.size()) {
    return Status::InvalidArgument(
        "arity mismatch: tuple " + t.ToString() + " into relation of arity " +
        std::to_string(attrs_.size()));
  }
  if (count == 0) return Status::OK();
  const size_t h = t.Hash();  // cached into t, travels with the move below
  assert(FindRow(t) == kNoRow);
  if (rows_.size() >= kNoRow) {
    return Status::ResourceExhausted("relation exceeds 2^32-1 distinct rows");
  }
  rows_.emplace_back(std::move(t), count);
  index_.emplace(h, static_cast<uint32_t>(rows_.size() - 1));
  return Status::OK();
}

Status Relation::Erase(const Tuple& t, uint64_t count) {
  if (t.arity() != attrs_.size()) {
    return Status::InvalidArgument(
        "arity mismatch: tuple " + t.ToString() + " from relation of arity " +
        std::to_string(attrs_.size()));
  }
  if (count == 0) return Status::OK();
  const uint32_t row = FindRow(t);
  if (row == kNoRow) {
    return Status::NotFound("erase of absent tuple " + t.ToString());
  }
  if (rows_[row].second < count) {
    return Status::InvalidArgument(
        "erase of " + std::to_string(count) + " occurrences of " +
        t.ToString() + ", only " + std::to_string(rows_[row].second) +
        " present");
  }
  rows_[row].second -= count;
  if (rows_[row].second > 0) return Status::OK();
  // Last occurrence gone: drop the row's index entry, then move the final
  // row into the vacated slot and re-point its index entry.
  auto [lo, hi] = index_.equal_range(rows_[row].first.Hash());
  for (auto it = lo; it != hi; ++it) {
    if (it->second == row) {
      index_.erase(it);
      break;
    }
  }
  const uint32_t last = static_cast<uint32_t>(rows_.size() - 1);
  if (row != last) {
    auto [mlo, mhi] = index_.equal_range(rows_[last].first.Hash());
    for (auto it = mlo; it != mhi; ++it) {
      if (it->second == last) {
        it->second = row;
        break;
      }
    }
    rows_[row] = std::move(rows_[last]);
  }
  rows_.pop_back();
  return Status::OK();
}

void Relation::Add(std::initializer_list<Value> values, uint64_t count) {
  Status st = Insert(Tuple(values), count);
  assert(st.ok());
  (void)st;
}

void Relation::Reserve(size_t n) {
  rows_.reserve(n);
  index_.reserve(n);
}

uint64_t Relation::Count(const Tuple& t) const {
  uint32_t row = FindRow(t);
  return row == kNoRow ? 0 : rows_[row].second;
}

uint64_t Relation::TotalSize() const {
  uint64_t total = 0;
  for (const auto& [t, c] : rows_) total += c;
  return total;
}

Relation Relation::ToSet() const {
  Relation out = *this;  // rows and index copy verbatim; only counts change
  out.CollapseCounts();
  return out;
}

Status Relation::RenameAttrs(std::vector<std::string> attrs) {
  if (attrs.size() != attrs_.size()) {
    return Status::InvalidArgument("rename: arity mismatch");
  }
  attrs_ = std::move(attrs);
  return Status::OK();
}

bool Relation::IsSet() const {
  for (const auto& [t, c] : rows_) {
    if (c != 1) return false;
  }
  return true;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (const auto& [t, c] : rows_) out.push_back(t);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<Tuple, uint64_t>> Relation::SortedRows() const {
  std::vector<std::pair<Tuple, uint64_t>> out(rows_.begin(), rows_.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool Relation::SameRows(const Relation& other) const {
  if (rows_.size() != other.rows_.size()) return false;
  for (const auto& [t, c] : rows_) {
    if (other.Count(t) != c) return false;
  }
  return true;
}

bool Relation::SubBagOf(const Relation& other) const {
  for (const auto& [t, c] : rows_) {
    if (other.Count(t) < c) return false;
  }
  return true;
}

std::string Relation::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << attrs_[i];
  }
  os << ") {";
  bool first = true;
  for (const auto& [t, c] : SortedRows()) {
    os << (first ? " " : ", ") << t.ToString();
    if (c != 1) os << "×" << c;
    first = false;
  }
  os << " }";
  return os.str();
}

size_t IndexOf(const std::vector<std::string>& attrs, const std::string& name) {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] == name) return i;
  }
  return attrs.size();
}

Relation RelationView::Materialize() && {
  if (owned_ && owned_.use_count() == 1) {
    Relation out = std::move(*owned_);
    if (renamed_) {
      Status st = out.RenameAttrs(std::move(*renamed_));
      assert(st.ok());  // arity was validated when the view was renamed
      (void)st;
    }
    return out;
  }
  Relation out(attrs());
  out.Reserve(rows().size());
  for (const auto& [t, c] : rows()) {
    Status st = out.InsertUnique(t, c);  // source rows are already distinct
    assert(st.ok());
    (void)st;
  }
  return out;
}

std::vector<std::string> DefaultAttrs(size_t arity, const std::string& prefix) {
  std::vector<std::string> out;
  out.reserve(arity);
  for (size_t i = 0; i < arity; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

}  // namespace incdb
