#include "core/relation.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace incdb {

StatusOr<size_t> Relation::AttrIndex(const std::string& name) const {
  size_t found = attrs_.size();
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == name) {
      if (found != attrs_.size()) {
        return Status::InvalidArgument("ambiguous attribute: " + name);
      }
      found = i;
    }
  }
  if (found == attrs_.size()) {
    return Status::NotFound("no attribute named " + name);
  }
  return found;
}

Status Relation::Insert(const Tuple& t, uint64_t count) {
  if (t.arity() != attrs_.size()) {
    return Status::InvalidArgument(
        "arity mismatch: tuple " + t.ToString() + " into relation of arity " +
        std::to_string(attrs_.size()));
  }
  if (count > 0) rows_[t] += count;
  return Status::OK();
}

void Relation::Add(std::initializer_list<Value> values, uint64_t count) {
  Status st = Insert(Tuple(values), count);
  assert(st.ok());
  (void)st;
}

uint64_t Relation::Count(const Tuple& t) const {
  auto it = rows_.find(t);
  return it == rows_.end() ? 0 : it->second;
}

uint64_t Relation::TotalSize() const {
  uint64_t total = 0;
  for (const auto& [t, c] : rows_) total += c;
  return total;
}

Relation Relation::ToSet() const {
  Relation out(attrs_);
  for (const auto& [t, c] : rows_) out.rows_[t] = 1;
  return out;
}

bool Relation::IsSet() const {
  for (const auto& [t, c] : rows_) {
    if (c != 1) return false;
  }
  return true;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (const auto& [t, c] : rows_) out.push_back(t);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<Tuple, uint64_t>> Relation::SortedRows() const {
  std::vector<std::pair<Tuple, uint64_t>> out(rows_.begin(), rows_.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool Relation::SubBagOf(const Relation& other) const {
  for (const auto& [t, c] : rows_) {
    if (other.Count(t) < c) return false;
  }
  return true;
}

std::string Relation::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << attrs_[i];
  }
  os << ") {";
  bool first = true;
  for (const auto& [t, c] : SortedRows()) {
    os << (first ? " " : ", ") << t.ToString();
    if (c != 1) os << "×" << c;
    first = false;
  }
  os << " }";
  return os.str();
}

std::vector<std::string> DefaultAttrs(size_t arity, const std::string& prefix) {
  std::vector<std::string> out;
  out.reserve(arity);
  for (size_t i = 0; i < arity; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

}  // namespace incdb
