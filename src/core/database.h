#ifndef INCDB_CORE_DATABASE_H_
#define INCDB_CORE_DATABASE_H_

/// \file database.h
/// \brief Incomplete relational instances D: named relations over
/// Const ∪ Null, with the paper's §2 notions Const(D), Null(D), dom(D) —
/// now *snapshot-versioned* for mutation-under-read safety.
///
/// **Storage model.** A Database holds an immutable *instance*: a map from
/// relation names to shared, immutable relations, each stamped with a
/// process-globally unique version. Mutation never edits a published
/// instance in place — it builds a new instance (copy-on-write at relation
/// granularity: untouched relations are shared by pointer) and publishes it
/// atomically. Two consequences the engine is built on:
///
///  * **Snapshots are O(#relations).** Snapshot() (and plain copies) share
///    every relation with the source; a snapshot pinned before a mutation
///    keeps observing the pre-mutation rows, whatever the writer does.
///  * **Version stamps identify data.** Every distinct relation *state*
///    ever produced in the process carries a distinct version stamp; equal
///    stamps imply the same shared immutable rows. The result cache
///    (eval/result_cache.h) keys on them.
///
/// **Thread-safety contract.** Snapshot(), Begin()/Commit() and the
/// single-relation mutators (Put/Drop) may race with each other on one
/// Database: writers serialise on an internal mutex and publish atomically,
/// and Snapshot() atomically pins the latest published instance. Direct
/// reads (Find/at/relations()/...) on a Database that is being concurrently
/// mutated are NOT synchronised — concurrent readers must pin a Snapshot()
/// and read that (the Session facade does exactly this). mutable_at() is a
/// single-threaded convenience and must never race with anything.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/relation.h"
#include "core/status.h"

namespace incdb {

/// \brief Row-level difference between two states of one relation.
///
/// `new_state = old_state + plus − minus` as bags: `plus` holds the inserted
/// rows with multiplicities, `minus` the deleted ones. Both carry the
/// relation's schema. Produced by Database::Commit (from Txn-recorded
/// deltas or a bag diff) and consumed by the incremental result maintenance
/// layer (eval/delta.h).
struct RelationDelta {
  Relation plus;
  Relation minus;
  bool Empty() const { return plus.Empty() && minus.Empty(); }
};

struct CommitInfo;

/// \brief An incomplete database instance.
///
/// A map from relation names to Relations. A database is *complete* iff it
/// mentions no nulls. Relation name lookup is case-sensitive.
class Database {
 private:
  /// One named relation: shared immutable rows + the version stamp of the
  /// state. Stamps come from a process-wide counter, so distinct states
  /// never collide (two entries with equal stamps share the same object).
  struct Entry {
    std::shared_ptr<const Relation> rel;
    uint64_t version = 0;
  };
  using RelMap = std::map<std::string, Entry>;

  /// An immutable published instance. `epoch` is the stamp of the last
  /// mutation that produced it (0 for the empty database) — it changes
  /// whenever *anything* changes, which is what whole-database consumers
  /// (Dom over the active domain) key on.
  struct Instance {
    RelMap rels;
    uint64_t epoch = 0;
  };
  using InstPtr = std::shared_ptr<const Instance>;

 public:
  Database();
  ~Database() = default;

  /// Copies share every relation with the source (copy-on-write); the copy
  /// is a pinned snapshot of `other` and safe even while `other` keeps
  /// mutating. Mutating the copy never affects the source.
  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  /// Adds (or replaces) a relation; the new state gets a fresh version.
  /// Safe against concurrent Snapshot()/Commit(); not against concurrent
  /// direct reads of this same object (pin a snapshot for those).
  void Put(const std::string& name, Relation rel);

  /// Removes a relation; OK whether or not it was present (returns
  /// NotFound when absent, with the database unchanged either way).
  Status Drop(const std::string& name);

  bool Has(const std::string& name) const;
  /// Copying lookup; prefer Find() for read-only access (Get copies the
  /// whole relation, which schema checks and scans must not pay for).
  StatusOr<Relation> Get(const std::string& name) const;
  /// Borrowed lookup: a pointer into this database's current instance, or
  /// nullptr when absent. The pointee is immutable; the pointer stays
  /// valid as long as *some* Database/snapshot still references this
  /// relation state (hold the Database, or a Snapshot(), while using it).
  const Relation* Find(const std::string& name) const;
  /// Unchecked access; aborts if absent (for internal use after validation).
  const Relation& at(const std::string& name) const;
  /// In-place mutable access: detaches a private copy of the relation (and
  /// instance) if shared, bumps its version, and returns the detached
  /// relation. Single-threaded only — the returned pointer writes through
  /// to this database's current instance, so it must not race with any
  /// other access (snapshots taken *before* the call stay unaffected).
  Relation* mutable_at(const std::string& name);

  /// \brief Iterable view of (name, relation) pairs, insertion-agnostic
  /// (map order). Keeps the underlying instance alive, so the view — and
  /// every reference obtained from it — survives later mutations of the
  /// source database. Supports `for (const auto& [name, rel] : db.relations())`.
  class RelationsView {
   public:
    class const_iterator {
     public:
      using value_type = std::pair<const std::string&, const Relation&>;
      value_type operator*() const { return {it_->first, *it_->second.rel}; }
      const_iterator& operator++() {
        ++it_;
        return *this;
      }
      bool operator!=(const const_iterator& o) const { return it_ != o.it_; }
      bool operator==(const const_iterator& o) const { return it_ == o.it_; }

     private:
      friend class RelationsView;
      explicit const_iterator(RelMap::const_iterator it) : it_(it) {}
      RelMap::const_iterator it_;
    };

    const_iterator begin() const { return const_iterator(inst_->rels.begin()); }
    const_iterator end() const { return const_iterator(inst_->rels.end()); }
    size_t size() const { return inst_->rels.size(); }
    bool empty() const { return inst_->rels.empty(); }

   private:
    friend class Database;
    explicit RelationsView(InstPtr inst) : inst_(std::move(inst)) {}
    InstPtr inst_;
  };

  RelationsView relations() const { return RelationsView(inst_); }
  std::vector<std::string> RelationNames() const;

  // --- Snapshot versioning ---------------------------------------------------

  /// A pinned, immutable copy of the current instance, safe to take while
  /// writers commit concurrently. O(#relations) pointer copies; no row is
  /// copied. The snapshot is itself a Database (reads, further snapshots
  /// and even independent mutation all work on it).
  Database Snapshot() const;

  /// Version stamp of a relation's current state (0 when absent). Equal
  /// stamps ⇒ identical data (the same shared immutable relation state).
  uint64_t Version(const std::string& name) const;

  /// Stamp of the last mutation of this database (0 for a fresh empty
  /// one). Changes on every Put/Drop/Commit/mutable_at, so it fingerprints
  /// "anything changed" for whole-database consumers (Dom).
  uint64_t Epoch() const;

  /// \brief A batched, transactional mutation staged against one pinned
  /// base snapshot.
  ///
  /// Obtained from Begin(); stage any number of Put/Drop/Mutable calls,
  /// then Database::Commit() publishes them atomically: concurrent readers
  /// holding snapshots see either none or all of the batch, never a torn
  /// prefix. Reads inside the transaction (Find/Has) see the staged state.
  class Txn {
   public:
    /// Stages adding/replacing a relation.
    void Put(const std::string& name, Relation rel);
    /// Stages removing a relation (NotFound if absent in the staged view).
    Status Drop(const std::string& name);
    /// Copy-on-first-touch mutable access to a staged relation; nullptr
    /// when absent. The copy becomes part of the staged batch. Bypasses
    /// delta recording: the relation's commit delta degrades to a full
    /// bag diff (see Deltas()).
    Relation* Mutable(const std::string& name);

    /// Stages inserting `count` occurrences of `t` into `name`, recording
    /// the row-level delta as it goes (NotFound when the relation is
    /// absent or staged dropped; arity errors pass through). Mutating a
    /// relation exclusively through Insert/Remove keeps its commit delta
    /// O(rows changed) instead of O(relation).
    Status Insert(const std::string& name, const Tuple& t, uint64_t count = 1);
    /// Stages removing `count` occurrences of `t` from `name`. NotFound /
    /// InvalidArgument when the tuple is absent or under-counted, with the
    /// staged state unchanged.
    Status Remove(const std::string& name, const Tuple& t, uint64_t count = 1);

    /// Row-level deltas recorded for the touched relations, keyed like
    /// Touched(). nullopt marks a relation touched through Put/Drop/
    /// Mutable — not delta-expressible without a full diff (Commit falls
    /// back to one when a CommitInfo is requested).
    const std::map<std::string, std::optional<RelationDelta>>& Deltas() const {
      return deltas_;
    }

    /// Staged read view: base snapshot overlaid with the staged changes.
    const Relation* Find(const std::string& name) const;
    bool Has(const std::string& name) const { return Find(name) != nullptr; }

    /// Names this transaction writes (Put/Drop/Mutable targets so far) —
    /// the result-cache invalidation hook reads this after Commit.
    std::vector<std::string> Touched() const;

   private:
    friend class Database;
    explicit Txn(InstPtr base) : base_(std::move(base)) {}
    InstPtr base_;  ///< Pinned instance the stages overlay.
    /// name → staged new state (nullopt = staged drop).
    std::map<std::string, std::optional<Relation>> staged_;
    /// name → recorded row-level delta (nullopt = unknown, full-diff only).
    std::map<std::string, std::optional<RelationDelta>> deltas_;
  };

  /// Starts a transaction against a pinned snapshot of the current state.
  /// [[nodiscard]]: a dropped Txn is a silently lost batch.
  [[nodiscard]] Txn Begin() const;

  /// Atomically publishes a transaction's staged changes on top of the
  /// *current* instance (last-writer-wins per relation against other
  /// writers; writers serialise). Every staged relation gets a fresh
  /// version stamp. Returns OK always today; a Status so conflict
  /// detection can land without an API break.
  Status Commit(Txn&& txn);

  /// Commit variant that additionally reports *what* changed: the pre- and
  /// post-commit snapshots plus per-relation row-level deltas. Deltas come
  /// from the transaction's Insert/Remove recording when valid (the base
  /// it staged from still matches the pre-commit state), else from a bag
  /// diff of old vs new rows; nullopt marks changes that are not
  /// delta-expressible (drop, schema change, relation created, or a
  /// conflicting concurrent commit). This is the input of incremental
  /// result maintenance — plain Commit skips all diff work.
  Status Commit(Txn&& txn, CommitInfo* info);

  /// Const(D): the set of constants occurring in D.
  std::set<Value> Constants() const;
  /// Null(D): ids of the nulls occurring in D.
  std::set<uint64_t> NullIds() const;
  /// dom(D) = Const(D) ∪ Null(D), as Values.
  std::set<Value> ActiveDomain() const;

  bool IsComplete() const { return NullIds().empty(); }

  /// Total number of tuple occurrences across all relations.
  uint64_t TotalSize() const;

  /// \brief Replaces each occurrence of NULL by a *fresh* marked null
  /// (the `codd` transformation of §6 "Marked nulls").
  ///
  /// Returns a copy where every occurrence of every null gets a distinct
  /// id, starting from `first_fresh_id`. The result has only Codd nulls.
  Database CoddifyNulls(uint64_t first_fresh_id = 1000000) const;

  bool operator==(const Database& other) const {
    if (inst_->rels.size() != other.inst_->rels.size()) return false;
    for (const auto& [name, e] : inst_->rels) {
      auto it = other.inst_->rels.find(name);
      if (it == other.inst_->rels.end() ||
          !e.rel->SameRows(*it->second.rel)) {
        return false;
      }
    }
    return true;
  }

  std::string ToString() const;

 private:
  explicit Database(InstPtr inst) : inst_(std::move(inst)) {}

  /// Atomically pins the latest published instance (safe vs writers).
  InstPtr LoadInstance() const;
  /// Serialised read-modify-publish: `edit` receives a private mutable
  /// copy of the current instance and returns the epoch stamp to publish.
  void PublishEdit(const std::function<void(Instance&)>& edit);

  mutable std::mutex write_mu_;  ///< Serialises mutators of this object.
  InstPtr inst_;                 ///< Current instance; atomic load/store.
};

/// \brief What one Commit changed: the boundary snapshots and per-relation
/// row-level deltas.
///
/// `pre` pins the instance the commit applied on top of and `post` the one
/// it published; `deltas` maps every touched name to the delta of its post
/// state against its pre state, or nullopt when the change is not
/// delta-expressible (drop, schema change, relation created by the
/// commit). The session's maintenance driver feeds this straight into
/// eval/delta.h's PropagateDelta.
struct CommitInfo {
  Database pre;
  Database post;
  std::map<std::string, std::optional<RelationDelta>> deltas;
};

}  // namespace incdb

#endif  // INCDB_CORE_DATABASE_H_
