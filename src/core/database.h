#ifndef INCDB_CORE_DATABASE_H_
#define INCDB_CORE_DATABASE_H_

/// \file database.h
/// \brief Incomplete relational instances D: named relations over
/// Const ∪ Null, with the paper's §2 notions Const(D), Null(D), dom(D).

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/relation.h"
#include "core/status.h"

namespace incdb {

/// \brief An incomplete database instance.
///
/// A map from relation names to Relations. A database is *complete* iff it
/// mentions no nulls. Relation name lookup is case-sensitive.
class Database {
 public:
  Database() = default;

  /// Adds (or replaces) a relation.
  void Put(const std::string& name, Relation rel);

  bool Has(const std::string& name) const;
  /// Copying lookup; prefer Find() for read-only access (Get copies the
  /// whole relation, which schema checks and scans must not pay for).
  StatusOr<Relation> Get(const std::string& name) const;
  /// Borrowed lookup: a pointer into this database's storage, or nullptr
  /// when absent. Invalidated by Put() of the same name; never by Put() of
  /// other relations (std::map nodes are stable).
  const Relation* Find(const std::string& name) const;
  /// Unchecked access; aborts if absent (for internal use after validation).
  const Relation& at(const std::string& name) const;
  Relation* mutable_at(const std::string& name);

  const std::map<std::string, Relation>& relations() const { return rels_; }
  std::vector<std::string> RelationNames() const;

  /// Const(D): the set of constants occurring in D.
  std::set<Value> Constants() const;
  /// Null(D): ids of the nulls occurring in D.
  std::set<uint64_t> NullIds() const;
  /// dom(D) = Const(D) ∪ Null(D), as Values.
  std::set<Value> ActiveDomain() const;

  bool IsComplete() const { return NullIds().empty(); }

  /// Total number of tuple occurrences across all relations.
  uint64_t TotalSize() const;

  /// \brief Replaces each occurrence of NULL by a *fresh* marked null
  /// (the `codd` transformation of §6 "Marked nulls").
  ///
  /// Returns a copy where every occurrence of every null gets a distinct
  /// id, starting from `first_fresh_id`. The result has only Codd nulls.
  Database CoddifyNulls(uint64_t first_fresh_id = 1000000) const;

  bool operator==(const Database& other) const {
    if (rels_.size() != other.rels_.size()) return false;
    for (const auto& [name, rel] : rels_) {
      auto it = other.rels_.find(name);
      if (it == other.rels_.end() || !rel.SameRows(it->second)) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  std::map<std::string, Relation> rels_;
};

}  // namespace incdb

#endif  // INCDB_CORE_DATABASE_H_
