#ifndef INCDB_CORE_INTERN_H_
#define INCDB_CORE_INTERN_H_

/// \file intern.h
/// \brief Process-wide string interning pool backing Value's string payload.
///
/// Value stores string payloads as 32-bit ids into this pool, which keeps
/// Value trivially copyable and turns string equality and hashing into O(1)
/// id comparisons on the evaluator hot paths. Ids are dense, start at 0,
/// and are stable for the lifetime of the process; interning the same
/// contents twice yields the same id. The pool only grows — the set of
/// distinct strings in a workload is bounded by the data, not by the
/// number of operations performed on it.

#include <cstddef>
#include <cstdint>
#include <string>

namespace incdb {

class StringPool {
 public:
  /// Id of `s`, interning it on first sight.
  static uint32_t Intern(const std::string& s);
  static uint32_t Intern(std::string&& s);

  /// Contents of an interned id. The returned reference is stable for the
  /// lifetime of the process.
  static const std::string& Get(uint32_t id);

  /// Number of distinct strings interned so far.
  static size_t Size();
};

}  // namespace incdb

#endif  // INCDB_CORE_INTERN_H_
