#ifndef INCDB_CORE_RELATION_H_
#define INCDB_CORE_RELATION_H_

/// \file relation.h
/// \brief Named-schema relations under set and bag semantics.
///
/// A Relation stores tuples with multiplicities (a bag). Set semantics, used
/// by most of the paper, is the multiplicity-≤1 restriction; bag semantics
/// (§4.2 "Bag semantics", [20,22]) uses the full counts. Operations that are
/// semantics-sensitive (union, difference, projection...) live in the
/// evaluators (src/eval); Relation itself only manages storage.
///
/// Storage is a flat row vector (tuple, multiplicity) in first-insertion
/// order, plus a hash→row-index multimap for O(1) lookup. Evaluators
/// iterate the flat rows directly and build join indices over row indices
/// instead of copying tuples; iteration order is deterministic
/// (insertion order) independently of hashing.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/status.h"
#include "core/tuple.h"

namespace incdb {

/// \brief A finite relation over Const ∪ Null with named attributes.
///
/// Multiplicities are explicit: #(ā, R) in the paper is `Count(ā)` here.
/// Iteration helpers return deterministic (sorted) orders so tests and
/// benchmark output are reproducible.
class Relation {
 public:
  /// One distinct tuple with its multiplicity.
  using Row = std::pair<Tuple, uint64_t>;

  Relation() = default;
  explicit Relation(std::vector<std::string> attrs)
      : attrs_(std::move(attrs)) {}

  const std::vector<std::string>& attrs() const { return attrs_; }
  size_t arity() const { return attrs_.size(); }

  /// Index of an attribute name, or error if absent/ambiguous input.
  StatusOr<size_t> AttrIndex(const std::string& name) const;

  /// Adds `count` occurrences of `t`. Arity must match.
  Status Insert(const Tuple& t, uint64_t count = 1);
  Status Insert(Tuple&& t, uint64_t count = 1);
  /// Insert for tuples the caller *guarantees* are not yet present (e.g.
  /// join outputs, whose rows are pairs of distinct rows, or merges of
  /// disjoint hash-join partitions): skips the duplicate probe and appends
  /// directly. Inserting a duplicate through this corrupts the
  /// multiplicity accounting; debug builds assert.
  Status InsertUnique(const Tuple& t, uint64_t count = 1);
  Status InsertUnique(Tuple&& t, uint64_t count = 1);
  /// Convenience for tests: aborts on arity mismatch.
  void Add(std::initializer_list<Value> values, uint64_t count = 1);

  /// Removes `count` occurrences of `t` (the inverse of Insert, backing
  /// row-level delta application). Errors on arity mismatch, on an absent
  /// tuple, and when `count` exceeds the stored multiplicity — callers
  /// applying a delta treat any error as "fall back to recomputation".
  /// Removing the *last* occurrence compacts the row storage by moving the
  /// final row into the vacated slot, so unlike Insert, Erase does NOT
  /// preserve row order or row indices.
  Status Erase(const Tuple& t, uint64_t count = 1);

  /// Pre-sizes the row storage for `n` distinct tuples.
  void Reserve(size_t n);

  /// Multiplicity #(ā, R); 0 if absent.
  uint64_t Count(const Tuple& t) const;
  bool Contains(const Tuple& t) const { return FindRow(t) != kNoRow; }

  /// Number of distinct tuples.
  size_t DistinctSize() const { return rows_.size(); }
  /// Total multiplicity (bag cardinality).
  uint64_t TotalSize() const;
  bool Empty() const { return rows_.empty(); }

  /// Collapses every multiplicity to 1 (the set underlying the bag).
  Relation ToSet() const;
  /// In-place ToSet: collapses every multiplicity of `this` to 1.
  void CollapseCounts() {
    for (Row& row : rows_) row.second = 1;
  }
  /// True iff every multiplicity is 1.
  bool IsSet() const;

  /// Replaces the attribute names without touching row storage (the
  /// zero-copy backing of the rename operator). Arity must match.
  Status RenameAttrs(std::vector<std::string> attrs);

  /// Distinct tuples in deterministic (sorted) order.
  std::vector<Tuple> SortedTuples() const;
  /// (tuple, multiplicity) pairs in deterministic order.
  std::vector<std::pair<Tuple, uint64_t>> SortedRows() const;

  /// Flat row access for evaluators: distinct tuples with multiplicities,
  /// in first-insertion order. Row *indices* are stable under further
  /// Insert calls (Insert never removes or reorders rows; Erase of a last
  /// occurrence swaps the final row into the vacated slot), but references
  /// and pointers into the vector are invalidated by Insert like any
  /// std::vector growth — only hold them across code that does not mutate
  /// this relation.
  const std::vector<Row>& rows() const { return rows_; }

  /// Set-equality (ignores attribute names, compares tuple bags).
  bool SameRows(const Relation& other) const;

  /// Row-for-row identity: same attribute names and the same rows with the
  /// same multiplicities in the same insertion order. Stronger than
  /// SameRows — this is what the chunk-partitioned parallel operators'
  /// canonical merge promises against the sequential path.
  bool IdenticalTo(const Relation& other) const {
    return attrs_ == other.attrs_ && rows_ == other.rows_;
  }

  /// All tuples of `this` form a subset (with multiplicities) of `other`.
  bool SubBagOf(const Relation& other) const;

  /// Pretty table rendering for examples and benchmark reports.
  std::string ToString() const;

 private:
  static constexpr uint32_t kNoRow = ~static_cast<uint32_t>(0);

  /// Row index of `t`, or kNoRow.
  uint32_t FindRow(const Tuple& t) const;

  std::vector<std::string> attrs_;
  std::vector<Row> rows_;
  /// Tuple hash → index into rows_ (multimap: hash collisions chain here).
  std::unordered_multimap<size_t, uint32_t> index_;
};

/// Position of `name` in the schema `attrs`, or `attrs.size()` when absent.
/// The shared attribute lookup used by the plan compiler, the executors and
/// condition resolution (schemas are short, so a linear scan beats hashing).
size_t IndexOf(const std::vector<std::string>& attrs, const std::string& name);

/// \brief A read-only, possibly borrowed view of a Relation.
///
/// Physical operators exchange RelationViews: leaf scans *borrow* the
/// database's relation in place (no row is copied), while operators that
/// materialise output *own* their result through a shared pointer, which
/// makes views cheap to pass around and to memoise for plan DAGs. A
/// borrowed view must not outlive the relation it points into. Renaming
/// wraps the same rows with replacement attribute names, so renames of
/// borrowed scans stay copy-free too.
class RelationView {
 public:
  RelationView() = default;

  /// Borrows `rel` in place; the caller guarantees it outlives the view.
  static RelationView Borrow(const Relation& rel) {
    RelationView v;
    v.rel_ = &rel;
    return v;
  }
  /// Takes ownership of a materialised relation.
  static RelationView Own(Relation&& rel) {
    RelationView v;
    v.owned_ = std::make_shared<Relation>(std::move(rel));
    v.rel_ = v.owned_.get();
    return v;
  }

  bool valid() const { return rel_ != nullptr; }
  bool borrowed() const { return rel_ != nullptr && owned_ == nullptr; }

  const std::vector<std::string>& attrs() const {
    return renamed_ ? *renamed_ : rel_->attrs();
  }
  size_t arity() const { return rel_->arity(); }
  const std::vector<Relation::Row>& rows() const { return rel_->rows(); }
  bool Empty() const { return rel_->Empty(); }
  uint64_t TotalSize() const { return rel_->TotalSize(); }
  bool Contains(const Tuple& t) const { return rel_->Contains(t); }
  uint64_t Count(const Tuple& t) const { return rel_->Count(t); }
  /// The viewed relation. Its attrs() are the *original* names; a renamed
  /// view reports the replacement names via RelationView::attrs().
  const Relation& rel() const { return *rel_; }

  /// The same rows under replacement attribute names (arity must match).
  RelationView Renamed(std::vector<std::string> attrs) const {
    RelationView v = *this;
    v.renamed_ = std::move(attrs);
    return v;
  }

  /// Converts the view into a standalone Relation carrying attrs(): moves
  /// when this view is the sole owner, copies rows when borrowed/shared.
  Relation Materialize() &&;

 private:
  std::shared_ptr<Relation> owned_;   ///< null when borrowed
  const Relation* rel_ = nullptr;     ///< always the row provider
  std::optional<std::vector<std::string>> renamed_;
};

/// Builds default attribute names a0..a{k-1}.
std::vector<std::string> DefaultAttrs(size_t arity, const std::string& prefix = "a");

}  // namespace incdb

#endif  // INCDB_CORE_RELATION_H_
