#ifndef INCDB_CORE_IO_H_
#define INCDB_CORE_IO_H_

/// \file io.h
/// \brief Plain-text (CSV-style) import/export of incomplete relations.
///
/// Format, one relation per text block:
///  * first line: comma-separated attribute names;
///  * each further line: comma-separated values. A cell is
///     - an integer (`42`) or decimal (`3.5`) literal,
///     - a single-quoted string (`'abc'`) or a bare word (read as string),
///     - `NULL` for a *fresh* Codd null, or
///     - `_k` (e.g. `_1`) for the marked null ⊥k — repeatable, which plain
///       CSV cannot express with SQL's NULL.
///
/// Whitespace around cells is trimmed. Deterministic export uses the same
/// syntax, so Load(Dump(r)) round-trips.

#include <string>

#include "core/database.h"
#include "core/relation.h"
#include "core/status.h"

namespace incdb {

/// Parses one relation from CSV text. Fresh `NULL` cells take ids starting
/// at `first_fresh_null` (pass distinct bases for distinct relations to
/// keep Codd nulls distinct database-wide).
StatusOr<Relation> LoadRelationCsv(const std::string& text,
                                   uint64_t first_fresh_null = 1000000);

/// Serialises a relation in the same format (sorted rows; marked nulls as
/// `_k`; multiplicity m > 1 emits the row m times).
std::string DumpRelationCsv(const Relation& rel);

}  // namespace incdb

#endif  // INCDB_CORE_IO_H_
