#include "core/io.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace incdb {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitCells(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool in_quote = false;
  for (char c : line) {
    if (c == '\'' ) {
      in_quote = !in_quote;
      cur += c;
    } else if (c == ',' && !in_quote) {
      cells.push_back(Trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cells.push_back(Trim(cur));
  return cells;
}

bool IsInteger(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool IsDecimal(const std::string& s) {
  if (s.find('.') == std::string::npos) return false;
  char* end = nullptr;
  std::string copy = s;
  std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0';
}

StatusOr<Value> ParseCell(const std::string& cell, uint64_t* next_fresh) {
  if (cell == "NULL") return Value::Null((*next_fresh)++);
  if (cell.size() >= 2 && cell[0] == '_' &&
      std::isdigit(static_cast<unsigned char>(cell[1]))) {
    return Value::Null(std::stoull(cell.substr(1)));
  }
  if (IsInteger(cell)) return Value::Int(std::stoll(cell));
  if (IsDecimal(cell)) return Value::Double(std::stod(cell));
  if (cell.size() >= 2 && cell.front() == '\'' && cell.back() == '\'') {
    return Value::String(cell.substr(1, cell.size() - 2));
  }
  if (cell.empty()) {
    return Status::InvalidArgument("empty cell (use NULL for missing)");
  }
  return Value::String(cell);  // bare word
}

}  // namespace

StatusOr<Relation> LoadRelationCsv(const std::string& text,
                                   uint64_t first_fresh_null) {
  std::istringstream in(text);
  std::string line;
  // Header.
  std::vector<std::string> attrs;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    attrs = SplitCells(line);
    break;
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("CSV text has no header line");
  }
  for (const std::string& a : attrs) {
    if (a.empty()) return Status::InvalidArgument("empty attribute name");
  }
  Relation rel(attrs);
  uint64_t next_fresh = first_fresh_null;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    std::vector<std::string> cells = SplitCells(line);
    if (cells.size() != attrs.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(attrs.size()) + " cells, got " +
          std::to_string(cells.size()));
    }
    Tuple t;
    for (const std::string& cell : cells) {
      auto v = ParseCell(cell, &next_fresh);
      if (!v.ok()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": " + v.status().message());
      }
      t.Append(*v);
    }
    INCDB_RETURN_IF_ERROR(rel.Insert(std::move(t), 1));
  }
  return rel;
}

std::string DumpRelationCsv(const Relation& rel) {
  std::ostringstream out;
  for (size_t i = 0; i < rel.attrs().size(); ++i) {
    if (i) out << ",";
    out << rel.attrs()[i];
  }
  out << "\n";
  for (const auto& [t, c] : rel.SortedRows()) {
    for (uint64_t rep = 0; rep < c; ++rep) {
      for (size_t i = 0; i < t.arity(); ++i) {
        if (i) out << ",";
        const Value& v = t[i];
        switch (v.kind()) {
          case ValueKind::kNull:
            out << "_" << v.null_id();
            break;
          case ValueKind::kInt:
            out << v.as_int();
            break;
          case ValueKind::kDouble:
            out << v.as_double();
            break;
          case ValueKind::kString:
            out << "'" << v.as_string() << "'";
            break;
          case ValueKind::kParam:
            // Parameters never occur in relation data; render defensively.
            out << "?" << v.param_index();
            break;
        }
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace incdb
