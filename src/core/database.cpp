#include "core/database.h"

#include <cassert>
#include <sstream>
#include <unordered_map>

namespace incdb {

void Database::Put(const std::string& name, Relation rel) {
  rels_[name] = std::move(rel);
}

bool Database::Has(const std::string& name) const {
  return rels_.count(name) > 0;
}

StatusOr<Relation> Database::Get(const std::string& name) const {
  auto it = rels_.find(name);
  if (it == rels_.end()) return Status::NotFound("no relation named " + name);
  return it->second;
}

const Relation* Database::Find(const std::string& name) const {
  auto it = rels_.find(name);
  return it == rels_.end() ? nullptr : &it->second;
}

const Relation& Database::at(const std::string& name) const {
  auto it = rels_.find(name);
  assert(it != rels_.end());
  return it->second;
}

Relation* Database::mutable_at(const std::string& name) {
  auto it = rels_.find(name);
  assert(it != rels_.end());
  return &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(rels_.size());
  for (const auto& [name, rel] : rels_) out.push_back(name);
  return out;
}

std::set<Value> Database::Constants() const {
  std::set<Value> out;
  for (const auto& [name, rel] : rels_) {
    for (const auto& [t, c] : rel.rows()) {
      for (const Value& v : t.values()) {
        if (v.is_const()) out.insert(v);
      }
    }
  }
  return out;
}

std::set<uint64_t> Database::NullIds() const {
  std::set<uint64_t> out;
  for (const auto& [name, rel] : rels_) {
    for (const auto& [t, c] : rel.rows()) {
      for (const Value& v : t.values()) {
        if (v.is_null()) out.insert(v.null_id());
      }
    }
  }
  return out;
}

std::set<Value> Database::ActiveDomain() const {
  std::set<Value> out = Constants();
  for (uint64_t id : NullIds()) out.insert(Value::Null(id));
  return out;
}

uint64_t Database::TotalSize() const {
  uint64_t total = 0;
  for (const auto& [name, rel] : rels_) total += rel.TotalSize();
  return total;
}

Database Database::CoddifyNulls(uint64_t first_fresh_id) const {
  Database out;
  uint64_t next = first_fresh_id;
  for (const auto& [name, rel] : rels_) {
    Relation fresh(rel.attrs());
    for (const auto& [t, c] : rel.SortedRows()) {
      // Each *occurrence* of a null becomes a distinct null; a tuple with
      // multiplicity m contributes m copies each with its own nulls.
      for (uint64_t i = 0; i < c; ++i) {
        Tuple nt = t;
        for (size_t j = 0; j < nt.arity(); ++j) {
          if (nt[j].is_null()) nt[j] = Value::Null(next++);
        }
        Status st = fresh.Insert(nt);
        assert(st.ok());
        (void)st;
      }
    }
    out.Put(name, std::move(fresh));
  }
  return out;
}

std::string Database::ToString() const {
  std::ostringstream os;
  for (const auto& [name, rel] : rels_) {
    os << name << rel.ToString() << "\n";
  }
  return os.str();
}

}  // namespace incdb
