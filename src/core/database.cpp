// Snapshot-versioned database (see database.h for the contract).
//
// Instances are immutable once published: every mutator builds a fresh
// Instance (sharing untouched relation states by pointer) under the writer
// mutex and publishes it with an atomic shared_ptr store; Snapshot() pins
// the latest instance with an atomic load. Version stamps come from one
// process-wide counter, so any two distinct relation states ever created
// carry distinct stamps — the invariant the result cache keys on.

#include "core/database.h"

#include <atomic>
#include <cassert>
#include <sstream>
#include <unordered_map>

namespace incdb {

namespace {

/// Process-wide version stamp source. Starts at 1 so 0 can mean "absent"
/// (Version) and "never mutated" (Epoch).
std::atomic<uint64_t> g_next_version{1};

uint64_t NextVersion() {
  return g_next_version.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Database::Database() : inst_(std::make_shared<const Instance>()) {}

Database::Database(const Database& other) : inst_(other.LoadInstance()) {}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  InstPtr snap = other.LoadInstance();
  std::lock_guard<std::mutex> lk(write_mu_);
  std::atomic_store_explicit(&inst_, std::move(snap),
                             std::memory_order_release);
  return *this;
}

Database::Database(Database&& other) noexcept : inst_(std::move(other.inst_)) {
  // Moved-from databases must stay valid (empty): tests and callers reuse
  // them after std::move.
  other.inst_ = std::make_shared<const Instance>();
}

Database& Database::operator=(Database&& other) noexcept {
  if (this == &other) return *this;
  inst_ = std::move(other.inst_);
  other.inst_ = std::make_shared<const Instance>();
  return *this;
}

Database::InstPtr Database::LoadInstance() const {
  return std::atomic_load_explicit(&inst_, std::memory_order_acquire);
}

void Database::PublishEdit(const std::function<void(Instance&)>& edit) {
  std::lock_guard<std::mutex> lk(write_mu_);
  auto next = std::make_shared<Instance>(*inst_);  // shares relation states
  edit(*next);
  std::atomic_store_explicit(&inst_, InstPtr(std::move(next)),
                             std::memory_order_release);
}

void Database::Put(const std::string& name, Relation rel) {
  auto shared = std::make_shared<const Relation>(std::move(rel));
  PublishEdit([&](Instance& next) {
    uint64_t v = NextVersion();
    next.rels[name] = Entry{std::move(shared), v};
    next.epoch = v;
  });
}

Status Database::Drop(const std::string& name) {
  bool found = false;
  PublishEdit([&](Instance& next) {
    auto it = next.rels.find(name);
    if (it == next.rels.end()) return;
    found = true;
    next.rels.erase(it);
    next.epoch = NextVersion();
  });
  if (!found) return Status::NotFound("no relation named " + name);
  return Status::OK();
}

bool Database::Has(const std::string& name) const {
  return inst_->rels.count(name) > 0;
}

StatusOr<Relation> Database::Get(const std::string& name) const {
  auto it = inst_->rels.find(name);
  if (it == inst_->rels.end()) {
    return Status::NotFound("no relation named " + name);
  }
  return *it->second.rel;
}

const Relation* Database::Find(const std::string& name) const {
  auto it = inst_->rels.find(name);
  return it == inst_->rels.end() ? nullptr : it->second.rel.get();
}

const Relation& Database::at(const std::string& name) const {
  auto it = inst_->rels.find(name);
  assert(it != inst_->rels.end());
  return *it->second.rel;
}

Relation* Database::mutable_at(const std::string& name) {
  // Detach a private copy of the relation state so snapshots pinned before
  // this call keep the old rows, then publish an instance pointing at the
  // (caller-mutable) copy. Single-threaded by contract: the caller writes
  // through the returned pointer after publication.
  auto it = inst_->rels.find(name);
  assert(it != inst_->rels.end());
  auto detached = std::make_shared<Relation>(*it->second.rel);
  Relation* raw = detached.get();
  PublishEdit([&](Instance& next) {
    uint64_t v = NextVersion();
    next.rels[name] = Entry{std::move(detached), v};
    next.epoch = v;
  });
  return raw;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(inst_->rels.size());
  for (const auto& [name, e] : inst_->rels) out.push_back(name);
  return out;
}

// --- Snapshots + transactions ------------------------------------------------

Database Database::Snapshot() const { return Database(LoadInstance()); }

uint64_t Database::Version(const std::string& name) const {
  auto it = inst_->rels.find(name);
  return it == inst_->rels.end() ? 0 : it->second.version;
}

uint64_t Database::Epoch() const { return inst_->epoch; }

void Database::Txn::Put(const std::string& name, Relation rel) {
  staged_[name] = std::move(rel);
  deltas_[name] = std::nullopt;  // wholesale replacement: no recorded delta
}

Status Database::Txn::Drop(const std::string& name) {
  if (Find(name) == nullptr) {
    return Status::NotFound("no relation named " + name);
  }
  staged_[name] = std::nullopt;
  deltas_[name] = std::nullopt;
  return Status::OK();
}

Relation* Database::Txn::Mutable(const std::string& name) {
  auto it = staged_.find(name);
  if (it != staged_.end()) {
    if (!it->second.has_value()) return nullptr;
    deltas_[name] = std::nullopt;  // arbitrary edits: recording is off
    return &*it->second;
  }
  const Relation* base = Find(name);
  if (base == nullptr) return nullptr;
  auto ins = staged_.emplace(name, *base).first;  // copy-on-first-touch
  deltas_[name] = std::nullopt;
  return &*ins->second;
}

Status Database::Txn::Insert(const std::string& name, const Tuple& t,
                             uint64_t count) {
  if (count == 0) {
    return Find(name) != nullptr
               ? Status::OK()
               : Status::NotFound("no relation named " + name);
  }
  auto it = staged_.find(name);
  Relation* r = nullptr;
  if (it != staged_.end()) {
    if (!it->second.has_value()) {
      return Status::NotFound("no relation named " + name);
    }
    r = &*it->second;
  } else {
    auto bit = base_->rels.find(name);
    if (bit == base_->rels.end()) {
      return Status::NotFound("no relation named " + name);
    }
    r = &*staged_.emplace(name, *bit->second.rel).first->second;
    deltas_.emplace(
        name, RelationDelta{Relation(r->attrs()), Relation(r->attrs())});
  }
  Status st = r->Insert(t, count);
  if (!st.ok()) return st;
  auto dit = deltas_.find(name);
  if (dit != deltas_.end() && dit->second.has_value()) {
    // Net against recorded removals first so plus/minus stay disjoint.
    RelationDelta& d = *dit->second;
    const uint64_t netted = std::min(d.minus.Count(t), count);
    if (netted > 0) {
      st = d.minus.Erase(t, netted);
      assert(st.ok());
    }
    if (count > netted) st = d.plus.Insert(t, count - netted);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status Database::Txn::Remove(const std::string& name, const Tuple& t,
                             uint64_t count) {
  if (count == 0) {
    return Find(name) != nullptr
               ? Status::OK()
               : Status::NotFound("no relation named " + name);
  }
  auto it = staged_.find(name);
  if (it != staged_.end()) {
    if (!it->second.has_value()) {
      return Status::NotFound("no relation named " + name);
    }
    Status st = it->second->Erase(t, count);
    if (!st.ok()) return st;
  } else {
    auto bit = base_->rels.find(name);
    if (bit == base_->rels.end()) {
      return Status::NotFound("no relation named " + name);
    }
    // Validate on the copy before staging it, so a failed Remove leaves
    // the transaction untouched (Touched() must not list it).
    Relation copy = *bit->second.rel;
    Status st = copy.Erase(t, count);
    if (!st.ok()) return st;
    const std::vector<std::string>& attrs = bit->second.rel->attrs();
    staged_.emplace(name, std::move(copy));
    deltas_.emplace(name, RelationDelta{Relation(attrs), Relation(attrs)});
  }
  auto dit = deltas_.find(name);
  if (dit != deltas_.end() && dit->second.has_value()) {
    RelationDelta& d = *dit->second;
    const uint64_t netted = std::min(d.plus.Count(t), count);
    Status st = Status::OK();
    if (netted > 0) {
      st = d.plus.Erase(t, netted);
      assert(st.ok());
    }
    if (count > netted) st = d.minus.Insert(t, count - netted);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

const Relation* Database::Txn::Find(const std::string& name) const {
  auto it = staged_.find(name);
  if (it != staged_.end()) {
    return it->second.has_value() ? &*it->second : nullptr;
  }
  auto bit = base_->rels.find(name);
  return bit == base_->rels.end() ? nullptr : bit->second.rel.get();
}

std::vector<std::string> Database::Txn::Touched() const {
  std::vector<std::string> out;
  out.reserve(staged_.size());
  for (const auto& [name, rel] : staged_) out.push_back(name);
  return out;
}

Database::Txn Database::Begin() const { return Txn(LoadInstance()); }

Status Database::Commit(Txn&& txn) { return Commit(std::move(txn), nullptr); }

namespace {

/// Bag diff of two same-schema relation states: plus = rows gained, minus
/// = rows lost. nullopt when the schemas differ (not delta-expressible).
std::optional<RelationDelta> DiffRelations(const Relation& oldr,
                                           const Relation& newr) {
  if (oldr.attrs() != newr.attrs()) return std::nullopt;
  RelationDelta d{Relation(newr.attrs()), Relation(newr.attrs())};
  for (const auto& [t, c] : newr.rows()) {
    const uint64_t oc = oldr.Count(t);
    if (c > oc) {
      Status st = d.plus.InsertUnique(t, c - oc);
      assert(st.ok());
      (void)st;
    }
  }
  for (const auto& [t, c] : oldr.rows()) {
    const uint64_t nc = newr.Count(t);
    if (c > nc) {
      Status st = d.minus.InsertUnique(t, c - nc);
      assert(st.ok());
      (void)st;
    }
  }
  return d;
}

}  // namespace

Status Database::Commit(Txn&& txn, CommitInfo* info) {
  // Holds the writer mutex directly (instead of going through PublishEdit)
  // so the delta report is computed against the authoritative pre-commit
  // instance, not a possibly stale pin.
  std::lock_guard<std::mutex> lk(write_mu_);
  InstPtr pre = std::atomic_load_explicit(&inst_, std::memory_order_acquire);
  if (info) info->deltas.clear();
  if (txn.staged_.empty()) {
    if (info) {
      info->pre = Database(pre);
      info->post = Database(pre);
    }
    return Status::OK();
  }
  auto next = std::make_shared<Instance>(*pre);  // shares relation states
  const auto version_in = [](const InstPtr& inst,
                             const std::string& name) -> uint64_t {
    auto it = inst->rels.find(name);
    return it == inst->rels.end() ? 0 : it->second.version;
  };
  for (auto& [name, rel] : txn.staged_) {
    if (info) {
      std::optional<RelationDelta> delta;
      auto pit = pre->rels.find(name);
      if (rel.has_value() && pit != pre->rels.end()) {
        auto rit = txn.deltas_.find(name);
        // A recorded delta is only valid against the base the transaction
        // staged from; a concurrent commit to the same relation since
        // Begin() (last-writer-wins) forces the full diff.
        if (rit != txn.deltas_.end() && rit->second.has_value() &&
            version_in(txn.base_, name) == version_in(pre, name)) {
          delta = std::move(rit->second);
        } else {
          delta = DiffRelations(*pit->second.rel, *rel);
        }
      }
      info->deltas[name] = std::move(delta);
    }
    if (rel.has_value()) {
      next->rels[name] =
          Entry{std::make_shared<const Relation>(std::move(*rel)),
                NextVersion()};
    } else {
      next->rels.erase(name);
    }
  }
  next->epoch = NextVersion();
  InstPtr published(std::move(next));
  if (info) {
    info->pre = Database(pre);
    info->post = Database(published);
  }
  std::atomic_store_explicit(&inst_, std::move(published),
                             std::memory_order_release);
  return Status::OK();
}

// --- Whole-database notions --------------------------------------------------

std::set<Value> Database::Constants() const {
  std::set<Value> out;
  for (const auto& [name, rel] : relations()) {
    for (const auto& [t, c] : rel.rows()) {
      for (const Value& v : t.values()) {
        if (v.is_const()) out.insert(v);
      }
    }
  }
  return out;
}

std::set<uint64_t> Database::NullIds() const {
  std::set<uint64_t> out;
  for (const auto& [name, rel] : relations()) {
    for (const auto& [t, c] : rel.rows()) {
      for (const Value& v : t.values()) {
        if (v.is_null()) out.insert(v.null_id());
      }
    }
  }
  return out;
}

std::set<Value> Database::ActiveDomain() const {
  std::set<Value> out = Constants();
  for (uint64_t id : NullIds()) out.insert(Value::Null(id));
  return out;
}

uint64_t Database::TotalSize() const {
  uint64_t total = 0;
  for (const auto& [name, rel] : relations()) total += rel.TotalSize();
  return total;
}

Database Database::CoddifyNulls(uint64_t first_fresh_id) const {
  Database out;
  uint64_t next = first_fresh_id;
  for (const auto& [name, rel] : relations()) {
    Relation fresh(rel.attrs());
    for (const auto& [t, c] : rel.SortedRows()) {
      // Each *occurrence* of a null becomes a distinct null; a tuple with
      // multiplicity m contributes m copies each with its own nulls.
      for (uint64_t i = 0; i < c; ++i) {
        Tuple nt = t;
        for (size_t j = 0; j < nt.arity(); ++j) {
          if (nt[j].is_null()) nt[j] = Value::Null(next++);
        }
        Status st = fresh.Insert(nt);
        assert(st.ok());
        (void)st;
      }
    }
    out.Put(name, std::move(fresh));
  }
  return out;
}

std::string Database::ToString() const {
  std::ostringstream os;
  for (const auto& [name, rel] : relations()) {
    os << name << rel.ToString() << "\n";
  }
  return os.str();
}

}  // namespace incdb
