#include "core/exec_context.h"

namespace incdb {

Status ExecContext::Check(uint64_t mem_used_bytes) const {
  if (cancel.Cancelled()) {
    StatusDetail d;
    d.site = "exec_context.cancel";
    return Status::Cancelled("execution cancelled by caller")
        .WithDetail(std::move(d));
  }
  if (has_deadline) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      StatusDetail d;
      d.elapsed_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(now - start)
              .count());
      d.deadline_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(deadline -
                                                                start)
              .count());
      return Status::DeadlineExceeded("execution deadline exceeded")
          .WithDetail(std::move(d));
    }
  }
  if (soft_mem_limit_bytes != 0 && mem_used_bytes > soft_mem_limit_bytes) {
    StatusDetail d;
    d.budget_used = mem_used_bytes;
    d.budget_limit = soft_mem_limit_bytes;
    return Status::ResourceExhausted("soft memory budget exceeded")
        .WithDetail(std::move(d));
  }
  return Status::OK();
}

}  // namespace incdb
