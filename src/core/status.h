#ifndef INCDB_CORE_STATUS_H_
#define INCDB_CORE_STATUS_H_

/// \file status.h
/// \brief Error handling primitives for the incdb public API.
///
/// incdb does not throw exceptions across its public API. Fallible
/// operations return a Status, or a StatusOr<T> when they also produce a
/// value (the RocksDB / Arrow convention).

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace incdb {

/// Machine-readable category for a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (schema mismatch, bad attribute...).
  kNotFound,          ///< A named relation/attribute does not exist.
  kUnsupported,       ///< Operation not defined for this input class.
  kResourceExhausted, ///< An enumeration exceeded its configured budget.
  kFailedPrecondition,///< System state moved under the caller (stale handle).
  kInternal,          ///< Invariant violation inside the library.
};

/// \brief The result of an operation that can fail.
///
/// A default-constructed Status is OK. Statuses are cheap to copy and
/// compare; the message is for humans, the code for programs.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "InvalidArgument: arity mismatch".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// Minimal absl::StatusOr-alike. Accessing value() on an error aborts in
/// debug builds; callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate a non-OK Status to the caller.
#define INCDB_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::incdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace incdb

#endif  // INCDB_CORE_STATUS_H_
