#ifndef INCDB_CORE_STATUS_H_
#define INCDB_CORE_STATUS_H_

/// \file status.h
/// \brief Error handling primitives for the incdb public API.
///
/// incdb does not throw exceptions across its public API. Fallible
/// operations return a Status, or a StatusOr<T> when they also produce a
/// value (the RocksDB / Arrow convention).

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace incdb {

/// Machine-readable category for a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (schema mismatch, bad attribute...).
  kNotFound,          ///< A named relation/attribute does not exist.
  kUnsupported,       ///< Operation not defined for this input class.
  kResourceExhausted, ///< An enumeration exceeded its configured budget.
  kFailedPrecondition,///< System state moved under the caller (stale handle).
  kInternal,          ///< Invariant violation inside the library.
  kDeadlineExceeded,  ///< A wall-clock deadline expired mid-execution.
  kCancelled,         ///< The caller cancelled the operation cooperatively.
};

/// Stable symbolic name for a StatusCode ("DeadlineExceeded", ...).
const char* CodeName(StatusCode code);

/// \brief Optional machine-readable context attached to a Status.
///
/// Carries the numbers an error message used to concatenate as text —
/// elapsed vs. deadline, budget used vs. limit — so callers (and the
/// fault-injection harness) can inspect *why* a limit tripped without
/// parsing strings. Fields default to zero / empty; only the ones that
/// make sense for the producing site are populated.
struct StatusDetail {
  uint64_t elapsed_us = 0;     ///< Wall-clock spent when the deadline fired.
  uint64_t deadline_us = 0;    ///< The configured deadline budget.
  uint64_t budget_used = 0;    ///< Tuples/bytes consumed when the limit hit.
  uint64_t budget_limit = 0;   ///< The configured tuple/byte limit.
  std::string site;            ///< Named producer (fault-injection site etc.).
};

/// \brief The result of an operation that can fail.
///
/// A default-constructed Status is OK. Statuses are cheap to copy and
/// compare; the message is for humans, the code for programs, and the
/// optional detail() for programs that need the numbers behind the text.
///
/// Marked [[nodiscard]] at class level: silently dropping a returned
/// Status is a compile error on every incdb target (warnings are errors —
/// see the root CMakeLists). Intentional discards must say so with a
/// (void) cast at the call site.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Attach structured context; returns *this for factory chaining.
  Status&& WithDetail(StatusDetail d) && {
    detail_ = std::make_shared<const StatusDetail>(std::move(d));
    return std::move(*this);
  }
  Status& WithDetail(StatusDetail d) & {
    detail_ = std::make_shared<const StatusDetail>(std::move(d));
    return *this;
  }

  /// Structured context, or nullptr when none was attached. The pointer
  /// is shared with copies of this Status and stays valid as long as any
  /// of them lives.
  const StatusDetail* detail() const { return detail_.get(); }

  /// Human-readable rendering, e.g. "InvalidArgument: arity mismatch".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
  std::shared_ptr<const StatusDetail> detail_;  // null for most statuses
};

/// \brief Either a value of type T or an error Status.
///
/// Minimal absl::StatusOr-alike. Accessing value() on an error aborts in
/// debug builds; callers must check ok() first. [[nodiscard]] like Status:
/// a dropped StatusOr is a dropped error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagate a non-OK Status to the caller.
#define INCDB_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::incdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace incdb

#endif  // INCDB_CORE_STATUS_H_
