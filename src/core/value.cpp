#include "core/value.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>

namespace incdb {

namespace {
uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}
double BitsDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}
}  // namespace

Value Value::Int(int64_t v) {
  return Value(ValueKind::kInt, static_cast<uint64_t>(v), {});
}

Value Value::Double(double v) {
  return Value(ValueKind::kDouble, DoubleBits(v), {});
}

Value Value::String(std::string v) {
  return Value(ValueKind::kString, 0, std::move(v));
}

Value Value::Null(uint64_t id) { return Value(ValueKind::kNull, id, {}); }

uint64_t Value::null_id() const {
  assert(is_null());
  return bits_;
}

int64_t Value::as_int() const {
  assert(kind_ == ValueKind::kInt);
  return static_cast<int64_t>(bits_);
}

double Value::as_double() const {
  assert(kind_ == ValueKind::kDouble);
  return BitsDouble(bits_);
}

const std::string& Value::as_string() const {
  assert(kind_ == ValueKind::kString);
  return str_;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == ValueKind::kString) return str_ == other.str_;
  return bits_ == other.bits_;
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case ValueKind::kNull:
      return bits_ < other.bits_;
    case ValueKind::kInt:
      return as_int() < other.as_int();
    case ValueKind::kDouble:
      return as_double() < other.as_double();
    case ValueKind::kString:
      return str_ < other.str_;
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNull:
      return "⊥" + std::to_string(bits_);
    case ValueKind::kInt:
      return std::to_string(as_int());
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << as_double();
      return os.str();
    }
    case ValueKind::kString:
      return "'" + str_ + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(kind_) * 0x9e3779b97f4a7c15ULL;
  if (kind_ == ValueKind::kString) {
    h ^= std::hash<std::string>()(str_) + 0x9e3779b97f4a7c15ULL + (h << 6);
  } else {
    h ^= std::hash<uint64_t>()(bits_) + 0x9e3779b97f4a7c15ULL + (h << 6);
  }
  return h;
}

}  // namespace incdb
