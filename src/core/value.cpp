#include "core/value.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>

namespace incdb {

namespace {
uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}
double BitsDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}
}  // namespace

Value Value::Double(double v) {
  return Value(ValueKind::kDouble, DoubleBits(v));
}

uint64_t Value::null_id() const {
  assert(is_null());
  return bits_;
}

uint32_t Value::param_index() const {
  assert(is_param());
  return static_cast<uint32_t>(bits_);
}

int64_t Value::as_int() const {
  assert(kind_ == ValueKind::kInt);
  return static_cast<int64_t>(bits_);
}

double Value::as_double() const {
  assert(kind_ == ValueKind::kDouble);
  return BitsDouble(bits_);
}

const std::string& Value::as_string() const {
  assert(kind_ == ValueKind::kString);
  return StringPool::Get(static_cast<uint32_t>(bits_));
}

uint32_t Value::string_id() const {
  assert(kind_ == ValueKind::kString);
  return static_cast<uint32_t>(bits_);
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case ValueKind::kNull:
      return bits_ < other.bits_;
    case ValueKind::kInt:
      return as_int() < other.as_int();
    case ValueKind::kDouble:
      return as_double() < other.as_double();
    case ValueKind::kString:
      // Identical ids are identical contents; otherwise order by content.
      return bits_ != other.bits_ && as_string() < other.as_string();
    case ValueKind::kParam:
      return bits_ < other.bits_;
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNull:
      return "⊥" + std::to_string(bits_);
    case ValueKind::kInt:
      return std::to_string(as_int());
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << as_double();
      return os.str();
    }
    case ValueKind::kString:
      return "'" + as_string() + "'";
    case ValueKind::kParam:
      return "?" + std::to_string(bits_);
  }
  return "?";
}

}  // namespace incdb
