#include "core/fault.h"

#include <cstdlib>

namespace incdb {

namespace {
uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return static_cast<uint64_t>(std::strtoull(v, nullptr, 10));
}

double EnvF64(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return std::strtod(v, nullptr);
}
}  // namespace

FaultInjector::FaultInjector() {
  Configure(EnvU64("INCDB_FAULT_SEED", 0),
            EnvF64("INCDB_FAULT_RATE", 0.0));
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* g = new FaultInjector();  // leaked: process-lifetime
  return *g;
}

bool FaultInjector::CompiledIn() {
#if defined(INCDB_FAULT_INJECTION)
  return true;
#else
  return false;
#endif
}

void FaultInjector::Configure(uint64_t seed, double rate) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  rate_ = rate;
  rng_.seed(seed);
  checks_ = 0;
  injected_ = 0;
}

void FaultInjector::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  rate_ = 0.0;
}

Status FaultInjector::MaybeFault(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rate_ <= 0.0) return Status::OK();
  ++checks_;
  std::uniform_real_distribution<double> roll(0.0, 1.0);
  if (roll(rng_) >= rate_) return Status::OK();
  const uint64_t n = injected_++;
  StatusDetail d;
  d.site = site;
  switch (n % 3) {
    case 0:
      return Status::Cancelled(std::string("injected cancellation at ") +
                               site)
          .WithDetail(std::move(d));
    case 1:
      return Status::ResourceExhausted(
                 std::string("injected resource exhaustion at ") + site)
          .WithDetail(std::move(d));
    default:
      return Status::ResourceExhausted(
                 std::string("injected allocation failure at ") + site)
          .WithDetail(std::move(d));
  }
}

uint64_t FaultInjector::checks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checks_;
}

uint64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

}  // namespace incdb
