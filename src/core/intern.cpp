#include "core/intern.h"

#include <cassert>
#include <deque>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>

namespace incdb {

namespace {

/// Storage is a deque (stable element addresses across growth) plus a
/// view-keyed map whose keys point into the deque. A shared_mutex keeps
/// the pool usable from concurrent readers; interning takes the exclusive
/// lock but happens once per distinct string, not once per operation.
struct PoolImpl {
  std::shared_mutex mu;
  std::deque<std::string> store;
  std::unordered_map<std::string_view, uint32_t> ids;

  static PoolImpl& Instance() {
    static PoolImpl* pool = new PoolImpl();  // leaked: ids outlive statics
    return *pool;
  }

  bool Lookup(std::string_view s, uint32_t* id) {
    std::shared_lock<std::shared_mutex> lock(mu);
    auto it = ids.find(s);
    if (it == ids.end()) return false;
    *id = it->second;
    return true;
  }

  uint32_t InternImpl(std::string&& s) {
    std::unique_lock<std::shared_mutex> lock(mu);
    auto it = ids.find(std::string_view(s));
    if (it != ids.end()) return it->second;
    assert(store.size() < std::numeric_limits<uint32_t>::max());
    uint32_t id = static_cast<uint32_t>(store.size());
    store.push_back(std::move(s));
    ids.emplace(std::string_view(store.back()), id);
    return id;
  }
};

}  // namespace

uint32_t StringPool::Intern(const std::string& s) {
  uint32_t id;
  if (PoolImpl::Instance().Lookup(std::string_view(s), &id)) return id;
  return PoolImpl::Instance().InternImpl(std::string(s));
}

uint32_t StringPool::Intern(std::string&& s) {
  uint32_t id;
  if (PoolImpl::Instance().Lookup(std::string_view(s), &id)) return id;
  return PoolImpl::Instance().InternImpl(std::move(s));
}

const std::string& StringPool::Get(uint32_t id) {
  PoolImpl& pool = PoolImpl::Instance();
  std::shared_lock<std::shared_mutex> lock(pool.mu);
  assert(id < pool.store.size());
  return pool.store[id];
}

size_t StringPool::Size() {
  PoolImpl& pool = PoolImpl::Instance();
  std::shared_lock<std::shared_mutex> lock(pool.mu);
  return pool.store.size();
}

}  // namespace incdb
