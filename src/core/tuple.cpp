#include "core/tuple.h"

#include <cassert>

namespace incdb {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out;
  out.reserve(values_.size() + other.values_.size());
  out.insert(out.end(), values_.begin(), values_.end());
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

Tuple Tuple::Project(const std::vector<size_t>& positions) const {
  std::vector<Value> out;
  out.reserve(positions.size());
  for (size_t p : positions) {
    assert(p < values_.size());
    out.push_back(values_[p]);
  }
  return Tuple(std::move(out));
}

void Tuple::AssignConcat(const Tuple& a, const Tuple& b) {
  assert(this != &a && this != &b);
  hash_ = kDirtyHash;
  values_.resize(a.values_.size() + b.values_.size());
  Value* out = values_.data();
  for (const Value& v : a.values_) *out++ = v;
  for (const Value& v : b.values_) *out++ = v;
}

void Tuple::AssignProject(const Tuple& src,
                          const std::vector<size_t>& positions) {
  assert(this != &src);
  hash_ = kDirtyHash;
  values_.resize(positions.size());
  Value* out = values_.data();
  for (size_t p : positions) {
    assert(p < src.values_.size());
    *out++ = src.values_[p];
  }
}

bool Tuple::AllConst() const {
  for (const Value& v : values_) {
    if (v.is_null()) return false;
  }
  return true;
}

bool Tuple::operator<(const Tuple& other) const {
  return values_ < other.values_;
}

size_t Tuple::ComputeHash() const {
  size_t h = 0x51ed270b;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  if (h == kDirtyHash) h = 0x51ed270b;  // keep the sentinel free
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

namespace {

/// Union-find over the distinct null ids of one Unifiable() call. The ids
/// live in a small stack buffer (heap fallback for very wide tuples), are
/// looked up by linear scan — tuples are short, so this beats hashing —
/// and each class carries at most one forced constant.
struct NullClass {
  uint64_t id = 0;
  uint32_t parent = 0;
  Value constant;
  bool has_constant = false;
};

class Unifier {
 public:
  Unifier(NullClass* buf) : cls_(buf) {}

  bool Merge(const Value& a, const Value& b) {
    if (a.is_const() && b.is_const()) return a == b;
    if (a.is_null() && b.is_null()) {
      uint32_t ra = Find(Slot(a.null_id()));
      uint32_t rb = Find(Slot(b.null_id()));
      if (ra == rb) return true;
      cls_[ra].parent = rb;
      if (cls_[ra].has_constant) {
        if (cls_[rb].has_constant) {
          return cls_[rb].constant == cls_[ra].constant;
        }
        cls_[rb].constant = cls_[ra].constant;
        cls_[rb].has_constant = true;
      }
      return true;
    }
    const Value& null = a.is_null() ? a : b;
    const Value& cons = a.is_null() ? b : a;
    uint32_t root = Find(Slot(null.null_id()));
    if (cls_[root].has_constant) return cls_[root].constant == cons;
    cls_[root].constant = cons;
    cls_[root].has_constant = true;
    return true;
  }

 private:
  uint32_t Slot(uint64_t id) {
    for (uint32_t i = 0; i < n_; ++i) {
      if (cls_[i].id == id) return i;
    }
    cls_[n_] = NullClass{id, n_, Value(), false};
    return n_++;
  }

  uint32_t Find(uint32_t i) {
    while (cls_[i].parent != i) {
      cls_[i].parent = cls_[cls_[i].parent].parent;  // path halving
      i = cls_[i].parent;
    }
    return i;
  }

  NullClass* cls_;
  uint32_t n_ = 0;
};

}  // namespace

bool Unifiable(const Tuple& a, const Tuple& b) {
  const size_t n = a.arity();
  if (n != b.arity()) return false;
  // Fast pass: reject on constant clashes, find the first null (if any).
  size_t first_null = n;
  for (size_t i = 0; i < n; ++i) {
    if (a[i].is_null() || b[i].is_null()) {
      if (first_null == n) first_null = i;
    } else if (!(a[i] == b[i])) {
      return false;
    }
  }
  if (first_null == n) return true;

  constexpr size_t kInlineIds = 16;
  NullClass inline_buf[kInlineIds];
  std::vector<NullClass> heap_buf;
  NullClass* buf = inline_buf;
  if (2 * n > kInlineIds) {
    heap_buf.resize(2 * n);
    buf = heap_buf.data();
  }
  Unifier u(buf);
  for (size_t i = first_null; i < n; ++i) {
    if (!u.Merge(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace incdb
