#include "core/tuple.h"

#include <cassert>
#include <unordered_map>

namespace incdb {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out = values_;
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

Tuple Tuple::Project(const std::vector<size_t>& positions) const {
  std::vector<Value> out;
  out.reserve(positions.size());
  for (size_t p : positions) {
    assert(p < values_.size());
    out.push_back(values_[p]);
  }
  return Tuple(std::move(out));
}

bool Tuple::AllConst() const {
  for (const Value& v : values_) {
    if (v.is_null()) return false;
  }
  return true;
}

bool Tuple::operator<(const Tuple& other) const {
  return values_ < other.values_;
}

size_t Tuple::Hash() const {
  size_t h = 0x51ed270b;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

namespace {

/// Union-find over null ids with at most one constant representative per
/// class. Merging two classes whose constants differ fails.
class Unifier {
 public:
  bool Merge(const Value& a, const Value& b) {
    if (a.is_const() && b.is_const()) return a == b;
    if (a.is_null() && b.is_null()) {
      return Union(Find(a.null_id()), Find(b.null_id()));
    }
    const Value& null = a.is_null() ? a : b;
    const Value& cons = a.is_null() ? b : a;
    uint64_t root = Find(null.null_id());
    auto [it, inserted] = constant_.try_emplace(root, cons);
    return inserted || it->second == cons;
  }

 private:
  uint64_t Find(uint64_t id) {
    auto it = parent_.find(id);
    if (it == parent_.end()) {
      parent_[id] = id;
      return id;
    }
    if (it->second == id) return id;
    uint64_t root = Find(it->second);
    parent_[id] = root;
    return root;
  }

  bool Union(uint64_t ra, uint64_t rb) {
    if (ra == rb) return true;
    parent_[ra] = rb;
    auto ita = constant_.find(ra);
    if (ita != constant_.end()) {
      Value ca = ita->second;
      constant_.erase(ita);
      auto [itb, inserted] = constant_.try_emplace(rb, ca);
      if (!inserted && !(itb->second == ca)) return false;
    }
    return true;
  }

  std::unordered_map<uint64_t, uint64_t> parent_;
  std::unordered_map<uint64_t, Value> constant_;
};

}  // namespace

bool Unifiable(const Tuple& a, const Tuple& b) {
  if (a.arity() != b.arity()) return false;
  Unifier u;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (!u.Merge(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace incdb
