#include "core/status.h"

namespace incdb {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace incdb
