#include "core/valuation.h"

#include <cassert>
#include <sstream>

namespace incdb {

Status Valuation::Bind(uint64_t id, const Value& c) {
  if (c.is_null()) {
    return Status::InvalidArgument("valuation must map nulls to constants");
  }
  map_[id] = c;
  return Status::OK();
}

Value Valuation::Lookup(uint64_t id) const {
  auto it = map_.find(id);
  return it == map_.end() ? Value::Null(id) : it->second;
}

Value Valuation::Apply(const Value& v) const {
  return v.is_null() ? Lookup(v.null_id()) : v;
}

Tuple Valuation::Apply(const Tuple& t) const {
  Tuple out = t;
  // Touch only null positions: constant components keep the copied values
  // (and an all-constant tuple keeps its cached hash).
  for (size_t i = 0; i < t.arity(); ++i) {
    if (t[i].is_null()) out.Set(i, Lookup(t[i].null_id()));
  }
  return out;
}

Relation Valuation::ApplySet(const Relation& r) const {
  Relation out(r.attrs());
  out.Reserve(r.rows().size());
  for (const auto& [t, c] : r.rows()) {
    Status st = out.Insert(Apply(t), 1);
    assert(st.ok());
    (void)st;
  }
  out.CollapseCounts();
  return out;
}

Relation Valuation::ApplyBag(const Relation& r) const {
  Relation out(r.attrs());
  out.Reserve(r.rows().size());
  for (const auto& [t, c] : r.rows()) {
    Status st = out.Insert(Apply(t), c);
    assert(st.ok());
    (void)st;
  }
  return out;
}

Database Valuation::ApplySet(const Database& d) const {
  Database out;
  for (const auto& [name, rel] : d.relations()) out.Put(name, ApplySet(rel));
  return out;
}

Database Valuation::ApplyBag(const Database& d) const {
  Database out;
  for (const auto& [name, rel] : d.relations()) out.Put(name, ApplyBag(rel));
  return out;
}

std::string Valuation::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [id, v] : map_) {
    os << (first ? "" : ", ") << "⊥" << id << "↦" << v.ToString();
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace incdb
