#ifndef INCDB_CORE_EXEC_CONTEXT_H_
#define INCDB_CORE_EXEC_CONTEXT_H_

/// \file exec_context.h
/// \brief Cooperative cancellation, deadlines and soft resource limits.
///
/// An ExecContext travels by const reference from the Session facade
/// (PreparedQuery::Execute / OpenCursor) down through the executor, the
/// parallel pools and the valuation-family / c-table / FO enumerations.
/// Every hot loop calls Check() on an amortized schedule (the same
/// 4096-row cadence as the over-budget check), so a deadline or a
/// Cancel() from another thread stops the query within a few thousand
/// row visits — partial results are discarded and the worker pool is
/// left reusable.
///
/// A default-constructed ExecContext is *unlimited* and costs one
/// predictable branch per checkpoint: no clock reads, no atomics.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "core/status.h"

namespace incdb {

/// \brief A shareable cancellation flag.
///
/// A default-constructed token is inert (never cancels, Cancel() is a
/// no-op). CancelToken::Create() makes a live token; copies share the
/// underlying flag, so the caller keeps one copy and hands another to
/// the query. Cancel() may be called from any thread, any number of
/// times.
class CancelToken {
 public:
  CancelToken() = default;

  /// A live token whose copies all observe the same Cancel(). Discarding
  /// the result would leave nothing to Cancel() through.
  [[nodiscard]] static CancelToken Create() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Request cancellation. Safe from any thread; no-op on inert tokens.
  void Cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool Cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// True when this token can ever fire (i.e. it came from Create()).
  bool cancellable() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;  // null == inert
};

/// \brief Per-execution limits: wall-clock deadline, cancellation token
/// and a soft memory budget (approximate bytes of produced tuples).
///
/// Cheap to copy (one shared_ptr refcount). Thread-compatible: workers
/// only read it, and the CancelToken flag is atomic.
struct ExecContext {
  /// Absolute wall-clock deadline (only meaningful if has_deadline).
  std::chrono::steady_clock::time_point deadline{};
  /// When the context was armed — lets errors report elapsed-vs-budget.
  std::chrono::steady_clock::time_point start{};
  bool has_deadline = false;
  CancelToken cancel;
  /// Approximate cap on bytes of tuples materialized by the execution;
  /// 0 means unlimited. Enforced cooperatively like max_tuples.
  uint64_t soft_mem_limit_bytes = 0;

  /// A context that expires `budget` from now. [[nodiscard]]: an unused
  /// context enforces nothing.
  [[nodiscard]] static ExecContext WithDeadline(
      std::chrono::nanoseconds budget) {
    ExecContext ctx;
    ctx.start = std::chrono::steady_clock::now();
    ctx.deadline = ctx.start + budget;
    ctx.has_deadline = true;
    return ctx;
  }
  [[nodiscard]] static ExecContext WithDeadlineMs(uint64_t ms) {
    return WithDeadline(std::chrono::milliseconds(ms));
  }

  ExecContext& SetCancel(CancelToken t) {
    cancel = std::move(t);
    return *this;
  }
  ExecContext& SetSoftMemLimit(uint64_t bytes) {
    soft_mem_limit_bytes = bytes;
    return *this;
  }

  /// True when Check() can ever fail — callers branch on this once and
  /// skip all clock/atomic work for the common unlimited context.
  bool limited() const {
    return has_deadline || cancel.cancellable() || soft_mem_limit_bytes != 0;
  }

  /// Full check: cancellation first (cheapest and most intentional),
  /// then deadline, then the soft memory budget against `mem_used_bytes`.
  /// Returns kCancelled / kDeadlineExceeded / kResourceExhausted with a
  /// StatusDetail carrying the numbers.
  Status Check(uint64_t mem_used_bytes = 0) const;
};

}  // namespace incdb

#endif  // INCDB_CORE_EXEC_CONTEXT_H_
