#ifndef INCDB_CERTAIN_CERTAIN_H_
#define INCDB_CERTAIN_CERTAIN_H_

/// \file certain.h
/// \brief Exact (brute-force) certain answers — the ground truth against
/// which all approximation schemes are measured.
///
///  * cert∩ (Definition 3.7): intersection-based certain answers,
///    ∩_{D' ∈ ⟦D⟧} Q(D'). Constants only.
///  * cert⊥ (Definition 3.9): certain answers with nulls,
///    { t̄ | v(t̄) ∈ Q(v(D)) for every valuation v } under CWA.
///  * □Q / ◇Q (equations 6a/6b): minimum / maximum multiplicity of a tuple
///    across possible worlds under bag semantics.
///
/// These are coNP-hard (Thm. 3.12), so the implementations enumerate a
/// finite sufficient valuation family (see valuation_family.h) and are
/// intended for small databases: ground truth for tests and the
/// precision/recall experiments (E4, E8, E9).

#include <optional>

#include "algebra/algebra.h"
#include "core/database.h"
#include "core/relation.h"
#include "core/status.h"
#include "core/valuation.h"
#include "eval/eval.h"

namespace incdb {

struct CertainOptions {
  /// Budget on the number of valuations enumerated; exceeded → error.
  uint64_t max_valuations = 4'000'000;
  EvalOptions eval;
  /// Deadline / cancellation / soft memory budget, observed between
  /// valuations *and* inside each per-world evaluation. A
  /// default-constructed context never fires.
  ExecContext ctx;
};

/// cert∩(Q, D) under CWA: ∩_v Q(v(D)), computed over the sufficient
/// family. The result consists of constant tuples only.
StatusOr<Relation> CertIntersection(const AlgPtr& q, const Database& db,
                                    const CertainOptions& opts = {});

/// cert⊥(Q, D) under CWA: { t̄ ∈ Qnaive(D) | ∀v: v(t̄) ∈ Q(v(D)) }.
/// (Candidates can be restricted to Qnaive(D): a bijective valuation onto
/// fresh constants witnesses that any certain tuple is a naive answer.)
StatusOr<Relation> CertWithNulls(const AlgPtr& q, const Database& db,
                                 const CertainOptions& opts = {});

/// Certain answers under OWA for monotone (positive) queries, where they
/// coincide with the CWA ones; returns Unsupported for queries outside the
/// positive fragment (Thm. 3.12: undecidable in general under OWA).
StatusOr<Relation> CertWithNullsOwa(const AlgPtr& q, const Database& db,
                                    const CertainOptions& opts = {});

/// Range of multiplicities of ā across possible worlds under bag semantics.
struct MultiplicityBounds {
  uint64_t min = 0;  ///< □Q(D, ā), eq. (6a)
  uint64_t max = 0;  ///< ◇Q(D, ā), eq. (6b)
};

/// Computes (□Q(D,ā), ◇Q(D,ā)) by enumerating the sufficient family;
/// valuations are applied to bags by adding up multiplicities of collapsing
/// tuples (the convention of [42] used in §4.2).
StatusOr<MultiplicityBounds> BagMultiplicityBounds(
    const AlgPtr& q, const Database& db, const Tuple& tuple,
    const CertainOptions& opts = {});

/// Explainability (in the spirit of "explainable certain answers" [4]):
/// if `tuple` is not a certain answer, returns a *counterexample
/// valuation* v with v(tuple) ∉ Q(v(D)) — a possible world where the
/// answer fails; returns nullopt when the tuple is certain. The same
/// caveats as CertWithNulls apply (generic queries, family enumeration).
StatusOr<std::optional<Valuation>> WhyNotCertain(
    const AlgPtr& q, const Database& db, const Tuple& tuple,
    const CertainOptions& opts = {});

}  // namespace incdb

#endif  // INCDB_CERTAIN_CERTAIN_H_
