#include "certain/certain.h"

#include <algorithm>

#include "certain/valuation_family.h"

namespace incdb {

namespace {

std::vector<uint64_t> NullIdVector(const Database& db) {
  std::set<uint64_t> ids = db.NullIds();
  return std::vector<uint64_t>(ids.begin(), ids.end());
}

Status CheckGeneric(const AlgPtr& q) {
  if (QueryHasOrderComparison(q)) {
    return Status::Unsupported(
        "exact certain answers require generic queries; order comparisons "
        "break the finite valuation-family argument (use the approximation "
        "schemes instead)");
  }
  return Status::OK();
}

}  // namespace

StatusOr<Relation> CertIntersection(const AlgPtr& q, const Database& db,
                                    const CertainOptions& opts) {
  INCDB_RETURN_IF_ERROR(CheckGeneric(q));
  std::vector<uint64_t> nulls = NullIdVector(db);
  std::vector<Value> consts = FamilyConstants(db, QueryConstants(q));

  bool first = true;
  Relation acc;
  Status inner = Status::OK();
  Status st = ForEachValuation(
      nulls, consts, opts.max_valuations,
      [&](const Valuation& v) {
        auto ans = EvalSet(q, v.ApplySet(db), opts.eval, opts.ctx);
        if (!ans.ok()) {
          inner = ans.status();
          return false;
        }
        if (first) {
          acc = std::move(*ans);
          first = false;
        } else {
          Relation next(acc.attrs());
          next.Reserve(acc.rows().size());
          for (const auto& [t, c] : acc.rows()) {
            if (ans->Contains(t)) {
              Status is = next.Insert(t, 1);
              if (!is.ok()) {
                inner = is;
                return false;
              }
            }
          }
          acc = std::move(next);
        }
        return !acc.Empty() || first;  // early exit once empty
      },
      opts.ctx);
  INCDB_RETURN_IF_ERROR(st);
  INCDB_RETURN_IF_ERROR(inner);
  if (first) return Status::Internal("no valuation enumerated");
  return acc;
}

StatusOr<Relation> CertWithNulls(const AlgPtr& q, const Database& db,
                                 const CertainOptions& opts) {
  INCDB_RETURN_IF_ERROR(CheckGeneric(q));
  // Candidate tuples: the naive answers (see header).
  auto naive = EvalSet(q, db, opts.eval, opts.ctx);
  if (!naive.ok()) return naive;

  std::vector<uint64_t> nulls = NullIdVector(db);
  std::vector<Value> consts = FamilyConstants(db, QueryConstants(q));

  std::vector<Tuple> candidates = naive->SortedTuples();
  std::vector<bool> alive(candidates.size(), true);
  size_t alive_count = candidates.size();

  Status inner = Status::OK();
  Status st = ForEachValuation(
      nulls, consts, opts.max_valuations,
      [&](const Valuation& v) {
        auto ans = EvalSet(q, v.ApplySet(db), opts.eval, opts.ctx);
        if (!ans.ok()) {
          inner = ans.status();
          return false;
        }
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (!alive[i]) continue;
          if (!ans->Contains(v.Apply(candidates[i]))) {
            alive[i] = false;
            --alive_count;
          }
        }
        return alive_count > 0;
      },
      opts.ctx);
  INCDB_RETURN_IF_ERROR(st);
  INCDB_RETURN_IF_ERROR(inner);

  Relation out(naive->attrs());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (alive[i]) INCDB_RETURN_IF_ERROR(out.Insert(candidates[i], 1));
  }
  return out;
}

StatusOr<Relation> CertWithNullsOwa(const AlgPtr& q, const Database& db,
                                    const CertainOptions& opts) {
  if (!IsPositive(q)) {
    return Status::Unsupported(
        "certain answers under OWA are undecidable beyond the positive "
        "fragment (Thm. 3.12); got a non-positive query");
  }
  // For monotone queries, adding tuples to a possible world can only add
  // answers, so the OWA infimum over supersets is attained at v(D) itself
  // and cert⊥ under OWA coincides with cert⊥ under CWA.
  return CertWithNulls(q, db, opts);
}

StatusOr<MultiplicityBounds> BagMultiplicityBounds(const AlgPtr& q,
                                                   const Database& db,
                                                   const Tuple& tuple,
                                                   const CertainOptions& opts) {
  INCDB_RETURN_IF_ERROR(CheckGeneric(q));
  std::vector<uint64_t> nulls = NullIdVector(db);
  std::vector<Value> consts = FamilyConstants(db, QueryConstants(q));

  MultiplicityBounds bounds;
  bounds.min = UINT64_MAX;
  bounds.max = 0;
  Status inner = Status::OK();
  Status st = ForEachValuation(
      nulls, consts, opts.max_valuations,
      [&](const Valuation& v) {
        auto ans = EvalBag(q, v.ApplyBag(db), opts.eval, opts.ctx);
        if (!ans.ok()) {
          inner = ans.status();
          return false;
        }
        uint64_t m = ans->Count(v.Apply(tuple));
        bounds.min = std::min(bounds.min, m);
        bounds.max = std::max(bounds.max, m);
        return true;
      },
      opts.ctx);
  INCDB_RETURN_IF_ERROR(st);
  INCDB_RETURN_IF_ERROR(inner);
  if (bounds.min == UINT64_MAX) bounds.min = 0;
  return bounds;
}

StatusOr<std::optional<Valuation>> WhyNotCertain(const AlgPtr& q,
                                                 const Database& db,
                                                 const Tuple& tuple,
                                                 const CertainOptions& opts) {
  INCDB_RETURN_IF_ERROR(CheckGeneric(q));
  std::vector<uint64_t> nulls = NullIdVector(db);
  std::vector<Value> consts = FamilyConstants(db, QueryConstants(q));
  std::optional<Valuation> witness;
  Status inner = Status::OK();
  Status st = ForEachValuation(
      nulls, consts, opts.max_valuations,
      [&](const Valuation& v) {
        auto ans = EvalSet(q, v.ApplySet(db), opts.eval, opts.ctx);
        if (!ans.ok()) {
          inner = ans.status();
          return false;
        }
        if (!ans->Contains(v.Apply(tuple))) {
          witness = v;
          return false;  // found a world where the answer fails
        }
        return true;
      },
      opts.ctx);
  INCDB_RETURN_IF_ERROR(st);
  INCDB_RETURN_IF_ERROR(inner);
  return witness;
}

}  // namespace incdb
