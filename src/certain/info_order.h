#ifndef INCDB_CERTAIN_INFO_ORDER_H_
#define INCDB_CERTAIN_INFO_ORDER_H_

/// \file info_order.h
/// \brief The information pre-order ⪯ on database objects and
/// information-based certain answers certO (paper §3.1–3.2).
///
/// x ⪯ y iff ⟦y⟧ ⊆ ⟦x⟧ — every possible world of y is a possible world of
/// x, i.e. y is at least as informative. Under the OWA semantics this is
/// characterised by homomorphisms: x ⪯ y iff there is a homomorphism
/// x → y that is the identity on constants.
///
/// certO(Q, x) = ⋀ Q(⟦x⟧) — the most informative object below all query
/// answers (Definition 3.3). It need not exist in general (Prop. 3.5 shows
/// failure for CWA answer domains, and full FO under OWA can have
/// infinitely many incomparable lower bounds). This module implements the
/// decidable regimes the paper isolates:
///  * Proposition 3.8: when the target admits no nulls (plain relations
///    under OWA), certO exists for every generic query and coincides with
///    cert∩ — the greatest lower bound of a family of complete relations
///    under ⪯ is their intersection;
///  * Proposition 3.4 (monotonicity): more informative inputs give more
///    informative certO answers — exposed for testing via the pre-order.

#include "certain/certain.h"
#include "core/database.h"
#include "hom/homomorphism.h"

namespace incdb {

/// x ⪯ y under the OWA reading (homomorphism witness). Reflexive and
/// transitive; not antisymmetric (hom-equivalent non-isomorphic instances
/// exist — the "cores" discussion after Thm. 3.11).
bool InformationLeq(const Database& x, const Database& y);

/// The ⪯-greatest lower bound of complete (null-free) relations:
/// their intersection (Proposition 3.8's engine). All relations must have
/// the same arity; attribute names are taken from the first.
StatusOr<Relation> GlbNullFree(const std::vector<Relation>& answers);

/// certO(Q, D) in the null-free-target regime of Proposition 3.8 —
/// computed as cert∩(Q, D) and therefore equal to it by construction;
/// kept as a named entry point so call sites state which notion they use.
StatusOr<Relation> CertInfoBased(const AlgPtr& q, const Database& db,
                                 const CertainOptions& opts = {});

}  // namespace incdb

#endif  // INCDB_CERTAIN_INFO_ORDER_H_
