#include "certain/valuation_family.h"

#include <algorithm>

namespace incdb {

std::vector<Value> FamilyConstants(const Database& db,
                                   const std::vector<Value>& query_consts) {
  std::set<Value> consts = db.Constants();
  for (const Value& v : query_consts) {
    if (v.is_const()) consts.insert(v);
  }
  // Fresh integer constants: larger than any integer in sight.
  int64_t base = 0;
  for (const Value& v : consts) {
    if (v.kind() == ValueKind::kInt) base = std::max(base, v.as_int());
  }
  // n+1 fresh constants, n = |Null(D)|: n realise the all-distinct
  // pattern; the extra one guarantees that for every fresh constant f
  // there is a family valuation avoiding f, so tuples mentioning f cannot
  // spuriously survive an intersection over the family.
  size_t n_fresh = db.NullIds().size() + 1;
  for (size_t i = 1; i <= n_fresh; ++i) {
    consts.insert(Value::Int(base + static_cast<int64_t>(i)));
  }
  return std::vector<Value>(consts.begin(), consts.end());
}

uint64_t FamilySize(size_t n_nulls, size_t n_constants) {
  uint64_t size = 1;
  for (size_t i = 0; i < n_nulls; ++i) {
    if (size > (UINT64_MAX / 2) / std::max<size_t>(n_constants, 1)) {
      return UINT64_MAX;
    }
    size *= n_constants;
  }
  return size;
}

Status ForEachValuation(const std::vector<uint64_t>& null_ids,
                        const std::vector<Value>& constants,
                        uint64_t max_valuations,
                        const std::function<bool(const Valuation&)>& fn,
                        const ExecContext& ctx) {
  if (null_ids.empty()) {
    fn(Valuation());
    return Status::OK();
  }
  if (constants.empty()) {
    return Status::InvalidArgument("empty constant pool for valuations");
  }
  uint64_t total = FamilySize(null_ids.size(), constants.size());
  if (total > max_valuations) {
    StatusDetail d;
    d.budget_used = total;
    d.budget_limit = max_valuations;
    return Status::ResourceExhausted(
               "valuation family of size " + std::to_string(total) +
               " exceeds budget " + std::to_string(max_valuations))
        .WithDetail(std::move(d));
  }
  const bool limited = ctx.limited();
  std::vector<size_t> idx(null_ids.size(), 0);
  Valuation v;
  for (size_t i = 0; i < null_ids.size(); ++i) v.Set(null_ids[i], constants[0]);
  uint64_t since_check = 0;
  while (true) {
    // Each callback typically evaluates a full query on v(D): check on a
    // much tighter cadence than the executor's per-row interval.
    if (limited && ++since_check >= 16) {
      since_check = 0;
      INCDB_RETURN_IF_ERROR(ctx.Check());
    }
    if (!fn(v)) return Status::OK();
    size_t pos = null_ids.size();
    while (pos > 0) {
      --pos;
      if (++idx[pos] < constants.size()) {
        v.Set(null_ids[pos], constants[idx[pos]]);
        break;
      }
      idx[pos] = 0;
      v.Set(null_ids[pos], constants[0]);
      if (pos == 0) return Status::OK();
    }
  }
}

}  // namespace incdb
