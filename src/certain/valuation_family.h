#ifndef INCDB_CERTAIN_VALUATION_FAMILY_H_
#define INCDB_CERTAIN_VALUATION_FAMILY_H_

/// \file valuation_family.h
/// \brief Finite valuation families sufficient for deciding certainty of
/// generic queries (paper §2, §3.2).
///
/// The space of valuations v : Null(D) → Const is infinite, but for a
/// *generic* query Q (one commuting with permutations of Const that fix
/// the constants mentioned in Q) two valuations that induce the same
/// partition of Null(D) and agree on which "relevant" constants
/// (Const(D) ∪ Const(Q)) are hit produce isomorphic possible worlds, and
/// hence the same membership of v(t̄) in Q(v(D)). A family containing, for
/// every null, every relevant constant plus |Null(D)| pairwise-distinct
/// fresh constants therefore realises every such pattern, and universal /
/// existential statements over all valuations can be decided over the
/// family. This is the engine behind cert∩, cert⊥, □Q, ◇Q and the
/// probabilistic µ_k computations.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/database.h"
#include "core/exec_context.h"
#include "core/status.h"
#include "core/valuation.h"

namespace incdb {

/// Const(D) ∪ query_consts ∪ {n+1 fresh constants}, n = |Null(D)|.
/// Fresh constants are integers guaranteed not to collide with anything in
/// the database or the query. n fresh constants realise every partition
/// pattern of the nulls; the (n+1)-st ensures every fresh constant can be
/// avoided by some family member (needed for intersection-style
/// computations like cert∩).
std::vector<Value> FamilyConstants(const Database& db,
                                   const std::vector<Value>& query_consts);

/// Number of valuations in the family: |constants|^|null_ids| (saturating).
uint64_t FamilySize(size_t n_nulls, size_t n_constants);

/// Invokes `fn` on every valuation mapping the given nulls into the given
/// constants (|constants|^|null_ids| calls). `fn` returns false to stop
/// early. Returns ResourceExhausted if the family exceeds `max_valuations`.
/// The enumeration observes `ctx` (deadline / cancellation / soft memory
/// budget) between valuations — a default-constructed context never fires.
Status ForEachValuation(const std::vector<uint64_t>& null_ids,
                        const std::vector<Value>& constants,
                        uint64_t max_valuations,
                        const std::function<bool(const Valuation&)>& fn,
                        const ExecContext& ctx = {});

}  // namespace incdb

#endif  // INCDB_CERTAIN_VALUATION_FAMILY_H_
