#include "certain/info_order.h"

namespace incdb {

bool InformationLeq(const Database& x, const Database& y) {
  return ExistsHomomorphism(x, y, HomClass::kAny);
}

StatusOr<Relation> GlbNullFree(const std::vector<Relation>& answers) {
  if (answers.empty()) {
    return Status::InvalidArgument("glb of an empty family is undefined");
  }
  Relation acc = answers[0].ToSet();
  for (size_t i = 1; i < answers.size(); ++i) {
    if (answers[i].arity() != acc.arity()) {
      return Status::InvalidArgument("glb: arity mismatch");
    }
    Relation next(acc.attrs());
    for (const auto& [t, c] : acc.rows()) {
      if (!t.AllConst()) {
        return Status::InvalidArgument(
            "GlbNullFree expects complete (null-free) relations");
      }
      if (answers[i].Contains(t)) {
        INCDB_RETURN_IF_ERROR(next.Insert(t, 1));
      }
    }
    acc = std::move(next);
  }
  return acc;
}

StatusOr<Relation> CertInfoBased(const AlgPtr& q, const Database& db,
                                 const CertainOptions& opts) {
  // Proposition 3.8: with a null-free OWA answer domain, certO = cert∩.
  return CertIntersection(q, db, opts);
}

}  // namespace incdb
