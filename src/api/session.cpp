// Session facade implementation (see api/session.h for the contract).
//
// Prepare = parse → translate → CompileCached on the *parameterized*
// algebra (the session's private PlanCache keys placeholders by index, so
// one query template is one entry). Execute = pin snapshot → stale guard →
// result-cache probe → BindPlanParams (clone-substitute over the affected
// nodes, no rewrite pass re-runs) → Execute against the snapshot. The
// cursor streams the maximal unary operator chain at the plan root over
// its own pinned snapshot; everything below it is materialised once
// through ExecuteNode.

#include "api/session.h"

#include <atomic>
#include <cctype>

#include "approx/approx.h"
#include "core/fault.h"
#include "eval/batch.h"
#include "eval/delta.h"
#include "sql/translate.h"

namespace incdb {

namespace internal {

struct SessionState {
  Database db;
  EvalOptions opts;
  uint64_t max_valuations;
  PlanCache cache;
  ResultCache results;
  std::atomic<uint64_t> prepares{0};
  std::atomic<uint64_t> executes{0};
  std::atomic<uint64_t> cursors{0};
  std::atomic<uint64_t> stale_retries{0};

  SessionState(Database d, EvalOptions o)
      : db(std::move(d)),
        opts(o),
        max_valuations(CertainOptions{}.max_valuations) {}
};

}  // namespace internal

using internal::SessionState;

// The unit of transparent re-preparation: everything CheckFresh guards
// and Execute/OpenCursor read must be swapped together, or a retry racing
// a concurrent execution could pair a new plan with old scan schemas.
struct PreparedQuery::Compiled {
  PlanPtr plan;  ///< Parameterized template; bound per Execute.
  /// Query-identity prefix of result-cache keys (the plan-cache key bytes
  /// at (re-)Prepare time).
  std::string key_prefix;
  /// (relation, schema at (re-)Prepare) for every scanned relation — what
  /// CheckFresh compares against the pinned snapshot.
  std::vector<std::pair<std::string, std::vector<std::string>>> scan_schemas;
};

// --- SQL error annotation ----------------------------------------------------

Status AnnotateSqlError(const Status& st, const std::string& sql) {
  if (st.ok()) return st;
  const std::string& msg = st.message();
  const std::string marker = " at offset ";
  size_t p = msg.rfind(marker);
  if (p == std::string::npos) return st;
  size_t digits = p + marker.size();
  size_t end = digits;
  while (end < msg.size() &&
         std::isdigit(static_cast<unsigned char>(msg[end]))) {
    ++end;
  }
  if (end == digits) return st;
  size_t off = 0;
  for (size_t i = digits; i < end; ++i) {
    off = off * 10 + static_cast<size_t>(msg[i] - '0');
  }
  if (off > sql.size()) off = sql.size();
  // The offset may point one past the input (parser errors at EOF report
  // sql.size()) or at trailing whitespace/newlines; rendering those
  // verbatim puts the caret under an empty line or a blank column. Clamp
  // to the last non-whitespace byte at or before the offset so the caret
  // lands under the token the parser actually stopped at.
  size_t caret = off;
  if (caret >= sql.size()) caret = sql.empty() ? 0 : sql.size() - 1;
  while (caret > 0 &&
         std::isspace(static_cast<unsigned char>(sql[caret]))) {
    --caret;
  }
  // Quote the line containing the caret with the caret under the byte.
  size_t line_start =
      caret == 0 ? std::string::npos : sql.rfind('\n', caret - 1);
  line_start = line_start == std::string::npos ? 0 : line_start + 1;
  size_t line_end = sql.find('\n', caret);
  if (line_end == std::string::npos) line_end = sql.size();
  std::string annotated = msg;
  annotated += "\n  ";
  annotated.append(sql, line_start, line_end - line_start);
  annotated += "\n  ";
  annotated.append(caret - line_start, ' ');
  annotated += "^";
  return Status(st.code(), std::move(annotated));
}

namespace {

const char* ModeName(EvalMode mode) {
  switch (mode) {
    case EvalMode::kSetNaive:
      return "set";
    case EvalMode::kBagNaive:
      return "bag";
    case EvalMode::kSetSql:
      return "sql";
  }
  return "?";
}

/// Exactly param_count constants, with actionable messages for arity and
/// type mismatches.
Status ValidateBindings(const std::vector<Value>& params, size_t need) {
  if (params.size() != need) {
    return Status::InvalidArgument(
        "query expects " + std::to_string(need) + " parameter binding(s), " +
        "got " + std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i].is_const()) {
      return Status::InvalidArgument(
          "parameter ?" + std::to_string(i) +
          " must be bound to a constant, got " + params[i].ToString());
    }
  }
  return Status::OK();
}

}  // namespace

// --- Cursor ------------------------------------------------------------------

struct Cursor::Impl {
  std::shared_ptr<SessionState> state;
  PlanPtr plan;  ///< Fully bound (param_count == 0); owns the stage nodes.
  /// The database version this cursor streams: pinned at OpenCursor, so
  /// borrowed scan rows stay alive and consistent while writers commit.
  /// Declared before `scans`, which resolves against it.
  Database snapshot;
  ScanResolver scans;
  RelationView base;
  /// Root operator chain, root first; applied bottom-up per pulled row.
  std::vector<const PhysNode*> stages;
  /// Per-stage dedup state for kDistinct stages (indexed like `stages`).
  std::vector<std::unordered_set<Tuple>> distinct_seen;
  /// Top-level multiplicity collapse: set-semantics modes with a
  /// projection in the chain may fold distinct input rows together.
  bool dedup = false;
  std::unordered_set<Tuple> seen;
  bool streaming = false;
  size_t next_row = 0;
  Tuple current;
  uint64_t current_count = 0;
  /// Deadline / cancellation context the cursor was opened with; covers
  /// the whole drain. `limited` caches ctx.limited() so an inert context
  /// costs one predictable branch per pulled row.
  ExecContext ctx;
  bool limited = false;
  /// Amortized-check counter: base rows pulled since the last ctx check.
  uint64_t visited = 0;
  /// Streaming row budget: deliveries so far vs EvalOptions::max_tuples
  /// (the materialised remainder below the chain is budgeted separately
  /// inside ExecuteNode; this bounds what the lazy chain itself emits).
  uint64_t emitted = 0;
  uint64_t max_tuples = 0;
  /// Terminal status (Cursor::status()); non-OK latches Next() to false.
  Status status = Status::OK();
  /// Vectorized drain (EvalOptions::batch_size at OpenCursor; 0 = legacy
  /// row-at-a-time pulls). RefillBatch pulls `batch` base rows at a time
  /// and pushes them through the stage chain column-wise with the same
  /// predicate programs the bulk executor uses; delivery-side dedup and
  /// the max_tuples budget still run per pop, so the delivered stream is
  /// bit-identical — only the deadline/cancel checkpoint cadence moves to
  /// batch granularity.
  size_t batch = 0;
  /// Columnar programs per stage (indexed like `stages`; null for the
  /// non-predicate stages).
  std::vector<std::unique_ptr<BatchPredicate>> stage_preds;
  /// Rows that survived the stage chain, not yet delivered.
  std::vector<Relation::Row> buf;
  size_t buf_pos = 0;
  /// Progressive refill window: starts small (a top-k caller that drains
  /// ten rows must not pay for a 1024-row transposition) and grows 8×
  /// per refill up to `batch` (16 → 128 → 1024), so full drains amortize
  /// to the configured batch size after two windows.
  size_t window = 0;
  BatchGather gather;
  Batch colbatch;
  BatchPredicate::Scratch scratch;
  SelVector sel;

  Impl(std::shared_ptr<SessionState> s, PlanPtr p, Database snap)
      : state(std::move(s)),
        plan(std::move(p)),
        snapshot(std::move(snap)),
        scans(snapshot) {}
};

namespace {
/// Cursor pulls are row-at-a-time with caller code between pulls, so the
/// check cadence is much tighter than the executor's bulk interval.
constexpr uint64_t kCursorCheckInterval = 256;

/// Pulls windows of I.batch base rows and pushes each through the stage
/// chain bottom-up, column-at-a-time, until some rows survive or the base
/// is drained. One deadline/cancel check per window. Returns non-OK only
/// for a ctx failure (the caller latches it; buffered-but-undelivered
/// rows are dropped, matching the executor's partial-result semantics).
/// Template so the (private) Cursor::Impl type is deduced, never named.
template <typename ImplT>
Status RefillBatch(ImplT& I) {
  const std::vector<Relation::Row>& rows = I.base.rows();
  while (I.buf_pos >= I.buf.size() && I.next_row < rows.size()) {
    if (I.limited) INCDB_RETURN_IF_ERROR(I.ctx.Check());
    I.window = I.window == 0 ? std::min<size_t>(I.batch, 16)
                             : std::min(I.batch, I.window * 8);
    const size_t begin = I.next_row;
    const size_t end = std::min(rows.size(), begin + I.window);
    I.next_row = end;
    I.buf.assign(rows.begin() + begin, rows.begin() + end);
    I.buf_pos = 0;
    for (size_t si = I.stages.size(); si-- > 0 && !I.buf.empty();) {
      const PhysNode* n = I.stages[si];
      switch (n->op) {
        case PhysOp::kFilterSel:
        case PhysOp::kFusedProjectFilter: {
          const bool fused = n->op == PhysOp::kFusedProjectFilter;
          const BatchPredicate& bp = *I.stage_preds[si];
          const size_t arity =
              fused ? n->left->attrs.size() : n->attrs.size();
          I.gather.Gather(I.buf, 0, I.buf.size(), bp.referenced(), arity,
                          &I.colbatch);
          I.sel.clear();
          bp.SelectTrue(I.colbatch, &I.scratch, &I.sel);
          size_t w = 0;
          for (uint32_t s : I.sel) {
            if (fused) {
              I.buf[w] = {I.buf[s].first.Project(n->proj_pos),
                          I.buf[s].second};
            } else if (w != s) {
              I.buf[w] = std::move(I.buf[s]);
            }
            ++w;
          }
          I.buf.resize(w);
          break;
        }
        case PhysOp::kProject:
          for (auto& [t, c] : I.buf) t = t.Project(n->proj_pos);
          break;
        case PhysOp::kRename:
          break;  // positional: nothing to do per row
        case PhysOp::kDistinct: {
          size_t w = 0;
          for (size_t i = 0; i < I.buf.size(); ++i) {
            if (!I.distinct_seen[si].insert(I.buf[i].first).second) continue;
            if (w != i) I.buf[w] = std::move(I.buf[i]);
            I.buf[w].second = 1;
            ++w;
          }
          I.buf.resize(w);
          break;
        }
        default:
          break;  // unreachable: OpenCursor only chains the above
      }
    }
  }
  return Status::OK();
}
}  // namespace

bool Cursor::Next() {
  if (!impl_) return false;
  Impl& I = *impl_;
  if (!I.status.ok()) return false;
  if (I.batch > 0 && !I.stages.empty()) {
    for (;;) {
      if (I.buf_pos >= I.buf.size()) {
        Status rst = RefillBatch(I);
        if (!rst.ok()) {
          I.status = std::move(rst);
          return false;
        }
        if (I.buf_pos >= I.buf.size()) return false;  // base drained
      }
      Tuple t = std::move(I.buf[I.buf_pos].first);
      uint64_t c = I.buf[I.buf_pos].second;
      ++I.buf_pos;
      if (I.dedup) {
        if (!I.seen.insert(t).second) continue;
        c = 1;
      }
      if (++I.emitted > I.max_tuples) {
        StatusDetail d;
        d.budget_used = I.emitted;
        d.budget_limit = I.max_tuples;
        I.status = Status::ResourceExhausted(
                       "cursor stream exceeded max_tuples=" +
                       std::to_string(I.max_tuples))
                       .WithDetail(std::move(d));
        return false;
      }
      I.current = std::move(t);
      I.current_count = c;
      return true;
    }
  }
  const std::vector<Relation::Row>& rows = I.base.rows();
  while (I.next_row < rows.size()) {
    if (I.limited && ++I.visited >= kCursorCheckInterval) {
      I.visited = 0;
      Status cst = I.ctx.Check();
      if (!cst.ok()) {
        I.status = std::move(cst);
        return false;
      }
    }
    Tuple t = rows[I.next_row].first;
    uint64_t c = rows[I.next_row].second;
    ++I.next_row;
    bool keep = true;
    for (size_t si = I.stages.size(); keep && si-- > 0;) {
      const PhysNode* n = I.stages[si];
      switch (n->op) {
        case PhysOp::kFilterSel:
          keep = n->pred(t) == TV3::kT;
          break;
        case PhysOp::kFusedProjectFilter:
          keep = n->pred(t) == TV3::kT;
          if (keep) t = t.Project(n->proj_pos);
          break;
        case PhysOp::kProject:
          t = t.Project(n->proj_pos);
          break;
        case PhysOp::kRename:
          break;  // positional: nothing to do per row
        case PhysOp::kDistinct:
          keep = I.distinct_seen[si].insert(t).second;
          c = 1;
          break;
        default:
          keep = false;  // unreachable: OpenCursor only chains the above
          break;
      }
    }
    if (!keep) continue;
    if (I.dedup) {
      if (!I.seen.insert(t).second) continue;
      c = 1;
    }
    if (++I.emitted > I.max_tuples) {
      StatusDetail d;
      d.budget_used = I.emitted;
      d.budget_limit = I.max_tuples;
      I.status = Status::ResourceExhausted(
                     "cursor stream exceeded max_tuples=" +
                     std::to_string(I.max_tuples))
                     .WithDetail(std::move(d));
      return false;
    }
    I.current = std::move(t);
    I.current_count = c;
    return true;
  }
  return false;
}

const Status& Cursor::status() const {
  static const Status kOk = Status::OK();
  return impl_ ? impl_->status : kOk;
}

const Tuple& Cursor::row() const {
  static const Tuple kEmpty;
  return impl_ ? impl_->current : kEmpty;
}
uint64_t Cursor::count() const { return impl_ ? impl_->current_count : 0; }
const std::vector<std::string>& Cursor::attrs() const {
  static const std::vector<std::string> kNone;
  return impl_ ? impl_->plan->root->attrs : kNone;
}
bool Cursor::streaming() const { return impl_ && impl_->streaming; }

// --- PreparedQuery -----------------------------------------------------------

Status PreparedQuery::CheckFresh(const Database& snap, const Compiled& c) {
  for (const auto& [name, attrs] : c.scan_schemas) {
    const Relation* rel = snap.Find(name);
    if (rel == nullptr) {
      return Status::FailedPrecondition(
          "prepared query is stale: relation '" + name +
          "' was dropped after Prepare; re-prepare the query");
    }
    if (rel->attrs() != attrs) {
      return Status::FailedPrecondition(
          "prepared query is stale: relation '" + name +
          "' changed schema after Prepare; re-prepare the query");
    }
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const PreparedQuery::Compiled>>
PreparedQuery::Refreshed(const Database& snap) const {
  // Recompile with the options the template originally compiled with
  // (prepared queries keep their options even if the session's changed).
  std::shared_ptr<const Compiled> old = std::atomic_load(&compiled_);
  auto plan = state_->cache.CompileCached(alg_, mode_, old->plan->opts, snap);
  if (!plan.ok()) return plan.status();
  // Drop-in compatibility: the retry must be invisible to the caller, so
  // the public contract — output attributes and parameter count — must
  // be unchanged by the recompilation.
  if ((*plan)->root->attrs != out_attrs_ ||
      (*plan)->param_count != param_count_) {
    return Status::FailedPrecondition(
        "recompiled plan is incompatible with the prepared contract");
  }
  auto fresh = std::make_shared<Compiled>();
  fresh->plan = *plan;
  fresh->key_prefix = PlanCacheKey(alg_, mode_, old->plan->opts, snap);
  for (const std::string& name : (*plan)->scanned_rels) {
    const Relation* rel = snap.Find(name);
    if (rel == nullptr) {
      return Status::Internal("re-prepared scan of unknown relation '" + name +
                              "'");
    }
    fresh->scan_schemas.emplace_back(name, rel->attrs());
  }
  return std::shared_ptr<const Compiled>(std::move(fresh));
}

StatusOr<std::shared_ptr<const PreparedQuery::Compiled>>
PreparedQuery::FreshCompiled(const Database& snap) const {
  std::shared_ptr<const Compiled> c = std::atomic_load(&compiled_);
  Status fresh = CheckFresh(snap, *c);
  if (fresh.ok()) return c;
  if (fresh.code() != StatusCode::kFailedPrecondition) return fresh;
  // Stale: the scanned relations changed under us. Re-prepare once
  // against this very snapshot; if the world healed (relation back with a
  // compatible schema) the retry is transparent, otherwise surface the
  // original structured stale error.
  auto re = Refreshed(snap);
  if (!re.ok()) return fresh;
  std::atomic_store(&compiled_, *re);
  state_->stale_retries.fetch_add(1, std::memory_order_relaxed);
  return *re;
}

std::string PreparedQuery::ResultHead(const Compiled& c,
                                      const std::vector<Value>& params) {
  std::string head = c.key_prefix;
  head += '|';
  for (const Value& v : params) AppendValueKey(&head, v);
  return head;
}

StatusOr<Relation> PreparedQuery::Execute(
    const std::vector<Value>& params) const {
  return Execute(params, ExecContext{});
}

StatusOr<Relation> PreparedQuery::Execute(const std::vector<Value>& params,
                                          const ExecContext& ctx) const {
  if (!valid()) return Status::InvalidArgument("PreparedQuery is empty");
  INCDB_RETURN_IF_ERROR(ValidateBindings(params, param_count_));
  Database snap = state_->db.Snapshot();
  INCDB_FAULT_POINT("session.snapshot_pin");
  auto compiled = FreshCompiled(snap);
  if (!compiled.ok()) return compiled.status();
  const Compiled& c = **compiled;
  state_->executes.fetch_add(1, std::memory_order_relaxed);

  const bool use_cache = state_->opts.use_result_cache;
  std::string head;
  std::vector<ResultCache::Dep> deps;
  if (use_cache) {
    head = ResultHead(c, params);
    deps.reserve(c.plan->scanned_rels.size());
    for (const std::string& name : c.plan->scanned_rels) {
      deps.emplace_back(name, snap.Version(name));
    }
    std::string rkey = ResultCache::ComposeKey(head, deps, c.plan->uses_dom,
                                               snap.Epoch());
    if (std::shared_ptr<const Relation> hit = state_->results.Lookup(rkey)) {
      return *hit;
    }
  }

  PlanPtr plan = c.plan;
  if (param_count_ > 0) {
    auto bound = BindPlanParams(c.plan, params);
    if (!bound.ok()) return bound.status();
    plan = *bound;
  }
  auto rel = incdb::Execute(plan, snap, ctx);
  if (!rel.ok()) return rel.status();
  // An injected drop here models a cache insert failing for lack of
  // memory: the execution already succeeded, so degrade gracefully by
  // returning the result uncached.
  if (use_cache && !INCDB_FAULT_DROPPED("result_cache.insert")) {
    // The *bound* plan rides along with maintainable entries — it is what
    // PropagateDelta walks on the next commit (param_count == 0).
    const bool maintainable = plan->maintainable && !plan->uses_dom;
    state_->results.Insert(head, std::make_shared<Relation>(*rel),
                           std::move(deps), c.plan->uses_dom, snap.Epoch(),
                           maintainable, maintainable ? plan : nullptr);
  }
  return rel;
}

StatusOr<Cursor> PreparedQuery::OpenCursor(
    const std::vector<Value>& params) const {
  return OpenCursor(params, ExecContext{});
}

StatusOr<Cursor> PreparedQuery::OpenCursor(const std::vector<Value>& params,
                                           const ExecContext& ctx) const {
  if (!valid()) return Status::InvalidArgument("PreparedQuery is empty");
  INCDB_RETURN_IF_ERROR(ValidateBindings(params, param_count_));
  Database snap = state_->db.Snapshot();
  INCDB_FAULT_POINT("session.snapshot_pin");
  auto compiled = FreshCompiled(snap);
  if (!compiled.ok()) return compiled.status();
  const Compiled& c = **compiled;
  if (ctx.limited()) INCDB_RETURN_IF_ERROR(ctx.Check());
  PlanPtr plan = c.plan;
  if (param_count_ > 0) {
    auto bound = BindPlanParams(c.plan, params);
    if (!bound.ok()) return bound.status();
    plan = *bound;
  }
  state_->cursors.fetch_add(1, std::memory_order_relaxed);

  auto impl = std::make_shared<Cursor::Impl>(state_, plan, std::move(snap));
  impl->ctx = ctx;
  impl->limited = ctx.limited();
  impl->max_tuples = impl->plan->opts.max_tuples;
  const bool set_semantics = impl->plan->mode != EvalMode::kBagNaive;

  // The maximal chain of row-at-a-time operators hanging off the root.
  auto streamable = [](PhysOp op) {
    switch (op) {
      case PhysOp::kFilterSel:
      case PhysOp::kFusedProjectFilter:
      case PhysOp::kProject:
      case PhysOp::kRename:
      case PhysOp::kDistinct:
        return true;
      default:
        return false;
    }
  };
  PhysPtr cur = plan->root;
  while (streamable(cur->op)) {
    impl->stages.push_back(cur.get());
    if (set_semantics && (cur->op == PhysOp::kProject ||
                          cur->op == PhysOp::kFusedProjectFilter)) {
      impl->dedup = true;  // distinct inputs may collapse: dedup at the top
    }
    cur = cur->left;
  }
  impl->distinct_seen.resize(impl->stages.size());

  // Compile the columnar program for every predicate stage up front; any
  // failure (cannot happen for plans CompileCond accepted, but cheap to
  // guard) falls back to the scalar row-at-a-time drain.
  impl->batch = impl->plan->opts.batch_size;
  if (impl->batch > 0 && !impl->stages.empty()) {
    const CondMode cmode = impl->plan->mode == EvalMode::kSetSql
                               ? CondMode::kSql
                               : CondMode::kNaive;
    impl->stage_preds.resize(impl->stages.size());
    for (size_t si = 0; si < impl->stages.size(); ++si) {
      const PhysNode* n = impl->stages[si];
      if (n->op != PhysOp::kFilterSel &&
          n->op != PhysOp::kFusedProjectFilter) {
        continue;
      }
      const std::vector<std::string>& in_attrs =
          n->op == PhysOp::kFilterSel ? n->attrs : n->left->attrs;
      auto bp = BatchPredicate::Make(n->cond, in_attrs, cmode);
      if (!bp.ok()) {
        impl->batch = 0;
        break;
      }
      impl->stage_preds[si] = std::make_unique<BatchPredicate>(std::move(*bp));
    }
  }

  if (cur->op == PhysOp::kScanView) {
    // The whole chain bottoms out at a base relation: borrow it in place
    // (from the pinned snapshot) and stream everything.
    auto view = impl->scans.Resolve(cur->rel_name, set_semantics);
    if (!view.ok()) return view.status();
    impl->base = *view;
    impl->streaming = true;
  } else {
    // Materialise the non-streamable remainder once; the chain above it
    // (if any) still streams per pull. The same context governs this
    // up-front work and the later drain: one deadline for the whole
    // cursor lifetime.
    auto rel = ExecuteNode(plan, cur, impl->snapshot, ctx);
    if (!rel.ok()) return rel.status();
    impl->base = RelationView::Own(std::move(*rel));
    impl->streaming = !impl->stages.empty();
  }

  Cursor out;
  out.impl_ = std::move(impl);
  return out;
}

size_t PreparedQuery::CountPlanOps(PhysOp op) const {
  if (!valid()) return 0;
  std::shared_ptr<const Compiled> c = std::atomic_load(&compiled_);
  return CountOps(*c->plan, op);
}

std::string PreparedQuery::Explain() const {
  if (!valid()) return "PreparedQuery(invalid)\n";
  std::shared_ptr<const Compiled> compiled = std::atomic_load(&compiled_);
  const Plan& plan = *compiled->plan;
  std::string out = "PreparedQuery[mode=";
  out += ModeName(mode_);
  out += ", params=" + std::to_string(param_count_) + "]\n";
  if (!sql_.empty()) out += "sql     : " + sql_ + "\n";
  out += "algebra : " + alg_->ToString() + "\n";
  out += "plan    :\n" + PlanToString(plan);
  static constexpr PhysOp kAllOps[] = {
      PhysOp::kScanView,      PhysOp::kFilterSel, PhysOp::kFusedProjectFilter,
      PhysOp::kProject,       PhysOp::kRename,    PhysOp::kHashJoin,
      PhysOp::kNLJoin,        PhysOp::kUnion,     PhysOp::kHashDiff,
      PhysOp::kHashIntersect, PhysOp::kDivision,  PhysOp::kUnifySemiJoin,
      PhysOp::kHashSemi,      PhysOp::kInPred,    PhysOp::kDom,
      PhysOp::kDistinct};
  out += "ops     :";
  for (PhysOp op : kAllOps) {
    size_t n = CountOps(plan, op);
    if (n > 0) {
      out += " ";
      out += ToString(op);
      out += "=" + std::to_string(n);
    }
  }
  PlanCacheStats cs = state_->cache.stats();
  out += "\ncache   : hits=" + std::to_string(cs.hits) +
         " misses=" + std::to_string(cs.misses) +
         " evictions=" + std::to_string(cs.evictions) +
         " size=" + std::to_string(cs.size) + "/" +
         std::to_string(cs.capacity) + "\n";
  ResultCacheStats rs = state_->results.stats();
  out += "results : hits=" + std::to_string(rs.hits) +
         " misses=" + std::to_string(rs.misses) +
         " evictions=" + std::to_string(rs.evictions) +
         " invalidations=" + std::to_string(rs.invalidations) +
         " maintained=" + std::to_string(rs.maintained) +
         " late_drops=" + std::to_string(rs.late_drops) +
         " size=" + std::to_string(rs.size) + "/" +
         std::to_string(rs.capacity) + "\n";
  return out;
}

// --- Session -----------------------------------------------------------------

Session::Session(Database db, EvalOptions opts)
    : state_(std::make_shared<SessionState>(std::move(db), opts)) {}

const Database& Session::db() const { return state_->db; }
Database& Session::mutable_db() { return state_->db; }

void Session::Put(const std::string& name, Relation rel) {
  {
    // Replacing a relation with identical contents would churn its version
    // stamp and invalidate every dependent cached result for nothing; skip
    // the write entirely. (Pin a snapshot so the compared rows stay alive.)
    Database snap = state_->db.Snapshot();
    const Relation* old = snap.Find(name);
    if (old != nullptr && old->IdenticalTo(rel)) return;
  }
  state_->db.Put(name, std::move(rel));
  state_->results.InvalidateRelation(name, state_->db.Version(name));
}

Status Session::Drop(const std::string& name) {
  INCDB_RETURN_IF_ERROR(state_->db.Drop(name));
  // A dropped relation has no version stamp; the post-drop epoch is a
  // valid floor because versions and epochs draw from one counter.
  state_->results.InvalidateRelation(name, state_->db.Epoch());
  return Status::OK();
}

namespace {

/// Tries to upgrade one extracted cache entry across the commit described
/// by `info`. Non-OK means "could not maintain" — the caller counts the
/// entry as invalidated (it is already out of the cache).
Status MaintainOne(SessionState& state, const CommitInfo& info,
                   ResultCache::Maintainable& e) {
  // Every dependency stamp must match the pre-commit snapshot exactly —
  // an entry computed against any older state must not absorb this delta
  // (the commits in between were never propagated into it). Touched
  // dependencies must additionally carry a row-level delta: nullopt
  // records a drop, schema change or other non-delta-expressible edit.
  for (const auto& [name, ver] : e.deps) {
    if (info.pre.Version(name) != ver) {
      return Status::FailedPrecondition("dependency '" + name +
                                        "' stamp predates the commit");
    }
    auto dit = info.deltas.find(name);
    if (dit != info.deltas.end() && !dit->second.has_value()) {
      return Status::FailedPrecondition("dependency '" + name +
                                        "' has no row-level delta");
    }
  }
  auto delta = PropagateDelta(e.plan, info);
  if (!delta.ok()) return delta.status();
  // The entry left the cache, but a pre-commit Lookup may still share the
  // relation with a reader; never mutate a result someone else holds.
  std::shared_ptr<Relation> target = e.result.use_count() == 1
                                         ? std::move(e.result)
                                         : std::make_shared<Relation>(*e.result);
  INCDB_RETURN_IF_ERROR(ApplyResultDelta(
      target.get(), *delta, e.plan->mode != EvalMode::kBagNaive));
  for (auto& [name, ver] : e.deps) {
    if (info.deltas.count(name) > 0) ver = info.post.Version(name);
  }
  e.result = std::move(target);
  state.results.FinishMaintenance(std::move(e));
  return Status::OK();
}

/// Post-commit result-cache sweep: maintainable dependent entries get the
/// commit's row-level deltas propagated through their plans and applied in
/// place; everything else (and every failure) falls back to invalidation.
void MaintainResultCache(SessionState& state, const CommitInfo& info) {
  std::vector<std::pair<std::string, uint64_t>> floors;
  floors.reserve(info.deltas.size());
  for (const auto& [name, delta] : info.deltas) {
    const uint64_t v = info.post.Version(name);
    floors.emplace_back(name, v != 0 ? v : info.post.Epoch());
  }
  auto candidates = state.results.BeginMaintenance(floors, info.post.Epoch());
  for (ResultCache::Maintainable& e : candidates) {
    if (!MaintainOne(state, info, e).ok()) state.results.NoteInvalidated();
  }
}

}  // namespace

Status Session::Mutate(const std::function<Status(Database::Txn&)>& fn) {
  Database::Txn txn = state_->db.Begin();
  INCDB_RETURN_IF_ERROR(fn(txn));
  if (state_->opts.use_result_cache && state_->opts.use_result_maintenance) {
    CommitInfo info;
    INCDB_RETURN_IF_ERROR(state_->db.Commit(std::move(txn), &info));
    MaintainResultCache(*state_, info);
    return Status::OK();
  }
  // Touched() must be read before Commit consumes the transaction.
  std::vector<std::string> touched = txn.Touched();
  INCDB_RETURN_IF_ERROR(state_->db.Commit(std::move(txn)));
  for (const std::string& name : touched) {
    const uint64_t v = state_->db.Version(name);
    state_->results.InvalidateRelation(name,
                                       v != 0 ? v : state_->db.Epoch());
  }
  return Status::OK();
}

const EvalOptions& Session::options() const { return state_->opts; }
void Session::set_options(const EvalOptions& opts) { state_->opts = opts; }
void Session::set_max_valuations(uint64_t budget) {
  state_->max_valuations = budget;
}

StatusOr<PreparedQuery> Session::Prepare(const std::string& sql,
                                         EvalMode mode) {
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return AnnotateSqlError(parsed.status(), sql);
  auto alg = SqlToAlgebra(*parsed, state_->db);
  if (!alg.ok()) return AnnotateSqlError(alg.status(), sql);
  return PrepareAlgebra(*alg, mode, sql);
}

StatusOr<PreparedQuery> Session::Prepare(const AlgPtr& q, EvalMode mode) {
  return PrepareAlgebra(q, mode, /*sql=*/"");
}

StatusOr<PreparedQuery> Session::PrepareAlgebra(AlgPtr q, EvalMode mode,
                                                std::string sql) {
  // Pin one snapshot for the whole prepare: the compiled plan, the
  // result-cache key prefix and the recorded scan schemas must agree on
  // what the database looked like.
  Database snap = state_->db.Snapshot();
  auto plan = state_->cache.CompileCached(q, mode, state_->opts, snap);
  if (!plan.ok()) return plan.status();
  state_->prepares.fetch_add(1, std::memory_order_relaxed);
  auto compiled = std::make_shared<PreparedQuery::Compiled>();
  compiled->plan = *plan;
  compiled->key_prefix = PlanCacheKey(q, mode, state_->opts, snap);
  for (const std::string& name : (*plan)->scanned_rels) {
    const Relation* rel = snap.Find(name);
    // Compilation resolved every scan against this snapshot, so the
    // relation exists; guard anyway rather than crash on an engine bug.
    if (rel == nullptr) {
      return Status::Internal("prepared scan of unknown relation '" + name +
                              "'");
    }
    compiled->scan_schemas.emplace_back(name, rel->attrs());
  }
  PreparedQuery pq;
  pq.state_ = state_;
  pq.alg_ = q;
  pq.compiled_ = std::move(compiled);
  pq.out_attrs_ = (*plan)->root->attrs;
  pq.sql_ = std::move(sql);
  pq.mode_ = mode;
  pq.param_count_ = (*plan)->param_count;
  return pq;
}

StatusOr<Relation> Session::Execute(const std::string& sql,
                                    const std::vector<Value>& params,
                                    EvalMode mode) {
  auto pq = Prepare(sql, mode);
  if (!pq.ok()) return pq.status();
  return pq->Execute(params);
}

namespace {
/// Shared prologue of the Certain* wrappers: strict binding validation,
/// then algebra-level substitution (the exact sweeps and the Fig. 2
/// translations must never see a placeholder — QueryConstants feeds Dom
/// extras).
StatusOr<AlgPtr> BindForCertain(const AlgPtr& q,
                                const std::vector<Value>& params) {
  INCDB_RETURN_IF_ERROR(ValidateBindings(params, ParamCount(q)));
  return BindParams(q, params);
}
}  // namespace

StatusOr<Relation> Session::CertainIntersection(
    const AlgPtr& q, const std::vector<Value>& params) {
  auto bound = BindForCertain(q, params);
  if (!bound.ok()) return bound.status();
  CertainOptions copts;
  copts.eval = state_->opts;
  copts.max_valuations = state_->max_valuations;
  return CertIntersection(*bound, state_->db.Snapshot(), copts);
}

StatusOr<Relation> Session::CertainWithNulls(const AlgPtr& q,
                                             const std::vector<Value>& params) {
  auto bound = BindForCertain(q, params);
  if (!bound.ok()) return bound.status();
  CertainOptions copts;
  copts.eval = state_->opts;
  copts.max_valuations = state_->max_valuations;
  return CertWithNulls(*bound, state_->db.Snapshot(), copts);
}

StatusOr<Relation> Session::CertainPlus(const AlgPtr& q,
                                        const std::vector<Value>& params) {
  auto bound = BindForCertain(q, params);
  if (!bound.ok()) return bound.status();
  return EvalPlus(*bound, state_->db.Snapshot(), state_->opts);
}

StatusOr<Relation> Session::CertainMaybe(const AlgPtr& q,
                                         const std::vector<Value>& params) {
  auto bound = BindForCertain(q, params);
  if (!bound.ok()) return bound.status();
  return EvalMaybe(*bound, state_->db.Snapshot(), state_->opts);
}

SessionStats Session::stats() const {
  SessionStats s;
  s.prepares = state_->prepares.load(std::memory_order_relaxed);
  s.executes = state_->executes.load(std::memory_order_relaxed);
  s.cursors_opened = state_->cursors.load(std::memory_order_relaxed);
  s.stale_retries = state_->stale_retries.load(std::memory_order_relaxed);
  s.plan_cache = state_->cache.stats();
  s.result_cache = state_->results.stats();
  return s;
}

void Session::ClearPlanCache() { state_->cache.Clear(); }
void Session::ClearResultCache() { state_->results.Clear(); }

}  // namespace incdb
