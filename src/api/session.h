#ifndef INCDB_API_SESSION_H_
#define INCDB_API_SESSION_H_

/// \file session.h
/// \brief The embedded-engine facade: Session + PreparedQuery + Cursor.
///
/// Everything the library exposes as loose free functions — the SQL
/// frontend (sql/translate.h), the three evaluation disciplines
/// (eval/eval.h), the physical-plan layer with its query-identity cache
/// (eval/plan.h, eval/plan_cache.h) and the certain-answer machinery
/// (certain/certain.h, approx/approx.h) — lives behind one session object
/// here:
///
///   Session sess(std::move(db));
///   auto pq = sess.Prepare(
///       "SELECT oid FROM Orders WHERE price > ? AND oid NOT IN "
///       "( SELECT oid FROM Payments )");
///   auto r1 = pq->Execute({Value::Int(30)});   // one compile ...
///   auto r2 = pq->Execute({Value::Int(40)});   // ... shared by N bindings
///   std::puts(pq->Explain().c_str());          // plan + cache stats
///
/// **Prepared, parameterized queries.** `?` placeholders in the SQL text
/// (or Value::Param leaves in a hand-built algebra tree) compile into a
/// plan *template* cached by the parameterized query shape, so N distinct
/// bindings of one template cost one Compile total — binding is a
/// clone-substitute pass over the affected plan nodes (BindPlanParams),
/// two orders of magnitude cheaper than parse + translate + compile.
///
/// **Streaming cursors.** OpenCursor() pulls rows one at a time. The
/// maximal chain of row-at-a-time operators at the plan root (filters,
/// projections, renames, DISTINCT) is evaluated lazily per pull over a
/// borrowed scan or the materialised remainder, so exists/top-k style
/// consumers of filter-shaped queries stop without paying for the full
/// result. Accumulating every (row, count) a cursor delivers yields
/// exactly Execute()'s relation.
///
/// **Threading.** One PreparedQuery may Execute()/OpenCursor() from many
/// threads concurrently: the template plan is immutable, bindings make
/// private copies, and the session plan cache is internally locked.
/// Mutating the session database (Put) concurrently with queries is not
/// synchronised — sequence schema changes externally.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "algebra/builder.h"
#include "certain/certain.h"
#include "core/database.h"
#include "core/relation.h"
#include "core/status.h"
#include "eval/eval.h"
#include "eval/plan.h"
#include "eval/plan_cache.h"

namespace incdb {

namespace internal {
struct SessionState;
}  // namespace internal

/// Counters of one session's activity; plan_cache covers the session's
/// private compiled-plan cache (prepares miss once per query shape).
struct SessionStats {
  uint64_t prepares = 0;
  uint64_t executes = 0;
  uint64_t cursors_opened = 0;
  PlanCacheStats plan_cache;
};

/// \brief Streaming row-at-a-time view of one prepared-query execution.
///
/// Obtained from PreparedQuery::OpenCursor. Next() advances to the next
/// (tuple, multiplicity) delivery; row() is valid until the next Next().
/// The cursor keeps its session alive; it must not outlive a database
/// mutation that changes the scanned relations.
class Cursor {
 public:
  Cursor() = default;

  /// Advances to the next row; false once the stream is exhausted.
  bool Next();
  /// The current tuple (after a successful Next()).
  const Tuple& row() const;
  /// Multiplicity of the current delivery. Under set-semantics modes this
  /// is always 1; under bags one tuple may arrive in several deliveries
  /// whose counts sum to its multiplicity.
  uint64_t count() const;
  /// Output attribute names.
  const std::vector<std::string>& attrs() const;
  /// True when the root operator chain is evaluated lazily per pull
  /// (false: the query shape forced full materialisation up front).
  bool streaming() const;

 private:
  friend class PreparedQuery;
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// \brief A compiled, possibly parameterized query bound to its session.
///
/// Cheap to copy (shared immutable state). Obtained from
/// Session::Prepare; executable many times with different bindings.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  bool valid() const { return plan_ != nullptr; }
  /// Number of parameter bindings Execute/OpenCursor expect.
  size_t param_count() const { return param_count_; }
  EvalMode mode() const { return mode_; }
  /// The translated (still parameterized) algebra tree.
  const AlgPtr& algebra() const { return alg_; }
  /// Output attribute names of the result relation.
  const std::vector<std::string>& output_attrs() const { return out_attrs_; }
  /// The SQL text this query was prepared from (empty for algebra input).
  const std::string& sql() const { return sql_; }

  /// Materialised execution under the given bindings. Bindings must be
  /// exactly param_count() constants (nulls/params are type errors).
  StatusOr<Relation> Execute(const std::vector<Value>& params = {}) const;

  /// Streaming execution: rows are pulled through the root operator chain
  /// on demand (see Cursor).
  StatusOr<Cursor> OpenCursor(const std::vector<Value>& params = {}) const;

  /// Human-readable plan report: the algebra, the physical operator DAG
  /// (PlanToString), per-operator counts (CountOps) and the session's
  /// plan-cache statistics.
  std::string Explain() const;

  /// Number of physical operators of one kind in the compiled template
  /// (plan-shape assertions; see CountOps in eval/plan.h).
  size_t CountPlanOps(PhysOp op) const;

 private:
  friend class Session;

  std::shared_ptr<internal::SessionState> state_;
  AlgPtr alg_;
  PlanPtr plan_;  ///< Parameterized template; bound per Execute.
  std::vector<std::string> out_attrs_;
  std::string sql_;
  EvalMode mode_ = EvalMode::kSetSql;
  size_t param_count_ = 0;
};

/// \brief An embedded-engine session owning a database, per-session
/// evaluation options and a private compiled-plan cache.
class Session {
 public:
  /// Takes ownership of `db`; `opts` are the session-wide evaluation
  /// defaults (threads, rewrite toggles, budgets) applied to every
  /// Prepare.
  explicit Session(Database db = {}, EvalOptions opts = {});

  /// Copying a Session would alias mutable state ambiguously; pass
  /// Session& (PreparedQuery/Cursor hold the shared state safely).
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  const Database& db() const;
  /// Adds or replaces a relation. A schema change naturally invalidates
  /// affected cache entries (scanned schemas are part of the plan key);
  /// do not interleave with concurrent queries on other threads.
  void Put(const std::string& name, Relation rel);
  Database& mutable_db();

  const EvalOptions& options() const;
  /// Replaces the session defaults; affects subsequent Prepare calls
  /// (already-prepared queries keep the options they compiled with).
  void set_options(const EvalOptions& opts);

  /// Parse + translate + compile SQL into a prepared query. `?`
  /// placeholders become parameters bound at execute time. Errors carry
  /// byte offsets and a caret-annotated snippet of the offending token.
  StatusOr<PreparedQuery> Prepare(const std::string& sql,
                                  EvalMode mode = EvalMode::kSetSql);
  /// Prepare a hand-built algebra tree (Value::Param leaves supported).
  StatusOr<PreparedQuery> Prepare(const AlgPtr& q,
                                  EvalMode mode = EvalMode::kSetSql);

  /// One-shot convenience: Prepare + Execute.
  StatusOr<Relation> Execute(const std::string& sql,
                             const std::vector<Value>& params = {},
                             EvalMode mode = EvalMode::kSetSql);

  // --- Certain answers, behind the same facade ---------------------------
  //
  // The exact (brute-force) notions and the Fig. 2(b) Desugar-based
  // approximations, with parameter bindings substituted into the algebra
  // before translation. All respect the session EvalOptions.

  /// cert∩(Q, D) — exact intersection-based certain answers.
  StatusOr<Relation> CertainIntersection(const AlgPtr& q,
                                         const std::vector<Value>& params = {});
  /// cert⊥(Q, D) — exact certain answers with nulls.
  StatusOr<Relation> CertainWithNulls(const AlgPtr& q,
                                      const std::vector<Value>& params = {});
  /// Q+ — the certain-answer under-approximation (sound, PTIME).
  StatusOr<Relation> CertainPlus(const AlgPtr& q,
                                 const std::vector<Value>& params = {});
  /// Q? — the possible-answer over-approximation (complete, PTIME).
  StatusOr<Relation> CertainMaybe(const AlgPtr& q,
                                  const std::vector<Value>& params = {});

  /// Budget for the exact Certain* sweeps (default CertainOptions).
  void set_max_valuations(uint64_t budget);

  SessionStats stats() const;
  void ClearPlanCache();

 private:
  StatusOr<PreparedQuery> PrepareAlgebra(AlgPtr q, EvalMode mode,
                                         std::string sql);

  std::shared_ptr<internal::SessionState> state_;
};

/// Rewrites an "... at offset N" error into a multi-line message quoting
/// `sql` with a caret under the offending byte. Statuses without an offset
/// pass through unchanged. Exposed for tests; Session::Prepare applies it
/// to every parse/translate error.
Status AnnotateSqlError(const Status& st, const std::string& sql);

}  // namespace incdb

#endif  // INCDB_API_SESSION_H_
