#ifndef INCDB_API_SESSION_H_
#define INCDB_API_SESSION_H_

/// \file session.h
/// \brief The embedded-engine facade: Session + PreparedQuery + Cursor.
///
/// Everything the library exposes as loose free functions — the SQL
/// frontend (sql/translate.h), the three evaluation disciplines
/// (eval/eval.h), the physical-plan layer with its query-identity cache
/// (eval/plan.h, eval/plan_cache.h) and the certain-answer machinery
/// (certain/certain.h, approx/approx.h) — lives behind one session object
/// here:
///
///   Session sess(std::move(db));
///   auto pq = sess.Prepare(
///       "SELECT oid FROM Orders WHERE price > ? AND oid NOT IN "
///       "( SELECT oid FROM Payments )");
///   auto r1 = pq->Execute({Value::Int(30)});   // one compile ...
///   auto r2 = pq->Execute({Value::Int(40)});   // ... shared by N bindings
///   std::puts(pq->Explain().c_str());          // plan + cache stats
///
/// **Prepared, parameterized queries.** `?` placeholders in the SQL text
/// (or Value::Param leaves in a hand-built algebra tree) compile into a
/// plan *template* cached by the parameterized query shape, so N distinct
/// bindings of one template cost one Compile total — binding is a
/// clone-substitute pass over the affected plan nodes (BindPlanParams),
/// two orders of magnitude cheaper than parse + translate + compile.
///
/// **Streaming cursors.** OpenCursor() pulls rows one at a time. The
/// maximal chain of row-at-a-time operators at the plan root (filters,
/// projections, renames, DISTINCT) is evaluated lazily per pull over a
/// borrowed scan or the materialised remainder, so exists/top-k style
/// consumers of filter-shaped queries stop without paying for the full
/// result. Accumulating every (row, count) a cursor delivers yields
/// exactly Execute()'s relation.
///
/// **Snapshot isolation.** Every Execute()/OpenCursor() pins a snapshot of
/// the session database (core/database.h) and runs entirely against it:
/// a writer committing mid-query can neither tear the result nor free the
/// rows a streaming Cursor is borrowing. Mutations go through Put()/
/// Drop()/Mutate() (a batched transaction), which publish atomically —
/// readers observe either the whole batch or none of it. A mutation that
/// drops or re-schemas a relation a PreparedQuery scans makes that query
/// *stale*: subsequent Execute/OpenCursor calls return a structured
/// kFailedPrecondition error instead of reading freed or mis-shaped rows.
///
/// **Result cache.** Repeat executions of a prepared query with equal
/// bindings against unchanged data are served from a data-fingerprint-
/// aware result cache (eval/result_cache.h): the key combines the plan
/// identity, the binding digest and the version stamps of every scanned
/// relation, so a commit to one relation invalidates exactly the entries
/// that scanned it. Toggle with EvalOptions::use_result_cache; stats are
/// in SessionStats::result_cache and Explain().
///
/// **Threading.** One PreparedQuery may Execute()/OpenCursor() from many
/// threads concurrently, and Put/Drop/Mutate may run concurrently with
/// them: the template plan is immutable, bindings make private copies,
/// queries run on pinned snapshots, and both session caches are
/// internally locked. Only set_options/mutable_db are unsynchronised —
/// sequence those externally.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "algebra/builder.h"
#include "certain/certain.h"
#include "core/database.h"
#include "core/exec_context.h"
#include "core/relation.h"
#include "core/status.h"
#include "eval/eval.h"
#include "eval/plan.h"
#include "eval/plan_cache.h"
#include "eval/result_cache.h"

namespace incdb {

namespace internal {
struct SessionState;
}  // namespace internal

/// Counters of one session's activity; plan_cache covers the session's
/// private compiled-plan cache (prepares miss once per query shape),
/// result_cache the data-fingerprint-aware result cache behind
/// PreparedQuery::Execute.
struct SessionStats {
  uint64_t prepares = 0;
  uint64_t executes = 0;
  uint64_t cursors_opened = 0;
  /// Times a stale PreparedQuery transparently re-prepared itself and
  /// retried after its scanned relations reappeared with compatible
  /// schemas (see PreparedQuery::Execute).
  uint64_t stale_retries = 0;
  PlanCacheStats plan_cache;
  ResultCacheStats result_cache;
};

/// \brief Streaming row-at-a-time view of one prepared-query execution.
///
/// Obtained from PreparedQuery::OpenCursor. Next() advances to the next
/// (tuple, multiplicity) delivery; row() is valid until the next Next().
/// The cursor keeps its session alive and pins the database snapshot it
/// opened against, so it streams one consistent version even if writers
/// commit (or drop the scanned relations) while it is being drained.
class Cursor {
 public:
  Cursor() = default;

  /// Advances to the next row; false once the stream is exhausted *or*
  /// aborted — check status() to tell the two apart.
  bool Next();
  /// Terminal stream status: OK while healthy (including normal
  /// exhaustion); kDeadlineExceeded / kCancelled when the ExecContext the
  /// cursor was opened with fired mid-drain, kResourceExhausted when the
  /// streamed deliveries exceeded EvalOptions::max_tuples. Once non-OK,
  /// Next() keeps returning false.
  const Status& status() const;
  /// The current tuple (after a successful Next()).
  const Tuple& row() const;
  /// Multiplicity of the current delivery. Under set-semantics modes this
  /// is always 1; under bags one tuple may arrive in several deliveries
  /// whose counts sum to its multiplicity.
  uint64_t count() const;
  /// Output attribute names.
  const std::vector<std::string>& attrs() const;
  /// True when the root operator chain is evaluated lazily per pull
  /// (false: the query shape forced full materialisation up front).
  bool streaming() const;

 private:
  friend class PreparedQuery;
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// \brief A compiled, possibly parameterized query bound to its session.
///
/// Cheap to copy (shared immutable state). Obtained from
/// Session::Prepare; executable many times with different bindings.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  bool valid() const { return compiled_ != nullptr; }
  /// Number of parameter bindings Execute/OpenCursor expect.
  size_t param_count() const { return param_count_; }
  EvalMode mode() const { return mode_; }
  /// The translated (still parameterized) algebra tree.
  const AlgPtr& algebra() const { return alg_; }
  /// Output attribute names of the result relation.
  const std::vector<std::string>& output_attrs() const { return out_attrs_; }
  /// The SQL text this query was prepared from (empty for algebra input).
  const std::string& sql() const { return sql_; }

  /// Materialised execution under the given bindings, against a snapshot
  /// of the session database pinned at call time. Bindings must be
  /// exactly param_count() constants (nulls/params are type errors).
  /// Repeat calls with equal bindings on unchanged data are result-cache
  /// hits (EvalOptions::use_result_cache).
  ///
  /// **Staleness.** If a scanned relation was dropped or schema-changed
  /// since Prepare, the query transparently re-prepares itself *once*
  /// against the pinned snapshot and retries, provided the recompiled
  /// plan is drop-in compatible (same output attributes and parameter
  /// count); the retry is counted in SessionStats::stale_retries. When
  /// the relation is still missing or the recompiled shape is
  /// incompatible, the structured kFailedPrecondition stale error is
  /// returned as before.
  StatusOr<Relation> Execute(const std::vector<Value>& params = {}) const;
  /// As above, with a deadline / cancellation / soft-memory context
  /// observed throughout the execution (core/exec_context.h).
  StatusOr<Relation> Execute(const std::vector<Value>& params,
                             const ExecContext& ctx) const;

  /// Streaming execution: rows are pulled through the root operator chain
  /// on demand (see Cursor). Stale handling as in Execute.
  StatusOr<Cursor> OpenCursor(const std::vector<Value>& params = {}) const;
  /// As above with an ExecContext; the deadline covers the *whole drain*:
  /// materialisation of the non-streamable remainder at open time plus
  /// every subsequent Next(), which checks the context on an amortized
  /// schedule and reports expiry through Cursor::status().
  StatusOr<Cursor> OpenCursor(const std::vector<Value>& params,
                              const ExecContext& ctx) const;

  /// Human-readable plan report: the algebra, the physical operator DAG
  /// (PlanToString), per-operator counts (CountOps) and the session's
  /// plan-cache statistics.
  std::string Explain() const;

  /// Number of physical operators of one kind in the compiled template
  /// (plan-shape assertions; see CountOps in eval/plan.h).
  size_t CountPlanOps(PhysOp op) const;

 private:
  friend class Session;

  /// The refreshable compilation artefacts, swapped as a unit when a
  /// stale query re-prepares itself: the plan template, the result-cache
  /// key prefix and the scan schemas the stale guard compares against.
  /// Held behind a shared_ptr<const> accessed with std::atomic_load /
  /// std::atomic_store so concurrent Execute/OpenCursor calls (and their
  /// retries) never observe a torn mix of old and new artefacts.
  struct Compiled;

  /// Stale guard: verifies every relation `c` scans still exists in
  /// `snap` with the schema it had at (re-)Prepare time.
  static Status CheckFresh(const Database& snap, const Compiled& c);
  /// Recompiles the template against `snap`; non-OK when compilation
  /// fails or the new plan is not drop-in compatible with this query's
  /// public contract (output attrs, parameter count).
  StatusOr<std::shared_ptr<const Compiled>> Refreshed(
      const Database& snap) const;
  /// Loads compiled_, applying the stale guard + retry-once protocol
  /// against `snap`; on a successful retry bumps stale_retries.
  StatusOr<std::shared_ptr<const Compiled>> FreshCompiled(
      const Database& snap) const;
  /// Query + binding identity head of the result-cache key: plan-cache
  /// key prefix + binding digest. The data-identity suffix (scanned
  /// version stamps, database epoch for Dom plans) is appended by
  /// ResultCache::ComposeKey.
  static std::string ResultHead(const Compiled& c,
                                const std::vector<Value>& params);

  std::shared_ptr<internal::SessionState> state_;
  AlgPtr alg_;
  /// Refreshable artefacts (see Compiled); mutable so the transparent
  /// stale retry can install the recompiled plan from const entry points.
  mutable std::shared_ptr<const Compiled> compiled_;
  std::vector<std::string> out_attrs_;
  std::string sql_;
  EvalMode mode_ = EvalMode::kSetSql;
  size_t param_count_ = 0;
};

/// \brief An embedded-engine session owning a database, per-session
/// evaluation options and a private compiled-plan cache.
class Session {
 public:
  /// Takes ownership of `db`; `opts` are the session-wide evaluation
  /// defaults (threads, rewrite toggles, budgets) applied to every
  /// Prepare.
  explicit Session(Database db = {}, EvalOptions opts = {});

  /// Copying a Session would alias mutable state ambiguously; pass
  /// Session& (PreparedQuery/Cursor hold the shared state safely).
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  const Database& db() const;
  /// Adds or replaces a relation, atomically: safe while other threads
  /// Execute/OpenCursor (they keep their pinned snapshots). A schema
  /// change invalidates affected plan-cache entries (scanned schemas are
  /// part of the plan key) and makes prepared queries that scanned the
  /// old schema stale; any change eagerly drops the result-cache entries
  /// that depend on the relation. Putting a relation identical to the
  /// current one (same attrs, rows and counts) is a no-op: the version
  /// stamp keeps and cached results survive.
  void Put(const std::string& name, Relation rel);
  /// Removes a relation atomically (NotFound when absent). Prepared
  /// queries scanning it turn stale; dependent result-cache entries drop.
  Status Drop(const std::string& name);
  /// Batched transactional mutation: `fn` stages Put/Drop/Mutable (and
  /// row-level Insert/Remove) calls on a Database::Txn pinned to the
  /// current state; on OK the batch commits atomically (concurrent
  /// readers see all of it or none). Dependent result-cache entries of
  /// *maintainable* plans are upgraded in place by propagating the
  /// commit's row-level deltas (eval/delta.h, gated on
  /// EvalOptions::use_result_maintenance); the rest are invalidated. A
  /// non-OK return discards the staged batch and is passed through.
  Status Mutate(const std::function<Status(Database::Txn&)>& fn);
  /// Unsynchronised escape hatch: direct mutation must not race with
  /// concurrent queries (prefer Put/Drop/Mutate) and bypasses the
  /// result-cache invalidation hook (version stamps still keep cached
  /// reads correct).
  Database& mutable_db();

  const EvalOptions& options() const;
  /// Replaces the session defaults; affects subsequent Prepare calls
  /// (already-prepared queries keep the options they compiled with).
  void set_options(const EvalOptions& opts);

  /// Parse + translate + compile SQL into a prepared query. `?`
  /// placeholders become parameters bound at execute time. Errors carry
  /// byte offsets and a caret-annotated snippet of the offending token.
  StatusOr<PreparedQuery> Prepare(const std::string& sql,
                                  EvalMode mode = EvalMode::kSetSql);
  /// Prepare a hand-built algebra tree (Value::Param leaves supported).
  StatusOr<PreparedQuery> Prepare(const AlgPtr& q,
                                  EvalMode mode = EvalMode::kSetSql);

  /// One-shot convenience: Prepare + Execute.
  StatusOr<Relation> Execute(const std::string& sql,
                             const std::vector<Value>& params = {},
                             EvalMode mode = EvalMode::kSetSql);

  // --- Certain answers, behind the same facade ---------------------------
  //
  // The exact (brute-force) notions and the Fig. 2(b) Desugar-based
  // approximations, with parameter bindings substituted into the algebra
  // before translation. All respect the session EvalOptions.

  /// cert∩(Q, D) — exact intersection-based certain answers.
  StatusOr<Relation> CertainIntersection(const AlgPtr& q,
                                         const std::vector<Value>& params = {});
  /// cert⊥(Q, D) — exact certain answers with nulls.
  StatusOr<Relation> CertainWithNulls(const AlgPtr& q,
                                      const std::vector<Value>& params = {});
  /// Q+ — the certain-answer under-approximation (sound, PTIME).
  StatusOr<Relation> CertainPlus(const AlgPtr& q,
                                 const std::vector<Value>& params = {});
  /// Q? — the possible-answer over-approximation (complete, PTIME).
  StatusOr<Relation> CertainMaybe(const AlgPtr& q,
                                  const std::vector<Value>& params = {});

  /// Budget for the exact Certain* sweeps (default CertainOptions).
  void set_max_valuations(uint64_t budget);

  SessionStats stats() const;
  void ClearPlanCache();
  void ClearResultCache();

 private:
  StatusOr<PreparedQuery> PrepareAlgebra(AlgPtr q, EvalMode mode,
                                         std::string sql);

  std::shared_ptr<internal::SessionState> state_;
};

/// Rewrites an "... at offset N" error into a multi-line message quoting
/// `sql` with a caret under the offending byte. Statuses without an offset
/// pass through unchanged. Exposed for tests; Session::Prepare applies it
/// to every parse/translate error.
Status AnnotateSqlError(const Status& st, const std::string& sql);

}  // namespace incdb

#endif  // INCDB_API_SESSION_H_
