#ifndef INCDB_EVAL_UNIFY_INDEX_H_
#define INCDB_EVAL_UNIFY_INDEX_H_

/// \file unify_index.h
/// \brief Null-mask index for unifiability probes, shared by the ⋉⇑
/// executor (eval/exec.cpp) and the FO evaluator's ⟦·⟧unif atom semantics
/// (logic/fo_eval.cpp).
///
/// Tuples are grouped by their null-position mask; within a group they are
/// hashed on the projection onto the constant positions. An all-constant
/// probe tuple then touches only one bucket per mask; probes containing
/// nulls fall back to a scan. Candidates are always re-verified with
/// Unifiable() (repeated marked nulls add constraints the index ignores).
/// The index references the indexed rows in place — it copies no tuples
/// and must not outlive the viewed relation.

#include <unordered_map>
#include <vector>

#include "core/relation.h"
#include "core/tuple.h"

namespace incdb {

class UnifyIndex {
 public:
  UnifyIndex(const std::vector<Relation::Row>& rows, size_t arity,
             bool use_index)
      : use_index_(use_index && arity < 64) {
    all_.reserve(rows.size());
    for (const auto& [t, c] : rows) {
      all_.push_back(&t);
      if (!use_index_) continue;
      uint64_t mask = 0;
      for (size_t i = 0; i < t.arity(); ++i) {
        if (t[i].is_null()) mask |= (1ULL << i);
      }
      Tuple key;
      ConstProjectionInto(t, mask, &key);
      groups_[mask][std::move(key)].push_back(&t);
    }
  }

  /// Probes are read-only and re-entrant: `scratch` holds the per-caller
  /// key buffer, so one index can be probed from many threads at once
  /// (each worker of the parallel ⋉⇑ owns a scratch tuple).
  bool AnyUnifiable(const Tuple& probe, Tuple* scratch) const {
    if (!use_index_ || probe.HasNull()) {
      for (const Tuple* t : all_) {
        if (Unifiable(probe, *t)) return true;
      }
      return false;
    }
    for (const auto& [mask, buckets] : groups_) {
      ConstProjectionInto(probe, mask, scratch);
      auto it = buckets.find(*scratch);
      if (it == buckets.end()) continue;
      for (const Tuple* t : it->second) {
        if (Unifiable(probe, *t)) return true;
      }
    }
    return false;
  }

 private:
  static void ConstProjectionInto(const Tuple& t, uint64_t null_mask,
                                  Tuple* out) {
    out->Clear();
    out->Reserve(t.arity());
    for (size_t i = 0; i < t.arity(); ++i) {
      if (!(null_mask & (1ULL << i))) out->Append(t[i]);
    }
  }

  bool use_index_ = true;
  std::vector<const Tuple*> all_;
  std::unordered_map<uint64_t,
                     std::unordered_map<Tuple, std::vector<const Tuple*>>>
      groups_;
};

}  // namespace incdb

#endif  // INCDB_EVAL_UNIFY_INDEX_H_
