#include "eval/verify.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/batch.h"

namespace incdb {

namespace {

CondMode VerifyCondMode(EvalMode m) {
  return m == EvalMode::kSetSql ? CondMode::kSql : CondMode::kNaive;
}

/// One verification walk over a plan. Collects nothing; fails fast with a
/// kInternal status naming the offending node by its root path.
class PlanVerifier {
 public:
  PlanVerifier(const Plan& plan, const Database* catalog)
      : plan_(plan), catalog_(catalog) {}

  Status Run() {
    if (!plan_.root) return Fail("", "plan has no root node");
    // Acyclicity first: every later traversal assumes a DAG and would
    // otherwise loop forever on a corrupted share.
    INCDB_RETURN_IF_ERROR(CheckAcyclic(plan_.root, ""));
    INCDB_RETURN_IF_ERROR(CheckNodes(plan_.root, ""));
    INCDB_RETURN_IF_ERROR(CheckRefcounts());
    INCDB_RETURN_IF_ERROR(CheckPlanSummary());
    return Status::OK();
  }

 private:
  static std::string PathName(const std::string& path) {
    return path.empty() ? "root" : "root" + path;
  }

  Status Fail(const std::string& path, const std::string& msg) const {
    return Status::Internal("plan verifier: " + PathName(path) + ": " + msg);
  }

  Status FailNode(const PhysNode& n, const std::string& path,
                  const std::string& msg) const {
    return Status::Internal("plan verifier: " + PathName(path) + " (" +
                            ToString(n.op) + "): " + msg);
  }

  /// DFS three-colouring; a grey-node revisit is a cycle through `path`.
  Status CheckAcyclic(const PhysPtr& n, const std::string& path) {
    if (!n) return Fail(path, "null child pointer");
    const PhysNode* p = n.get();
    auto it = colour_.find(p);
    if (it != colour_.end()) {
      if (it->second == kGrey) {
        return FailNode(*n, path, "cycle in the operator graph");
      }
      return Status::OK();  // black: shared subtree, already validated
    }
    colour_[p] = kGrey;
    if (n->left) INCDB_RETURN_IF_ERROR(CheckAcyclic(n->left, path + ".left"));
    if (n->right) {
      INCDB_RETURN_IF_ERROR(CheckAcyclic(n->right, path + ".right"));
    }
    colour_[p] = kBlack;
    return Status::OK();
  }

  /// Per-node structural checks; shared subtrees are validated once (their
  /// invariants do not depend on the parent).
  Status CheckNodes(const PhysPtr& n, const std::string& path) {
    if (!checked_.insert(n.get()).second) return Status::OK();
    if (n->left) INCDB_RETURN_IF_ERROR(CheckNodes(n->left, path + ".left"));
    if (n->right) INCDB_RETURN_IF_ERROR(CheckNodes(n->right, path + ".right"));
    return CheckNode(*n, path);
  }

  Status CheckNode(const PhysNode& n, const std::string& path) {
    INCDB_RETURN_IF_ERROR(CheckShape(n, path));
    switch (n.op) {
      case PhysOp::kScanView:
        return CheckScan(n, path);
      case PhysOp::kFilterSel:
        INCDB_RETURN_IF_ERROR(
            CheckSchemaEquals(n, path, n.left->attrs, "input"));
        return CheckCond(n, path, n.left->attrs);
      case PhysOp::kFusedProjectFilter:
        INCDB_RETURN_IF_ERROR(
            CheckProjection(n, path, n.proj_pos, n.left->attrs));
        return CheckCond(n, path, n.left->attrs);
      case PhysOp::kProject:
        INCDB_RETURN_IF_ERROR(CheckNoCond(n, path));
        return CheckProjection(n, path, n.proj_pos, n.left->attrs);
      case PhysOp::kRename:
        INCDB_RETURN_IF_ERROR(CheckNoCond(n, path));
        if (n.attrs.size() != n.left->attrs.size()) {
          return FailNode(n, path,
                          "rename arity " + std::to_string(n.attrs.size()) +
                              " != input arity " +
                              std::to_string(n.left->attrs.size()));
        }
        return Status::OK();
      case PhysOp::kHashJoin:
      case PhysOp::kNLJoin:
        return CheckJoin(n, path);
      case PhysOp::kUnion:
      case PhysOp::kHashDiff:
      case PhysOp::kHashIntersect:
      case PhysOp::kUnifySemiJoin:
        INCDB_RETURN_IF_ERROR(CheckNoCond(n, path));
        if (n.left->attrs.size() != n.right->attrs.size()) {
          return FailNode(
              n, path,
              "input arities disagree: " + std::to_string(n.left->attrs.size()) +
                  " vs " + std::to_string(n.right->attrs.size()));
        }
        return CheckSchemaEquals(n, path, n.left->attrs, "left input");
      case PhysOp::kDivision:
        return CheckDivision(n, path);
      case PhysOp::kHashSemi:
        return CheckSemi(n, path);
      case PhysOp::kInPred:
        return CheckInPred(n, path);
      case PhysOp::kDom:
        return CheckDom(n, path);
      case PhysOp::kDistinct:
        INCDB_RETURN_IF_ERROR(CheckNoCond(n, path));
        return CheckSchemaEquals(n, path, n.left->attrs, "input");
    }
    return FailNode(n, path, "unknown operator kind");
  }

  /// Leaf / unary / binary child shape per operator.
  Status CheckShape(const PhysNode& n, const std::string& path) const {
    bool want_left = true, want_right = true;
    switch (n.op) {
      case PhysOp::kScanView:
      case PhysOp::kDom:
        want_left = want_right = false;
        break;
      case PhysOp::kFilterSel:
      case PhysOp::kFusedProjectFilter:
      case PhysOp::kProject:
      case PhysOp::kRename:
      case PhysOp::kDistinct:
        want_right = false;
        break;
      default:
        break;
    }
    if (want_left != (n.left != nullptr)) {
      return FailNode(n, path, want_left ? "missing left input"
                                         : "unexpected left input");
    }
    if (want_right != (n.right != nullptr)) {
      return FailNode(n, path, want_right ? "missing right input"
                                          : "unexpected right input");
    }
    return Status::OK();
  }

  Status CheckSchemaEquals(const PhysNode& n, const std::string& path,
                           const std::vector<std::string>& expect,
                           const char* what) const {
    if (n.attrs != expect) {
      return FailNode(n, path, std::string("output schema differs from the ") +
                                   what + " schema");
    }
    return Status::OK();
  }

  Status CheckScan(const PhysNode& n, const std::string& path) const {
    if (n.rel_name.empty()) return FailNode(n, path, "empty relation name");
    if (catalog_ != nullptr) {
      const Relation* rel = catalog_->Find(n.rel_name);
      if (rel == nullptr) {
        return FailNode(n, path,
                        "relation " + n.rel_name + " not in the catalog");
      }
      if (rel->attrs() != n.attrs) {
        return FailNode(n, path, "recorded schema of " + n.rel_name +
                                     " differs from the catalog schema");
      }
    }
    return Status::OK();
  }

  /// proj_pos maps every output position to an in-bounds input position
  /// carrying the same attribute name.
  Status CheckProjection(const PhysNode& n, const std::string& path,
                         const std::vector<size_t>& pos,
                         const std::vector<std::string>& input) const {
    if (pos.size() != n.attrs.size()) {
      return FailNode(n, path,
                      "projection maps " + std::to_string(pos.size()) +
                          " position(s) but the output schema has " +
                          std::to_string(n.attrs.size()));
    }
    for (size_t i = 0; i < pos.size(); ++i) {
      if (pos[i] >= input.size()) {
        return FailNode(n, path,
                        "projection position " + std::to_string(pos[i]) +
                            " out of range (input arity " +
                            std::to_string(input.size()) + ")");
      }
      if (n.attrs[i] != input[pos[i]]) {
        return FailNode(n, path, "projected attribute " + n.attrs[i] +
                                     " names input position " +
                                     std::to_string(pos[i]) + " which is " +
                                     input[pos[i]]);
      }
    }
    return Status::OK();
  }

  Status CheckJoin(const PhysNode& n, const std::string& path) const {
    const std::vector<std::string>& la = n.left->attrs;
    const std::vector<std::string>& ra = n.right->attrs;
    if (n.left_arity != la.size()) {
      return FailNode(n, path,
                      "left_arity " + std::to_string(n.left_arity) +
                          " != left input arity " + std::to_string(la.size()));
    }
    std::vector<std::string> joint = la;
    for (const std::string& a : ra) {
      if (IndexOf(la, a) != la.size()) {
        return FailNode(n, path,
                        "attribute " + a + " appears on both join sides");
      }
      joint.push_back(a);
    }
    if (n.op == PhysOp::kHashJoin) {
      if (n.lkeys.empty()) {
        return FailNode(n, path, "hash join without key columns");
      }
      INCDB_RETURN_IF_ERROR(CheckKeys(n, path, la.size(), ra.size()));
    } else {
      if (!n.lkeys.empty() || !n.rkeys.empty()) {
        return FailNode(n, path, "nested-loop join carries hash keys");
      }
    }
    if (n.fused_proj) {
      INCDB_RETURN_IF_ERROR(CheckProjection(n, path, n.proj_pos, joint));
      bool left_only = true, right_only = true;
      for (size_t p : n.proj_pos) {
        (p < n.left_arity ? right_only : left_only) = false;
      }
      if (n.proj_left_only != left_only || n.proj_right_only != right_only) {
        return FailNode(n, path,
                        "proj_left_only/proj_right_only flags disagree with "
                        "the projected positions");
      }
    } else {
      if (!n.proj_pos.empty()) {
        return FailNode(n, path, "proj_pos set without fused_proj");
      }
      INCDB_RETURN_IF_ERROR(CheckSchemaEquals(n, path, joint, "joint input"));
    }
    return CheckCond(n, path, joint);
  }

  Status CheckKeys(const PhysNode& n, const std::string& path, size_t larity,
                   size_t rarity) const {
    if (n.lkeys.size() != n.rkeys.size()) {
      return FailNode(n, path,
                      "key column counts disagree: " +
                          std::to_string(n.lkeys.size()) + " left vs " +
                          std::to_string(n.rkeys.size()) + " right");
    }
    for (size_t k : n.lkeys) {
      if (k >= larity) {
        return FailNode(n, path, "left key position " + std::to_string(k) +
                                     " out of range (arity " +
                                     std::to_string(larity) + ")");
      }
    }
    for (size_t k : n.rkeys) {
      if (k >= rarity) {
        return FailNode(n, path, "right key position " + std::to_string(k) +
                                     " out of range (arity " +
                                     std::to_string(rarity) + ")");
      }
    }
    return Status::OK();
  }

  Status CheckSemi(const PhysNode& n, const std::string& path) const {
    INCDB_RETURN_IF_ERROR(CheckSchemaEquals(n, path, n.left->attrs, "left"));
    if (n.left_arity != n.left->attrs.size()) {
      return FailNode(n, path, "left_arity != left input arity");
    }
    INCDB_RETURN_IF_ERROR(
        CheckKeys(n, path, n.left->attrs.size(), n.right->attrs.size()));
    std::vector<std::string> joint = n.left->attrs;
    for (const std::string& a : n.right->attrs) {
      if (IndexOf(n.left->attrs, a) != n.left->attrs.size()) {
        return FailNode(n, path,
                        "attribute " + a + " appears on both semijoin sides");
      }
      joint.push_back(a);
    }
    if (!n.cond) return FailNode(n, path, "semijoin without residual condition");
    if (n.trivial_residual != (n.cond->kind == CondKind::kTrue)) {
      return FailNode(n, path,
                      "trivial_residual flag disagrees with the condition");
    }
    return CheckCond(n, path, joint);
  }

  Status CheckInPred(const PhysNode& n, const std::string& path) const {
    INCDB_RETURN_IF_ERROR(CheckSchemaEquals(n, path, n.left->attrs, "left"));
    if (n.left_arity != n.left->attrs.size()) {
      return FailNode(n, path, "left_arity != left input arity");
    }
    if (n.lpos.size() != n.rpos.size()) {
      return FailNode(n, path,
                      "IN compare column counts disagree: " +
                          std::to_string(n.lpos.size()) + " left vs " +
                          std::to_string(n.rpos.size()) + " right");
    }
    for (size_t p : n.lpos) {
      if (p >= n.left->attrs.size()) {
        return FailNode(n, path, "IN left column " + std::to_string(p) +
                                     " out of range");
      }
    }
    for (size_t p : n.rpos) {
      if (p >= n.right->attrs.size()) {
        return FailNode(n, path, "IN right column " + std::to_string(p) +
                                     " out of range");
      }
    }
    std::vector<std::string> joint = n.left->attrs;
    for (const std::string& a : n.right->attrs) joint.push_back(a);
    if (!n.cond) return FailNode(n, path, "IN predicate without condition");
    if (n.correlated != (n.cond->kind != CondKind::kTrue)) {
      return FailNode(n, path, "correlated flag disagrees with the condition");
    }
    return CheckCond(n, path, joint);
  }

  Status CheckDivision(const PhysNode& n, const std::string& path) const {
    INCDB_RETURN_IF_ERROR(CheckNoCond(n, path));
    const std::vector<std::string>& la = n.left->attrs;
    const std::vector<std::string>& ra = n.right->attrs;
    if (n.div_l.size() != n.div_r.size() || n.div_l.size() != ra.size()) {
      return FailNode(n, path,
                      "division alignment does not cover the divisor");
    }
    for (size_t i = 0; i < n.div_l.size(); ++i) {
      if (n.div_l[i] >= la.size() || n.div_r[i] >= ra.size()) {
        return FailNode(n, path, "division alignment position out of range");
      }
      if (la[n.div_l[i]] != ra[n.div_r[i]]) {
        return FailNode(n, path, "division aligns differently named columns");
      }
    }
    if (n.attrs.empty()) {
      return FailNode(n, path, "division output schema is empty");
    }
    return CheckProjection(n, path, n.keep_pos, la);
  }

  Status CheckDom(const PhysNode& n, const std::string& path) const {
    INCDB_RETURN_IF_ERROR(CheckNoCond(n, path));
    if (n.attrs.size() != n.dom_arity) {
      return FailNode(n, path,
                      "Dom arity " + std::to_string(n.dom_arity) +
                          " != output schema arity " +
                          std::to_string(n.attrs.size()));
    }
    for (const Value& v : n.dom_extra) {
      if (v.is_param() && v.param_index() >= plan_.param_count) {
        return FailNode(n, path,
                        "Dom extra references parameter ?" +
                            std::to_string(v.param_index()) +
                            " beyond param_count " +
                            std::to_string(plan_.param_count));
      }
    }
    return Status::OK();
  }

  /// Operators that never carry a selection condition must not have one.
  Status CheckNoCond(const PhysNode& n, const std::string& path) const {
    if (n.cond && n.cond->kind != CondKind::kTrue) {
      return FailNode(n, path, "operator carries an unexpected condition");
    }
    if (!n.pred_attrs.empty()) {
      return FailNode(n, path, "operator records pred_attrs without a "
                               "parameterised condition");
    }
    return Status::OK();
  }

  /// Condition-bearing operators: attribute resolution against the input
  /// schema, pred_attrs discipline, parameter coverage, and a well-formed
  /// columnar register program for the bound conditions.
  Status CheckCond(const PhysNode& n, const std::string& path,
                   const std::vector<std::string>& input) const {
    if (!n.cond) return FailNode(n, path, "missing condition");
    if (!n.pred) return FailNode(n, path, "missing compiled predicate");
    for (const std::string& a : CondAttrs(n.cond)) {
      if (IndexOf(input, a) == input.size()) {
        return FailNode(n, path, "condition references attribute " + a +
                                     " outside the input schema");
      }
    }
    const bool has_param = CondHasParam(n.cond);
    if (has_param) {
      if (CondParamCount(n.cond) > plan_.param_count) {
        return FailNode(n, path,
                        "condition needs " +
                            std::to_string(CondParamCount(n.cond)) +
                            " parameter(s) but param_count is " +
                            std::to_string(plan_.param_count));
      }
      if (n.pred_attrs != input) {
        return FailNode(n, path,
                        "parameterised condition must record its input "
                        "schema in pred_attrs");
      }
    } else {
      if (!n.pred_attrs.empty()) {
        return FailNode(n, path,
                        "pred_attrs recorded for a parameter-free condition");
      }
      // The columnar program the vectorized executor would build must be
      // well-formed (it shares atom semantics with the scalar predicate).
      auto bp = BatchPredicate::Make(n.cond, input,
                                     VerifyCondMode(plan_.mode));
      if (!bp.ok()) {
        return FailNode(n, path, "condition does not compile to a columnar "
                                 "program: " +
                                     bp.status().message());
      }
      Status prog = bp->Validate(input.size());
      if (!prog.ok()) {
        return FailNode(n, path,
                        "malformed predicate program: " + prog.message());
      }
    }
    return Status::OK();
  }

  /// Recomputes parent-edge counts and compares with Plan::refcount — the
  /// executor memoises exactly the nodes recorded as shared there.
  Status CheckRefcounts() {
    std::unordered_map<const PhysNode*, uint32_t> counts;
    CountParentEdges(plan_.root, &counts);
    if (counts.size() != plan_.refcount.size()) {
      return Fail("", "refcount map covers " +
                          std::to_string(plan_.refcount.size()) +
                          " node(s), the DAG has " +
                          std::to_string(counts.size()));
    }
    for (const auto& [node, c] : counts) {
      auto it = plan_.refcount.find(node);
      if (it == plan_.refcount.end() || it->second != c) {
        return Status::Internal(
            "plan verifier: node (" + std::string(ToString(node->op)) +
            ") has " + std::to_string(c) + " parent edge(s), refcount records " +
            std::to_string(it == plan_.refcount.end() ? 0 : it->second));
      }
    }
    return Status::OK();
  }

  static void CountParentEdges(
      const PhysPtr& n, std::unordered_map<const PhysNode*, uint32_t>* counts) {
    uint32_t& c = (*counts)[n.get()];
    if (++c > 1) return;
    if (n->left) CountParentEdges(n->left, counts);
    if (n->right) CountParentEdges(n->right, counts);
  }

  /// Plan-level summary fields recomputed from the DAG.
  Status CheckPlanSummary() {
    std::set<std::string> scans;
    bool uses_dom = false;
    bool ops_maintainable = true;
    size_t params_needed = 0;
    for (const PhysNode* n : checked_) {
      if (n->op == PhysOp::kScanView) scans.insert(n->rel_name);
      if (n->op == PhysOp::kDom) uses_dom = true;
      if (!OpIsMaintainable(n->op)) ops_maintainable = false;
      if (n->cond) params_needed = std::max(params_needed,
                                            CondParamCount(n->cond));
      for (const Value& v : n->dom_extra) {
        if (v.is_param()) {
          params_needed =
              std::max(params_needed, size_t{v.param_index()} + 1);
        }
      }
    }
    std::vector<std::string> expect(scans.begin(), scans.end());
    if (plan_.scanned_rels != expect) {
      return Fail("", "scanned_rels does not match the plan's scan leaves");
    }
    if (plan_.uses_dom != uses_dom) {
      return Fail("", plan_.uses_dom
                          ? "uses_dom set but the plan has no Dom operator"
                          : "plan has a Dom operator but uses_dom is unset");
    }
    const bool expect_maintainable = ops_maintainable && !plan_.for_ctables;
    if (plan_.maintainable != expect_maintainable) {
      return Fail("", plan_.maintainable
                          ? "maintainable set but the plan contains "
                            "unsupported operators (or is a c-table lowering)"
                          : "maintainable unset though every operator is in "
                            "the delta-propagation subset");
    }
    if (params_needed > plan_.param_count) {
      return Fail("", "param_count " + std::to_string(plan_.param_count) +
                          " does not cover parameter slots used (" +
                          std::to_string(params_needed) + ")");
    }
    if (plan_.opts.num_threads == 0 ||
        plan_.opts.num_threads > kMaxEvalThreads) {
      return Fail("", "EvalOptions::num_threads was not resolved at compile "
                      "time (got " +
                          std::to_string(plan_.opts.num_threads) + ")");
    }
    return Status::OK();
  }

  enum Colour : uint8_t { kGrey, kBlack };

  const Plan& plan_;
  const Database* catalog_;
  std::unordered_map<const PhysNode*, Colour> colour_;
  std::set<const PhysNode*> checked_;
};

}  // namespace

Status VerifyPlan(const Plan& plan, const Database* catalog) {
  return PlanVerifier(plan, catalog).Run();
}

Status VerifyPlan(const PlanPtr& plan, const Database* catalog) {
  if (!plan) return Status::Internal("plan verifier: null plan");
  return VerifyPlan(*plan, catalog);
}

bool PlanVerificationEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("INCDB_VERIFY_PLANS");
    return env == nullptr || std::string(env) != "0";
  }();
  return enabled;
}

}  // namespace incdb
