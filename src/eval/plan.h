#ifndef INCDB_EVAL_PLAN_H_
#define INCDB_EVAL_PLAN_H_

/// \file plan.h
/// \brief The physical-plan layer: compile once, execute many times.
///
/// Evaluation is split into two phases:
///
///  1. Compile(query, mode, options, db) lowers the relational-algebra tree
///     into a DAG of *typed physical operators* and runs the rewrite
///     passes that the tree-walking evaluator used to re-derive on every
///     call:
///       * conjunct split — top-level equality conjuncts of a join
///         condition become hash-join keys (enable_hash_join);
///       * selection pushdown — one-sided conjuncts move below the join,
///         through products and renames (enable_selection_pushdown);
///       * projection fusion — π over a join-shaped child projects at emit
///         time; π over a plain σ becomes a FusedProjectFilter
///         (enable_projection_fusion);
///       * OR-expansion — a disjunctive join condition with no hashable
///         equality becomes a union of per-disjunct joins under set
///         semantics, each branch re-optimised (enable_or_expansion).
///     The database is consulted for *schemas only*: a compiled plan can be
///     executed against any database with the same relation schemas.
///
///  2. Execute(plan, db) runs the operators. Leaf scans return a borrowed
///     RelationView over the database's flat rows (no copy); the hash join
///     optionally partitions build and probe by key-hash prefix across a
///     small thread pool (EvalOptions::num_threads).
///
/// EvalSet / EvalBag / EvalSql (eval/eval.h) are thin compile+execute
/// wrappers over this layer; the c-table evaluator (ctables/ceval.cpp)
/// walks plans produced by CompileForCTables, and the FO evaluator
/// (logic/fo_eval.cpp) shares ScanResolver for copy-free scans.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/algebra.h"
#include "core/database.h"
#include "core/exec_context.h"
#include "core/relation.h"
#include "core/status.h"
#include "eval/eval.h"

namespace incdb {

/// The three evaluation disciplines of the paper (see eval/eval.h).
enum class EvalMode : uint8_t { kSetNaive, kBagNaive, kSetSql };

/// Typed physical operators.
enum class PhysOp : uint8_t {
  kScanView,           ///< Borrowed view of a base relation.
  kFilterSel,          ///< σ with a compiled predicate.
  kFusedProjectFilter, ///< π(σ(child)) in one pass, projecting at emit time.
  kProject,            ///< Materialising projection.
  kRename,             ///< Attribute replacement (copy-free on views).
  kHashJoin,           ///< Equi hash join + residual predicate.
  kNLJoin,             ///< Nested-loop join / product with predicate.
  kUnion,              ///< Bag union; collapsed under set semantics.
  kHashDiff,           ///< Difference (hash under naive/bag, NOT-IN 3VL under SQL).
  kHashIntersect,      ///< Intersection (hash; IN 3VL under SQL).
  kDivision,           ///< Q1 ÷ Q2.
  kUnifySemiJoin,      ///< ⋉⇑ with the null-mask unifiability index.
  kHashSemi,           ///< Semijoin / antijoin (EXISTS-style, hashed keys).
  kInPred,             ///< SQL [NOT] IN predicate.
  kDom,                ///< Dom^k over the active domain.
  kDistinct,           ///< Multiplicity collapse.
};

const char* ToString(PhysOp op);

/// True for the monotone operators delta propagation (eval/delta.h)
/// understands; any other op makes a plan non-maintainable. The plan
/// verifier (eval/verify.h) checks Plan::maintainable against exactly this
/// predicate, so the two can never drift apart silently.
bool OpIsMaintainable(PhysOp op);

struct PhysNode;
using PhysPtr = std::shared_ptr<const PhysNode>;

/// \brief One physical operator with statically resolved schema, attribute
/// positions and compiled predicates. Nodes are immutable and may be shared
/// (OR-expansion branches share their compiled inputs, forming a DAG).
struct PhysNode {
  PhysOp op;
  std::vector<std::string> attrs;  ///< Output schema.

  std::string rel_name;            ///< kScanView.
  CondPtr cond;                    ///< Filter / join residual / kInPred θ.
  /// `cond` compiled against the operator's input schema (the joint schema
  /// for join-like operators). Pure and re-entrant: safe to call from the
  /// join pool's worker threads. When `cond` still carries parameter
  /// placeholders the compiled predicate is a validation artifact only —
  /// Execute refuses plans with unbound parameters; BindPlanParams
  /// recompiles it from the bound condition.
  std::function<TV3(const Tuple&)> pred;
  /// Input schema `pred` was compiled against — recorded only when `cond`
  /// carries parameters, so BindPlanParams can recompile the predicate
  /// after substitution.
  std::vector<std::string> pred_attrs;

  std::vector<size_t> proj_pos;    ///< kProject / kFusedProjectFilter / fused join projection.
  bool fused_proj = false;         ///< Join nodes: proj_pos is active.
  bool proj_left_only = false;     ///< Fused projection touches only left columns.
  bool proj_right_only = false;    ///< Fused projection touches only right columns.
  size_t left_arity = 0;           ///< Join-like nodes: arity of the left input.

  std::vector<size_t> lkeys, rkeys;  ///< kHashJoin / kHashSemi key positions.
  bool anti = false;               ///< kHashSemi: antijoin; kInPred: NOT IN.
  bool trivial_residual = false;   ///< kHashSemi: no residual predicate.
  bool correlated = false;         ///< kInPred: θ references both sides.
  std::vector<size_t> lpos, rpos;  ///< kInPred compare columns.
  std::vector<size_t> keep_pos, div_l, div_r;  ///< kDivision alignment.

  size_t dom_arity = 0;            ///< kDom.
  std::vector<Value> dom_extra;    ///< kDom.

  PhysPtr left, right;
};

/// \brief A compiled plan: the operator DAG plus everything Execute needs.
struct Plan {
  PhysPtr root;
  EvalMode mode;
  EvalOptions opts;
  /// Parameter slots the plan still needs (1 + largest ?i mentioned).
  /// A plan with param_count > 0 is a *template*: Execute rejects it until
  /// BindPlanParams substitutes constants (producing a plan with 0).
  size_t param_count = 0;
  /// Parent-edge counts; nodes referenced more than once (OR-expansion
  /// sharing) are memoised during execution.
  std::unordered_map<const PhysNode*, uint32_t> refcount;
  /// Names of the base relations the plan scans (sorted, deduplicated) —
  /// together with uses_dom, the plan's *data-dependency footprint*. The
  /// result cache (eval/result_cache.h) stamps these with the executed
  /// snapshot's per-relation versions to fingerprint the inputs.
  std::vector<std::string> scanned_rels;
  /// True when the plan contains a Dom operator, whose output depends on
  /// the active domain of the *whole* database (any relation's change can
  /// change it) — such plans fingerprint on the database epoch instead.
  bool uses_dom = false;
  /// True when every operator of the DAG belongs to the monotone subset
  /// incremental result maintenance can propagate row-level deltas
  /// through (scan, filter, fused project-filter, project, rename, union,
  /// hash/NL join). Difference, intersection, division, semijoins,
  /// distinct, Dom and c-table plans are excluded — cached results of
  /// non-maintainable plans fall back to invalidation on mutation.
  bool maintainable = false;
  /// True when the plan came from CompileForCTables — the c-table
  /// evaluator walks it with its own semantics, so such plans are never
  /// executed directly and never delta-maintained. Recorded so the plan
  /// verifier can check maintainable ⇔ (supported ops ∧ ¬for_ctables).
  bool for_ctables = false;
};
using PlanPtr = std::shared_ptr<const Plan>;

/// Validates EvalOptions::num_threads: 0 resolves to
/// std::thread::hardware_concurrency() (1 when the runtime reports 0),
/// anything above kMaxEvalThreads clamps to kMaxEvalThreads. Compile()
/// applies this before storing the options in the plan, so the executor
/// and the plan-cache key always see the resolved value.
size_t ResolveNumThreads(size_t requested);

/// Lowers `q` into a physical plan for the given mode, running the rewrite
/// passes enabled in `opts` (with num_threads resolved via
/// ResolveNumThreads). The database provides relation schemas only;
/// no data is read. Compilation performs all schema validation (unknown
/// relations/attributes, arity mismatches, product disjointness), so
/// Execute only surfaces data-dependent errors (resource budgets).
StatusOr<PlanPtr> Compile(const AlgPtr& q, EvalMode mode,
                          const EvalOptions& opts, const Database& db);

/// Pure 1:1 lowering with every rewrite pass off and σ/π kept as separate
/// operators — the plan shape the c-table evaluator interprets (hash joins
/// are unsound over c-tables: a null join key is a *condition*, not a
/// mismatch).
StatusOr<PlanPtr> CompileForCTables(const AlgPtr& q, const Database& db);

/// Substitutes parameter bindings into a compiled plan template: nodes on
/// a path to a parameterised condition (or Dom extra) are copied with the
/// condition bound and its predicate recompiled; every parameter-free
/// subtree is shared with the original plan. The result has
/// param_count == 0 and is independently executable — binding the same
/// template concurrently from many threads is safe (the template is never
/// mutated). Requires params.size() >= plan->param_count and every binding
/// to be a constant. This is deliberately *not* a compile: no rewrite pass
/// re-runs, so N bindings of one prepared query pay one Compile total.
StatusOr<PlanPtr> BindPlanParams(const PlanPtr& plan,
                                 const std::vector<Value>& params);

/// Runs a compiled plan against `db` (which must match the schemas the
/// plan was compiled against). Plans with unbound parameters are rejected
/// (bind them first via BindPlanParams). The ExecContext overload carries
/// a deadline / cancellation token / soft memory budget, observed by every
/// operator's hot loop on an amortized schedule; the two-argument form
/// runs unlimited.
StatusOr<Relation> Execute(const PlanPtr& plan, const Database& db);
StatusOr<Relation> Execute(const PlanPtr& plan, const Database& db,
                           const ExecContext& ctx);

/// Executes one node of `plan`'s DAG and materialises its output — the
/// streaming cursor (api/session.h) uses this for the non-streamable
/// prefix below the root operator chain.
StatusOr<Relation> ExecuteNode(const PlanPtr& plan, const PhysPtr& node,
                               const Database& db);
StatusOr<Relation> ExecuteNode(const PlanPtr& plan, const PhysPtr& node,
                               const Database& db, const ExecContext& ctx);

/// Number of operators of the given kind in the plan DAG (shared nodes
/// counted once) — used by plan-shape tests and the compile benchmarks.
size_t CountOps(const Plan& plan, PhysOp op);

/// Multi-line indented rendering of the operator DAG for debugging and
/// plan-shape assertions.
std::string PlanToString(const Plan& plan);

/// \brief Shared scan resolution: borrowed views of base relations.
///
/// Under set semantics a scan of a non-set base relation needs a one-off
/// multiplicity collapse; ScanResolver materialises that copy at most once
/// per relation and otherwise borrows the database's rows in place. Used
/// by the plan executor and the FO evaluator (logic/fo_eval.cpp), whose
/// atom scans re-resolve inside quantifier loops.
class ScanResolver {
 public:
  explicit ScanResolver(const Database& db) : db_(&db) {}

  /// A view of relation `name`; with `collapse_to_set`, every multiplicity
  /// is 1 (borrowed whenever the stored relation is already a set).
  StatusOr<RelationView> Resolve(const std::string& name, bool collapse_to_set);

 private:
  const Database* db_;
  /// Per-relation resolution cache: null ⇒ borrow the stored relation
  /// (already a set), else the lazily materialised collapsed copy. The
  /// IsSet() row scan runs once per name, not once per resolution.
  std::map<std::string, std::unique_ptr<Relation>> collapsed_;
};

}  // namespace incdb

#endif  // INCDB_EVAL_PLAN_H_
