#ifndef INCDB_EVAL_CODD_H_
#define INCDB_EVAL_CODD_H_

/// \file codd.h
/// \brief The Codd-interpretation of SQL nulls and its interaction with
/// query evaluation (paper §6, "Marked nulls" open problem).
///
/// SQL has a single placeholder NULL; the standard theoretical reading
/// turns each occurrence into a *fresh* marked null (the `codd`
/// transformation, Database::CoddifyNulls). A query is Codd-insensitive
/// when Q(codd(D)) and codd(Q(D)) coincide up to a renaming of nulls —
/// then it does not matter whether SQL nulls are expanded before or after
/// evaluation. The paper notes this fails in general and the failing class
/// has no syntactic characterisation; CoddCommutes() decides individual
/// instances.

#include "algebra/algebra.h"
#include "core/database.h"
#include "core/relation.h"
#include "core/status.h"
#include "eval/eval.h"

namespace incdb {

/// Renames the nulls of a relation to 0, 1, 2, ... in first-occurrence
/// order over the sorted tuple list — a canonical form under null
/// renaming. Two relations are equal up to null renaming iff their
/// canonical forms are equal... for *Codd* relations (each null occurring
/// once) always, and for general relations whenever the occurrence
/// pattern is position-determined (sufficient for CoddCommutes, whose
/// operands both originate from Codd-ified inputs).
Relation CanonicalizeNulls(const Relation& rel);

/// Does naive evaluation commute with the codd transformation on this
/// database: Q(codd(D)) ≡ codd(Q(D)) up to null renaming?
StatusOr<bool> CoddCommutes(const AlgPtr& q, const Database& db,
                            const EvalOptions& opts = {});

}  // namespace incdb

#endif  // INCDB_EVAL_CODD_H_
