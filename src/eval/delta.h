#ifndef INCDB_EVAL_DELTA_H_
#define INCDB_EVAL_DELTA_H_

/// \file delta.h
/// \brief Incremental result maintenance: row-level deltas propagated
/// bottom-up through a compiled plan DAG (Gupta–Mumick delta rules).
///
/// Given the boundary snapshots and per-relation row-level deltas of one
/// commit (Database::Commit's CommitInfo), PropagateDelta computes the
/// delta of a *maintainable* plan's result in time proportional to the
/// delta (times the unchanged join sides), not the data:
///
///   scan           Δ = the base relation's commit delta
///   σ / fused π∘σ  Δ = σ(Δchild)        (batch predicates over Δ windows)
///   π, ρ           Δ = π(Δchild)
///   ∪              Δ = Δleft + Δright
///   ⋈              Δ = ΔL ⋈ R_new + L_old ⋈ ΔR    (join bilinearity)
///
/// Bag mode propagates signed deltas (Δ⁺/Δ⁻) exactly. Set modes propagate
/// insert-only deltas: every maintainable operator is monotone, so an
/// inserted base row can only add result tuples — a set-level deletion
/// aborts propagation and the caller falls back to invalidation. Old/new
/// join inputs are re-evaluated lazily (only when the opposite side's
/// delta is non-empty) against the pinned boundary snapshots, and shared
/// DAG nodes are propagated once.
///
/// Plan::maintainable (set at compile time) gates entry: difference,
/// intersection, division, semijoins, distinct, Dom and c-table plans are
/// never propagated. ResultCache entries for maintainable plans are
/// upgraded in place by the session's mutation path (api/session.cpp)
/// using ApplyResultDelta.

#include "core/database.h"
#include "core/relation.h"
#include "core/status.h"
#include "eval/plan.h"

namespace incdb {

/// Propagates the commit's row-level deltas through `plan` and returns the
/// delta of the plan's result. `plan` must be maintainable and fully bound
/// (param_count == 0). Any non-OK status means "this result cannot be
/// maintained across this commit" — callers fall back to invalidation;
/// it is never a corruption signal.
StatusOr<RelationDelta> PropagateDelta(const PlanPtr& plan,
                                       const CommitInfo& info);

/// Applies a propagated delta to a cached result in place. Under set
/// semantics the delta is insert-only and application is idempotent
/// (insert-if-absent with multiplicity 1); under bag semantics the signed
/// delta applies exactly (insertions first, so exact math never
/// underflows). A non-OK status leaves no usable result — the caller must
/// discard the relation and recompute.
Status ApplyResultDelta(Relation* result, const RelationDelta& delta,
                        bool set_semantics);

}  // namespace incdb

#endif  // INCDB_EVAL_DELTA_H_
