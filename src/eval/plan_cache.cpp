// Compiled-plan cache (see plan_cache.h for the contract).
//
// The key serialization is deliberately boring: every variable-length
// field is length-prefixed and every node carries its kind byte plus
// presence markers for children, so no two distinct trees can serialize
// to the same bytes. Entries are compared by full key equality (the map
// key *is* the serialization), so hash collisions only cost a probe.

#include "eval/plan_cache.h"

#include <cstring>
#include <utility>

#include "eval/verify.h"

namespace incdb {

namespace {

void AppendU64(std::string* k, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  k->append(buf, sizeof(buf));
}

void AppendByte(std::string* k, uint8_t b) {
  k->push_back(static_cast<char>(b));
}

/// Compact length prefix: one byte below 255, escaped to 8 bytes above
/// (attribute names and list sizes are short; the escape keeps the
/// encoding unambiguous for pathological inputs).
void AppendLen(std::string* k, uint64_t n) {
  if (n < 0xFF) {
    AppendByte(k, static_cast<uint8_t>(n));
  } else {
    AppendByte(k, 0xFF);
    AppendU64(k, n);
  }
}

void AppendStr(std::string* k, const std::string& s) {
  AppendLen(k, s.size());
  k->append(s);
}

void AppendAttrs(std::string* k, const std::vector<std::string>& attrs) {
  AppendLen(k, attrs.size());
  for (const std::string& a : attrs) AppendStr(k, a);
}

void AppendValue(std::string* k, const Value& v) {
  AppendByte(k, static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kNull:
      AppendU64(k, v.null_id());
      break;
    case ValueKind::kInt:
      AppendU64(k, static_cast<uint64_t>(v.as_int()));
      break;
    case ValueKind::kDouble: {
      double d = v.as_double();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      AppendU64(k, bits);
      break;
    }
    case ValueKind::kString:
      AppendStr(k, v.as_string());
      break;
    case ValueKind::kParam:
      // Placeholders key by index, so one prepared-query *shape* shares a
      // single entry across every binding (the kind byte separates ?0 from
      // the integer constant 0).
      AppendU64(k, v.param_index());
      break;
  }
}

/// Kind-driven: only the fields the condition kind actually reads are
/// serialized — the kind byte makes the layout self-describing, so the
/// encoding stays unambiguous while touching far fewer bytes.
void AppendCond(std::string* k, const CondPtr& c) {
  AppendByte(k, static_cast<uint8_t>(c->kind));
  switch (c->kind) {
    case CondKind::kTrue:
    case CondKind::kFalse:
      break;
    case CondKind::kAnd:
    case CondKind::kOr:
      AppendCond(k, c->left);
      AppendCond(k, c->right);
      break;
    case CondKind::kEqAttrAttr:
    case CondKind::kNeqAttrAttr:
    case CondKind::kLtAttrAttr:
    case CondKind::kLeAttrAttr:
      AppendStr(k, c->lhs);
      AppendStr(k, c->rhs);
      break;
    case CondKind::kIsConst:
    case CondKind::kIsNull:
      AppendStr(k, c->lhs);
      break;
    case CondKind::kEqAttrConst:
    case CondKind::kNeqAttrConst:
    case CondKind::kLtAttrConst:
    case CondKind::kLeAttrConst:
    case CondKind::kGtAttrConst:
    case CondKind::kGeAttrConst:
      AppendStr(k, c->lhs);
      AppendValue(k, c->constant);
      break;
  }
}

/// Serializes the tree, kind-driven like AppendCond; each kScan node also
/// carries the *current* schema of the relation it scans. Those schema
/// bytes are the invalidation handle — a schema change flips them and the
/// stale entry stops matching. Missing relations serialize distinctly
/// (the compile will fail; failures are never cached).
void AppendAlg(std::string* k, const AlgPtr& q, const Database& db) {
  AppendByte(k, static_cast<uint8_t>(q->kind));
  switch (q->kind) {
    case OpKind::kScan:
      AppendStr(k, q->rel_name);
      if (db.Has(q->rel_name)) {
        AppendByte(k, 1);
        AppendAttrs(k, db.at(q->rel_name).attrs());
      } else {
        AppendByte(k, 0);
      }
      return;
    case OpKind::kSelect:
      AppendCond(k, q->cond);
      AppendAlg(k, q->left, db);
      return;
    case OpKind::kProject:
    case OpKind::kRename:
      AppendAttrs(k, q->attrs);
      AppendAlg(k, q->left, db);
      return;
    case OpKind::kDistinct:
      AppendAlg(k, q->left, db);
      return;
    case OpKind::kProduct:
    case OpKind::kUnion:
    case OpKind::kDifference:
    case OpKind::kIntersect:
    case OpKind::kDivision:
    case OpKind::kAntijoinUnify:
      AppendAlg(k, q->left, db);
      AppendAlg(k, q->right, db);
      return;
    case OpKind::kJoin:
    case OpKind::kSemijoin:
    case OpKind::kAntijoin:
      AppendCond(k, q->cond);
      AppendAlg(k, q->left, db);
      AppendAlg(k, q->right, db);
      return;
    case OpKind::kIn:
    case OpKind::kNotIn:
      AppendCond(k, q->cond);
      AppendAttrs(k, q->attrs);
      AppendAttrs(k, q->attrs2);
      AppendAlg(k, q->left, db);
      AppendAlg(k, q->right, db);
      return;
    case OpKind::kDom:
      AppendAttrs(k, q->attrs);
      AppendLen(k, q->dom_arity);
      AppendLen(k, q->dom_extra.size());
      for (const Value& v : q->dom_extra) AppendValue(k, v);
      return;
  }
}

void AppendOptions(std::string* k, const EvalOptions& opts) {
  AppendU64(k, opts.max_tuples);
  AppendByte(k, static_cast<uint8_t>((opts.enable_hash_join << 0) |
                                     (opts.enable_or_expansion << 1) |
                                     (opts.enable_projection_fusion << 2) |
                                     (opts.enable_unify_index << 3) |
                                     (opts.enable_selection_pushdown << 4)));
  // The resolved thread count, so num_threads=0 and an explicit
  // hardware_concurrency() request share an entry.
  AppendU64(k, ResolveNumThreads(opts.num_threads));
  AppendU64(k, opts.parallel_min_rows);
  // batch_size does not change plan shape today, but cached plans carry
  // their options into execution, so it must participate in identity.
  AppendU64(k, opts.batch_size);
}

void BuildKey(std::string* key, const AlgPtr& q, uint8_t mode_tag,
              const EvalOptions& opts, const Database& db) {
  key->clear();
  AppendByte(key, mode_tag);
  AppendOptions(key, opts);
  AppendAlg(key, q, db);
}

/// Per-thread key buffer: steady-state lookups serialize into retained
/// capacity and allocate nothing (the key is copied only on insert).
std::string& KeyBuffer() {
  thread_local std::string buffer;
  return buffer;
}

/// Mode tags: the three Execute modes plus the c-table lowering, which has
/// its own key space (its plans are interpreted, never Execute()d).
uint8_t ModeTag(EvalMode mode) { return static_cast<uint8_t>(mode); }
constexpr uint8_t kCTablesTag = 0x80;

}  // namespace

template <typename CompileFn>
StatusOr<PlanPtr> PlanCache::LookupOrCompile(const std::string& key,
                                             CompileFn&& compile) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.plan;
    }
    ++misses_;
  }
  // Compile outside the lock: a racing thread on the same cold key wastes
  // one compile, but never blocks the cache for microseconds.
  auto plan = compile();
  if (!plan.ok()) return plan.status();
  // A cached plan is served to arbitrarily many later executions — a
  // malformed one must never enter the map (Debug/sanitizer builds only;
  // see eval/verify.h).
  INCDB_RETURN_IF_ERROR(internal::MaybeVerifyPlan(**plan));
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // A racing thread inserted first; serve one canonical plan.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.plan;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{*plan, lru_.begin()});
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  return *plan;
}

StatusOr<PlanPtr> PlanCache::CompileCached(const AlgPtr& q, EvalMode mode,
                                           const EvalOptions& opts,
                                           const Database& db) {
  std::string& key = KeyBuffer();
  BuildKey(&key, q, ModeTag(mode), opts, db);
  return LookupOrCompile(key, [&] { return Compile(q, mode, opts, db); });
}

StatusOr<PlanPtr> PlanCache::CompileForCTablesCached(const AlgPtr& q,
                                                     const Database& db) {
  std::string& key = KeyBuffer();
  BuildKey(&key, q, kCTablesTag, EvalOptions{}, db);
  return LookupOrCompile(key, [&] { return CompileForCTables(q, db); });
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = map_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  map_.clear();
  lru_.clear();
}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();  // leaked: process lifetime
  return *cache;
}

StatusOr<PlanPtr> CompileCached(const AlgPtr& q, EvalMode mode,
                                const EvalOptions& opts, const Database& db) {
  return PlanCache::Global().CompileCached(q, mode, opts, db);
}

std::string PlanCacheKey(const AlgPtr& q, EvalMode mode,
                         const EvalOptions& opts, const Database& db) {
  std::string key;
  BuildKey(&key, q, ModeTag(mode), opts, db);
  return key;
}

void AppendValueKey(std::string* key, const Value& v) {
  AppendValue(key, v);
}

}  // namespace incdb
