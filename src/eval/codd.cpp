#include "eval/codd.h"

#include <algorithm>
#include <map>

namespace incdb {

namespace {

/// Null-blind tuple order: nulls compare equal to each other and below
/// every constant, making the order invariant under null renaming.
bool NullBlindLess(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.arity(), b.arity());
  for (size_t i = 0; i < n; ++i) {
    bool an = a[i].is_null(), bn = b[i].is_null();
    if (an != bn) return an;  // nulls first
    if (an && bn) continue;
    if (a[i] < b[i]) return true;
    if (b[i] < a[i]) return false;
  }
  return a.arity() < b.arity();
}

/// Codd-ifies a relation: each null occurrence becomes a fresh null.
Relation CoddifyRelation(const Relation& rel) {
  Relation out(rel.attrs());
  uint64_t next = 0;
  for (const auto& [t, c] : rel.SortedRows()) {
    for (uint64_t i = 0; i < c; ++i) {
      Tuple nt = t;
      for (size_t j = 0; j < nt.arity(); ++j) {
        if (nt[j].is_null()) nt[j] = Value::Null(next++);
      }
      Status st = out.Insert(nt, 1);
      (void)st;
    }
  }
  return out;
}

}  // namespace

Relation CanonicalizeNulls(const Relation& rel) {
  std::vector<Tuple> tuples = rel.SortedTuples();
  std::stable_sort(tuples.begin(), tuples.end(), NullBlindLess);
  std::map<uint64_t, uint64_t> renaming;
  Relation out(rel.attrs());
  for (const Tuple& t : tuples) {
    Tuple nt = t;
    for (size_t i = 0; i < nt.arity(); ++i) {
      if (!nt[i].is_null()) continue;
      auto [it, inserted] =
          renaming.try_emplace(nt[i].null_id(), renaming.size());
      nt[i] = Value::Null(it->second);
    }
    Status st = out.Insert(nt, rel.Count(t));
    (void)st;
  }
  return out;
}

StatusOr<bool> CoddCommutes(const AlgPtr& q, const Database& db,
                            const EvalOptions& opts) {
  // Left: evaluate on the Codd-ified database.
  auto lhs = EvalSet(q, db.CoddifyNulls(), opts);
  if (!lhs.ok()) return lhs.status();
  // Right: evaluate first, then Codd-ify the answer.
  auto ans = EvalSet(q, db, opts);
  if (!ans.ok()) return ans.status();
  Relation rhs = CoddifyRelation(*ans);
  return CanonicalizeNulls(*lhs).SameRows(CanonicalizeNulls(rhs));
}

}  // namespace incdb
