// Result cache (see result_cache.h for the contract). Same LRU skeleton
// as the plan cache, plus the relation → entries reverse index the
// mutation sweeps walk and the late-insert stamp floors.

#include "eval/result_cache.h"

#include <algorithm>
#include <utility>

namespace incdb {

std::string ResultCache::ComposeKey(const std::string& head,
                                    const std::vector<Dep>& deps,
                                    bool uses_dom, uint64_t epoch) {
  std::string key = head;
  for (const auto& [name, version] : deps) {
    key += '#';
    key += name;
    key.append(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  if (uses_dom) {
    key += "#*";
    key.append(reinterpret_cast<const char*>(&epoch), sizeof(epoch));
  }
  return key;
}

std::shared_ptr<const Relation> ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.result;
}

std::unordered_map<std::string, ResultCache::Entry>::iterator
ResultCache::RemoveLocked(std::unordered_map<std::string, Entry>::iterator it) {
  for (const auto& [name, version] : it->second.deps) {
    auto rit = by_rel_.find(name);
    if (rit != by_rel_.end()) {
      rit->second.erase(it->first);
      if (rit->second.empty()) by_rel_.erase(rit);
    }
  }
  if (it->second.uses_dom) {
    auto rit = by_rel_.find("*");
    if (rit != by_rel_.end()) {
      rit->second.erase(it->first);
      if (rit->second.empty()) by_rel_.erase(rit);
    }
  }
  lru_.erase(it->second.lru_it);
  return map_.erase(it);
}

bool ResultCache::InsertLocked(const std::string& head,
                               std::shared_ptr<Relation> result,
                               std::vector<Dep> deps, bool uses_dom,
                               uint64_t epoch, bool maintainable,
                               PlanPtr plan) {
  for (const auto& [name, version] : deps) {
    auto fit = floors_.find(name);
    if (fit != floors_.end() && version < fit->second) {
      ++late_drops_;
      return false;
    }
  }
  if (uses_dom && epoch < epoch_floor_) {
    ++late_drops_;
    return false;
  }
  std::string key = ComposeKey(head, deps, uses_dom, epoch);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Racing executions of the same key insert the same data (keys contain
    // the version stamps); keep the incumbent, refresh its LRU slot.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return true;
  }
  for (const auto& [name, version] : deps) by_rel_[name].insert(key);
  if (uses_dom) by_rel_["*"].insert(key);
  lru_.push_front(key);
  map_.emplace(std::move(key),
               Entry{head, std::move(result), std::move(deps), uses_dom, epoch,
                     maintainable, std::move(plan), lru_.begin()});
  while (map_.size() > capacity_) {
    RemoveLocked(map_.find(lru_.back()));
    ++evictions_;
  }
  return true;
}

void ResultCache::Insert(const std::string& head,
                         std::shared_ptr<Relation> result,
                         std::vector<Dep> deps, bool uses_dom, uint64_t epoch,
                         bool maintainable, PlanPtr plan) {
  std::lock_guard<std::mutex> lk(mu_);
  InsertLocked(head, std::move(result), std::move(deps), uses_dom, epoch,
               maintainable, std::move(plan));
}

std::vector<std::string> ResultCache::DependentKeysLocked(
    const std::vector<std::string>& names) const {
  std::vector<std::string> keys;
  auto collect = [&](const std::string& name) {
    auto it = by_rel_.find(name);
    if (it == by_rel_.end()) return;
    keys.insert(keys.end(), it->second.begin(), it->second.end());
  };
  for (const std::string& name : names) collect(name);
  collect("*");
  // An entry depending on several touched relations is listed once per
  // bucket; dedupe so it is only removed (and counted) once.
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

size_t ResultCache::InvalidateRelation(const std::string& name,
                                       uint64_t floor) {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t& f = floors_[name];
  f = std::max(f, floor);
  epoch_floor_ = std::max(epoch_floor_, floor);
  size_t dropped = 0;
  for (const std::string& key : DependentKeysLocked({name})) {
    auto it = map_.find(key);
    if (it == map_.end()) continue;
    RemoveLocked(it);
    ++dropped;
  }
  invalidations_ += dropped;
  return dropped;
}

std::vector<ResultCache::Maintainable> ResultCache::BeginMaintenance(
    const std::vector<std::pair<std::string, uint64_t>>& touched_floors,
    uint64_t epoch_floor) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  names.reserve(touched_floors.size());
  for (const auto& [name, floor] : touched_floors) {
    uint64_t& f = floors_[name];
    f = std::max(f, floor);
    names.push_back(name);
  }
  epoch_floor_ = std::max(epoch_floor_, epoch_floor);
  std::vector<Maintainable> out;
  for (const std::string& key : DependentKeysLocked(names)) {
    auto it = map_.find(key);
    if (it == map_.end()) continue;
    Entry& e = it->second;
    if (e.maintainable && !e.uses_dom && e.plan != nullptr) {
      out.push_back(Maintainable{std::move(e.head), std::move(e.result),
                                 std::move(e.plan), std::move(e.deps)});
      // Moved-from deps would break RemoveLocked's reverse-index walk;
      // restore them for the removal below.
      e.deps = out.back().deps;
      RemoveLocked(it);
    } else {
      RemoveLocked(it);
      ++invalidations_;
    }
  }
  return out;
}

void ResultCache::FinishMaintenance(Maintainable&& entry) {
  std::lock_guard<std::mutex> lk(mu_);
  if (InsertLocked(entry.head, std::move(entry.result), std::move(entry.deps),
                   /*uses_dom=*/false, /*epoch=*/0, /*maintainable=*/true,
                   std::move(entry.plan))) {
    ++maintained_;
  }
}

void ResultCache::NoteInvalidated() {
  std::lock_guard<std::mutex> lk(mu_);
  ++invalidations_;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  map_.clear();
  lru_.clear();
  by_rel_.clear();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ResultCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.maintained = maintained_;
  s.late_drops = late_drops_;
  s.size = map_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace incdb
