// Result cache (see result_cache.h for the contract). Same LRU skeleton
// as the plan cache; the interesting part — version-stamped keys — is
// built by the caller (api/session.cpp ResultKey).

#include "eval/result_cache.h"

#include <algorithm>
#include <utility>

namespace incdb {

std::shared_ptr<const Relation> ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.result;
}

void ResultCache::Insert(const std::string& key,
                         std::shared_ptr<const Relation> result,
                         std::vector<std::string> deps) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Racing executions of the same key insert the same data (keys contain
    // the version stamps); keep the incumbent, refresh its LRU slot.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(result), std::move(deps), lru_.begin()});
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

size_t ResultCache::InvalidateRelation(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  size_t dropped = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    const std::vector<std::string>& deps = it->second.deps;
    // "*" marks an entry depending on the whole database (Dom plans).
    if (std::find(deps.begin(), deps.end(), name) != deps.end() ||
        std::find(deps.begin(), deps.end(), "*") != deps.end()) {
      lru_.erase(it->second.lru_it);
      it = map_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  invalidations_ += dropped;
  return dropped;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  map_.clear();
  lru_.clear();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ResultCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.size = map_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace incdb
