#ifndef INCDB_EVAL_PLAN_CACHE_H_
#define INCDB_EVAL_PLAN_CACHE_H_

/// \file plan_cache.h
/// \brief Compiled-plan cache keyed by structural query identity.
///
/// Compilation (eval/plan.cpp) costs a few microseconds per call — pure
/// overhead for callers that evaluate the same query repeatedly (the
/// brute-force certainty sweeps re-run one query over thousands of
/// possible worlds; production traffic repeats a fixed workload). The
/// cache makes EvalSet/EvalBag/EvalSql lookup-then-execute.
///
/// **Keying.** The cache key is an unambiguous byte serialization of
///  * the algebra tree (operator kinds, relation names, conditions with
///    their constants, projection/rename attribute lists, Dom arity and
///    extras) — *structural* identity: two independently built but
///    structurally equal trees share one entry, while α-renamed queries
///    (same shape, different attribute names) key separately because
///    attribute names are semantic here;
///  * the evaluation mode and every plan-relevant EvalOptions field
///    (rewrite-pass toggles, max_tuples, the resolved num_threads,
///    parallel_min_rows) — the options are baked into the compiled plan;
///  * the schemas (name + attribute list) of every relation the query
///    scans, as read from the database at lookup time.
/// Entries are compared by the full key bytes, never just the hash, so
/// hash collisions cannot alias two distinct queries.
///
/// **Invalidation.** Because the scanned schemas are part of the key, a
/// schema change (Database::Put with different attributes, or a dropped /
/// added relation) makes the next lookup miss and recompile; the stale
/// entry ages out of the LRU ring. Clear() drops everything eagerly.
/// Plans depend on schemas only, so two databases with identical schemas
/// (e.g. the possible worlds of a valuation sweep) share entries — that is
/// the point, not a leak.
///
/// **Thread-safety.** All public methods are safe to call concurrently; a
/// single mutex guards the map + LRU list (lookups also write — they touch
/// the LRU order and the hit counter). Compilation on a miss runs
/// *outside* the lock: two threads racing on the same cold key may both
/// compile, and the loser's plan is dropped — wasted work, never wrong
/// results.

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "eval/plan.h"

namespace incdb {

/// Introspection counters for tests and benchmarks.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t size = 0;      ///< Entries currently cached.
  size_t capacity = 0;  ///< LRU capacity.
};

class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  explicit PlanCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity > 0 ? capacity : 1) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Lookup-then-compile: returns the cached plan for (q, mode, opts,
  /// scanned schemas of db) or compiles, caches and returns it.
  /// Compilation errors are returned verbatim and never cached.
  StatusOr<PlanPtr> CompileCached(const AlgPtr& q, EvalMode mode,
                                  const EvalOptions& opts, const Database& db);

  /// The CompileForCTables twin (1:1 lowering, its own key space — a plan
  /// compiled for the c-table interpreter is never served to Execute and
  /// vice versa).
  StatusOr<PlanPtr> CompileForCTablesCached(const AlgPtr& q,
                                            const Database& db);

  PlanCacheStats stats() const;

  /// Drops every entry (explicit invalidation); counters keep running.
  void Clear();

  /// The process-wide cache behind EvalSet/EvalBag/EvalSql
  /// (EvalOptions::use_plan_cache) and the c-table evaluator.
  static PlanCache& Global();

 private:
  template <typename CompileFn>
  StatusOr<PlanPtr> LookupOrCompile(const std::string& key,
                                    CompileFn&& compile);

  struct Entry {
    PlanPtr plan;
    std::list<std::string>::iterator lru_it;  ///< Position in lru_.
  };

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
  std::list<std::string> lru_;  ///< Keys, most recently used first.
  std::unordered_map<std::string, Entry> map_;
};

/// Convenience wrappers over PlanCache::Global().
StatusOr<PlanPtr> CompileCached(const AlgPtr& q, EvalMode mode,
                                const EvalOptions& opts, const Database& db);

/// The exact key bytes a lookup would use — exposed so tests can assert
/// what does (and does not) participate in query identity. The result
/// cache (eval/result_cache.h) uses it as the query-identity prefix of its
/// own keys.
std::string PlanCacheKey(const AlgPtr& q, EvalMode mode,
                         const EvalOptions& opts, const Database& db);

/// Appends the unambiguous serialization of `v` (kind byte + payload) that
/// plan-cache keys use for condition constants — shared with the result
/// cache's parameter-binding digests.
void AppendValueKey(std::string* key, const Value& v);

}  // namespace incdb

#endif  // INCDB_EVAL_PLAN_CACHE_H_
