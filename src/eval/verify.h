#ifndef INCDB_EVAL_VERIFY_H_
#define INCDB_EVAL_VERIFY_H_

/// \file verify.h
/// \brief The plan verifier: LLVM-style structural validation of compiled
/// physical plans.
///
/// Every layer that produces or rewrites a Plan — Compile's lowering +
/// rewrite passes, CompileForCTables' 1:1 lowering, BindPlanParams'
/// clone-substitution, the plan cache, delta maintenance — relies on a set
/// of IR invariants that nothing used to check explicitly: schema
/// positions stay in bounds, predicates resolve against their input
/// schema, the operator DAG stays acyclic, the maintainability marker
/// matches the supported-op subset. VerifyPlan() walks the DAG once and
/// validates all of them, returning kInternal with a *path-to-node*
/// diagnostic ("root.left.right (HashJoin): ...") on the first violation.
///
/// **What is checked, per node:**
///  * child shape: leaves (ScanView, Dom) have no inputs, unary operators
///    exactly a left input, binary operators both;
///  * output schema consistency: filters/renames/set-ops mirror their
///    input arity (and names where the operator preserves them), joins
///    concatenate disjoint input schemas, projections map every output
///    position to an in-bounds input position with the matching name;
///  * key/column indices: hash-join and semijoin key positions, IN
///    compare columns and division alignment positions are in range of
///    the side they index, with matching left/right counts;
///  * predicates: the condition only references attributes of the
///    operator's input schema (the joint schema for join-like nodes), a
///    parameterised condition records that schema in pred_attrs (and a
///    bound one does not), and the parameter-free conditions recompile
///    into a well-formed columnar register program
///    (BatchPredicate::Validate — postorder stack discipline, register
///    count, operand kinds and column bounds);
///  * scan ↔ catalog: with a database supplied, every ScanView's recorded
///    schema matches the catalog's current schema for that relation.
///
/// **What is checked, per plan:**
///  * the operator graph is a DAG (shared subtrees fine, cycles fatal)
///    and Plan::refcount records the exact parent-edge counts the
///    executor's shared-subtree memoisation keys on;
///  * Plan::param_count covers every ?i placeholder mentioned by any
///    condition or Dom extra;
///  * Plan::scanned_rels / uses_dom agree with the actual leaves;
///  * Plan::maintainable holds exactly when every operator belongs to the
///    delta-propagation subset and the plan is not a c-table lowering;
///  * EvalOptions::num_threads was resolved (1..kMaxEvalThreads).
///
/// **Wiring.** Under INCDB_VERIFY_PLANS (on in Debug builds and every
/// sanitizer CI job, compiled out of Release hot paths) the verifier runs
/// automatically after Compile / CompileForCTables / BindPlanParams, at
/// plan-cache insertion and at delta-maintenance entry; a finding turns
/// the producing call into a kInternal error instead of letting a
/// malformed plan reach the executor. VerifyPlan itself is always
/// compiled and callable — tests assert zero findings over the fuzz
/// corpus in every build type. When the wiring is compiled in, setting
/// the environment variable INCDB_VERIFY_PLANS=0 disables it at runtime
/// (it defaults to enabled).

#include "core/database.h"
#include "core/status.h"
#include "eval/plan.h"

namespace incdb {

/// Structurally validates `plan`. Returns OK or kInternal whose message
/// names the offending node by its path from the root ("root.left..."),
/// its operator and the violated invariant. With `catalog`, every scan's
/// recorded schema is additionally checked against the database's current
/// schema for that relation.
Status VerifyPlan(const Plan& plan, const Database* catalog = nullptr);

/// Convenience overload; a null plan (or null root) is a finding.
Status VerifyPlan(const PlanPtr& plan, const Database* catalog = nullptr);

/// True when the automatic INCDB_VERIFY_PLANS wiring should run: the
/// macro is compiled in and the INCDB_VERIFY_PLANS environment variable
/// is unset or non-zero. Reads the environment once per process.
bool PlanVerificationEnabled();

namespace internal {

/// The compiled-in wiring used at the plan-producing seams: verifies when
/// enabled, no-ops (always OK) when the macro is compiled out.
inline Status MaybeVerifyPlan(const Plan& plan,
                              const Database* catalog = nullptr) {
#ifdef INCDB_VERIFY_PLANS
  if (PlanVerificationEnabled()) return VerifyPlan(plan, catalog);
#else
  (void)plan;
  (void)catalog;
#endif
  return Status::OK();
}

}  // namespace internal

}  // namespace incdb

#endif  // INCDB_EVAL_VERIFY_H_
