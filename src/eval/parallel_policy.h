#ifndef INCDB_EVAL_PARALLEL_POLICY_H_
#define INCDB_EVAL_PARALLEL_POLICY_H_

/// \file parallel_policy.h
/// \brief Dispatch policy for the chunk-partitioned parallel operators.
///
/// EvalOptions::parallel_min_rows is a single knob, but the per-row work
/// of the chunk-partitioned operators differs by orders of magnitude: a
/// nested-loop join visits every pair (its weight counts pairs), while
/// difference/NOT-IN dismisses most rows with a single hash probe. At the
/// benchmark's committed 16k-tuple scale the probe-cheap operators lose
/// more to pool dispatch and chunk merging than they gain from threads
/// (BENCH_baseline @1t 1.01 ms vs @4t 1.05 ms before this policy), so each
/// operator divides its weight by a grain factor reflecting its per-unit
/// cost before comparing against parallel_min_rows. Tests that force the
/// parallel paths with parallel_min_rows = 0 still force them: any
/// non-negative scaled weight clears a zero threshold.

#include <cstddef>

namespace incdb {

/// The chunk-partitioned operators (left rows split into contiguous
/// chunks, outputs merged in chunk order).
enum class ChunkOp {
  kNLJoin,        ///< weight = left×right pairs; every unit runs the predicate
  kDifference,    ///< weight = left+right rows; one hash probe per unit
  kUnifySemiJoin, ///< weight = left+right rows; one ⇑-index probe per unit
};

/// Work units per "row" of parallel_min_rows for the operator: the weight
/// is divided by this before the threshold comparison. Pair-visiting
/// operators count 1; the hash-probe-per-row difference needs ~64× more
/// rows before threading pays for dispatch + merge.
inline constexpr size_t ChunkGrain(ChunkOp op) {
  return op == ChunkOp::kDifference ? 64 : 1;
}

/// True when an operator with `left_rows` input rows and work estimate
/// `weight` should split across the pool under `num_threads` workers and
/// the `parallel_min_rows` threshold.
inline bool ChunkParallelismProfitable(size_t num_threads, size_t left_rows,
                                       size_t weight, size_t parallel_min_rows,
                                       ChunkOp op) {
  return num_threads > 1 && left_rows >= 2 &&
         weight / ChunkGrain(op) >= parallel_min_rows;
}

}  // namespace incdb

#endif  // INCDB_EVAL_PARALLEL_POLICY_H_
