// Delta propagation through the maintainable plan subset (see delta.h).
//
// The propagator mirrors the executor's emit semantics operator by
// operator (exec.cpp is the authority): same predicate truth threshold,
// same multiplicity arithmetic, same set-semantics collapses, same SQL
// null-key skips in the hash join. Maintained results must be
// bag-identical to cold recomputation — the differential fuzzer crosses
// the two paths.

#include "eval/delta.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "eval/batch.h"
#include "eval/verify.h"

namespace incdb {

namespace {

/// Mirror of the plan compiler's EvalMode → CondMode mapping.
CondMode DeltaCondMode(EvalMode m) {
  return m == EvalMode::kSetSql ? CondMode::kSql : CondMode::kNaive;
}

class DeltaPropagator {
 public:
  DeltaPropagator(const PlanPtr& plan, const CommitInfo& info)
      : plan_(plan),
        info_(info),
        pre_scans_(info.pre),
        post_scans_(info.post) {}

  StatusOr<RelationDelta> Run() { return Delta(plan_->root); }

 private:
  bool set() const { return plan_->mode != EvalMode::kBagNaive; }
  bool sql() const { return plan_->mode == EvalMode::kSetSql; }

  /// True when the subtree scans a relation the commit touched. Untouched
  /// subtrees have empty deltas and identical old/new values.
  bool Affected(const PhysPtr& n) {
    auto it = affected_.find(n.get());
    if (it != affected_.end()) return it->second;
    bool a = n->op == PhysOp::kScanView && info_.deltas.count(n->rel_name) > 0;
    if (n->left) a = Affected(n->left) || a;
    if (n->right) a = Affected(n->right) || a;
    affected_[n.get()] = a;
    return a;
  }

  /// The node's value at the commit boundary (pre or post side), evaluated
  /// lazily and memoised. Scans borrow straight from the pinned snapshots
  /// (set-collapsed like the executor's scan resolution); inner nodes
  /// re-execute the subtree against the matching snapshot.
  StatusOr<const RelationView*> ValueOf(const PhysPtr& n, bool post) {
    if (!Affected(n)) post = false;  // old == new: share one value
    const auto key = std::make_pair(static_cast<const void*>(n.get()), post);
    auto it = values_.find(key);
    if (it != values_.end()) return &it->second;
    RelationView v;
    if (n->op == PhysOp::kScanView) {
      auto r = (post ? post_scans_ : pre_scans_).Resolve(n->rel_name, set());
      if (!r.ok()) return r.status();
      v = std::move(*r);
    } else {
      auto r = ExecuteNode(plan_, n, post ? info_.post : info_.pre);
      if (!r.ok()) return r.status();
      v = RelationView::Own(std::move(*r));
    }
    return &values_.emplace(key, std::move(v)).first->second;
  }

  StatusOr<RelationDelta> Delta(const PhysPtr& n) {
    auto rc = plan_->refcount.find(n.get());
    const bool shared = rc != plan_->refcount.end() && rc->second > 1;
    if (shared) {
      auto it = memo_.find(n.get());
      if (it != memo_.end()) return it->second;
    }
    auto out = DeltaNode(n);
    if (out.ok() && shared) memo_.emplace(n.get(), *out);
    return out;
  }

  StatusOr<RelationDelta> DeltaNode(const PhysPtr& np) {
    const PhysNode& n = *np;
    if (!Affected(np)) {
      return RelationDelta{Relation(n.attrs), Relation(n.attrs)};
    }
    switch (n.op) {
      case PhysOp::kScanView:
        return ScanDelta(n);
      case PhysOp::kFilterSel:
        return FilterDelta(n, /*fused=*/false);
      case PhysOp::kFusedProjectFilter:
        return FilterDelta(n, /*fused=*/true);
      case PhysOp::kProject:
        return ProjectDelta(n);
      case PhysOp::kRename: {
        auto child = Delta(n.left);
        if (!child.ok()) return child;
        RelationDelta out = std::move(*child);
        INCDB_RETURN_IF_ERROR(out.plus.RenameAttrs(n.attrs));
        INCDB_RETURN_IF_ERROR(out.minus.RenameAttrs(n.attrs));
        return out;
      }
      case PhysOp::kUnion:
        return UnionDelta(n);
      case PhysOp::kHashJoin:
      case PhysOp::kNLJoin:
        return JoinDelta(n);
      default:
        return Status::FailedPrecondition(
            std::string("operator is not delta-maintainable: ") +
            ToString(n.op));
    }
  }

  StatusOr<RelationDelta> ScanDelta(const PhysNode& n) {
    RelationDelta out{Relation(n.attrs), Relation(n.attrs)};
    auto it = info_.deltas.find(n.rel_name);
    if (it == info_.deltas.end()) return out;  // untouched relation
    if (!it->second.has_value()) {
      return Status::FailedPrecondition(
          "relation " + n.rel_name + " changed without a row-level delta");
    }
    const RelationDelta& d = *it->second;
    if (!set()) {
      for (const auto& [t, c] : d.plus.rows()) {
        INCDB_RETURN_IF_ERROR(out.plus.Insert(t, c));
      }
      for (const auto& [t, c] : d.minus.rows()) {
        INCDB_RETURN_IF_ERROR(out.minus.Insert(t, c));
      }
      return out;
    }
    // Set semantics: the scan collapses multiplicities, so only 0→>0 and
    // >0→0 transitions matter. Deletions break the monotone insert-only
    // argument — abort and let the caller invalidate.
    const Relation* prer = info_.pre.Find(n.rel_name);
    const Relation* postr = info_.post.Find(n.rel_name);
    if (prer == nullptr || postr == nullptr) {
      return Status::FailedPrecondition(
          "relation " + n.rel_name + " missing at the commit boundary");
    }
    for (const auto& [t, c] : d.minus.rows()) {
      if (postr->Count(t) == 0) {
        return Status::FailedPrecondition(
            "set-level deletion from " + n.rel_name +
            " is not insert-only maintainable");
      }
    }
    for (const auto& [t, c] : d.plus.rows()) {
      if (prer->Count(t) == 0) {
        INCDB_RETURN_IF_ERROR(out.plus.Insert(t, 1));
      }
    }
    return out;
  }

  /// σ over the delta rows: the batch predicate program sweeps the delta
  /// in batch_size windows exactly like the executor sweeps base rows
  /// (scalar fallback when batching is off). Counts pass through; the
  /// fused projection collapses under set semantics like the executor.
  StatusOr<RelationDelta> FilterDelta(const PhysNode& n, bool fused) {
    auto child = Delta(n.left);
    if (!child.ok()) return child;
    RelationDelta out{Relation(n.attrs), Relation(n.attrs)};
    const std::vector<std::string>& in_attrs = fused ? n.left->attrs : n.attrs;
    std::optional<BatchPredicate> compiled;
    if (plan_->opts.batch_size > 0) {
      auto made =
          BatchPredicate::Make(n.cond, in_attrs, DeltaCondMode(plan_->mode));
      if (!made.ok()) return made.status();
      compiled = std::move(*made);
    }
    const BatchPredicate* bp = compiled ? &*compiled : nullptr;
    INCDB_RETURN_IF_ERROR(
        FilterInto(n, fused, bp, in_attrs, child->plus.rows(), &out.plus));
    INCDB_RETURN_IF_ERROR(
        FilterInto(n, fused, bp, in_attrs, child->minus.rows(), &out.minus));
    if (fused && set()) out.plus.CollapseCounts();
    return out;
  }

  Status FilterInto(const PhysNode& n, bool fused, const BatchPredicate* bp,
                    const std::vector<std::string>& in_attrs,
                    const std::vector<Relation::Row>& rows, Relation* out) {
    Tuple scratch;
    if (bp != nullptr) {
      const size_t bs = plan_->opts.batch_size;
      for (size_t begin = 0; begin < rows.size(); begin += bs) {
        const size_t end = std::min(rows.size(), begin + bs);
        gather_.Gather(rows, begin, end, bp->referenced(), in_attrs.size(),
                       &batch_);
        sel_.clear();
        bp->SelectTrue(batch_, &bp_scratch_, &sel_);
        for (uint32_t i : sel_) {
          const auto& [t, c] = rows[begin + i];
          if (fused) {
            scratch.AssignProject(t, n.proj_pos);
            INCDB_RETURN_IF_ERROR(out->Insert(scratch, c));
          } else {
            INCDB_RETURN_IF_ERROR(out->Insert(t, c));
          }
        }
      }
      return Status::OK();
    }
    for (const auto& [t, c] : rows) {
      if (n.pred(t) == TV3::kT) {
        if (fused) {
          scratch.AssignProject(t, n.proj_pos);
          INCDB_RETURN_IF_ERROR(out->Insert(scratch, c));
        } else {
          INCDB_RETURN_IF_ERROR(out->Insert(t, c));
        }
      }
    }
    return Status::OK();
  }

  StatusOr<RelationDelta> ProjectDelta(const PhysNode& n) {
    auto child = Delta(n.left);
    if (!child.ok()) return child;
    RelationDelta out{Relation(n.attrs), Relation(n.attrs)};
    Tuple scratch;
    for (const auto& [t, c] : child->plus.rows()) {
      scratch.AssignProject(t, n.proj_pos);
      INCDB_RETURN_IF_ERROR(out.plus.Insert(scratch, c));
    }
    for (const auto& [t, c] : child->minus.rows()) {
      scratch.AssignProject(t, n.proj_pos);
      INCDB_RETURN_IF_ERROR(out.minus.Insert(scratch, c));
    }
    if (set()) out.plus.CollapseCounts();
    return out;
  }

  StatusOr<RelationDelta> UnionDelta(const PhysNode& n) {
    auto l = Delta(n.left);
    if (!l.ok()) return l;
    auto r = Delta(n.right);
    if (!r.ok()) return r;
    RelationDelta out = std::move(*l);
    INCDB_RETURN_IF_ERROR(out.plus.RenameAttrs(n.attrs));
    INCDB_RETURN_IF_ERROR(out.minus.RenameAttrs(n.attrs));
    for (const auto& [t, c] : r->plus.rows()) {
      INCDB_RETURN_IF_ERROR(out.plus.Insert(t, c));
    }
    for (const auto& [t, c] : r->minus.rows()) {
      INCDB_RETURN_IF_ERROR(out.minus.Insert(t, c));
    }
    if (set()) out.plus.CollapseCounts();
    return out;
  }

  /// Δ(L ⋈ R) = ΔL ⋈ R_new + L_old ⋈ ΔR, each sign separately. Only the
  /// sides with non-empty deltas force a boundary re-evaluation of the
  /// opposite input, so a delta confined to one relation joins against
  /// the other side once and never materialises its own old value.
  StatusOr<RelationDelta> JoinDelta(const PhysNode& n) {
    auto l = Delta(n.left);
    if (!l.ok()) return l;
    auto r = Delta(n.right);
    if (!r.ok()) return r;
    RelationDelta out{Relation(n.attrs), Relation(n.attrs)};
    if (!l->plus.Empty() || !l->minus.Empty()) {
      auto rnew = ValueOf(n.right, /*post=*/true);
      if (!rnew.ok()) return rnew.status();
      INCDB_RETURN_IF_ERROR(
          JoinInto(n, l->plus.rows(), (*rnew)->rows(), &out.plus));
      INCDB_RETURN_IF_ERROR(
          JoinInto(n, l->minus.rows(), (*rnew)->rows(), &out.minus));
    }
    if (!r->plus.Empty() || !r->minus.Empty()) {
      auto lold = ValueOf(n.left, /*post=*/false);
      if (!lold.ok()) return lold.status();
      INCDB_RETURN_IF_ERROR(
          JoinInto(n, (*lold)->rows(), r->plus.rows(), &out.plus));
      INCDB_RETURN_IF_ERROR(
          JoinInto(n, (*lold)->rows(), r->minus.rows(), &out.minus));
    }
    if (set()) out.plus.CollapseCounts();
    return out;
  }

  /// Joins two row sets with the executor's emit semantics: residual
  /// predicate at kT, multiplicity lc·rc (1 under set semantics), fused
  /// projection at emit time. kHashJoin indexes the smaller input on its
  /// key columns (SQL mode skips null keys on both sides, like the
  /// executor); kNLJoin sweeps all pairs.
  Status JoinInto(const PhysNode& n, const std::vector<Relation::Row>& lrows,
                  const std::vector<Relation::Row>& rrows, Relation* out) {
    if (lrows.empty() || rrows.empty()) return Status::OK();
    Tuple joint, projected, key;
    const auto emit = [&](const Tuple& lt, uint64_t lc, const Tuple& rt,
                          uint64_t rc) -> Status {
      joint.AssignConcat(lt, rt);
      if (n.pred(joint) != TV3::kT) return Status::OK();
      const uint64_t c = set() ? 1 : lc * rc;
      if (n.fused_proj) {
        projected.AssignProject(joint, n.proj_pos);
        return out->Insert(projected, c);
      }
      return out->Insert(joint, c);
    };
    if (n.op != PhysOp::kHashJoin) {
      for (const auto& [lt, lc] : lrows) {
        for (const auto& [rt, rc] : rrows) {
          INCDB_RETURN_IF_ERROR(emit(lt, lc, rt, rc));
        }
      }
      return Status::OK();
    }
    const bool skip_null_keys = sql();
    const bool index_left = lrows.size() <= rrows.size();
    const auto& irows = index_left ? lrows : rrows;
    const auto& ikeys = index_left ? n.lkeys : n.rkeys;
    const auto& srows = index_left ? rrows : lrows;
    const auto& skeys = index_left ? n.rkeys : n.lkeys;
    std::unordered_multimap<size_t, uint32_t> idx;
    idx.reserve(irows.size());
    for (uint32_t i = 0; i < irows.size(); ++i) {
      key.AssignProject(irows[i].first, ikeys);
      if (skip_null_keys && key.HasNull()) continue;
      idx.emplace(key.Hash(), i);
    }
    for (const auto& [st, sc] : srows) {
      key.AssignProject(st, skeys);
      if (skip_null_keys && key.HasNull()) continue;
      auto [lo, hi] = idx.equal_range(key.Hash());
      for (auto it = lo; it != hi; ++it) {
        const auto& [bt, bc] = irows[it->second];
        bool eq = true;
        for (size_t k = 0; k < ikeys.size() && eq; ++k) {
          eq = bt[ikeys[k]] == st[skeys[k]];
        }
        if (!eq) continue;
        INCDB_RETURN_IF_ERROR(index_left ? emit(bt, bc, st, sc)
                                         : emit(st, sc, bt, bc));
      }
    }
    return Status::OK();
  }

  PlanPtr plan_;
  const CommitInfo& info_;
  ScanResolver pre_scans_;
  ScanResolver post_scans_;
  std::unordered_map<const PhysNode*, bool> affected_;
  std::unordered_map<const PhysNode*, RelationDelta> memo_;
  /// (node, post?) → boundary value; untouched subtrees share the pre key.
  std::map<std::pair<const void*, bool>, RelationView> values_;
  BatchGather gather_;
  Batch batch_;
  SelVector sel_;
  BatchPredicate::Scratch bp_scratch_;
};

}  // namespace

StatusOr<RelationDelta> PropagateDelta(const PlanPtr& plan,
                                       const CommitInfo& info) {
  if (!plan || !plan->root) {
    return Status::InvalidArgument("PropagateDelta: empty plan");
  }
  if (!plan->maintainable) {
    return Status::FailedPrecondition("plan is not maintainable");
  }
  if (plan->param_count > 0) {
    return Status::InvalidArgument(
        "PropagateDelta: plan has unbound parameters");
  }
  // Maintenance re-walks a plan long after it was compiled; re-verify it
  // (against the pre-commit snapshot, whose schemas it was executed on)
  // before trusting its positions to index delta rows.
  INCDB_RETURN_IF_ERROR(internal::MaybeVerifyPlan(*plan, &info.pre));
  return DeltaPropagator(plan, info).Run();
}

Status ApplyResultDelta(Relation* result, const RelationDelta& delta,
                        bool set_semantics) {
  if (set_semantics) {
    if (!delta.minus.Empty()) {
      return Status::Internal("set-semantics delta carries deletions");
    }
    for (const auto& [t, c] : delta.plus.rows()) {
      if (result->Count(t) == 0) {
        INCDB_RETURN_IF_ERROR(result->Insert(t, 1));
      }
    }
    return Status::OK();
  }
  for (const auto& [t, c] : delta.plus.rows()) {
    INCDB_RETURN_IF_ERROR(result->Insert(t, c));
  }
  for (const auto& [t, c] : delta.minus.rows()) {
    INCDB_RETURN_IF_ERROR(result->Erase(t, c));
  }
  return Status::OK();
}

}  // namespace incdb
