#ifndef INCDB_EVAL_EVAL_H_
#define INCDB_EVAL_EVAL_H_

/// \file eval.h
/// \brief Query evaluators over (incomplete) databases.
///
/// Three evaluation disciplines from the paper:
///
///  * EvalSet — *naive evaluation* (§4.1): nulls are treated as fresh
///    constants and the query is evaluated classically under set semantics.
///    On complete databases this is plain relational algebra evaluation.
///    Data complexity AC0.
///  * EvalBag — the same naive discipline under SQL-style *bag semantics*
///    (§4.2): union adds multiplicities, difference subtracts up to zero,
///    projection adds, product multiplies.
///  * EvalSql — models SQL's actual behaviour (§1, §5.2): selection
///    conditions are evaluated in Kleene's 3VL with every null comparison
///    yielding u, and only rows evaluating to t are kept (the assertion
///    operator ↑); difference behaves like NOT IN and intersection like IN.
///    This evaluator reproduces SQL's false positives and false negatives.
///
/// All evaluators execute the sugar operators (join/semijoin/antijoin)
/// natively with EXISTS-style semantics and use hash-join fast paths for
/// top-level equality conjuncts.
///
/// Since the physical-plan layer (eval/plan.h) these entry points are thin
/// wrappers: the algebra tree is first *compiled* into a physical plan
/// (join strategy, conjunct splitting, projection fusion and the other
/// rewrites below are decided once), then the plan is *executed* against
/// the database. Callers that evaluate one query repeatedly can Compile()
/// once and Execute() many times.

#include "algebra/algebra.h"
#include "core/database.h"
#include "core/exec_context.h"
#include "core/relation.h"
#include "core/status.h"

namespace incdb {

/// Hard ceiling on EvalOptions::num_threads: requests beyond this are
/// clamped at plan-compile time (the partition count drives per-partition
/// bookkeeping allocations, so an absurd request must not be taken
/// literally).
inline constexpr size_t kMaxEvalThreads = 64;

/// Resource limits and optimizer toggles for an evaluation.
/// Each enable_* toggle switches one rewrite pass of the plan compiler
/// (eval/plan.h) on or off; they exist for the ablation study
/// (bench_ablation) and disabling them never changes results, only cost
/// (and the compiled plan's shape).
struct EvalOptions {
  /// Abort with ResourceExhausted once a single operator has produced this
  /// many tuple occurrences. Dom^k products (Fig. 2a) hit this quickly,
  /// which is experiment E2.
  uint64_t max_tuples = 100'000'000;
  /// Hash join on top-level equality conjuncts (vs nested loops).
  bool enable_hash_join = true;
  /// σ_{θ1∨θ2}(l×r) = σ_{θ1}(l×r) ∪ σ_{θ2}(l×r) under set semantics —
  /// rescues the disjunctions produced by the Fig. 2(b) σ?-rule.
  bool enable_or_expansion = true;
  /// π(σ(l×r)) projects at emit time instead of materialising pairs.
  bool enable_projection_fusion = true;
  /// Null-mask index for ⋉⇑ probes (vs quadratic unifiability scans).
  bool enable_unify_index = true;
  /// One-sided filter conjuncts of a join condition move below the join
  /// (through products and renames) at plan-compile time.
  bool enable_selection_pushdown = true;
  /// Worker threads for the partitioned physical operators (hash join,
  /// nested-loop join, difference/NOT-IN, ⋉⇑). 1 keeps the exact
  /// single-threaded insertion order; >1 splits the work across a small
  /// thread pool and merges the outputs in partition order — always the
  /// same *relation* at any thread count, and for the chunk-partitioned
  /// operators (NL join, difference, ⋉⇑) the exact sequential row order
  /// too. Validated at plan-compile time: 0 means "use
  /// hardware_concurrency()", values above kMaxEvalThreads are clamped
  /// (see ResolveNumThreads in eval/plan.h).
  size_t num_threads = 1;
  /// Minimum input size (rows, operator-specific: build+probe for the hash
  /// join, left×right pairs for the NL join, left+right rows for
  /// difference and ⋉⇑) before a parallel operator actually splits work
  /// across the pool — below it, threading overhead dominates. Tests set
  /// this to 0 to force the parallel paths on tiny inputs.
  size_t parallel_min_rows = 1024;
  /// Rows per columnar chunk of the vectorized operator paths
  /// (eval/batch.h): filters and the join probe loops transpose this many
  /// rows at a time, evaluate the condition program column-wise into a
  /// selection vector, and fire deadline/cancel checkpoints once per
  /// batch. 0 runs the legacy tuple-at-a-time interpreter. Never changes
  /// results — rows, order and multiplicities are bit-identical at every
  /// batch size (the differential fuzzer crosses 0/1/3/1024).
  size_t batch_size = 1024;
  /// Serve EvalSet/EvalBag/EvalSql compilations from the process-wide
  /// query-identity plan cache (eval/plan_cache.h) instead of recompiling
  /// per call. Never changes results — the cache key covers the query
  /// structure, mode, every option above and the scanned schemas.
  bool use_plan_cache = true;
  /// Serve repeated PreparedQuery::Execute calls from the session's
  /// data-fingerprint-aware result cache (eval/result_cache.h) when the
  /// scanned relations' version stamps are unchanged. Never changes
  /// results — keys cover query identity, bindings and data versions.
  /// Not part of the plan-cache key (it does not affect compilation).
  bool use_result_cache = true;
  /// On Session::Mutate commits, upgrade cached results of maintainable
  /// plans in place by propagating the commit's row-level deltas
  /// (eval/delta.h) instead of invalidating them. Never changes results —
  /// maintained entries are bag-identical to cold recomputation (the
  /// differential fuzzer crosses the two paths). Off, every touched
  /// dependency invalidates. Only meaningful with use_result_cache; not
  /// part of the plan-cache key (it does not affect compilation).
  bool use_result_maintenance = true;
};

/// Naive evaluation under set semantics (treat nulls as fresh constants).
/// The four-argument overloads carry an ExecContext (deadline /
/// cancellation token / soft memory budget) observed cooperatively by
/// every operator; the three-argument forms run unlimited. Separate
/// overloads — not a defaulted parameter — so `&EvalSet` keeps its
/// existing function-pointer type.
StatusOr<Relation> EvalSet(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts = {});
StatusOr<Relation> EvalSet(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts, const ExecContext& ctx);

/// Naive evaluation under bag semantics.
StatusOr<Relation> EvalBag(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts = {});
StatusOr<Relation> EvalBag(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts, const ExecContext& ctx);

/// SQL-style evaluation: 3VL WHERE (keep t), NOT-IN-style difference,
/// IN-style intersection; set semantics output (DISTINCT).
StatusOr<Relation> EvalSql(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts = {});
StatusOr<Relation> EvalSql(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts, const ExecContext& ctx);

/// Kleene truth value of the whole-tuple comparison r̄ = s̄ under SQL 3VL:
/// f if some position has two distinct constants, else u if any null is
/// involved, else t. (Used by NOT IN / IN modelling.)
TV3 SqlTupleEq(const Tuple& a, const Tuple& b);

}  // namespace incdb

#endif  // INCDB_EVAL_EVAL_H_
