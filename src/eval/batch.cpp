#include "eval/batch.h"

#include <algorithm>
#include <functional>

namespace incdb {

namespace {

// The branchless connective loops below rely on the numeric encoding of
// Kleene's truth order f < u < t (∧ = min, ∨ = max, ¬ = 2 − x; see
// logic/kleene.cpp).
static_assert(static_cast<uint8_t>(TV3::kF) == 0 &&
                  static_cast<uint8_t>(TV3::kU) == 1 &&
                  static_cast<uint8_t>(TV3::kT) == 2,
              "batch connectives assume the f < u < t encoding");

constexpr uint8_t kT8 = static_cast<uint8_t>(TV3::kT);
constexpr uint8_t kF8 = static_cast<uint8_t>(TV3::kF);

inline uint8_t ToU8(TV3 v) { return static_cast<uint8_t>(v); }

}  // namespace

StatusOr<BatchPredicate> BatchPredicate::Make(
    const CondPtr& c, const std::vector<std::string>& attrs, CondMode mode) {
  BatchPredicate out;
  out.mode_ = mode;

  auto resolve = [&](const std::string& name) -> StatusOr<uint32_t> {
    size_t i = IndexOf(attrs, name);
    if (i == attrs.size()) {
      return Status::NotFound("condition references unknown attribute " + name);
    }
    if (std::find(out.referenced_.begin(), out.referenced_.end(), i) ==
        out.referenced_.end()) {
      out.referenced_.push_back(i);
    }
    return static_cast<uint32_t>(i);
  };

  // Postorder flattening over a virtual register stack: atoms push a fresh
  // register, ∧/∨ pop two and push their combination in place of the lower
  // one, so the program needs exactly condition-depth registers.
  uint32_t depth = 0;
  std::function<Status(const CondPtr&)> build = [&](const CondPtr& n) -> Status {
    switch (n->kind) {
      case CondKind::kAnd:
      case CondKind::kOr: {
        INCDB_RETURN_IF_ERROR(build(n->left));
        INCDB_RETURN_IF_ERROR(build(n->right));
        Insn in;
        in.kind = n->kind;
        in.dst = depth - 2;
        in.src2 = depth - 1;
        out.prog_.push_back(std::move(in));
        --depth;
        return Status::OK();
      }
      case CondKind::kEqAttrAttr:
      case CondKind::kNeqAttrAttr:
      case CondKind::kLtAttrAttr:
      case CondKind::kLeAttrAttr: {
        auto l = resolve(n->lhs);
        if (!l.ok()) return l.status();
        auto r = resolve(n->rhs);
        if (!r.ok()) return r.status();
        Insn in;
        in.kind = n->kind;
        in.col = *l;
        in.col2 = *r;
        in.dst = depth++;
        out.prog_.push_back(std::move(in));
        break;
      }
      case CondKind::kEqAttrConst:
      case CondKind::kNeqAttrConst:
      case CondKind::kIsConst:
      case CondKind::kIsNull:
      case CondKind::kLtAttrConst:
      case CondKind::kLeAttrConst:
      case CondKind::kGtAttrConst:
      case CondKind::kGeAttrConst: {
        auto l = resolve(n->lhs);
        if (!l.ok()) return l.status();
        Insn in;
        in.kind = n->kind;
        in.col = *l;
        in.constant = n->constant;
        in.dst = depth++;
        out.prog_.push_back(std::move(in));
        break;
      }
      case CondKind::kTrue:
      case CondKind::kFalse: {
        Insn in;
        in.kind = n->kind;
        in.dst = depth++;
        out.prog_.push_back(std::move(in));
        break;
      }
    }
    out.n_regs_ = std::max(out.n_regs_, depth);
    return Status::OK();
  };
  INCDB_RETURN_IF_ERROR(build(c));
  return out;
}

Status BatchPredicate::Validate(size_t input_arity) const {
  if (prog_.empty()) return Status::Internal("empty register program");
  auto in_referenced = [this](uint32_t col) {
    return std::find(referenced_.begin(), referenced_.end(), col) !=
           referenced_.end();
  };
  // Replay the postorder stack discipline Make() compiles: atoms push the
  // register at the current depth, ∧/∨ combine the two topmost in place of
  // the lower one. Any deviation means the program no longer computes a
  // single condition value in register 0.
  uint32_t depth = 0;
  uint32_t max_depth = 0;
  for (size_t pc = 0; pc < prog_.size(); ++pc) {
    const Insn& in = prog_[pc];
    const std::string at = " at instruction " + std::to_string(pc);
    switch (in.kind) {
      case CondKind::kAnd:
      case CondKind::kOr:
        if (depth < 2) return Status::Internal("stack underflow" + at);
        if (in.dst != depth - 2 || in.src2 != depth - 1) {
          return Status::Internal("connective registers break the postorder "
                                  "stack discipline" +
                                  at);
        }
        --depth;
        break;
      case CondKind::kEqAttrAttr:
      case CondKind::kNeqAttrAttr:
      case CondKind::kLtAttrAttr:
      case CondKind::kLeAttrAttr:
        if (in.col2 >= input_arity || !in_referenced(in.col2)) {
          return Status::Internal("rhs column operand out of range" + at);
        }
        [[fallthrough]];
      case CondKind::kEqAttrConst:
      case CondKind::kNeqAttrConst:
      case CondKind::kIsConst:
      case CondKind::kIsNull:
      case CondKind::kLtAttrConst:
      case CondKind::kLeAttrConst:
      case CondKind::kGtAttrConst:
      case CondKind::kGeAttrConst:
        if (in.col >= input_arity || !in_referenced(in.col)) {
          return Status::Internal("column operand out of range" + at);
        }
        if (in.constant.is_param()) {
          return Status::Internal("unbound parameter placeholder" + at);
        }
        [[fallthrough]];
      case CondKind::kTrue:
      case CondKind::kFalse:
        if (in.dst != depth) {
          return Status::Internal("atom writes register " +
                                  std::to_string(in.dst) +
                                  ", stack top is " + std::to_string(depth) +
                                  at);
        }
        ++depth;
        max_depth = std::max(max_depth, depth);
        break;
      default:
        return Status::Internal("unknown opcode" + at);
    }
  }
  if (depth != 1) {
    return Status::Internal("program leaves " + std::to_string(depth) +
                            " value(s) on the register stack");
  }
  if (n_regs_ != max_depth) {
    return Status::Internal("register count " + std::to_string(n_regs_) +
                            " does not match the program's stack depth " +
                            std::to_string(max_depth));
  }
  for (size_t col : referenced_) {
    if (col >= input_arity) {
      return Status::Internal("referenced column " + std::to_string(col) +
                              " out of range for arity " +
                              std::to_string(input_arity));
    }
  }
  if (mode_ != CondMode::kNaive && mode_ != CondMode::kSql &&
      mode_ != CondMode::kUnif) {
    return Status::Internal("invalid condition mode");
  }
  return Status::OK();
}

void BatchPredicate::Run(const Batch& b, Scratch* s) const {
  const size_t n = b.rows;
  if (s->regs.size() < n_regs_) s->regs.resize(n_regs_);
  for (uint32_t r = 0; r < n_regs_; ++r) {
    if (s->regs[r].size() < n) s->regs[r].resize(n);
  }
  const CondMode mode = mode_;
  for (const Insn& in : prog_) {
    uint8_t* dst = s->regs[in.dst].data();
    switch (in.kind) {
      case CondKind::kTrue:
        std::fill(dst, dst + n, kT8);
        break;
      case CondKind::kFalse:
        std::fill(dst, dst + n, kF8);
        break;
      case CondKind::kAnd: {
        const uint8_t* b2 = s->regs[in.src2].data();
        for (size_t i = 0; i < n; ++i) dst[i] = std::min(dst[i], b2[i]);
        break;
      }
      case CondKind::kOr: {
        const uint8_t* b2 = s->regs[in.src2].data();
        for (size_t i = 0; i < n; ++i) dst[i] = std::max(dst[i], b2[i]);
        break;
      }
      case CondKind::kEqAttrAttr: {
        const BatchColumn a = b.cols[in.col], c2 = b.cols[in.col2];
        for (size_t i = 0; i < n; ++i) {
          dst[i] = ToU8(CondEqTV(a.At(i), c2.At(i), mode));
        }
        break;
      }
      case CondKind::kNeqAttrAttr: {
        const BatchColumn a = b.cols[in.col], c2 = b.cols[in.col2];
        for (size_t i = 0; i < n; ++i) {
          dst[i] = 2 - ToU8(CondEqTV(a.At(i), c2.At(i), mode));
        }
        break;
      }
      case CondKind::kEqAttrConst: {
        const BatchColumn a = b.cols[in.col];
        for (size_t i = 0; i < n; ++i) {
          dst[i] = ToU8(CondEqTV(a.At(i), in.constant, mode));
        }
        break;
      }
      case CondKind::kNeqAttrConst: {
        const BatchColumn a = b.cols[in.col];
        for (size_t i = 0; i < n; ++i) {
          dst[i] = 2 - ToU8(CondEqTV(a.At(i), in.constant, mode));
        }
        break;
      }
      case CondKind::kIsConst: {
        const BatchColumn a = b.cols[in.col];
        for (size_t i = 0; i < n; ++i) {
          dst[i] = ToU8(FromBool(a.At(i).is_const()));
        }
        break;
      }
      case CondKind::kIsNull: {
        const BatchColumn a = b.cols[in.col];
        for (size_t i = 0; i < n; ++i) {
          dst[i] = ToU8(FromBool(a.At(i).is_null()));
        }
        break;
      }
      case CondKind::kLtAttrAttr: {
        const BatchColumn a = b.cols[in.col], c2 = b.cols[in.col2];
        for (size_t i = 0; i < n; ++i) {
          dst[i] = ToU8(CondOrderTV(a.At(i), c2.At(i), /*strict=*/true, mode));
        }
        break;
      }
      case CondKind::kLeAttrAttr: {
        const BatchColumn a = b.cols[in.col], c2 = b.cols[in.col2];
        for (size_t i = 0; i < n; ++i) {
          dst[i] = ToU8(CondOrderTV(a.At(i), c2.At(i), /*strict=*/false, mode));
        }
        break;
      }
      case CondKind::kLtAttrConst: {
        const BatchColumn a = b.cols[in.col];
        for (size_t i = 0; i < n; ++i) {
          dst[i] =
              ToU8(CondOrderTV(a.At(i), in.constant, /*strict=*/true, mode));
        }
        break;
      }
      case CondKind::kLeAttrConst: {
        const BatchColumn a = b.cols[in.col];
        for (size_t i = 0; i < n; ++i) {
          dst[i] =
              ToU8(CondOrderTV(a.At(i), in.constant, /*strict=*/false, mode));
        }
        break;
      }
      case CondKind::kGtAttrConst: {
        // Operand order mirrors the scalar evaluator: A > c ≡ c < A.
        const BatchColumn a = b.cols[in.col];
        for (size_t i = 0; i < n; ++i) {
          dst[i] =
              ToU8(CondOrderTV(in.constant, a.At(i), /*strict=*/true, mode));
        }
        break;
      }
      case CondKind::kGeAttrConst: {
        const BatchColumn a = b.cols[in.col];
        for (size_t i = 0; i < n; ++i) {
          dst[i] =
              ToU8(CondOrderTV(in.constant, a.At(i), /*strict=*/false, mode));
        }
        break;
      }
    }
  }
}

void BatchPredicate::SelectTrue(const Batch& b, Scratch* scratch,
                                SelVector* sel) const {
  Run(b, scratch);
  const uint8_t* res = scratch->regs[0].data();
  for (size_t i = 0; i < b.rows; ++i) {
    if (res[i] == kT8) sel->push_back(static_cast<uint32_t>(i));
  }
}

void BatchPredicate::EvalTruth(const Batch& b, Scratch* scratch,
                               uint8_t* out) const {
  Run(b, scratch);
  const uint8_t* res = scratch->regs[0].data();
  std::copy(res, res + b.rows, out);
}

}  // namespace incdb
