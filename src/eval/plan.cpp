#include "eval/plan.h"

#include <algorithm>
#include <set>
#include <thread>
#include <unordered_set>
#include <utility>

#include "eval/verify.h"

namespace incdb {

const char* ToString(PhysOp op) {
  switch (op) {
    case PhysOp::kScanView:
      return "ScanView";
    case PhysOp::kFilterSel:
      return "FilterSel";
    case PhysOp::kFusedProjectFilter:
      return "FusedProjectFilter";
    case PhysOp::kProject:
      return "Project";
    case PhysOp::kRename:
      return "Rename";
    case PhysOp::kHashJoin:
      return "HashJoin";
    case PhysOp::kNLJoin:
      return "NLJoin";
    case PhysOp::kUnion:
      return "Union";
    case PhysOp::kHashDiff:
      return "HashDiff";
    case PhysOp::kHashIntersect:
      return "HashIntersect";
    case PhysOp::kDivision:
      return "Division";
    case PhysOp::kUnifySemiJoin:
      return "UnifySemiJoin";
    case PhysOp::kHashSemi:
      return "HashSemi";
    case PhysOp::kInPred:
      return "InPred";
    case PhysOp::kDom:
      return "Dom";
    case PhysOp::kDistinct:
      return "Distinct";
  }
  return "?";
}

namespace {

CondMode ToCondMode(EvalMode m) {
  return m == EvalMode::kSetSql ? CondMode::kSql : CondMode::kNaive;
}

/// Extracts top-level conjuncts of a condition, dropping trivial `true`s
/// (which would otherwise hide single-disjunction shapes from the
/// OR-expansion pass).
void Conjuncts(const CondPtr& c, std::vector<CondPtr>* out) {
  if (c->kind == CondKind::kAnd) {
    Conjuncts(c->left, out);
    Conjuncts(c->right, out);
  } else if (c->kind != CondKind::kTrue) {
    out->push_back(c);
  }
}

/// Rewrites the attribute names of a condition through a rename mapping
/// (new name → old name), for pushing selections below ρ.
CondPtr RenameCondAttrs(const CondPtr& c,
                        const std::map<std::string, std::string>& to_old) {
  auto out = std::make_shared<Condition>(*c);
  if (c->left) out->left = RenameCondAttrs(c->left, to_old);
  if (c->right) out->right = RenameCondAttrs(c->right, to_old);
  auto translate = [&to_old](std::string* name) {
    auto it = to_old.find(*name);
    if (it != to_old.end()) *name = it->second;
  };
  switch (c->kind) {
    case CondKind::kEqAttrAttr:
    case CondKind::kNeqAttrAttr:
    case CondKind::kLtAttrAttr:
    case CondKind::kLeAttrAttr:
      translate(&out->lhs);
      translate(&out->rhs);
      break;
    case CondKind::kEqAttrConst:
    case CondKind::kNeqAttrConst:
    case CondKind::kIsConst:
    case CondKind::kIsNull:
    case CondKind::kLtAttrConst:
    case CondKind::kLeAttrConst:
    case CondKind::kGtAttrConst:
    case CondKind::kGeAttrConst:
      translate(&out->lhs);
      break;
    default:
      break;
  }
  return out;
}

/// True iff every attribute the condition mentions belongs to `attrs`.
bool CondWithin(const CondPtr& c, const std::vector<std::string>& attrs) {
  for (const std::string& a : CondAttrs(c)) {
    if (IndexOf(attrs, a) == attrs.size()) return false;
  }
  return true;
}

class Compiler {
 public:
  Compiler(EvalMode mode, const EvalOptions& opts, const Database& db,
           bool for_ctables)
      : mode_(mode), opts_(opts), db_(db), for_ctables_(for_ctables) {}

  StatusOr<PhysPtr> CompileNode(const AlgPtr& q) {
    switch (q->kind) {
      case OpKind::kScan:
        return CompileScan(q);
      case OpKind::kSelect:
        return CompileSelect(q);
      case OpKind::kProject:
        return CompileProject(q);
      case OpKind::kRename:
        return CompileRename(q);
      case OpKind::kProduct:
        return CompileJoinLike(q->left, q->right, CTrue(), nullptr);
      case OpKind::kJoin:
        if (for_ctables_) return CTableUnsupported();
        return CompileJoinLike(q->left, q->right, q->cond, nullptr);
      case OpKind::kUnion:
        return CompileSetOp(q, PhysOp::kUnion, "union");
      case OpKind::kDifference:
        return CompileSetOp(q, PhysOp::kHashDiff, "difference");
      case OpKind::kIntersect:
        return CompileSetOp(q, PhysOp::kHashIntersect, "intersection");
      case OpKind::kDivision:
        return CompileDivision(q);
      case OpKind::kAntijoinUnify:
        return CompileSetOp(q, PhysOp::kUnifySemiJoin, "⋉⇑");
      case OpKind::kDom:
        return CompileDom(q);
      case OpKind::kSemijoin:
        return CompileSemiAnti(q, /*anti=*/false);
      case OpKind::kAntijoin:
        return CompileSemiAnti(q, /*anti=*/true);
      case OpKind::kIn:
        return CompileInPredicate(q, /*negated=*/false);
      case OpKind::kNotIn:
        return CompileInPredicate(q, /*negated=*/true);
      case OpKind::kDistinct: {
        if (for_ctables_) return CTableUnsupported();
        auto in = CompileNode(q->left);
        if (!in.ok()) return in;
        auto node = std::make_shared<PhysNode>();
        node->op = PhysOp::kDistinct;
        node->attrs = (*in)->attrs;
        node->left = *in;
        return PhysPtr(node);
      }
    }
    return Status::Internal("unknown operator");
  }

 private:
  bool set_semantics() const { return mode_ != EvalMode::kBagNaive; }

  static Status CTableUnsupported() {
    return Status::Unsupported(
        "conditional evaluation covers the core grammar + ∩; desugar "
        "the query first");
  }

  /// Compiles `cond` against `attrs` into the node's predicate (validating
  /// attribute references on the way). Parameterised conditions also
  /// record the input schema so BindPlanParams can recompile the predicate
  /// once the placeholders are substituted.
  Status AttachCond(PhysNode* node, const CondPtr& cond,
                    const std::vector<std::string>& attrs) {
    auto pred = CompileCond(cond, attrs, ToCondMode(mode_));
    if (!pred.ok()) return pred.status();
    node->cond = cond;
    node->pred = std::move(*pred);
    if (CondHasParam(cond)) node->pred_attrs = attrs;
    return Status::OK();
  }

  StatusOr<PhysPtr> CompileScan(const AlgPtr& q) {
    if (!db_.Has(q->rel_name)) {
      return Status::NotFound("no relation named " + q->rel_name);
    }
    auto node = std::make_shared<PhysNode>();
    node->op = PhysOp::kScanView;
    node->rel_name = q->rel_name;
    node->attrs = db_.at(q->rel_name).attrs();
    return PhysPtr(node);
  }

  StatusOr<PhysPtr> CompileSelect(const AlgPtr& q) {
    // A selection directly over a product is a join (the predicate decides
    // which pairs survive) — fold it into the join machinery so the
    // conjunct-split / pushdown / OR-expansion passes see the condition.
    if (!for_ctables_ && q->left->kind == OpKind::kProduct) {
      return CompileJoinLike(q->left->left, q->left->right, q->cond, nullptr);
    }
    auto in = CompileNode(q->left);
    if (!in.ok()) return in;
    auto node = std::make_shared<PhysNode>();
    node->op = PhysOp::kFilterSel;
    node->attrs = (*in)->attrs;
    node->left = *in;
    INCDB_RETURN_IF_ERROR(AttachCond(node.get(), q->cond, node->attrs));
    return PhysPtr(node);
  }

  StatusOr<PhysPtr> CompileProject(const AlgPtr& q) {
    // Projection fusion: π over a join-shaped child projects at emit time
    // instead of materialising the full-width pairs (π(σ(l × r)) is the
    // shape the desugared [NOT] IN / EXISTS and the Fig. 2 σ?-rules
    // produce).
    const Algebra* child = q->left.get();
    if (!for_ctables_ && opts_.enable_projection_fusion &&
        (child->kind == OpKind::kJoin ||
         (child->kind == OpKind::kSelect &&
          child->left->kind == OpKind::kProduct) ||
         child->kind == OpKind::kProduct)) {
      AlgPtr lq, rq;
      CondPtr cond;
      if (child->kind == OpKind::kJoin) {
        lq = child->left;
        rq = child->right;
        cond = child->cond;
      } else if (child->kind == OpKind::kProduct) {
        lq = child->left;
        rq = child->right;
        cond = CTrue();
      } else {
        lq = child->left->left;
        rq = child->left->right;
        cond = child->cond;
      }
      return CompileJoinLike(lq, rq, cond, &q->attrs);
    }
    // π(σ(x)) over a non-join child: one fused pass filters and projects
    // at emit time.
    if (!for_ctables_ && opts_.enable_projection_fusion &&
        child->kind == OpKind::kSelect) {
      auto in = CompileNode(child->left);
      if (!in.ok()) return in;
      auto node = std::make_shared<PhysNode>();
      node->op = PhysOp::kFusedProjectFilter;
      node->left = *in;
      INCDB_RETURN_IF_ERROR(AttachCond(node.get(), child->cond, (*in)->attrs));
      INCDB_RETURN_IF_ERROR(
          ResolveProjection(q->attrs, (*in)->attrs, &node->proj_pos));
      node->attrs = q->attrs;
      return PhysPtr(node);
    }
    auto in = CompileNode(q->left);
    if (!in.ok()) return in;
    auto node = std::make_shared<PhysNode>();
    node->op = PhysOp::kProject;
    node->left = *in;
    INCDB_RETURN_IF_ERROR(
        ResolveProjection(q->attrs, (*in)->attrs, &node->proj_pos));
    node->attrs = q->attrs;
    return PhysPtr(node);
  }

  static Status ResolveProjection(const std::vector<std::string>& proj,
                                  const std::vector<std::string>& attrs,
                                  std::vector<size_t>* pos) {
    for (const std::string& a : proj) {
      size_t i = IndexOf(attrs, a);
      if (i == attrs.size()) {
        return Status::NotFound("projection attribute " + a + " not in input");
      }
      pos->push_back(i);
    }
    return Status::OK();
  }

  StatusOr<PhysPtr> CompileRename(const AlgPtr& q) {
    auto in = CompileNode(q->left);
    if (!in.ok()) return in;
    if (q->attrs.size() != (*in)->attrs.size()) {
      return Status::InvalidArgument("rename: arity mismatch");
    }
    auto node = std::make_shared<PhysNode>();
    node->op = PhysOp::kRename;
    node->attrs = q->attrs;
    node->left = *in;
    return PhysPtr(node);
  }

  /// Binary operators whose inputs must agree on arity.
  StatusOr<PhysPtr> CompileSetOp(const AlgPtr& q, PhysOp op, const char* name) {
    if (for_ctables_ &&
        (op == PhysOp::kUnifySemiJoin)) {
      return CTableUnsupported();
    }
    auto l = CompileNode(q->left);
    if (!l.ok()) return l;
    auto r = CompileNode(q->right);
    if (!r.ok()) return r;
    if ((*l)->attrs.size() != (*r)->attrs.size()) {
      return Status::InvalidArgument(std::string(name) + ": arity mismatch");
    }
    auto node = std::make_shared<PhysNode>();
    node->op = op;
    node->attrs = (*l)->attrs;
    node->left = *l;
    node->right = *r;
    return PhysPtr(node);
  }

  StatusOr<PhysPtr> CompileDivision(const AlgPtr& q) {
    if (for_ctables_) return CTableUnsupported();
    if (mode_ == EvalMode::kSetSql) {
      return Status::Unsupported("division is not part of the SQL evaluator");
    }
    auto l = CompileNode(q->left);
    if (!l.ok()) return l;
    auto r = CompileNode(q->right);
    if (!r.ok()) return r;
    auto node = std::make_shared<PhysNode>();
    node->op = PhysOp::kDivision;
    node->left = *l;
    node->right = *r;
    // Align divisor attributes by name.
    const std::vector<std::string>& la = (*l)->attrs;
    const std::vector<std::string>& ra = (*r)->attrs;
    for (size_t i = 0; i < la.size(); ++i) {
      size_t j = IndexOf(ra, la[i]);
      if (j == ra.size()) {
        node->keep_pos.push_back(i);
        node->attrs.push_back(la[i]);
      } else {
        node->div_l.push_back(i);
        node->div_r.push_back(j);
      }
    }
    if (node->div_l.size() != ra.size()) {
      return Status::InvalidArgument(
          "division: divisor attributes must occur in the dividend");
    }
    if (node->attrs.empty()) {
      return Status::InvalidArgument(
          "division: dividend must have attributes beyond the divisor");
    }
    return PhysPtr(node);
  }

  StatusOr<PhysPtr> CompileDom(const AlgPtr& q) {
    if (for_ctables_) return CTableUnsupported();
    auto node = std::make_shared<PhysNode>();
    node->op = PhysOp::kDom;
    node->attrs = q->attrs;
    node->dom_arity = q->dom_arity;
    node->dom_extra = q->dom_extra;
    return PhysPtr(node);
  }

  /// Joint schema of a join-like operator; errors on shared names.
  static StatusOr<std::vector<std::string>> JointAttrs(
      const PhysPtr& l, const PhysPtr& r, const char* op_name) {
    std::vector<std::string> attrs = l->attrs;
    for (const std::string& a : r->attrs) {
      if (IndexOf(l->attrs, a) != l->attrs.size()) {
        return Status::InvalidArgument(std::string(op_name) + ": attribute " +
                                       a + " appears on both sides (rename)");
      }
      attrs.push_back(a);
    }
    return attrs;
  }

  /// Splits `conj` into hash keys (top-level left=right equality conjuncts,
  /// honouring enable_hash_join) and a residual list.
  void SplitEquiConjuncts(const std::vector<CondPtr>& conj,
                          const std::vector<std::string>& lattrs,
                          const std::vector<std::string>& rattrs,
                          bool extract,
                          std::vector<size_t>* lkeys,
                          std::vector<size_t>* rkeys,
                          std::vector<CondPtr>* residual) {
    for (const CondPtr& c : conj) {
      if (c->kind == CondKind::kEqAttrAttr) {
        size_t li = IndexOf(lattrs, c->lhs);
        size_t ri = IndexOf(rattrs, c->rhs);
        if (li == lattrs.size() || ri == rattrs.size()) {
          // Maybe the attributes are swapped.
          li = IndexOf(lattrs, c->rhs);
          ri = IndexOf(rattrs, c->lhs);
        }
        if (extract && li != lattrs.size() && ri != rattrs.size()) {
          lkeys->push_back(li);
          rkeys->push_back(ri);
          continue;
        }
      }
      residual->push_back(c);
    }
  }

  /// Wraps `in` with a selection, pushing it below renames (σ(ρ(x)) =
  /// ρ(σ'(x)) with the condition's attribute names translated).
  StatusOr<PhysPtr> MakeFilter(const PhysPtr& in, const CondPtr& cond) {
    if (in->op == PhysOp::kRename) {
      std::map<std::string, std::string> to_old;
      for (size_t i = 0; i < in->attrs.size(); ++i) {
        to_old[in->attrs[i]] = in->left->attrs[i];
      }
      auto filtered = MakeFilter(in->left, RenameCondAttrs(cond, to_old));
      if (!filtered.ok()) return filtered;
      auto rename = std::make_shared<PhysNode>();
      rename->op = PhysOp::kRename;
      rename->attrs = in->attrs;
      rename->left = *filtered;
      return PhysPtr(rename);
    }
    auto node = std::make_shared<PhysNode>();
    node->op = PhysOp::kFilterSel;
    node->attrs = in->attrs;
    node->left = in;
    INCDB_RETURN_IF_ERROR(AttachCond(node.get(), cond, in->attrs));
    return PhysPtr(node);
  }

  StatusOr<PhysPtr> CompileJoinLike(const AlgPtr& lq, const AlgPtr& rq,
                                    const CondPtr& cond,
                                    const std::vector<std::string>* proj) {
    auto l = CompileNode(lq);
    if (!l.ok()) return l;
    auto r = CompileNode(rq);
    if (!r.ok()) return r;
    return BuildJoin(*l, *r, cond, proj);
  }

  /// σ_cond(l × r), optionally projected at emit time — the join rewrite
  /// pipeline: selection pushdown, conjunct split into hash keys,
  /// OR-expansion. Also the re-entry point for OR-expansion branches,
  /// which share the already-compiled inputs (the plan becomes a DAG).
  StatusOr<PhysPtr> BuildJoin(PhysPtr l, PhysPtr r, const CondPtr& cond,
                              const std::vector<std::string>* proj) {
    auto joint = JointAttrs(l, r, "product");
    if (!joint.ok()) return joint.status();

    std::vector<CondPtr> conj;
    Conjuncts(cond, &conj);

    // Selection pushdown: conjuncts touching only one side filter that
    // side below the join instead of every pair.
    if (!for_ctables_ && opts_.enable_selection_pushdown) {
      std::vector<CondPtr> lpush, rpush, keep;
      for (const CondPtr& c : conj) {
        if (CondWithin(c, l->attrs)) {
          lpush.push_back(c);
        } else if (CondWithin(c, r->attrs)) {
          rpush.push_back(c);
        } else {
          keep.push_back(c);
        }
      }
      if (!lpush.empty()) {
        auto fl = MakeFilter(l, CAndAll(lpush));
        if (!fl.ok()) return fl;
        l = *fl;
      }
      if (!rpush.empty()) {
        auto fr = MakeFilter(r, CAndAll(rpush));
        if (!fr.ok()) return fr;
        r = *fr;
      }
      if (!lpush.empty() || !rpush.empty()) conj = std::move(keep);
    }

    // Conjunct split: hashable equi-conjuncts vs residual.
    std::vector<size_t> lkeys, rkeys;
    std::vector<CondPtr> residual;
    SplitEquiConjuncts(conj, l->attrs, r->attrs,
                       !for_ctables_ && opts_.enable_hash_join, &lkeys, &rkeys,
                       &residual);

    // OR-expansion: a disjunctive join condition with no hashable
    // top-level equality (the shape the Fig. 2(b) σ?-rule produces:
    // a = b ∨ null(a) ∨ null(b)) would force a full nested loop. Under
    // set semantics σ_{θ1∨θ2}(l×r) = σ_{θ1}(l×r) ∪ σ_{θ2}(l×r), and each
    // disjunct is re-optimised with its own fast path. (Not valid under
    // bags — rows satisfying both disjuncts would double-count.)
    if (!for_ctables_ && opts_.enable_or_expansion && lkeys.empty() &&
        residual.size() == 1 && residual[0]->kind == CondKind::kOr &&
        set_semantics()) {
      auto a = BuildJoin(l, r, residual[0]->left, proj);
      if (!a.ok()) return a;
      auto b = BuildJoin(l, r, residual[0]->right, proj);
      if (!b.ok()) return b;
      auto node = std::make_shared<PhysNode>();
      node->op = PhysOp::kUnion;
      node->attrs = (*a)->attrs;
      node->left = *a;
      node->right = *b;
      return PhysPtr(node);
    }

    auto node = std::make_shared<PhysNode>();
    node->op = lkeys.empty() ? PhysOp::kNLJoin : PhysOp::kHashJoin;
    node->left = l;
    node->right = r;
    node->left_arity = l->attrs.size();
    node->lkeys = std::move(lkeys);
    node->rkeys = std::move(rkeys);
    INCDB_RETURN_IF_ERROR(AttachCond(node.get(), CAndAll(residual), *joint));
    if (proj != nullptr) {
      node->fused_proj = true;
      node->proj_left_only = true;
      node->proj_right_only = true;
      for (const std::string& a : *proj) {
        size_t i = IndexOf(*joint, a);
        if (i == joint->size()) {
          return Status::NotFound("projection attribute " + a +
                                  " not in join output");
        }
        node->proj_pos.push_back(i);
        if (i < node->left_arity) {
          node->proj_right_only = false;
        } else {
          node->proj_left_only = false;
        }
      }
      node->attrs = *proj;
    } else {
      node->attrs = std::move(*joint);
    }
    return PhysPtr(node);
  }

  StatusOr<PhysPtr> CompileSemiAnti(const AlgPtr& q, bool anti) {
    if (for_ctables_) return CTableUnsupported();
    auto l = CompileNode(q->left);
    if (!l.ok()) return l;
    auto r = CompileNode(q->right);
    if (!r.ok()) return r;
    auto joint = JointAttrs(*l, *r, "semijoin");
    if (!joint.ok()) return joint.status();
    // Split into equi-conjuncts usable for hashing and a residual
    // predicate (always extracted: the EXISTS probe needs only *any*
    // match, so hashing never loses multiplicities).
    std::vector<CondPtr> conj;
    Conjuncts(q->cond, &conj);
    auto node = std::make_shared<PhysNode>();
    node->op = PhysOp::kHashSemi;
    node->anti = anti;
    node->attrs = (*l)->attrs;
    node->left = *l;
    node->right = *r;
    node->left_arity = (*l)->attrs.size();
    std::vector<CondPtr> residual;
    SplitEquiConjuncts(conj, (*l)->attrs, (*r)->attrs, /*extract=*/true,
                       &node->lkeys, &node->rkeys, &residual);
    node->trivial_residual = residual.empty();
    INCDB_RETURN_IF_ERROR(AttachCond(node.get(), CAndAll(residual), *joint));
    return PhysPtr(node);
  }

  StatusOr<PhysPtr> CompileInPredicate(const AlgPtr& q, bool negated) {
    if (for_ctables_) return CTableUnsupported();
    auto l = CompileNode(q->left);
    if (!l.ok()) return l;
    auto r = CompileNode(q->right);
    if (!r.ok()) return r;
    auto node = std::make_shared<PhysNode>();
    node->op = PhysOp::kInPred;
    node->anti = negated;
    node->attrs = (*l)->attrs;
    node->left = *l;
    node->right = *r;
    node->left_arity = (*l)->attrs.size();
    for (const std::string& a : q->attrs) {
      size_t i = IndexOf((*l)->attrs, a);
      if (i == (*l)->attrs.size()) {
        return Status::NotFound("IN: left column " + a + " not in input");
      }
      node->lpos.push_back(i);
    }
    for (const std::string& a : q->attrs2) {
      size_t i = IndexOf((*r)->attrs, a);
      if (i == (*r)->attrs.size()) {
        return Status::NotFound("IN: right column " + a + " not in input");
      }
      node->rpos.push_back(i);
    }
    auto joint = JointAttrs(*l, *r, "IN");
    if (!joint.ok()) return joint.status();
    INCDB_RETURN_IF_ERROR(AttachCond(node.get(), q->cond, *joint));
    node->correlated = q->cond->kind != CondKind::kTrue;
    return PhysPtr(node);
  }

  EvalMode mode_;
  EvalOptions opts_;
  const Database& db_;
  bool for_ctables_;
};

void CountEdges(const PhysPtr& n,
                std::unordered_map<const PhysNode*, uint32_t>* refcount) {
  uint32_t& c = (*refcount)[n.get()];
  if (++c > 1) return;  // children already counted on the first visit
  if (n->left) CountEdges(n->left, refcount);
  if (n->right) CountEdges(n->right, refcount);
}

}  // namespace

bool OpIsMaintainable(PhysOp op) {
  switch (op) {
    case PhysOp::kScanView:
    case PhysOp::kFilterSel:
    case PhysOp::kFusedProjectFilter:
    case PhysOp::kProject:
    case PhysOp::kRename:
    case PhysOp::kUnion:
    case PhysOp::kHashJoin:
    case PhysOp::kNLJoin:
      return true;
    default:
      return false;
  }
}

namespace {

/// Fills Plan::scanned_rels (sorted, deduplicated), Plan::uses_dom and
/// Plan::maintainable — the data-dependency footprint the result cache
/// keys on, plus the delta-maintenance classification.
void CollectDataDeps(const PhysPtr& n, std::set<std::string>* names,
                     bool* uses_dom, bool* maintainable) {
  if (n->op == PhysOp::kScanView) names->insert(n->rel_name);
  if (n->op == PhysOp::kDom) *uses_dom = true;
  if (!OpIsMaintainable(n->op)) *maintainable = false;
  if (n->left) CollectDataDeps(n->left, names, uses_dom, maintainable);
  if (n->right) CollectDataDeps(n->right, names, uses_dom, maintainable);
}

StatusOr<PlanPtr> CompileImpl(const AlgPtr& q, EvalMode mode,
                              const EvalOptions& opts, const Database& db,
                              bool for_ctables) {
  Compiler compiler(mode, opts, db, for_ctables);
  auto root = compiler.CompileNode(q);
  if (!root.ok()) return root.status();
  auto plan = std::make_shared<Plan>();
  plan->root = *root;
  plan->mode = mode;
  plan->opts = opts;
  plan->opts.num_threads = ResolveNumThreads(opts.num_threads);
  plan->param_count = ParamCount(q);
  plan->for_ctables = for_ctables;
  CountEdges(plan->root, &plan->refcount);
  std::set<std::string> names;
  plan->maintainable = !for_ctables;  // c-table evaluation walks the plan
                                      // with its own semantics: never
                                      // delta-maintain those results
  CollectDataDeps(plan->root, &names, &plan->uses_dom, &plan->maintainable);
  plan->scanned_rels.assign(names.begin(), names.end());
  INCDB_RETURN_IF_ERROR(internal::MaybeVerifyPlan(*plan, &db));
  return PlanPtr(plan);
}

void RenderNode(const PhysPtr& n, size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  out->append(ToString(n->op));
  if (n->op == PhysOp::kScanView) {
    *out += "(" + n->rel_name + ")";
  }
  if (n->cond && n->cond->kind != CondKind::kTrue) {
    *out += "[" + n->cond->ToString() + "]";
  }
  if (n->fused_proj || n->op == PhysOp::kProject ||
      n->op == PhysOp::kFusedProjectFilter) {
    *out += " π{";
    for (size_t i = 0; i < n->attrs.size(); ++i) {
      if (i) *out += ",";
      *out += n->attrs[i];
    }
    *out += "}";
  }
  *out += "\n";
  if (n->left) RenderNode(n->left, depth + 1, out);
  if (n->right) RenderNode(n->right, depth + 1, out);
}

}  // namespace

size_t ResolveNumThreads(size_t requested) {
  if (requested == 0) {
    size_t hw = std::thread::hardware_concurrency();
    requested = hw > 0 ? hw : 1;
  }
  return std::min(requested, kMaxEvalThreads);
}

StatusOr<PlanPtr> Compile(const AlgPtr& q, EvalMode mode,
                          const EvalOptions& opts, const Database& db) {
  return CompileImpl(q, mode, opts, db, /*for_ctables=*/false);
}

namespace {

/// Clone-on-write parameter substitution over the operator DAG. Shared
/// nodes (OR-expansion branches) are bound once and reused, preserving the
/// DAG shape so the executor's memoisation keeps working.
class PlanBinder {
 public:
  PlanBinder(const std::vector<Value>& params, CondMode mode)
      : params_(params), mode_(mode) {}

  StatusOr<PhysPtr> Bind(const PhysPtr& n) {
    auto it = done_.find(n.get());
    if (it != done_.end()) return it->second;

    PhysPtr left = n->left, right = n->right;
    if (n->left) {
      auto l = Bind(n->left);
      if (!l.ok()) return l;
      left = *l;
    }
    if (n->right) {
      auto r = Bind(n->right);
      if (!r.ok()) return r;
      right = *r;
    }
    const bool cond_param = n->cond && CondHasParam(n->cond);
    bool dom_param = false;
    for (const Value& v : n->dom_extra) dom_param |= v.is_param();

    if (!cond_param && !dom_param && left == n->left && right == n->right) {
      done_.emplace(n.get(), n);  // parameter-free subtree: share
      return n;
    }
    auto copy = std::make_shared<PhysNode>(*n);
    copy->left = std::move(left);
    copy->right = std::move(right);
    if (cond_param) {
      auto cond = BindCondParams(n->cond, params_);
      if (!cond.ok()) return cond.status();
      copy->cond = *cond;
      auto pred = CompileCond(copy->cond, n->pred_attrs, mode_);
      if (!pred.ok()) return pred.status();
      copy->pred = std::move(*pred);
      copy->pred_attrs.clear();
    }
    if (dom_param) {
      for (Value& v : copy->dom_extra) {
        auto bound = ResolveParamBinding(v, params_);
        if (!bound.ok()) return bound.status();
        v = *bound;
      }
    }
    PhysPtr out = copy;
    done_.emplace(n.get(), out);
    return out;
  }

 private:
  const std::vector<Value>& params_;
  CondMode mode_;
  std::unordered_map<const PhysNode*, PhysPtr> done_;
};

}  // namespace

StatusOr<PlanPtr> BindPlanParams(const PlanPtr& plan,
                                 const std::vector<Value>& params) {
  if (!plan || !plan->root) {
    return Status::InvalidArgument("BindPlanParams: empty plan");
  }
  if (plan->param_count == 0) return plan;
  if (params.size() < plan->param_count) {
    return Status::InvalidArgument(
        "plan expects " + std::to_string(plan->param_count) +
        " parameter binding(s), got " + std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i].is_const()) {
      return Status::InvalidArgument(
          "parameter ?" + std::to_string(i) +
          " must be bound to a constant, got " + params[i].ToString());
    }
  }
  PlanBinder binder(params, ToCondMode(plan->mode));
  auto root = binder.Bind(plan->root);
  if (!root.ok()) return root.status();
  auto bound = std::make_shared<Plan>();
  bound->root = *root;
  bound->mode = plan->mode;
  bound->opts = plan->opts;
  bound->param_count = 0;
  bound->scanned_rels = plan->scanned_rels;
  bound->uses_dom = plan->uses_dom;
  bound->maintainable = plan->maintainable;
  bound->for_ctables = plan->for_ctables;
  CountEdges(bound->root, &bound->refcount);
  INCDB_RETURN_IF_ERROR(internal::MaybeVerifyPlan(*bound));
  return PlanPtr(bound);
}

StatusOr<PlanPtr> CompileForCTables(const AlgPtr& q, const Database& db) {
  return CompileImpl(q, EvalMode::kSetNaive, EvalOptions{}, db,
                     /*for_ctables=*/true);
}

size_t CountOps(const Plan& plan, PhysOp op) {
  size_t count = 0;
  std::unordered_set<const PhysNode*> seen;
  std::vector<const PhysNode*> stack = {plan.root.get()};
  while (!stack.empty()) {
    const PhysNode* n = stack.back();
    stack.pop_back();
    if (!seen.insert(n).second) continue;
    if (n->op == op) ++count;
    if (n->left) stack.push_back(n->left.get());
    if (n->right) stack.push_back(n->right.get());
  }
  return count;
}

std::string PlanToString(const Plan& plan) {
  std::string out;
  RenderNode(plan.root, 0, &out);
  return out;
}

}  // namespace incdb
