#ifndef INCDB_EVAL_BATCH_H_
#define INCDB_EVAL_BATCH_H_

/// \file batch.h
/// \brief Columnar chunk representation for the vectorized executor
/// (MonetDB/X100 style).
///
/// Relations store flat rows (core/relation.h); the batched operator paths
/// of eval/exec.cpp transpose the columns a predicate actually touches into
/// contiguous `Value` runs of EvalOptions::batch_size rows, evaluate the
/// condition program column-at-a-time into a selection vector, and gather
/// the surviving rows from the original row storage. Batching is a pure
/// execution-layer change: the selected rows, their order and their
/// multiplicities are bit-identical to the tuple-at-a-time interpreter —
/// the atom truth values are shared (CondEqTV / CondOrderTV in
/// algebra/condition.h) and the Kleene connectives are branchless min/max
/// over the f < u < t truth order (logic/kleene.cpp).

#include <cstdint>
#include <vector>

#include "algebra/condition.h"
#include "core/relation.h"
#include "core/status.h"
#include "core/tuple.h"
#include "logic/truth.h"

namespace incdb {

/// \brief An owning, contiguous column of values.
class ColumnVector {
 public:
  void Clear() { vals_.clear(); }
  void Reserve(size_t n) { vals_.reserve(n); }
  void PushBack(const Value& v) { vals_.push_back(v); }
  const Value* data() const { return vals_.data(); }
  size_t size() const { return vals_.size(); }

 private:
  std::vector<Value> vals_;
};

/// \brief One column of a Batch: a borrowed pointer plus a stride.
///
/// stride 1 reads a contiguous run (the transposed case); stride 0
/// broadcasts a single value to every row — the nested-loop join pins the
/// current left tuple's components this way while sweeping right-side
/// column windows.
struct BatchColumn {
  const Value* data = nullptr;
  size_t stride = 1;
  const Value& At(size_t i) const { return data[i * stride]; }
};

/// \brief A horizontal slice of rows in columnar form.
///
/// `cols` is indexed by schema position; only the positions a predicate
/// references (BatchPredicate::referenced()) need to be populated. The
/// batch borrows its column storage (ColumnVector, broadcast scalars);
/// it must not outlive the data it points into.
struct Batch {
  size_t rows = 0;
  std::vector<BatchColumn> cols;

  void Reset(size_t arity, size_t n) {
    rows = n;
    cols.assign(arity, BatchColumn{});
  }
};

/// Selection vector: batch-relative indices of the selected rows,
/// in ascending order.
using SelVector = std::vector<uint32_t>;

/// Appends column `pos` of rows [begin, end) to `out` — the row-major →
/// column-major transposition adapter from Relation/RelationView flat rows.
inline void AppendColumn(const std::vector<Relation::Row>& rows, size_t begin,
                         size_t end, size_t pos, ColumnVector* out) {
  for (size_t i = begin; i < end; ++i) out->PushBack(rows[i].first[pos]);
}

/// \brief Reusable transposition scratch: turns a window of flat rows into
/// a Batch exposing the requested schema positions as contiguous columns.
class BatchGather {
 public:
  /// Points `out` at columns `positions` of rows [begin, end). Column
  /// storage is owned by this gatherer and reused across calls; `out` is
  /// valid until the next Gather.
  void Gather(const std::vector<Relation::Row>& rows, size_t begin, size_t end,
              const std::vector<size_t>& positions, size_t arity, Batch* out) {
    out->Reset(arity, end - begin);
    if (store_.size() < arity) store_.resize(arity);
    for (size_t p : positions) {
      ColumnVector& col = store_[p];
      col.Clear();
      col.Reserve(end - begin);
      AppendColumn(rows, begin, end, p, &col);
      out->cols[p] = BatchColumn{col.data(), 1};
    }
  }

 private:
  std::vector<ColumnVector> store_;
};

/// \brief A selection condition compiled into a flat columnar program.
///
/// The condition AST is flattened into a postorder instruction list over a
/// small stack of truth-value registers (one byte per row per register).
/// Atoms loop down a column calling the same CondEqTV / CondOrderTV the
/// scalar predicate uses; ∧/∨ combine registers with branchless min/max
/// (Kleene's tables over the f < u < t order); ¬ folds into the ≠ atoms as
/// 2 − x. Evaluation is re-entrant: callers pass their own Scratch, so
/// pool workers can share one compiled program.
class BatchPredicate {
 public:
  /// Per-caller register storage, reused across batches.
  struct Scratch {
    std::vector<std::vector<uint8_t>> regs;
  };

  /// Compiles `c` against the input schema `attrs` for `mode`, resolving
  /// attribute names exactly like CompileCond (same errors on unknown
  /// attributes).
  static StatusOr<BatchPredicate> Make(const CondPtr& c,
                                       const std::vector<std::string>& attrs,
                                       CondMode mode);

  /// Schema positions the program reads; callers populate exactly these
  /// columns of the Batch.
  const std::vector<size_t>& referenced() const { return referenced_; }

  /// Appends the (batch-relative, ascending) indices of the rows whose
  /// truth value is t to `*sel`.
  void SelectTrue(const Batch& b, Scratch* scratch, SelVector* sel) const;

  /// Writes the Kleene truth value of every row to out[0..b.rows) (the
  /// TV3 numeric encoding). Used by tests and the microbenches.
  void EvalTruth(const Batch& b, Scratch* scratch, uint8_t* out) const;

  /// Structural well-formedness of the compiled program, checked by the
  /// plan verifier (eval/verify.h): postorder stack discipline (connectives
  /// combine the two topmost registers, atoms push the next), a register
  /// count that matches the deepest stack, in-range column operands for an
  /// input of `input_arity` columns (each also listed in referenced()),
  /// constant operands with no leftover parameter placeholders, and only
  /// opcodes the interpreter implements. Programs built by Make() always
  /// pass; a non-OK status means the program was corrupted.
  Status Validate(size_t input_arity) const;

  struct Insn {
    CondKind kind;
    uint32_t col = 0;   ///< lhs schema position (atoms)
    uint32_t col2 = 0;  ///< rhs schema position (attr-attr atoms)
    uint32_t dst = 0;   ///< destination register
    uint32_t src2 = 0;  ///< second source register (∧ / ∨; first is dst)
    Value constant;     ///< rhs constant (attr-const atoms)
  };

 private:
  /// Verifier negative tests corrupt the private program through this peer
  /// (tests/verify_test.cpp) to prove Validate() catches each defect class.
  friend struct BatchPredicateTestPeer;

  void Run(const Batch& b, Scratch* scratch) const;

  std::vector<Insn> prog_;
  uint32_t n_regs_ = 0;
  CondMode mode_ = CondMode::kNaive;
  std::vector<size_t> referenced_;
};

}  // namespace incdb

#endif  // INCDB_EVAL_BATCH_H_
