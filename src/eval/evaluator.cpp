// The three public evaluators (eval/eval.h) as thin wrappers over the
// physical-plan layer: look the compiled plan up in the process-wide
// query-identity cache (eval/plan_cache.h) — compiling on the first
// encounter only — then run it (eval/exec.cpp). Callers that want manual
// control can call Compile()/CompileCached() + Execute() themselves.

#include <cassert>

#include "eval/eval.h"
#include "eval/plan.h"
#include "eval/plan_cache.h"

namespace incdb {

TV3 SqlTupleEq(const Tuple& a, const Tuple& b) {
  assert(a.arity() == b.arity());
  bool any_null = false;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (a[i].is_null() || b[i].is_null()) {
      any_null = true;
    } else if (!(a[i] == b[i])) {
      return TV3::kF;
    }
  }
  return any_null ? TV3::kU : TV3::kT;
}

namespace {

StatusOr<Relation> CompileAndRun(const AlgPtr& q, EvalMode mode,
                                 const EvalOptions& opts, const Database& db,
                                 const ExecContext& ctx) {
  auto plan = opts.use_plan_cache
                  ? PlanCache::Global().CompileCached(q, mode, opts, db)
                  : Compile(q, mode, opts, db);
  if (!plan.ok()) return plan.status();
  return Execute(*plan, db, ctx);
}

}  // namespace

StatusOr<Relation> EvalSet(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts) {
  return CompileAndRun(q, EvalMode::kSetNaive, opts, db, ExecContext{});
}

StatusOr<Relation> EvalSet(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts, const ExecContext& ctx) {
  return CompileAndRun(q, EvalMode::kSetNaive, opts, db, ctx);
}

StatusOr<Relation> EvalBag(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts) {
  return CompileAndRun(q, EvalMode::kBagNaive, opts, db, ExecContext{});
}

StatusOr<Relation> EvalBag(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts, const ExecContext& ctx) {
  return CompileAndRun(q, EvalMode::kBagNaive, opts, db, ctx);
}

StatusOr<Relation> EvalSql(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts) {
  return CompileAndRun(q, EvalMode::kSetSql, opts, db, ExecContext{});
}

StatusOr<Relation> EvalSql(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts, const ExecContext& ctx) {
  return CompileAndRun(q, EvalMode::kSetSql, opts, db, ctx);
}

}  // namespace incdb
