#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_map>
#include <vector>

#include "eval/eval.h"

namespace incdb {

TV3 SqlTupleEq(const Tuple& a, const Tuple& b) {
  assert(a.arity() == b.arity());
  bool any_null = false;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (a[i].is_null() || b[i].is_null()) {
      any_null = true;
    } else if (!(a[i] == b[i])) {
      return TV3::kF;
    }
  }
  return any_null ? TV3::kU : TV3::kT;
}

namespace {

enum class Mode { kSetNaive, kBagNaive, kSetSql };

CondMode ToCondMode(Mode m) {
  return m == Mode::kSetSql ? CondMode::kSql : CondMode::kNaive;
}

/// Extracts top-level conjuncts of a condition, dropping trivial `true`s
/// (which would otherwise hide single-disjunction shapes from the
/// OR-expansion fast path).
void Conjuncts(const CondPtr& c, std::vector<CondPtr>* out) {
  if (c->kind == CondKind::kAnd) {
    Conjuncts(c->left, out);
    Conjuncts(c->right, out);
  } else if (c->kind != CondKind::kTrue) {
    out->push_back(c);
  }
}

size_t IndexOf(const std::vector<std::string>& attrs, const std::string& a) {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] == a) return i;
  }
  return attrs.size();
}

/// Index over the right side of a ⋉⇑ for fast unifiability probes.
/// Tuples are grouped by their null-position mask; within a group they are
/// hashed on the projection onto the constant positions. An all-constant
/// probe tuple then touches only one bucket per mask; probes containing
/// nulls fall back to a scan. Candidates are always re-verified with
/// Unifiable() (repeated marked nulls add constraints the index ignores).
/// The index references the indexed relation's rows in place — it copies
/// no tuples and must not outlive the relation.
class UnifyIndex {
 public:
  UnifyIndex(const Relation& rel, bool use_index)
      : arity_(rel.arity()), use_index_(use_index && arity_ < 64) {
    all_.reserve(rel.rows().size());
    for (const auto& [t, c] : rel.rows()) {
      all_.push_back(&t);
      if (!use_index_) continue;
      uint64_t mask = 0;
      for (size_t i = 0; i < t.arity(); ++i) {
        if (t[i].is_null()) mask |= (1ULL << i);
      }
      Tuple key;
      ConstProjectionInto(t, mask, &key);
      groups_[mask][std::move(key)].push_back(&t);
    }
  }

  bool AnyUnifiable(const Tuple& probe) {
    if (!use_index_ || probe.HasNull()) {
      for (const Tuple* t : all_) {
        if (Unifiable(probe, *t)) return true;
      }
      return false;
    }
    for (const auto& [mask, buckets] : groups_) {
      ConstProjectionInto(probe, mask, &key_scratch_);
      auto it = buckets.find(key_scratch_);
      if (it == buckets.end()) continue;
      for (const Tuple* t : it->second) {
        if (Unifiable(probe, *t)) return true;
      }
    }
    return false;
  }

 private:
  static void ConstProjectionInto(const Tuple& t, uint64_t null_mask,
                                  Tuple* out) {
    out->Clear();
    out->Reserve(t.arity());
    for (size_t i = 0; i < t.arity(); ++i) {
      if (!(null_mask & (1ULL << i))) out->Append(t[i]);
    }
  }

  size_t arity_;
  bool use_index_ = true;
  std::vector<const Tuple*> all_;
  std::unordered_map<uint64_t,
                     std::unordered_map<Tuple, std::vector<const Tuple*>>>
      groups_;
  Tuple key_scratch_;
};

class Evaluator {
 public:
  Evaluator(const Database& db, Mode mode, const EvalOptions& opts)
      : db_(db), mode_(mode), opts_(opts) {}

  StatusOr<Relation> Eval(const AlgPtr& q) {
    switch (q->kind) {
      case OpKind::kScan:
        return EvalScan(q);
      case OpKind::kSelect:
        return EvalSelect(q);
      case OpKind::kProject:
        return EvalProject(q);
      case OpKind::kRename:
        return EvalRename(q);
      case OpKind::kProduct:
        return EvalJoinLike(q->left, q->right, CTrue(), nullptr);
      case OpKind::kJoin:
        return EvalJoinLike(q->left, q->right, q->cond, nullptr);
      case OpKind::kUnion:
        return EvalUnion(q);
      case OpKind::kDifference:
        return EvalDifference(q);
      case OpKind::kIntersect:
        return EvalIntersect(q);
      case OpKind::kDivision:
        return EvalDivision(q);
      case OpKind::kAntijoinUnify:
        return EvalAntijoinUnify(q);
      case OpKind::kDom:
        return EvalDom(q);
      case OpKind::kSemijoin:
        return EvalSemiAnti(q, /*anti=*/false);
      case OpKind::kAntijoin:
        return EvalSemiAnti(q, /*anti=*/true);
      case OpKind::kIn:
        return EvalInPredicate(q, /*negated=*/false);
      case OpKind::kNotIn:
        return EvalInPredicate(q, /*negated=*/true);
      case OpKind::kDistinct: {
        auto in = Eval(q->left);
        if (!in.ok()) return in;
        Relation out = std::move(*in);
        out.CollapseCounts();
        return out;
      }
    }
    return Status::Internal("unknown operator");
  }

 private:
  bool set_semantics() const { return mode_ != Mode::kBagNaive; }

  Status Budget(uint64_t produced) {
    produced_ += produced;
    if (produced_ > opts_.max_tuples) {
      return Status::ResourceExhausted(
          "evaluation exceeded max_tuples=" + std::to_string(opts_.max_tuples));
    }
    return Status::OK();
  }

  StatusOr<Relation> EvalScan(const AlgPtr& q) {
    if (!db_.Has(q->rel_name)) {
      return Status::NotFound("no relation named " + q->rel_name);
    }
    // Single copy out of the database; base relations are usually sets
    // already, in which case ToSet's count collapse is skipped too.
    const Relation& rel = db_.at(q->rel_name);
    if (set_semantics() && !rel.IsSet()) return rel.ToSet();
    return rel;
  }

  StatusOr<Relation> EvalSelect(const AlgPtr& q) {
    // Fast path: selection directly over a product is a join.
    if (q->left->kind == OpKind::kProduct) {
      return EvalJoinLike(q->left->left, q->left->right, q->cond, nullptr);
    }
    auto in = Eval(q->left);
    if (!in.ok()) return in;
    auto pred = CompileCond(q->cond, in->attrs(), ToCondMode(mode_));
    if (!pred.ok()) return pred.status();
    Relation out(in->attrs());
    out.Reserve(in->rows().size());
    for (const auto& [t, c] : in->rows()) {
      if ((*pred)(t) == TV3::kT) {
        INCDB_RETURN_IF_ERROR(out.Insert(t, c));
      }
    }
    INCDB_RETURN_IF_ERROR(Budget(out.TotalSize()));
    return out;
  }

  StatusOr<Relation> EvalProject(const AlgPtr& q) {
    // Fusion: π over a join-shaped child projects at emit time instead of
    // materialising the full-width pairs (π(σ(l × r)) is the shape the
    // desugared [NOT] IN / EXISTS and the Fig. 2 σ?-rules produce).
    const Algebra* child = q->left.get();
    if (opts_.enable_projection_fusion &&
        (child->kind == OpKind::kJoin ||
         (child->kind == OpKind::kSelect &&
          child->left->kind == OpKind::kProduct) ||
         child->kind == OpKind::kProduct)) {
      AlgPtr lq, rq;
      CondPtr cond;
      if (child->kind == OpKind::kJoin) {
        lq = child->left;
        rq = child->right;
        cond = child->cond;
      } else if (child->kind == OpKind::kProduct) {
        lq = child->left;
        rq = child->right;
        cond = CTrue();
      } else {
        lq = child->left->left;
        rq = child->left->right;
        cond = child->cond;
      }
      return EvalJoinLike(lq, rq, cond, &q->attrs);
    }
    auto in = Eval(q->left);
    if (!in.ok()) return in;
    std::vector<size_t> pos;
    for (const std::string& a : q->attrs) {
      size_t i = IndexOf(in->attrs(), a);
      if (i == in->attrs().size()) {
        return Status::NotFound("projection attribute " + a + " not in input");
      }
      pos.push_back(i);
    }
    Relation out(q->attrs);
    out.Reserve(in->rows().size());
    Tuple scratch;
    for (const auto& [t, c] : in->rows()) {
      scratch.AssignProject(t, pos);
      INCDB_RETURN_IF_ERROR(out.Insert(scratch, c));
    }
    INCDB_RETURN_IF_ERROR(Budget(out.TotalSize()));
    if (set_semantics()) out.CollapseCounts();
    return out;
  }

  StatusOr<Relation> EvalRename(const AlgPtr& q) {
    auto in = Eval(q->left);
    if (!in.ok()) return in;
    Relation out = std::move(*in);
    INCDB_RETURN_IF_ERROR(out.RenameAttrs(q->attrs));
    return out;
  }

  /// σ_cond(l × r), with a hash join on top-level left=right equality
  /// conjuncts whenever possible. When `proj` is non-null the output is
  /// π_proj of the pairs, applied at emit time (projection pushdown).
  StatusOr<Relation> EvalJoinLike(const AlgPtr& lq, const AlgPtr& rq,
                                  const CondPtr& cond,
                                  const std::vector<std::string>* proj) {
    auto l = Eval(lq);
    if (!l.ok()) return l;
    auto r = Eval(rq);
    if (!r.ok()) return r;
    return JoinRelations(*l, *r, cond, proj);
  }

  StatusOr<Relation> JoinRelations(const Relation& l, const Relation& r,
                                   const CondPtr& cond,
                                   const std::vector<std::string>* proj =
                                       nullptr) {
    std::vector<std::string> attrs = l.attrs();
    for (const std::string& a : r.attrs()) {
      if (IndexOf(l.attrs(), a) != l.attrs().size()) {
        return Status::InvalidArgument("product: attribute " + a +
                                       " appears on both sides (rename)");
      }
      attrs.push_back(a);
    }
    // Resolve projection positions against the joint schema.
    std::vector<size_t> proj_pos;
    bool proj_left_only = true, proj_right_only = true;
    if (proj != nullptr) {
      for (const std::string& a : *proj) {
        size_t i = IndexOf(attrs, a);
        if (i == attrs.size()) {
          return Status::NotFound("projection attribute " + a +
                                  " not in join output");
        }
        proj_pos.push_back(i);
        if (i < l.arity()) {
          proj_right_only = false;
        } else {
          proj_left_only = false;
        }
      }
    }
    // Split cond into hashable equi-conjuncts and a residual.
    std::vector<CondPtr> conj;
    Conjuncts(cond, &conj);
    std::vector<std::pair<size_t, size_t>> equi;  // (left pos, right pos)
    std::vector<CondPtr> residual;
    for (const CondPtr& c : conj) {
      if (c->kind == CondKind::kEqAttrAttr) {
        size_t li = IndexOf(l.attrs(), c->lhs);
        size_t ri = IndexOf(r.attrs(), c->rhs);
        if (li == l.attrs().size() || ri == r.attrs().size()) {
          // Maybe the attributes are swapped.
          li = IndexOf(l.attrs(), c->rhs);
          ri = IndexOf(r.attrs(), c->lhs);
        }
        if (opts_.enable_hash_join && li != l.attrs().size() &&
            ri != r.attrs().size()) {
          equi.emplace_back(li, ri);
          continue;
        }
      }
      residual.push_back(c);
    }
    // OR-expansion: a disjunctive join condition with no hashable
    // top-level equality (the shape the Fig. 2(b) σ?-rule produces:
    // a = b ∨ null(a) ∨ null(b)) would force a full nested loop. Under
    // set semantics σ_{θ1∨θ2}(l × r) = σ_{θ1}(l × r) ∪ σ_{θ2}(l × r), and
    // each disjunct can use its own fast path. (Not valid under bags —
    // rows satisfying both disjuncts would double-count.)
    if (opts_.enable_or_expansion && equi.empty() && residual.size() == 1 &&
        residual[0]->kind == CondKind::kOr && set_semantics()) {
      auto a = JoinRelations(l, r, residual[0]->left, proj);
      if (!a.ok()) return a;
      auto b = JoinRelations(l, r, residual[0]->right, proj);
      if (!b.ok()) return b;
      Relation merged = std::move(*a);
      for (const auto& [t, c] : b->rows()) {
        INCDB_RETURN_IF_ERROR(merged.Insert(t, 1));
      }
      merged.CollapseCounts();
      return merged;
    }

    CondPtr res_cond = CAndAll(residual);

    // Push-down: a residual touching only one side filters that side
    // before the product instead of each pair. (Only in the no-equi case:
    // with a hash join the per-pair residual check is already cheap, and
    // recursing here would drop the extracted equalities.)
    if (equi.empty() && res_cond->kind != CondKind::kTrue) {
      auto one_sided = [&](const Relation& side) -> bool {
        for (const std::string& a : CondAttrs(res_cond)) {
          if (IndexOf(side.attrs(), a) == side.attrs().size()) return false;
        }
        return true;
      };
      auto filter = [&](const Relation& side) -> StatusOr<Relation> {
        auto p = CompileCond(res_cond, side.attrs(), ToCondMode(mode_));
        if (!p.ok()) return p.status();
        Relation out(side.attrs());
        for (const auto& [t, c] : side.rows()) {
          if ((*p)(t) == TV3::kT) INCDB_RETURN_IF_ERROR(out.Insert(t, c));
        }
        return out;
      };
      if (one_sided(l)) {
        auto fl = filter(l);
        if (!fl.ok()) return fl;
        return JoinRelations(*fl, r, CTrue(), proj);
      }
      if (one_sided(r)) {
        auto fr = filter(r);
        if (!fr.ok()) return fr;
        return JoinRelations(l, *fr, CTrue(), proj);
      }
    }

    // Projection shortcut: a condition-free product projected onto
    // columns of a single side is just that side's projection (times the
    // other side's non-emptiness) under set semantics.
    if (proj != nullptr && set_semantics() &&
        res_cond->kind == CondKind::kTrue && equi.empty()) {
      if (proj_left_only && !r.rows().empty()) {
        const std::vector<size_t>& pos = proj_pos;  // already left positions
        Relation out(*proj);
        Tuple scratch;
        for (const auto& [lt, lc] : l.rows()) {
          scratch.AssignProject(lt, pos);
          INCDB_RETURN_IF_ERROR(out.Insert(scratch, 1));
        }
        out.CollapseCounts();
        return out;
      }
      if (proj_right_only && !l.rows().empty()) {
        std::vector<size_t> pos;
        for (size_t i : proj_pos) pos.push_back(i - l.arity());
        Relation out(*proj);
        Tuple scratch;
        for (const auto& [rt, rc] : r.rows()) {
          scratch.AssignProject(rt, pos);
          INCDB_RETURN_IF_ERROR(out.Insert(scratch, 1));
        }
        out.CollapseCounts();
        return out;
      }
      if (l.rows().empty() || r.rows().empty()) return Relation(*proj);
    }

    auto pred = CompileCond(res_cond, attrs, ToCondMode(mode_));
    if (!pred.ok()) return pred.status();

    Relation out(proj != nullptr ? *proj : attrs);
    // Scratch tuples reused across every pair: the hot loop below performs
    // no allocations except inserting kept tuples into `out`.
    Tuple joint, projected;
    auto emit = [&](const Tuple& lt, uint64_t lc, const Tuple& rt,
                    uint64_t rc) -> Status {
      // With SQL-mode equality, a null join key never compares t; with
      // naive equality the hash join already used syntactic equality. The
      // residual condition is checked in the active mode.
      joint.AssignConcat(lt, rt);
      if ((*pred)(joint) == TV3::kT) {
        uint64_t c = set_semantics() ? 1 : lc * rc;
        if (proj != nullptr) {
          projected.AssignProject(joint, proj_pos);
          INCDB_RETURN_IF_ERROR(out.Insert(projected, c));
        } else {
          INCDB_RETURN_IF_ERROR(out.Insert(joint, c));
        }
        INCDB_RETURN_IF_ERROR(Budget(c));
      }
      return Status::OK();
    };

    // With a projection under set semantics, distinct pairs may collapse;
    // normalise multiplicities at the end.
    auto finish = [&]() -> Relation {
      if (proj != nullptr && set_semantics()) out.CollapseCounts();
      return std::move(out);
    };

    if (equi.empty()) {
      for (const auto& [lt, lc] : l.rows()) {
        for (const auto& [rt, rc] : r.rows()) {
          INCDB_RETURN_IF_ERROR(emit(lt, lc, rt, rc));
        }
      }
      return finish();
    }

    // Hash join. Under SQL mode, rows with a null key cannot satisfy the
    // equality with truth value t, so skipping them is sound. The index is
    // built over the smaller side and stores row indices into that side's
    // flat storage — no tuples are copied.
    std::vector<size_t> lkeys, rkeys;
    for (const auto& [li, ri] : equi) {
      lkeys.push_back(li);
      rkeys.push_back(ri);
    }
    const bool build_left = l.rows().size() <= r.rows().size();
    const Relation& build = build_left ? l : r;
    const Relation& probe = build_left ? r : l;
    const std::vector<size_t>& build_keys = build_left ? lkeys : rkeys;
    const std::vector<size_t>& probe_keys = build_left ? rkeys : lkeys;

    std::unordered_map<Tuple, std::vector<uint32_t>> index;
    index.reserve(build.rows().size());
    const std::vector<Relation::Row>& build_rows = build.rows();
    Tuple key;  // scratch for both build and probe keys
    for (uint32_t i = 0; i < build_rows.size(); ++i) {
      key.AssignProject(build_rows[i].first, build_keys);
      if (mode_ == Mode::kSetSql && key.HasNull()) continue;
      index[key].push_back(i);
    }
    for (const auto& [pt, pc] : probe.rows()) {
      key.AssignProject(pt, probe_keys);
      if (mode_ == Mode::kSetSql && key.HasNull()) continue;
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (uint32_t bi : it->second) {
        const auto& [bt, bc] = build_rows[bi];
        if (build_left) {
          INCDB_RETURN_IF_ERROR(emit(bt, bc, pt, pc));
        } else {
          INCDB_RETURN_IF_ERROR(emit(pt, pc, bt, bc));
        }
      }
    }
    return finish();
  }

  StatusOr<Relation> EvalUnion(const AlgPtr& q) {
    auto l = Eval(q->left);
    if (!l.ok()) return l;
    auto r = Eval(q->right);
    if (!r.ok()) return r;
    if (l->arity() != r->arity()) {
      return Status::InvalidArgument("union: arity mismatch");
    }
    Relation out = std::move(*l);  // the left input is ours: no deep copy
    out.Reserve(out.rows().size() + r->rows().size());
    for (const auto& [t, c] : r->rows()) {
      INCDB_RETURN_IF_ERROR(out.Insert(t, c));
    }
    INCDB_RETURN_IF_ERROR(Budget(r->TotalSize()));
    if (set_semantics()) out.CollapseCounts();
    return out;
  }

  StatusOr<Relation> EvalDifference(const AlgPtr& q) {
    auto l = Eval(q->left);
    if (!l.ok()) return l;
    auto r = Eval(q->right);
    if (!r.ok()) return r;
    if (l->arity() != r->arity()) {
      return Status::InvalidArgument("difference: arity mismatch");
    }
    Relation out(l->attrs());
    if (mode_ == Mode::kSetSql) {
      // NOT IN semantics: keep r̄ only if the comparison with *every* tuple
      // of the right side is certainly false (never t or u). All-constant
      // pairs compare t exactly when syntactically equal, so against the
      // all-constant part of the right side an all-constant left tuple
      // needs one hash lookup; only right tuples involving nulls keep the
      // pairwise 3VL scan, and left tuples involving nulls scan everything.
      std::vector<const Tuple*> null_rows;
      for (const auto& [s, sc] : r->rows()) {
        if (s.HasNull()) null_rows.push_back(&s);
      }
      for (const auto& [t, c] : l->rows()) {
        bool keep;
        if (t.AllConst()) {
          keep = !r->Contains(t);
          for (const Tuple* s : null_rows) {
            if (!keep) break;
            if (SqlTupleEq(t, *s) != TV3::kF) keep = false;
          }
        } else {
          keep = true;
          for (const auto& [s, sc] : r->rows()) {
            if (SqlTupleEq(t, s) != TV3::kF) {
              keep = false;
              break;
            }
          }
        }
        if (keep) INCDB_RETURN_IF_ERROR(out.Insert(t, 1));
      }
      return out;
    }
    for (const auto& [t, c] : l->rows()) {
      uint64_t rc = r->Count(t);
      if (set_semantics()) {
        if (rc == 0) INCDB_RETURN_IF_ERROR(out.Insert(t, 1));
      } else if (c > rc) {
        INCDB_RETURN_IF_ERROR(out.Insert(t, c - rc));  // bag monus
      }
    }
    return out;
  }

  StatusOr<Relation> EvalIntersect(const AlgPtr& q) {
    auto l = Eval(q->left);
    if (!l.ok()) return l;
    auto r = Eval(q->right);
    if (!r.ok()) return r;
    if (l->arity() != r->arity()) {
      return Status::InvalidArgument("intersection: arity mismatch");
    }
    Relation out(l->attrs());
    if (mode_ == Mode::kSetSql) {
      // IN semantics: keep r̄ iff some right tuple compares t. Under 3VL a
      // comparison is t only when both tuples are all-constant and equal,
      // so membership reduces to one hash lookup per left tuple.
      for (const auto& [t, c] : l->rows()) {
        if (t.AllConst() && r->Contains(t)) {
          INCDB_RETURN_IF_ERROR(out.Insert(t, 1));
        }
      }
      return out;
    }
    for (const auto& [t, c] : l->rows()) {
      uint64_t rc = r->Count(t);
      if (rc == 0) continue;
      INCDB_RETURN_IF_ERROR(out.Insert(t, set_semantics() ? 1 : std::min(c, rc)));
    }
    return out;
  }

  StatusOr<Relation> EvalDivision(const AlgPtr& q) {
    if (mode_ == Mode::kSetSql) {
      return Status::Unsupported("division is not part of the SQL evaluator");
    }
    auto l = Eval(q->left);
    if (!l.ok()) return l;
    auto r = Eval(q->right);
    if (!r.ok()) return r;
    // Align divisor attributes by name.
    std::vector<size_t> keep_pos, div_pos_l, div_pos_r;
    std::vector<std::string> out_attrs;
    for (size_t i = 0; i < l->attrs().size(); ++i) {
      size_t j = IndexOf(r->attrs(), l->attrs()[i]);
      if (j == r->attrs().size()) {
        keep_pos.push_back(i);
        out_attrs.push_back(l->attrs()[i]);
      } else {
        div_pos_l.push_back(i);
        div_pos_r.push_back(j);
      }
    }
    if (div_pos_l.size() != r->arity()) {
      return Status::InvalidArgument(
          "division: divisor attributes must occur in the dividend");
    }
    if (out_attrs.empty()) {
      return Status::InvalidArgument(
          "division: dividend must have attributes beyond the divisor");
    }
    // Group the dividend by the kept attributes; collect divisor parts.
    std::unordered_map<Tuple, std::set<Tuple>> groups;
    for (const auto& [t, c] : l->rows()) {
      groups[t.Project(keep_pos)].insert(t.Project(div_pos_l));
    }
    std::set<Tuple> divisor;
    for (const auto& [t, c] : r->rows()) divisor.insert(t.Project(div_pos_r));
    Relation out(out_attrs);
    for (const auto& [key, parts] : groups) {
      bool all = std::includes(parts.begin(), parts.end(), divisor.begin(),
                               divisor.end());
      if (all) INCDB_RETURN_IF_ERROR(out.Insert(key, 1));
    }
    return out;
  }

  StatusOr<Relation> EvalAntijoinUnify(const AlgPtr& q) {
    auto l = Eval(q->left);
    if (!l.ok()) return l;
    auto r = Eval(q->right);
    if (!r.ok()) return r;
    if (l->arity() != r->arity()) {
      return Status::InvalidArgument("⋉⇑: arity mismatch");
    }
    UnifyIndex index(*r, opts_.enable_unify_index);
    Relation out(l->attrs());
    for (const auto& [t, c] : l->rows()) {
      if (!index.AnyUnifiable(t)) {
        INCDB_RETURN_IF_ERROR(out.Insert(t, set_semantics() ? 1 : c));
      }
    }
    return out;
  }

  StatusOr<Relation> EvalDom(const AlgPtr& q) {
    std::set<Value> dom = db_.ActiveDomain();
    for (const Value& v : q->dom_extra) dom.insert(v);
    std::vector<Value> values(dom.begin(), dom.end());
    uint64_t expected = 1;
    for (size_t i = 0; i < q->dom_arity; ++i) {
      if (values.empty()) break;
      expected *= values.size();
      if (expected > opts_.max_tuples) {
        return Status::ResourceExhausted(
            "Dom^" + std::to_string(q->dom_arity) + " over " +
            std::to_string(values.size()) + " values exceeds max_tuples");
      }
    }
    Relation out(q->attrs);
    std::vector<size_t> idx(q->dom_arity, 0);
    if (q->dom_arity == 0) {
      INCDB_RETURN_IF_ERROR(out.Insert(Tuple{}, 1));
      return out;
    }
    if (values.empty()) return out;
    while (true) {
      std::vector<Value> vals;
      vals.reserve(q->dom_arity);
      for (size_t i : idx) vals.push_back(values[i]);
      INCDB_RETURN_IF_ERROR(out.Insert(Tuple(std::move(vals)), 1));
      size_t pos = q->dom_arity;
      while (pos > 0) {
        --pos;
        if (++idx[pos] < values.size()) break;
        idx[pos] = 0;
        if (pos == 0) {
          INCDB_RETURN_IF_ERROR(Budget(out.TotalSize()));
          return out;
        }
      }
    }
  }

  StatusOr<Relation> EvalSemiAnti(const AlgPtr& q, bool anti) {
    auto l = Eval(q->left);
    if (!l.ok()) return l;
    auto r = Eval(q->right);
    if (!r.ok()) return r;
    std::vector<std::string> joint = l->attrs();
    for (const std::string& a : r->attrs()) {
      if (IndexOf(l->attrs(), a) != l->attrs().size()) {
        return Status::InvalidArgument("semijoin: attribute " + a +
                                       " appears on both sides (rename)");
      }
      joint.push_back(a);
    }
    // Split into equi-conjuncts usable for hashing and a residual predicate.
    std::vector<CondPtr> conj;
    Conjuncts(q->cond, &conj);
    std::vector<size_t> lkeys, rkeys;
    std::vector<CondPtr> residual;
    for (const CondPtr& c : conj) {
      if (c->kind == CondKind::kEqAttrAttr) {
        size_t li = IndexOf(l->attrs(), c->lhs);
        size_t ri = IndexOf(r->attrs(), c->rhs);
        if (li == l->attrs().size() || ri == r->attrs().size()) {
          li = IndexOf(l->attrs(), c->rhs);
          ri = IndexOf(r->attrs(), c->lhs);
        }
        if (li != l->attrs().size() && ri != r->attrs().size()) {
          lkeys.push_back(li);
          rkeys.push_back(ri);
          continue;
        }
      }
      residual.push_back(c);
    }
    auto pred = CompileCond(CAndAll(residual), joint, ToCondMode(mode_));
    if (!pred.ok()) return pred.status();

    // Equality with a null key never evaluates to t in either mode unless
    // syntactically equal (naive) — the hash covers both, as naive equality
    // is exactly key identity and SQL-mode null keys are skipped. The index
    // references right rows in place instead of copying them.
    std::unordered_map<Tuple, std::vector<const Tuple*>> index;
    const bool hashed = !lkeys.empty();
    const bool trivial_pred = residual.empty();
    Tuple key, joint_t;  // scratch, reused across probes
    if (hashed) {
      index.reserve(r->rows().size());
      for (const auto& [rt, rc] : r->rows()) {
        key.AssignProject(rt, rkeys);
        if (mode_ == Mode::kSetSql && key.HasNull()) continue;
        index[key].push_back(&rt);
      }
    }
    auto exists_match = [&](const Tuple& lt) -> bool {
      if (!hashed) {
        for (const auto& [rt, rc] : r->rows()) {
          joint_t.AssignConcat(lt, rt);
          if ((*pred)(joint_t) == TV3::kT) return true;
        }
        return false;
      }
      key.AssignProject(lt, lkeys);
      if (mode_ == Mode::kSetSql && key.HasNull()) return false;
      auto it = index.find(key);
      if (it == index.end()) return false;
      if (trivial_pred) return true;  // any key match suffices
      for (const Tuple* rt : it->second) {
        joint_t.AssignConcat(lt, *rt);
        if ((*pred)(joint_t) == TV3::kT) return true;
      }
      return false;
    };

    Relation out(l->attrs());
    for (const auto& [lt, lc] : l->rows()) {
      if (exists_match(lt) != anti) {
        INCDB_RETURN_IF_ERROR(out.Insert(lt, set_semantics() ? 1 : lc));
      }
    }
    return out;
  }

  /// SQL's x̄ [NOT] IN subquery predicate (OpKind::kIn / kNotIn). The
  /// right side is first filtered per left row by the (possibly
  /// correlated) condition θ with 3VL keep-t discipline; membership of the
  /// left compare columns then follows the active mode:
  ///  * naive: syntactic equality;
  ///  * SQL:   IN keeps a row iff some right row compares t; NOT IN keeps
  ///           a row iff *every* right row compares f — one null partner
  ///           (or a null on the left with a non-empty right side) blocks
  ///           the row, reproducing SQL's notorious NOT IN behaviour.
  StatusOr<Relation> EvalInPredicate(const AlgPtr& q, bool negated) {
    auto l = Eval(q->left);
    if (!l.ok()) return l;
    auto r = Eval(q->right);
    if (!r.ok()) return r;
    std::vector<size_t> lpos, rpos;
    for (const std::string& a : q->attrs) {
      size_t i = IndexOf(l->attrs(), a);
      if (i == l->attrs().size()) {
        return Status::NotFound("IN: left column " + a + " not in input");
      }
      lpos.push_back(i);
    }
    for (const std::string& a : q->attrs2) {
      size_t i = IndexOf(r->attrs(), a);
      if (i == r->attrs().size()) {
        return Status::NotFound("IN: right column " + a + " not in input");
      }
      rpos.push_back(i);
    }
    std::vector<std::string> joint = l->attrs();
    for (const std::string& a : r->attrs()) {
      if (IndexOf(l->attrs(), a) != l->attrs().size()) {
        return Status::InvalidArgument("IN: attribute " + a +
                                       " appears on both sides (rename)");
      }
      joint.push_back(a);
    }
    auto pred = CompileCond(q->cond, joint, ToCondMode(mode_));
    if (!pred.ok()) return pred.status();
    const bool correlated = q->cond->kind != CondKind::kTrue;

    // Uncorrelated fast path: precompute the key multiset once. Keys
    // involving nulls are listed separately: under SQL 3VL they are the
    // only right keys an all-constant left key cannot dismiss with one
    // hash lookup.
    std::unordered_map<Tuple, uint64_t> keys;
    std::vector<const Tuple*> null_keys;
    Tuple key_scratch;
    if (!correlated) {
      keys.reserve(r->rows().size());
      for (const auto& [rt, rc] : r->rows()) {
        key_scratch.AssignProject(rt, rpos);
        auto [it, inserted] = keys.try_emplace(key_scratch, rc);
        if (!inserted) {
          it->second += rc;
        } else if (it->first.HasNull()) {
          null_keys.push_back(&it->first);
        }
      }
    }

    Relation out(l->attrs());
    Tuple lkey, rkey, joint_t;  // scratch, reused across rows and pairs
    for (const auto& [lt, lc] : l->rows()) {
      lkey.AssignProject(lt, lpos);
      bool keep;
      if (!correlated) {
        if (mode_ != Mode::kSetSql) {
          bool found = keys.count(lkey) > 0;
          keep = negated ? !found : found;
        } else if (!negated) {
          keep = lkey.AllConst() && keys.count(lkey) > 0;
        } else {
          // NOT IN: all comparisons must be certainly false. All-constant
          // pairs compare t exactly when syntactically equal, so an
          // all-constant left key needs one hash miss plus a scan of the
          // (typically few) null-involving right keys; a left key with a
          // null keeps the pairwise 3VL scan.
          if (keys.empty()) {
            keep = true;
          } else if (lkey.AllConst()) {
            keep = keys.count(lkey) == 0;
            for (const Tuple* nk : null_keys) {
              if (!keep) break;
              if (SqlTupleEq(lkey, *nk) != TV3::kF) keep = false;
            }
          } else {
            keep = true;
            for (const auto& [rk, rc] : keys) {
              if (SqlTupleEq(lkey, rk) != TV3::kF) {
                keep = false;
                break;
              }
            }
          }
        }
      } else {
        // Correlated: filter right rows by θ(l·r) = t, then test.
        bool exists_t = false;
        bool all_f = true;
        for (const auto& [rt, rc] : r->rows()) {
          joint_t.AssignConcat(lt, rt);
          if ((*pred)(joint_t) != TV3::kT) continue;
          rkey.AssignProject(rt, rpos);
          if (mode_ == Mode::kSetSql) {
            TV3 tv = SqlTupleEq(lkey, rkey);
            if (tv == TV3::kT) exists_t = true;
            if (tv != TV3::kF) all_f = false;
          } else {
            if (lkey == rkey) exists_t = true;
            if (lkey == rkey) all_f = false;
          }
        }
        keep = negated ? all_f : exists_t;
      }
      if (keep) {
        INCDB_RETURN_IF_ERROR(out.Insert(lt, set_semantics() ? 1 : lc));
      }
    }
    return out;
  }

  const Database& db_;
  Mode mode_;
  EvalOptions opts_;
  uint64_t produced_ = 0;
};

}  // namespace

StatusOr<Relation> EvalSet(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts) {
  return Evaluator(db, Mode::kSetNaive, opts).Eval(q);
}

StatusOr<Relation> EvalBag(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts) {
  return Evaluator(db, Mode::kBagNaive, opts).Eval(q);
}

StatusOr<Relation> EvalSql(const AlgPtr& q, const Database& db,
                           const EvalOptions& opts) {
  return Evaluator(db, Mode::kSetSql, opts).Eval(q);
}

}  // namespace incdb
