// Physical-plan executor (see eval/plan.h for the layer contract).
//
// Operators exchange RelationViews: leaf scans borrow the database rows in
// place, everything that materialises owns its output. The partitioned
// operators split work across a process-wide worker pool
// (EvalOptions::num_threads) in two flavours:
//
//  * the hash join partitions build and probe by key-hash prefix and
//    merges partition outputs in partition-index order — deterministic for
//    a fixed thread count and always the same *relation* as sequential;
//  * nested-loop join, difference/NOT-IN and ⋉⇑ split the *left* rows into
//    contiguous chunks and merge chunk outputs in chunk order, which
//    reproduces the exact sequential insertion order at any thread count.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/exec_context.h"
#include "core/fault.h"
#include "eval/batch.h"
#include "eval/eval.h"
#include "eval/parallel_policy.h"
#include "eval/plan.h"
#include "eval/unify_index.h"

namespace incdb {

StatusOr<RelationView> ScanResolver::Resolve(const std::string& name,
                                             bool collapse_to_set) {
  INCDB_FAULT_POINT("scan.resolve");
  const Relation* found = db_->Find(name);
  if (found == nullptr) {
    return Status::NotFound("no relation named " + name);
  }
  const Relation& rel = *found;
  if (!collapse_to_set) return RelationView::Borrow(rel);
  // The IsSet() scan and any collapse run once per relation; repeated
  // resolutions (the FO evaluator re-resolves inside quantifier loops)
  // hit the cached decision.
  auto it = collapsed_.find(name);
  if (it == collapsed_.end()) {
    // Base relations are usually sets already, in which case the scan is
    // a pure borrow (cached as null); otherwise the collapsed copy is
    // materialised once.
    std::unique_ptr<Relation> copy;
    if (!rel.IsSet()) copy = std::make_unique<Relation>(rel.ToSet());
    it = collapsed_.emplace(name, std::move(copy)).first;
  }
  return RelationView::Borrow(it->second ? *it->second : rel);
}

namespace {

/// \brief Process-wide worker pool for the partitioned operators (hash
/// join, nested-loop join, difference/NOT-IN, ⋉⇑).
///
/// Workers are spawned lazily up to the largest num_threads ever requested
/// (capped) and persist for the process lifetime, so repeated evaluations
/// pay no thread-spawn cost. The calling thread participates in every
/// batch; tasks never enqueue tasks, so the pool cannot deadlock.
class ExecPool {
 public:
  static ExecPool& Get() {
    static ExecPool* pool = new ExecPool();  // leaked: workers never join
    return *pool;
  }

  /// Runs fn(0) .. fn(n_tasks-1) using up to n_threads threads (including
  /// the caller). Returns after every task body has completed.
  void Run(size_t n_tasks, size_t n_threads, const std::function<void(size_t)>& fn) {
    if (n_tasks == 0) return;
    size_t helpers = std::min(n_threads > 0 ? n_threads - 1 : 0, n_tasks - 1);
    helpers = std::min(helpers, kMaxWorkers);
    if (helpers == 0) {
      for (size_t i = 0; i < n_tasks; ++i) fn(i);
      return;
    }
    auto batch = std::make_shared<TaskBatch>();
    batch->fn = &fn;
    batch->total = n_tasks;
    batch->remaining.store(n_tasks, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      while (n_workers_ < helpers) {
        std::thread(&ExecPool::WorkerLoop, this).detach();
        ++n_workers_;
      }
      current_ = batch;
      ++generation_;
    }
    work_cv_.notify_all();
    Work(*batch);
    std::unique_lock<std::mutex> lk(batch->done_mu);
    batch->done_cv.wait(lk, [&] {
      return batch->remaining.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  static constexpr size_t kMaxWorkers = 15;

  struct TaskBatch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t total = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> remaining{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  static void Work(TaskBatch& batch) {
    size_t i;
    while ((i = batch.next.fetch_add(1, std::memory_order_relaxed)) <
           batch.total) {
      (*batch.fn)(i);
      if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(batch.done_mu);
        batch.done_cv.notify_all();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    while (true) {
      std::shared_ptr<TaskBatch> batch;
      {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] { return generation_ != seen; });
        seen = generation_;
        batch = current_;
      }
      if (batch) Work(*batch);
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::shared_ptr<TaskBatch> current_;
  uint64_t generation_ = 0;
  size_t n_workers_ = 0;
};

/// \brief Columnar machinery for the nested-loop join paths.
///
/// The predicate-referenced right-side columns are transposed once at
/// construction; per left row the left-side components broadcast with
/// stride 0 and the condition program sweeps windows of right rows. Each
/// pool worker owns its own NLBatcher (construction is O(right rows ×
/// referenced columns), negligible against the pair loop it accelerates).
class NLBatcher {
 public:
  NLBatcher(const BatchPredicate& bp, const std::vector<Relation::Row>& rrows,
            size_t left_arity, size_t joint_arity)
      : bp_(bp), left_arity_(left_arity) {
    batch_.Reset(joint_arity, 0);
    rcols_.resize(joint_arity);
    for (size_t p : bp.referenced()) {
      if (p < left_arity_) continue;
      rcols_[p].Reserve(rrows.size());
      AppendColumn(rrows, 0, rrows.size(), p - left_arity_, &rcols_[p]);
    }
  }

  /// Appends to `sel` the indices (relative to `begin`) of the right rows
  /// in [begin, end) whose joint pair with `lt` satisfies the condition.
  void Select(const Tuple& lt, size_t begin, size_t end,
              BatchPredicate::Scratch* scratch, SelVector* sel) {
    batch_.rows = end - begin;
    for (size_t p : bp_.referenced()) {
      if (p < left_arity_) {
        batch_.cols[p] = BatchColumn{&lt[p], 0};  // broadcast
      } else {
        batch_.cols[p] = BatchColumn{rcols_[p].data() + begin, 1};
      }
    }
    bp_.SelectTrue(batch_, scratch, sel);
  }

 private:
  const BatchPredicate& bp_;
  size_t left_arity_;
  std::vector<ColumnVector> rcols_;
  Batch batch_;
};

class Executor {
 public:
  Executor(const Plan& plan, const Database& db, const ExecContext& ctx)
      : plan_(plan), db_(db), scans_(db), ctx_(&ctx),
        limited_(ctx.limited()) {}

  StatusOr<Relation> Run() {
    // Fast-fail an already-expired deadline or pre-cancelled token before
    // any work is done.
    if (limited_) INCDB_RETURN_IF_ERROR(ctx_->Check());
    return RunNode(plan_.root);
  }

  /// Evaluates an arbitrary node of the plan's DAG and materialises it.
  StatusOr<Relation> RunNode(const PhysPtr& node) {
    auto out = Eval(node);
    if (!out.ok()) return out.status();
    // A still-borrowed result (bare scan, rename pass-through, distinct
    // over an already-set scan) was never charged by any materializing
    // operator — budget it here so max_tuples bounds every relation the
    // executor hands out, not just the ones it had to build.
    if (out->borrowed()) {
      INCDB_RETURN_IF_ERROR(Budget(out->TotalSize(), out->arity()));
    }
    INCDB_FAULT_POINT("exec.materialize");
    return std::move(*out).Materialize();
  }

 private:
  bool set_semantics() const { return plan_.mode != EvalMode::kBagNaive; }
  bool sql_mode() const { return plan_.mode == EvalMode::kSetSql; }

  /// Cancellation/deadline checkpoints amortize exactly like the 4096-row
  /// over-budget reports: one counter add per `rows` units of work, one
  /// real Check() (clock read + atomic load) per interval. An unlimited
  /// context costs a single predictable branch.
  static constexpr uint64_t kCheckpointInterval = 4096;

  Status Checkpoint(uint64_t rows = 1) {
    if (!limited_) return Status::OK();
    check_acc_ += rows;
    if (check_acc_ < kCheckpointInterval) return Status::OK();
    check_acc_ = 0;
    return ctx_->Check(mem_used_);
  }

  Status Budget(uint64_t produced, size_t arity) {
    produced_ += produced;
    mem_used_ += produced * arity * sizeof(Value);
    if (produced_ > plan_.opts.max_tuples) {
      StatusDetail d;
      d.budget_used = produced_;
      d.budget_limit = plan_.opts.max_tuples;
      return Status::ResourceExhausted(
                 "evaluation exceeded max_tuples=" +
                 std::to_string(plan_.opts.max_tuples))
          .WithDetail(std::move(d));
    }
    // The soft memory budget is enforced on the same cadence as the tuple
    // budget: every materializing operator reports here.
    if (limited_ && ctx_->soft_mem_limit_bytes != 0) {
      return ctx_->Check(mem_used_);
    }
    return Status::OK();
  }

  /// True when this operator should split `left_rows` input rows across
  /// the pool (`weight` is the operator's work estimate; the per-op grain
  /// policy lives in eval/parallel_policy.h).
  bool UseChunkParallelism(size_t left_rows, size_t weight, ChunkOp op) const {
    return ChunkParallelismProfitable(plan_.opts.num_threads, left_rows,
                                      weight, plan_.opts.parallel_min_rows,
                                      op);
  }

  /// Rows per columnar chunk; 0 = tuple-at-a-time interpreter.
  size_t batch_size() const { return plan_.opts.batch_size; }

  /// Lazily compiles `n.cond` into the columnar predicate program against
  /// the same input schema and CondMode the scalar `n.pred` was compiled
  /// with (plan.cpp AttachCond), so the two evaluators agree bit-for-bit.
  /// Returns nullptr (caller falls back to the scalar path) if the
  /// condition cannot be compiled — unreachable in practice, since
  /// CompileCond already succeeded against the same schema at plan time.
  /// NOT thread-safe: compile before dispatching pool workers.
  const BatchPredicate* BatchPredFor(const PhysNode& n,
                                     const std::vector<std::string>& attrs) {
    auto it = batch_preds_.find(&n);
    if (it != batch_preds_.end()) return it->second.get();
    const CondMode mode = sql_mode() ? CondMode::kSql : CondMode::kNaive;
    auto bp = BatchPredicate::Make(n.cond, attrs, mode);
    std::unique_ptr<BatchPredicate> owned;
    if (bp.ok()) owned = std::make_unique<BatchPredicate>(std::move(*bp));
    return batch_preds_.emplace(&n, std::move(owned))
        .first->second.get();
  }

  /// The joint (left·right) input schema a join's residual predicate was
  /// compiled against.
  std::vector<std::string> JointAttrs(const PhysNode& n) const {
    std::vector<std::string> joint = n.left->attrs;
    joint.insert(joint.end(), n.right->attrs.begin(), n.right->attrs.end());
    return joint;
  }

  /// Runs fn(0) .. fn(P-1) on the pool. The partition count P is the
  /// determinism contract; the worker count is an execution resource,
  /// capped at the hardware parallelism (waking helpers a single-core box
  /// cannot run only adds context switches — the merge order is
  /// partition-indexed either way).
  template <typename Fn>
  void RunPartitions(size_t P, Fn&& fn) {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = P;
    ExecPool::Get().Run(P, std::min(P, hw), std::forward<Fn>(fn));
  }

  /// Runs work(chunk, begin, end) over num_threads contiguous chunks of
  /// [0, n) on the pool; chunk outputs merged in chunk index order
  /// reproduce the exact sequential row order. Returns per-chunk statuses.
  template <typename Fn>
  std::vector<Status> RunChunks(size_t n, Fn&& work) {
    const size_t P = plan_.opts.num_threads;
    std::vector<Status> stats(P, Status::OK());
    RunPartitions(P, [&](size_t p) {
      stats[p] = work(p, n * p / P, n * (p + 1) / P);
    });
    return stats;
  }

  /// Merges per-chunk emitted rows in chunk order. The rows must be
  /// distinct across all chunks (each is derived from a distinct left
  /// row), so the duplicate probe is skipped.
  Status MergeChunksUnique(std::vector<std::vector<Relation::Row>>& parts,
                           Relation* out) {
    size_t total = 0;
    for (const auto& part : parts) total += part.size();
    out->Reserve(total);
    for (auto& part : parts) {
      for (auto& [t, c] : part) {
        INCDB_RETURN_IF_ERROR(out->InsertUnique(std::move(t), c));
      }
    }
    return Status::OK();
  }

  /// Canonical merge for the parallel joins: partition outputs land in
  /// partition-index order. With a fused projection distinct pairs may
  /// collapse, so rows insert with the duplicate probe and multiplicities
  /// normalise at the end; without one the emitted pairs are globally
  /// distinct (each pair joins in exactly one partition) and the probe is
  /// skipped. Emitted multiplicities count against the budget.
  StatusOr<RelationView> MergeJoinParts(
      std::vector<std::vector<Relation::Row>>& parts, const PhysNode& n,
      bool has_proj, bool set) {
    Relation out(n.attrs);
    size_t emitted_rows = 0;
    uint64_t total = 0;
    for (const auto& part : parts) {
      emitted_rows += part.size();
      for (const auto& [t, c] : part) total += c;
    }
    out.Reserve(emitted_rows);
    for (auto& part : parts) {
      for (auto& [t, c] : part) {
        if (has_proj) {
          INCDB_RETURN_IF_ERROR(out.Insert(std::move(t), c));
        } else {
          INCDB_RETURN_IF_ERROR(out.InsertUnique(std::move(t), c));
        }
      }
    }
    INCDB_RETURN_IF_ERROR(Budget(total, n.attrs.size()));
    if (has_proj && set) out.CollapseCounts();
    return RelationView::Own(std::move(out));
  }

  StatusOr<RelationView> Eval(const PhysPtr& n) {
    // OR-expansion branches share their inputs; evaluate those once.
    auto rc = plan_.refcount.find(n.get());
    const bool shared = rc != plan_.refcount.end() && rc->second > 1;
    if (shared) {
      auto it = memo_.find(n.get());
      if (it != memo_.end()) return it->second;
    }
    auto out = EvalNode(*n);
    if (out.ok() && shared) memo_.emplace(n.get(), *out);
    return out;
  }

  StatusOr<RelationView> EvalNode(const PhysNode& n) {
    INCDB_FAULT_POINT("exec.node");
    switch (n.op) {
      case PhysOp::kScanView:
        return scans_.Resolve(n.rel_name, set_semantics());
      case PhysOp::kFilterSel:
        return EvalFilter(n);
      case PhysOp::kFusedProjectFilter:
        return EvalFusedProjectFilter(n);
      case PhysOp::kProject:
        return EvalProject(n);
      case PhysOp::kRename: {
        auto in = Eval(n.left);
        if (!in.ok()) return in;
        return in->Renamed(n.attrs);
      }
      case PhysOp::kHashJoin:
      case PhysOp::kNLJoin:
        return EvalJoin(n);
      case PhysOp::kUnion:
        return EvalUnion(n);
      case PhysOp::kHashDiff:
        return EvalDifference(n);
      case PhysOp::kHashIntersect:
        return EvalIntersect(n);
      case PhysOp::kDivision:
        return EvalDivision(n);
      case PhysOp::kUnifySemiJoin:
        return EvalAntijoinUnify(n);
      case PhysOp::kHashSemi:
        return EvalSemiAnti(n);
      case PhysOp::kInPred:
        return EvalInPredicate(n);
      case PhysOp::kDom:
        return EvalDom(n);
      case PhysOp::kDistinct: {
        auto in = Eval(n.left);
        if (!in.ok()) return in;
        if (in->borrowed() && in->rel().IsSet()) return in;  // already a set
        INCDB_RETURN_IF_ERROR(Checkpoint(in->rows().size()));
        Relation out = std::move(*in).Materialize();
        out.CollapseCounts();
        INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
        return RelationView::Own(std::move(out));
      }
    }
    return Status::Internal("unknown physical operator");
  }

  /// Shared body of the selection operators. In batched mode the input is
  /// swept in batch_size windows: only the predicate-referenced columns
  /// are transposed, the condition program runs column-wise into a
  /// selection vector, and the selected rows are gathered from the
  /// original row storage (projected through proj_pos when `fused`).
  /// Checkpoints fire once per batch. The tuple-at-a-time fallback is
  /// row-for-row identical.
  StatusOr<RelationView> EvalFilterLike(const PhysNode& n, bool fused) {
    auto in = Eval(n.left);
    if (!in.ok()) return in;
    const std::vector<Relation::Row>& rows = in->rows();
    // The predicate was compiled against the operator's input schema:
    // n.attrs for a plain σ (schema-preserving), the child schema for the
    // fused π∘σ.
    const std::vector<std::string>& in_attrs =
        fused ? n.left->attrs : n.attrs;
    const BatchPredicate* bp =
        batch_size() > 0 ? BatchPredFor(n, in_attrs) : nullptr;
    Relation out(n.attrs);
    out.Reserve(rows.size());
    Tuple scratch;
    if (bp != nullptr) {
      for (size_t begin = 0; begin < rows.size(); begin += batch_size()) {
        const size_t end = std::min(rows.size(), begin + batch_size());
        INCDB_RETURN_IF_ERROR(Checkpoint(end - begin));
        gather_.Gather(rows, begin, end, bp->referenced(), in_attrs.size(),
                       &batch_);
        sel_.clear();
        bp->SelectTrue(batch_, &bp_scratch_, &sel_);
        for (uint32_t i : sel_) {
          const auto& [t, c] = rows[begin + i];
          if (fused) {
            scratch.AssignProject(t, n.proj_pos);
            INCDB_RETURN_IF_ERROR(out.Insert(scratch, c));
          } else {
            INCDB_RETURN_IF_ERROR(out.Insert(t, c));
          }
        }
      }
    } else {
      for (const auto& [t, c] : rows) {
        INCDB_RETURN_IF_ERROR(Checkpoint());
        if (n.pred(t) == TV3::kT) {
          if (fused) {
            scratch.AssignProject(t, n.proj_pos);
            INCDB_RETURN_IF_ERROR(out.Insert(scratch, c));
          } else {
            INCDB_RETURN_IF_ERROR(out.Insert(t, c));
          }
        }
      }
    }
    INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
    if (fused && set_semantics()) out.CollapseCounts();
    return RelationView::Own(std::move(out));
  }

  StatusOr<RelationView> EvalFilter(const PhysNode& n) {
    return EvalFilterLike(n, /*fused=*/false);
  }

  StatusOr<RelationView> EvalFusedProjectFilter(const PhysNode& n) {
    return EvalFilterLike(n, /*fused=*/true);
  }

  StatusOr<RelationView> EvalProject(const PhysNode& n) {
    auto in = Eval(n.left);
    if (!in.ok()) return in;
    const std::vector<Relation::Row>& rows = in->rows();
    Relation out(n.attrs);
    out.Reserve(rows.size());
    Tuple scratch;
    if (batch_size() > 0) {
      // Projection is a pure column shuffle — no predicate runs, so the
      // batched path just lifts the checkpoint to batch granularity and
      // emits the shuffled rows directly.
      for (size_t begin = 0; begin < rows.size(); begin += batch_size()) {
        const size_t end = std::min(rows.size(), begin + batch_size());
        INCDB_RETURN_IF_ERROR(Checkpoint(end - begin));
        for (size_t i = begin; i < end; ++i) {
          scratch.AssignProject(rows[i].first, n.proj_pos);
          INCDB_RETURN_IF_ERROR(out.Insert(scratch, rows[i].second));
        }
      }
    } else {
      for (const auto& [t, c] : rows) {
        INCDB_RETURN_IF_ERROR(Checkpoint());
        scratch.AssignProject(t, n.proj_pos);
        INCDB_RETURN_IF_ERROR(out.Insert(scratch, c));
      }
    }
    INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
    if (set_semantics()) out.CollapseCounts();
    return RelationView::Own(std::move(out));
  }

  StatusOr<RelationView> EvalUnion(const PhysNode& n) {
    auto l = Eval(n.left);
    if (!l.ok()) return l;
    auto r = Eval(n.right);
    if (!r.ok()) return r;
    uint64_t r_total = r->TotalSize();
    const std::vector<Relation::Row>& r_rows = r->rows();
    Relation out = std::move(*l).Materialize();
    out.Reserve(out.rows().size() + r_rows.size());
    for (const auto& [t, c] : r_rows) {
      INCDB_RETURN_IF_ERROR(Checkpoint());
      INCDB_RETURN_IF_ERROR(out.Insert(t, c));
    }
    INCDB_RETURN_IF_ERROR(Budget(r_total, n.attrs.size()));
    if (set_semantics()) out.CollapseCounts();
    return RelationView::Own(std::move(out));
  }

  StatusOr<RelationView> EvalDifference(const PhysNode& n) {
    auto l = Eval(n.left);
    if (!l.ok()) return l;
    auto r = Eval(n.right);
    if (!r.ok()) return r;
    const bool sql = sql_mode();
    // Under SQL NOT-IN semantics, right tuples involving nulls are the
    // only ones an all-constant left tuple cannot dismiss with one hash
    // lookup; collect them once.
    std::vector<const Tuple*> null_rows;
    if (sql) {
      for (const auto& [s, sc] : r->rows()) {
        if (s.HasNull()) null_rows.push_back(&s);
      }
    }
    // Multiplicity a left row keeps (0 drops it). Pure reads of the shared
    // right-side view and null_rows: safe to call from pool workers.
    auto kept_count = [&](const Tuple& t, uint64_t c) -> uint64_t {
      if (sql) {
        // NOT IN semantics: keep r̄ only if the comparison with *every*
        // tuple of the right side is certainly false (never t or u).
        // All-constant pairs compare t exactly when syntactically equal,
        // so an all-constant left tuple needs one hash lookup plus a scan
        // of the (typically few) null-involving right tuples; left tuples
        // involving nulls scan everything pairwise.
        if (t.AllConst()) {
          if (r->Contains(t)) return 0;
          for (const Tuple* s : null_rows) {
            if (SqlTupleEq(t, *s) != TV3::kF) return 0;
          }
          return 1;
        }
        for (const auto& [s, sc] : r->rows()) {
          if (SqlTupleEq(t, s) != TV3::kF) return 0;
        }
        return 1;
      }
      uint64_t rc = r->Count(t);
      if (set_semantics()) return rc == 0 ? 1 : 0;
      return c > rc ? c - rc : 0;  // bag monus
    };

    const std::vector<Relation::Row>& lrows = l->rows();
    Relation out(n.attrs);
    if (UseChunkParallelism(lrows.size(), lrows.size() + r->rows().size(),
                            ChunkOp::kDifference)) {
      INCDB_FAULT_POINT("exec.pool_dispatch");
      std::vector<std::vector<Relation::Row>> parts(plan_.opts.num_threads);
      auto stats = RunChunks(
          lrows.size(), [&](size_t p, size_t begin, size_t end) -> Status {
            uint64_t visited = 0;
            for (size_t i = begin; i < end; ++i) {
              if (limited_ && ++visited >= kCheckpointInterval) {
                visited = 0;
                INCDB_RETURN_IF_ERROR(ctx_->Check());
              }
              const auto& [t, c] = lrows[i];
              if (uint64_t kc = kept_count(t, c)) parts[p].emplace_back(t, kc);
            }
            return Status::OK();
          });
      for (const Status& st : stats) {
        INCDB_RETURN_IF_ERROR(st);
      }
      INCDB_RETURN_IF_ERROR(MergeChunksUnique(parts, &out));
      INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
      return RelationView::Own(std::move(out));
    }
    // Sequential probe loop; in batched mode checkpoints lift to batch
    // granularity (the probes themselves are already one hash lookup).
    const size_t W = batch_size() > 0 ? batch_size() : 1;
    for (size_t begin = 0; begin < lrows.size(); begin += W) {
      const size_t end = std::min(lrows.size(), begin + W);
      INCDB_RETURN_IF_ERROR(Checkpoint(end - begin));
      for (size_t i = begin; i < end; ++i) {
        const auto& [t, c] = lrows[i];
        // Left rows are distinct, so each survivor inserts a fresh tuple.
        if (uint64_t kc = kept_count(t, c)) {
          INCDB_RETURN_IF_ERROR(out.InsertUnique(t, kc));
        }
      }
    }
    INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
    return RelationView::Own(std::move(out));
  }

  StatusOr<RelationView> EvalIntersect(const PhysNode& n) {
    auto l = Eval(n.left);
    if (!l.ok()) return l;
    auto r = Eval(n.right);
    if (!r.ok()) return r;
    Relation out(n.attrs);
    if (sql_mode()) {
      // IN semantics: keep r̄ iff some right tuple compares t. Under 3VL a
      // comparison is t only when both tuples are all-constant and equal,
      // so membership reduces to one hash lookup per left tuple.
      for (const auto& [t, c] : l->rows()) {
        INCDB_RETURN_IF_ERROR(Checkpoint());
        if (t.AllConst() && r->Contains(t)) {
          INCDB_RETURN_IF_ERROR(out.Insert(t, 1));
        }
      }
      INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
      return RelationView::Own(std::move(out));
    }
    for (const auto& [t, c] : l->rows()) {
      INCDB_RETURN_IF_ERROR(Checkpoint());
      uint64_t rc = r->Count(t);
      if (rc == 0) continue;
      INCDB_RETURN_IF_ERROR(
          out.Insert(t, set_semantics() ? 1 : std::min(c, rc)));
    }
    INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
    return RelationView::Own(std::move(out));
  }

  StatusOr<RelationView> EvalDivision(const PhysNode& n) {
    auto l = Eval(n.left);
    if (!l.ok()) return l;
    auto r = Eval(n.right);
    if (!r.ok()) return r;
    // Group the dividend by the kept attributes; collect divisor parts.
    std::unordered_map<Tuple, std::set<Tuple>> groups;
    for (const auto& [t, c] : l->rows()) {
      INCDB_RETURN_IF_ERROR(Checkpoint());
      groups[t.Project(n.keep_pos)].insert(t.Project(n.div_l));
    }
    std::set<Tuple> divisor;
    for (const auto& [t, c] : r->rows()) divisor.insert(t.Project(n.div_r));
    Relation out(n.attrs);
    for (const auto& [key, parts] : groups) {
      INCDB_RETURN_IF_ERROR(Checkpoint(divisor.size() + 1));
      bool all = std::includes(parts.begin(), parts.end(), divisor.begin(),
                               divisor.end());
      if (all) INCDB_RETURN_IF_ERROR(out.Insert(key, 1));
    }
    INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
    return RelationView::Own(std::move(out));
  }

  StatusOr<RelationView> EvalAntijoinUnify(const PhysNode& n) {
    auto l = Eval(n.left);
    if (!l.ok()) return l;
    auto r = Eval(n.right);
    if (!r.ok()) return r;
    // The index is built once on the calling thread; probes are const and
    // re-entrant (each worker owns its scratch tuple).
    UnifyIndex index(r->rows(), r->arity(), plan_.opts.enable_unify_index);
    const std::vector<Relation::Row>& lrows = l->rows();
    const bool set = set_semantics();
    Relation out(n.attrs);
    if (UseChunkParallelism(lrows.size(), lrows.size() + r->rows().size(),
                            ChunkOp::kUnifySemiJoin)) {
      INCDB_FAULT_POINT("exec.pool_dispatch");
      std::vector<std::vector<Relation::Row>> parts(plan_.opts.num_threads);
      auto stats = RunChunks(
          lrows.size(), [&](size_t p, size_t begin, size_t end) -> Status {
            Tuple scratch;
            uint64_t visited = 0;
            for (size_t i = begin; i < end; ++i) {
              if (limited_ && ++visited >= kCheckpointInterval) {
                visited = 0;
                INCDB_RETURN_IF_ERROR(ctx_->Check());
              }
              const auto& [t, c] = lrows[i];
              if (!index.AnyUnifiable(t, &scratch)) {
                parts[p].emplace_back(t, set ? 1 : c);
              }
            }
            return Status::OK();
          });
      for (const Status& st : stats) {
        INCDB_RETURN_IF_ERROR(st);
      }
      INCDB_RETURN_IF_ERROR(MergeChunksUnique(parts, &out));
      INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
      return RelationView::Own(std::move(out));
    }
    Tuple scratch;
    // Batched mode lifts checkpoints to batch granularity over the probes.
    const size_t W = batch_size() > 0 ? batch_size() : 1;
    for (size_t begin = 0; begin < lrows.size(); begin += W) {
      const size_t end = std::min(lrows.size(), begin + W);
      INCDB_RETURN_IF_ERROR(Checkpoint(end - begin));
      for (size_t i = begin; i < end; ++i) {
        const auto& [t, c] = lrows[i];
        if (!index.AnyUnifiable(t, &scratch)) {
          INCDB_RETURN_IF_ERROR(out.InsertUnique(t, set ? 1 : c));
        }
      }
    }
    INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
    return RelationView::Own(std::move(out));
  }

  StatusOr<RelationView> EvalDom(const PhysNode& n) {
    std::set<Value> dom = db_.ActiveDomain();
    for (const Value& v : n.dom_extra) dom.insert(v);
    std::vector<Value> values(dom.begin(), dom.end());
    uint64_t expected = 1;
    for (size_t i = 0; i < n.dom_arity; ++i) {
      if (values.empty()) break;
      expected *= values.size();
      if (expected > plan_.opts.max_tuples) {
        StatusDetail d;
        d.budget_used = expected;
        d.budget_limit = plan_.opts.max_tuples;
        return Status::ResourceExhausted(
                   "Dom^" + std::to_string(n.dom_arity) + " over " +
                   std::to_string(values.size()) + " values exceeds max_tuples")
            .WithDetail(std::move(d));
      }
    }
    Relation out(n.attrs);
    std::vector<size_t> idx(n.dom_arity, 0);
    if (n.dom_arity == 0) {
      INCDB_RETURN_IF_ERROR(out.Insert(Tuple{}, 1));
      return RelationView::Own(std::move(out));
    }
    if (values.empty()) return RelationView::Own(std::move(out));
    while (true) {
      INCDB_RETURN_IF_ERROR(Checkpoint());
      std::vector<Value> vals;
      vals.reserve(n.dom_arity);
      for (size_t i : idx) vals.push_back(values[i]);
      INCDB_RETURN_IF_ERROR(out.Insert(Tuple(std::move(vals)), 1));
      size_t pos = n.dom_arity;
      while (pos > 0) {
        --pos;
        if (++idx[pos] < values.size()) break;
        idx[pos] = 0;
        if (pos == 0) {
          INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
          return RelationView::Own(std::move(out));
        }
      }
    }
  }

  StatusOr<RelationView> EvalSemiAnti(const PhysNode& n) {
    auto l = Eval(n.left);
    if (!l.ok()) return l;
    auto r = Eval(n.right);
    if (!r.ok()) return r;
    // Equality with a null key never evaluates to t in either mode unless
    // syntactically equal (naive) — the hash covers both, as naive equality
    // is exactly key identity and SQL-mode null keys are skipped. The index
    // references right rows in place instead of copying them.
    std::unordered_map<Tuple, std::vector<const Tuple*>> index;
    const bool hashed = !n.lkeys.empty();
    Tuple key, joint_t;  // scratch, reused across probes
    if (hashed) {
      index.reserve(r->rows().size());
      for (const auto& [rt, rc] : r->rows()) {
        key.AssignProject(rt, n.rkeys);
        if (sql_mode() && key.HasNull()) continue;
        index[key].push_back(&rt);
      }
    }
    auto exists_match = [&](const Tuple& lt) -> bool {
      if (!hashed) {
        for (const auto& [rt, rc] : r->rows()) {
          joint_t.AssignConcat(lt, rt);
          if (n.pred(joint_t) == TV3::kT) return true;
        }
        return false;
      }
      key.AssignProject(lt, n.lkeys);
      if (sql_mode() && key.HasNull()) return false;
      auto it = index.find(key);
      if (it == index.end()) return false;
      if (n.trivial_residual) return true;  // any key match suffices
      for (const Tuple* rt : it->second) {
        joint_t.AssignConcat(lt, *rt);
        if (n.pred(joint_t) == TV3::kT) return true;
      }
      return false;
    };

    Relation out(n.attrs);
    // Checkpoint weight follows the work: the un-hashed fallback scans the
    // whole right side per left row. Batched mode probes the index
    // batch-at-a-time, checkpointing once per window.
    const uint64_t probe_weight = hashed ? 1 : 1 + r->rows().size();
    const std::vector<Relation::Row>& probe_lrows = l->rows();
    const size_t W = batch_size() > 0 ? batch_size() : 1;
    for (size_t begin = 0; begin < probe_lrows.size(); begin += W) {
      const size_t end = std::min(probe_lrows.size(), begin + W);
      INCDB_RETURN_IF_ERROR(Checkpoint(probe_weight * (end - begin)));
      for (size_t i = begin; i < end; ++i) {
        const auto& [lt, lc] = probe_lrows[i];
        if (exists_match(lt) != n.anti) {
          INCDB_RETURN_IF_ERROR(out.Insert(lt, set_semantics() ? 1 : lc));
        }
      }
    }
    INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
    return RelationView::Own(std::move(out));
  }

  /// SQL's x̄ [NOT] IN subquery predicate. The right side is first filtered
  /// per left row by the (possibly correlated) condition θ with 3VL keep-t
  /// discipline; membership of the left compare columns then follows the
  /// active mode:
  ///  * naive: syntactic equality;
  ///  * SQL:   IN keeps a row iff some right row compares t; NOT IN keeps
  ///           a row iff *every* right row compares f — one null partner
  ///           (or a null on the left with a non-empty right side) blocks
  ///           the row, reproducing SQL's notorious NOT IN behaviour.
  StatusOr<RelationView> EvalInPredicate(const PhysNode& n) {
    auto l = Eval(n.left);
    if (!l.ok()) return l;
    auto r = Eval(n.right);
    if (!r.ok()) return r;
    const bool negated = n.anti;

    // Uncorrelated fast path: precompute the key multiset once. Keys
    // involving nulls are listed separately: under SQL 3VL they are the
    // only right keys an all-constant left key cannot dismiss with one
    // hash lookup.
    std::unordered_map<Tuple, uint64_t> keys;
    std::vector<const Tuple*> null_keys;
    Tuple key_scratch;
    if (!n.correlated) {
      keys.reserve(r->rows().size());
      for (const auto& [rt, rc] : r->rows()) {
        key_scratch.AssignProject(rt, n.rpos);
        auto [it, inserted] = keys.try_emplace(key_scratch, rc);
        if (!inserted) {
          it->second += rc;
        } else if (it->first.HasNull()) {
          null_keys.push_back(&it->first);
        }
      }
    }

    Relation out(n.attrs);
    Tuple lkey, rkey, joint_t;  // scratch, reused across rows and pairs
    // The correlated path re-scans the right side per left row. Batched
    // mode checkpoints once per window of left rows.
    const uint64_t row_weight = n.correlated ? 1 + r->rows().size() : 1;
    const std::vector<Relation::Row>& in_lrows = l->rows();
    const size_t W = batch_size() > 0 ? batch_size() : 1;
    for (size_t wbegin = 0; wbegin < in_lrows.size(); wbegin += W) {
      const size_t wend = std::min(in_lrows.size(), wbegin + W);
      INCDB_RETURN_IF_ERROR(Checkpoint(row_weight * (wend - wbegin)));
      for (size_t wi = wbegin; wi < wend; ++wi) {
      const auto& [lt, lc] = in_lrows[wi];
      lkey.AssignProject(lt, n.lpos);
      bool keep;
      if (!n.correlated) {
        if (!sql_mode()) {
          bool found = keys.count(lkey) > 0;
          keep = negated ? !found : found;
        } else if (!negated) {
          keep = lkey.AllConst() && keys.count(lkey) > 0;
        } else {
          // NOT IN: all comparisons must be certainly false. All-constant
          // pairs compare t exactly when syntactically equal, so an
          // all-constant left key needs one hash miss plus a scan of the
          // (typically few) null-involving right keys; a left key with a
          // null keeps the pairwise 3VL scan.
          if (keys.empty()) {
            keep = true;
          } else if (lkey.AllConst()) {
            keep = keys.count(lkey) == 0;
            for (const Tuple* nk : null_keys) {
              if (!keep) break;
              if (SqlTupleEq(lkey, *nk) != TV3::kF) keep = false;
            }
          } else {
            keep = true;
            for (const auto& [rk, rc] : keys) {
              if (SqlTupleEq(lkey, rk) != TV3::kF) {
                keep = false;
                break;
              }
            }
          }
        }
      } else {
        // Correlated: filter right rows by θ(l·r) = t, then test.
        bool exists_t = false;
        bool all_f = true;
        for (const auto& [rt, rc] : r->rows()) {
          joint_t.AssignConcat(lt, rt);
          if (n.pred(joint_t) != TV3::kT) continue;
          rkey.AssignProject(rt, n.rpos);
          if (sql_mode()) {
            TV3 tv = SqlTupleEq(lkey, rkey);
            if (tv == TV3::kT) exists_t = true;
            if (tv != TV3::kF) all_f = false;
          } else {
            if (lkey == rkey) exists_t = true;
            if (lkey == rkey) all_f = false;
          }
        }
        keep = negated ? all_f : exists_t;
      }
      if (keep) {
        INCDB_RETURN_IF_ERROR(out.Insert(lt, set_semantics() ? 1 : lc));
      }
      }
    }
    INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
    return RelationView::Own(std::move(out));
  }

  StatusOr<RelationView> EvalJoin(const PhysNode& n) {
    auto l = Eval(n.left);
    if (!l.ok()) return l;
    auto r = Eval(n.right);
    if (!r.ok()) return r;
    const bool set = set_semantics();
    const bool has_proj = n.fused_proj;

    // Projection shortcut: a condition-free product projected onto
    // columns of a single side is just that side's projection (times the
    // other side's non-emptiness) under set semantics.
    if (n.op == PhysOp::kNLJoin && has_proj && set &&
        n.cond->kind == CondKind::kTrue) {
      if (n.proj_left_only && !r->rows().empty()) {
        Relation out(n.attrs);
        Tuple scratch;
        for (const auto& [lt, lc] : l->rows()) {
          INCDB_RETURN_IF_ERROR(Checkpoint());
          scratch.AssignProject(lt, n.proj_pos);  // positions are left-local
          INCDB_RETURN_IF_ERROR(out.Insert(scratch, 1));
        }
        out.CollapseCounts();
        INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
        return RelationView::Own(std::move(out));
      }
      if (n.proj_right_only && !l->rows().empty()) {
        std::vector<size_t> pos;
        for (size_t i : n.proj_pos) pos.push_back(i - n.left_arity);
        Relation out(n.attrs);
        Tuple scratch;
        for (const auto& [rt, rc] : r->rows()) {
          INCDB_RETURN_IF_ERROR(Checkpoint());
          scratch.AssignProject(rt, pos);
          INCDB_RETURN_IF_ERROR(out.Insert(scratch, 1));
        }
        out.CollapseCounts();
        INCDB_RETURN_IF_ERROR(Budget(out.TotalSize(), n.attrs.size()));
        return RelationView::Own(std::move(out));
      }
      if (l->rows().empty() || r->rows().empty()) {
        return RelationView::Own(Relation(n.attrs));
      }
    }

    Relation out(n.attrs);
    // Scratch tuples reused across every pair: the hot loop below performs
    // no allocations except inserting kept tuples into `out`.
    Tuple joint, projected;
    auto emit = [&](const Tuple& lt, uint64_t lc, const Tuple& rt,
                    uint64_t rc) -> Status {
      // Every visited pair counts one checkpoint unit — the deadline fires
      // within a few thousand pairs even when nothing matches.
      INCDB_RETURN_IF_ERROR(Checkpoint());
      // With SQL-mode equality, a null join key never compares t; with
      // naive equality the hash join already used syntactic equality. The
      // residual condition is checked in the active mode.
      joint.AssignConcat(lt, rt);
      if (n.pred(joint) == TV3::kT) {
        uint64_t c = set ? 1 : lc * rc;
        if (has_proj) {
          projected.AssignProject(joint, n.proj_pos);
          INCDB_RETURN_IF_ERROR(out.Insert(projected, c));
        } else {
          // Pairs of distinct rows are distinct: no duplicate probe.
          INCDB_RETURN_IF_ERROR(out.InsertUnique(joint, c));
        }
        INCDB_RETURN_IF_ERROR(Budget(c, n.attrs.size()));
      }
      return Status::OK();
    };

    // With a projection under set semantics, distinct pairs may collapse;
    // normalise multiplicities at the end.
    auto finish = [&]() -> RelationView {
      if (has_proj && set) out.CollapseCounts();
      return RelationView::Own(std::move(out));
    };

    if (n.op == PhysOp::kNLJoin) {
      // Work estimate for the parallel threshold: every pair is visited.
      const size_t pairs = l->rows().size() * r->rows().size();
      if (UseChunkParallelism(l->rows().size(), pairs, ChunkOp::kNLJoin)) {
        return ParallelNLJoin(n, *l, *r);
      }
      const BatchPredicate* bp =
          batch_size() > 0 ? BatchPredFor(n, JointAttrs(n)) : nullptr;
      if (bp != nullptr) {
        // Vectorized sweep: the condition program runs over windows of
        // right rows with the left tuple broadcast, and only the selected
        // pairs are concatenated and inserted — same pairs, same order,
        // same multiplicities as the scalar loop below.
        const std::vector<Relation::Row>& lrows = l->rows();
        const std::vector<Relation::Row>& rrows = r->rows();
        NLBatcher nb(*bp, rrows, n.left_arity, n.left_arity + r->arity());
        for (const auto& [lt, lc] : lrows) {
          for (size_t begin = 0; begin < rrows.size();
               begin += batch_size()) {
            const size_t end = std::min(rrows.size(), begin + batch_size());
            INCDB_RETURN_IF_ERROR(Checkpoint(end - begin));
            sel_.clear();
            nb.Select(lt, begin, end, &bp_scratch_, &sel_);
            for (uint32_t si : sel_) {
              const auto& [rt, rc] = rrows[begin + si];
              joint.AssignConcat(lt, rt);
              uint64_t c = set ? 1 : lc * rc;
              if (has_proj) {
                projected.AssignProject(joint, n.proj_pos);
                INCDB_RETURN_IF_ERROR(out.Insert(projected, c));
              } else {
                INCDB_RETURN_IF_ERROR(out.InsertUnique(joint, c));
              }
              INCDB_RETURN_IF_ERROR(Budget(c, n.attrs.size()));
            }
          }
        }
        return finish();
      }
      for (const auto& [lt, lc] : l->rows()) {
        for (const auto& [rt, rc] : r->rows()) {
          INCDB_RETURN_IF_ERROR(emit(lt, lc, rt, rc));
        }
      }
      return finish();
    }

    // Hash join. Under SQL mode, rows with a null key cannot satisfy the
    // equality with truth value t, so skipping them is sound. The index is
    // built over the smaller side and stores row indices into that side's
    // flat storage — no tuples are copied.
    const bool build_left = l->rows().size() <= r->rows().size();
    const std::vector<Relation::Row>& build_rows =
        build_left ? l->rows() : r->rows();
    const std::vector<Relation::Row>& probe_rows =
        build_left ? r->rows() : l->rows();
    const std::vector<size_t>& build_keys = build_left ? n.lkeys : n.rkeys;
    const std::vector<size_t>& probe_keys = build_left ? n.rkeys : n.lkeys;

    const size_t threads = plan_.opts.num_threads;
    if (threads > 1 &&
        build_rows.size() + probe_rows.size() >= plan_.opts.parallel_min_rows) {
      return ParallelHashJoin(n, build_left, build_rows, probe_rows,
                              build_keys, probe_keys);
    }

    std::unordered_map<Tuple, std::vector<uint32_t>> index;
    index.reserve(build_rows.size());
    Tuple key;  // scratch for both build and probe keys
    for (uint32_t i = 0; i < build_rows.size(); ++i) {
      key.AssignProject(build_rows[i].first, build_keys);
      if (sql_mode() && key.HasNull()) continue;
      index[key].push_back(i);
    }
    if (batch_size() > 0) {
      // Batch-at-a-time probing: the probe side is swept in batch_size
      // windows with one checkpoint per window (plus one per match run),
      // and a trivial residual (θ = true) skips the per-pair predicate
      // call entirely — every equi-join pair already matched by key.
      const bool trivial = n.cond->kind == CondKind::kTrue;
      auto emit_batched = [&](const Tuple& lt, uint64_t lc, const Tuple& rt,
                              uint64_t rc) -> Status {
        joint.AssignConcat(lt, rt);
        if (!trivial && n.pred(joint) != TV3::kT) return Status::OK();
        uint64_t c = set ? 1 : lc * rc;
        if (has_proj) {
          projected.AssignProject(joint, n.proj_pos);
          INCDB_RETURN_IF_ERROR(out.Insert(projected, c));
        } else {
          INCDB_RETURN_IF_ERROR(out.InsertUnique(joint, c));
        }
        return Budget(c, n.attrs.size());
      };
      for (size_t begin = 0; begin < probe_rows.size();
           begin += batch_size()) {
        const size_t end = std::min(probe_rows.size(), begin + batch_size());
        INCDB_RETURN_IF_ERROR(Checkpoint(end - begin));
        for (size_t pi = begin; pi < end; ++pi) {
          const auto& [pt, pc] = probe_rows[pi];
          key.AssignProject(pt, probe_keys);
          if (sql_mode() && key.HasNull()) continue;
          auto it = index.find(key);
          if (it == index.end()) continue;
          INCDB_RETURN_IF_ERROR(Checkpoint(it->second.size()));
          for (uint32_t bi : it->second) {
            const auto& [bt, bc] = build_rows[bi];
            if (build_left) {
              INCDB_RETURN_IF_ERROR(emit_batched(bt, bc, pt, pc));
            } else {
              INCDB_RETURN_IF_ERROR(emit_batched(pt, pc, bt, bc));
            }
          }
        }
      }
      return finish();
    }
    for (const auto& [pt, pc] : probe_rows) {
      INCDB_RETURN_IF_ERROR(Checkpoint());
      key.AssignProject(pt, probe_keys);
      if (sql_mode() && key.HasNull()) continue;
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (uint32_t bi : it->second) {
        const auto& [bt, bc] = build_rows[bi];
        if (build_left) {
          INCDB_RETURN_IF_ERROR(emit(bt, bc, pt, pc));
        } else {
          INCDB_RETURN_IF_ERROR(emit(pt, pc, bt, bc));
        }
      }
    }
    return finish();
  }

  /// Partitioned hash join: both sides are split by key-hash prefix into
  /// num_threads partitions; matching keys land in the same partition, so
  /// partitions join independently on the pool. Outputs merge in
  /// partition-index order — a fixed thread count yields a deterministic
  /// row order, and any thread count yields the same relation.
  StatusOr<RelationView> ParallelHashJoin(
      const PhysNode& n, bool build_left,
      const std::vector<Relation::Row>& build_rows,
      const std::vector<Relation::Row>& probe_rows,
      const std::vector<size_t>& build_keys,
      const std::vector<size_t>& probe_keys) {
    INCDB_FAULT_POINT("exec.pool_dispatch");
    const bool set = set_semantics();
    const bool sql = sql_mode();
    const bool has_proj = n.fused_proj;
    const size_t P = plan_.opts.num_threads;
    // Batched mode: probe lists sweep in whole batches (one cooperative
    // check per window) and a trivial residual skips the per-pair
    // predicate call.
    const bool trivial =
        batch_size() > 0 && n.cond->kind == CondKind::kTrue;
    const size_t W = batch_size() > 0 ? batch_size() : 1;

    std::vector<std::vector<uint32_t>> build_parts(P), probe_parts(P);
    Tuple key;
    for (uint32_t i = 0; i < build_rows.size(); ++i) {
      key.AssignProject(build_rows[i].first, build_keys);
      if (sql && key.HasNull()) continue;
      build_parts[key.Hash() % P].push_back(i);
    }
    for (uint32_t i = 0; i < probe_rows.size(); ++i) {
      key.AssignProject(probe_rows[i].first, probe_keys);
      if (sql && key.HasNull()) continue;
      probe_parts[key.Hash() % P].push_back(i);
    }

    // Partitions emit raw (tuple, count) rows — the hash-indexed insert
    // happens exactly once, at the canonical merge below.
    std::vector<std::vector<Relation::Row>> outs(P);
    std::vector<Status> stats(P, Status::OK());
    // The budget is enforced cooperatively: partitions add their emissions
    // to a shared counter in chunks and abort once the ceiling is crossed
    // (overshoot is bounded by P chunks).
    std::atomic<uint64_t> emitted{0};
    const uint64_t budget_left =
        plan_.opts.max_tuples > produced_ ? plan_.opts.max_tuples - produced_
                                          : 0;

    RunPartitions(P, [&](size_t p) {
      std::vector<Relation::Row>& part_out = outs[p];
      Tuple pkey, joint;
      uint64_t unreported = 0;
      // Workers observe the ExecContext cooperatively: every worker checks
      // its own visited-pair counter, so a deadline or a Cancel() from
      // another thread stops all partitions within one interval. Partial
      // results are discarded by the merge-on-error below and the pool
      // stays reusable (ExecPool::Run always drains every task body).
      uint64_t visited = 0;
      auto interrupted = [&]() {
        visited = 0;
        if (!limited_) return false;
        Status cst = ctx_->Check();
        if (cst.ok()) return false;
        stats[p] = std::move(cst);
        return true;
      };
      auto over_budget = [&]() {
        emitted.fetch_add(unreported, std::memory_order_relaxed);
        unreported = 0;
        return emitted.load(std::memory_order_relaxed) > budget_left;
      };
      std::unordered_map<Tuple, std::vector<uint32_t>> index;
      index.reserve(build_parts[p].size());
      for (uint32_t i : build_parts[p]) {
        if (++visited >= kCheckpointInterval && interrupted()) return;
        pkey.AssignProject(build_rows[i].first, build_keys);
        index[pkey].push_back(i);
      }
      const std::vector<uint32_t>& plist = probe_parts[p];
      for (size_t wb = 0; wb < plist.size(); wb += W) {
        const size_t we = std::min(plist.size(), wb + W);
        visited += we - wb;
        if (visited >= kCheckpointInterval && interrupted()) return;
        for (size_t qi = wb; qi < we; ++qi) {
          const auto& [pt, pc] = probe_rows[plist[qi]];
          pkey.AssignProject(pt, probe_keys);
          auto it = index.find(pkey);
          if (it == index.end()) continue;
          for (uint32_t bi : it->second) {
            if (++visited >= kCheckpointInterval && interrupted()) return;
            const auto& [bt, bc] = build_rows[bi];
            const Tuple& lt = build_left ? bt : pt;
            const Tuple& rt = build_left ? pt : bt;
            joint.AssignConcat(lt, rt);
            if (!trivial && n.pred(joint) != TV3::kT) continue;
            uint64_t c = set ? 1 : bc * pc;
            if (has_proj) {
              part_out.emplace_back(joint.Project(n.proj_pos), c);
            } else {
              part_out.emplace_back(joint, c);
            }
            if (++unreported >= 4096 && over_budget()) {
              StatusDetail d;
              d.budget_used =
                  produced_ + emitted.load(std::memory_order_relaxed);
              d.budget_limit = plan_.opts.max_tuples;
              stats[p] = Status::ResourceExhausted(
                             "evaluation exceeded max_tuples=" +
                             std::to_string(plan_.opts.max_tuples))
                             .WithDetail(std::move(d));
              return;
            }
          }
        }
      }
      emitted.fetch_add(unreported, std::memory_order_relaxed);
    });

    for (const Status& st : stats) {
      INCDB_RETURN_IF_ERROR(st);
    }

    return MergeJoinParts(outs, n, has_proj, set);
  }

  /// Chunk-partitioned nested-loop join: left rows split into contiguous
  /// chunks, each chunk looping over all right rows. Chunk outputs merged
  /// in chunk order reproduce the exact left-major sequential pair order,
  /// so any thread count yields a row-for-row identical relation.
  StatusOr<RelationView> ParallelNLJoin(const PhysNode& n,
                                        const RelationView& l,
                                        const RelationView& r) {
    INCDB_FAULT_POINT("exec.pool_dispatch");
    const bool set = set_semantics();
    const bool has_proj = n.fused_proj;
    const std::vector<Relation::Row>& lrows = l.rows();
    const std::vector<Relation::Row>& rrows = r.rows();
    const size_t P = plan_.opts.num_threads;

    std::vector<std::vector<Relation::Row>> parts(P);
    // Budget enforced cooperatively, exactly like the partitioned hash
    // join: chunks add their emissions to a shared counter and abort once
    // the ceiling is crossed (overshoot bounded by P report intervals).
    std::atomic<uint64_t> emitted{0};
    const uint64_t budget_left =
        plan_.opts.max_tuples > produced_ ? plan_.opts.max_tuples - produced_
                                          : 0;
    // The columnar program must be compiled on this thread: the per-node
    // cache is not synchronized, workers only read the finished program.
    const BatchPredicate* bp =
        batch_size() > 0 ? BatchPredFor(n, JointAttrs(n)) : nullptr;
    auto stats = RunChunks(
        lrows.size(), [&](size_t p, size_t begin, size_t end) -> Status {
          std::vector<Relation::Row>& part_out = parts[p];
          Tuple joint;
          uint64_t unreported = 0;
          // Per-worker cooperative checkpoint on *visited* pairs (emitted
          // pairs alone would never check a selective predicate's chunk):
          // a deadline or cross-thread Cancel() stops every chunk within
          // one interval; partial outputs are dropped by the caller. In
          // batched mode the counter advances one whole window at a time.
          uint64_t visited = 0;
          // Emits the pair currently assembled in `joint`, reporting into
          // the shared budget counter every 4096 emissions.
          auto emit_joint = [&](uint64_t c) -> Status {
            if (has_proj) {
              part_out.emplace_back(joint.Project(n.proj_pos), c);
            } else {
              part_out.emplace_back(joint, c);
            }
            if (++unreported >= 4096) {
              emitted.fetch_add(unreported, std::memory_order_relaxed);
              unreported = 0;
              if (emitted.load(std::memory_order_relaxed) > budget_left) {
                StatusDetail d;
                d.budget_used =
                    produced_ + emitted.load(std::memory_order_relaxed);
                d.budget_limit = plan_.opts.max_tuples;
                return Status::ResourceExhausted(
                           "evaluation exceeded max_tuples=" +
                           std::to_string(plan_.opts.max_tuples))
                    .WithDetail(std::move(d));
              }
            }
            return Status::OK();
          };
          if (bp != nullptr) {
            // Each worker owns its columnar scratch; the right-side
            // transposition is rebuilt per chunk (O(right rows), dwarfed
            // by the pair loop it accelerates).
            NLBatcher nb(*bp, rrows, n.left_arity, n.left_arity + r.arity());
            BatchPredicate::Scratch scratch;
            SelVector sel;
            for (size_t i = begin; i < end; ++i) {
              const auto& [lt, lc] = lrows[i];
              for (size_t wb = 0; wb < rrows.size(); wb += batch_size()) {
                const size_t we = std::min(rrows.size(), wb + batch_size());
                if (limited_) {
                  visited += we - wb;
                  if (visited >= kCheckpointInterval) {
                    visited = 0;
                    INCDB_RETURN_IF_ERROR(ctx_->Check());
                  }
                }
                sel.clear();
                nb.Select(lt, wb, we, &scratch, &sel);
                for (uint32_t si : sel) {
                  const auto& [rt, rc] = rrows[wb + si];
                  joint.AssignConcat(lt, rt);
                  INCDB_RETURN_IF_ERROR(emit_joint(set ? 1 : lc * rc));
                }
              }
            }
            emitted.fetch_add(unreported, std::memory_order_relaxed);
            return Status::OK();
          }
          for (size_t i = begin; i < end; ++i) {
            const auto& [lt, lc] = lrows[i];
            for (const auto& [rt, rc] : rrows) {
              if (limited_ && ++visited >= kCheckpointInterval) {
                visited = 0;
                INCDB_RETURN_IF_ERROR(ctx_->Check());
              }
              joint.AssignConcat(lt, rt);
              if (n.pred(joint) != TV3::kT) continue;
              INCDB_RETURN_IF_ERROR(emit_joint(set ? 1 : lc * rc));
            }
          }
          emitted.fetch_add(unreported, std::memory_order_relaxed);
          return Status::OK();
        });
    for (const Status& st : stats) {
      INCDB_RETURN_IF_ERROR(st);
    }
    return MergeJoinParts(parts, n, has_proj, set);
  }

  const Plan& plan_;
  const Database& db_;
  ScanResolver scans_;
  const ExecContext* ctx_;  // outlives the execution (held by the caller)
  const bool limited_;      // hoisted ctx_->limited(): one branch per checkpoint
  std::unordered_map<const PhysNode*, RelationView> memo_;
  /// Columnar predicate programs per node, compiled on first batched use
  /// (nullptr caches a fallback to the scalar path).
  std::unordered_map<const PhysNode*, std::unique_ptr<BatchPredicate>>
      batch_preds_;
  // Reusable columnar buffers for the sequential batched paths (the
  // parallel paths give each worker its own).
  BatchGather gather_;
  Batch batch_;
  BatchPredicate::Scratch bp_scratch_;
  SelVector sel_;
  uint64_t produced_ = 0;
  uint64_t mem_used_ = 0;   // approx bytes of materialized tuples
  uint64_t check_acc_ = 0;  // rows since the last real ctx check
};

}  // namespace

namespace {
Status CheckExecutable(const PlanPtr& plan) {
  if (!plan || !plan->root) {
    return Status::InvalidArgument("Execute: empty plan");
  }
  if (plan->param_count > 0) {
    return Status::InvalidArgument(
        "Execute: plan has " + std::to_string(plan->param_count) +
        " unbound parameter(s); bind them first (BindPlanParams or "
        "PreparedQuery::Execute)");
  }
  return Status::OK();
}
}  // namespace

StatusOr<Relation> Execute(const PlanPtr& plan, const Database& db,
                           const ExecContext& ctx) {
  INCDB_RETURN_IF_ERROR(CheckExecutable(plan));
  Executor ex(*plan, db, ctx);
  return ex.Run();
}

StatusOr<Relation> Execute(const PlanPtr& plan, const Database& db) {
  return Execute(plan, db, ExecContext{});
}

StatusOr<Relation> ExecuteNode(const PlanPtr& plan, const PhysPtr& node,
                               const Database& db, const ExecContext& ctx) {
  INCDB_RETURN_IF_ERROR(CheckExecutable(plan));
  if (!node) return Status::InvalidArgument("ExecuteNode: empty node");
  Executor ex(*plan, db, ctx);
  return ex.RunNode(node);
}

StatusOr<Relation> ExecuteNode(const PlanPtr& plan, const PhysPtr& node,
                               const Database& db) {
  return ExecuteNode(plan, node, db, ExecContext{});
}

}  // namespace incdb
