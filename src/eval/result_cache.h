#ifndef INCDB_EVAL_RESULT_CACHE_H_
#define INCDB_EVAL_RESULT_CACHE_H_

/// \file result_cache.h
/// \brief Data-fingerprint-aware cache of materialised query results,
/// with incremental in-place maintenance for the monotone plan subset.
///
/// The plan cache (eval/plan_cache.h) removes the *compile* from repeated
/// queries; this cache removes the *execution* when the data has not
/// changed either — and, since the delta-maintenance layer (eval/delta.h),
/// even across mutations of maintainable plans. It sits behind
/// PreparedQuery::Execute (api/session.h):
///
/// **Keying.** An entry's key is `head` + stamp suffix (ComposeKey):
///  * `head` = the plan-cache key of the prepared template (algebra
///    structure + mode + plan-relevant options + scanned schemas) plus the
///    parameter bindings of this execution — query + binding identity;
///  * the *version stamps* of every relation the plan scans, read from the
///    pinned snapshot the execution ran against (plus the database epoch
///    for Dom-bearing plans, whose output depends on the whole active
///    domain) — data identity.
/// Version stamps are process-globally unique per relation state
/// (core/database.h), so a key can only hit when the query, the bindings
/// and the scanned data are all unchanged. Correctness therefore never
/// depends on eager invalidation: a mutation changes the stamps and the
/// next lookup simply misses.
///
/// **Maintenance vs invalidation.** When a commit touches relations, the
/// session extracts the dependent entries (BeginMaintenance — a reverse
/// index maps relation → dependent keys, so untouched entries are never
/// scanned). Entries whose plan is maintainable get the commit's
/// row-level delta applied to their cached rows and re-enter under the
/// post-commit stamps (FinishMaintenance) — the result survives the write.
/// Everything else is dropped and counted as an invalidation; stale keys
/// can never be hit again, so eager dropping is memory hygiene, not a
/// correctness mechanism.
///
/// **Late-insert guard.** An Execute racing a Mutate can try to insert a
/// result computed against the pre-commit snapshot *after* the sweep for
/// that commit ran; the stale stamps make the key unhittable, but the
/// entry would squat in the LRU until aged out. Insert therefore drops
/// any entry whose dependency stamps predate the latest sweep floor for
/// that relation (counted in `late_drops`).
///
/// **Thread-safety.** All methods are safe to call concurrently; one mutex
/// guards the map + LRU ring + reverse index (stats() reads the counters
/// under the same lock, so a stats snapshot is internally consistent).
/// A hit returns a shared_ptr the caller may read without further
/// locking: in-place maintenance only ever mutates a relation the cache
/// is the sole owner of (extracted entries nobody else holds).

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/relation.h"
#include "eval/plan.h"

namespace incdb {

/// Introspection counters for tests, benchmarks and Explain().
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      ///< LRU-capacity evictions.
  uint64_t invalidations = 0;  ///< Entries dropped on mutation.
  uint64_t maintained = 0;     ///< Entries delta-upgraded across a commit.
  uint64_t late_drops = 0;     ///< Stale inserts refused by the guard.
  size_t size = 0;             ///< Entries currently cached.
  size_t capacity = 0;         ///< LRU capacity.
};

class ResultCache {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  /// One data dependency: scanned relation name + the version stamp of
  /// the state the cached result was computed from.
  using Dep = std::pair<std::string, uint64_t>;

  /// A maintainable entry extracted by BeginMaintenance: everything the
  /// session needs to propagate the commit delta and reinsert.
  struct Maintainable {
    std::string head;                  ///< Query + binding identity.
    std::shared_ptr<Relation> result;  ///< The cached rows.
    PlanPtr plan;                      ///< Bound maintainable plan.
    std::vector<Dep> deps;             ///< Stamps the result was built on.
  };

  explicit ResultCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity > 0 ? capacity : 1) {}
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The full cache key for a head + dependency stamps (+ epoch for
  /// Dom-bearing plans). The single authority for the key layout — both
  /// Execute and FinishMaintenance compose keys through this.
  static std::string ComposeKey(const std::string& head,
                                const std::vector<Dep>& deps, bool uses_dom,
                                uint64_t epoch);

  /// The cached result for `key`, or nullptr (counted as hit/miss).
  std::shared_ptr<const Relation> Lookup(const std::string& key);

  /// Caches `result` under ComposeKey(head, deps, uses_dom, epoch). `plan`
  /// is the bound plan the result was executed from, kept only when
  /// `maintainable` (it feeds PropagateDelta later); Dom-bearing entries
  /// depend on the whole database and are indexed under "*". Entries whose
  /// stamps predate the latest invalidation floor of any dependency are
  /// refused (the late-insert guard). Re-inserting an existing key keeps
  /// the incumbent and refreshes its LRU position.
  void Insert(const std::string& head, std::shared_ptr<Relation> result,
              std::vector<Dep> deps, bool uses_dom, uint64_t epoch,
              bool maintainable, PlanPtr plan);

  /// Drops every entry that depends on `name` (via the reverse index —
  /// O(dependent entries), not O(cache)); returns how many. `floor` is the
  /// post-mutation version stamp of `name` (its fresh epoch when dropped):
  /// later Inserts carrying an older stamp for `name` are refused.
  size_t InvalidateRelation(const std::string& name, uint64_t floor);

  /// Extracts every entry depending on a touched relation and splits the
  /// sweep: maintainable entries are returned to the caller (removed from
  /// the cache — the caller owns maintaining and reinserting them), the
  /// rest are dropped and counted as invalidations. Also records the
  /// floors, like InvalidateRelation. `epoch_floor` is the post-commit
  /// epoch, the floor for whole-database ("*") entries — which are never
  /// maintainable and always drop.
  std::vector<Maintainable> BeginMaintenance(
      const std::vector<std::pair<std::string, uint64_t>>& touched_floors,
      uint64_t epoch_floor);

  /// Reinserts a successfully maintained entry under its post-commit
  /// stamps and counts it as `maintained`. Falls back to a late-drop if
  /// yet another commit raced past the maintenance window.
  void FinishMaintenance(Maintainable&& entry);

  /// Counts one extracted entry whose maintenance failed (the caller
  /// already dropped it by extraction).
  void NoteInvalidated();

  /// Drops every entry (explicit invalidation); counters and floors keep
  /// running.
  void Clear();

  ResultCacheStats stats() const;

 private:
  struct Entry {
    std::string head;
    std::shared_ptr<Relation> result;
    std::vector<Dep> deps;
    bool uses_dom = false;
    uint64_t epoch = 0;  ///< Snapshot epoch (meaningful for Dom entries).
    bool maintainable = false;
    PlanPtr plan;  ///< Only set when maintainable.
    std::list<std::string>::iterator lru_it;  ///< Position in lru_.
  };

  /// Unlinks the entry from the LRU ring and the reverse index, then
  /// erases it from the map. Returns the next map iterator.
  std::unordered_map<std::string, Entry>::iterator RemoveLocked(
      std::unordered_map<std::string, Entry>::iterator it);
  /// Shared body of Insert/FinishMaintenance; returns false when the
  /// late-insert guard refused the entry.
  bool InsertLocked(const std::string& head, std::shared_ptr<Relation> result,
                    std::vector<Dep> deps, bool uses_dom, uint64_t epoch,
                    bool maintainable, PlanPtr plan);
  /// Keys of every entry depending on any of `names` (or on "*").
  std::vector<std::string> DependentKeysLocked(
      const std::vector<std::string>& names) const;

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t hits_ = 0, misses_ = 0, evictions_ = 0, invalidations_ = 0;
  uint64_t maintained_ = 0, late_drops_ = 0;
  std::list<std::string> lru_;  ///< Keys, most recently used first.
  std::unordered_map<std::string, Entry> map_;
  /// Relation name (or "*") → keys of the entries depending on it.
  std::unordered_map<std::string, std::unordered_set<std::string>> by_rel_;
  /// Relation name → minimum acceptable dependency stamp (late-insert
  /// guard); parallel epoch floor for whole-database entries.
  std::unordered_map<std::string, uint64_t> floors_;
  uint64_t epoch_floor_ = 0;
};

}  // namespace incdb

#endif  // INCDB_EVAL_RESULT_CACHE_H_
