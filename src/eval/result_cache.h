#ifndef INCDB_EVAL_RESULT_CACHE_H_
#define INCDB_EVAL_RESULT_CACHE_H_

/// \file result_cache.h
/// \brief Data-fingerprint-aware cache of materialised query results.
///
/// The plan cache (eval/plan_cache.h) removes the *compile* from repeated
/// queries; this cache removes the *execution* when the data has not
/// changed either. It sits behind PreparedQuery::Execute (api/session.h):
///
/// **Keying.** An entry's key is built by the session from
///  * the plan-cache key of the prepared template (algebra structure +
///    mode + plan-relevant options + scanned schemas) — query identity;
///  * the parameter bindings of this execution (kind byte + payload via
///    AppendValueKey) — binding identity;
///  * the *version stamps* of every relation the plan scans, read from the
///    pinned snapshot the execution runs against (plus the database epoch
///    for Dom-bearing plans, whose output depends on the whole active
///    domain) — data identity.
/// Version stamps are process-globally unique per relation state
/// (core/database.h), so a key can only hit when the query, the bindings
/// and the scanned data are all unchanged. Correctness therefore never
/// depends on eager invalidation: a mutation changes the stamps and the
/// next lookup simply misses.
///
/// **Invalidation.** Stale entries (old stamps) can never be hit again, so
/// they only cost memory until the LRU ages them out. The
/// InvalidateRelation hook drops every entry *depending on* a mutated
/// relation eagerly — the session calls it from its mutation surface
/// (Put/Drop/Mutate), so a delta to one relation evicts exactly the
/// entries that scanned it and leaves independent queries hot.
///
/// **Thread-safety.** All methods are safe to call concurrently; one mutex
/// guards the map + LRU ring (as in PlanCache, stats() reads the counters
/// under the same lock, so a stats snapshot is internally consistent).
/// Results are shared immutable relations: a hit returns a shared_ptr the
/// caller may read without further locking.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/relation.h"

namespace incdb {

/// Introspection counters for tests, benchmarks and Explain().
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;      ///< LRU-capacity evictions.
  uint64_t invalidations = 0;  ///< Entries dropped by InvalidateRelation.
  size_t size = 0;             ///< Entries currently cached.
  size_t capacity = 0;         ///< LRU capacity.
};

class ResultCache {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit ResultCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity > 0 ? capacity : 1) {}
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached result for `key`, or nullptr (counted as hit/miss).
  std::shared_ptr<const Relation> Lookup(const std::string& key);

  /// Caches `result` under `key`; `deps` are the names of the base
  /// relations the result was computed from (the InvalidateRelation
  /// handle); the sentinel "*" marks a whole-database dependency (Dom
  /// plans), matched by every invalidation. Re-inserting an existing key
  /// refreshes its LRU position.
  void Insert(const std::string& key, std::shared_ptr<const Relation> result,
              std::vector<std::string> deps);

  /// Drops every entry that depends on `name`; returns how many. Called by
  /// the session's mutation surface after a commit touches `name`.
  size_t InvalidateRelation(const std::string& name);

  /// Drops every entry (explicit invalidation); counters keep running.
  void Clear();

  ResultCacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const Relation> result;
    std::vector<std::string> deps;
    std::list<std::string>::iterator lru_it;  ///< Position in lru_.
  };

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t hits_ = 0, misses_ = 0, evictions_ = 0, invalidations_ = 0;
  std::list<std::string> lru_;  ///< Keys, most recently used first.
  std::unordered_map<std::string, Entry> map_;
};

}  // namespace incdb

#endif  // INCDB_EVAL_RESULT_CACHE_H_
