#include "constraints/chase.h"

#include <unordered_map>

#include "core/valuation.h"

namespace incdb {

namespace {

StatusOr<std::vector<size_t>> Positions(const Relation& rel,
                                        const std::vector<std::string>& attrs) {
  std::vector<size_t> out;
  for (const std::string& a : attrs) {
    auto idx = rel.AttrIndex(a);
    if (!idx.ok()) return idx.status();
    out.push_back(*idx);
  }
  return out;
}

/// Replaces every occurrence of null `id` with `v` across the database.
Database SubstituteNull(const Database& db, uint64_t id, const Value& v) {
  Valuation subst;
  subst.Set(id, v);  // Set() allows null targets (merging two nulls)
  Database out;
  for (const auto& [name, rel] : db.relations()) {
    Relation nr(rel.attrs());
    nr.Reserve(rel.rows().size());
    for (const auto& [t, c] : rel.rows()) {
      Status st = nr.Insert(subst.Apply(t), c);
      (void)st;
    }
    nr.CollapseCounts();
    out.Put(name, std::move(nr));
  }
  return out;
}

}  // namespace

StatusOr<ChaseResult> ChaseFDs(const Database& db,
                               const std::vector<FD>& fds) {
  ChaseResult result;
  result.db = db;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FD& fd : fds) {
      auto rel = result.db.Get(fd.rel);
      if (!rel.ok()) return rel.status();
      auto lhs = Positions(*rel, fd.lhs);
      if (!lhs.ok()) return lhs.status();
      auto rhs = Positions(*rel, fd.rhs);
      if (!rhs.ok()) return rhs.status();

      std::unordered_map<Tuple, Tuple> seen;  // lhs proj -> rhs proj
      for (const auto& [t, c] : rel->rows()) {
        Tuple key = t.Project(*lhs);
        Tuple val = t.Project(*rhs);
        auto [it, inserted] = seen.try_emplace(key, val);
        if (inserted || it->second == val) continue;
        // Violation: equate val with it->second component-wise.
        for (size_t i = 0; i < val.arity(); ++i) {
          const Value& a = it->second[i];
          const Value& b = val[i];
          if (a == b) continue;
          if (a.is_const() && b.is_const()) {
            result.success = false;  // hard conflict
            return result;
          }
          const Value& null = a.is_null() ? a : b;
          const Value& other = a.is_null() ? b : a;
          result.db = SubstituteNull(result.db, null.null_id(), other);
          changed = true;
          break;
        }
        if (changed) break;
      }
      if (changed) break;
    }
  }
  return result;
}

}  // namespace incdb
