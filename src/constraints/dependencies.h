#ifndef INCDB_CONSTRAINTS_DEPENDENCIES_H_
#define INCDB_CONSTRAINTS_DEPENDENCIES_H_

/// \file dependencies.h
/// \brief Integrity constraints Σ used by the conditional probabilities of
/// §4.3: functional dependencies (keys) and inclusion dependencies
/// (foreign keys). A constraint set is a generic Boolean query: it holds
/// or fails on each complete possible world v(D).

#include <string>
#include <vector>

#include "core/database.h"
#include "core/status.h"

namespace incdb {

/// Functional dependency  rel : lhs → rhs.
struct FD {
  std::string rel;
  std::vector<std::string> lhs;
  std::vector<std::string> rhs;

  std::string ToString() const;
};

/// Inclusion dependency  from_rel[from_attrs] ⊆ to_rel[to_attrs].
struct IND {
  std::string from_rel;
  std::vector<std::string> from_attrs;
  std::string to_rel;
  std::vector<std::string> to_attrs;

  std::string ToString() const;
};

struct ConstraintSet {
  std::vector<FD> fds;
  std::vector<IND> inds;

  bool Empty() const { return fds.empty() && inds.empty(); }
};

/// Checks the constraints on a database, comparing values syntactically —
/// intended for complete worlds v(D) (where syntactic = semantic), but
/// well-defined on incomplete instances too.
StatusOr<bool> Satisfies(const Database& db, const FD& fd);
StatusOr<bool> Satisfies(const Database& db, const IND& ind);
StatusOr<bool> Satisfies(const Database& db, const ConstraintSet& sigma);

}  // namespace incdb

#endif  // INCDB_CONSTRAINTS_DEPENDENCIES_H_
