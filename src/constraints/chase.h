#ifndef INCDB_CONSTRAINTS_CHASE_H_
#define INCDB_CONSTRAINTS_CHASE_H_

/// \file chase.h
/// \brief The chase of an incomplete database with functional dependencies
/// (paper §4.3: with Σ consisting of FDs, µ(Q|Σ, D, ā) = µ(Q, DΣ, ā) where
/// DΣ is the result of chasing D with Σ).
///
/// The FD chase equates values forced equal: two tuples agreeing
/// (syntactically) on the left-hand side must agree on the right-hand
/// side, so a null is replaced by its partner (globally), null–null pairs
/// are merged, and two distinct constants mean the chase *fails* — no
/// possible world of D satisfies Σ.

#include "constraints/dependencies.h"
#include "core/database.h"
#include "core/status.h"

namespace incdb {

struct ChaseResult {
  /// False iff the chase failed (Σ unsatisfiable over ⟦D⟧).
  bool success = true;
  Database db;
};

/// Chases `db` with the FDs to a fixpoint. Always terminates: every step
/// strictly decreases the number of distinct nulls.
StatusOr<ChaseResult> ChaseFDs(const Database& db, const std::vector<FD>& fds);

}  // namespace incdb

#endif  // INCDB_CONSTRAINTS_CHASE_H_
