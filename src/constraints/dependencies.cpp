#include "constraints/dependencies.h"

#include <unordered_map>

namespace incdb {

namespace {
std::string JoinAttrs(const std::vector<std::string>& attrs) {
  std::string s;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i) s += ",";
    s += attrs[i];
  }
  return s;
}

StatusOr<std::vector<size_t>> Positions(const Relation& rel,
                                        const std::vector<std::string>& attrs) {
  std::vector<size_t> out;
  for (const std::string& a : attrs) {
    auto idx = rel.AttrIndex(a);
    if (!idx.ok()) return idx.status();
    out.push_back(*idx);
  }
  return out;
}
}  // namespace

std::string FD::ToString() const {
  return rel + ": " + JoinAttrs(lhs) + " → " + JoinAttrs(rhs);
}

std::string IND::ToString() const {
  return from_rel + "[" + JoinAttrs(from_attrs) + "] ⊆ " + to_rel + "[" +
         JoinAttrs(to_attrs) + "]";
}

StatusOr<bool> Satisfies(const Database& db, const FD& fd) {
  auto rel = db.Get(fd.rel);
  if (!rel.ok()) return rel.status();
  auto lhs = Positions(*rel, fd.lhs);
  if (!lhs.ok()) return lhs.status();
  auto rhs = Positions(*rel, fd.rhs);
  if (!rhs.ok()) return rhs.status();
  std::unordered_map<Tuple, Tuple> seen;
  for (const auto& [t, c] : rel->rows()) {
    Tuple key = t.Project(*lhs);
    Tuple val = t.Project(*rhs);
    auto [it, inserted] = seen.try_emplace(key, val);
    if (!inserted && !(it->second == val)) return false;
  }
  return true;
}

StatusOr<bool> Satisfies(const Database& db, const IND& ind) {
  auto from = db.Get(ind.from_rel);
  if (!from.ok()) return from.status();
  auto to = db.Get(ind.to_rel);
  if (!to.ok()) return to.status();
  auto fpos = Positions(*from, ind.from_attrs);
  if (!fpos.ok()) return fpos.status();
  auto tpos = Positions(*to, ind.to_attrs);
  if (!tpos.ok()) return tpos.status();
  if (fpos->size() != tpos->size()) {
    return Status::InvalidArgument("IND: attribute list arity mismatch");
  }
  std::set<Tuple> targets;
  for (const auto& [t, c] : to->rows()) targets.insert(t.Project(*tpos));
  for (const auto& [t, c] : from->rows()) {
    if (!targets.count(t.Project(*fpos))) return false;
  }
  return true;
}

StatusOr<bool> Satisfies(const Database& db, const ConstraintSet& sigma) {
  for (const FD& fd : sigma.fds) {
    auto ok = Satisfies(db, fd);
    if (!ok.ok()) return ok;
    if (!*ok) return false;
  }
  for (const IND& ind : sigma.inds) {
    auto ok = Satisfies(db, ind);
    if (!ok.ok()) return ok;
    if (!*ok) return false;
  }
  return true;
}

}  // namespace incdb
