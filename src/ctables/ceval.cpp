#include "ctables/ceval.h"

#include <cassert>
#include <memory>

#include "core/fault.h"

#include "algebra/builder.h"
#include "eval/plan.h"
#include "eval/plan_cache.h"

namespace incdb {

const char* ToString(CStrategy s) {
  switch (s) {
    case CStrategy::kEager:
      return "eager";
    case CStrategy::kSemiEager:
      return "semi-eager";
    case CStrategy::kLazy:
      return "lazy";
    case CStrategy::kAware:
      return "aware";
  }
  return "?";
}

namespace {

/// Condition of the whole-tuple equality t̄ = s̄ as a c-condition.
CCondPtr TupleEqCond(const Tuple& a, const Tuple& b) {
  CCondPtr out = CcTrue();
  for (size_t i = 0; i < a.arity(); ++i) {
    out = CcAnd(out, CcEq(a[i], b[i]));
  }
  return out;
}

/// A selection condition θ with attribute positions resolved *once*
/// against the input schema (the compiled plan's FilterSel nodes are
/// visited once per evaluation, their tuples many times — the old
/// per-tuple name resolution was pure overhead). Instantiate() translates
/// θ on a concrete (possibly null-carrying) tuple into a condition on the
/// nulls, under the possible-world reading: in every world all cells hold
/// constants, so const(A) ↦ true and null(A) ↦ false.
class CompiledSelCond {
 public:
  static StatusOr<CompiledSelCond> Make(const CondPtr& theta,
                                        const std::vector<std::string>& attrs,
                                        const std::vector<Value>& params) {
    CompiledSelCond out;
    auto root = Build(theta, attrs, params);
    if (!root.ok()) return root.status();
    out.root_ = std::move(*root);
    return out;
  }

  CCondPtr Instantiate(const Tuple& t) const { return Inst(*root_, t); }

 private:
  struct Node {
    CondKind kind;
    size_t i = 0, j = 0;
    Value constant;
    std::unique_ptr<Node> left, right;
  };

  static StatusOr<std::unique_ptr<Node>> Build(
      const CondPtr& theta, const std::vector<std::string>& attrs,
      const std::vector<Value>& params) {
    auto resolve = [&attrs](const std::string& name) -> StatusOr<size_t> {
      size_t i = IndexOf(attrs, name);
      if (i == attrs.size()) {
        return Status::NotFound("condition references unknown attribute " +
                                name);
      }
      return i;
    };
    auto node = std::make_unique<Node>();
    node->kind = theta->kind;
    switch (theta->kind) {
      case CondKind::kTrue:
      case CondKind::kFalse:
      case CondKind::kIsConst:
      case CondKind::kIsNull:
        if (theta->kind == CondKind::kIsConst ||
            theta->kind == CondKind::kIsNull) {
          auto i = resolve(theta->lhs);
          if (!i.ok()) return i.status();
          node->i = *i;
        }
        break;
      case CondKind::kAnd:
      case CondKind::kOr: {
        auto l = Build(theta->left, attrs, params);
        if (!l.ok()) return l.status();
        auto r = Build(theta->right, attrs, params);
        if (!r.ok()) return r.status();
        node->left = std::move(*l);
        node->right = std::move(*r);
        break;
      }
      case CondKind::kEqAttrAttr:
      case CondKind::kNeqAttrAttr: {
        auto i = resolve(theta->lhs);
        if (!i.ok()) return i.status();
        auto j = resolve(theta->rhs);
        if (!j.ok()) return j.status();
        node->i = *i;
        node->j = *j;
        break;
      }
      case CondKind::kEqAttrConst:
      case CondKind::kNeqAttrConst: {
        auto i = resolve(theta->lhs);
        if (!i.ok()) return i.status();
        node->i = *i;
        // Parameter resolution: the lowered plan keeps the placeholder (so
        // the plan cache shares one entry per query template); the bound
        // constant lands here, at per-evaluation condition compilation.
        auto bound = ResolveParamBinding(theta->constant, params);
        if (!bound.ok()) return bound.status();
        node->constant = *bound;
        break;
      }
      default:
        return Status::Unsupported(
            "the [36] strategies are defined over (in)equality conditions; "
            "c-table conditions have no order atoms");
    }
    return node;
  }

  static CCondPtr Inst(const Node& n, const Tuple& t) {
    switch (n.kind) {
      case CondKind::kTrue:
        return CcTrue();
      case CondKind::kFalse:
        return CcFalse();
      case CondKind::kAnd:
        return CcAnd(Inst(*n.left, t), Inst(*n.right, t));
      case CondKind::kOr:
        return CcOr(Inst(*n.left, t), Inst(*n.right, t));
      case CondKind::kEqAttrAttr:
        return CcEq(t[n.i], t[n.j]);
      case CondKind::kNeqAttrAttr:
        return CcNeq(t[n.i], t[n.j]);
      case CondKind::kEqAttrConst:
        return CcEq(t[n.i], n.constant);
      case CondKind::kNeqAttrConst:
        return CcNeq(t[n.i], n.constant);
      case CondKind::kIsConst:
        return CcTrue();  // every world instantiates nulls by constants
      case CondKind::kIsNull:
        return CcFalse();
      default:
        break;
    }
    assert(false && "unreachable: Build rejected this kind");
    return CcFalse();
  }

  std::unique_ptr<Node> root_;
};

/// Walks the 1:1-lowered physical plan (CompileForCTables): the plan layer
/// contributes schema validation and resolved projection positions; the
/// c-table semantics of each operator live here. Hash fast paths stay off:
/// over c-tables a null join key is a *condition*, not a mismatch.
class CEvaluator {
 public:
  CEvaluator(const Database& db, CStrategy strategy,
             const std::vector<Value>& params, const ExecContext& ctx)
      : cdb_(CDatabase::FromDatabase(db)),
        strategy_(strategy),
        params_(&params),
        ctx_(&ctx),
        limited_(ctx.limited()) {}

  StatusOr<CTable> Eval(const PhysPtr& q) {
    auto out = EvalInner(q);
    if (!out.ok()) return out;
    switch (strategy_) {
      case CStrategy::kEager:
        return GroundAll(*out, /*propagate=*/false);
      case CStrategy::kSemiEager:
        return GroundAll(*out, /*propagate=*/true);
      default:
        return out;
    }
  }

  /// Top-level entry: applies the aware strategy's final pass.
  StatusOr<CTable> EvalTop(const PhysPtr& q) {
    auto out = Eval(q);
    if (!out.ok()) return out;
    if (strategy_ == CStrategy::kAware || strategy_ == CStrategy::kLazy) {
      // Final equality propagation (lazy applies it at differences too; a
      // difference-free query would otherwise never propagate).
      return Propagate(out->Normalized());
    }
    return out;
  }

 private:
  /// Grounds every condition to t/f/u (dropping f) after merging
  /// duplicates; optionally propagates forced equalities into data first.
  static CTable GroundAll(const CTable& in, bool propagate) {
    CTable merged = propagate ? Propagate(in).Normalized() : in.Normalized();
    CTable out(merged.attrs());
    for (const CTuple& ct : merged.tuples()) {
      switch (GroundCC(ct.cond)) {
        case TV3::kT:
          out.Add(ct.data, CcTrue());
          break;
        case TV3::kU:
          out.Add(ct.data, CcUnknown());
          break;
        case TV3::kF:
          break;
      }
    }
    return out;
  }

  /// Applies forced-equality substitutions to the *data* of each tuple.
  /// The condition is kept untouched: the rewriting ⟨⊥2, ⊥1=c ∧ ⊥1=⊥2⟩ ↦
  /// ⟨c, ⊥1=c ∧ ⊥1=⊥2⟩ is sound because in every world where the
  /// condition holds the two tuples denote the same fact — whereas
  /// substituting into the condition itself would wrongly discharge it
  /// (⊥1=c would become true). Grounding the untouched condition then
  /// yields the paper's ⟨c, u⟩.
  static CTable Propagate(const CTable& in) {
    CTable out(in.attrs());
    for (const CTuple& ct : in.tuples()) {
      std::map<uint64_t, Value> forced = ForcedBindings(ct.cond);
      if (forced.empty()) {
        out.Add(ct.data, ct.cond);
        continue;
      }
      Tuple data = ct.data;
      for (size_t i = 0; i < data.arity(); ++i) {
        if (data[i].is_null()) {
          auto it = forced.find(data[i].null_id());
          if (it != forced.end()) data[i] = it->second;
        }
      }
      out.Add(std::move(data), ct.cond);
    }
    return out;
  }

  StatusOr<CTable> EvalInner(const PhysPtr& q) {
    INCDB_FAULT_POINT("ceval.node");
    switch (q->op) {
      case PhysOp::kScanView: {
        auto it = cdb_.tables.find(q->rel_name);
        if (it == cdb_.tables.end()) {
          return Status::NotFound("no relation named " + q->rel_name);
        }
        return it->second;
      }
      case PhysOp::kFilterSel: {
        auto in = Eval(q->left);
        if (!in.ok()) return in;
        auto sel = CompiledSelCond::Make(q->cond, q->left->attrs, *params_);
        if (!sel.ok()) return sel.status();
        CTable out(in->attrs());
        for (const CTuple& ct : in->tuples()) {
          INCDB_RETURN_IF_ERROR(Checkpoint());
          out.Add(ct.data, CcAnd(ct.cond, sel->Instantiate(ct.data)));
        }
        return out;
      }
      case PhysOp::kProject: {
        auto in = Eval(q->left);
        if (!in.ok()) return in;
        CTable out(q->attrs);
        for (const CTuple& ct : in->tuples()) {
          out.Add(ct.data.Project(q->proj_pos), ct.cond);
        }
        return out;
      }
      case PhysOp::kRename: {
        auto in = Eval(q->left);
        if (!in.ok()) return in;
        CTable out(q->attrs);
        for (const CTuple& ct : in->tuples()) out.Add(ct.data, ct.cond);
        return out;
      }
      case PhysOp::kNLJoin: {
        // Lowered products only: CompileForCTables never forms a join
        // with a condition or a fused projection.
        assert(q->cond->kind == CondKind::kTrue && !q->fused_proj);
        auto l = Eval(q->left);
        if (!l.ok()) return l;
        auto r = Eval(q->right);
        if (!r.ok()) return r;
        CTable out(q->attrs);
        for (const CTuple& lt : l->tuples()) {
          for (const CTuple& rt : r->tuples()) {
            INCDB_RETURN_IF_ERROR(Checkpoint());
            out.Add(lt.data.Concat(rt.data), CcAnd(lt.cond, rt.cond));
          }
        }
        return out;
      }
      case PhysOp::kUnion: {
        auto l = Eval(q->left);
        if (!l.ok()) return l;
        auto r = Eval(q->right);
        if (!r.ok()) return r;
        CTable out(l->attrs());
        for (const CTuple& ct : l->tuples()) out.Add(ct.data, ct.cond);
        for (const CTuple& ct : r->tuples()) out.Add(ct.data, ct.cond);
        return out;
      }
      case PhysOp::kHashDiff: {
        auto l = Eval(q->left);
        if (!l.ok()) return l;
        auto r = Eval(q->right);
        if (!r.ok()) return r;
        CTable out(l->attrs());
        for (const CTuple& lt : l->tuples()) {
          INCDB_RETURN_IF_ERROR(Checkpoint(1 + r->tuples().size()));
          CCondPtr cond = lt.cond;
          for (const CTuple& rt : r->tuples()) {
            cond = CcAnd(
                cond, CcNot(CcAnd(rt.cond, TupleEqCond(lt.data, rt.data))));
          }
          out.Add(lt.data, cond);
        }
        // The lazy strategy grounds (with propagation) at differences.
        if (strategy_ == CStrategy::kLazy) {
          return GroundAll(out, /*propagate=*/true);
        }
        return out;
      }
      case PhysOp::kHashIntersect: {
        auto l = Eval(q->left);
        if (!l.ok()) return l;
        auto r = Eval(q->right);
        if (!r.ok()) return r;
        CTable out(l->attrs());
        for (const CTuple& lt : l->tuples()) {
          INCDB_RETURN_IF_ERROR(Checkpoint(1 + r->tuples().size()));
          CCondPtr any = CcFalse();
          for (const CTuple& rt : r->tuples()) {
            any = CcOr(any, CcAnd(rt.cond, TupleEqCond(lt.data, rt.data)));
          }
          out.Add(lt.data, CcAnd(lt.cond, any));
        }
        return out;
      }
      default:
        return Status::Unsupported(
            "conditional evaluation covers the core grammar + ∩; desugar "
            "the query first");
    }
  }

  /// Amortized cooperative checkpoint for the quadratic condition-building
  /// loops (same contract as the executor's: one counter add per unit of
  /// work, a real Check() per interval).
  Status Checkpoint(uint64_t work = 1) {
    if (!limited_) return Status::OK();
    check_acc_ += work;
    if (check_acc_ < 4096) return Status::OK();
    check_acc_ = 0;
    return ctx_->Check();
  }

  CDatabase cdb_;
  CStrategy strategy_;
  const std::vector<Value>* params_;
  const ExecContext* ctx_;
  const bool limited_;
  uint64_t check_acc_ = 0;
};

}  // namespace

StatusOr<CTable> CEval(const AlgPtr& q, const Database& db, CStrategy s,
                       const std::vector<Value>& params,
                       const ExecContext& ctx) {
  if (ctx.limited()) INCDB_RETURN_IF_ERROR(ctx.Check());
  auto desugared = Desugar(q, db);
  if (!desugared.ok()) return desugared.status();
  // Lowering through the shared plan layer performs schema validation and
  // resolves projection positions once; the c-table semantics are applied
  // by the walker above. Repeat evaluations of one query (the strategy
  // benchmarks sweep the same workload per strategy) hit the shared
  // query-identity plan cache instead of re-lowering — parameter
  // placeholders stay in the lowered plan, so one template is one entry.
  auto plan = PlanCache::Global().CompileForCTablesCached(*desugared, db);
  if (!plan.ok()) return plan.status();
  CEvaluator ev(db, s, params, ctx);
  return ev.EvalTop((*plan)->root);
}

StatusOr<Relation> CEvalCertain(const AlgPtr& q, const Database& db,
                                CStrategy s, const std::vector<Value>& params,
                                const ExecContext& ctx) {
  auto t = CEval(q, db, s, params, ctx);
  if (!t.ok()) return t.status();
  return t->CertainTuples();
}

StatusOr<Relation> CEvalPossible(const AlgPtr& q, const Database& db,
                                 CStrategy s,
                                 const std::vector<Value>& params,
                                 const ExecContext& ctx) {
  auto t = CEval(q, db, s, params, ctx);
  if (!t.ok()) return t.status();
  return t->PossibleTuples();
}

}  // namespace incdb
