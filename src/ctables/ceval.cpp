#include "ctables/ceval.h"

#include <cassert>

#include "algebra/builder.h"

namespace incdb {

const char* ToString(CStrategy s) {
  switch (s) {
    case CStrategy::kEager:
      return "eager";
    case CStrategy::kSemiEager:
      return "semi-eager";
    case CStrategy::kLazy:
      return "lazy";
    case CStrategy::kAware:
      return "aware";
  }
  return "?";
}

namespace {

/// Condition of the whole-tuple equality t̄ = s̄ as a c-condition.
CCondPtr TupleEqCond(const Tuple& a, const Tuple& b) {
  CCondPtr out = CcTrue();
  for (size_t i = 0; i < a.arity(); ++i) {
    out = CcAnd(out, CcEq(a[i], b[i]));
  }
  return out;
}

/// Translates a selection condition θ on a concrete (possibly
/// null-carrying) tuple into a condition on the nulls, under the
/// possible-world reading: in every world all cells hold constants, so
/// const(A) ↦ true and null(A) ↦ false.
StatusOr<CCondPtr> SelCond(const CondPtr& theta,
                           const std::vector<std::string>& attrs,
                           const Tuple& t) {
  auto resolve = [&attrs](const std::string& name) -> StatusOr<size_t> {
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == name) return i;
    }
    return Status::NotFound("condition references unknown attribute " + name);
  };
  switch (theta->kind) {
    case CondKind::kTrue:
      return CcTrue();
    case CondKind::kFalse:
      return CcFalse();
    case CondKind::kAnd: {
      auto l = SelCond(theta->left, attrs, t);
      if (!l.ok()) return l;
      auto r = SelCond(theta->right, attrs, t);
      if (!r.ok()) return r;
      return CcAnd(*l, *r);
    }
    case CondKind::kOr: {
      auto l = SelCond(theta->left, attrs, t);
      if (!l.ok()) return l;
      auto r = SelCond(theta->right, attrs, t);
      if (!r.ok()) return r;
      return CcOr(*l, *r);
    }
    case CondKind::kEqAttrAttr: {
      auto i = resolve(theta->lhs);
      if (!i.ok()) return i.status();
      auto j = resolve(theta->rhs);
      if (!j.ok()) return j.status();
      return CcEq(t[*i], t[*j]);
    }
    case CondKind::kNeqAttrAttr: {
      auto i = resolve(theta->lhs);
      if (!i.ok()) return i.status();
      auto j = resolve(theta->rhs);
      if (!j.ok()) return j.status();
      return CcNeq(t[*i], t[*j]);
    }
    case CondKind::kEqAttrConst: {
      auto i = resolve(theta->lhs);
      if (!i.ok()) return i.status();
      return CcEq(t[*i], theta->constant);
    }
    case CondKind::kNeqAttrConst: {
      auto i = resolve(theta->lhs);
      if (!i.ok()) return i.status();
      return CcNeq(t[*i], theta->constant);
    }
    case CondKind::kIsConst:
      return CcTrue();  // every world instantiates nulls by constants
    case CondKind::kIsNull:
      return CcFalse();
    default:
      return Status::Unsupported(
          "the [36] strategies are defined over (in)equality conditions; "
          "c-table conditions have no order atoms");
  }
  return Status::Internal("unknown condition kind");
}

class CEvaluator {
 public:
  CEvaluator(const Database& db, CStrategy strategy)
      : db_(db), cdb_(CDatabase::FromDatabase(db)), strategy_(strategy) {}

  StatusOr<CTable> Eval(const AlgPtr& q) {
    auto out = EvalInner(q);
    if (!out.ok()) return out;
    switch (strategy_) {
      case CStrategy::kEager:
        return GroundAll(*out, /*propagate=*/false);
      case CStrategy::kSemiEager:
        return GroundAll(*out, /*propagate=*/true);
      default:
        return out;
    }
  }

  /// Top-level entry: applies the aware strategy's final pass.
  StatusOr<CTable> EvalTop(const AlgPtr& q) {
    auto out = Eval(q);
    if (!out.ok()) return out;
    if (strategy_ == CStrategy::kAware || strategy_ == CStrategy::kLazy) {
      // Final equality propagation (lazy applies it at differences too; a
      // difference-free query would otherwise never propagate).
      return Propagate(out->Normalized());
    }
    return out;
  }

 private:
  /// Grounds every condition to t/f/u (dropping f) after merging
  /// duplicates; optionally propagates forced equalities into data first.
  static CTable GroundAll(const CTable& in, bool propagate) {
    CTable merged = propagate ? Propagate(in).Normalized() : in.Normalized();
    CTable out(merged.attrs());
    for (const CTuple& ct : merged.tuples()) {
      switch (GroundCC(ct.cond)) {
        case TV3::kT:
          out.Add(ct.data, CcTrue());
          break;
        case TV3::kU:
          out.Add(ct.data, CcUnknown());
          break;
        case TV3::kF:
          break;
      }
    }
    return out;
  }

  /// Applies forced-equality substitutions to the *data* of each tuple.
  /// The condition is kept untouched: the rewriting ⟨⊥2, ⊥1=c ∧ ⊥1=⊥2⟩ ↦
  /// ⟨c, ⊥1=c ∧ ⊥1=⊥2⟩ is sound because in every world where the
  /// condition holds the two tuples denote the same fact — whereas
  /// substituting into the condition itself would wrongly discharge it
  /// (⊥1=c would become true). Grounding the untouched condition then
  /// yields the paper's ⟨c, u⟩.
  static CTable Propagate(const CTable& in) {
    CTable out(in.attrs());
    for (const CTuple& ct : in.tuples()) {
      std::map<uint64_t, Value> forced = ForcedBindings(ct.cond);
      if (forced.empty()) {
        out.Add(ct.data, ct.cond);
        continue;
      }
      Tuple data = ct.data;
      for (size_t i = 0; i < data.arity(); ++i) {
        if (data[i].is_null()) {
          auto it = forced.find(data[i].null_id());
          if (it != forced.end()) data[i] = it->second;
        }
      }
      out.Add(std::move(data), ct.cond);
    }
    return out;
  }

  StatusOr<CTable> EvalInner(const AlgPtr& q) {
    switch (q->kind) {
      case OpKind::kScan: {
        auto it = cdb_.tables.find(q->rel_name);
        if (it == cdb_.tables.end()) {
          return Status::NotFound("no relation named " + q->rel_name);
        }
        return it->second;
      }
      case OpKind::kSelect: {
        auto in = Eval(q->left);
        if (!in.ok()) return in;
        CTable out(in->attrs());
        for (const CTuple& ct : in->tuples()) {
          auto c = SelCond(q->cond, in->attrs(), ct.data);
          if (!c.ok()) return c.status();
          out.Add(ct.data, CcAnd(ct.cond, *c));
        }
        return out;
      }
      case OpKind::kProject: {
        auto in = Eval(q->left);
        if (!in.ok()) return in;
        std::vector<size_t> pos;
        for (const std::string& a : q->attrs) {
          bool found = false;
          for (size_t i = 0; i < in->attrs().size(); ++i) {
            if (in->attrs()[i] == a) {
              pos.push_back(i);
              found = true;
              break;
            }
          }
          if (!found) return Status::NotFound("projection attribute " + a);
        }
        CTable out(q->attrs);
        for (const CTuple& ct : in->tuples()) {
          out.Add(ct.data.Project(pos), ct.cond);
        }
        return out;
      }
      case OpKind::kRename: {
        auto in = Eval(q->left);
        if (!in.ok()) return in;
        if (q->attrs.size() != in->arity()) {
          return Status::InvalidArgument("rename: arity mismatch");
        }
        CTable out(q->attrs);
        for (const CTuple& ct : in->tuples()) out.Add(ct.data, ct.cond);
        return out;
      }
      case OpKind::kProduct: {
        auto l = Eval(q->left);
        if (!l.ok()) return l;
        auto r = Eval(q->right);
        if (!r.ok()) return r;
        std::vector<std::string> attrs = l->attrs();
        for (const std::string& a : r->attrs()) {
          for (const std::string& b : l->attrs()) {
            if (a == b) {
              return Status::InvalidArgument("product: attribute " + a +
                                             " appears on both sides");
            }
          }
          attrs.push_back(a);
        }
        CTable out(attrs);
        for (const CTuple& lt : l->tuples()) {
          for (const CTuple& rt : r->tuples()) {
            out.Add(lt.data.Concat(rt.data), CcAnd(lt.cond, rt.cond));
          }
        }
        return out;
      }
      case OpKind::kUnion: {
        auto l = Eval(q->left);
        if (!l.ok()) return l;
        auto r = Eval(q->right);
        if (!r.ok()) return r;
        if (l->arity() != r->arity()) {
          return Status::InvalidArgument("union: arity mismatch");
        }
        CTable out(l->attrs());
        for (const CTuple& ct : l->tuples()) out.Add(ct.data, ct.cond);
        for (const CTuple& ct : r->tuples()) out.Add(ct.data, ct.cond);
        return out;
      }
      case OpKind::kDifference: {
        auto l = Eval(q->left);
        if (!l.ok()) return l;
        auto r = Eval(q->right);
        if (!r.ok()) return r;
        if (l->arity() != r->arity()) {
          return Status::InvalidArgument("difference: arity mismatch");
        }
        CTable out(l->attrs());
        for (const CTuple& lt : l->tuples()) {
          CCondPtr cond = lt.cond;
          for (const CTuple& rt : r->tuples()) {
            cond = CcAnd(
                cond, CcNot(CcAnd(rt.cond, TupleEqCond(lt.data, rt.data))));
          }
          out.Add(lt.data, cond);
        }
        // The lazy strategy grounds (with propagation) at differences.
        if (strategy_ == CStrategy::kLazy) {
          return GroundAll(out, /*propagate=*/true);
        }
        return out;
      }
      case OpKind::kIntersect: {
        auto l = Eval(q->left);
        if (!l.ok()) return l;
        auto r = Eval(q->right);
        if (!r.ok()) return r;
        if (l->arity() != r->arity()) {
          return Status::InvalidArgument("intersection: arity mismatch");
        }
        CTable out(l->attrs());
        for (const CTuple& lt : l->tuples()) {
          CCondPtr any = CcFalse();
          for (const CTuple& rt : r->tuples()) {
            any = CcOr(any, CcAnd(rt.cond, TupleEqCond(lt.data, rt.data)));
          }
          out.Add(lt.data, CcAnd(lt.cond, any));
        }
        return out;
      }
      default:
        return Status::Unsupported(
            "conditional evaluation covers the core grammar + ∩; desugar "
            "the query first");
    }
  }

  const Database& db_;
  CDatabase cdb_;
  CStrategy strategy_;
};

}  // namespace

StatusOr<CTable> CEval(const AlgPtr& q, const Database& db, CStrategy s) {
  auto desugared = Desugar(q, db);
  if (!desugared.ok()) return desugared.status();
  CEvaluator ev(db, s);
  return ev.EvalTop(*desugared);
}

StatusOr<Relation> CEvalCertain(const AlgPtr& q, const Database& db,
                                CStrategy s) {
  auto t = CEval(q, db, s);
  if (!t.ok()) return t.status();
  return t->CertainTuples();
}

StatusOr<Relation> CEvalPossible(const AlgPtr& q, const Database& db,
                                 CStrategy s) {
  auto t = CEval(q, db, s);
  if (!t.ok()) return t.status();
  return t->PossibleTuples();
}

}  // namespace incdb
