#include "ctables/ctable.h"

#include <cassert>
#include <map>
#include <sstream>

namespace incdb {

void CTable::Add(Tuple t, CCondPtr cond) {
  assert(t.arity() == attrs_.size());
  if (cond->kind == CCKind::kFalse) return;
  tuples_.push_back(CTuple{std::move(t), std::move(cond)});
}

CTable CTable::Normalized() const {
  std::map<Tuple, CCondPtr> merged;
  std::vector<Tuple> order;
  for (const CTuple& ct : tuples_) {
    if (ct.cond->kind == CCKind::kFalse) continue;
    auto it = merged.find(ct.data);
    if (it == merged.end()) {
      merged[ct.data] = ct.cond;
      order.push_back(ct.data);
    } else {
      it->second = CcOr(it->second, ct.cond);
    }
  }
  CTable out(attrs_);
  for (const Tuple& t : order) out.Add(t, merged[t]);
  return out;
}

Relation CTable::TuplesWithGround(TV3 tau) const {
  Relation out(attrs_);
  const CTable normalized = Normalized();
  for (const CTuple& ct : normalized.tuples()) {
    if (GroundCC(ct.cond) == tau) {
      Status st = out.Insert(ct.data, 1);
      assert(st.ok());
      (void)st;
    }
  }
  return out;
}

Relation CTable::CertainTuples() const { return TuplesWithGround(TV3::kT); }

Relation CTable::PossibleTuples() const {
  Relation out(attrs_);
  const CTable normalized = Normalized();
  for (const CTuple& ct : normalized.tuples()) {
    if (GroundCC(ct.cond) != TV3::kF) {
      Status st = out.Insert(ct.data, 1);
      assert(st.ok());
      (void)st;
    }
  }
  return out;
}

Relation CTable::Instantiate(const Valuation& v) const {
  Relation out(attrs_);
  out.Reserve(tuples_.size());
  for (const CTuple& ct : tuples_) {
    if (EvalCC(ct.cond, v) == TV3::kT) {
      Status st = out.Insert(v.Apply(ct.data), 1);
      assert(st.ok());
      (void)st;
    }
  }
  out.CollapseCounts();
  return out;
}

std::string CTable::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i) os << ", ";
    os << attrs_[i];
  }
  os << ") {";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    os << (i ? ", " : " ") << "⟨" << tuples_[i].data.ToString() << ", "
       << tuples_[i].cond->ToString() << "⟩";
  }
  os << " }";
  return os.str();
}

CDatabase CDatabase::FromDatabase(const Database& db) {
  CDatabase out;
  for (const auto& [name, rel] : db.relations()) {
    CTable table(rel.attrs());
    for (const Tuple& t : rel.SortedTuples()) {
      table.Add(t, CcTrue());
    }
    out.tables[name] = std::move(table);
  }
  return out;
}

}  // namespace incdb
