#ifndef INCDB_CTABLES_CTABLE_H_
#define INCDB_CTABLES_CTABLE_H_

/// \file ctable.h
/// \brief Conditional tables: tuples paired with conditions (paper §4.2,
/// [36, 43]). The starting point of the Eval⋆ strategies is an ordinary
/// incomplete database converted to a conditional database whose
/// conditions are all true.

#include <string>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "ctables/ccondition.h"

namespace incdb {

/// A c-tuple ⟨t̄, φ⟩: the tuple t̄ is present when φ holds.
struct CTuple {
  Tuple data;
  CCondPtr cond;
};

/// \brief A conditional table: named attributes plus a list of c-tuples.
///
/// Unlike Relation, a CTable is not deduplicated — the same data tuple may
/// appear under several conditions (their disjunction governs presence).
class CTable {
 public:
  CTable() = default;
  explicit CTable(std::vector<std::string> attrs) : attrs_(std::move(attrs)) {}

  const std::vector<std::string>& attrs() const { return attrs_; }
  size_t arity() const { return attrs_.size(); }
  const std::vector<CTuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  void Add(Tuple t, CCondPtr cond);

  /// Drops c-tuples whose condition is syntactically false and merges
  /// duplicates ⟨t̄, φ1⟩, ⟨t̄, φ2⟩ into ⟨t̄, φ1 ∨ φ2⟩.
  CTable Normalized() const;

  /// The tuples whose condition has the given ground value; this realises
  /// Eval⋆t (τ = t) and the u-part of Eval⋆p (eq. 9a/9b).
  Relation TuplesWithGround(TV3 tau) const;
  /// Evalp: tuples whose condition grounds to t or u (eq. 9b).
  Relation PossibleTuples() const;
  /// Evalt: tuples whose condition grounds to t (eq. 9a).
  Relation CertainTuples() const;

  /// The set-semantics relation of the possible world chosen by a total
  /// valuation: v applied to data of tuples whose condition holds under v.
  Relation Instantiate(const Valuation& v) const;

  std::string ToString() const;

 private:
  std::vector<std::string> attrs_;
  std::vector<CTuple> tuples_;
};

/// A conditional database.
struct CDatabase {
  std::map<std::string, CTable> tables;

  static CDatabase FromDatabase(const Database& db);
};

}  // namespace incdb

#endif  // INCDB_CTABLES_CTABLE_H_
