#include "ctables/ccondition.h"

#include <cassert>
#include <unordered_map>
#include <vector>

#include "logic/kleene.h"

namespace incdb {

namespace {
CCondPtr Make(CCKind kind, Value a = Value::Int(0), Value b = Value::Int(0),
              CCondPtr l = nullptr, CCondPtr r = nullptr) {
  auto c = std::make_shared<CCond>();
  c->kind = kind;
  c->a = std::move(a);
  c->b = std::move(b);
  c->l = std::move(l);
  c->r = std::move(r);
  return c;
}

const CCondPtr& TrueSingleton() {
  static const CCondPtr t = Make(CCKind::kTrue);
  return t;
}
const CCondPtr& FalseSingleton() {
  static const CCondPtr f = Make(CCKind::kFalse);
  return f;
}
const CCondPtr& UnknownSingleton() {
  static const CCondPtr u = Make(CCKind::kUnknown);
  return u;
}
}  // namespace

CCondPtr CcTrue() { return TrueSingleton(); }
CCondPtr CcFalse() { return FalseSingleton(); }
CCondPtr CcUnknown() { return UnknownSingleton(); }

CCondPtr CcEq(const Value& a, const Value& b) {
  if (a == b) return CcTrue();
  if (a.is_const() && b.is_const()) return CcFalse();
  return Make(CCKind::kEq, a, b);
}

CCondPtr CcNeq(const Value& a, const Value& b) {
  if (a == b) return CcFalse();
  if (a.is_const() && b.is_const()) return CcTrue();
  return Make(CCKind::kNeq, a, b);
}

CCondPtr CcAnd(CCondPtr a, CCondPtr b) {
  if (a->kind == CCKind::kFalse || b->kind == CCKind::kFalse) return CcFalse();
  if (a->kind == CCKind::kTrue) return b;
  if (b->kind == CCKind::kTrue) return a;
  return Make(CCKind::kAnd, Value::Int(0), Value::Int(0), std::move(a),
              std::move(b));
}

CCondPtr CcOr(CCondPtr a, CCondPtr b) {
  if (a->kind == CCKind::kTrue || b->kind == CCKind::kTrue) return CcTrue();
  if (a->kind == CCKind::kFalse) return b;
  if (b->kind == CCKind::kFalse) return a;
  return Make(CCKind::kOr, Value::Int(0), Value::Int(0), std::move(a),
              std::move(b));
}

CCondPtr CcNot(CCondPtr a) {
  switch (a->kind) {
    case CCKind::kTrue:
      return CcFalse();
    case CCKind::kFalse:
      return CcTrue();
    case CCKind::kUnknown:
      return CcUnknown();
    case CCKind::kEq:
      return CcNeq(a->a, a->b);
    case CCKind::kNeq:
      return CcEq(a->a, a->b);
    case CCKind::kNot:
      return a->l;
    default:
      return Make(CCKind::kNot, Value::Int(0), Value::Int(0), std::move(a));
  }
}

std::string CCond::ToString() const {
  switch (kind) {
    case CCKind::kTrue:
      return "t";
    case CCKind::kFalse:
      return "f";
    case CCKind::kUnknown:
      return "u";
    case CCKind::kEq:
      return a.ToString() + "=" + b.ToString();
    case CCKind::kNeq:
      return a.ToString() + "≠" + b.ToString();
    case CCKind::kAnd:
      return "(" + l->ToString() + " ∧ " + r->ToString() + ")";
    case CCKind::kOr:
      return "(" + l->ToString() + " ∨ " + r->ToString() + ")";
    case CCKind::kNot:
      return "¬" + l->ToString();
  }
  return "?";
}

namespace {

/// A literal: (in)equality over two terms, or an opaque unknown.
struct Literal {
  bool eq;      // true: a = b, false: a ≠ b
  bool opaque;  // unknown literal (ignored by the solver)
  Value a, b;
};

using Clause = std::vector<Literal>;

/// NNF → DNF expansion. Returns false on clause-budget overflow.
bool ToDnf(const CCondPtr& c, bool negated, std::vector<Clause>* out,
           size_t max_clauses) {
  switch (c->kind) {
    case CCKind::kTrue:
      if (negated) {
        out->clear();  // false: no clauses
      } else {
        out->assign(1, Clause{});  // true: one empty clause
      }
      return true;
    case CCKind::kFalse:
      return ToDnf(CcTrue(), !negated, out, max_clauses);
    case CCKind::kUnknown: {
      Clause cl;
      cl.push_back(Literal{false, true, Value::Int(0), Value::Int(0)});
      out->assign(1, cl);
      return true;
    }
    case CCKind::kEq:
    case CCKind::kNeq: {
      bool eq = (c->kind == CCKind::kEq) != negated;
      Clause cl;
      cl.push_back(Literal{eq, false, c->a, c->b});
      out->assign(1, cl);
      return true;
    }
    case CCKind::kNot:
      return ToDnf(c->l, !negated, out, max_clauses);
    case CCKind::kAnd:
    case CCKind::kOr: {
      bool conj = (c->kind == CCKind::kAnd) != negated;
      std::vector<Clause> left, right;
      if (!ToDnf(c->l, negated, &left, max_clauses)) return false;
      if (!ToDnf(c->r, negated, &right, max_clauses)) return false;
      if (conj) {
        // Distribute: every pair of clauses merges.
        if (left.size() * right.size() > max_clauses) return false;
        out->clear();
        for (const Clause& lc : left) {
          for (const Clause& rc : right) {
            Clause merged = lc;
            merged.insert(merged.end(), rc.begin(), rc.end());
            out->push_back(std::move(merged));
          }
        }
      } else {
        if (left.size() + right.size() > max_clauses) return false;
        out->clear();
        out->insert(out->end(), left.begin(), left.end());
        out->insert(out->end(), right.begin(), right.end());
      }
      return true;
    }
  }
  return false;
}

/// Union-find over terms with constant-conflict detection.
class TermUnion {
 public:
  /// Returns false if the merge is inconsistent (two distinct constants).
  bool Merge(const Value& a, const Value& b) {
    Value ra = Find(a), rb = Find(b);
    if (ra == rb) return true;
    if (ra.is_const() && rb.is_const()) return false;
    // Point the null at the other representative (constants stay roots).
    if (ra.is_null()) {
      parent_[ra.null_id()] = rb;
    } else {
      parent_[rb.null_id()] = ra;
    }
    return true;
  }

  Value Find(const Value& v) {
    if (v.is_const()) return v;
    auto it = parent_.find(v.null_id());
    if (it == parent_.end()) return v;
    Value root = Find(it->second);
    parent_[v.null_id()] = root;
    return root;
  }

 private:
  std::unordered_map<uint64_t, Value> parent_;
};

/// Clause satisfiability: merge equalities, check inequalities.
/// A clause over nulls is satisfiable iff the equalities are consistent and
/// no inequality connects two terms of the same class. (Disequalities
/// between distinct classes are always realisable: Const is infinite.)
bool ClauseSat(const Clause& clause) {
  TermUnion uf;
  for (const Literal& lit : clause) {
    if (lit.opaque) continue;
    if (lit.eq && !uf.Merge(lit.a, lit.b)) return false;
  }
  for (const Literal& lit : clause) {
    if (lit.opaque || lit.eq) continue;
    if (uf.Find(lit.a) == uf.Find(lit.b)) return false;
  }
  return true;
}

}  // namespace

bool SatisfiableCC(const CCondPtr& c, size_t max_clauses) {
  std::vector<Clause> dnf;
  if (!ToDnf(c, /*negated=*/false, &dnf, max_clauses)) {
    return true;  // budget overflow: safe (degrades Ground to u)
  }
  for (const Clause& clause : dnf) {
    if (ClauseSat(clause)) return true;
  }
  return false;
}

bool ValidCC(const CCondPtr& c, size_t max_clauses) {
  std::vector<Clause> dnf;
  if (!ToDnf(c, /*negated=*/true, &dnf, max_clauses)) {
    return false;  // budget overflow: safe
  }
  // c is valid iff ¬c is unsatisfiable. Opaque (unknown) literals make a
  // clause satisfiable from the solver's point of view, so a condition
  // containing unknowns is never valid — exactly the intended semantics.
  for (const Clause& clause : dnf) {
    if (ClauseSat(clause)) return false;
  }
  return true;
}

TV3 GroundCC(const CCondPtr& c) {
  if (!SatisfiableCC(c)) return TV3::kF;
  if (ValidCC(c)) return TV3::kT;
  return TV3::kU;
}

CCondPtr SubstCC(const CCondPtr& c, const Valuation& v) {
  switch (c->kind) {
    case CCKind::kTrue:
    case CCKind::kFalse:
    case CCKind::kUnknown:
      return c;
    case CCKind::kEq:
      return CcEq(v.Apply(c->a), v.Apply(c->b));
    case CCKind::kNeq:
      return CcNeq(v.Apply(c->a), v.Apply(c->b));
    case CCKind::kAnd:
      return CcAnd(SubstCC(c->l, v), SubstCC(c->r, v));
    case CCKind::kOr:
      return CcOr(SubstCC(c->l, v), SubstCC(c->r, v));
    case CCKind::kNot:
      return CcNot(SubstCC(c->l, v));
  }
  return c;
}

TV3 EvalCC(const CCondPtr& c, const Valuation& v) {
  switch (c->kind) {
    case CCKind::kTrue:
      return TV3::kT;
    case CCKind::kFalse:
      return TV3::kF;
    case CCKind::kUnknown:
      return TV3::kU;
    case CCKind::kEq:
      return FromBool(v.Apply(c->a) == v.Apply(c->b));
    case CCKind::kNeq:
      return FromBool(!(v.Apply(c->a) == v.Apply(c->b)));
    case CCKind::kAnd:
      return Kleene::And(EvalCC(c->l, v), EvalCC(c->r, v));
    case CCKind::kOr:
      return Kleene::Or(EvalCC(c->l, v), EvalCC(c->r, v));
    case CCKind::kNot:
      return Kleene::Not(EvalCC(c->l, v));
  }
  return TV3::kU;
}

namespace {
void CollectConjunctEqualities(const CCondPtr& c, TermUnion* uf) {
  if (c->kind == CCKind::kAnd) {
    CollectConjunctEqualities(c->l, uf);
    CollectConjunctEqualities(c->r, uf);
  } else if (c->kind == CCKind::kEq) {
    uf->Merge(c->a, c->b);  // inconsistent conditions handled by grounding
  }
}

void CollectNulls(const CCondPtr& c, std::set<uint64_t>* out) {
  switch (c->kind) {
    case CCKind::kEq:
    case CCKind::kNeq:
      if (c->a.is_null()) out->insert(c->a.null_id());
      if (c->b.is_null()) out->insert(c->b.null_id());
      return;
    case CCKind::kAnd:
    case CCKind::kOr:
      CollectNulls(c->l, out);
      CollectNulls(c->r, out);
      return;
    case CCKind::kNot:
      CollectNulls(c->l, out);
      return;
    default:
      return;
  }
}
}  // namespace

std::map<uint64_t, Value> ForcedBindings(const CCondPtr& c) {
  TermUnion uf;
  CollectConjunctEqualities(c, &uf);
  std::set<uint64_t> nulls;
  CollectNulls(c, &nulls);
  std::map<uint64_t, Value> out;
  for (uint64_t id : nulls) {
    Value root = uf.Find(Value::Null(id));
    if (!(root == Value::Null(id))) out[id] = root;
  }
  return out;
}

}  // namespace incdb
