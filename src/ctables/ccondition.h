#ifndef INCDB_CTABLES_CCONDITION_H_
#define INCDB_CTABLES_CCONDITION_H_

/// \file ccondition.h
/// \brief Conditions attached to c-tuples in conditional tables (paper
/// §4.2, "Approximation schemes based on conditional tables"; cf. [43]).
///
/// A condition is a Boolean combination of (in)equality atoms over terms,
/// where a term is a constant or a marked null. In addition to the logical
/// constants true/false there is an *unknown* constant: the result of
/// *grounding* a condition that is neither valid nor unsatisfiable. The
/// eager strategies of [36] replace conditions by their ground value after
/// each operator, so unknown participates in later conditions via Kleene
/// connectives.
///
/// Smart constructors fold constants eagerly (c = c ↦ true, c = d ↦ false,
/// true ∧ φ ↦ φ, ...), keeping conditions small; satisfiability and
/// validity are decided by NNF → DNF expansion with union-find per clause.
/// Unknown literals are treated as unconstraining (an opaque proposition),
/// which makes Ground() sound in both directions: a tuple is reported
/// certainly-true only if its condition is valid, certainly-false only if
/// unsatisfiable.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/status.h"
#include "core/valuation.h"
#include "core/value.h"
#include "logic/truth.h"

namespace incdb {

struct CCond;
using CCondPtr = std::shared_ptr<const CCond>;

enum class CCKind : uint8_t {
  kTrue,
  kFalse,
  kUnknown,  ///< Grounded "u" — an opaque truth value.
  kEq,       ///< term = term
  kNeq,      ///< term ≠ term
  kAnd,
  kOr,
  kNot,
};

/// \brief Immutable condition node.
struct CCond {
  CCKind kind;
  Value a, b;      ///< Terms of kEq / kNeq.
  CCondPtr l, r;   ///< Children (kAnd/kOr both, kNot left only).

  std::string ToString() const;
};

/// Smart constructors (fold constants and trivial identities).
CCondPtr CcTrue();
CCondPtr CcFalse();
CCondPtr CcUnknown();
CCondPtr CcEq(const Value& a, const Value& b);
CCondPtr CcNeq(const Value& a, const Value& b);
CCondPtr CcAnd(CCondPtr a, CCondPtr b);
CCondPtr CcOr(CCondPtr a, CCondPtr b);
CCondPtr CcNot(CCondPtr a);

/// Satisfiability: is there a valuation of the nulls making the condition
/// true (unknown literals unconstrained)? Decided via DNF; `max_clauses`
/// bounds the expansion — on overflow the *safe* answer true is returned
/// (callers use this only through Ground(), where it degrades t/f to u).
bool SatisfiableCC(const CCondPtr& c, size_t max_clauses = 100000);

/// Validity: true in every valuation. !Satisfiable(¬c), same budget note.
bool ValidCC(const CCondPtr& c, size_t max_clauses = 100000);

/// Grounding: valid ↦ t, unsatisfiable ↦ f, otherwise ↦ u.
TV3 GroundCC(const CCondPtr& c);

/// Substitutes nulls by the valuation (partial valuations fine).
CCondPtr SubstCC(const CCondPtr& c, const Valuation& v);

/// Kleene evaluation under a *total* valuation of the nulls occurring in
/// the condition; kUnknown evaluates to u.
TV3 EvalCC(const CCondPtr& c, const Valuation& v);

/// Equalities forced by the top-level conjunction: null ↦ constant or
/// null ↦ representative null bindings implied by the conjuncts that are
/// equality atoms (the "equality propagation" of the semi-eager, lazy and
/// aware strategies of [36]). Returns a substitution mapping null ids to
/// terms (constants, or the class representative).
std::map<uint64_t, Value> ForcedBindings(const CCondPtr& c);

}  // namespace incdb

#endif  // INCDB_CTABLES_CCONDITION_H_
