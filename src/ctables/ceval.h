#ifndef INCDB_CTABLES_CEVAL_H_
#define INCDB_CTABLES_CEVAL_H_

/// \file ceval.h
/// \brief Conditional evaluation of relational algebra over c-tables and
/// the four approximation strategies of Greco, Molinaro & Trubitsyna [36]
/// (paper §4.2, Theorem 4.9):
///
///  * Eager (Evalᵉ)      — conditions are grounded to t/f/u immediately
///                         after every operator;
///  * Semi-eager (Evalˢ) — as eager, but forced equalities are first
///                         propagated into the tuple data (⟨⊥2, ⊥1=c ∧
///                         ⊥1=⊥2⟩ becomes ⟨c, u⟩);
///  * Lazy (Evalˡ)       — propagation + grounding happen only at each
///                         difference operator;
///  * Aware (Evalᵃ)      — everything is postponed to the very end and
///                         performed on a minimal rewriting of conditions.
///
/// All four run in PTIME and have correctness guarantees:
/// Eval⋆t(Q, D) ⊆ cert⊥(Q, D). Moreover Q+(D) = Evalᵉt(Q, D) and
/// Q?(D) = Evalᵉp(Q, D) (Theorem 4.9), which the test suite verifies.

#include "algebra/algebra.h"
#include "core/database.h"
#include "core/exec_context.h"
#include "core/status.h"
#include "ctables/ctable.h"

namespace incdb {

enum class CStrategy { kEager, kSemiEager, kLazy, kAware };

const char* ToString(CStrategy s);

/// Evaluates `q` (core grammar + ∩; sugar is desugared internally) over the
/// conditional database obtained from `db` with all-true conditions,
/// applying the given strategy's grounding discipline.
///
/// `params` binds `?i` parameter placeholders in selection conditions:
/// the lowered plan is compiled (and cached) on the *parameterised* shape,
/// and placeholders resolve against the bindings when each condition is
/// instantiated per evaluation — so N bindings of one query template share
/// one lowering. An unbound placeholder is an InvalidArgument error.
///
/// `ctx` carries a deadline / cancellation token, checked on an amortized
/// schedule inside the quadratic evaluation loops; a default-constructed
/// context never fires.
StatusOr<CTable> CEval(const AlgPtr& q, const Database& db, CStrategy s,
                       const std::vector<Value>& params = {},
                       const ExecContext& ctx = {});

/// Eval⋆t(Q, D): tuples reported certainly true (eq. 9a).
StatusOr<Relation> CEvalCertain(const AlgPtr& q, const Database& db,
                                CStrategy s,
                                const std::vector<Value>& params = {},
                                const ExecContext& ctx = {});
/// Eval⋆p(Q, D): tuples reported possible, i.e. t or u (eq. 9b).
StatusOr<Relation> CEvalPossible(const AlgPtr& q, const Database& db,
                                 CStrategy s,
                                 const std::vector<Value>& params = {},
                                 const ExecContext& ctx = {});

}  // namespace incdb

#endif  // INCDB_CTABLES_CEVAL_H_
