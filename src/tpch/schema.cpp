#include "tpch/tpch.h"

namespace incdb {
namespace tpch {

// Schema construction lives with the generator; this translation unit
// hosts the shared attribute-name definitions so queries and generator
// cannot drift apart.

const std::vector<std::string>& NationAttrs() {
  static const std::vector<std::string> a = {"n_nationkey", "n_name",
                                             "n_regionkey"};
  return a;
}

const std::vector<std::string>& CustomerAttrs() {
  static const std::vector<std::string> a = {"c_custkey", "c_name",
                                             "c_nationkey", "c_acctbal"};
  return a;
}

const std::vector<std::string>& SupplierAttrs() {
  static const std::vector<std::string> a = {"s_suppkey", "s_name",
                                             "s_nationkey", "s_acctbal"};
  return a;
}

const std::vector<std::string>& PartAttrs() {
  static const std::vector<std::string> a = {"p_partkey", "p_name", "p_brand",
                                             "p_size"};
  return a;
}

const std::vector<std::string>& OrdersAttrs() {
  static const std::vector<std::string> a = {"o_orderkey", "o_custkey",
                                             "o_totalprice", "o_status"};
  return a;
}

const std::vector<std::string>& LineitemAttrs() {
  static const std::vector<std::string> a = {
      "l_orderkey", "l_partkey", "l_suppkey", "l_quantity", "l_price"};
  return a;
}

}  // namespace tpch
}  // namespace incdb
