#ifndef INCDB_TPCH_TPCH_H_
#define INCDB_TPCH_TPCH_H_

/// \file tpch.h
/// \brief TPC-H-like workload for the experiments the paper surveys
/// (§4.2: the PODS'16 feasibility study [37] ran on TPC Benchmark H [65];
/// the SIGMOD'19 study [27] measured precision/recall under growing
/// incompleteness).
///
/// We cannot ship the TPC dbgen tool or a commercial DBMS, so this module
/// generates a *scaled-down* schema-compatible instance with a seeded RNG
/// and configurable null injection, and expresses the negation-heavy
/// decision-support queries (the NOT IN / NOT EXISTS family the study
/// highlights) in incdb's algebra. See DESIGN.md §3 for why this preserves
/// the experiments' shape.
///
/// Schema (keys are never nulled; nullable columns marked *):
///   nation  (n_nationkey, n_name, n_regionkey*)
///   customer(c_custkey, c_name, c_nationkey*, c_acctbal*)
///   supplier(s_suppkey, s_name, s_nationkey*, s_acctbal*)
///   part    (p_partkey, p_name, p_brand*, p_size*)
///   orders  (o_orderkey, o_custkey*, o_totalprice*, o_status*)
///   lineitem(l_orderkey, l_partkey*, l_suppkey*, l_quantity*, l_price*)

#include <cstdint>

#include "algebra/algebra.h"
#include "core/database.h"

namespace incdb {
namespace tpch {

struct GenOptions {
  /// Scale factor: 1.0 ≈ 25 nations, 150 customers, 1500 orders, 6000
  /// lineitems, 100 suppliers, 200 parts (a ~1000× reduction of TPC-H SF1).
  double scale = 1.0;
  /// Probability that a nullable cell is replaced by a fresh marked null.
  double null_rate = 0.0;
  uint64_t seed = 42;
};

/// Generates a database instance. Deterministic in (scale, null_rate, seed).
Database Generate(const GenOptions& opts);

/// A named benchmark query.
struct BenchQuery {
  std::string name;
  std::string description;
  AlgPtr algebra;
};

/// The workload: negation-heavy decision-support queries in the spirit of
/// TPC-H Q16/Q21/Q22 (the ones [37] singles out), plus positive controls.
///  W1  unshipped-orders     : orders with no lineitem        (NOT IN)
///  W2  inactive-customers   : customers with no order        (NOT EXISTS)
///  W3  unpaid-big-orders    : big orders minus ordered keys  (difference)
///  W4  order-join           : customers ⨝ orders ⨝ nation    (positive)
///  W5  lost-parts           : parts never appearing in any lineitem
///  W6  rich-inactive        : acctbal-filtered NOT EXISTS    (Q22-like)
///  W7  union-probe          : union of two selections        (positive)
///  W8  double-negation      : orders − (big-orders − ordered) (R−(S−T))
std::vector<BenchQuery> Workload();

}  // namespace tpch
}  // namespace incdb

#endif  // INCDB_TPCH_TPCH_H_
