#include "algebra/builder.h"
#include "tpch/tpch.h"

namespace incdb {
namespace tpch {

namespace {

/// π_{o_orderkey}(orders) NOT IN π_{l_orderkey}(lineitem): orders nobody
/// shipped. The star query of the paper's §1 false-negative discussion.
BenchQuery UnshippedOrders() {
  AlgPtr q = NotInPredicate(Project(Scan("orders"), {"o_orderkey"}),
                            Project(Scan("lineitem"), {"l_orderkey"}),
                            {"o_orderkey"}, {"l_orderkey"}, CTrue());
  return {"W1-unshipped-orders",
          "orders with no lineitem (NOT IN; false-negative prone)", q};
}

/// Customers without any order (correlated NOT EXISTS; Q22 spirit).
BenchQuery InactiveCustomers() {
  AlgPtr q = Antijoin(Scan("customer"), Scan("orders"),
                      CEq("c_custkey", "o_custkey"));
  return {"W2-inactive-customers",
          "customers with no order (NOT EXISTS; false-positive prone)",
          Project(q, {"c_custkey"})};
}

/// Big orders whose key does not appear among shipped keys (difference,
/// with a TPC-H-style price range predicate).
BenchQuery UnpaidBigOrders() {
  AlgPtr big = Project(
      Select(Scan("orders"), CAnd(CNeqc("o_status", Value::String("F")),
                                  CGtc("o_totalprice", Value::Int(50000)))),
      {"o_orderkey"});
  AlgPtr shipped = Project(Scan("lineitem"), {"l_orderkey"});
  AlgPtr renamed = Rename(shipped, {"o_orderkey"});
  return {"W3-open-unshipped",
          "big non-finished orders minus shipped keys (−, range)",
          Diff(big, renamed)};
}

/// Positive control: customer ⨝ orders ⨝ nation.
BenchQuery OrderJoin() {
  AlgPtr q = Join(Scan("customer"), Scan("orders"),
                  CEq("c_custkey", "o_custkey"));
  q = Join(q, Scan("nation"), CEq("c_nationkey", "n_nationkey"));
  return {"W4-order-join", "customers ⨝ orders ⨝ nation (positive control)",
          Project(q, {"c_custkey", "o_orderkey", "n_name"})};
}

/// Parts that never appear in a lineitem (Q16 spirit).
BenchQuery LostParts() {
  AlgPtr q = NotInPredicate(Project(Scan("part"), {"p_partkey"}),
                            Project(Scan("lineitem"), {"l_partkey"}),
                            {"p_partkey"}, {"l_partkey"}, CTrue());
  return {"W5-lost-parts", "parts never ordered (NOT IN)", q};
}

/// Q22-like: customers with positive balance and no orders.
BenchQuery RichInactive() {
  AlgPtr rich = Select(Scan("customer"), CGtc("c_acctbal", Value::Int(0)));
  AlgPtr q =
      Antijoin(rich, Scan("orders"), CEq("c_custkey", "o_custkey"));
  return {"W6-rich-inactive",
          "positive-balance customers with no order (Q22-like)",
          Project(q, {"c_custkey", "c_acctbal"})};
}

/// Positive control: union of two selections.
BenchQuery UnionProbe() {
  AlgPtr a = Project(
      Select(Scan("orders"), CEqc("o_status", Value::String("O"))),
      {"o_orderkey"});
  AlgPtr b = Project(
      Select(Scan("orders"), CEqc("o_status", Value::String("P"))),
      {"o_orderkey"});
  return {"W7-union-probe", "open ∪ pending order keys (positive control)",
          Union(a, b)};
}

/// R − (S − T): the double-negation pattern of §5.1 where SQL returns
/// almost-certainly-false answers.
BenchQuery DoubleNegation() {
  AlgPtr all = Project(Scan("orders"), {"o_orderkey"});
  AlgPtr big = Project(
      Select(Scan("orders"), CNeqc("o_status", Value::String("F"))),
      {"o_orderkey"});
  AlgPtr shipped = Rename(Project(Scan("lineitem"), {"l_orderkey"}),
                          {"o_orderkey"});
  return {"W8-double-negation", "orders − (open-orders − shipped): R−(S−T)",
          Diff(all, Diff(big, shipped))};
}

}  // namespace

std::vector<BenchQuery> Workload() {
  return {UnshippedOrders(), InactiveCustomers(), UnpaidBigOrders(),
          OrderJoin(),       LostParts(),         RichInactive(),
          UnionProbe(),      DoubleNegation()};
}

}  // namespace tpch
}  // namespace incdb
