#ifndef INCDB_TPCH_SCHEMA_H_
#define INCDB_TPCH_SCHEMA_H_

/// \file schema.h
/// \brief Shared attribute-name lists for the TPC-H-lite schema (see
/// tpch.h for the schema overview).

#include <string>
#include <vector>

namespace incdb {
namespace tpch {

const std::vector<std::string>& NationAttrs();
const std::vector<std::string>& CustomerAttrs();
const std::vector<std::string>& SupplierAttrs();
const std::vector<std::string>& PartAttrs();
const std::vector<std::string>& OrdersAttrs();
const std::vector<std::string>& LineitemAttrs();

}  // namespace tpch
}  // namespace incdb

#endif  // INCDB_TPCH_SCHEMA_H_
