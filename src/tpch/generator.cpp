#include <random>

#include "tpch/schema.h"
#include "tpch/tpch.h"

namespace incdb {
namespace tpch {

namespace {

/// Deterministic generator state. Null ids are drawn from a dedicated
/// range so user code can mix in its own nulls without collisions.
class Gen {
 public:
  explicit Gen(const GenOptions& opts)
      : opts_(opts), rng_(opts.seed), next_null_(1) {}

  Value MaybeNull(Value v) {
    if (opts_.null_rate > 0.0 && uniform_(rng_) < opts_.null_rate) {
      return Value::Null(next_null_++);
    }
    return v;
  }

  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng_);
  }

  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng_);
  }

 private:
  GenOptions opts_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  uint64_t next_null_;
};

size_t Scaled(double scale, size_t base) {
  return std::max<size_t>(1, static_cast<size_t>(base * scale));
}

}  // namespace

Database Generate(const GenOptions& opts) {
  Gen gen(opts);
  Database db;

  const size_t n_nation = std::min<size_t>(25, Scaled(opts.scale, 25));
  const size_t n_customer = Scaled(opts.scale, 150);
  const size_t n_supplier = Scaled(opts.scale, 100);
  const size_t n_part = Scaled(opts.scale, 200);
  const size_t n_orders = Scaled(opts.scale, 1500);
  const size_t n_lineitem = Scaled(opts.scale, 6000);

  static const char* kNationNames[] = {
      "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
      "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
      "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
      "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
      "UNITED STATES"};
  static const char* kStatuses[] = {"O", "F", "P"};
  static const char* kBrands[] = {"Brand#11", "Brand#22", "Brand#33",
                                  "Brand#44", "Brand#55"};

  Relation nation(NationAttrs());
  nation.Reserve(n_nation);
  for (size_t i = 0; i < n_nation; ++i) {
    nation.Add({Value::Int(static_cast<int64_t>(i)),
                Value::String(kNationNames[i % 25]),
                gen.MaybeNull(Value::Int(gen.UniformInt(0, 4)))});
  }
  db.Put("nation", std::move(nation));

  Relation customer(CustomerAttrs());
  customer.Reserve(n_customer);
  for (size_t i = 0; i < n_customer; ++i) {
    customer.Add(
        {Value::Int(static_cast<int64_t>(i)),
         Value::String("Customer#" + std::to_string(i)),
         gen.MaybeNull(Value::Int(
             gen.UniformInt(0, static_cast<int64_t>(n_nation) - 1))),
         gen.MaybeNull(Value::Int(gen.UniformInt(-999, 9999)))});
  }
  db.Put("customer", std::move(customer));

  Relation supplier(SupplierAttrs());
  supplier.Reserve(n_supplier);
  for (size_t i = 0; i < n_supplier; ++i) {
    supplier.Add(
        {Value::Int(static_cast<int64_t>(i)),
         Value::String("Supplier#" + std::to_string(i)),
         gen.MaybeNull(Value::Int(
             gen.UniformInt(0, static_cast<int64_t>(n_nation) - 1))),
         gen.MaybeNull(Value::Int(gen.UniformInt(-999, 9999)))});
  }
  db.Put("supplier", std::move(supplier));

  Relation part(PartAttrs());
  part.Reserve(n_part);
  for (size_t i = 0; i < n_part; ++i) {
    part.Add({Value::Int(static_cast<int64_t>(i)),
              Value::String("Part#" + std::to_string(i)),
              gen.MaybeNull(Value::String(kBrands[gen.UniformInt(0, 4)])),
              gen.MaybeNull(Value::Int(gen.UniformInt(1, 50)))});
  }
  db.Put("part", std::move(part));

  Relation orders(OrdersAttrs());
  orders.Reserve(n_orders);
  for (size_t i = 0; i < n_orders; ++i) {
    orders.Add(
        {Value::Int(static_cast<int64_t>(i)),
         gen.MaybeNull(Value::Int(
             gen.UniformInt(0, static_cast<int64_t>(n_customer) - 1))),
         gen.MaybeNull(Value::Int(gen.UniformInt(100, 100000))),
         gen.MaybeNull(Value::String(kStatuses[gen.UniformInt(0, 2)]))});
  }
  db.Put("orders", std::move(orders));

  Relation lineitem(LineitemAttrs());
  lineitem.Reserve(n_lineitem);
  for (size_t i = 0; i < n_lineitem; ++i) {
    // ~10% of orders have no lineitem at all, making the NOT IN family of
    // queries produce non-trivial answers.
    int64_t okey =
        gen.UniformInt(0, static_cast<int64_t>(n_orders * 9 / 10));
    lineitem.Add(
        {gen.MaybeNull(Value::Int(okey)),
         gen.MaybeNull(Value::Int(
             gen.UniformInt(0, static_cast<int64_t>(n_part) - 1))),
         gen.MaybeNull(Value::Int(
             gen.UniformInt(0, static_cast<int64_t>(n_supplier) - 1))),
         gen.MaybeNull(Value::Int(gen.UniformInt(1, 50))),
         gen.MaybeNull(Value::Int(gen.UniformInt(100, 10000)))});
  }
  db.Put("lineitem", std::move(lineitem));

  return db;
}

}  // namespace tpch
}  // namespace incdb
