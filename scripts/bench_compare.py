#!/usr/bin/env python3
"""Compare two bench-runner JSON record files (see BUILDING.md).

Usage: bench_compare.py CURRENT.json [BASELINE.json]

Records are joined on (name, configuration params); `ns_per_op` is a
measured output that lands in params, so it is excluded from the join
key. Timed records missing from either side are reported. Exit code is
always 0: the comparison is informational, not a gate.
"""

import json
import signal
import sys

signal.signal(signal.SIGPIPE, signal.SIG_DFL)  # behave when piped to head


# Measured outputs that land in params vary run to run and must not be
# part of the join key: the ns_per_/us_per_ rates, the derived speedups
# and the paired-run outputs (cursor_stream's full_ms, the cancel
# checkpoint's inert_ms/overhead_pct).
MEASURED_PARAMS = {"full_ms", "speedup", "compile_speedup", "inert_ms",
                   "overhead_pct"}


def measured(name):
    return (name in MEASURED_PARAMS or name.startswith("ns_per_")
            or name.startswith("us_per_"))


def key(record):
    params = {k: v for k, v in record["params"].items() if not measured(k)}
    return (record["name"], json.dumps(params, sort_keys=True))


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current_path = sys.argv[1]
    baseline_path = sys.argv[2] if len(sys.argv) == 3 else "BENCH_baseline.json"
    cur = {key(r): r for r in json.load(open(current_path))}
    base = {key(r): r for r in json.load(open(baseline_path))}

    print(f"{'record':<28} {'base ms':>10} {'now ms':>10} {'ratio':>7}")
    for k, b in sorted(base.items()):
        c = cur.get(k)
        if c is None:
            print(f"{b['name']:<28} {'(missing from current run)':>30}")
        elif b["ms"] is None or c["ms"] is None:
            continue  # correctness-only record
        else:
            ratio = c["ms"] / b["ms"] if b["ms"] else float("nan")
            print(f"{b['name']:<28} {b['ms']:>10.3f} {c['ms']:>10.3f} "
                  f"{ratio:>6.2f}x")
    for k, c in sorted(cur.items()):
        if k not in base:
            print(f"{c['name']:<28} {'(not in baseline)':>30}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
