// The fault sweep: the differential-fuzzer corpus re-run with the
// deterministic FaultInjector armed. The contract under injected faults
// at every site (scan resolve, node eval, materialization, pool
// dispatch, snapshot pin, result-cache insert) is strict:
//
//  * every outcome is either the bit-identical correct result or a
//    *structured* error — kCancelled / kResourceExhausted with
//    StatusDetail, never kInternal, never a crash (ASan/UBSan CI builds
//    run this suite with the sites compiled in);
//  * the session stays usable after any number of injected failures.
//
// Reproducing a sweep failure: every assertion message carries the
// (case, fault seed, rate) triple; re-run with
//   INCDB_FAULT_SEED=<seed> INCDB_FAULT_RATE=<rate>
// or call FaultInjector::Global().Configure(seed, rate) before the
// failing query — same seed ⇒ same roll sequence (single-threaded).
//
// The whole suite GTEST_SKIPs in builds without INCDB_FAULT_INJECTION
// (Release/RelWithDebInfo): the sites compile to nothing there.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "api/session.h"
#include "core/fault.h"
#include "eval/eval.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::RandomBagDatabase;
using testing_util::RandomDatabase;
using testing_util::RandomQueryGen;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10)
                                      : fallback;
}

/// The only statuses an injected fault may surface as. A genuine
/// kResourceExhausted (budget) is indistinguishable from an injected one
/// by code — both are acceptable; kInternal and anything unexpected are
/// not.
bool StructuredFaultOutcome(const Status& st) {
  return st.code() == StatusCode::kCancelled ||
         st.code() == StatusCode::kResourceExhausted;
}

class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FaultInjector::CompiledIn()) {
      GTEST_SKIP() << "fault-injection sites not compiled in "
                      "(build Debug or -DINCDB_FORCE_FAULT_INJECTION=ON)";
    }
    FaultInjector::Global().Disable();
  }
  void TearDown() override { FaultInjector::Global().Disable(); }
};

// ≥200 corpus cases × ≥3 fault seeds through the full Session surface
// (snapshot pin, executor, result-cache insert) — the acceptance sweep.
TEST_F(FaultSweepTest, FuzzerCorpusUnderFaultsIsCorrectOrStructured) {
  const uint64_t cases = EnvOr("INCDB_FAULT_CASES", 200);
  const double rate = 0.05;
  std::vector<uint64_t> fault_seeds = {11, 4242, 987654321};
  if (uint64_t extra = EnvOr("INCDB_FAULT_SEED", 0)) {
    fault_seeds.push_back(extra);
  }

  std::mt19937_64 rng(EnvOr("INCDB_FUZZ_SEED", 20260730));
  RandomQueryGen gen(rng);
  FaultInjector& fi = FaultInjector::Global();
  uint64_t injected_total = 0;

  for (uint64_t i = 0; i < cases; ++i) {
    const size_t tuples = 3 + i % 4;
    Database db = (i % 2 == 0) ? RandomDatabase(rng, tuples)
                               : RandomBagDatabase(rng, tuples);
    AlgPtr q = gen.Gen(2 + static_cast<int>(i % 3));

    EvalOptions opts;
    opts.use_result_cache = (i % 3 == 0);  // exercise the insert site too
    Session sess(std::move(db), opts);
    auto pq = sess.Prepare(q, EvalMode::kSetSql);
    if (!pq.ok()) continue;  // corpus shape unsupported under SQL mode
    auto ref = pq->Execute();
    ASSERT_TRUE(ref.ok()) << "case " << i << " fault-free reference failed: "
                          << ref.status().ToString();

    for (uint64_t fseed : fault_seeds) {
      fi.Configure(fseed, rate);
      auto res = pq->Execute();
      const uint64_t fired = fi.injected();
      fi.Disable();
      injected_total += fired;
      if (res.ok()) {
        EXPECT_TRUE(ref->SameRows(*res))
            << "case " << i << " fault_seed " << fseed << " rate " << rate
            << ": survived faults but diverged for " << q->ToString();
      } else {
        EXPECT_TRUE(StructuredFaultOutcome(res.status()))
            << "case " << i << " fault_seed " << fseed << " rate " << rate
            << ": unstructured failure " << res.status().ToString();
      }
      // The session must shrug off any injected failure: the very next
      // fault-free execution answers bit-identically.
      auto after = pq->Execute();
      ASSERT_TRUE(after.ok())
          << "case " << i << " fault_seed " << fseed
          << ": session unusable after fault: " << after.status().ToString();
      EXPECT_TRUE(ref->SameRows(*after))
          << "case " << i << " fault_seed " << fseed
          << ": post-fault execution diverges";
    }
  }
  // The sweep is meaningless if the roll rate never actually fired.
  EXPECT_GT(injected_total, 0u) << "no fault ever injected — dead sweep";
}

// Same sweep through the streaming-cursor surface: open + drain under
// faults either matches the reference drain or fails structured.
TEST_F(FaultSweepTest, CursorDrainUnderFaultsIsCorrectOrStructured) {
  const uint64_t cases = EnvOr("INCDB_FAULT_CURSOR_CASES", 60);
  std::mt19937_64 rng(7);
  RandomQueryGen gen(rng);
  FaultInjector& fi = FaultInjector::Global();

  for (uint64_t i = 0; i < cases; ++i) {
    Database db = RandomDatabase(rng, 3 + i % 4);
    AlgPtr q = gen.Gen(2);
    Session sess(std::move(db));
    auto pq = sess.Prepare(q, EvalMode::kSetSql);
    if (!pq.ok()) continue;
    auto ref = pq->Execute();
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();

    fi.Configure(/*seed=*/i * 31 + 5, /*rate=*/0.1);
    auto cur = pq->OpenCursor();
    if (cur.ok()) {
      Relation drained(cur->attrs());
      while (cur->Next()) {
        ASSERT_TRUE(drained.Insert(cur->row(), cur->count()).ok());
      }
      fi.Disable();
      if (cur->status().ok()) {
        EXPECT_TRUE(ref->SameRows(drained))
            << "case " << i << ": cursor drained but diverged for "
            << q->ToString();
      } else {
        EXPECT_TRUE(StructuredFaultOutcome(cur->status()))
            << "case " << i << ": " << cur->status().ToString();
      }
    } else {
      fi.Disable();
      EXPECT_TRUE(StructuredFaultOutcome(cur.status()))
          << "case " << i << ": " << cur.status().ToString();
    }
    auto after = pq->Execute();
    ASSERT_TRUE(after.ok()) << "case " << i << ": session unusable after "
                            << "cursor fault";
    EXPECT_TRUE(ref->SameRows(*after));
  }
}

// Parallel execution under faults: injected errors inside pool workers
// must propagate as structured statuses and leave the leaked pool
// reusable for the next (fault-free) run.
TEST_F(FaultSweepTest, ParallelPipelinesUnderFaultsStayReusable) {
  Database db;
  Relation l({"a", "b"}), r({"c", "d"});
  std::mt19937_64 rng(3);
  for (int i = 0; i < 400; ++i) {
    l.Add({Value::Int(i), Value::Int(static_cast<int64_t>(rng() % 16))});
    r.Add({Value::Int(i), Value::Int(static_cast<int64_t>(rng() % 16))});
  }
  db.Put("L", std::move(l));
  db.Put("Rr", std::move(r));
  AlgPtr q = Project(Select(Product(Scan("L"), Scan("Rr")), CEq("b", "d")),
                     {"a", "c"});
  EvalOptions par;
  par.num_threads = 4;
  par.use_result_cache = false;
  Session sess(std::move(db), par);
  auto pq = sess.Prepare(q, EvalMode::kSetSql);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  auto ref = pq->Execute();
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  FaultInjector& fi = FaultInjector::Global();
  for (uint64_t fseed = 1; fseed <= 12; ++fseed) {
    fi.Configure(fseed, 0.2);
    auto res = pq->Execute();
    fi.Disable();
    if (res.ok()) {
      EXPECT_TRUE(ref->SameRows(*res)) << "fault_seed " << fseed;
    } else {
      EXPECT_TRUE(StructuredFaultOutcome(res.status()))
          << "fault_seed " << fseed << ": " << res.status().ToString();
    }
    auto after = pq->Execute();
    ASSERT_TRUE(after.ok()) << "pool poisoned by fault_seed " << fseed;
    EXPECT_TRUE(ref->SameRows(*after));
  }
}

// Determinism contract the reproduction workflow rests on: re-arming with
// the same (seed, rate) replays the same outcome for a single-threaded
// query, down to the error message.
TEST_F(FaultSweepTest, SameSeedReplaysSameOutcome) {
  Database db = testing_util::FigureOne(false);
  Session sess(std::move(db), [] {
    EvalOptions o;
    o.use_result_cache = false;  // a cache hit would skip the roll sites
    return o;
  }());
  auto pq = sess.Prepare("SELECT oid FROM Orders WHERE price > 30");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  FaultInjector& fi = FaultInjector::Global();
  for (uint64_t fseed : {3u, 99u, 2026u}) {
    fi.Configure(fseed, 0.3);
    auto first = pq->Execute();
    fi.Configure(fseed, 0.3);
    auto second = pq->Execute();
    fi.Disable();
    ASSERT_EQ(first.ok(), second.ok()) << "fault_seed " << fseed;
    if (!first.ok()) {
      EXPECT_EQ(first.status().code(), second.status().code());
      EXPECT_EQ(first.status().message(), second.status().message());
    }
  }
}

}  // namespace
}  // namespace incdb
