// Tests for src/logic: Kleene truth tables (Fig. 3), knowledge order,
// the six-valued epistemic logic and Theorem 5.3, many-valued FO
// semantics (§5.1–5.2), Corollary 5.2 and the Boolean-FO capture
// (Theorems 5.4/5.5).

#include <gtest/gtest.h>

#include "certain/certain.h"
#include "logic/capture.h"
#include "logic/fo_eval.h"
#include "logic/kleene.h"
#include "logic/sixvalued.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

constexpr TV3 kT3 = TV3::kT;
constexpr TV3 kF3 = TV3::kF;
constexpr TV3 kU3 = TV3::kU;

// --- Figure 3: Kleene's truth tables, exhaustively ---------------------------

TEST(KleeneTest, FigureThreeTables) {
  // ∧ : t f u / f f f / u f u
  EXPECT_EQ(Kleene::And(kT3, kT3), kT3);
  EXPECT_EQ(Kleene::And(kT3, kF3), kF3);
  EXPECT_EQ(Kleene::And(kT3, kU3), kU3);
  EXPECT_EQ(Kleene::And(kF3, kT3), kF3);
  EXPECT_EQ(Kleene::And(kF3, kF3), kF3);
  EXPECT_EQ(Kleene::And(kF3, kU3), kF3);
  EXPECT_EQ(Kleene::And(kU3, kT3), kU3);
  EXPECT_EQ(Kleene::And(kU3, kF3), kF3);
  EXPECT_EQ(Kleene::And(kU3, kU3), kU3);
  // ∨ : t t t / t f u / t u u
  EXPECT_EQ(Kleene::Or(kT3, kT3), kT3);
  EXPECT_EQ(Kleene::Or(kT3, kF3), kT3);
  EXPECT_EQ(Kleene::Or(kT3, kU3), kT3);
  EXPECT_EQ(Kleene::Or(kF3, kT3), kT3);
  EXPECT_EQ(Kleene::Or(kF3, kF3), kF3);
  EXPECT_EQ(Kleene::Or(kF3, kU3), kU3);
  EXPECT_EQ(Kleene::Or(kU3, kT3), kT3);
  EXPECT_EQ(Kleene::Or(kU3, kF3), kU3);
  EXPECT_EQ(Kleene::Or(kU3, kU3), kU3);
  // ¬ : t↦f, f↦t, u↦u
  EXPECT_EQ(Kleene::Not(kT3), kF3);
  EXPECT_EQ(Kleene::Not(kF3), kT3);
  EXPECT_EQ(Kleene::Not(kU3), kU3);
}

TEST(KleeneTest, AssertCollapsesToBoolean) {
  EXPECT_EQ(Kleene::Assert(kT3), kT3);
  EXPECT_EQ(Kleene::Assert(kF3), kF3);
  EXPECT_EQ(Kleene::Assert(kU3), kF3);
}

TEST(KnowledgeOrderTest, UIsLeastTandFIncomparable) {
  EXPECT_TRUE(KnowledgeLeq(kU3, kT3));
  EXPECT_TRUE(KnowledgeLeq(kU3, kF3));
  EXPECT_TRUE(KnowledgeLeq(kT3, kT3));
  EXPECT_FALSE(KnowledgeLeq(kT3, kF3));
  EXPECT_FALSE(KnowledgeLeq(kF3, kT3));
  EXPECT_FALSE(KnowledgeLeq(kT3, kU3));
}

TEST(KnowledgeOrderTest, KleeneConnectivesAreMonotone) {
  // §5.1 condition (2): if τ1 ⪯ τ1' and τ2 ⪯ τ2' then ω(τ1,τ2) ⪯
  // ω(τ1',τ2'). Exhaustive over all pairs.
  const TV3 all[] = {kF3, kU3, kT3};
  for (TV3 a : all) {
    for (TV3 a2 : all) {
      if (!KnowledgeLeq(a, a2)) continue;
      EXPECT_TRUE(KnowledgeLeq(Kleene::Not(a), Kleene::Not(a2)));
      for (TV3 b : all) {
        for (TV3 b2 : all) {
          if (!KnowledgeLeq(b, b2)) continue;
          EXPECT_TRUE(KnowledgeLeq(Kleene::And(a, b), Kleene::And(a2, b2)));
          EXPECT_TRUE(KnowledgeLeq(Kleene::Or(a, b), Kleene::Or(a2, b2)));
        }
      }
    }
  }
}

TEST(KnowledgeOrderTest, AssertBreaksMonotonicity) {
  // §5.2 conclusion: u ⪯ t but ↑u = f ⪯̸ t = ↑t. The culprit behind SQL's
  // almost-certainly-false answers.
  EXPECT_TRUE(KnowledgeLeq(kU3, kT3));
  EXPECT_FALSE(KnowledgeLeq(Kleene::Assert(kU3), Kleene::Assert(kT3)));
}

// --- L6v: derivation from the epistemic semantics ------------------------------

TEST(SixValuedTest, TablesMatchFirstPrinciplesDerivation) {
  // Every cached table entry equals the most general consistent value.
  const TV6 all[] = {TV6::kF, TV6::kSF, TV6::kS,
                     TV6::kU, TV6::kST, TV6::kT};
  for (TV6 a : all) {
    auto nn = MostGeneral(ConsistentNot(a));
    ASSERT_TRUE(nn.has_value());
    EXPECT_EQ(Six::Not(a), *nn);
    for (TV6 b : all) {
      auto aa = MostGeneral(ConsistentAnd(a, b));
      auto oo = MostGeneral(ConsistentOr(a, b));
      ASSERT_TRUE(aa.has_value()) << ToString(a) << "," << ToString(b);
      ASSERT_TRUE(oo.has_value());
      EXPECT_EQ(Six::And(a, b), *aa);
      EXPECT_EQ(Six::Or(a, b), *oo);
    }
  }
}

TEST(SixValuedTest, SpotChecks) {
  // Known entries: negation swaps st/sf, fixes s and u.
  EXPECT_EQ(Six::Not(TV6::kT), TV6::kF);
  EXPECT_EQ(Six::Not(TV6::kST), TV6::kSF);
  EXPECT_EQ(Six::Not(TV6::kS), TV6::kS);
  EXPECT_EQ(Six::Not(TV6::kU), TV6::kU);
  // t ∧ x = x for x ∈ {t, f, s, st, sf} (t is the ∧-identity on
  // knowledge-definite values).
  EXPECT_EQ(Six::And(TV6::kT, TV6::kS), TV6::kS);
  EXPECT_EQ(Six::And(TV6::kT, TV6::kST), TV6::kST);
  // f dominates ∧.
  for (TV6 x : {TV6::kT, TV6::kS, TV6::kST, TV6::kSF, TV6::kU}) {
    EXPECT_EQ(Six::And(TV6::kF, x), TV6::kF) << ToString(x);
  }
}

TEST(SixValuedTest, RestrictionToTFUIsKleene) {
  // The {t, f, u} fragment of L6v is exactly Kleene's logic.
  const TV6 three[] = {TV6::kT, TV6::kF, TV6::kU};
  auto to3 = [](TV6 v) { return *Restrict(v); };
  for (TV6 a : three) {
    EXPECT_EQ(to3(Six::Not(a)), Kleene::Not(to3(a)));
    for (TV6 b : three) {
      ASSERT_TRUE(Restrict(Six::And(a, b)).has_value());
      EXPECT_EQ(to3(Six::And(a, b)), Kleene::And(to3(a), to3(b)));
      EXPECT_EQ(to3(Six::Or(a, b)), Kleene::Or(to3(a), to3(b)));
    }
  }
}

TEST(SixValuedTest, L6vIsNeitherDistributiveNorIdempotent) {
  Sublogic full{{TV6::kF, TV6::kSF, TV6::kS, TV6::kU, TV6::kST, TV6::kT}};
  EXPECT_TRUE(full.Closed());
  EXPECT_FALSE(full.Idempotent());
  EXPECT_FALSE(full.Distributive());
}

TEST(SixValuedTest, TheoremFiveThreeKleeneIsMaximal) {
  // Theorem 5.3: {t, f, u} is closed, distributive and idempotent, and
  // every strictly larger subset of L6v values fails one of the three.
  Sublogic kleene{{TV6::kT, TV6::kF, TV6::kU}};
  EXPECT_TRUE(kleene.Closed());
  EXPECT_TRUE(kleene.Idempotent());
  EXPECT_TRUE(kleene.Distributive());

  const TV6 extras[] = {TV6::kS, TV6::kST, TV6::kSF};
  // All supersets of {t,f,u} within the 6 values: add any non-empty
  // subset of the extras.
  for (int mask = 1; mask < 8; ++mask) {
    Sublogic candidate{{TV6::kT, TV6::kF, TV6::kU}};
    for (int i = 0; i < 3; ++i) {
      if (mask & (1 << i)) candidate.values.push_back(extras[i]);
    }
    bool good = candidate.Closed() && candidate.Idempotent() &&
                candidate.Distributive();
    EXPECT_FALSE(good) << "superset with mask " << mask
                       << " should fail Theorem 5.3 maximality";
  }
}

TEST(SixValuedTest, KnowledgeOrderOnSix) {
  EXPECT_TRUE(KnowledgeLeq(TV6::kU, TV6::kT));
  EXPECT_TRUE(KnowledgeLeq(TV6::kST, TV6::kT));
  EXPECT_TRUE(KnowledgeLeq(TV6::kST, TV6::kS));
  EXPECT_TRUE(KnowledgeLeq(TV6::kSF, TV6::kF));
  EXPECT_FALSE(KnowledgeLeq(TV6::kST, TV6::kF));
  EXPECT_FALSE(KnowledgeLeq(TV6::kT, TV6::kS));
}

// --- Many-valued FO evaluation --------------------------------------------------

class FOEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation r({"a", "b"});
    r.Add({Value::Int(1), Value::Null(1)});
    r.Add({Value::Int(2), Value::Int(3)});
    db_.Put("R", r);
  }
  Database db_;
};

TEST_F(FOEvalTest, BoolSemanticsIsSyntactic) {
  // R(1, ⊥1) is t; R(1, 1) is f under ⟦·⟧bool (eq. 12).
  auto t1 = EvalFO(FAtom("R", {Term::Const(Value::Int(1)),
                               Term::Const(Value::Null(1))}),
                   db_, {}, MixedSemantics::Bool());
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(*t1, kT3);
  auto t2 = EvalFO(FAtom("R", {Term::Const(Value::Int(1)),
                               Term::Const(Value::Int(1))}),
                   db_, {}, MixedSemantics::Bool());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(*t2, kF3);
}

TEST_F(FOEvalTest, UnifSemanticsReportsUnknownOnUnifiableMiss) {
  // §5.1 example: with R(1, ⊥1), the atom R(1, 1) is u (it unifies) while
  // R(9, 9) is f (nothing unifies).
  MixedSemantics unif = MixedSemantics::Unif();
  auto u = EvalFO(FAtom("R", {Term::Const(Value::Int(1)),
                              Term::Const(Value::Int(1))}),
                  db_, {}, unif);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*u, kU3);
  auto f = EvalFO(FAtom("R", {Term::Const(Value::Int(9)),
                              Term::Const(Value::Int(9))}),
                  db_, {}, unif);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, kF3);
}

TEST_F(FOEvalTest, NullfreeEquality) {
  MixedSemantics sql = MixedSemantics::Sql();
  auto u = EvalFO(FEq(Term::Const(Value::Null(1)),
                      Term::Const(Value::Null(1))),
                  db_, {}, sql);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*u, kU3);  // SQL: NULL = NULL is unknown
  auto t = EvalFO(FEq(Term::Const(Value::Int(3)),
                      Term::Const(Value::Int(3))),
                  db_, {}, sql);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, kT3);
}

TEST_F(FOEvalTest, QuantifiersFoldOverActiveDomain) {
  // ∃x R(x, 3) is t (witness 2); ∀x R(x, 3) is f.
  FormulaPtr exists =
      FExists("x", FAtom("R", {Term::Var("x"), Term::Const(Value::Int(3))}));
  auto t = EvalFO(exists, db_, {}, MixedSemantics::Bool());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, kT3);
  FormulaPtr forall =
      FForall("x", FAtom("R", {Term::Var("x"), Term::Const(Value::Int(3))}));
  auto f = EvalFO(forall, db_, {}, MixedSemantics::Bool());
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, kF3);
}

TEST_F(FOEvalTest, UnboundVariableIsError) {
  auto res = EvalFO(FAtom("R", {Term::Var("x"), Term::Var("y")}), db_, {},
                    MixedSemantics::Bool());
  EXPECT_FALSE(res.ok());
}

TEST_F(FOEvalTest, FreeVariablesAndAnswers) {
  FormulaPtr f = FExists(
      "y", FAtom("R", {Term::Var("x"), Term::Var("y")}));
  EXPECT_EQ(FreeVariables(f), std::vector<std::string>{"x"});
  auto answers =
      AnswersWithTruthValue(f, db_, MixedSemantics::Bool(), kT3);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->Contains(Tuple{Value::Int(1)}));
  EXPECT_TRUE(answers->Contains(Tuple{Value::Int(2)}));
  EXPECT_FALSE(answers->Contains(Tuple{Value::Int(3)}));
}

// --- Corollary 5.2: the unif semantics has correctness guarantees ---------------

TEST(UnifCorrectnessTest, TrueAnswersAreCertain) {
  // For formulas mirroring the query zoo: if ⟦φ⟧unif = t on ā then ā ∈
  // cert⊥(φ, D). We check with the R−S difference formula
  // φ(x) = T(x) ∧ ¬∃y (S(x, y)) over random databases.
  std::mt19937_64 rng(31);
  for (int round = 0; round < 15; ++round) {
    Database db = testing_util::RandomDatabase(rng, 3, 3, 2);
    FormulaPtr phi =
        FAnd(FAtom("T", {Term::Var("x")}),
             FNot(FExists("y", FAtom("S", {Term::Var("x"), Term::Var("y")}))));
    auto answers =
        AnswersWithTruthValue(phi, db, MixedSemantics::Unif(), kT3);
    ASSERT_TRUE(answers.ok());
    // Equivalent algebra query: T − π_{S_a}(S).
    AlgPtr q = Diff(Scan("T"), Rename(Project(Scan("S"), {"S_a"}), {"T_a"}));
    auto cert = CertWithNulls(q, db);
    ASSERT_TRUE(cert.ok());
    for (const Tuple& t : answers->SortedTuples()) {
      EXPECT_TRUE(cert->Contains(t))
          << "⟦φ⟧unif = t but not certain: " << t.ToString();
    }
  }
}

// --- Theorems 5.4 / 5.5: Boolean FO captures the many-valued logics -------------

TEST(UnifiabilityFormulaTest, MatchesSyntacticUnifiability) {
  // The FO encoding of r̄ ⇑ s̄ agrees with Unifiable() on all pairs of
  // tuples over a small domain with repeated nulls.
  std::vector<Value> domain = {Value::Int(1), Value::Int(2), Value::Null(1),
                               Value::Null(2)};
  Database db;
  Relation dummy({"x"});
  for (const Value& v : domain) dummy.Add({v});
  db.Put("D", dummy);

  std::vector<Term> xs = {Term::Var("x1"), Term::Var("x2")};
  std::vector<Term> ys = {Term::Var("y1"), Term::Var("y2")};
  auto formula = UnifiabilityFormula(xs, ys);
  ASSERT_TRUE(formula.ok());

  for (const Value& a1 : domain) {
    for (const Value& a2 : domain) {
      for (const Value& b1 : domain) {
        for (const Value& b2 : domain) {
          Assignment asg = {{"x1", a1}, {"x2", a2}, {"y1", b1}, {"y2", b2}};
          auto res = EvalBoolFO(*formula, db, asg);
          ASSERT_TRUE(res.ok());
          Tuple r{a1, a2}, s{b1, b2};
          EXPECT_EQ(*res, Unifiable(r, s))
              << r.ToString() << " vs " << s.ToString();
        }
      }
    }
  }
}

class CaptureTest : public ::testing::TestWithParam<int> {
 protected:
  // A small pool of FO(L3v↑) formulas with one free variable x.
  static std::vector<FormulaPtr> Formulas() {
    Term x = Term::Var("x");
    Term y = Term::Var("y");
    std::vector<FormulaPtr> out;
    out.push_back(FAtom("T", {x}));
    out.push_back(FNot(FAtom("T", {x})));
    out.push_back(FExists("y", FAtom("R", {x, y})));
    out.push_back(FNot(FExists("y", FAtom("S", {x, y}))));
    out.push_back(FAnd(FAtom("T", {x}),
                       FNot(FExists("y", FAtom("R", {x, y})))));
    out.push_back(FOr(FEq(x, Term::Const(Value::Int(1))),
                      FNot(FEq(x, Term::Const(Value::Int(1))))));
    out.push_back(FForall("y", FOr(FNot(FAtom("R", {x, y})),
                                   FAtom("T", {y}))));
    out.push_back(FAssert(FExists("y", FAtom("R", {x, y}))));
    out.push_back(FNot(FAssert(FEq(x, Term::Const(Value::Int(0))))));
    return out;
  }
};

TEST_P(CaptureTest, TranslationAgreesWithManyValuedSemantics) {
  std::mt19937_64 rng(GetParam());
  Database db = testing_util::RandomDatabase(rng, 3, 3, 2);
  for (const MixedSemantics& sem :
       {MixedSemantics::Bool(), MixedSemantics::Sql(),
        MixedSemantics::Unif()}) {
    for (const FormulaPtr& phi : Formulas()) {
      for (TV3 tau : {kT3, kF3, kU3}) {
        auto psi = CaptureTranslate(phi, sem, tau);
        ASSERT_TRUE(psi.ok()) << phi->ToString();
        for (const Value& a : db.ActiveDomain()) {
          Assignment asg = {{"x", a}};
          auto mv = EvalFO(phi, db, asg, sem);
          auto bl = EvalBoolFO(*psi, db, asg);
          ASSERT_TRUE(mv.ok() && bl.ok()) << phi->ToString();
          EXPECT_EQ(*mv == tau, *bl)
              << "φ = " << phi->ToString() << ", τ = " << ToString(tau)
              << ", x = " << a.ToString() << ", sem relations "
              << static_cast<int>(sem.relations);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CaptureTest, ::testing::Values(1, 2, 3, 4));

TEST(FormulaTest, ToStringAndFragments) {
  Term x = Term::Var("x");
  FormulaPtr ucq = FExists("y", FAnd(FAtom("R", {x, Term::Var("y")}),
                                     FAtom("T", {Term::Var("y")})));
  EXPECT_TRUE(IsExistentialPositive(ucq));
  EXPECT_FALSE(IsExistentialPositive(FNot(ucq)));
  FormulaPtr guarded = FGuardedForall(
      {"y"}, FAtom("R", {x, Term::Var("y")}), FAtom("T", {Term::Var("y")}));
  EXPECT_TRUE(IsPosForallGFormula(guarded));
  EXPECT_EQ(guarded->ToString(), "∀y (¬R(x, y) ∨ T(y))");
}

}  // namespace
}  // namespace incdb
