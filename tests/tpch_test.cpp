// Tests for src/tpch: generator determinism, scaling, null injection, and
// the benchmark workload queries.

#include <gtest/gtest.h>

#include "approx/approx.h"
#include "eval/eval.h"
#include "tpch/tpch.h"

namespace incdb {
namespace {

TEST(TpchGenTest, DeterministicInSeed) {
  tpch::GenOptions opts;
  opts.scale = 0.2;
  opts.null_rate = 0.1;
  Database a = tpch::Generate(opts);
  Database b = tpch::Generate(opts);
  EXPECT_TRUE(a == b);
  opts.seed = 43;
  Database c = tpch::Generate(opts);
  EXPECT_FALSE(a == c);
}

TEST(TpchGenTest, ScaleControlsSizes) {
  tpch::GenOptions small;
  small.scale = 0.1;
  tpch::GenOptions large;
  large.scale = 1.0;
  Database s = tpch::Generate(small);
  Database l = tpch::Generate(large);
  EXPECT_LT(s.at("orders").TotalSize(), l.at("orders").TotalSize());
  EXPECT_EQ(l.at("orders").TotalSize(), 1500u);
  EXPECT_EQ(l.at("lineitem").TotalSize(), 6000u);
  EXPECT_EQ(l.at("customer").TotalSize(), 150u);
}

TEST(TpchGenTest, NullRateInjection) {
  tpch::GenOptions clean;
  clean.null_rate = 0.0;
  EXPECT_TRUE(tpch::Generate(clean).IsComplete());

  tpch::GenOptions dirty;
  dirty.null_rate = 0.2;
  Database db = tpch::Generate(dirty);
  EXPECT_FALSE(db.IsComplete());
  // Keys are never nulled: every o_orderkey is a constant.
  auto okey = db.at("orders").AttrIndex("o_orderkey");
  ASSERT_TRUE(okey.ok());
  for (const auto& [t, c] : db.at("orders").rows()) {
    EXPECT_TRUE(t[*okey].is_const());
  }
  // Injected nulls are all distinct (Codd-style injection).
  size_t null_occurrences = 0;
  for (const auto& [name, rel] : db.relations()) {
    for (const auto& [t, c] : rel.rows()) {
      for (const Value& v : t.values()) {
        if (v.is_null()) ++null_occurrences;
      }
    }
  }
  EXPECT_EQ(null_occurrences, db.NullIds().size());
  // Rough rate check: nullable cells ≈ 14 per 25+150+100+200+1500+6000
  // rows... just assert it is within a loose band of expectation.
  EXPECT_GT(null_occurrences, 100u);
}

TEST(TpchWorkloadTest, AllQueriesValidateAndRun) {
  tpch::GenOptions opts;
  opts.scale = 0.2;
  opts.null_rate = 0.05;
  Database db = tpch::Generate(opts);
  for (const tpch::BenchQuery& bq : tpch::Workload()) {
    auto attrs = OutputAttrs(bq.algebra, db);
    ASSERT_TRUE(attrs.ok()) << bq.name << ": " << attrs.status().ToString();
    auto sql = EvalSql(bq.algebra, db);
    ASSERT_TRUE(sql.ok()) << bq.name;
    auto naive = EvalSet(bq.algebra, db);
    ASSERT_TRUE(naive.ok()) << bq.name;
  }
}

TEST(TpchWorkloadTest, QueriesTranslateThroughFig2b) {
  tpch::GenOptions opts;
  opts.scale = 0.1;
  opts.null_rate = 0.05;
  Database db = tpch::Generate(opts);
  for (const tpch::BenchQuery& bq : tpch::Workload()) {
    auto plus = EvalPlus(bq.algebra, db);
    ASSERT_TRUE(plus.ok()) << bq.name << ": " << plus.status().ToString();
    auto maybe = EvalMaybe(bq.algebra, db);
    ASSERT_TRUE(maybe.ok()) << bq.name;
    // Q+ ⊆ Q? (certain answers are possible).
    for (const Tuple& t : plus->SortedTuples()) {
      EXPECT_TRUE(maybe->Contains(t)) << bq.name << " " << t.ToString();
    }
  }
}

TEST(TpchWorkloadTest, NegationQueriesShrinkUnderSql) {
  // On a database with nulls, SQL's NOT IN answers are a subset of the
  // naive ones (every u-comparison eliminates rows).
  tpch::GenOptions opts;
  opts.scale = 0.2;
  opts.null_rate = 0.1;
  Database db = tpch::Generate(opts);
  auto workload = tpch::Workload();
  const tpch::BenchQuery& w1 = workload[0];  // W1 unshipped-orders
  auto sql = EvalSql(w1.algebra, db);
  auto naive = EvalSet(w1.algebra, db);
  ASSERT_TRUE(sql.ok() && naive.ok());
  EXPECT_TRUE(sql->SubBagOf(*naive));
}

class NullRateSweep : public ::testing::TestWithParam<int> {};

TEST_P(NullRateSweep, InvariantsAcrossIncompletenessLevels) {
  // At every incompleteness level: keys stay constant, SQL ⊆ naive on the
  // NOT IN query, Q+ ⊆ Q? pointwise, and the generator stays
  // deterministic.
  double rate = GetParam() / 100.0;
  tpch::GenOptions opts;
  opts.scale = 0.1;
  opts.null_rate = rate;
  Database db = tpch::Generate(opts);
  EXPECT_TRUE(db == tpch::Generate(opts));
  auto okey = db.at("orders").AttrIndex("o_orderkey");
  ASSERT_TRUE(okey.ok());
  for (const auto& [t, c] : db.at("orders").rows()) {
    EXPECT_TRUE(t[*okey].is_const());
  }
  const tpch::BenchQuery w1 = tpch::Workload()[0];
  auto sql = EvalSql(w1.algebra, db);
  auto naive = EvalSet(w1.algebra, db);
  auto plus = EvalPlus(w1.algebra, db);
  auto maybe = EvalMaybe(w1.algebra, db);
  ASSERT_TRUE(sql.ok() && naive.ok() && plus.ok() && maybe.ok());
  EXPECT_TRUE(sql->SubBagOf(*naive));
  EXPECT_TRUE(plus->SubBagOf(*maybe));
  if (rate == 0.0) {
    // Complete data: all four agree.
    EXPECT_TRUE(sql->SameRows(*naive));
    EXPECT_TRUE(plus->SameRows(*naive));
    EXPECT_TRUE(maybe->SameRows(*naive));
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, NullRateSweep,
                         ::testing::Values(0, 2, 5, 10, 20, 40));

}  // namespace
}  // namespace incdb
