// Tests for the order-comparison extension (paper §6, "Types of
// attributes"): <, ≤, >, ≥ in selection conditions, treated like
// disequalities by the θ* guards, supported by the SQL frontend, and
// rejected by the exact (genericity-based) certainty machinery.

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "core/valuation.h"
#include "approx/approx.h"
#include "certain/certain.h"
#include "eval/eval.h"
#include "prob/prob.h"
#include "sql/translate.h"

namespace incdb {
namespace {

TEST(OrderCondTest, CompareConstSemantics) {
  EXPECT_LT(CompareConst(Value::Int(1), Value::Int(2)), 0);
  EXPECT_EQ(CompareConst(Value::Int(2), Value::Int(2)), 0);
  EXPECT_GT(CompareConst(Value::Int(3), Value::Int(2)), 0);
  // Numeric across kinds: 1 < 1.5 < 2.
  EXPECT_LT(CompareConst(Value::Int(1), Value::Double(1.5)), 0);
  EXPECT_GT(CompareConst(Value::Int(2), Value::Double(1.5)), 0);
  EXPECT_EQ(CompareConst(Value::Int(2), Value::Double(2.0)), 0);
  // Strings lexicographic.
  EXPECT_LT(CompareConst(Value::String("abc"), Value::String("abd")), 0);
}

TEST(OrderCondTest, EvaluationModes) {
  std::vector<std::string> attrs{"a", "b"};
  Tuple consts{Value::Int(1), Value::Int(5)};
  Tuple with_null{Value::Int(1), Value::Null(0)};
  auto eval = [&](const CondPtr& c, const Tuple& t, CondMode m) {
    auto f = CompileCond(c, attrs, m);
    EXPECT_TRUE(f.ok());
    return (*f)(t);
  };
  // Constants: classical.
  EXPECT_EQ(eval(CLt("a", "b"), consts, CondMode::kSql), TV3::kT);
  EXPECT_EQ(eval(CLt("b", "a"), consts, CondMode::kSql), TV3::kF);
  EXPECT_EQ(eval(CLec("a", Value::Int(1)), consts, CondMode::kSql), TV3::kT);
  EXPECT_EQ(eval(CGtc("a", Value::Int(1)), consts, CondMode::kSql), TV3::kF);
  EXPECT_EQ(eval(CGec("a", Value::Int(1)), consts, CondMode::kSql), TV3::kT);
  // Nulls: u under SQL/unif, conservative f under naive.
  EXPECT_EQ(eval(CLt("a", "b"), with_null, CondMode::kSql), TV3::kU);
  EXPECT_EQ(eval(CLt("a", "b"), with_null, CondMode::kUnif), TV3::kU);
  EXPECT_EQ(eval(CLt("a", "b"), with_null, CondMode::kNaive), TV3::kF);
}

TEST(OrderCondTest, NegationFlipsAndSwaps) {
  EXPECT_EQ(Negate(CLt("a", "b"))->ToString(), "b ≤ a");
  EXPECT_EQ(Negate(CLe("a", "b"))->ToString(), "b < a");
  EXPECT_EQ(Negate(CLtc("a", Value::Int(3)))->ToString(), "a ≥ 3");
  EXPECT_EQ(Negate(CGec("a", Value::Int(3)))->ToString(), "a < 3");
  // Involution.
  CondPtr c = CAnd(CLt("a", "b"), CGtc("a", Value::Int(0)));
  EXPECT_EQ(Negate(Negate(c))->ToString(), c->ToString());
}

TEST(OrderCondTest, StarTranslationGuards) {
  CondPtr star = StarTranslate(CLtc("a", Value::Int(3)));
  EXPECT_EQ(star->ToString(), "(a < 3 ∧ const(a))");
  CondPtr star2 = StarTranslate(CLe("a", "b"));
  EXPECT_EQ(star2->ToString(), "(a ≤ b ∧ (const(a) ∧ const(b)))");
}

class OrderApproxTest : public ::testing::Test {
 protected:
  // R(x) = {3, 7, ⊥1}.
  void SetUp() override {
    Relation r({"x"});
    r.Add({Value::Int(3)});
    r.Add({Value::Int(7)});
    r.Add({Value::Null(1)});
    db_.Put("R", r);
  }
  Database db_;
};

TEST_F(OrderApproxTest, PlusKeepsOnlyDefiniteMatches) {
  // σ_{x < 5}(R): certainly 3; possibly also ⊥1.
  AlgPtr q = Select(Scan("R"), CLtc("x", Value::Int(5)));
  auto plus = EvalPlus(q, db_);
  auto maybe = EvalMaybe(q, db_);
  ASSERT_TRUE(plus.ok() && maybe.ok());
  EXPECT_EQ(plus->SortedTuples(), std::vector<Tuple>{Tuple{Value::Int(3)}});
  EXPECT_EQ(maybe->SortedTuples(),
            (std::vector<Tuple>{Tuple{Value::Null(1)}, Tuple{Value::Int(3)}}));
  // SQL agrees with Q+ here (both drop the u row).
  auto sql = EvalSql(q, db_);
  ASSERT_TRUE(sql.ok());
  EXPECT_TRUE(sql->SameRows(*plus));
}

TEST_F(OrderApproxTest, RangeDifferenceIsSound) {
  // Q = σ_{x<5}(R) − σ_{x>2}(R) — the range split leaves nothing certain
  // below 5 and above 2 simultaneously... manual reasoning: any v(⊥1)
  // either <5&>2 (both sides), or not. Q+ must be ⊆ every world's answer.
  AlgPtr q = Diff(Select(Scan("R"), CLtc("x", Value::Int(5))),
                  Select(Scan("R"), CGtc("x", Value::Int(2))));
  auto plus = EvalPlus(q, db_);
  ASSERT_TRUE(plus.ok());
  for (int64_t v : {0, 3, 4, 5, 6, 100}) {
    Valuation val;
    val.Set(1, Value::Int(v));
    auto world = EvalSet(q, val.ApplySet(db_));
    ASSERT_TRUE(world.ok());
    for (const Tuple& t : plus->SortedTuples()) {
      EXPECT_TRUE(world->Contains(val.Apply(t)))
          << "v(⊥1)=" << v << " missing " << t.ToString();
    }
  }
}

TEST_F(OrderApproxTest, ExactMachineryRejectsOrderQueries) {
  AlgPtr q = Select(Scan("R"), CLtc("x", Value::Int(5)));
  EXPECT_EQ(CertWithNulls(q, db_).status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(CertIntersection(q, db_).status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(
      BagMultiplicityBounds(q, db_, Tuple{Value::Int(3)}).status().code(),
      StatusCode::kUnsupported);
  EXPECT_EQ(MuK(q, db_, Tuple{Value::Int(3)}, 5).status().code(),
            StatusCode::kUnsupported);
}

TEST_F(OrderApproxTest, FragmentClassification) {
  AlgPtr q = Select(Scan("R"), CLtc("x", Value::Int(5)));
  EXPECT_FALSE(IsPositive(q));  // behaves like a disequality
  EXPECT_TRUE(QueryHasOrderComparison(q));
  EXPECT_FALSE(QueryHasOrderComparison(
      Select(Scan("R"), CEqc("x", Value::Int(5)))));
}

// --- SQL frontend ---------------------------------------------------------------

class OrderSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation orders({"oid", "price"});
    orders.Add({Value::String("o1"), Value::Int(30)});
    orders.Add({Value::String("o2"), Value::Int(35)});
    orders.Add({Value::String("o3"), Value::Null(1)});
    db_.Put("Orders", std::move(orders));
  }
  Database db_;
};

TEST_F(OrderSqlTest, ComparisonOperatorsParseAndEvaluate) {
  auto alg = ParseSqlToAlgebra(
      "SELECT oid FROM Orders WHERE price >= 35", db_);
  ASSERT_TRUE(alg.ok()) << alg.status().ToString();
  auto res = EvalSql(*alg, db_);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->SortedTuples(),
            std::vector<Tuple>{Tuple{Value::String("o2")}});
  // o3's NULL price is u → dropped by SQL; Q? keeps it as possible.
  auto maybe = EvalMaybe(*alg, db_);
  ASSERT_TRUE(maybe.ok());
  EXPECT_TRUE(maybe->Contains(Tuple{Value::String("o3")}));
}

TEST_F(OrderSqlTest, BetweenStyleConjunction) {
  auto alg = ParseSqlToAlgebra(
      "SELECT oid FROM Orders WHERE price > 20 AND price < 32", db_);
  ASSERT_TRUE(alg.ok());
  auto res = EvalSql(*alg, db_);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->SortedTuples(),
            std::vector<Tuple>{Tuple{Value::String("o1")}});
}

TEST_F(OrderSqlTest, UnionChains) {
  auto alg = ParseSqlToAlgebra(
      "SELECT oid FROM Orders WHERE price < 32 UNION "
      "SELECT oid FROM Orders WHERE price > 32",
      db_);
  ASSERT_TRUE(alg.ok()) << alg.status().ToString();
  auto res = EvalSql(*alg, db_);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->SortedTuples().size(), 2u);  // o1 and o2; o3 unknown
  // Arity mismatch is rejected.
  EXPECT_FALSE(ParseSqlToAlgebra(
                   "SELECT oid FROM Orders UNION "
                   "SELECT oid, price FROM Orders",
                   db_)
                   .ok());
}

TEST_F(OrderSqlTest, NotPropagationOverOrder) {
  // NOT price < 32 ≡ price ≥ 32 in 3VL (Kleene negation swaps bounds).
  auto a = ParseSqlToAlgebra(
      "SELECT oid FROM Orders WHERE NOT price < 32", db_);
  auto b = ParseSqlToAlgebra(
      "SELECT oid FROM Orders WHERE price >= 32", db_);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ra = EvalSql(*a, db_);
  auto rb = EvalSql(*b, db_);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_TRUE(ra->SameRows(*rb));
}

}  // namespace
}  // namespace incdb
