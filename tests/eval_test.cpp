// Tests for src/eval: naive set evaluation, bag evaluation and the SQL 3VL
// evaluator, including the paper's §1 motivating examples (Figure 1).
// The Figure-1 fixture runs through the Session facade (algebra-prepare
// path); the remaining tests cover the EvalSet/EvalBag/EvalSql shims.

#include <gtest/gtest.h>

#include "api/session.h"
#include "eval/eval.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;

Tuple Str(const std::string& s) { return Tuple{Value::String(s)}; }

// --- The paper's running example (§1) ---------------------------------------

class FigureOneTest : public ::testing::Test {
 protected:
  // Unpaid orders: π_oid(Orders) NOT IN π_oid(Payments).
  AlgPtr UnpaidOrders() {
    return NotInPredicate(Project(Scan("Orders"), {"oid"}),
                          Rename(Project(Scan("Payments"), {"oid"}),
                                 {"poid"}),
                          {"oid"}, {"poid"}, CTrue());
  }
  // Customers without a paid order: NOT EXISTS (orders joined payments).
  AlgPtr CustomersNoPaidOrder() {
    AlgPtr sub = Join(Rename(Scan("Orders"), {"o_oid", "title", "price"}),
                      Rename(Scan("Payments"), {"p_cid", "p_oid"}),
                      CEq("p_oid", "o_oid"));
    return Project(Antijoin(Scan("Customers"), sub, CEq("cid", "p_cid")),
                   {"cid"});
  }
};

TEST_F(FigureOneTest, CompleteDatabaseBehavesClassically) {
  Session sess(FigureOne(false));
  auto unpaid = sess.Prepare(UnpaidOrders());
  ASSERT_TRUE(unpaid.ok()) << unpaid.status().ToString();
  auto r1 = unpaid->Execute();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->SortedTuples(), std::vector<Tuple>{Str("o3")});

  auto nopaid = sess.Prepare(CustomersNoPaidOrder());
  ASSERT_TRUE(nopaid.ok());
  auto r2 = nopaid->Execute();
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->Empty());
}

TEST_F(FigureOneTest, OneNullFlipsBothAnswers) {
  // The paper's headline: replace one value by NULL and SQL both *misses*
  // an answer (unpaid orders loses o3 — a false negative w.r.t. SQL's own
  // complete-data behaviour) and *invents* one (c2 — a false positive
  // w.r.t. certain answers).
  Session sess(FigureOne(true));
  auto unpaid = sess.Prepare(UnpaidOrders());
  ASSERT_TRUE(unpaid.ok());
  auto r1 = unpaid->Execute();
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->Empty());  // NOT IN against a NULL wipes everything

  auto nopaid = sess.Prepare(CustomersNoPaidOrder());
  ASSERT_TRUE(nopaid.ok());
  auto r2 = nopaid->Execute();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->SortedTuples(), std::vector<Tuple>{Str("c2")});
}

TEST_F(FigureOneTest, TautologySelectionLosesC2) {
  // SELECT cid FROM Payments WHERE oid = ? OR oid <> ?  bound at 'o2'
  // returns only c1 on the NULL database; certain answer is {c1, c2}.
  Session sess(FigureOne(true));
  AlgPtr q = Project(Select(Scan("Payments"),
                            COr(CEqc("oid", Value::Param(0)),
                                CNeqc("oid", Value::Param(0)))),
                     {"cid"});
  auto pq = sess.Prepare(q);  // SQL 3VL discipline
  ASSERT_TRUE(pq.ok());
  auto res = pq->Execute({Value::String("o2")});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->SortedTuples(), std::vector<Tuple>{Str("c1")});
  // Naive evaluation (two-valued) keeps both.
  auto naive = sess.Prepare(q, EvalMode::kSetNaive);
  ASSERT_TRUE(naive.ok());
  auto r2 = naive->Execute({Value::String("o2")});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->SortedTuples().size(), 2u);
}

// --- Naive set evaluation ----------------------------------------------------

TEST(EvalSetTest, DifferenceIsSyntactic) {
  // {1} − {⊥} = {1} under naive evaluation (the §4.1 example).
  Database db;
  Relation r({"x"}), s({"x"});
  r.Add({Value::Int(1)});
  s.Add({Value::Null(0)});
  db.Put("R", r);
  db.Put("S", s);
  auto res = EvalSet(Diff(Scan("R"), Scan("S")), db);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->SortedTuples(), std::vector<Tuple>{Tuple{Value::Int(1)}});
}

TEST(EvalSetTest, NaiveEvaluationOfPathQuery) {
  // Graph {(1,⊥1), (⊥1,2)}: the conjunctive path query finds the path by
  // treating ⊥1 as a fresh constant (§4.1 opening example).
  Database db;
  Relation e({"src", "dst"});
  e.Add({Value::Int(1), Value::Null(1)});
  e.Add({Value::Null(1), Value::Int(2)});
  db.Put("E", e);
  AlgPtr q = Project(
      Select(Product(Rename(Scan("E"), {"a", "b"}),
                     Rename(Scan("E"), {"c", "d"})),
             CAnd(CAnd(CEqc("a", Value::Int(1)), CEq("b", "c")),
                  CEqc("d", Value::Int(2)))),
      {"a"});
  auto res = EvalSet(q, db);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->TotalSize(), 1u);
}

TEST(EvalSetTest, HashJoinMatchesNestedLoop) {
  // Join with equality conjunct + residual; compare against the
  // unoptimised product-then-select by using a non-equi residual form.
  Database db = FigureOne(true);
  AlgPtr joined = Join(Rename(Scan("Payments"), {"p_cid", "p_oid"}),
                       Scan("Customers"), CEq("p_cid", "cid"));
  AlgPtr manual = Select(Product(Rename(Scan("Payments"), {"p_cid", "p_oid"}),
                                 Scan("Customers")),
                         COr(CAnd(CEq("p_cid", "cid"), CTrue()), CFalse()));
  // The second form hides the equality under ∨/∧ so the fast path cannot
  // extract it — both must agree.
  auto a = EvalSet(joined, db);
  auto b = EvalSet(manual, db);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->SameRows(*b));
}

TEST(EvalSetTest, DivisionFindsUniversalMatches) {
  // Employees working on all projects.
  Database db;
  Relation works({"emp", "proj"});
  works.Add({Value::String("ann"), Value::Int(1)});
  works.Add({Value::String("ann"), Value::Int(2)});
  works.Add({Value::String("bob"), Value::Int(1)});
  Relation projects({"proj"});
  projects.Add({Value::Int(1)});
  projects.Add({Value::Int(2)});
  db.Put("Works", works);
  db.Put("Projects", projects);
  auto res = EvalSet(Division(Scan("Works"), Scan("Projects")), db);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->SortedTuples(), std::vector<Tuple>{Str("ann")});
}

TEST(EvalSetTest, AntijoinUnifyDropsUnifiableTuples) {
  Database db;
  Relation l({"a", "b"});
  l.Add({Value::Int(1), Value::Int(2)});   // unifies with (1, ⊥7)
  l.Add({Value::Int(3), Value::Int(4)});   // unifies with nothing
  l.Add({Value::Null(1), Value::Null(1)}); // unifies with (5,5)? needs eq
  Relation r({"c", "d"});
  r.Add({Value::Int(1), Value::Null(7)});
  r.Add({Value::Int(5), Value::Int(6)});
  db.Put("L", l);
  db.Put("Rr", r);
  auto res = EvalSet(AntijoinUnify(Scan("L"), Scan("Rr")), db);
  ASSERT_TRUE(res.ok());
  // (3,4): no partner. (⊥1,⊥1): (1,⊥7) unifies (⊥1↦1, ⊥7↦1) → dropped.
  EXPECT_EQ(res->SortedTuples(),
            (std::vector<Tuple>{Tuple{Value::Int(3), Value::Int(4)}}));
}

TEST(EvalSetTest, DomProducesActiveDomainPowers) {
  Database db;
  Relation r({"x"});
  r.Add({Value::Int(1)});
  r.Add({Value::Null(3)});
  db.Put("R", r);
  auto res = EvalSet(DomK(2, {Value::Int(9)}), db);
  ASSERT_TRUE(res.ok());
  // adom = {1, ⊥3} plus extra constant 9 → 3² tuples.
  EXPECT_EQ(res->TotalSize(), 9u);
}

TEST(EvalSetTest, BudgetExhaustionSurfacesAsError) {
  Database db;
  Relation r({"x"});
  for (int i = 0; i < 50; ++i) r.Add({Value::Int(i)});
  db.Put("R", r);
  EvalOptions opts;
  opts.max_tuples = 1000;
  auto res = EvalSet(DomK(3), db, opts);  // 50³ = 125000 > 1000
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

// --- Bag semantics -----------------------------------------------------------

class BagTest : public ::testing::Test {
 protected:
  Database db_;
  void SetUp() override {
    Relation r({"x"});
    r.Add({Value::Int(1)}, 3);
    r.Add({Value::Int(2)}, 1);
    Relation s({"x"});
    s.Add({Value::Int(1)}, 1);
    s.Add({Value::Int(2)}, 5);
    db_.Put("R", r);
    db_.Put("S", s);
  }
};

TEST_F(BagTest, UnionAddsMultiplicities) {
  auto res = EvalBag(Union(Scan("R"), Scan("S")), db_);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->Count(Tuple{Value::Int(1)}), 4u);
  EXPECT_EQ(res->Count(Tuple{Value::Int(2)}), 6u);
}

TEST_F(BagTest, DifferenceIsMonus) {
  auto res = EvalBag(Diff(Scan("R"), Scan("S")), db_);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->Count(Tuple{Value::Int(1)}), 2u);  // 3 − 1
  EXPECT_EQ(res->Count(Tuple{Value::Int(2)}), 0u);  // 1 − 5 → 0
}

TEST_F(BagTest, IntersectionIsMin) {
  auto res = EvalBag(Intersect(Scan("R"), Scan("S")), db_);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->Count(Tuple{Value::Int(1)}), 1u);
  EXPECT_EQ(res->Count(Tuple{Value::Int(2)}), 1u);
}

TEST_F(BagTest, ProductMultiplies) {
  auto res = EvalBag(Product(Scan("R"), Rename(Scan("S"), {"y"})), db_);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->Count(Tuple{Value::Int(1), Value::Int(2)}), 15u);  // 3·5
}

TEST_F(BagTest, ProjectionAddsUp) {
  Relation two({"a", "b"});
  two.Add({Value::Int(1), Value::Int(10)}, 2);
  two.Add({Value::Int(1), Value::Int(20)}, 3);
  db_.Put("T2", two);
  auto res = EvalBag(Project(Scan("T2"), {"a"}), db_);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->Count(Tuple{Value::Int(1)}), 5u);
}

TEST_F(BagTest, DistinctCollapses) {
  auto res = EvalBag(Distinct(Scan("R")), db_);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->IsSet());
}

TEST_F(BagTest, SetEvalIsBagEvalDeduplicatedForMonotoneOps) {
  // Union and intersection supports agree; difference deliberately does
  // NOT (bag monus keeps 1×(3−1) where set difference drops 1 — checked
  // below).
  for (const AlgPtr& q :
       {Union(Scan("R"), Scan("S")), Intersect(Scan("R"), Scan("S"))}) {
    auto set = EvalSet(q, db_);
    auto bag = EvalBag(q, db_);
    ASSERT_TRUE(set.ok() && bag.ok());
    EXPECT_TRUE(set->SameRows(bag->ToSet())) << q->ToString();
  }
  auto set_diff = EvalSet(Diff(Scan("R"), Scan("S")), db_);
  auto bag_diff = EvalBag(Diff(Scan("R"), Scan("S")), db_);
  ASSERT_TRUE(set_diff.ok() && bag_diff.ok());
  EXPECT_TRUE(set_diff->Empty());
  EXPECT_EQ(bag_diff->Count(Tuple{Value::Int(1)}), 2u);
}

// --- SQL 3VL evaluator -------------------------------------------------------

TEST(EvalSqlTest, WhereKeepsOnlyTrue) {
  Database db;
  Relation r({"x"});
  r.Add({Value::Int(1)});
  r.Add({Value::Null(0)});
  db.Put("R", r);
  // WHERE x = 1: the null row evaluates to u and is dropped.
  auto res = EvalSql(Select(Scan("R"), CEqc("x", Value::Int(1))), db);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->TotalSize(), 1u);
  // WHERE x <> 1 also drops it: SQL can produce *neither* row.
  auto res2 = EvalSql(Select(Scan("R"), CNeqc("x", Value::Int(1))), db);
  ASSERT_TRUE(res2.ok());
  EXPECT_TRUE(res2->Empty());
}

TEST(EvalSqlTest, NotInWithNullOnRightEliminatesEverything) {
  Database db;
  Relation r({"x"}), s({"y"});
  r.Add({Value::Int(1)});
  r.Add({Value::Int(2)});
  s.Add({Value::Int(9)});
  s.Add({Value::Null(0)});
  db.Put("R", r);
  db.Put("S", s);
  auto res = EvalSql(NotInPredicate(Scan("R"), Scan("S"), {"x"}, {"y"},
                                    CTrue()),
                     db);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->Empty());  // the NULL makes every comparison unknown
  // Without the null, classical answers return.
  Relation s2({"y"});
  s2.Add({Value::Int(1)});
  db.Put("S", s2);
  auto res2 = EvalSql(NotInPredicate(Scan("R"), Scan("S"), {"x"}, {"y"},
                                     CTrue()),
                      db);
  ASSERT_TRUE(res2.ok());
  EXPECT_EQ(res2->SortedTuples(), std::vector<Tuple>{Tuple{Value::Int(2)}});
}

TEST(EvalSqlTest, NullLeftOfNotIn) {
  // x NOT IN S with x NULL: false (u) unless S is empty.
  Database db;
  Relation r({"x"}), s({"y"}), empty({"y"});
  r.Add({Value::Null(0)});
  s.Add({Value::Int(1)});
  db.Put("R", r);
  db.Put("S", s);
  db.Put("E", empty);
  auto res = EvalSql(NotInPredicate(Scan("R"), Scan("S"), {"x"}, {"y"},
                                    CTrue()),
                     db);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->Empty());
  auto res2 = EvalSql(NotInPredicate(Scan("R"), Scan("E"), {"x"}, {"y"},
                                     CTrue()),
                      db);
  ASSERT_TRUE(res2.ok());
  EXPECT_EQ(res2->TotalSize(), 1u);  // NOT IN over empty set is true
}

TEST(EvalSqlTest, InRequiresDefiniteMatch) {
  Database db;
  Relation r({"x"}), s({"y"});
  r.Add({Value::Int(1)});
  r.Add({Value::Null(0)});
  s.Add({Value::Int(1)});
  s.Add({Value::Null(2)});
  db.Put("R", r);
  db.Put("S", s);
  auto res = EvalSql(InPredicate(Scan("R"), Scan("S"), {"x"}, {"y"},
                                 CTrue()),
                     db);
  ASSERT_TRUE(res.ok());
  // Only the constant 1 matches definitely; ⊥0 IN {1, ⊥2} is unknown.
  EXPECT_EQ(res->SortedTuples(), std::vector<Tuple>{Tuple{Value::Int(1)}});
}

TEST(EvalSqlTest, DoubleNegationParadox) {
  // §5.1: R−(S−T) with R = S = {1}, T = {⊥}: SQL returns {1}, yet 1 is
  // almost certainly false (µ = 0).
  Database db;
  Relation r({"x"}), s({"x"}), t({"x"});
  r.Add({Value::Int(1)});
  s.Add({Value::Int(1)});
  t.Add({Value::Null(0)});
  db.Put("R", r);
  db.Put("S", s);
  db.Put("T", t);
  // Inner output renamed to avoid the same-name restriction.
  AlgPtr q = NotInPredicate(
      Scan("R"),
      Rename(NotInPredicate(Scan("S"), Rename(Scan("T"), {"z"}), {"x"},
                            {"z"}, CTrue()),
             {"y"}),
      {"x"}, {"y"}, CTrue());
  auto res = EvalSql(q, db);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->SortedTuples(), std::vector<Tuple>{Tuple{Value::Int(1)}});
}

TEST(EvalSqlTest, SqlTupleEqTruthValues) {
  Tuple a{Value::Int(1), Value::Int(2)};
  Tuple b{Value::Int(1), Value::Int(2)};
  Tuple c{Value::Int(1), Value::Int(3)};
  Tuple d{Value::Int(1), Value::Null(0)};
  Tuple e{Value::Int(9), Value::Null(0)};
  EXPECT_EQ(SqlTupleEq(a, b), TV3::kT);
  EXPECT_EQ(SqlTupleEq(a, c), TV3::kF);
  EXPECT_EQ(SqlTupleEq(a, d), TV3::kU);  // null blocks certainty
  EXPECT_EQ(SqlTupleEq(a, e), TV3::kF);  // constant conflict dominates
}

TEST(EvalSqlTest, DivisionUnsupported) {
  Database db;
  db.Put("R", Relation({"a", "b"}));
  db.Put("S", Relation({"b"}));
  auto res = EvalSql(Division(Scan("R"), Scan("S")), db);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnsupported);
}

// --- Cross-evaluator sanity ---------------------------------------------------

TEST(EvalAgreementTest, SqlAgreesWithSetOnCompleteDatabases) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 20; ++round) {
    Database db = testing_util::RandomDatabase(rng, 4, 4, /*n_nulls=*/0);
    for (const AlgPtr& q : testing_util::QueryZoo()) {
      auto set = EvalSet(q, db);
      auto sql = EvalSql(q, db);
      ASSERT_TRUE(set.ok() && sql.ok()) << q->ToString();
      EXPECT_TRUE(set->SameRows(*sql)) << q->ToString();
    }
  }
}

TEST(EvalAgreementTest, BagSupportMatchesSetOnPositiveQueries) {
  // For the positive (monotone, difference-free) fragment, the support of
  // the bag answer equals the set answer. (With difference this fails:
  // bag monus can keep a tuple whose set difference drops it.)
  std::mt19937_64 rng(11);
  for (int round = 0; round < 20; ++round) {
    Database db = testing_util::RandomDatabase(rng, 4, 4, /*n_nulls=*/2);
    for (const AlgPtr& q : testing_util::QueryZoo(/*include_negative=*/false)) {
      auto set = EvalSet(q, db);
      auto bag = EvalBag(q, db);
      ASSERT_TRUE(set.ok() && bag.ok()) << q->ToString();
      EXPECT_TRUE(set->SameRows(bag->ToSet())) << q->ToString();
    }
  }
}

}  // namespace
}  // namespace incdb
