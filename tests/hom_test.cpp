// Tests for src/hom: homomorphism search by class (§4.1) and the induced
// semantics of incompleteness (Theorem 4.3's ⟦D⟧_H).

#include <gtest/gtest.h>

#include "certain/valuation_family.h"
#include "eval/eval.h"
#include "hom/homomorphism.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

Database Single(const std::string& rel, std::vector<Tuple> tuples,
                size_t arity) {
  Database db;
  Relation r(DefaultAttrs(arity));
  for (const Tuple& t : tuples) {
    Status st = r.Insert(t, 1);
    EXPECT_TRUE(st.ok());
  }
  db.Put(rel, std::move(r));
  return db;
}

TEST(HomTest, IdentityAndConstantFixing) {
  Database d = Single("R", {Tuple{Value::Int(1), Value::Int(2)}}, 2);
  EXPECT_TRUE(ExistsHomomorphism(d, d, HomClass::kAny));
  // Constants must map to themselves: no hom into a mismatched instance.
  Database e = Single("R", {Tuple{Value::Int(3), Value::Int(4)}}, 2);
  EXPECT_FALSE(ExistsHomomorphism(d, e, HomClass::kAny));
}

TEST(HomTest, NullsMapAnywhere) {
  Database d = Single("R", {Tuple{Value::Null(1), Value::Int(2)}}, 2);
  Database e = Single("R", {Tuple{Value::Int(7), Value::Int(2)}}, 2);
  EXPECT_TRUE(ExistsHomomorphism(d, e, HomClass::kAny));
  // Repeated marked null must map consistently.
  Database d2 = Single("R", {Tuple{Value::Null(1), Value::Null(1)}}, 2);
  Database e2 = Single("R", {Tuple{Value::Int(1), Value::Int(2)}}, 2);
  EXPECT_FALSE(ExistsHomomorphism(d2, e2, HomClass::kAny));
  Database e3 = Single("R", {Tuple{Value::Int(5), Value::Int(5)}}, 2);
  EXPECT_TRUE(ExistsHomomorphism(d2, e3, HomClass::kAny));
}

TEST(HomTest, PaperOntoButNotStrongOntoExample) {
  // §4.1: D = {R(⊥1, ⊥2)}, D' = {R(1,2), R(2,1)}; h(⊥1)=1, h(⊥2)=2 is
  // onto (image covers dom D') but not strong onto (no preimage of (2,1)).
  Database d = Single("R", {Tuple{Value::Null(1), Value::Null(2)}}, 2);
  Database e = Single("R", {Tuple{Value::Int(1), Value::Int(2)},
                            Tuple{Value::Int(2), Value::Int(1)}},
                      2);
  EXPECT_TRUE(ExistsHomomorphism(d, e, HomClass::kAny));
  EXPECT_TRUE(ExistsHomomorphism(d, e, HomClass::kOnto));
  EXPECT_FALSE(ExistsHomomorphism(d, e, HomClass::kStrongOnto));
}

TEST(HomTest, StrongOntoIsCwaPossibleWorld) {
  // ⟦D⟧ (CWA) = complete D' with a strong onto hom from D. Compare with
  // the valuation-based definition on small instances.
  Database d = Single("R", {Tuple{Value::Null(1), Value::Int(2)},
                            Tuple{Value::Int(2), Value::Int(2)}},
                      2);
  // v(⊥1) = 2 collapses both tuples.
  Database w1 = Single("R", {Tuple{Value::Int(2), Value::Int(2)}}, 2);
  EXPECT_TRUE(IsPossibleWorld(d, w1, HomClass::kStrongOnto));
  // A world with an extra fact is an OWA world but not a CWA world.
  Database w2 = Single("R", {Tuple{Value::Int(1), Value::Int(2)},
                             Tuple{Value::Int(2), Value::Int(2)},
                             Tuple{Value::Int(9), Value::Int(9)}},
                       2);
  EXPECT_TRUE(IsPossibleWorld(d, w2, HomClass::kAny));
  EXPECT_FALSE(IsPossibleWorld(d, w2, HomClass::kStrongOnto));
  // Incomplete instances are never possible worlds.
  EXPECT_FALSE(IsPossibleWorld(d, d, HomClass::kAny));
}

TEST(HomTest, CwaWorldsMatchValuationSemantics) {
  // For each valuation v in the family, v(D) must be a strong-onto world;
  // and a constant-renamed variant must not be (unless realised by some
  // other valuation).
  std::mt19937_64 rng(19);
  Database db = testing_util::RandomDatabase(rng, 3, 2, 2);
  std::set<uint64_t> ids = db.NullIds();
  std::vector<uint64_t> nulls(ids.begin(), ids.end());
  std::vector<Value> consts = FamilyConstants(db, {});
  Status st = ForEachValuation(nulls, consts, 10000, [&](const Valuation& v) {
    EXPECT_TRUE(IsPossibleWorld(db, v.ApplySet(db), HomClass::kStrongOnto))
        << v.ToString();
    return true;
  });
  ASSERT_TRUE(st.ok());
}

TEST(HomTest, MissingRelationBlocksHom) {
  Database d = Single("R", {Tuple{Value::Int(1)}}, 1);
  Database e = Single("S", {Tuple{Value::Int(1)}}, 1);
  EXPECT_FALSE(ExistsHomomorphism(d, e, HomClass::kAny));
  // An empty relation on the source is fine.
  Database d2;
  d2.Put("R", Relation(DefaultAttrs(1)));
  EXPECT_TRUE(ExistsHomomorphism(d2, e, HomClass::kAny));
}

TEST(HomTest, PreservationOfUCQUnderHomomorphisms) {
  // Sanity instance of Theorem 4.3's engine: if D → D' and a UCQ holds in
  // D (naively), it holds in D'. Checked over the query zoo's positive
  // shapes and family worlds.
  std::mt19937_64 rng(29);
  Database db = testing_util::RandomDatabase(rng, 3, 2, 2);
  std::set<uint64_t> ids = db.NullIds();
  std::vector<uint64_t> nulls(ids.begin(), ids.end());
  std::vector<Value> consts = FamilyConstants(db, {});
  for (const AlgPtr& q : testing_util::QueryZoo(/*include_negative=*/false)) {
    auto naive = EvalSet(q, db);
    ASSERT_TRUE(naive.ok());
    Status st =
        ForEachValuation(nulls, consts, 10000, [&](const Valuation& v) {
          auto world_ans = EvalSet(q, v.ApplySet(db));
          EXPECT_TRUE(world_ans.ok());
          for (const Tuple& t : naive->SortedTuples()) {
            EXPECT_TRUE(world_ans->Contains(v.Apply(t)))
                << q->ToString() << " " << t.ToString();
          }
          return !::testing::Test::HasFailure();
        });
    ASSERT_TRUE(st.ok());
  }
}

}  // namespace
}  // namespace incdb
