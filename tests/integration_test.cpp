// Cross-module integration tests: SQL text → algebra → {SQL eval, Fig. 2
// rewritings, c-table strategies, exact certain answers, probabilistic
// reading} must tell one consistent story; FO formulas and algebra
// queries expressing the same map must agree.

#include <gtest/gtest.h>

#include "api/session.h"
#include "approx/approx.h"
#include "certain/certain.h"
#include "ctables/ceval.h"
#include "logic/fo_eval.h"
#include "prob/prob.h"
#include "sql/translate.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;
using testing_util::QueryZoo;
using testing_util::RandomDatabase;

// One fact per pipeline stage, on the paper's Figure-1 database — driven
// through the Session facade: one Prepare feeds SQL evaluation, both
// approximation schemes, the exact sweep and the c-table strategies.
TEST(PipelineTest, FigureOneFullStack) {
  Session sess(FigureOne(true));
  auto pq = sess.Prepare(
      "SELECT C.cid FROM Customers C WHERE NOT EXISTS "
      "( SELECT * FROM Orders O, Payments P "
      "  WHERE C.cid = P.cid AND P.oid = O.oid )");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  const AlgPtr& alg = pq->algebra();

  auto sql = pq->Execute();                 // SQL invents c2
  auto plus = sess.CertainPlus(alg);        // Q+ sound: empty
  auto maybe = sess.CertainMaybe(alg);      // Q? complete: contains c2
  auto cert = sess.CertainWithNulls(alg);   // ground truth: empty
  auto eager = CEvalCertain(alg, sess.db(), CStrategy::kEager);
  ASSERT_TRUE(sql.ok() && plus.ok() && maybe.ok() && cert.ok() && eager.ok());

  Tuple c2{Value::String("c2")};
  EXPECT_TRUE(sql->Contains(c2));
  EXPECT_TRUE(cert->Empty());
  EXPECT_TRUE(plus->Empty());
  EXPECT_TRUE(maybe->Contains(c2));
  EXPECT_TRUE(eager->SameRows(*plus));  // Theorem 4.9 on real SQL input

  // Probabilistic reading: c2 is NOT almost-certainly-true (it is not a
  // naive answer: naive evaluation of the antijoin keeps c2? With ⊥1
  // treated as a fresh constant, no payment links c2 to an order → c2 IS
  // a naive answer and in fact almost certainly true).
  auto act = AlmostCertainlyTrue(alg, sess.db(), c2);
  ASSERT_TRUE(act.ok());
  EXPECT_TRUE(*act);
  // ...which shows the three notions are genuinely different: c2 is
  // almost certainly true yet not certain, and SQL reports it.
}

TEST(PipelineTest, DoubleNegationAlmostCertainlyFalse) {
  // §5.1's R−(S−T): SQL answers {1} although µ(Q, D, 1) = 0 — the
  // strongest form of wrongness. All correct engines exclude it.
  Database db;
  Relation r({"x"}), s({"x"}), t({"x"});
  r.Add({Value::Int(1)});
  s.Add({Value::Int(1)});
  t.Add({Value::Null(0)});
  db.Put("R", r);
  db.Put("S", s);
  db.Put("T", t);
  AlgPtr q = Diff(Scan("R"), Diff(Scan("S"), Scan("T")));
  Tuple one{Value::Int(1)};

  auto mu = MuLimit(q, db, one);
  ASSERT_TRUE(mu.ok());
  EXPECT_DOUBLE_EQ(*mu, 0.0);
  auto plus = EvalPlus(q, db);
  ASSERT_TRUE(plus.ok());
  EXPECT_FALSE(plus->Contains(one));
  for (CStrategy st : {CStrategy::kEager, CStrategy::kSemiEager,
                       CStrategy::kLazy, CStrategy::kAware}) {
    auto ct = CEvalCertain(q, db, st);
    ASSERT_TRUE(ct.ok());
    EXPECT_FALSE(ct->Contains(one)) << ToString(st);
  }
}

TEST(PipelineTest, FormulaAndAlgebraAgreeOnUnifSemantics) {
  // ⟦φ⟧unif-certain answers and Q+ are both sound for cert⊥; check all
  // three agree pairwise-soundly on random instances for the difference
  // query T(x) ∧ ¬∃y S(x, y) ≡ T − π(S).
  std::mt19937_64 rng(47);
  for (int round = 0; round < 10; ++round) {
    Database db = RandomDatabase(rng, 3, 3, 2);
    FormulaPtr phi =
        FAnd(FAtom("T", {Term::Var("x")}),
             FNot(FExists("y", FAtom("S", {Term::Var("x"), Term::Var("y")}))));
    AlgPtr q = Diff(Scan("T"), Rename(Project(Scan("S"), {"S_a"}), {"T_a"}));
    auto unif_t =
        AnswersWithTruthValue(phi, db, MixedSemantics::Unif(), TV3::kT);
    auto plus = EvalPlus(q, db);
    auto cert = CertWithNulls(q, db);
    ASSERT_TRUE(unif_t.ok() && plus.ok() && cert.ok());
    for (const Tuple& t : unif_t->SortedTuples()) {
      EXPECT_TRUE(cert->Contains(t)) << "unif-t not certain";
    }
    for (const Tuple& t : plus->SortedTuples()) {
      EXPECT_TRUE(cert->Contains(t)) << "Q+ not certain";
    }
  }
}

TEST(PipelineTest, CoddificationChangesAnswers) {
  // §6 "Marked nulls": evaluating after Codd-ification loses the
  // repeated-null information. Query σ_{a=b}(R) with R = {(⊥1, ⊥1)}:
  // certain with marked nulls, not certain after Codd-ification.
  Database db;
  Relation r({"a", "b"});
  r.Add({Value::Null(1), Value::Null(1)});
  db.Put("R", r);
  AlgPtr q = Select(Scan("R"), CEq("a", "b"));
  auto cert_marked = CertWithNulls(q, db);
  ASSERT_TRUE(cert_marked.ok());
  EXPECT_EQ(cert_marked->TotalSize(), 1u);

  Database codd = db.CoddifyNulls();
  auto cert_codd = CertWithNulls(q, codd);
  ASSERT_TRUE(cert_codd.ok());
  EXPECT_TRUE(cert_codd->Empty());
}

TEST(PipelineTest, BagPlusIsSoundForBagBounds) {
  // The bag-evaluated Q+ never overshoots the exact minimal multiplicity
  // (Theorem 4.8's left inequality), across the zoo — a bag-vs-set
  // integration check complementing the unit tests.
  std::mt19937_64 rng(53);
  for (int round = 0; round < 4; ++round) {
    Database db = RandomDatabase(rng, 2, 3, 2);
    for (const AlgPtr& q : QueryZoo()) {
      auto plus_q = TranslatePlus(q, db);
      ASSERT_TRUE(plus_q.ok());
      auto plus = EvalBag(*plus_q, db);
      ASSERT_TRUE(plus.ok());
      for (const auto& [t, c] : plus->rows()) {
        auto bounds = BagMultiplicityBounds(q, db, t);
        ASSERT_TRUE(bounds.ok());
        EXPECT_LE(c, bounds->min) << q->ToString() << " " << t.ToString();
      }
    }
  }
}

TEST(PipelineTest, SqlAnswersAreAlmostCertainlyTrueForPlainWhere) {
  // §5.2: for FO(L3v) *without* the assertion operator in subqueries —
  // operationally, queries whose SQL translation has no nested NOT IN /
  // NOT EXISTS — every SQL answer is almost certainly true (µ = 1).
  Database db = FigureOne(true);
  auto alg = ParseSqlToAlgebra(
      "SELECT cid FROM Payments WHERE oid = 'o2' OR oid <> 'o2'", db);
  ASSERT_TRUE(alg.ok());
  auto sql = EvalSql(*alg, db);
  ASSERT_TRUE(sql.ok());
  for (const Tuple& t : sql->SortedTuples()) {
    auto act = AlmostCertainlyTrue(*alg, db, t);
    ASSERT_TRUE(act.ok());
    EXPECT_TRUE(*act) << t.ToString();
  }
}

}  // namespace
}  // namespace incdb
