// Tests for src/core/io: CSV import/export of incomplete relations,
// including the `_k` marked-null syntax plain SQL dumps cannot express.

#include <gtest/gtest.h>

#include "core/io.h"

namespace incdb {
namespace {

TEST(IoTest, LoadBasicTypes) {
  auto rel = LoadRelationCsv(
      "id,name,score\n"
      "1,'ann',3.5\n"
      "2,bob,4\n");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->attrs(), (std::vector<std::string>{"id", "name", "score"}));
  EXPECT_EQ(rel->TotalSize(), 2u);
  EXPECT_TRUE(rel->Contains(
      Tuple{Value::Int(1), Value::String("ann"), Value::Double(3.5)}));
  EXPECT_TRUE(rel->Contains(
      Tuple{Value::Int(2), Value::String("bob"), Value::Int(4)}));
}

TEST(IoTest, FreshAndMarkedNulls) {
  auto rel = LoadRelationCsv(
      "a,b\n"
      "NULL,_7\n"
      "_7,NULL\n",
      /*first_fresh_null=*/100);
  ASSERT_TRUE(rel.ok());
  // Two fresh NULLs got ids 100 and 101; _7 is the same marked null twice.
  EXPECT_TRUE(rel->Contains(Tuple{Value::Null(100), Value::Null(7)}));
  EXPECT_TRUE(rel->Contains(Tuple{Value::Null(7), Value::Null(101)}));
}

TEST(IoTest, Errors) {
  EXPECT_FALSE(LoadRelationCsv("").ok());
  EXPECT_FALSE(LoadRelationCsv("a,b\n1\n").ok());       // cell count
  EXPECT_FALSE(LoadRelationCsv("a,b\n1,,\n").ok());     // cell count again
  EXPECT_FALSE(LoadRelationCsv("a,\n1,2\n").ok());      // empty attr name
  auto empty_cell = LoadRelationCsv("a,b\n1,\n");
  EXPECT_FALSE(empty_cell.ok());                        // empty cell value
}

TEST(IoTest, QuotedCommasAndSpaces) {
  auto rel = LoadRelationCsv(
      "a,b\n"
      " 'x, y' , 3 \n");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(rel->Contains(Tuple{Value::String("x, y"), Value::Int(3)}));
}

TEST(IoTest, RoundTrip) {
  Relation rel({"x", "y"});
  rel.Add({Value::Int(-3), Value::String("a b")});
  rel.Add({Value::Null(4), Value::Null(4)});
  rel.Add({Value::Double(2.5), Value::Int(7)}, 2);  // multiplicity 2
  std::string dumped = DumpRelationCsv(rel);
  auto back = LoadRelationCsv(dumped);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->SameRows(rel)) << dumped;
}

}  // namespace
}  // namespace incdb
