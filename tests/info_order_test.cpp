// Tests for src/certain/info_order: the information pre-order ⪯ (§3.1)
// and information-based certain answers certO (§3.2, Props. 3.4 and 3.8).

#include <gtest/gtest.h>

#include "certain/info_order.h"
#include "certain/valuation_family.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

Database Unary(std::vector<Value> values) {
  Database db;
  Relation r({"x"});
  for (const Value& v : values) {
    Status st = r.Insert(Tuple{v}, 1);
    EXPECT_TRUE(st.ok());
  }
  db.Put("R", r.ToSet());
  return db;
}

TEST(InfoOrderTest, NullIsLessInformativeThanConstant) {
  // {R(⊥1)} ⪯ {R(1)}: every world of the right is a world of the left.
  Database incomplete = Unary({Value::Null(1)});
  Database complete = Unary({Value::Int(1)});
  EXPECT_TRUE(InformationLeq(incomplete, complete));
  EXPECT_FALSE(InformationLeq(complete, incomplete));
}

TEST(InfoOrderTest, ReflexiveAndTransitiveOnSamples) {
  std::mt19937_64 rng(61);
  std::vector<Database> dbs;
  for (int i = 0; i < 4; ++i) {
    dbs.push_back(testing_util::RandomDatabase(rng, 2, 2, 2));
  }
  for (const Database& d : dbs) EXPECT_TRUE(InformationLeq(d, d));
  for (const Database& a : dbs) {
    for (const Database& b : dbs) {
      for (const Database& c : dbs) {
        if (InformationLeq(a, b) && InformationLeq(b, c)) {
          EXPECT_TRUE(InformationLeq(a, c));
        }
      }
    }
  }
}

TEST(InfoOrderTest, InstantiationIncreasesInformation) {
  // D ⪯ v(D) for any (partial) valuation v.
  std::mt19937_64 rng(67);
  Database db = testing_util::RandomDatabase(rng, 3, 2, 2);
  std::set<uint64_t> ids = db.NullIds();
  std::vector<uint64_t> nulls(ids.begin(), ids.end());
  std::vector<Value> consts = FamilyConstants(db, {});
  Status st = ForEachValuation(nulls, consts, 2000, [&](const Valuation& v) {
    EXPECT_TRUE(InformationLeq(db, v.ApplySet(db))) << v.ToString();
    return !::testing::Test::HasFailure();
  });
  ASSERT_TRUE(st.ok());
}

TEST(InfoOrderTest, GlbNullFreeIsIntersection) {
  Relation a({"x"});
  a.Add({Value::Int(1)});
  a.Add({Value::Int(2)});
  Relation b({"x"});
  b.Add({Value::Int(2)});
  b.Add({Value::Int(3)});
  auto glb = GlbNullFree({a, b});
  ASSERT_TRUE(glb.ok());
  EXPECT_EQ(glb->SortedTuples(), std::vector<Tuple>{Tuple{Value::Int(2)}});
  // The glb is below both inputs in ⪯ (as single-relation databases).
  Database da, dbb, dg;
  da.Put("R", a);
  dbb.Put("R", b);
  dg.Put("R", *glb);
  EXPECT_TRUE(InformationLeq(dg, da));
  EXPECT_TRUE(InformationLeq(dg, dbb));
}

TEST(InfoOrderTest, GlbRejectsNullsAndEmptyFamily) {
  Relation bad({"x"});
  bad.Add({Value::Null(1)});
  EXPECT_FALSE(GlbNullFree({bad, bad}).ok());
  EXPECT_FALSE(GlbNullFree({}).ok());
}

TEST(InfoOrderTest, CertInfoBasedEqualsCertIntersection) {
  // Proposition 3.8, by construction — but also check both against the
  // definition: certO must be a lower bound of every world's answer.
  std::mt19937_64 rng(73);
  for (int round = 0; round < 5; ++round) {
    Database db = testing_util::RandomDatabase(rng, 3, 3, 2);
    for (const AlgPtr& q : testing_util::QueryZoo()) {
      auto info = CertInfoBased(q, db);
      auto inter = CertIntersection(q, db);
      ASSERT_TRUE(info.ok() && inter.ok());
      EXPECT_TRUE(info->SameRows(*inter)) << q->ToString();
    }
  }
}

TEST(InfoOrderTest, Proposition34Monotonicity) {
  // x ⪯ y ⟹ certO(Q, x) ⪯ certO(Q, y); with null-free answers ⪯ is ⊆.
  // Build y from x by instantiating one null.
  std::mt19937_64 rng(79);
  for (int round = 0; round < 5; ++round) {
    Database x = testing_util::RandomDatabase(rng, 3, 2, 2);
    std::set<uint64_t> ids = x.NullIds();
    if (ids.empty()) continue;
    Valuation v;
    v.Set(*ids.begin(), Value::Int(0));
    Database y = v.ApplySet(x);
    ASSERT_TRUE(InformationLeq(x, y));
    for (const AlgPtr& q : testing_util::QueryZoo()) {
      // ⟦y⟧ ⊆ ⟦x⟧, so the intersection over y's (fewer) worlds can only
      // grow — monotonicity holds for arbitrary generic queries here.
      auto cx = CertInfoBased(q, x);
      auto cy = CertInfoBased(q, y);
      ASSERT_TRUE(cx.ok() && cy.ok()) << q->ToString();
      EXPECT_TRUE(cx->SubBagOf(*cy))
          << q->ToString() << "\n x: " << cx->ToString()
          << "\n y: " << cy->ToString();
    }
  }
}

}  // namespace
}  // namespace incdb
