// Differential query fuzzer: seeded random algebra queries
// (tests/testing_util.h RandomQueryGen) evaluated through the compiled
// physical-plan pipeline — across all three modes, every rewrite-pass
// toggle and num_threads ∈ {1, 2, 8} — must agree with a naive reference
// walk that shares nothing with the plan layer (no lowering, no rewrite
// passes, no hashing fast paths, no thread pool: just nested loops over
// the algebra tree).
//
// Environment knobs (all optional; see BUILDING.md "Differential fuzzer"):
//   INCDB_FUZZ_SEED      base RNG seed (default 20260730)
//   INCDB_FUZZ_CASES     cases per mode (default 500)
//   INCDB_FUZZ_THREADS   one extra thread count to test (CI uses 4)
//   INCDB_FUZZ_BATCH     force EvalOptions::batch_size on every config
//                        (CI runs the whole matrix once with 1024)

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "algebra/builder.h"
#include "api/session.h"
#include "eval/eval.h"
#include "eval/plan.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::EnvOr;
using testing_util::FuzzBatchOverride;
using testing_util::RandomBagDatabase;
using testing_util::RandomDatabase;
using testing_util::RandomQueryGen;

// ---------------------------------------------------------------------------
// The reference walk. Deliberately dumb: linear scans instead of hash
// lookups, materialised products, per-node condition evaluation — obvious
// enough to trust against the paper's definitions (§4.1 naive set, §4.2
// bags, §5.2 SQL 3VL).

CondMode RefCondMode(EvalMode mode) {
  return mode == EvalMode::kSetSql ? CondMode::kSql : CondMode::kNaive;
}

bool RefSetSemantics(EvalMode mode) { return mode != EvalMode::kBagNaive; }

/// Occurrences of `t` in `rel` by linear scan (syntactic equality).
uint64_t RefCount(const Relation& rel, const Tuple& t) {
  uint64_t n = 0;
  for (const auto& [s, c] : rel.rows()) {
    if (s == t) n += c;
  }
  return n;
}

StatusOr<Relation> RefEval(const AlgPtr& q, const Database& db,
                           EvalMode mode);

StatusOr<std::function<TV3(const Tuple&)>> RefPred(
    const CondPtr& c, const std::vector<std::string>& attrs, EvalMode mode) {
  return CompileCond(c, attrs, RefCondMode(mode));
}

/// σ_θ-style EXISTS probe shared by semijoin/antijoin.
StatusOr<Relation> RefSemiAnti(const AlgPtr& q, const Database& db,
                               EvalMode mode, bool anti) {
  auto l = RefEval(q->left, db, mode);
  if (!l.ok()) return l;
  auto r = RefEval(q->right, db, mode);
  if (!r.ok()) return r;
  std::vector<std::string> joint = l->attrs();
  joint.insert(joint.end(), r->attrs().begin(), r->attrs().end());
  auto pred = RefPred(q->cond, joint, mode);
  if (!pred.ok()) return pred.status();
  Relation out(l->attrs());
  for (const auto& [lt, lc] : l->rows()) {
    bool exists = false;
    for (const auto& [rt, rc] : r->rows()) {
      Tuple pair = lt;
      for (size_t i = 0; i < rt.arity(); ++i) pair.Append(rt[i]);
      if ((*pred)(pair) == TV3::kT) {
        exists = true;
        break;
      }
    }
    if (exists != anti) {
      INCDB_RETURN_IF_ERROR(
          out.Insert(lt, RefSetSemantics(mode) ? 1 : lc));
    }
  }
  return out;
}

StatusOr<Relation> RefInPredicate(const AlgPtr& q, const Database& db,
                                  EvalMode mode, bool negated) {
  auto l = RefEval(q->left, db, mode);
  if (!l.ok()) return l;
  auto r = RefEval(q->right, db, mode);
  if (!r.ok()) return r;
  std::vector<std::string> joint = l->attrs();
  joint.insert(joint.end(), r->attrs().begin(), r->attrs().end());
  auto pred = RefPred(q->cond, joint, mode);
  if (!pred.ok()) return pred.status();
  std::vector<size_t> lpos, rpos;
  for (const std::string& a : q->attrs) {
    size_t i = IndexOf(l->attrs(), a);
    if (i == l->attrs().size()) return Status::NotFound("IN column " + a);
    lpos.push_back(i);
  }
  for (const std::string& a : q->attrs2) {
    size_t i = IndexOf(r->attrs(), a);
    if (i == r->attrs().size()) return Status::NotFound("IN column " + a);
    rpos.push_back(i);
  }
  const bool sql = mode == EvalMode::kSetSql;
  Relation out(l->attrs());
  for (const auto& [lt, lc] : l->rows()) {
    Tuple lkey = lt.Project(lpos);
    bool exists_t = false;
    bool all_f = true;
    for (const auto& [rt, rc] : r->rows()) {
      Tuple pair = lt;
      for (size_t i = 0; i < rt.arity(); ++i) pair.Append(rt[i]);
      if ((*pred)(pair) != TV3::kT) continue;
      Tuple rkey = rt.Project(rpos);
      if (sql) {
        TV3 tv = SqlTupleEq(lkey, rkey);
        if (tv == TV3::kT) exists_t = true;
        if (tv != TV3::kF) all_f = false;
      } else if (lkey == rkey) {
        exists_t = true;
        all_f = false;
      }
    }
    if (negated ? all_f : exists_t) {
      INCDB_RETURN_IF_ERROR(
          out.Insert(lt, RefSetSemantics(mode) ? 1 : lc));
    }
  }
  return out;
}

StatusOr<Relation> RefEval(const AlgPtr& q, const Database& db,
                           EvalMode mode) {
  const bool set = RefSetSemantics(mode);
  const bool sql = mode == EvalMode::kSetSql;
  switch (q->kind) {
    case OpKind::kScan: {
      auto rel = db.Get(q->rel_name);
      if (!rel.ok()) return rel;
      return set ? rel->ToSet() : *rel;
    }
    case OpKind::kSelect: {
      auto in = RefEval(q->left, db, mode);
      if (!in.ok()) return in;
      auto pred = RefPred(q->cond, in->attrs(), mode);
      if (!pred.ok()) return pred.status();
      Relation out(in->attrs());
      for (const auto& [t, c] : in->rows()) {
        if ((*pred)(t) == TV3::kT) INCDB_RETURN_IF_ERROR(out.Insert(t, c));
      }
      return out;
    }
    case OpKind::kProject: {
      auto in = RefEval(q->left, db, mode);
      if (!in.ok()) return in;
      std::vector<size_t> pos;
      for (const std::string& a : q->attrs) {
        size_t i = IndexOf(in->attrs(), a);
        if (i == in->attrs().size()) {
          return Status::NotFound("projection attribute " + a);
        }
        pos.push_back(i);
      }
      Relation out(q->attrs);
      for (const auto& [t, c] : in->rows()) {
        INCDB_RETURN_IF_ERROR(out.Insert(t.Project(pos), c));
      }
      if (set) out = out.ToSet();
      return out;
    }
    case OpKind::kRename: {
      auto in = RefEval(q->left, db, mode);
      if (!in.ok()) return in;
      Relation out = *in;
      INCDB_RETURN_IF_ERROR(out.RenameAttrs(q->attrs));
      return out;
    }
    case OpKind::kProduct:
    case OpKind::kJoin: {
      auto l = RefEval(q->left, db, mode);
      if (!l.ok()) return l;
      auto r = RefEval(q->right, db, mode);
      if (!r.ok()) return r;
      std::vector<std::string> joint = l->attrs();
      joint.insert(joint.end(), r->attrs().begin(), r->attrs().end());
      CondPtr cond = q->kind == OpKind::kJoin ? q->cond : CTrue();
      auto pred = RefPred(cond, joint, mode);
      if (!pred.ok()) return pred.status();
      Relation out(joint);
      for (const auto& [lt, lc] : l->rows()) {
        for (const auto& [rt, rc] : r->rows()) {
          Tuple pair = lt;
          for (size_t i = 0; i < rt.arity(); ++i) pair.Append(rt[i]);
          if ((*pred)(pair) == TV3::kT) {
            INCDB_RETURN_IF_ERROR(out.Insert(pair, set ? 1 : lc * rc));
          }
        }
      }
      return out;
    }
    case OpKind::kUnion: {
      auto l = RefEval(q->left, db, mode);
      if (!l.ok()) return l;
      auto r = RefEval(q->right, db, mode);
      if (!r.ok()) return r;
      Relation out = *l;
      for (const auto& [t, c] : r->rows()) {
        INCDB_RETURN_IF_ERROR(out.Insert(t, c));
      }
      if (set) out = out.ToSet();
      return out;
    }
    case OpKind::kDifference: {
      auto l = RefEval(q->left, db, mode);
      if (!l.ok()) return l;
      auto r = RefEval(q->right, db, mode);
      if (!r.ok()) return r;
      Relation out(l->attrs());
      for (const auto& [t, c] : l->rows()) {
        if (sql) {
          // NOT IN: keep only when every pairwise comparison is kF.
          bool keep = true;
          for (const auto& [s, sc] : r->rows()) {
            if (SqlTupleEq(t, s) != TV3::kF) {
              keep = false;
              break;
            }
          }
          if (keep) INCDB_RETURN_IF_ERROR(out.Insert(t, 1));
        } else {
          uint64_t rc = RefCount(*r, t);
          if (set) {
            if (rc == 0) INCDB_RETURN_IF_ERROR(out.Insert(t, 1));
          } else if (c > rc) {
            INCDB_RETURN_IF_ERROR(out.Insert(t, c - rc));
          }
        }
      }
      return out;
    }
    case OpKind::kIntersect: {
      auto l = RefEval(q->left, db, mode);
      if (!l.ok()) return l;
      auto r = RefEval(q->right, db, mode);
      if (!r.ok()) return r;
      Relation out(l->attrs());
      for (const auto& [t, c] : l->rows()) {
        if (sql) {
          // IN: keep when some pairwise comparison is kT.
          for (const auto& [s, sc] : r->rows()) {
            if (SqlTupleEq(t, s) == TV3::kT) {
              INCDB_RETURN_IF_ERROR(out.Insert(t, 1));
              break;
            }
          }
        } else {
          uint64_t rc = RefCount(*r, t);
          if (rc > 0) {
            INCDB_RETURN_IF_ERROR(
                out.Insert(t, set ? 1 : std::min(c, rc)));
          }
        }
      }
      return out;
    }
    case OpKind::kAntijoinUnify: {
      auto l = RefEval(q->left, db, mode);
      if (!l.ok()) return l;
      auto r = RefEval(q->right, db, mode);
      if (!r.ok()) return r;
      Relation out(l->attrs());
      for (const auto& [t, c] : l->rows()) {
        bool unifiable = false;
        for (const auto& [s, sc] : r->rows()) {
          if (Unifiable(t, s)) {
            unifiable = true;
            break;
          }
        }
        if (!unifiable) {
          INCDB_RETURN_IF_ERROR(out.Insert(t, set ? 1 : c));
        }
      }
      return out;
    }
    case OpKind::kSemijoin:
      return RefSemiAnti(q, db, mode, /*anti=*/false);
    case OpKind::kAntijoin:
      return RefSemiAnti(q, db, mode, /*anti=*/true);
    case OpKind::kIn:
      return RefInPredicate(q, db, mode, /*negated=*/false);
    case OpKind::kNotIn:
      return RefInPredicate(q, db, mode, /*negated=*/true);
    case OpKind::kDistinct: {
      auto in = RefEval(q->left, db, mode);
      if (!in.ok()) return in;
      return in->ToSet();
    }
    default:
      return Status::Unsupported("reference walk: operator not generated");
  }
}

// ---------------------------------------------------------------------------
// The differential loop.

struct FuzzConfig {
  std::string label;
  EvalOptions opts;
};

/// Every rewrite pass individually off, everything on, everything off —
/// the matrix the plan layer must be invisible on — crossed with the
/// tested thread counts (parallel_min_rows = 0 forces the parallel
/// operators even on fuzz-sized inputs).
std::vector<FuzzConfig> FuzzConfigs() {
  std::vector<size_t> thread_counts = {1, 2, 8};
  if (uint64_t extra = EnvOr("INCDB_FUZZ_THREADS", 0)) {
    thread_counts.push_back(extra);
  }
  std::vector<std::pair<std::string, EvalOptions>> bases;
  bases.push_back({"all", EvalOptions{}});
  {
    EvalOptions o;
    o.enable_hash_join = false;
    bases.push_back({"-hash", o});
  }
  {
    EvalOptions o;
    o.enable_or_expansion = false;
    bases.push_back({"-or", o});
  }
  {
    EvalOptions o;
    o.enable_projection_fusion = false;
    bases.push_back({"-fusion", o});
  }
  {
    EvalOptions o;
    o.enable_unify_index = false;
    bases.push_back({"-unify", o});
  }
  {
    EvalOptions o;
    o.enable_selection_pushdown = false;
    bases.push_back({"-pushdown", o});
  }
  {
    EvalOptions o;
    o.enable_hash_join = false;
    o.enable_or_expansion = false;
    o.enable_projection_fusion = false;
    o.enable_unify_index = false;
    o.enable_selection_pushdown = false;
    bases.push_back({"none", o});
  }
  const uint64_t forced_batch = FuzzBatchOverride();
  std::vector<FuzzConfig> configs;
  for (const auto& [name, base] : bases) {
    for (size_t threads : thread_counts) {
      EvalOptions o = base;
      o.num_threads = threads;
      o.parallel_min_rows = 0;
      if (forced_batch > 0) o.batch_size = forced_batch;
      configs.push_back(
          {name + "/t" + std::to_string(threads), o});
    }
  }
  // The vectorized-executor matrix: legacy tuple-at-a-time (0), the
  // degenerate single-row batch (1), a deliberately awkward window that
  // straddles every boundary (3), and the default (1024, already covered
  // by the base configs above). Bit-identity across all of them is the
  // batching contract.
  for (size_t batch : {size_t{0}, size_t{1}, size_t{3}}) {
    for (size_t threads : thread_counts) {
      EvalOptions o;
      o.num_threads = threads;
      o.parallel_min_rows = 0;
      o.batch_size = batch;
      configs.push_back({"all/b" + std::to_string(batch) + "/t" +
                             std::to_string(threads),
                         o});
    }
  }
  return configs;
}

void RunDifferential(EvalMode mode,
                     StatusOr<Relation> (*eval)(const AlgPtr&,
                                                const Database&,
                                                const EvalOptions&)) {
  const uint64_t seed = EnvOr("INCDB_FUZZ_SEED", 20260730);
  const uint64_t cases = EnvOr("INCDB_FUZZ_CASES", 500);
  std::mt19937_64 rng(seed ^ (static_cast<uint64_t>(mode) << 32));
  RandomQueryGen gen(rng);
  const std::vector<FuzzConfig> configs = FuzzConfigs();
  for (uint64_t i = 0; i < cases; ++i) {
    const size_t tuples = 3 + i % 4;
    Database db = (i % 2 == 0) ? RandomDatabase(rng, tuples)
                               : RandomBagDatabase(rng, tuples);
    AlgPtr q = gen.Gen(2 + static_cast<int>(i % 3));
    auto ref = RefEval(q, db, mode);
    ASSERT_TRUE(ref.ok()) << "case " << i << " reference failed for "
                          << q->ToString() << ": "
                          << ref.status().ToString();
    for (const FuzzConfig& cfg : configs) {
      auto res = eval(q, db, cfg.opts);
      ASSERT_TRUE(res.ok())
          << "case " << i << " [" << cfg.label << "] failed for "
          << q->ToString() << ": " << res.status().ToString();
      ASSERT_TRUE(ref->SameRows(*res))
          << "case " << i << " [" << cfg.label << "] diverges for "
          << q->ToString() << "\nreference:\n"
          << ref->ToString() << "\nplan:\n"
          << res->ToString();
      ASSERT_EQ(ref->attrs(), res->attrs())
          << "case " << i << " [" << cfg.label << "] schema diverges for "
          << q->ToString();
    }
  }
}

TEST(FuzzDiffTest, SetModeAgreesWithReferenceWalk) {
  RunDifferential(EvalMode::kSetNaive, &EvalSet);
}

TEST(FuzzDiffTest, BagModeAgreesWithReferenceWalk) {
  RunDifferential(EvalMode::kBagNaive, &EvalBag);
}

TEST(FuzzDiffTest, SqlModeAgreesWithReferenceWalk) {
  RunDifferential(EvalMode::kSetSql, &EvalSql);
}

// The result cache must be invisible: on the same corpus, a session with
// the cache on — executed twice, so the second run is served from the
// cache — returns bit-identical relations to a session with the cache
// off. A divergence means a key is too coarse (two different executions
// aliased) or a cached relation was corrupted in flight.
TEST(FuzzDiffTest, ResultCacheToggleIsBitIdentical) {
  const uint64_t seed = EnvOr("INCDB_FUZZ_SEED", 20260730);
  const uint64_t cases = EnvOr("INCDB_FUZZ_CASES", 500);
  for (EvalMode mode :
       {EvalMode::kSetNaive, EvalMode::kBagNaive, EvalMode::kSetSql}) {
    std::mt19937_64 rng(seed ^ (static_cast<uint64_t>(mode) << 32));
    RandomQueryGen gen(rng);
    uint64_t hits = 0;
    for (uint64_t i = 0; i < cases; ++i) {
      const size_t tuples = 3 + i % 4;
      Database db = (i % 2 == 0) ? RandomDatabase(rng, tuples)
                                 : RandomBagDatabase(rng, tuples);
      AlgPtr q = gen.Gen(2 + static_cast<int>(i % 3));

      EvalOptions on;
      on.use_result_cache = true;
      EvalOptions off;
      off.use_result_cache = false;
      Session cached(db, on);
      Session plain(std::move(db), off);

      auto pq_on = cached.Prepare(q, mode);
      auto pq_off = plain.Prepare(q, mode);
      ASSERT_TRUE(pq_on.ok()) << "case " << i << ": "
                              << pq_on.status().ToString();
      ASSERT_TRUE(pq_off.ok());

      auto cold = pq_on->Execute();
      auto warm = pq_on->Execute();  // same data + bindings: cache path
      auto ref = pq_off->Execute();
      ASSERT_TRUE(cold.ok() && warm.ok() && ref.ok()) << "case " << i;
      for (const Relation* r : {&*cold, &*warm}) {
        ASSERT_TRUE(ref->SameRows(*r))
            << "case " << i << " (mode " << static_cast<int>(mode)
            << ") cache-on diverges for " << q->ToString()
            << "\ncache off:\n" << ref->ToString() << "\ncache on:\n"
            << r->ToString();
        ASSERT_EQ(ref->attrs(), r->attrs()) << "case " << i;
      }
      hits += cached.stats().result_cache.hits;
    }
    EXPECT_GT(hits, 0u) << "the cache-on sessions never actually hit";
  }
}

// Incremental result maintenance must be invisible: interleave random
// row-level Mutate batches with prepared executions and cross-check the
// (possibly delta-maintained) cached result against a maintenance-free
// cold recompute after every commit. Crossed over the vectorized batch
// sizes {0, 1024} × thread counts {1, 8} — the delta propagator reuses
// the batch predicate programs, so both executors run on both paths. Set
// modes also exercise the deletion → invalidation fallback (removals are
// not insert-only maintainable there); bag mode the exact signed-delta
// path.
TEST(FuzzDiffTest, MaintainedResultsMatchColdRecompute) {
  const uint64_t seed = EnvOr("INCDB_FUZZ_SEED", 20260730);
  const uint64_t cases = EnvOr("INCDB_FUZZ_CASES", 500);
  struct Cfg {
    size_t batch;
    size_t threads;
  };
  constexpr Cfg kCfgs[] = {{0, 1}, {0, 8}, {1024, 1}, {1024, 8}};
  constexpr const char* kRels[] = {"R", "S", "T"};
  for (EvalMode mode :
       {EvalMode::kSetNaive, EvalMode::kBagNaive, EvalMode::kSetSql}) {
    std::mt19937_64 rng(seed ^ (static_cast<uint64_t>(mode) << 32) ^
                        0x9e3779b97f4a7c15ull);
    RandomQueryGen gen(rng);
    uint64_t maintained = 0;
    for (uint64_t i = 0; i < cases; ++i) {
      const Cfg cfg = kCfgs[i % 4];
      const size_t tuples = 3 + i % 4;
      Database db = (i % 2 == 0) ? RandomDatabase(rng, tuples)
                                 : RandomBagDatabase(rng, tuples);
      AlgPtr q = gen.Gen(2 + static_cast<int>(i % 3));

      EvalOptions on;
      on.batch_size = cfg.batch;
      on.num_threads = cfg.threads;
      on.parallel_min_rows = 0;
      EvalOptions off = on;
      off.use_result_cache = false;
      Session maint(db, on);
      Session plain(std::move(db), off);
      auto pq_m = maint.Prepare(q, mode);
      auto pq_p = plain.Prepare(q, mode);
      ASSERT_TRUE(pq_m.ok()) << "case " << i << ": "
                             << pq_m.status().ToString();
      ASSERT_TRUE(pq_p.ok());
      ASSERT_TRUE(pq_m->Execute().ok()) << "case " << i;  // prime the cache

      for (int round = 0; round < 3; ++round) {
        // One random row-level batch, staged identically on both sessions
        // (a Remove of an already-gone tuple is skipped on both sides —
        // Txn::Remove validates before staging, so a failed op leaves the
        // transaction untouched).
        std::vector<std::tuple<std::string, Tuple, bool>> ops;
        const size_t n_ops = 1 + rng() % 3;
        for (size_t k = 0; k < n_ops; ++k) {
          const std::string rel = kRels[rng() % 3];
          const size_t arity = rel == "T" ? 1 : 2;
          if (rng() % 2 == 0) {
            Tuple t;
            for (size_t a = 0; a < arity; ++a) {
              const uint64_t v = rng() % 5;
              t.Append(v < 3 ? Value::Int(static_cast<int64_t>(v))
                             : Value::Null(v - 3));
            }
            ops.emplace_back(rel, std::move(t), true);
          } else {
            const Relation* cur = maint.db().Find(rel);
            if (cur == nullptr || cur->Empty()) continue;
            const auto& rows = cur->rows();
            ops.emplace_back(rel, rows[rng() % rows.size()].first, false);
          }
        }
        auto apply = [&ops](Database::Txn& txn) {
          for (const auto& [rel, t, ins] : ops) {
            if (ins) {
              INCDB_RETURN_IF_ERROR(txn.Insert(rel, t));
            } else {
              txn.Remove(rel, t).ok();  // best-effort: skip absent tuples
            }
          }
          return Status::OK();
        };
        ASSERT_TRUE(maint.Mutate(apply).ok()) << "case " << i;
        ASSERT_TRUE(plain.Mutate(apply).ok()) << "case " << i;
        auto got = pq_m->Execute();
        auto want = pq_p->Execute();
        ASSERT_TRUE(got.ok() && want.ok())
            << "case " << i << " round " << round << ": "
            << got.status().ToString() << " / " << want.status().ToString();
        ASSERT_TRUE(want->SameRows(*got))
            << "case " << i << " round " << round << " (mode "
            << static_cast<int>(mode) << ", b" << cfg.batch << "/t"
            << cfg.threads << ") maintained path diverges for "
            << q->ToString() << "\ncold:\n"
            << want->ToString() << "\nmaintained:\n"
            << got->ToString();
        ASSERT_EQ(want->attrs(), got->attrs()) << "case " << i;
        // Warm re-execute: serve the maintained (or recomputed) entry.
        auto warm = pq_m->Execute();
        ASSERT_TRUE(warm.ok()) << "case " << i;
        ASSERT_TRUE(want->SameRows(*warm))
            << "case " << i << " round " << round << " warm hit diverges";
      }
      maintained += maint.stats().result_cache.maintained;
    }
    EXPECT_GT(maintained, 0u)
        << "maintenance never actually ran (mode " << static_cast<int>(mode)
        << ")";
  }
}

}  // namespace
}  // namespace incdb
