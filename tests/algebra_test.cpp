// Unit tests for src/algebra: selection conditions (negation propagation,
// θ* translation, three evaluation modes), AST validation, desugaring and
// fragment classifiers.

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "eval/eval.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;

// --- Condition construction and printing -----------------------------------

TEST(ConditionTest, ToStringRendering) {
  CondPtr c = CAnd(CEq("A", "B"), COr(CNeqc("A", Value::Int(3)),
                                      CIsNull("B")));
  EXPECT_EQ(c->ToString(), "(A = B ∧ (A ≠ 3 ∨ null(B)))");
}

TEST(ConditionTest, NegatePropagatesThroughGrammar) {
  // ¬(A = B ∧ null(A)) = A ≠ B ∨ const(A)  — the paper's §2 example.
  CondPtr c = CAnd(CEq("A", "B"), CIsNull("A"));
  EXPECT_EQ(Negate(c)->ToString(), "(A ≠ B ∨ const(A))");
}

TEST(ConditionTest, NegateIsInvolutive) {
  CondPtr c = COr(CAnd(CEqc("A", Value::Int(1)), CNeq("A", "B")),
                  CIsConst("B"));
  EXPECT_EQ(Negate(Negate(c))->ToString(), c->ToString());
}

TEST(ConditionTest, StarTranslationGuardsDisequalities) {
  // (A ≠ c)* = A ≠ c ∧ const(A);  (A ≠ B)* = A ≠ B ∧ const(A) ∧ const(B).
  CondPtr c1 = StarTranslate(CNeqc("A", Value::Int(5)));
  EXPECT_EQ(c1->ToString(), "(A ≠ 5 ∧ const(A))");
  CondPtr c2 = StarTranslate(CNeq("A", "B"));
  EXPECT_EQ(c2->ToString(), "(A ≠ B ∧ (const(A) ∧ const(B)))");
  // Equalities are untouched.
  CondPtr c3 = StarTranslate(CEq("A", "B"));
  EXPECT_EQ(c3->ToString(), "A = B");
}

TEST(ConditionTest, CondAttrsCollectsAll) {
  CondPtr c = CAnd(CEq("A", "B"), COr(CEqc("C", Value::Int(1)),
                                      CIsNull("D")));
  EXPECT_EQ(CondAttrs(c),
            (std::vector<std::string>{"A", "B", "C", "D"}));
}

// --- Condition evaluation modes --------------------------------------------

class CondModeTest : public ::testing::Test {
 protected:
  // Tuple layout: (const 1, const 2, ⊥1, ⊥1-again, ⊥2)
  std::vector<std::string> attrs_{"c1", "c2", "n1", "n1b", "n2"};
  Tuple tuple_{Value::Int(1), Value::Int(2), Value::Null(1), Value::Null(1),
               Value::Null(2)};

  TV3 Eval(const CondPtr& c, CondMode mode) {
    auto f = CompileCond(c, attrs_, mode);
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    return (*f)(tuple_);
  }
};

TEST_F(CondModeTest, NaiveIsSyntacticTwoValued) {
  EXPECT_EQ(Eval(CEq("c1", "c1"), CondMode::kNaive), TV3::kT);
  EXPECT_EQ(Eval(CEq("c1", "c2"), CondMode::kNaive), TV3::kF);
  // Marked-null identity: ⊥1 = ⊥1 true, ⊥1 = ⊥2 false, ⊥1 = 1 false.
  EXPECT_EQ(Eval(CEq("n1", "n1b"), CondMode::kNaive), TV3::kT);
  EXPECT_EQ(Eval(CEq("n1", "n2"), CondMode::kNaive), TV3::kF);
  EXPECT_EQ(Eval(CEq("n1", "c1"), CondMode::kNaive), TV3::kF);
}

TEST_F(CondModeTest, SqlModeNullsAreUnknown) {
  // Any comparison touching a null is u — even ⊥1 = ⊥1 (SQL has no marked
  // nulls).
  EXPECT_EQ(Eval(CEq("n1", "n1b"), CondMode::kSql), TV3::kU);
  EXPECT_EQ(Eval(CEq("n1", "c1"), CondMode::kSql), TV3::kU);
  EXPECT_EQ(Eval(CNeqc("n1", Value::Int(7)), CondMode::kSql), TV3::kU);
  EXPECT_EQ(Eval(CEq("c1", "c1"), CondMode::kSql), TV3::kT);
  EXPECT_EQ(Eval(CEq("c1", "c2"), CondMode::kSql), TV3::kF);
}

TEST_F(CondModeTest, UnifModeTracksMarkedNulls) {
  // (13b): ⊥1 = ⊥1 is t (same unknown value); ⊥1 = ⊥2 is u; 1 = 2 is f.
  EXPECT_EQ(Eval(CEq("n1", "n1b"), CondMode::kUnif), TV3::kT);
  EXPECT_EQ(Eval(CEq("n1", "n2"), CondMode::kUnif), TV3::kU);
  EXPECT_EQ(Eval(CEq("n1", "c1"), CondMode::kUnif), TV3::kU);
  EXPECT_EQ(Eval(CEq("c1", "c2"), CondMode::kUnif), TV3::kF);
}

TEST_F(CondModeTest, ConstNullTestsAreTwoValuedInAllModes) {
  for (CondMode m : {CondMode::kNaive, CondMode::kSql, CondMode::kUnif}) {
    EXPECT_EQ(Eval(CIsNull("n1"), m), TV3::kT);
    EXPECT_EQ(Eval(CIsNull("c1"), m), TV3::kF);
    EXPECT_EQ(Eval(CIsConst("c1"), m), TV3::kT);
    EXPECT_EQ(Eval(CIsConst("n2"), m), TV3::kF);
  }
}

TEST_F(CondModeTest, KleenePropagationInSqlMode) {
  // u ∨ t = t, u ∨ f = u, u ∧ f = f.
  EXPECT_EQ(Eval(COr(CEq("n1", "c1"), CEq("c1", "c1")), CondMode::kSql),
            TV3::kT);
  EXPECT_EQ(Eval(COr(CEq("n1", "c1"), CEq("c1", "c2")), CondMode::kSql),
            TV3::kU);
  EXPECT_EQ(Eval(CAnd(CEq("n1", "c1"), CEq("c1", "c2")), CondMode::kSql),
            TV3::kF);
}

TEST_F(CondModeTest, UnknownAttributeIsError) {
  auto f = CompileCond(CEq("nope", "c1"), attrs_, CondMode::kNaive);
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kNotFound);
}

// --- AST validation ---------------------------------------------------------

TEST(OutputAttrsTest, ScanSelectProject) {
  Database db = FigureOne(false);
  AlgPtr q = Project(Select(Scan("Orders"), CEqc("price", Value::Int(30))),
                     {"oid"});
  auto attrs = OutputAttrs(q, db);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(*attrs, std::vector<std::string>{"oid"});
}

TEST(OutputAttrsTest, UnknownRelationOrAttribute) {
  Database db = FigureOne(false);
  EXPECT_FALSE(OutputAttrs(Scan("Nope"), db).ok());
  EXPECT_FALSE(OutputAttrs(Project(Scan("Orders"), {"nope"}), db).ok());
  EXPECT_FALSE(
      OutputAttrs(Select(Scan("Orders"), CEq("nope", "oid")), db).ok());
}

TEST(OutputAttrsTest, ProductRequiresDisjointNames) {
  Database db = FigureOne(false);
  auto bad = OutputAttrs(Product(Scan("Payments"), Scan("Customers")), db);
  EXPECT_FALSE(bad.ok());  // both have cid
  auto good = OutputAttrs(
      Product(Scan("Payments"), Rename(Scan("Customers"), {"cid2", "name"})),
      db);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->size(), 4u);
}

TEST(OutputAttrsTest, SetOpsRequireSameArity) {
  Database db = FigureOne(false);
  EXPECT_FALSE(OutputAttrs(Union(Scan("Orders"), Scan("Payments")), db).ok());
  EXPECT_FALSE(OutputAttrs(Diff(Scan("Orders"), Scan("Payments")), db).ok());
}

TEST(OutputAttrsTest, DivisionSchema) {
  Database db;
  Relation r({"emp", "proj"});
  Relation s({"proj"});
  db.Put("R", r);
  db.Put("S", s);
  auto attrs = OutputAttrs(Division(Scan("R"), Scan("S")), db);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(*attrs, std::vector<std::string>{"emp"});
  // Divisor attribute not in dividend → error.
  Relation t({"other"});
  db.Put("T", t);
  EXPECT_FALSE(OutputAttrs(Division(Scan("R"), Scan("T")), db).ok());
}

TEST(OutputAttrsTest, InPredicateValidation) {
  Database db = FigureOne(false);
  AlgPtr ok = NotInPredicate(Project(Scan("Orders"), {"oid"}),
                             Project(Scan("Payments"), {"oid"}), {"oid"},
                             {"oid"}, CTrue());
  // Compare columns must exist on the proper sides. Note: both sides call
  // their column "oid" here, which is fine for kNotIn (no product is
  // formed under native evaluation).
  EXPECT_FALSE(OutputAttrs(ok, db).ok());  // joint scope has duplicate names
  AlgPtr renamed = NotInPredicate(Project(Scan("Orders"), {"oid"}),
                                  Rename(Project(Scan("Payments"), {"oid"}),
                                         {"poid"}),
                                  {"oid"}, {"poid"}, CTrue());
  EXPECT_TRUE(OutputAttrs(renamed, db).ok());
}

// --- Desugaring -------------------------------------------------------------

TEST(DesugarTest, SemijoinMatchesManualExpansion) {
  Database db = FigureOne(false);
  AlgPtr semi = Semijoin(Scan("Customers"),
                         Rename(Scan("Payments"), {"pcid", "poid"}),
                         CEq("cid", "pcid"));
  auto core = Desugar(semi, db);
  ASSERT_TRUE(core.ok());
  EXPECT_TRUE(IsCoreGrammar(*core));
  auto direct = EvalSet(semi, db);
  auto expanded = EvalSet(*core, db);
  ASSERT_TRUE(direct.ok() && expanded.ok());
  EXPECT_TRUE(direct->SameRows(*expanded));
}

TEST(DesugarTest, AntijoinMatchesManualExpansion) {
  Database db = FigureOne(false);
  AlgPtr anti = Antijoin(Scan("Customers"),
                         Rename(Scan("Payments"), {"pcid", "poid"}),
                         CEq("cid", "pcid"));
  auto core = Desugar(anti, db);
  ASSERT_TRUE(core.ok());
  auto direct = EvalSet(anti, db);
  auto expanded = EvalSet(*core, db);
  ASSERT_TRUE(direct.ok() && expanded.ok());
  EXPECT_TRUE(direct->SameRows(*expanded));
}

TEST(DesugarTest, InPredicatesMatchUnderNaiveSemantics) {
  // On a database with nulls, the desugared (set-naive) IN / NOT IN must
  // agree with the native naive evaluation (they only diverge under SQL
  // mode).
  Database db = FigureOne(true);
  AlgPtr q = NotInPredicate(Project(Scan("Orders"), {"oid"}),
                            Rename(Project(Scan("Payments"), {"oid"}),
                                   {"poid"}),
                            {"oid"}, {"poid"}, CTrue());
  auto core = Desugar(q, db);
  ASSERT_TRUE(core.ok());
  EXPECT_TRUE(IsCoreGrammar(*core));
  auto direct = EvalSet(q, db);
  auto expanded = EvalSet(*core, db);
  ASSERT_TRUE(direct.ok() && expanded.ok());
  EXPECT_TRUE(direct->SameRows(*expanded));
}

// --- Classifiers ------------------------------------------------------------

TEST(ClassifierTest, IsPositiveFragment) {
  EXPECT_TRUE(IsPositive(Select(Scan("R"), CEqc("R_a", Value::Int(1)))));
  EXPECT_TRUE(IsPositive(Union(Scan("R"), Scan("S"))));
  EXPECT_FALSE(IsPositive(Diff(Scan("R"), Scan("S"))));
  EXPECT_FALSE(IsPositive(Select(Scan("R"), CNeqc("R_a", Value::Int(1)))));
  EXPECT_FALSE(IsPositive(Select(Scan("R"), CIsNull("R_a"))));
}

TEST(ClassifierTest, IsPosForallGAllowsDivisionByBaseRelation) {
  AlgPtr div = Division(Scan("R"), Scan("S"));
  EXPECT_TRUE(IsPosForallG(div));
  EXPECT_FALSE(IsPosForallG(Diff(Scan("R"), Scan("S"))));
  // Division by a computed relation is outside the fragment.
  EXPECT_FALSE(IsPosForallG(Division(Scan("R"), Project(Scan("S"), {}))));
}

TEST(ClassifierTest, QueryConstantsDeduplicated) {
  AlgPtr q = Select(Scan("R"), CAnd(CEqc("R_a", Value::Int(7)),
                                    CNeqc("R_b", Value::Int(7))));
  auto consts = QueryConstants(q);
  ASSERT_EQ(consts.size(), 1u);
  EXPECT_EQ(consts[0], Value::Int(7));
}

TEST(ClassifierTest, ScannedRelations) {
  AlgPtr q = Diff(Project(Product(Scan("R"), Rename(Scan("S"), {"x", "y"})),
                          {"R_a"}),
                  Rename(Scan("T"), {"R_a"}));
  EXPECT_EQ(ScannedRelations(q), (std::vector<std::string>{"R", "S", "T"}));
}

TEST(AlgebraToStringTest, RendersOperators) {
  AlgPtr q = Diff(Project(Scan("Orders"), {"oid"}),
                  Project(Scan("Payments"), {"oid"}));
  EXPECT_EQ(q->ToString(), "(π{oid}(Orders) − π{oid}(Payments))");
}

}  // namespace
}  // namespace incdb
