// Dedicated coverage for src/algebra/desugar.cpp: the sugar operators
// (join / semijoin / antijoin / [NOT] IN / DISTINCT) must rewrite into
// the core grammar and evaluate identically to their sugared forms under
// naive set semantics, on the paper's Figure 1 database and on the
// QueryZoo / RandomDatabase property instances.

#include <gtest/gtest.h>

#include <random>

#include "algebra/builder.h"
#include "eval/eval.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

using testing_util::FigureOne;
using testing_util::QueryZoo;
using testing_util::RandomDatabase;

bool IsSugarKind(OpKind k) {
  return k == OpKind::kJoin || k == OpKind::kSemijoin ||
         k == OpKind::kAntijoin || k == OpKind::kIn || k == OpKind::kNotIn ||
         k == OpKind::kDistinct;
}

bool ContainsSugar(const AlgPtr& q) {
  if (!q) return false;
  if (IsSugarKind(q->kind)) return true;
  return ContainsSugar(q->left) || ContainsSugar(q->right);
}

/// The sugared query shapes over the Figure 1 schema. Right-hand sides are
/// renamed so the product expansions keep attribute names disjoint.
std::vector<std::pair<const char*, AlgPtr>> SugaredFigureOneQueries() {
  AlgPtr orders = Scan("Orders");
  AlgPtr payments = Rename(Scan("Payments"), {"pcid", "poid"});
  return {
      {"join", Join(orders, payments, CEq("oid", "poid"))},
      {"semijoin", Semijoin(orders, payments, CEq("oid", "poid"))},
      {"antijoin", Antijoin(orders, payments, CEq("oid", "poid"))},
      {"in", InPredicate(orders, payments, {"oid"}, {"poid"}, CTrue())},
      {"not-in", NotInPredicate(orders, payments, {"oid"}, {"poid"}, CTrue())},
      {"distinct", Distinct(Project(orders, {"title"}))},
      {"nested",
       Antijoin(Project(orders, {"oid"}),
                Semijoin(payments, Rename(Scan("Customers"), {"ccid", "name"}),
                         CEq("pcid", "ccid")),
                CEq("oid", "poid"))},
  };
}

TEST(DesugarTest, RemovesEverySugarOperator) {
  for (bool with_null : {false, true}) {
    Database db = FigureOne(with_null);
    for (const auto& [name, q] : SugaredFigureOneQueries()) {
      auto core = Desugar(q, db);
      ASSERT_TRUE(core.ok()) << name << ": " << core.status().ToString();
      EXPECT_FALSE(ContainsSugar(*core)) << name << " -> "
                                         << (*core)->ToString();
      EXPECT_TRUE(IsCoreGrammar(*core)) << name << " -> "
                                        << (*core)->ToString();
    }
  }
}

TEST(DesugarTest, SugaredAndDesugaredAgreeOnFigureOne) {
  for (bool with_null : {false, true}) {
    Database db = FigureOne(with_null);
    for (const auto& [name, q] : SugaredFigureOneQueries()) {
      auto core = Desugar(q, db);
      ASSERT_TRUE(core.ok()) << name;
      auto sugared = EvalSet(q, db);
      auto desugared = EvalSet(*core, db);
      ASSERT_TRUE(sugared.ok()) << name << ": " << sugared.status().ToString();
      ASSERT_TRUE(desugared.ok())
          << name << ": " << desugared.status().ToString();
      EXPECT_TRUE(sugared->SameRows(*desugared))
          << name << " (with_null=" << with_null << "): sugared "
          << sugared->ToString() << " vs desugared " << desugared->ToString();
    }
  }
}

TEST(DesugarTest, IdentityOnCoreGrammarZoo) {
  // The QueryZoo is sugar-free, so desugaring must be a structural no-op.
  std::mt19937_64 rng(11);
  Database rdb = RandomDatabase(rng);
  for (const AlgPtr& q : QueryZoo()) {
    auto core = Desugar(q, rdb);
    ASSERT_TRUE(core.ok()) << q->ToString();
    EXPECT_EQ((*core)->ToString(), q->ToString());
  }
}

TEST(DesugarTest, ZooEvaluationUnchangedOverRandomDatabases) {
  std::mt19937_64 rng(2026);
  for (int round = 0; round < 10; ++round) {
    Database db = RandomDatabase(rng);
    for (const AlgPtr& q : QueryZoo()) {
      auto core = Desugar(q, db);
      ASSERT_TRUE(core.ok()) << q->ToString();
      auto before = EvalSet(q, db);
      auto after = EvalSet(*core, db);
      ASSERT_TRUE(before.ok() && after.ok()) << q->ToString();
      EXPECT_TRUE(before->SameRows(*after)) << q->ToString();
    }
  }
}

TEST(DesugarTest, SugaredZooAgreesOverRandomDatabases) {
  // Sugared shapes over the RandomDatabase schema (R, S binary; T unary),
  // evaluated natively vs after desugaring, across seeded instances.
  AlgPtr r = Scan("R");
  AlgPtr s = Scan("S");
  AlgPtr t = Scan("T");
  std::vector<std::pair<const char*, AlgPtr>> sugared = {
      {"join", Join(r, s, CEq("R_b", "S_a"))},
      {"semijoin", Semijoin(r, s, CEq("R_a", "S_a"))},
      {"antijoin", Antijoin(r, s, CEq("R_a", "S_a"))},
      {"in", InPredicate(Project(r, {"R_a"}), t, {"R_a"}, {"T_a"}, CTrue())},
      {"not-in",
       NotInPredicate(Project(r, {"R_a"}), t, {"R_a"}, {"T_a"}, CTrue())},
      {"semijoin-of-antijoin",
       Semijoin(Antijoin(r, t, CEq("R_a", "T_a")), s, CEq("R_b", "S_b"))},
  };
  std::mt19937_64 rng(314);
  for (int round = 0; round < 10; ++round) {
    Database db = RandomDatabase(rng);
    for (const auto& [name, q] : sugared) {
      auto core = Desugar(q, db);
      ASSERT_TRUE(core.ok()) << name << ": " << core.status().ToString();
      EXPECT_FALSE(ContainsSugar(*core)) << name;
      auto before = EvalSet(q, db);
      auto after = EvalSet(*core, db);
      ASSERT_TRUE(before.ok() && after.ok()) << name;
      EXPECT_TRUE(before->SameRows(*after))
          << name << ": " << before->ToString() << " vs " << after->ToString();
    }
  }
}

TEST(DesugarTest, DivisionAndUnifyAntijoinPassThrough) {
  // Non-sugar extended operators survive desugaring untouched.
  std::mt19937_64 rng(8);
  Database db = RandomDatabase(rng);
  AlgPtr div = Division(Scan("R"), Rename(Scan("T"), {"R_b"}));
  AlgPtr aju = AntijoinUnify(Scan("R"), Scan("S"));
  for (const AlgPtr& q : {div, aju}) {
    auto core = Desugar(q, db);
    ASSERT_TRUE(core.ok());
    EXPECT_EQ((*core)->kind, q->kind);
    auto before = EvalSet(q, db);
    auto after = EvalSet(*core, db);
    ASSERT_TRUE(before.ok() && after.ok());
    EXPECT_TRUE(before->SameRows(*after));
  }
}

}  // namespace
}  // namespace incdb
