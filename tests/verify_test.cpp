// Tests for the plan verifier (src/eval/verify.h). Two halves:
//
//  * Zero-findings sweeps: every plan the compiler produces over the
//    QueryZoo, the sugar corpus, 150 seeded random queries, parameter
//    templates (before AND after binding) and the c-table lowering must
//    pass VerifyPlan — across all three evaluation modes and a matrix of
//    rewrite-pass toggles. The verifier is also wired into Compile /
//    BindPlanParams / the plan cache / delta propagation in Debug builds,
//    so the rest of the test suite doubles as a corpus there; this sweep
//    keeps the coverage in every build type.
//
//  * Negatives: one hand-corrupted plan per check class — bad projection
//    index, dangling pred_attrs, cyclic DAG share, bogus maintainable,
//    malformed predicate register program, uncovered parameter slots,
//    wrong scanned_rels / uses_dom, stale refcounts, catalog mismatch,
//    out-of-range join keys, unresolved num_threads — each rejected with
//    a kInternal diagnostic naming the offending node by its root path.

#include "eval/verify.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/builder.h"
#include "eval/batch.h"
#include "eval/eval.h"
#include "eval/plan.h"
#include "tests/testing_util.h"

namespace incdb {

/// Write access to a compiled register program (friend of BatchPredicate)
/// so the negatives can plant each defect class Validate() must catch.
struct BatchPredicateTestPeer {
  static std::vector<BatchPredicate::Insn>& prog(BatchPredicate& bp) {
    return bp.prog_;
  }
  static uint32_t& n_regs(BatchPredicate& bp) { return bp.n_regs_; }
  static std::vector<size_t>& referenced(BatchPredicate& bp) {
    return bp.referenced_;
  }
};

namespace {

using testing_util::QueryZoo;
using testing_util::RandomDatabase;
using testing_util::RandomQueryGen;

constexpr EvalMode kModes[] = {EvalMode::kSetNaive, EvalMode::kBagNaive,
                               EvalMode::kSetSql};

std::vector<EvalOptions> ToggleMatrix() {
  EvalOptions all_on;
  EvalOptions all_off;
  all_off.enable_hash_join = false;
  all_off.enable_or_expansion = false;
  all_off.enable_projection_fusion = false;
  all_off.enable_unify_index = false;
  all_off.enable_selection_pushdown = false;
  EvalOptions no_fusion;  // keeps σ/π separate but joins hashed
  no_fusion.enable_projection_fusion = false;
  no_fusion.enable_or_expansion = false;
  return {all_on, all_off, no_fusion};
}

/// QueryZoo plus every sugar operator and the two operators the random
/// generator excludes (÷ and Dom).
std::vector<AlgPtr> SweepCorpus() {
  std::vector<AlgPtr> corpus = QueryZoo();
  AlgPtr r = Scan("R");
  AlgPtr s = Scan("S");
  AlgPtr t = Scan("T");
  corpus.push_back(Join(r, s, CEq("R_b", "S_a")));
  corpus.push_back(Semijoin(r, s, CEq("R_a", "S_a")));
  corpus.push_back(Antijoin(r, s, CEq("R_a", "S_a")));
  corpus.push_back(
      InPredicate(Project(r, {"R_a"}), t, {"R_a"}, {"T_a"}, CTrue()));
  corpus.push_back(
      NotInPredicate(Project(r, {"R_a"}), t, {"R_a"}, {"T_a"}, CTrue()));
  corpus.push_back(AntijoinUnify(r, s));
  corpus.push_back(Distinct(Project(r, {"R_a"})));
  corpus.push_back(Division(r, Rename(Project(s, {"S_b"}), {"R_b"})));
  corpus.push_back(Diff(DomK({"R_a"}), Project(r, {"R_a"})));
  // Pushdown + OR-expansion shapes (shared compiled subtrees → DAG).
  corpus.push_back(Select(Product(r, Rename(s, {"S_x", "S_y"})),
                          CAnd(CEq("R_b", "S_x"),
                               CNeqc("R_a", Value::Int(1)))));
  corpus.push_back(Project(
      Select(Product(r, Rename(s, {"S_x", "S_y"})),
             COr(CEq("R_b", "S_x"), CIsNull("S_y"))),
      {"R_a", "S_y"}));
  return corpus;
}

PlanPtr MustCompile(const AlgPtr& q, const Database& db,
                    EvalMode mode = EvalMode::kSetNaive,
                    const EvalOptions& opts = {}) {
  auto plan = Compile(q, mode, opts, db);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.ok() ? *plan : nullptr;
}

void CountEdges(const PhysPtr& n,
                std::unordered_map<const PhysNode*, uint32_t>* counts) {
  uint32_t& c = (*counts)[n.get()];
  if (++c > 1) return;
  if (n->left) CountEdges(n->left, counts);
  if (n->right) CountEdges(n->right, counts);
}

/// Re-roots a copied plan and recomputes the parent-edge map so only the
/// planted defect trips the verifier.
Plan WithRoot(const Plan& base, PhysPtr root) {
  Plan p = base;
  p.root = std::move(root);
  p.refcount.clear();
  CountEdges(p.root, &p.refcount);
  return p;
}

void ExpectRejected(const Plan& plan, const Database* db,
                    const std::string& needle) {
  Status st = VerifyPlan(plan, db);
  ASSERT_FALSE(st.ok()) << "verifier accepted a corrupted plan (wanted: "
                        << needle << ")";
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
  EXPECT_NE(st.message().find("plan verifier"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("root"), std::string::npos)
      << "diagnostic lacks a node path: " << st.message();
  EXPECT_NE(st.message().find(needle), std::string::npos) << st.message();
}

// ---------------------------------------------------------------------------
// Zero-findings sweeps.
// ---------------------------------------------------------------------------

TEST(VerifySweep, ZooAndSugarAcrossModesAndToggles) {
  std::mt19937_64 rng(7);
  Database db = RandomDatabase(rng);
  std::vector<AlgPtr> corpus = SweepCorpus();
  size_t verified = 0;
  for (EvalMode mode : kModes) {
    for (const EvalOptions& opts : ToggleMatrix()) {
      for (const AlgPtr& q : corpus) {
        auto plan = Compile(q, mode, opts, db);
        if (!plan.ok()) continue;  // ÷ is unsupported under EvalSql etc.
        Status st = VerifyPlan(*plan, &db);
        ASSERT_TRUE(st.ok()) << st.ToString();
        ++verified;
      }
    }
  }
  // Most of the corpus compiles in most configurations; a regression that
  // silently skips the sweep would trip this floor.
  EXPECT_GE(verified, corpus.size() * 6);
}

TEST(VerifySweep, RandomQueriesZeroFindings) {
  std::mt19937_64 rng(20260808);
  Database db = RandomDatabase(rng);
  RandomQueryGen gen(rng);
  std::vector<EvalOptions> toggles = ToggleMatrix();
  for (int i = 0; i < 150; ++i) {
    AlgPtr q = gen.Gen(1 + i % 4);
    auto plan = Compile(q, kModes[i % 3], toggles[i % toggles.size()], db);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    Status st = VerifyPlan(*plan, &db);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

TEST(VerifySweep, ParamTemplatesBeforeAndAfterBinding) {
  std::mt19937_64 rng(11);
  Database db = RandomDatabase(rng);
  std::vector<AlgPtr> templates;
  templates.push_back(Select(Scan("R"), CEqc("R_a", Value::Param(0))));
  templates.push_back(Select(Scan("R"), COr(CEqc("R_a", Value::Param(0)),
                                            CNeqc("R_b", Value::Param(1)))));
  templates.push_back(Join(Scan("R"), Scan("S"),
                           CAnd(CEq("R_b", "S_a"),
                                CGec("S_b", Value::Param(0)))));
  for (const AlgPtr& q : templates) {
    for (EvalMode mode : kModes) {
      PlanPtr plan = MustCompile(q, db, mode);
      ASSERT_NE(plan, nullptr);
      EXPECT_GE(plan->param_count, 1u);
      Status st = VerifyPlan(plan, &db);
      ASSERT_TRUE(st.ok()) << st.ToString();
      auto bound = BindPlanParams(plan, {Value::Int(1), Value::Int(2)});
      ASSERT_TRUE(bound.ok()) << bound.status().ToString();
      EXPECT_EQ((*bound)->param_count, 0u);
      st = VerifyPlan(*bound, &db);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  }
}

TEST(VerifySweep, CTableLoweringsVerify) {
  std::mt19937_64 rng(13);
  Database db = RandomDatabase(rng);
  for (const AlgPtr& q : QueryZoo()) {
    auto plan = CompileForCTables(q, db);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_TRUE((*plan)->for_ctables);
    EXPECT_FALSE((*plan)->maintainable);
    Status st = VerifyPlan(*plan, &db);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

TEST(VerifyWiring, RuntimeToggleMatchesEnvironment) {
  const char* env = std::getenv("INCDB_VERIFY_PLANS");
  bool expect = env == nullptr || std::string(env) != "0";
  EXPECT_EQ(PlanVerificationEnabled(), expect);
}

TEST(VerifyWiring, NullPlanRejected) {
  Status st = VerifyPlan(PlanPtr{});
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Negatives: one corrupted plan per check class.
// ---------------------------------------------------------------------------

TEST(VerifyNegative, ProjectionIndexOutOfRange) {
  std::mt19937_64 rng(1);
  Database db = RandomDatabase(rng);
  PlanPtr plan = MustCompile(Project(Scan("R"), {"R_a"}), db);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->root->op, PhysOp::kProject);
  auto bad = std::make_shared<PhysNode>(*plan->root);
  bad->proj_pos = {5};
  ExpectRejected(WithRoot(*plan, bad), &db, "out of range");
}

TEST(VerifyNegative, ProjectionNameMismatch) {
  std::mt19937_64 rng(1);
  Database db = RandomDatabase(rng);
  PlanPtr plan = MustCompile(Project(Scan("R"), {"R_a"}), db);
  ASSERT_NE(plan, nullptr);
  auto bad = std::make_shared<PhysNode>(*plan->root);
  bad->proj_pos = {1};  // position 1 is R_b, output schema says R_a
  ExpectRejected(WithRoot(*plan, bad), &db, "names input position");
}

TEST(VerifyNegative, DanglingPredAttrs) {
  std::mt19937_64 rng(2);
  Database db = RandomDatabase(rng);
  // A parameterised condition must record the exact input schema.
  PlanPtr tmpl =
      MustCompile(Select(Scan("R"), CEqc("R_a", Value::Param(0))), db);
  ASSERT_NE(tmpl, nullptr);
  ASSERT_EQ(tmpl->root->op, PhysOp::kFilterSel);
  auto bad = std::make_shared<PhysNode>(*tmpl->root);
  bad->pred_attrs = {"bogus"};
  ExpectRejected(WithRoot(*tmpl, bad), &db, "pred_attrs");

  // ...and a parameter-free condition must not record one at all (a bound
  // plan that kept its template's pred_attrs would be re-bound wrongly).
  PlanPtr plain =
      MustCompile(Select(Scan("R"), CEqc("R_a", Value::Int(0))), db);
  ASSERT_NE(plain, nullptr);
  auto stale = std::make_shared<PhysNode>(*plain->root);
  stale->pred_attrs = {"R_a", "R_b"};
  ExpectRejected(WithRoot(*plain, stale), &db, "parameter-free");
}

TEST(VerifyNegative, CondReferencesUnknownAttribute) {
  std::mt19937_64 rng(2);
  Database db = RandomDatabase(rng);
  PlanPtr plan =
      MustCompile(Select(Scan("R"), CEqc("R_a", Value::Int(0))), db);
  ASSERT_NE(plan, nullptr);
  auto bad = std::make_shared<PhysNode>(*plan->root);
  bad->cond = CEq("R_a", "ghost");
  ExpectRejected(WithRoot(*plan, bad), &db, "outside the input schema");
}

TEST(VerifyNegative, CyclicShare) {
  auto a = std::make_shared<PhysNode>();
  auto b = std::make_shared<PhysNode>();
  a->op = PhysOp::kDistinct;
  a->attrs = {"x"};
  b->op = PhysOp::kDistinct;
  b->attrs = {"x"};
  a->left = b;
  b->left = a;  // the cycle
  Plan plan;
  plan.root = a;
  plan.mode = EvalMode::kSetNaive;
  plan.opts.num_threads = 1;
  Status st = VerifyPlan(plan);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("cycle"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("root"), std::string::npos) << st.message();
  // Break the cycle so the shared_ptr pair can be reclaimed (keeps the
  // LeakSanitizer job quiet).
  a->left = nullptr;
}

TEST(VerifyNegative, BogusMaintainable) {
  std::mt19937_64 rng(3);
  Database db = RandomDatabase(rng);
  // Difference is outside the delta-propagation subset.
  PlanPtr diff = MustCompile(Diff(Scan("R"), Scan("S")), db);
  ASSERT_NE(diff, nullptr);
  ASSERT_FALSE(diff->maintainable);
  Plan lying = *diff;
  lying.maintainable = true;
  ExpectRejected(lying, &db, "maintainable set");

  // A plain scan is maintainable; claiming otherwise is also a defect.
  PlanPtr scan = MustCompile(Scan("R"), db);
  ASSERT_NE(scan, nullptr);
  ASSERT_TRUE(scan->maintainable);
  Plan denying = *scan;
  denying.maintainable = false;
  ExpectRejected(denying, &db, "maintainable unset");

  // C-table lowerings are never maintainable, whatever their operators.
  auto ct = CompileForCTables(Scan("R"), db);
  ASSERT_TRUE(ct.ok()) << ct.status().ToString();
  Plan ct_lying = **ct;
  ct_lying.maintainable = true;
  ExpectRejected(ct_lying, &db, "maintainable set");
}

TEST(VerifyNegative, MalformedPredicateProgram) {
  const std::vector<std::string> attrs = {"a", "b"};
  CondPtr cond = CAnd(CEqc("a", Value::Int(1)), CNeqc("b", Value::Int(2)));
  auto make = [&] {
    auto bp = BatchPredicate::Make(cond, attrs, CondMode::kNaive);
    EXPECT_TRUE(bp.ok()) << bp.status().ToString();
    return *bp;
  };
  {
    BatchPredicate bp = make();
    ASSERT_TRUE(bp.Validate(attrs.size()).ok());
  }
  {  // Connective breaking the postorder stack discipline.
    BatchPredicate bp = make();
    auto& prog = BatchPredicateTestPeer::prog(bp);
    ASSERT_EQ(prog.back().kind, CondKind::kAnd);
    prog.back().dst = 1;
    Status st = bp.Validate(attrs.size());
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("stack discipline"), std::string::npos)
        << st.message();
  }
  {  // Connective with an empty stack.
    BatchPredicate bp = make();
    auto& prog = BatchPredicateTestPeer::prog(bp);
    prog.erase(prog.begin(), prog.begin() + 2);
    Status st = bp.Validate(attrs.size());
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("underflow"), std::string::npos)
        << st.message();
  }
  {  // Column operand past the input arity.
    BatchPredicate bp = make();
    BatchPredicateTestPeer::prog(bp)[0].col = 9;
    Status st = bp.Validate(attrs.size());
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("out of range"), std::string::npos)
        << st.message();
  }
  {  // Unbound parameter left in a constant operand.
    BatchPredicate bp = make();
    BatchPredicateTestPeer::prog(bp)[0].constant = Value::Param(0);
    Status st = bp.Validate(attrs.size());
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("parameter"), std::string::npos)
        << st.message();
  }
  {  // Register count disagreeing with the program's stack depth.
    BatchPredicate bp = make();
    BatchPredicateTestPeer::n_regs(bp) = 7;
    Status st = bp.Validate(attrs.size());
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("register count"), std::string::npos)
        << st.message();
  }
  {  // Dangling value left on the stack (no combining connective).
    BatchPredicate bp = make();
    BatchPredicateTestPeer::prog(bp).pop_back();
    Status st = bp.Validate(attrs.size());
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("on the register stack"), std::string::npos)
        << st.message();
  }
  {  // Opcode outside the interpreter's dispatch table.
    BatchPredicate bp = make();
    BatchPredicateTestPeer::prog(bp)[0].kind = static_cast<CondKind>(0xEE);
    Status st = bp.Validate(attrs.size());
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("unknown opcode"), std::string::npos)
        << st.message();
  }
}

TEST(VerifyNegative, ParamCountDoesNotCoverCondition) {
  std::mt19937_64 rng(4);
  Database db = RandomDatabase(rng);
  PlanPtr plan =
      MustCompile(Select(Scan("R"), CEqc("R_a", Value::Param(1))), db);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->param_count, 2u);
  Plan bad = *plan;
  bad.param_count = 0;
  ExpectRejected(bad, &db, "param_count is 0");
}

TEST(VerifyNegative, WrongScannedRels) {
  std::mt19937_64 rng(5);
  Database db = RandomDatabase(rng);
  PlanPtr plan = MustCompile(Join(Scan("R"), Scan("S"), CEq("R_b", "S_a")), db);
  ASSERT_NE(plan, nullptr);
  Plan missing = *plan;
  missing.scanned_rels = {"R"};
  ExpectRejected(missing, &db, "scanned_rels");
  Plan phantom = *plan;
  phantom.scanned_rels = {"R", "S", "Z"};
  ExpectRejected(phantom, &db, "scanned_rels");
}

TEST(VerifyNegative, UsesDomFlagDisagrees) {
  std::mt19937_64 rng(5);
  Database db = RandomDatabase(rng);
  PlanPtr plan = MustCompile(Scan("R"), db);
  ASSERT_NE(plan, nullptr);
  Plan bad = *plan;
  bad.uses_dom = true;
  ExpectRejected(bad, &db, "uses_dom");
}

TEST(VerifyNegative, StaleRefcounts) {
  std::mt19937_64 rng(6);
  Database db = RandomDatabase(rng);
  PlanPtr plan = MustCompile(Join(Scan("R"), Scan("S"), CEq("R_b", "S_a")), db);
  ASSERT_NE(plan, nullptr);
  Plan bad = *plan;
  bad.refcount.clear();
  ExpectRejected(bad, &db, "refcount");
}

TEST(VerifyNegative, CatalogMismatch) {
  std::mt19937_64 rng(8);
  Database db = RandomDatabase(rng);
  PlanPtr plan = MustCompile(Scan("R"), db);
  ASSERT_NE(plan, nullptr);
  // Same relation name, different schema.
  Database reshaped;
  reshaped.Put("R", Relation({"R_a", "R_b", "R_c"}).ToSet());
  ExpectRejected(*plan, &reshaped, "catalog schema");
  // Relation dropped entirely.
  Database empty;
  ExpectRejected(*plan, &empty, "not in the catalog");
}

TEST(VerifyNegative, JoinKeyOutOfRange) {
  std::mt19937_64 rng(9);
  Database db = RandomDatabase(rng);
  PlanPtr plan = MustCompile(Join(Scan("R"), Scan("S"), CEq("R_b", "S_a")), db);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->root->op, PhysOp::kHashJoin);
  auto bad = std::make_shared<PhysNode>(*plan->root);
  bad->lkeys = {9};
  ExpectRejected(WithRoot(*plan, bad), &db, "out of range");
  auto keyless = std::make_shared<PhysNode>(*plan->root);
  keyless->lkeys.clear();
  keyless->rkeys.clear();
  ExpectRejected(WithRoot(*plan, keyless), &db, "without key columns");
}

TEST(VerifyNegative, UnresolvedNumThreads) {
  std::mt19937_64 rng(10);
  Database db = RandomDatabase(rng);
  PlanPtr plan = MustCompile(Scan("R"), db);
  ASSERT_NE(plan, nullptr);
  Plan bad = *plan;
  bad.opts.num_threads = 0;
  ExpectRejected(bad, &db, "num_threads");
}

}  // namespace
}  // namespace incdb
