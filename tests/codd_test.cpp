// Tests for src/eval/codd: the Codd-null commutation question of §6
// ("Marked nulls"): for which queries does it not matter whether SQL
// NULLs are expanded into fresh marked nulls before or after evaluation?

#include <gtest/gtest.h>

#include "algebra/builder.h"
#include "eval/codd.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

TEST(CanonicalizeTest, RenamingInvariance) {
  Relation a({"x", "y"});
  a.Add({Value::Null(5), Value::Int(1)});
  a.Add({Value::Null(2), Value::Int(2)});
  Relation b({"x", "y"});
  b.Add({Value::Null(1), Value::Int(1)});
  b.Add({Value::Null(9), Value::Int(2)});
  EXPECT_TRUE(CanonicalizeNulls(a).SameRows(CanonicalizeNulls(b)));
}

TEST(CanonicalizeTest, RepeatedNullsDistinguished) {
  Relation a({"x", "y"});
  a.Add({Value::Null(1), Value::Null(1)});  // one shared unknown
  Relation b({"x", "y"});
  b.Add({Value::Null(1), Value::Null(2)});  // two independent unknowns
  EXPECT_FALSE(CanonicalizeNulls(a).SameRows(CanonicalizeNulls(b)));
}

TEST(CanonicalizeTest, CrossTupleSharingDistinguished) {
  Relation a({"x"});
  a.Add({Value::Null(1)});
  a.Add({Value::Null(2)});
  Relation b({"x"});
  b.Add({Value::Null(1)});
  // Different cardinality of distinct tuples: b has one tuple.
  EXPECT_FALSE(CanonicalizeNulls(a).SameRows(CanonicalizeNulls(b)));
}

TEST(CoddCommutesTest, ProjectionAndSelectionCommute) {
  Database db;
  Relation r({"a", "b"});
  r.Add({Value::Int(1), Value::Null(1)});
  r.Add({Value::Int(2), Value::Int(3)});
  db.Put("R", r);
  auto proj = CoddCommutes(Project(Scan("R"), {"b"}), db);
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE(*proj);
  auto sel = CoddCommutes(Select(Scan("R"), CEqc("a", Value::Int(1))), db);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(*sel);
}

TEST(CoddCommutesTest, SelfJoinOnNullFails) {
  // σ_{a=b}(R) with R = {(⊥1, ⊥1)}: on the original database the tuple
  // satisfies a = b syntactically; after Codd-ification the two
  // occurrences become distinct nulls and the naive answer is empty.
  Database db;
  Relation r({"a", "b"});
  r.Add({Value::Null(1), Value::Null(1)});
  db.Put("R", r);
  auto res = CoddCommutes(Select(Scan("R"), CEq("a", "b")), db);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(*res);
}

TEST(CoddCommutesTest, DifferenceAgainstSharedNullFails) {
  // R = {⊥1}, S = {⊥1} (the same unknown): R − S is empty with marked
  // nulls, but after Codd-ification the nulls differ and the naive
  // difference keeps the tuple.
  Database db;
  Relation r({"x"}), s({"x"});
  r.Add({Value::Null(1)});
  s.Add({Value::Null(1)});
  db.Put("R", r);
  db.Put("S", s);
  auto res = CoddCommutes(Diff(Scan("R"), Scan("S")), db);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(*res);
}

TEST(CoddCommutesTest, CommutesOnCoddDatabases) {
  // If D already has only Codd nulls (no repetition), codd(D) ≅ D and
  // everything commutes trivially — across the query zoo.
  std::mt19937_64 rng(71);
  for (int round = 0; round < 5; ++round) {
    Database db = testing_util::RandomDatabase(rng, 3, 3, 0);
    // Inject non-repeating nulls manually.
    Relation r = db.at("R");
    r.Add({Value::Null(50), Value::Null(51)});
    db.Put("R", r);
    for (const AlgPtr& q : testing_util::QueryZoo()) {
      // Skip queries that repeat R (self-joins duplicate the null).
      auto rels = ScannedRelations(q);
      auto res = CoddCommutes(q, db);
      ASSERT_TRUE(res.ok()) << q->ToString();
      // Queries over a Codd database *usually* commute but self-joins/
      // products can still duplicate a null into two output occurrences
      // whose correlation codd() then loses; only assert for the
      // single-occurrence-safe shapes (no product).
      bool has_product = q->ToString().find("×") != std::string::npos;
      if (!has_product) {
        EXPECT_TRUE(*res) << q->ToString();
      }
    }
  }
}

}  // namespace
}  // namespace incdb
