// Reader/writer torture tests for the snapshot-versioned Database behind
// the Session facade: N threads Execute and drain cursors while a writer
// thread commits batched mutations. Every observed result must match
// exactly one committed version — a torn read (half of one batch, half of
// another) is the failure mode these tests exist to catch. Run under
// ASan/TSan in CI (the sanitize and tsan jobs build this suite).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"

namespace incdb {
namespace {

Relation OneInt(const std::string& attr, int64_t v) {
  Relation r({attr});
  r.Add({Value::Int(v)});
  return r;
}

// A committed version i is the pair A = {(i)}, B = {(i)} published in one
// batch; the invariant of SELECT x, y FROM A, B is one row with x == y.
TEST(ConcurrencyTest, ReadersSeeExactlyOneCommittedVersion) {
  Session sess;
  sess.Put("A", OneInt("x", 0));
  sess.Put("B", OneInt("y", 0));
  auto pq = sess.Prepare("SELECT x, y FROM A, B");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  constexpr int kCommits = 300;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<int> torn{0}, errors{0};

  auto check = [&](const Relation& rel) {
    if (rel.rows().size() != 1) {
      torn.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const Tuple& t = rel.rows()[0].first;
    const int64_t x = t[0].as_int(), y = t[1].as_int();
    if (x != y || x < 0 || x > kCommits) {
      torn.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load(std::memory_order_relaxed)) {
        if (r % 2 == 0) {
          auto res = pq->Execute();
          if (!res.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          } else {
            check(*res);
          }
        } else {
          auto cur = pq->OpenCursor();
          if (!cur.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          Relation drained({"x", "y"});
          while (cur->Next()) {
            ASSERT_TRUE(drained.Insert(cur->row(), cur->count()).ok());
          }
          check(drained);
        }
      }
    });
  }

  for (int i = 1; i <= kCommits; ++i) {
    Status st = sess.Mutate([i](Database::Txn& txn) {
      txn.Put("A", OneInt("x", i));
      txn.Put("B", OneInt("y", i));
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0) << "a reader observed a torn half-commit";
  EXPECT_EQ(errors.load(), 0);

  auto final = pq->Execute();
  ASSERT_TRUE(final.ok());
  EXPECT_TRUE(final->Contains(Tuple{Value::Int(kCommits),
                                    Value::Int(kCommits)}));
}

// Dropping and re-creating a scanned relation under concurrent readers:
// the only legal outcomes are a clean result satisfying the invariant or
// a structured kFailedPrecondition from the stale guard — never a crash,
// a torn row or a use-after-free (ASan backs this up).
TEST(ConcurrencyTest, DropAndRestoreUnderReadersIsAlwaysClean) {
  Session sess;
  sess.Put("R", OneInt("x", 0));
  auto pq = sess.Prepare("SELECT x FROM R");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  constexpr int kCycles = 200;
  std::atomic<bool> done{false};
  std::atomic<int> bad{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto res = pq->Execute();
        if (res.ok()) {
          if (res->rows().size() != 1) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (res.status().code() != StatusCode::kFailedPrecondition) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 1; i <= kCycles; ++i) {
    ASSERT_TRUE(sess.Drop("R").ok());
    sess.Put("R", OneInt("x", i));
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0);
}

// Cursors pin the snapshot they opened on: a cursor opened before a burst
// of commits drains the version it started from, bit-for-bit.
TEST(ConcurrencyTest, OpenCursorsDrainTheirPinnedVersion) {
  Session sess;
  Relation r({"x"});
  for (int i = 0; i < 64; ++i) r.Add({Value::Int(i)});
  sess.Put("R", std::move(r));
  auto pq = sess.Prepare("SELECT x FROM R");
  ASSERT_TRUE(pq.ok());

  auto cur = pq->OpenCursor();
  ASSERT_TRUE(cur.ok());

  std::thread writer([&] {
    for (int i = 0; i < 100; ++i) {
      sess.Put("R", OneInt("x", 1000 + i));
    }
  });
  size_t rows = 0;
  bool all_pre_commit = true;
  while (cur->Next()) {
    ++rows;
    if (cur->row()[0].as_int() >= 1000) all_pre_commit = false;
  }
  writer.join();
  EXPECT_EQ(rows, 64u);
  EXPECT_TRUE(all_pre_commit) << "cursor leaked rows from a later version";
}

// The result cache must never serve a result from a different version
// than the snapshot of the Execute that asked: hammer one hot query from
// many threads while versions churn, and cross-check every answer against
// the x == y invariant (stale-but-consistent is impossible to distinguish
// from a pinned snapshot; torn or mixed-version rows are not).
TEST(ConcurrencyTest, ResultCacheNeverMixesVersionsUnderChurn) {
  Session sess;
  sess.Put("A", OneInt("x", 0));
  sess.Put("B", OneInt("y", 0));
  auto pq = sess.Prepare("SELECT x, y FROM A, B");
  ASSERT_TRUE(pq.ok());

  constexpr int kCommits = 150;
  std::atomic<bool> done{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 6; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto res = pq->Execute();
        if (!res.ok() || res->rows().size() != 1 ||
            res->rows()[0].first[0] != res->rows()[0].first[1]) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 1; i <= kCommits; ++i) {
    ASSERT_TRUE(sess.Mutate([i](Database::Txn& txn) {
                  txn.Put("A", OneInt("x", i));
                  txn.Put("B", OneInt("y", i));
                  return Status::OK();
                }).ok());
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0);
  // Once the churn stops the cache serves hits again (under churn every
  // commit rightly forced a miss — fresh version stamps).
  const uint64_t before = sess.stats().result_cache.hits;
  ASSERT_TRUE(pq->Execute().ok());
  ASSERT_TRUE(pq->Execute().ok());
  EXPECT_GT(sess.stats().result_cache.hits, before);
}

}  // namespace
}  // namespace incdb
