// Reader/writer torture tests for the snapshot-versioned Database behind
// the Session facade: N threads Execute and drain cursors while a writer
// thread commits batched mutations. Every observed result must match
// exactly one committed version — a torn read (half of one batch, half of
// another) is the failure mode these tests exist to catch. Run under
// ASan/TSan in CI (the sanitize and tsan jobs build this suite).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"

namespace incdb {
namespace {

Relation OneInt(const std::string& attr, int64_t v) {
  Relation r({attr});
  r.Add({Value::Int(v)});
  return r;
}

// A committed version i is the pair A = {(i)}, B = {(i)} published in one
// batch; the invariant of SELECT x, y FROM A, B is one row with x == y.
TEST(ConcurrencyTest, ReadersSeeExactlyOneCommittedVersion) {
  Session sess;
  sess.Put("A", OneInt("x", 0));
  sess.Put("B", OneInt("y", 0));
  auto pq = sess.Prepare("SELECT x, y FROM A, B");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  constexpr int kCommits = 300;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<int> torn{0}, errors{0};

  auto check = [&](const Relation& rel) {
    if (rel.rows().size() != 1) {
      torn.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const Tuple& t = rel.rows()[0].first;
    const int64_t x = t[0].as_int(), y = t[1].as_int();
    if (x != y || x < 0 || x > kCommits) {
      torn.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load(std::memory_order_relaxed)) {
        if (r % 2 == 0) {
          auto res = pq->Execute();
          if (!res.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          } else {
            check(*res);
          }
        } else {
          auto cur = pq->OpenCursor();
          if (!cur.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          Relation drained({"x", "y"});
          while (cur->Next()) {
            ASSERT_TRUE(drained.Insert(cur->row(), cur->count()).ok());
          }
          check(drained);
        }
      }
    });
  }

  for (int i = 1; i <= kCommits; ++i) {
    Status st = sess.Mutate([i](Database::Txn& txn) {
      txn.Put("A", OneInt("x", i));
      txn.Put("B", OneInt("y", i));
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0) << "a reader observed a torn half-commit";
  EXPECT_EQ(errors.load(), 0);

  auto final = pq->Execute();
  ASSERT_TRUE(final.ok());
  EXPECT_TRUE(final->Contains(Tuple{Value::Int(kCommits),
                                    Value::Int(kCommits)}));
}

// Dropping and re-creating a scanned relation under concurrent readers:
// the only legal outcomes are a clean result satisfying the invariant or
// a structured kFailedPrecondition from the stale guard — never a crash,
// a torn row or a use-after-free (ASan backs this up).
TEST(ConcurrencyTest, DropAndRestoreUnderReadersIsAlwaysClean) {
  Session sess;
  sess.Put("R", OneInt("x", 0));
  auto pq = sess.Prepare("SELECT x FROM R");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  constexpr int kCycles = 200;
  std::atomic<bool> done{false};
  std::atomic<int> bad{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto res = pq->Execute();
        if (res.ok()) {
          if (res->rows().size() != 1) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (res.status().code() != StatusCode::kFailedPrecondition) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 1; i <= kCycles; ++i) {
    ASSERT_TRUE(sess.Drop("R").ok());
    sess.Put("R", OneInt("x", i));
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0);
}

// Cursors pin the snapshot they opened on: a cursor opened before a burst
// of commits drains the version it started from, bit-for-bit.
TEST(ConcurrencyTest, OpenCursorsDrainTheirPinnedVersion) {
  Session sess;
  Relation r({"x"});
  for (int i = 0; i < 64; ++i) r.Add({Value::Int(i)});
  sess.Put("R", std::move(r));
  auto pq = sess.Prepare("SELECT x FROM R");
  ASSERT_TRUE(pq.ok());

  auto cur = pq->OpenCursor();
  ASSERT_TRUE(cur.ok());

  std::thread writer([&] {
    for (int i = 0; i < 100; ++i) {
      sess.Put("R", OneInt("x", 1000 + i));
    }
  });
  size_t rows = 0;
  bool all_pre_commit = true;
  while (cur->Next()) {
    ++rows;
    if (cur->row()[0].as_int() >= 1000) all_pre_commit = false;
  }
  writer.join();
  EXPECT_EQ(rows, 64u);
  EXPECT_TRUE(all_pre_commit) << "cursor leaked rows from a later version";
}

// The result cache must never serve a result from a different version
// than the snapshot of the Execute that asked: hammer one hot query from
// many threads while versions churn, and cross-check every answer against
// the x == y invariant (stale-but-consistent is impossible to distinguish
// from a pinned snapshot; torn or mixed-version rows are not).
TEST(ConcurrencyTest, ResultCacheNeverMixesVersionsUnderChurn) {
  Session sess;
  sess.Put("A", OneInt("x", 0));
  sess.Put("B", OneInt("y", 0));
  auto pq = sess.Prepare("SELECT x, y FROM A, B");
  ASSERT_TRUE(pq.ok());

  constexpr int kCommits = 150;
  std::atomic<bool> done{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 6; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto res = pq->Execute();
        if (!res.ok() || res->rows().size() != 1 ||
            res->rows()[0].first[0] != res->rows()[0].first[1]) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 1; i <= kCommits; ++i) {
    ASSERT_TRUE(sess.Mutate([i](Database::Txn& txn) {
                  txn.Put("A", OneInt("x", i));
                  txn.Put("B", OneInt("y", i));
                  return Status::OK();
                }).ok());
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0);
  // Once the churn stops the cache serves hits again (under churn every
  // commit rightly forced a miss — fresh version stamps).
  const uint64_t before = sess.stats().result_cache.hits;
  ASSERT_TRUE(pq->Execute().ok());
  ASSERT_TRUE(pq->Execute().ok());
  EXPECT_GT(sess.stats().result_cache.hits, before);
}

// Invalidation walks the relation → entries reverse index, so a commit to
// one relation drops exactly its dependents and never scans (or drops)
// the rest of the cache. Structural regression for the index: with N
// relations each backing one cached entry, touching one must cost exactly
// one invalidation and leave the other N-1 entries hot.
TEST(ConcurrencyTest, InvalidationSweepsOnlyDependentEntries) {
  Session sess;
  constexpr int kRels = 64;
  for (int i = 0; i < kRels; ++i) {
    sess.Put("R" + std::to_string(i), OneInt("x", i));
  }
  std::vector<PreparedQuery> pqs;
  for (int i = 0; i < kRels; ++i) {
    auto pq = sess.Prepare("SELECT x FROM R" + std::to_string(i));
    ASSERT_TRUE(pq.ok()) << pq.status().ToString();
    ASSERT_TRUE(pq->Execute().ok());
    pqs.push_back(*pq);
  }
  ASSERT_EQ(sess.stats().result_cache.size, static_cast<size_t>(kRels));

  sess.Put("R7", OneInt("x", 777));
  ResultCacheStats after = sess.stats().result_cache;
  EXPECT_EQ(after.invalidations, 1u) << "swept more than the dependents";
  EXPECT_EQ(after.size, static_cast<size_t>(kRels - 1));

  // Every untouched entry must still be served from the cache.
  const uint64_t hits_before = after.hits;
  for (int i = 0; i < kRels; ++i) {
    if (i == 7) continue;
    ASSERT_TRUE(pqs[static_cast<size_t>(i)].Execute().ok());
  }
  EXPECT_EQ(sess.stats().result_cache.hits,
            hits_before + static_cast<uint64_t>(kRels - 1));

  // Row-level commits split the sweep the same way: one maintained entry,
  // zero invalidations, everything else untouched.
  ASSERT_TRUE(sess.Mutate([](Database::Txn& txn) {
                    return txn.Insert("R3", {Value::Int(333)});
                  })
                  .ok());
  ResultCacheStats maint = sess.stats().result_cache;
  EXPECT_EQ(maint.maintained, 1u);
  EXPECT_EQ(maint.invalidations, 1u) << "maintenance must not invalidate";
  EXPECT_EQ(maint.size, static_cast<size_t>(kRels - 1));
}

// A cursor destroyed mid-stream while a writer drops and re-creates the
// scanned relation must release its pinned snapshot cleanly — no leak, no
// use-after-free (ASan/LSan back this up), and the session stays usable.
TEST(ConcurrencyTest, CursorDestroyedMidStreamUnderDropReleasesSnapshot) {
  Session sess;
  Relation r({"x"});
  for (int i = 0; i < 4096; ++i) r.Add({Value::Int(i)});
  sess.Put("R", std::move(r));
  auto pq = sess.Prepare("SELECT x FROM R");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  for (int round = 0; round < 40; ++round) {
    auto cur = pq->OpenCursor();
    if (!cur.ok()) {
      // A round may open between the drop and the re-put; the structured
      // stale error is the only acceptable failure.
      EXPECT_EQ(cur.status().code(), StatusCode::kFailedPrecondition);
      continue;
    }
    for (int k = 0; k < 5 && cur->Next(); ++k) {
    }
    std::thread writer([&, round] {
      EXPECT_TRUE(sess.Drop("R").ok());
      sess.Put("R", OneInt("x", round));
    });
    // Abandon the cursor mid-stream while the writer churns: the pinned
    // snapshot (holding the rows the cursor was borrowing) must die with
    // the cursor, not outlive it.
    cur = Cursor();
    writer.join();
  }
  auto res = pq->Execute();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows().size(), 1u);
}

// The deadline/cancellation scaffolding for the join tests below: two
// relations whose θ-join (≠, not hash-joinable) visits ~1.4M pairs — big
// enough that a 10 ms deadline or a mid-flight Cancel() always lands
// inside the operator loops, small enough to finish if a check is missed.
Session NLJoinSession(size_t threads) {
  Database db;
  Relation r({"a", "k"}), s({"b", "k2"});
  // Distinct ids keep the scans set-shaped at 3000 rows each; the
  // mostly-equal join keys keep the ≠-join's *output* tiny (≈30k rows)
  // while its pair-visit count stays at 9M — the loops run long, memory
  // stays flat even when a test lets the query run to completion.
  for (int i = 0; i < 3000; ++i) {
    r.Add({Value::Int(i), Value::Int(i < 10 ? 2 : 1)});
    s.Add({Value::Int(i), Value::Int(1)});
  }
  db.Put("R", std::move(r));
  db.Put("S", std::move(s));
  EvalOptions opts;
  opts.num_threads = threads;
  opts.use_result_cache = false;  // every Execute must really execute
  return Session(std::move(db), opts);
}

const char* kNLJoinSql = "SELECT a, b FROM R, S WHERE k <> k2";

// Acceptance: a 10 ms deadline on an NL-join-scale query returns
// kDeadlineExceeded promptly at 1, 2 and 8 threads, and the same session
// answers a subsequent query correctly (pool reusable, no poisoning).
TEST(ConcurrencyTest, DeadlineExpiresPromptlyAcrossThreadCounts) {
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    Session sess = NLJoinSession(threads);
    auto pq = sess.Prepare(kNLJoinSql);
    ASSERT_TRUE(pq.ok()) << pq.status().ToString();

    auto start = std::chrono::steady_clock::now();
    auto res = pq->Execute({}, ExecContext::WithDeadlineMs(10));
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    ASSERT_FALSE(res.ok()) << "join of this scale cannot finish in 10ms";
    EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded)
        << res.status().ToString();
    // Checkpoints are every 4096 pair visits, so the overshoot is a few
    // thousand condition evaluations; the bound is generous for
    // sanitizer-instrumented CI, not a perf claim (see bench_micro).
    EXPECT_LT(elapsed.count(), 2000) << "deadline ignored for too long";

    // The pool and session survive: the same query, un-deadlined, runs to
    // completion with a correct row count afterwards.
    auto full = pq->Execute();
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    EXPECT_GT(full->TotalSize(), 0u);
  }
}

// Acceptance: a second thread cancels a parallel NL join mid-flight; the
// query returns kCancelled, partial results are discarded, and the pool
// answers the next query on the same session.
TEST(ConcurrencyTest, SecondThreadCancelsParallelNLJoin) {
  Session sess = NLJoinSession(/*threads=*/4);
  auto pq = sess.Prepare(kNLJoinSql);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  CancelToken token = CancelToken::Create();
  ExecContext ctx;
  ctx.SetCancel(token);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.Cancel();
  });
  auto res = pq->Execute({}, ctx);
  canceller.join();
  ASSERT_FALSE(res.ok()) << "cancellation never observed";
  EXPECT_EQ(res.status().code(), StatusCode::kCancelled)
      << res.status().ToString();

  // Partial results were discarded, the pool is reusable, and an
  // untouched context leaves the rerun unaffected.
  auto full = pq->Execute();
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  auto again = pq->Execute();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(full->SameRows(*again));
}

}  // namespace
}  // namespace incdb
