// Tests for the robustness layer: structured Status codes and details,
// ExecContext deadlines / cancellation / soft-memory budgets threaded
// through the executor, max_tuples enforcement across every operator
// shape (including the streaming cursor path), the transparent
// stale-retry of prepared queries, and the deterministic FaultInjector.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/session.h"
#include "core/exec_context.h"
#include "core/fault.h"
#include "core/status.h"
#include "eval/eval.h"
#include "tests/testing_util.h"

namespace incdb {
namespace {

// --- Status codes and structured detail --------------------------------------

TEST(StatusTest, CodeNameCoversEveryCode) {
  // Regression: a new StatusCode must get a CodeName entry. Covers every
  // enumerator explicitly so a rename shows up as a failure here.
  EXPECT_STREQ(CodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(CodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(CodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(CodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(CodeName(StatusCode::kResourceExhausted), "ResourceExhausted");
  EXPECT_STREQ(CodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(CodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(CodeName(StatusCode::kDeadlineExceeded), "DeadlineExceeded");
  EXPECT_STREQ(CodeName(StatusCode::kCancelled), "Cancelled");
}

TEST(StatusTest, FactoriesForNewCodes) {
  Status d = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: too slow");
  Status c = Status::Cancelled("stop");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_FALSE(c.ok());
}

TEST(StatusTest, DetailRoundTripsAndSharesAcrossCopies) {
  StatusDetail d;
  d.budget_used = 123;
  d.budget_limit = 45;
  d.site = "unit.test";
  Status st = Status::ResourceExhausted("over").WithDetail(std::move(d));
  ASSERT_NE(st.detail(), nullptr);
  EXPECT_EQ(st.detail()->budget_used, 123u);
  EXPECT_EQ(st.detail()->budget_limit, 45u);
  EXPECT_EQ(st.detail()->site, "unit.test");

  Status copy = st;  // copies share the same detail block
  EXPECT_EQ(copy.detail(), st.detail());

  EXPECT_EQ(Status::OK().detail(), nullptr);
  EXPECT_EQ(Status::Internal("plain").detail(), nullptr);
}

// --- ExecContext -------------------------------------------------------------

TEST(ExecContextTest, DefaultContextIsUnlimited) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.limited());
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_TRUE(ctx.Check(/*mem_used_bytes=*/1ull << 40).ok());
}

TEST(ExecContextTest, ExpiredDeadlineFiresWithElapsedDetail) {
  ExecContext ctx = ExecContext::WithDeadline(std::chrono::nanoseconds(0));
  EXPECT_TRUE(ctx.limited());
  Status st = ctx.Check();
  ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  ASSERT_NE(st.detail(), nullptr);
  EXPECT_GE(st.detail()->elapsed_us, st.detail()->deadline_us);
}

TEST(ExecContextTest, FarDeadlinePasses) {
  ExecContext ctx = ExecContext::WithDeadlineMs(60'000);
  EXPECT_TRUE(ctx.limited());
  EXPECT_TRUE(ctx.Check().ok());
}

TEST(ExecContextTest, CancelTokenSharedAcrossCopies) {
  CancelToken inert;
  EXPECT_FALSE(inert.cancellable());
  inert.Cancel();  // no-op, must not crash
  EXPECT_FALSE(inert.Cancelled());

  CancelToken token = CancelToken::Create();
  ExecContext ctx;
  ctx.SetCancel(token);
  EXPECT_TRUE(ctx.limited());
  EXPECT_TRUE(ctx.Check().ok());
  token.Cancel();
  Status st = ctx.Check();
  ASSERT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
}

TEST(ExecContextTest, SoftMemoryBudgetFiresWithUsageDetail) {
  ExecContext ctx;
  ctx.SetSoftMemLimit(1000);
  EXPECT_TRUE(ctx.limited());
  EXPECT_TRUE(ctx.Check(999).ok());
  Status st = ctx.Check(2000);
  ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  ASSERT_NE(st.detail(), nullptr);
  EXPECT_EQ(st.detail()->budget_used, 2000u);
  EXPECT_EQ(st.detail()->budget_limit, 1000u);
}

// --- ExecContext through the evaluators --------------------------------------

Database SmallJoinDb() {
  Database db;
  Relation p({"a"});
  for (int i = 0; i < 8; ++i) p.Add({Value::Int(i)});
  Relation q({"b"});
  for (int i = 0; i < 8; ++i) q.Add({Value::Int(i)});
  db.Put("P", std::move(p));
  db.Put("Q", std::move(q));
  return db;
}

TEST(ExecContextTest, ExpiredDeadlineStopsEvaluation) {
  Database db = SmallJoinDb();
  AlgPtr q = Join(Scan("P"), Scan("Q"), CEq("a", "b"));
  ExecContext expired = ExecContext::WithDeadline(std::chrono::nanoseconds(0));
  for (int mode = 0; mode < 3; ++mode) {
    auto res = mode == 0   ? EvalSet(q, db, EvalOptions{}, expired)
               : mode == 1 ? EvalBag(q, db, EvalOptions{}, expired)
                           : EvalSql(q, db, EvalOptions{}, expired);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded)
        << res.status().ToString();
  }
  // The same query without a context is unaffected.
  auto ok = EvalSet(q, db, EvalOptions{});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(ExecContextTest, PreCancelledContextStopsEvaluation) {
  Database db = SmallJoinDb();
  AlgPtr q = Join(Scan("P"), Scan("Q"), CEq("a", "b"));
  CancelToken token = CancelToken::Create();
  token.Cancel();
  ExecContext ctx;
  ctx.SetCancel(token);
  auto res = EvalSet(q, db, EvalOptions{}, ctx);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kCancelled);
}

TEST(ExecContextTest, SoftMemoryBudgetStopsEvaluation) {
  Database db = SmallJoinDb();
  // The cross product materializes 64 two-column tuples: far beyond a
  // one-byte budget, well within an unlimited one.
  AlgPtr q = Product(Scan("P"), Scan("Q"));
  ExecContext tiny;
  tiny.SetSoftMemLimit(1);
  auto res = EvalSet(q, db, EvalOptions{}, tiny);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
      << res.status().ToString();
  ASSERT_NE(res.status().detail(), nullptr);
  EXPECT_EQ(res.status().detail()->budget_limit, 1u);
}

TEST(ExecContextTest, CertainSweepsObserveTheContext) {
  // cert⊥ over a database with nulls enumerates a valuation family; an
  // expired deadline must abort the sweep, not just the per-world evals.
  Database db = testing_util::FigureOne(/*with_null=*/true);
  AlgPtr q = Project(Scan("Payments"), {"oid"});
  CertainOptions opts;
  opts.ctx = ExecContext::WithDeadline(std::chrono::nanoseconds(0));
  auto res = CertWithNulls(q, db, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDeadlineExceeded)
      << res.status().ToString();
  opts.ctx = ExecContext{};
  auto ok = CertWithNulls(q, db, opts);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// --- max_tuples enforcement across every operator shape ----------------------

// Every shape routes through a different PhysNode operator; with
// max_tuples=2 and ≥3 result tuples each must trip the budget rather
// than silently materialize past it.
TEST(BudgetAuditTest, EveryOperatorShapeHonoursMaxTuples) {
  Database db;
  Relation p({"a"});
  Relation p2({"a"});
  Relation empty({"a"});
  Relation pairs({"a", "b"});
  for (int i = 0; i < 6; ++i) {
    p.Add({Value::Int(i)});
    p2.Add({Value::Int(i)});
    pairs.Add({Value::Int(i / 2), Value::Int(i % 2)});
  }
  Relation divisor({"b"});
  divisor.Add({Value::Int(0)});
  db.Put("P", std::move(p));
  db.Put("P2", std::move(p2));
  db.Put("E", std::move(empty));
  db.Put("Pairs", std::move(pairs));
  db.Put("Div", std::move(divisor));

  struct Case {
    const char* name;
    AlgPtr q;
    bool sql_ok;  ///< false: shape unsupported under EvalSql (÷, Dom).
  };
  std::vector<Case> cases;
  cases.push_back({"project", Project(Scan("Pairs"), {"a"}), true});
  cases.push_back({"filter", Select(Scan("P"), CGec("a", Value::Int(0))),
                   true});
  cases.push_back(
      {"union", Union(Scan("P"), Rename(Scan("P2"), {"a"})), true});
  cases.push_back({"diff", Diff(Scan("P"), Scan("E")), true});
  cases.push_back(
      {"intersect", Intersect(Scan("P"), Rename(Scan("P2"), {"a"})), true});
  cases.push_back({"division", Division(Scan("Pairs"), Scan("Div")), false});
  cases.push_back({"antijoin_unify", AntijoinUnify(Scan("P"), Scan("E")),
                   true});
  cases.push_back(
      {"join", Join(Scan("P"), Rename(Scan("P2"), {"b"}), CEq("a", "b")),
       true});
  cases.push_back(
      {"semijoin",
       Semijoin(Scan("P"), Rename(Scan("P2"), {"b"}), CEq("a", "b")), true});
  cases.push_back(
      {"antijoin", Antijoin(Scan("P"), Rename(Scan("E"), {"b"}),
                            CEq("a", "b")),
       true});
  cases.push_back(
      {"in_pred",
       InPredicate(Scan("P"), Rename(Scan("P2"), {"b"}), {"a"}, {"b"},
                   CTrue()),
       true});
  cases.push_back(
      {"not_in_pred",
       NotInPredicate(Scan("P"), Rename(Scan("E"), {"b"}), {"a"}, {"b"},
                      CTrue()),
       true});
  cases.push_back({"distinct", Distinct(Scan("P")), true});
  cases.push_back({"product", Product(Scan("P"), Rename(Scan("P2"), {"b"})),
                   true});

  EvalOptions tight;
  tight.max_tuples = 2;
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    // Sanity: the shape succeeds with the default budget.
    auto full = EvalSet(c.q, db, EvalOptions{});
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    ASSERT_GE(full->TotalSize(), 3u) << "shape too small to trip the budget";

    auto res = EvalSet(c.q, db, tight);
    ASSERT_FALSE(res.ok()) << c.name << " ignored max_tuples";
    EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
        << res.status().ToString();
    if (res.status().detail() != nullptr) {
      EXPECT_EQ(res.status().detail()->budget_limit, 2u);
    }
    auto bag = EvalBag(c.q, db, tight);
    ASSERT_FALSE(bag.ok()) << c.name << " (bag) ignored max_tuples";
    EXPECT_EQ(bag.status().code(), StatusCode::kResourceExhausted);
    if (c.sql_ok) {
      auto sql = EvalSql(c.q, db, tight);
      ASSERT_FALSE(sql.ok()) << c.name << " (sql) ignored max_tuples";
      EXPECT_EQ(sql.status().code(), StatusCode::kResourceExhausted);
    }
  }
}

TEST(BudgetAuditTest, ParallelOperatorsHonourMaxTuples) {
  Database db = SmallJoinDb();
  AlgPtr q = Product(Scan("P"), Scan("Q"));  // 64 tuples
  EvalOptions tight;
  tight.max_tuples = 8;
  tight.num_threads = 4;
  auto res = EvalSet(q, db, tight);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
      << res.status().ToString();
}

// --- Streaming cursor: budget + context --------------------------------------

TEST(CursorRobustnessTest, StreamingPathHonoursMaxTuples) {
  Database db;
  Relation p({"a"});
  for (int i = 0; i < 50; ++i) p.Add({Value::Int(i)});
  db.Put("P", std::move(p));
  EvalOptions opts;
  opts.max_tuples = 3;
  Session sess(std::move(db), opts);
  auto pq = sess.Prepare(Select(Scan("P"), CGec("a", Value::Int(0))));
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  auto cur = pq->OpenCursor();
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  ASSERT_TRUE(cur->streaming());
  int delivered = 0;
  while (cur->Next()) ++delivered;
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(cur->status().code(), StatusCode::kResourceExhausted)
      << cur->status().ToString();
  ASSERT_NE(cur->status().detail(), nullptr);
  EXPECT_EQ(cur->status().detail()->budget_limit, 3u);
}

TEST(CursorRobustnessTest, ExhaustedStreamKeepsOkStatus) {
  Database db;
  Relation p({"a"});
  for (int i = 0; i < 5; ++i) p.Add({Value::Int(i)});
  db.Put("P", std::move(p));
  Session sess(std::move(db));
  auto pq = sess.Prepare(Scan("P"));
  ASSERT_TRUE(pq.ok());
  auto cur = pq->OpenCursor();
  ASSERT_TRUE(cur.ok());
  int n = 0;
  while (cur->Next()) ++n;
  EXPECT_EQ(n, 5);
  EXPECT_TRUE(cur->status().ok()) << cur->status().ToString();
  EXPECT_FALSE(cur->Next());  // exhausted stays exhausted
}

TEST(CursorRobustnessTest, ExpiredDeadlineRejectsOpen) {
  Session sess(testing_util::FigureOne(false));
  auto pq = sess.Prepare("SELECT oid FROM Orders");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ExecContext expired = ExecContext::WithDeadline(std::chrono::nanoseconds(0));
  auto cur = pq->OpenCursor({}, expired);
  ASSERT_FALSE(cur.ok());
  EXPECT_EQ(cur.status().code(), StatusCode::kDeadlineExceeded)
      << cur.status().ToString();
}

TEST(CursorRobustnessTest, CancelMidDrainLatchesCancelled) {
  Database db;
  Relation p({"a"});
  for (int i = 0; i < 2000; ++i) p.Add({Value::Int(i)});
  db.Put("P", std::move(p));
  Session sess(std::move(db), [] {
    EvalOptions o;
    o.use_result_cache = false;
    return o;
  }());
  auto pq = sess.Prepare(Scan("P"));
  ASSERT_TRUE(pq.ok());
  CancelToken token = CancelToken::Create();
  ExecContext ctx;
  ctx.SetCancel(token);
  auto cur = pq->OpenCursor({}, ctx);
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  ASSERT_TRUE(cur->Next());
  token.Cancel();
  // The amortized check fires within a bounded number of pulls.
  int extra = 0;
  while (cur->Next()) ++extra;
  EXPECT_LT(extra, 512);
  EXPECT_EQ(cur->status().code(), StatusCode::kCancelled)
      << cur->status().ToString();
  EXPECT_FALSE(cur->Next());
}

// --- Transparent stale retry -------------------------------------------------

Relation UnaryInts(const std::string& attr, std::vector<int> vals) {
  Relation r({attr});
  for (int v : vals) r.Add({Value::Int(v)});
  return r;
}

TEST(StaleRetryTest, RetriesOnceWhenRelationReappears) {
  Session sess;
  sess.Put("P", UnaryInts("a", {1, 2, 3}));
  // Project pins the prepared contract to {a}, so the relation's shape
  // can change underneath without changing what the query promises.
  auto pq = sess.Prepare(
      Project(Select(Scan("P"), CGec("a", Value::Int(0))), {"a"}));
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_TRUE(pq->Execute().ok());
  EXPECT_EQ(sess.stats().stale_retries, 0u);

  // Drop + re-Put with a widened schema: the stale guard fires, but the
  // recompile preserves the contract, so Execute transparently
  // re-prepares and answers against the new data.
  ASSERT_TRUE(sess.Drop("P").ok());
  Relation wide({"a", "b"});
  wide.Add({Value::Int(7), Value::Int(0)});
  wide.Add({Value::Int(8), Value::Int(0)});
  sess.Put("P", std::move(wide));
  auto res = pq->Execute();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->TotalSize(), 2u);
  EXPECT_EQ(sess.stats().stale_retries, 1u);

  // The refreshed artefacts are installed: the next call is not stale.
  ASSERT_TRUE(pq->Execute().ok());
  EXPECT_EQ(sess.stats().stale_retries, 1u);
}

TEST(StaleRetryTest, OpenCursorRetriesToo) {
  Session sess;
  sess.Put("P", UnaryInts("a", {1, 2, 3}));
  auto pq = sess.Prepare(Project(Scan("P"), {"a"}));
  ASSERT_TRUE(pq.ok());
  ASSERT_TRUE(sess.Drop("P").ok());
  Relation wide({"a", "b"});
  wide.Add({Value::Int(4), Value::Int(0)});
  wide.Add({Value::Int(5), Value::Int(0)});
  sess.Put("P", std::move(wide));
  auto cur = pq->OpenCursor();
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  int n = 0;
  while (cur->Next()) ++n;
  EXPECT_EQ(n, 2);
  EXPECT_EQ(sess.stats().stale_retries, 1u);
}

TEST(StaleRetryTest, DroppedRelationStillFails) {
  Session sess;
  sess.Put("P", UnaryInts("a", {1}));
  auto pq = sess.Prepare(Scan("P"));
  ASSERT_TRUE(pq.ok());
  ASSERT_TRUE(sess.Drop("P").ok());
  auto res = pq->Execute();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sess.stats().stale_retries, 0u);
}

TEST(StaleRetryTest, IncompatibleReshapeStillFails) {
  Session sess;
  sess.Put("P", UnaryInts("a", {1, 2}));
  auto pq = sess.Prepare(Scan("P"));
  ASSERT_TRUE(pq.ok());
  // The scan's output schema follows the relation: renaming the column
  // changes the prepared contract, so the retry must refuse.
  ASSERT_TRUE(sess.Drop("P").ok());
  sess.Put("P", UnaryInts("b", {1, 2}));
  auto res = pq->Execute();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kFailedPrecondition)
      << res.status().ToString();
  EXPECT_EQ(sess.stats().stale_retries, 0u);
}

TEST(StaleRetryTest, CompatibleReshapeRetriesTransparently) {
  Session sess;
  Relation p({"a", "b"});
  p.Add({Value::Int(1), Value::Int(10)});
  p.Add({Value::Int(2), Value::Int(20)});
  sess.Put("P", std::move(p));
  // The query projects to {a}: widening P keeps the output contract.
  auto pq = sess.Prepare(Project(Scan("P"), {"a"}));
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_TRUE(sess.Drop("P").ok());
  Relation wide({"a", "b", "c"});
  wide.Add({Value::Int(5), Value::Int(50), Value::Int(500)});
  sess.Put("P", std::move(wide));
  auto res = pq->Execute();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->TotalSize(), 1u);
  EXPECT_EQ(pq->output_attrs(), std::vector<std::string>{"a"});
  EXPECT_EQ(sess.stats().stale_retries, 1u);
}

// --- FaultInjector -----------------------------------------------------------

// The injector class is always compiled (only the *sites* are gated), so
// its determinism is testable in every build configuration.
TEST(FaultInjectorTest, DeterministicUnderSeedAndAlwaysStructured) {
  FaultInjector& fi = FaultInjector::Global();
  auto roll_codes = [&](uint64_t seed, int n) {
    fi.Configure(seed, 0.5);
    std::vector<StatusCode> codes;
    for (int i = 0; i < n; ++i) codes.push_back(fi.MaybeFault("t.site").code());
    return codes;
  };
  std::vector<StatusCode> a = roll_codes(42, 200);
  std::vector<StatusCode> b = roll_codes(42, 200);
  EXPECT_EQ(a, b) << "same seed must replay the same injection sequence";
  for (StatusCode c : a) {
    EXPECT_TRUE(c == StatusCode::kOk || c == StatusCode::kCancelled ||
                c == StatusCode::kResourceExhausted)
        << CodeName(c);
  }
  fi.Disable();
}

TEST(FaultInjectorTest, RateOneFiresEveryRollWithSiteDetail) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Configure(7, 1.0);
  for (int i = 0; i < 9; ++i) {
    Status st = fi.MaybeFault("harness.site");
    ASSERT_FALSE(st.ok());
    ASSERT_NE(st.detail(), nullptr);
    EXPECT_EQ(st.detail()->site, "harness.site");
    EXPECT_NE(st.code(), StatusCode::kInternal);
  }
  EXPECT_EQ(fi.checks(), 9u);
  EXPECT_EQ(fi.injected(), 9u);
  fi.Disable();
  EXPECT_TRUE(fi.MaybeFault("harness.site").ok());
}

TEST(FaultInjectorTest, DisabledInjectorPassesEveryRoll) {
  FaultInjector& fi = FaultInjector::Global();
  fi.Configure(3, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fi.MaybeFault("never.fires").ok());
  }
  fi.Disable();
}

}  // namespace
}  // namespace incdb
