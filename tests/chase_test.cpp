// Dedicated coverage for src/constraints/chase.cpp: the FD chase equates
// values forced equal (null→constant substitution, null–null merges),
// fails on hard constant conflicts (Σ unsatisfiable over ⟦D⟧), always
// terminates — including on cyclic FD sets — and leaves a database that
// syntactically satisfies the dependencies.

#include <gtest/gtest.h>

#include "constraints/chase.h"
#include "constraints/dependencies.h"
#include "core/database.h"

namespace incdb {
namespace {

Database OneRelation(const char* name, std::vector<std::string> attrs,
                     std::vector<Tuple> tuples) {
  Database db;
  Relation rel(std::move(attrs));
  for (Tuple& t : tuples) {
    Status st = rel.Insert(std::move(t));
    (void)st;
  }
  db.Put(name, std::move(rel));
  return db;
}

TEST(ChaseTest, NoViolationIsIdentity) {
  Database db = OneRelation("R", {"k", "v"},
                            {Tuple{Value::Int(1), Value::Int(10)},
                             Tuple{Value::Int(2), Value::Null(0)}});
  auto result = ChaseFDs(db, {FD{"R", {"k"}, {"v"}}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->success);
  EXPECT_TRUE(result->db.at("R").SameRows(db.at("R")));
}

TEST(ChaseTest, NullReplacedByForcedConstant) {
  // R = {(1, ⊥0), (1, 5)} with k → v: the chase must set ⊥0 = 5 and the
  // two tuples collapse.
  Database db = OneRelation("R", {"k", "v"},
                            {Tuple{Value::Int(1), Value::Null(0)},
                             Tuple{Value::Int(1), Value::Int(5)}});
  auto result = ChaseFDs(db, {FD{"R", {"k"}, {"v"}}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->success);
  const Relation& chased = result->db.at("R");
  EXPECT_EQ(chased.DistinctSize(), 1u);
  EXPECT_TRUE(chased.Contains(Tuple{Value::Int(1), Value::Int(5)}));
  EXPECT_TRUE(result->db.NullIds().empty());
}

TEST(ChaseTest, SubstitutionIsGlobalAcrossRelations) {
  // The same null occurring in another relation must be rewritten too.
  Database db = OneRelation("R", {"k", "v"},
                            {Tuple{Value::Int(1), Value::Null(7)},
                             Tuple{Value::Int(1), Value::Int(3)}});
  Relation s({"x"});
  s.Add({Value::Null(7)});
  db.Put("S", std::move(s));
  auto result = ChaseFDs(db, {FD{"R", {"k"}, {"v"}}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->success);
  EXPECT_TRUE(result->db.at("S").Contains(Tuple{Value::Int(3)}));
  EXPECT_TRUE(result->db.NullIds().empty());
}

TEST(ChaseTest, NullNullPairsMerge) {
  // R = {(1, ⊥0), (1, ⊥1)}: the chase merges ⊥0 and ⊥1 into one null.
  Database db = OneRelation("R", {"k", "v"},
                            {Tuple{Value::Int(1), Value::Null(0)},
                             Tuple{Value::Int(1), Value::Null(1)}});
  auto result = ChaseFDs(db, {FD{"R", {"k"}, {"v"}}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->success);
  EXPECT_EQ(result->db.at("R").DistinctSize(), 1u);
  EXPECT_EQ(result->db.NullIds().size(), 1u);
}

TEST(ChaseTest, HardConflictFails) {
  // Two constants forced equal: no possible world of D satisfies Σ.
  Database db = OneRelation("R", {"k", "v"},
                            {Tuple{Value::Int(1), Value::Int(5)},
                             Tuple{Value::Int(1), Value::Int(6)}});
  auto result = ChaseFDs(db, {FD{"R", {"k"}, {"v"}}});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->success);
}

TEST(ChaseTest, ConflictReachedOnlyAfterSubstitution) {
  // (1,⊥0), (1,5) forces ⊥0=5; then S's FD sees (5 vs 6) — a conflict
  // that only exists after the first substitution step.
  Database db = OneRelation("R", {"k", "v"},
                            {Tuple{Value::Int(1), Value::Null(0)},
                             Tuple{Value::Int(1), Value::Int(5)}});
  Relation s({"a", "b"});
  s.Add({Value::Null(0), Value::Int(6)});
  s.Add({Value::Int(7), Value::Int(6)});
  db.Put("S", std::move(s));
  auto result =
      ChaseFDs(db, {FD{"R", {"k"}, {"v"}}, FD{"S", {"b"}, {"a"}}});
  ASSERT_TRUE(result.ok());
  // ⊥0 is equated with 5 (via R) and with 7 (via S) — unsatisfiable.
  EXPECT_FALSE(result->success);
}

TEST(ChaseTest, CascadingChainTerminates) {
  // A chain of FDs where each merge enables the next: every step strictly
  // decreases the number of distinct nulls, so the fixpoint is reached.
  Database db = OneRelation(
      "R", {"a", "b", "c"},
      {Tuple{Value::Int(1), Value::Null(0), Value::Null(1)},
       Tuple{Value::Int(1), Value::Null(2), Value::Null(3)},
       Tuple{Value::Int(1), Value::Int(2), Value::Int(3)}});
  auto result = ChaseFDs(db, {FD{"R", {"a"}, {"b", "c"}}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->success);
  EXPECT_EQ(result->db.at("R").DistinctSize(), 1u);
  EXPECT_TRUE(result->db.at("R").Contains(
      Tuple{Value::Int(1), Value::Int(2), Value::Int(3)}));
  EXPECT_TRUE(result->db.NullIds().empty());
}

TEST(ChaseTest, CyclicFDSetTerminates) {
  // a → b and b → a chase each other; termination is guaranteed because
  // each applied step removes a null.
  Database db = OneRelation("R", {"a", "b"},
                            {Tuple{Value::Int(1), Value::Null(0)},
                             Tuple{Value::Int(1), Value::Int(2)},
                             Tuple{Value::Null(1), Value::Int(2)}});
  auto result =
      ChaseFDs(db, {FD{"R", {"a"}, {"b"}}, FD{"R", {"b"}, {"a"}}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->success);
  EXPECT_EQ(result->db.at("R").DistinctSize(), 1u);
  EXPECT_TRUE(result->db.at("R").Contains(
      Tuple{Value::Int(1), Value::Int(2)}));
}

TEST(ChaseTest, ChasedDatabaseSatisfiesDependencies) {
  std::vector<FD> fds = {FD{"R", {"k"}, {"v"}}, FD{"R", {"v"}, {"w"}}};
  Database db = OneRelation(
      "R", {"k", "v", "w"},
      {Tuple{Value::Int(1), Value::Null(0), Value::Null(1)},
       Tuple{Value::Int(1), Value::Int(4), Value::Null(2)},
       Tuple{Value::Int(2), Value::Int(4), Value::Null(3)}});
  // Before the chase, the FDs fail syntactically.
  auto before = Satisfies(db, fds[0]);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(*before);
  auto result = ChaseFDs(db, fds);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->success);
  for (const FD& fd : fds) {
    auto sat = Satisfies(result->db, fd);
    ASSERT_TRUE(sat.ok()) << fd.ToString();
    EXPECT_TRUE(*sat) << fd.ToString() << " on " << "chased database";
  }
}

TEST(ChaseTest, UnknownRelationOrAttributeIsAnError) {
  Database db = OneRelation("R", {"k", "v"},
                            {Tuple{Value::Int(1), Value::Int(2)}});
  EXPECT_FALSE(ChaseFDs(db, {FD{"Missing", {"k"}, {"v"}}}).ok());
  EXPECT_FALSE(ChaseFDs(db, {FD{"R", {"nope"}, {"v"}}}).ok());
}

}  // namespace
}  // namespace incdb
